GO ?= go

# Which committed benchmark record bench-json refreshes, and what
# bench-compare diffs a fresh run against.
BENCH_JSON ?= BENCH_10.json

# Regression factor for bench-compare: flag growth past 1.5x. Ordinary
# run-to-run noise on a quiet machine stays well under that; tighten
# with BENCH_THRESHOLD=1.2 when chasing a specific benchmark.
BENCH_THRESHOLD ?= 1.5

.PHONY: all build test bench bench-smoke bench-json bench-compare cover race race-full vet examples serve-smoke ci

# Every example binary, smoke-run at reduced problem size.
EXAMPLES := quickstart jacobi3d adcirc amr migration cloudrestart

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Benchmarks for every table/figure plus the engine and MPI hot paths.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# One iteration of every benchmark, as CI's bench-smoke job runs it: a
# compile-and-execute check that keeps the bench suite (including the
# million-VP scale run) from rotting between full bench-json refreshes.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=1x -benchmem ./...

# Machine-readable benchmark record: name -> ns/op, B/op, allocs/op.
# Committed so benchmark movement shows up in diffs. -strict refuses a
# record with unparseable benchmark lines instead of committing a
# silently truncated one.
bench-json:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson -strict > $(BENCH_JSON)

# Re-measure the full benchmark suite and diff against the committed
# record; exits nonzero when any benchmark's ns/op or allocs/op grew
# past BENCH_THRESHOLD. Timing must match how the committed record was
# produced (full -benchtime), so this takes as long as bench-json —
# comparing a -benchtime=1x run against a fully-timed record only
# measures warm-up. CI's advisory bench-compare job instead benchmarks
# the PR base and head at the same -benchtime=1x and diffs those.
bench-compare:
	$(GO) test -run xxx -bench . -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) $(BENCH_JSON) BENCH_new.json

# Per-package and total statement coverage; cover.out feeds
# `go tool cover -html=cover.out` and the CI coverage artifact.
cover:
	$(GO) test -cover -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# The sweep runner, the per-world pools, and the parallel event loop
# (sim.ParallelEngine's window workers) are the code that runs under
# parallelism; race-check the packages that exercise them (the ft and
# elastic supervisors run inside the parallel sweep fan-outs, and
# machine/lb carry the membership-epoch and rebalance state those
# supervisors mutate between attempts).
race:
	$(GO) test -race ./internal/sim/... ./internal/harness/... ./internal/ampi/... ./internal/ft/... ./internal/machine/... ./internal/lb/...

# Full race sweep over every package, as CI's race job runs it.
race-full:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Smoke-run every example at -quick scale; a broken example is a
# broken front door even when the libraries all pass.
examples:
	@for ex in $(EXAMPLES); do \
		echo "== examples/$$ex -quick"; \
		$(GO) run ./examples/$$ex -quick > /dev/null || exit 1; \
	done

# End-to-end check of the experiment server: boot `privbench -serve`,
# POST the same tiny Spec twice, assert the second response is a cache
# hit with byte-identical row payloads and exactly one simulation run.
serve-smoke:
	./scripts/serve_smoke.sh

# Everything CI runs, in the same order (see .github/workflows/ci.yml).
ci: vet build test examples bench-smoke serve-smoke race
