GO ?= go

.PHONY: all build test bench race vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Benchmarks for every table/figure plus the engine and MPI hot paths.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# The sweep runner and the per-world pools are the only code that runs
# under parallelism; race-check the packages that exercise them.
race:
	$(GO) test -race ./internal/harness/... ./internal/ampi/...

vet:
	$(GO) vet ./...

# Everything CI runs, in the same order (see .github/workflows/ci.yml).
ci: vet build test race
