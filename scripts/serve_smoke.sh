#!/usr/bin/env bash
# serve_smoke: boot `privbench -serve`, POST the same tiny Spec twice,
# and assert the second response is a cache hit with byte-identical row
# payloads and no second simulation. This is the end-to-end check of
# the content-addressed result path: canonical Spec hashing, the
# resultstore round trip, and the server's cache/dedup accounting —
# through a real TCP listener instead of httptest.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18091}"
WORKDIR="$(mktemp -d)"
LOG="$WORKDIR/serve.log"
SERVER_PID=""

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        # SIGTERM exercises the graceful-shutdown path on every run.
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "---- server log ----" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "== build"
go build -o "$WORKDIR/privbench" ./cmd/privbench

echo "== start server on $ADDR (store: $WORKDIR/store)"
"$WORKDIR/privbench" -serve "$ADDR" -store "$WORKDIR/store" >"$LOG" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/v1/experiments" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before accepting connections"
    sleep 0.1
done
curl -sf "http://$ADDR/v1/experiments" >/dev/null || fail "server never came up"

# The tiny fig5-style point: the empty workload (init/finalize only).
SPEC='{"points":[{"workload":"empty","vps":4,"machine":{"nodes":2,"procs_per_node":1,"pes_per_proc":1},"method":"pieglobals"}]}'

echo "== first POST (expect an execution)"
curl -sf -X POST -H 'Content-Type: application/json' -d "$SPEC" \
    "http://$ADDR/v1/runs" >"$WORKDIR/first.ndjson" || fail "first POST failed"

echo "== second POST (expect a cache hit)"
curl -sf -X POST -H 'Content-Type: application/json' -d "$SPEC" \
    "http://$ADDR/v1/runs" >"$WORKDIR/second.ndjson" || fail "second POST failed"

# Point lines carry `"cached":...` response metadata next to the row
# payload; strip everything up to the row to compare stored bytes only.
point_row() { grep '"row"' "$1" | sed 's/.*"row"://; s/}$//'; }
trailer()   { grep '"done":true' "$1"; }

ROW1="$(point_row "$WORKDIR/first.ndjson")"
ROW2="$(point_row "$WORKDIR/second.ndjson")"
[[ -n "$ROW1" ]] || fail "first response has no row: $(cat "$WORKDIR/first.ndjson")"
[[ "$ROW1" == "$ROW2" ]] || fail "row payloads differ:
  first:  $ROW1
  second: $ROW2"

trailer "$WORKDIR/first.ndjson" | grep -q '"executed":1' \
    || fail "first POST did not execute: $(trailer "$WORKDIR/first.ndjson")"
trailer "$WORKDIR/second.ndjson" | grep -q '"cached":1' \
    || fail "second POST was not a cache hit: $(trailer "$WORKDIR/second.ndjson")"
trailer "$WORKDIR/second.ndjson" | grep -q '"executed":0' \
    || fail "second POST re-executed: $(trailer "$WORKDIR/second.ndjson")"

# Cross-check with the server's own metrics: exactly one simulation
# ever ran, and the cache hit was counted.
METRICS="$(curl -sf "http://$ADDR/metrics")" || fail "metrics scrape failed"
echo "$METRICS" | grep -q '^serve_points_executed_total 1$' \
    || fail "serve_points_executed_total != 1: $(echo "$METRICS" | grep serve_ || true)"
echo "$METRICS" | grep -q '^serve_cache_hits_total [1-9]' \
    || fail "no cache hits counted: $(echo "$METRICS" | grep serve_ || true)"

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero after SIGTERM"
SERVER_PID=""

echo "serve-smoke: OK (row payload byte-identical, second POST cached, 1 simulation total)"
