package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provirt/internal/harness"
	"provirt/internal/obs"
	"provirt/internal/resultstore"
	"provirt/internal/serve"
)

// shutdownTimeout bounds how long graceful shutdown waits for
// in-flight requests before forcing connections closed.
const shutdownTimeout = 10 * time.Second

// shutdownSignal returns a channel that closes on the first SIGINT or
// SIGTERM. The handler uninstalls itself after that, so a second
// signal kills the process the default way — the escape hatch when a
// drain hangs.
func shutdownSignal() <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		close(stop)
	}()
	return stop
}

// serveUntil serves h on ln until stop closes, then shuts down
// gracefully: the listener stops accepting, in-flight requests get up
// to timeout to finish, then connections are forced closed. A clean
// drain returns nil; Serve failures (other than the shutdown-induced
// ErrServerClosed) pass through.
func serveUntil(ln net.Listener, h http.Handler, stop <-chan struct{}, timeout time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// runServer is the -serve mode: instead of one batch run, experiments
// execute on demand over HTTP with content-addressed caching (see
// internal/serve). Blocks until SIGINT/SIGTERM, then drains.
func runServer(addr, storeDir string, workers, cacheEntries int) error {
	reg := obs.NewRegistry()
	prog := harness.EnableObs(reg)
	serve.EnableObs(reg)

	version := resultstore.CodeVersion()
	store, err := resultstore.Open(storeDir, version, cacheEntries)
	if err != nil {
		return err
	}
	srv := serve.New(store, version, workers)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "privbench: serving /v1/runs, /v1/experiments, /metrics, /progress on http://%s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "privbench: result store %s (code version %s)\n", storeDir, version)
	return serveUntil(ln, srv.Handler(obs.NewHandler(reg, prog)), shutdownSignal(), shutdownTimeout)
}
