// Command privbench regenerates every table and figure from the
// paper's evaluation section (§4).
//
// Usage:
//
//	privbench -experiment=list
//	privbench -experiment=all
//	privbench -experiment=fig5 -nodes 8
//	privbench -experiment=table2 -cores 1,2,4,8,16,32,64
//
// Every experiment is an entry in the harness registry;
// `-experiment=list` enumerates them with their descriptions, the
// flags they consume, and the trace-selection keys they honor, so
// this help never drifts from the code.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/obs"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, list, or one of "+strings.Join(harness.ExperimentNames(), ", "))
	nodes := flag.Int("nodes", 1, "node count for fig5")
	vps := flag.Int("vps", 0,
		"virtual rank count for the scale experiment (0 selects the default one million)")
	coresFlag := flag.String("cores", "1,2,4,8,16,32,64", "core counts for table2/fig9")
	mtbfFlag := flag.String("mtbf", "",
		"comma-separated MTBF durations for ftsweep (e.g. 120ms,480ms); empty uses the default list")
	churnRate := flag.Duration("churn-rate", 0,
		"mean gap between spot evictions for the elastic experiment; nonzero replaces the default regime list with one custom regime")
	churnNotice := flag.Duration("churn-notice", 120*time.Millisecond,
		"eviction notice window for -churn-rate (0 = every reclaim degrades into a crash)")
	churnSeed := flag.Uint64("churn-seed", 20, "churn sampler seed for -churn-rate")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for experiment sweeps; each simulation stays single-threaded and seeded, so output is identical at any setting (1 = serial)")
	simWorkers := flag.Int("sim-workers", 0,
		"workers inside a single simulated world: the flat-world scale experiment shards its event loop across lookahead domains; rows, tables, and traces are byte-identical at any setting (0 or 1 = serial engine)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceFile := flag.String("trace", "",
		"write a virtual-time event trace of one sweep point to this file (requires a single traceable -experiment: "+
			strings.Join(harness.TraceableNames(), ", ")+")")
	traceFormat := flag.String("trace-format", "jsonl",
		"trace file format: jsonl (one event per line) or chrome (Perfetto-loadable trace-event JSON)")
	traceWindow := flag.Int("trace-window", 0,
		"stream the trace to -trace in bounded windows of this many events instead of buffering it whole (jsonl only; required at million-rank scale)")
	traceMethod := flag.String("trace-method", "pieglobals",
		"privatization method of the sweep point to trace (fig5/fig6/fig7/fig8/ftsweep)")
	traceHeap := flag.Uint64("trace-heap", 1<<20,
		"per-rank heap size in bytes of the fig8 point to trace")
	traceCores := flag.Int("trace-cores", 1, "core count of the table2/fig9 point to trace")
	traceRatio := flag.Int("trace-ratio", 1,
		"virtualization ratio of the table2/fig9 point to trace (1 = unvirtualized baseline)")
	traceMTBF := flag.Duration("trace-mtbf", 120*time.Millisecond,
		"MTBF of the ftsweep point to trace")
	traceTarget := flag.String("trace-target", "fs",
		"checkpoint target of the ftsweep/elastic point to trace: fs or buddy")
	traceChurn := flag.String("trace-churn", "spot-busy",
		"churn regime name of the elastic point to trace (custom when -churn-rate is set)")
	profileRanks := flag.Bool("profile-ranks", false,
		"print per-rank and per-PE virtual-time utilization profiles with a critical-path summary for the traced sweep point")
	showMetrics := flag.Bool("metrics", false,
		"collect host-side runtime metrics and print the deterministic text snapshot after the experiments finish")
	serveMetrics := flag.String("serve-metrics", "",
		"serve live host metrics on this address (e.g. :9090) while experiments run: Prometheus /metrics, JSON /progress, and /debug/pprof; implies metric collection")
	serveAddr := flag.String("serve", "",
		"run the experiment server on this address (e.g. :8080) instead of a batch run: POST /v1/runs executes Spec sweeps with content-addressed result caching; also serves /v1/experiments and the -serve-metrics endpoints")
	storeDir := flag.String("store", ".provirt-results",
		"result store directory for -serve; entries are keyed by spec hash and partitioned by code version")
	serveWorkers := flag.Int("serve-workers", 0,
		"maximum concurrent simulations for -serve, across all requests (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 0,
		"in-memory result index capacity for -serve (0 = the resultstore default; the disk store is unbounded)")
	showVersion := flag.Bool("version", false, "print build and VCS information and exit")
	flag.Parse()

	if *showVersion {
		printVersion()
		return
	}
	if *experiment == "list" {
		listExperiments()
		return
	}
	if *serveAddr != "" {
		if *serveMetrics != "" {
			fmt.Fprintf(os.Stderr, "privbench: -serve already includes the -serve-metrics endpoints; set only one\n")
			os.Exit(2)
		}
		if err := runServer(*serveAddr, *storeDir, *serveWorkers, *cacheEntries); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cores, err := parseInts(*coresFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privbench: bad -cores: %v\n", err)
		os.Exit(2)
	}
	mtbfs, err := parseDurations(*mtbfFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privbench: bad -mtbf: %v\n", err)
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "privbench: -parallel must be >= 1, got %d\n", *parallel)
		os.Exit(2)
	}

	var selected []harness.Experiment
	if *experiment == "all" {
		selected = harness.Experiments()
	} else {
		e, ok := harness.LookupExperiment(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "privbench: unknown experiment %q (try -experiment=list)\n", *experiment)
			os.Exit(2)
		}
		selected = []harness.Experiment{e}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: start cpu profile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "privbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "privbench: write heap profile: %v\n", err)
			}
		}()
	}

	// Tracing selects exactly one sweep point of one experiment; the
	// selection is resolved here, from flags, so it is concrete before
	// any (possibly parallel) sweep starts.
	var rec *trace.Recorder
	var sel *harness.TraceSel
	var windowed *trace.WindowWriter
	var windowFile *os.File
	if *traceFile != "" || *profileRanks {
		if len(selected) != 1 || !selected[0].Traceable {
			fmt.Fprintf(os.Stderr, "privbench: -trace/-profile-ranks need -experiment to be one of %s (got %q)\n",
				strings.Join(harness.TraceableNames(), ", "), *experiment)
			os.Exit(2)
		}
		if *traceFormat != "jsonl" && *traceFormat != "chrome" {
			fmt.Fprintf(os.Stderr, "privbench: unknown -trace-format %q (want jsonl or chrome)\n", *traceFormat)
			os.Exit(2)
		}
		kind, err := core.ParseKind(*traceMethod)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -trace-method: %v\n", err)
			os.Exit(2)
		}
		target, err := parseTarget(*traceTarget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -trace-target: %v\n", err)
			os.Exit(2)
		}
		scaleVPs := *vps
		if scaleVPs <= 0 {
			scaleVPs = harness.DefaultScaleVPs
		}
		sel = &harness.TraceSel{
			Method: kind,
			Nodes:  *nodes,
			Heap:   *traceHeap,
			Cores:  *traceCores,
			Ratio:  *traceRatio,
			MTBF:   sim.Time(*traceMTBF),
			Target: target,
			VPs:    scaleVPs,
			Churn:  *traceChurn,
		}
		if *traceWindow > 0 {
			// Windowed tracing streams events to disk as they fire, so a
			// million-rank trace never lives in host memory — but that
			// rules out post-hoc consumers of the full event slice.
			if *traceFile == "" || *traceFormat != "jsonl" || *profileRanks {
				fmt.Fprintf(os.Stderr, "privbench: -trace-window needs -trace with -trace-format=jsonl and no -profile-ranks\n")
				os.Exit(2)
			}
			windowFile, err = os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "privbench: -trace: %v\n", err)
				os.Exit(2)
			}
			windowed = trace.NewWindowWriter(windowFile, *traceWindow)
			sel.Sink = windowed
		} else {
			rec = trace.NewRecorder()
			sel.Rec = rec
		}
	}

	// Host metrics piggyback on the runs: instruments observe the host
	// runtime only, so rows, tables, and trace bytes are identical with
	// or without them.
	var reg *obs.Registry
	var prog *obs.Progress
	if *showMetrics || *serveMetrics != "" {
		reg = obs.NewRegistry()
		prog = harness.EnableObs(reg)
	}
	if *serveMetrics != "" {
		ln, err := net.Listen("tcp", *serveMetrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -serve-metrics: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "privbench: serving /metrics, /progress, /debug/pprof on http://%s\n", ln.Addr())
		// The metrics server rides alongside the batch run: on
		// SIGINT/SIGTERM it drains in-flight scrapes, then the process
		// exits — a half-written experiment has no value, so there is
		// nothing else to wind down gracefully.
		stop := shutdownSignal()
		go func() {
			if err := serveUntil(ln, obs.NewHandler(reg, prog), stop, shutdownTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "privbench: metrics server: %v\n", err)
			}
			<-stop
			fmt.Fprintf(os.Stderr, "privbench: interrupted; metrics server drained\n")
			os.Exit(130)
		}()
	}

	ropts := harness.RunOpts{
		Opts:     harness.Opts{Parallelism: *parallel, Trace: sel, Progress: prog, SimWorkers: *simWorkers},
		Nodes:    *nodes,
		Cores:    cores,
		MTBFs:    mtbfs,
		ScaleVPs: *vps,
	}
	if *churnRate > 0 {
		ropts.Elastic = []harness.ElasticRegime{
			harness.CustomChurnRegime(*churnSeed, sim.Time(*churnRate), sim.Time(*churnNotice)),
		}
	}
	for _, e := range selected {
		res, err := e.Run(ropts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, tbl := range res.Tables {
			fmt.Println(tbl)
		}
	}

	if windowed != nil {
		err := windowed.Close()
		if cerr := windowFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -trace: %v\n", err)
			os.Exit(1)
		}
		if windowed.Emitted() == 0 {
			fmt.Fprintf(os.Stderr, "privbench: trace selection matched no run (check the experiment's trace keys against its sweep)\n")
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s (jsonl, windowed)\n", windowed.Emitted(), *traceFile)
	}
	if rec != nil {
		if rec.Len() == 0 {
			fmt.Fprintf(os.Stderr, "privbench: trace selection matched no run (check -trace-method/-nodes/-trace-heap/-trace-cores/-trace-ratio against the experiment's sweep)\n")
			os.Exit(1)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, *traceFormat, rec.Events()); err != nil {
				fmt.Fprintf(os.Stderr, "privbench: -trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d events -> %s (%s)\n", rec.Len(), *traceFile, *traceFormat)
		}
		if *profileRanks {
			p := trace.BuildProfile(rec.Events())
			fmt.Println(p.RankTable())
			fmt.Println(p.PETable())
			fmt.Println(p.CriticalPath().Summary())
		}
	}

	if *showMetrics {
		// The text snapshot excludes volatile (host-timing) instruments,
		// so it is byte-identical across runs at a fixed -parallel.
		fmt.Println("host metrics:")
		if err := reg.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// printVersion reports module, VCS, and toolchain details from the
// build info stamped into the binary.
func printVersion() {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Println("privbench: no build info (binary built without module support)")
		return
	}
	version := info.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	fmt.Printf("privbench %s (%s, %s)\n", version, info.Main.Path, info.GoVersion)
	var rev, modified, vcsTime string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	if rev != "" {
		dirty := ""
		if modified == "true" {
			dirty = " (modified)"
		}
		fmt.Printf("  commit: %s%s\n", rev, dirty)
	}
	if vcsTime != "" {
		fmt.Printf("  commit time: %s\n", vcsTime)
	}
}

// listExperiments prints the registry: one line per experiment with
// its aliases, the extra flags it reads, and its trace keys. Output is
// sorted by name so it never leaks registry iteration order.
func listExperiments() {
	exps := harness.Experiments()
	sort.Slice(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	fmt.Println("experiments (run with -experiment=NAME; -experiment=all runs every one in registry order):")
	for _, e := range exps {
		name := e.Name
		if len(e.Aliases) > 0 {
			name += " (alias " + strings.Join(e.Aliases, ", ") + ")"
		}
		fmt.Printf("  %-24s %s\n", name, e.Description)
		var notes []string
		for _, f := range e.Flags {
			notes = append(notes, "-"+f)
		}
		if e.Traceable {
			notes = append(notes, "traceable by "+strings.Join(e.TraceKeys, "/"))
		}
		if len(notes) > 0 {
			fmt.Printf("  %-24s %s\n", "", strings.Join(notes, "; "))
		}
	}
}

// writeTrace serializes events to path in the chosen format.
func writeTrace(path, format string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = trace.WriteChrome(f, events)
	default:
		err = trace.WriteJSONL(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseTarget maps fs/buddy to the checkpoint target.
func parseTarget(s string) (ampi.CheckpointTarget, error) {
	switch s {
	case "fs":
		return ampi.TargetFS, nil
	case "buddy":
		return ampi.TargetBuddy, nil
	default:
		return 0, fmt.Errorf("unknown checkpoint target %q (want fs or buddy)", s)
	}
}

// parseDurations splits a comma-separated duration list; an empty
// string yields nil (the experiment's default list).
func parseDurations(s string) ([]sim.Time, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sim.Time
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("duration %v must be positive", d)
		}
		out = append(out, sim.Time(d))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("core count %d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts")
	}
	return out, nil
}
