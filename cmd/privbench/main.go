// Command privbench regenerates every table and figure from the
// paper's evaluation section (§4).
//
// Usage:
//
//	privbench -experiment=all
//	privbench -experiment=fig5 -nodes 8
//	privbench -experiment=table2 -cores 1,2,4,8,16,32,64
//
// Experiments: tables (Tables 1 & 3), fig5 (startup), fig6 (context
// switch), fig7 (privatized access), fig8 (migration), icache (§4.5),
// table2/fig9 (ADCIRC strong scaling), ftsweep (supervised
// time-to-solution vs MTBF).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, tables, fig5, fig6, fig7, fig8, icache, table2, fig9, ftsweep")
	nodes := flag.Int("nodes", 1, "node count for fig5")
	coresFlag := flag.String("cores", "1,2,4,8,16,32,64", "core counts for table2/fig9")
	mtbfFlag := flag.String("mtbf", "",
		"comma-separated MTBF durations for ftsweep (e.g. 120ms,480ms); empty uses the default list")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for experiment sweeps; each simulation stays single-threaded and seeded, so output is identical at any setting (1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceFile := flag.String("trace", "",
		"write a virtual-time event trace of one sweep point to this file (requires a single -experiment: fig5, fig5scale, fig6, fig7, fig8, table2, fig9)")
	traceFormat := flag.String("trace-format", "jsonl",
		"trace file format: jsonl (one event per line) or chrome (Perfetto-loadable trace-event JSON)")
	traceMethod := flag.String("trace-method", "pieglobals",
		"privatization method of the sweep point to trace (fig5/fig6/fig7/fig8)")
	traceHeap := flag.Uint64("trace-heap", 1<<20,
		"per-rank heap size in bytes of the fig8 point to trace")
	traceCores := flag.Int("trace-cores", 1, "core count of the table2/fig9 point to trace")
	traceRatio := flag.Int("trace-ratio", 1,
		"virtualization ratio of the table2/fig9 point to trace (1 = unvirtualized baseline)")
	traceMTBF := flag.Duration("trace-mtbf", 120*time.Millisecond,
		"MTBF of the ftsweep point to trace")
	traceTarget := flag.String("trace-target", "fs",
		"checkpoint target of the ftsweep point to trace: fs or buddy")
	profileRanks := flag.Bool("profile-ranks", false,
		"print per-rank and per-PE virtual-time utilization profiles with a critical-path summary for the traced sweep point")
	flag.Parse()

	cores, err := parseInts(*coresFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privbench: bad -cores: %v\n", err)
		os.Exit(2)
	}
	mtbfs, err := parseDurations(*mtbfFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "privbench: bad -mtbf: %v\n", err)
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "privbench: -parallel must be >= 1, got %d\n", *parallel)
		os.Exit(2)
	}
	harness.Parallelism = *parallel

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: start cpu profile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "privbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "privbench: write heap profile: %v\n", err)
			}
		}()
	}

	// Tracing selects exactly one sweep point of one experiment; the
	// selection is resolved here, from flags, so it is concrete before
	// any (possibly parallel) sweep starts.
	var rec *trace.Recorder
	if *traceFile != "" || *profileRanks {
		switch *experiment {
		case "fig5", "fig5scale", "fig6", "fig7", "fig8", "table2", "fig9", "ftsweep":
		default:
			fmt.Fprintf(os.Stderr, "privbench: -trace/-profile-ranks need -experiment to be one of fig5, fig5scale, fig6, fig7, fig8, table2, fig9, ftsweep (got %q)\n", *experiment)
			os.Exit(2)
		}
		if *traceFormat != "jsonl" && *traceFormat != "chrome" {
			fmt.Fprintf(os.Stderr, "privbench: unknown -trace-format %q (want jsonl or chrome)\n", *traceFormat)
			os.Exit(2)
		}
		kind, err := core.ParseKind(*traceMethod)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -trace-method: %v\n", err)
			os.Exit(2)
		}
		target, err := parseTarget(*traceTarget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "privbench: -trace-target: %v\n", err)
			os.Exit(2)
		}
		rec = trace.NewRecorder()
		harness.TraceSelection = &harness.TraceSel{
			Method: kind,
			Nodes:  *nodes,
			Heap:   *traceHeap,
			Cores:  *traceCores,
			Ratio:  *traceRatio,
			MTBF:   sim.Time(*traceMTBF),
			Target: target,
			Rec:    rec,
		}
	}

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("tables", func() error {
		fmt.Println(harness.Table1())
		fmt.Println(harness.Table3())
		return nil
	})
	run("fig5", func() error {
		_, tbl, err := harness.Fig5Startup(*nodes)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("fig5scale", func() error {
		tbl, err := harness.Fig5Scaling([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("fig6", func() error {
		_, tbl, err := harness.Fig6ContextSwitch()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("fig7", func() error {
		_, tbl, err := harness.Fig7JacobiAccess()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("fig8", func() error {
		_, tbl, err := harness.Fig8Migration()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("icache", func() error {
		_, tbl := harness.ICacheExperiment()
		fmt.Println(tbl)
		return nil
	})
	run("memory", func() error {
		_, tbl, err := harness.MemoryFootprint()
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	run("ftsweep", func() error {
		_, tbl, err := harness.FTSweep(mtbfs)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
		return nil
	})
	adcircScaling := func() error {
		_, t2, f9, err := harness.AdcircScaling(adcirc.DefaultConfig(), cores)
		if err != nil {
			return err
		}
		fmt.Println(t2)
		fmt.Println(f9)
		return nil
	}
	switch *experiment {
	case "table2", "fig9":
		if err := adcircScaling(); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: %s: %v\n", *experiment, err)
			os.Exit(1)
		}
	case "all":
		if err := adcircScaling(); err != nil {
			fmt.Fprintf(os.Stderr, "privbench: adcirc: %v\n", err)
			os.Exit(1)
		}
	case "tables", "fig5", "fig5scale", "fig6", "fig7", "fig8", "icache", "memory", "ftsweep":
		// handled above
	default:
		fmt.Fprintf(os.Stderr, "privbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if rec != nil {
		if rec.Len() == 0 {
			fmt.Fprintf(os.Stderr, "privbench: trace selection matched no run (check -trace-method/-nodes/-trace-heap/-trace-cores/-trace-ratio against the experiment's sweep)\n")
			os.Exit(1)
		}
		if *traceFile != "" {
			if err := writeTrace(*traceFile, *traceFormat, rec.Events()); err != nil {
				fmt.Fprintf(os.Stderr, "privbench: -trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d events -> %s (%s)\n", rec.Len(), *traceFile, *traceFormat)
		}
		if *profileRanks {
			p := trace.BuildProfile(rec.Events())
			fmt.Println(p.RankTable())
			fmt.Println(p.PETable())
			fmt.Println(p.CriticalPath().Summary())
		}
	}
}

// writeTrace serializes events to path in the chosen format.
func writeTrace(path, format string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "chrome":
		err = trace.WriteChrome(f, events)
	default:
		err = trace.WriteJSONL(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseTarget maps fs/buddy to the checkpoint target.
func parseTarget(s string) (ampi.CheckpointTarget, error) {
	switch s {
	case "fs":
		return ampi.TargetFS, nil
	case "buddy":
		return ampi.TargetBuddy, nil
	default:
		return 0, fmt.Errorf("unknown checkpoint target %q (want fs or buddy)", s)
	}
}

// parseDurations splits a comma-separated duration list; an empty
// string yields nil (the experiment's default list).
func parseDurations(s string) ([]sim.Time, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sim.Time
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("duration %v must be positive", d)
		}
		out = append(out, sim.Time(d))
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("core count %d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts")
	}
	return out, nil
}
