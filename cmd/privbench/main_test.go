package main

import "testing"

func TestParseInts(t *testing.T) {
	good := map[string][]int{
		"1":            {1},
		"1,2,4":        {1, 2, 4},
		" 8 , 16 ":     {8, 16},
		"1,2,4,8,16,,": {1, 2, 4, 8, 16},
	}
	for in, want := range good {
		got, err := parseInts(in)
		if err != nil {
			t.Errorf("parseInts(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseInts(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"", "x", "0", "-2", "1,zero"} {
		if _, err := parseInts(in); err == nil {
			t.Errorf("parseInts(%q) accepted", in)
		}
	}
}
