package main

import (
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/sim"
)

func TestParseInts(t *testing.T) {
	good := map[string][]int{
		"1":            {1},
		"1,2,4":        {1, 2, 4},
		" 8 , 16 ":     {8, 16},
		"1,2,4,8,16,,": {1, 2, 4, 8, 16},
	}
	for in, want := range good {
		got, err := parseInts(in)
		if err != nil {
			t.Errorf("parseInts(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseInts(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"", "x", "0", "-2", "1,zero"} {
		if _, err := parseInts(in); err == nil {
			t.Errorf("parseInts(%q) accepted", in)
		}
	}
}

func TestParseDurations(t *testing.T) {
	good := map[string][]sim.Time{
		"":             nil, // empty selects the experiment default
		"   ":          nil,
		"120ms":        {sim.Time(120 * time.Millisecond)},
		"120ms, 1s ,":  {sim.Time(120 * time.Millisecond), sim.Time(time.Second)},
		"500us,2m":     {sim.Time(500 * time.Microsecond), sim.Time(2 * time.Minute)},
		"1.5s":         {sim.Time(1500 * time.Millisecond)},
		"120ms,,960ms": {sim.Time(120 * time.Millisecond), sim.Time(960 * time.Millisecond)},
	}
	for in, want := range good {
		got, err := parseDurations(in)
		if err != nil {
			t.Errorf("parseDurations(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("parseDurations(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("parseDurations(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, in := range []string{"x", "120", "0s", "-5ms", "120ms,never"} {
		if _, err := parseDurations(in); err == nil {
			t.Errorf("parseDurations(%q) accepted", in)
		}
	}
}

func TestParseTarget(t *testing.T) {
	if got, err := parseTarget("fs"); err != nil || got != ampi.TargetFS {
		t.Errorf("parseTarget(fs) = %v, %v", got, err)
	}
	if got, err := parseTarget("buddy"); err != nil || got != ampi.TargetBuddy {
		t.Errorf("parseTarget(buddy) = %v, %v", got, err)
	}
	for _, in := range []string{"", "disk", "FS"} {
		if _, err := parseTarget(in); err == nil {
			t.Errorf("parseTarget(%q) accepted", in)
		}
	}
}
