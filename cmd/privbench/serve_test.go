package main

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// Satellite: the launcher's HTTP servers shut down gracefully — the
// drain lets an in-flight request finish, then the listener is gone.
func TestServeUntilDrainsInflightRequests(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inHandler := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		time.Sleep(50 * time.Millisecond) // keep the request in flight across the stop
		io.WriteString(w, "drained ok")
	})
	stop := make(chan struct{})
	served := make(chan error, 1)
	go func() { served <- serveUntil(ln, h, stop, 5*time.Second) }()

	type reply struct {
		body []byte
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			got <- reply{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- reply{body, err}
	}()

	// Fire the shutdown while the request is inside the handler.
	<-inHandler
	close(stop)

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if string(r.body) != "drained ok" {
		t.Fatalf("in-flight request body %q", r.body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntil did not return after stop")
	}
	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestServeUntilReportsServeErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	stop := make(chan struct{})
	if err := serveUntil(ln, http.NotFoundHandler(), stop, time.Second); err == nil {
		t.Fatal("serveUntil swallowed the Serve error")
	}
}
