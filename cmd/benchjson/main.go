// Command benchjson converts `go test -bench` text output (on stdin)
// into a stable JSON document mapping benchmark name to its measured
// ns/op, B/op, and allocs/op. CI uses it to commit machine-readable
// benchmark records (BENCH_*.json) next to the prose results, so
// regressions show up in diffs.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//	go run ./cmd/benchjson -compare OLD.json NEW.json [-threshold 1.10]
//
// Convert mode emits a leading "_header" object carrying the count of
// benchmark-looking lines that failed to parse, so a silently
// truncated record is visible in review; -strict turns that count into
// a non-zero exit so CI refuses the record outright. Compare mode loads two
// records (with or without the header), reports per-benchmark ns/op
// and allocs/op ratios, and exits 1 when any ratio exceeds the
// threshold — the advisory bench-compare CI job is built on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. BytesPerOp/AllocsPerOp are
// present only when the run used -benchmem. Metrics collects every
// custom unit a benchmark reported through b.ReportMetric (e.g.
// host-bytes/rank from the scale benchmarks), keyed by unit string.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// header is the "_header" entry emitted ahead of the results. Loaders
// (including compare mode here) skip every "_"-prefixed key when
// reading results, so records from before the header existed still
// load.
type header struct {
	ParseErrors int `json:"parse_errors"`
	Results     int `json:"results"`
	// CodeVersion is the VCS revision stamped into the converting
	// binary (empty when built without VCS info, e.g. `go run` in a
	// non-repo); compare mode prints each record's revision so a diff
	// between records from different commits is labeled as such.
	CodeVersion string `json:"code_version,omitempty"`
}

// codeVersion reads the build's vcs.revision (suffixed "-dirty" when
// the working tree was modified) from the binary's build info.
func codeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" && modified == "true" {
		rev += "-dirty"
	}
	return rev
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// parseLine parses one `go test -bench` result line. The benchmark
// name runs from the leading Benchmark token up to (not including) the
// first all-digit field — the iteration count — so names containing
// spaces (subtests named with b.Run before Go's underscore escaping,
// or hand-edited records) survive instead of truncating at the first
// space. Returns ok=false for lines that aren't benchmark results at
// all, and ok=false with bad=true for lines that look like one but
// don't parse (no iteration count, or no measurements).
func parseLine(line string) (name string, r Result, ok, bad bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false, false
	}
	// A bare "BenchmarkFoo" line is the -v announce line, not a result.
	if len(fields) == 1 {
		return "", Result{}, false, false
	}
	iterAt := -1
	for i := 1; i < len(fields); i++ {
		if allDigits(fields[i]) {
			iterAt = i
			break
		}
	}
	// Needs an iteration count and at least one value/unit pair.
	if iterAt < 0 || iterAt+2 >= len(fields) {
		return "", Result{}, false, true
	}
	name = strings.Join(fields[:iterAt], " ")
	name = gomaxprocsSuffix(strings.TrimPrefix(name, "Benchmark"))
	iters, err := strconv.ParseInt(fields[iterAt], 10, 64)
	if err != nil {
		return "", Result{}, false, true
	}
	r = Result{Iterations: iters}
	sawUnit := false
	for i := iterAt + 1; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
			sawUnit = true
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &n
				sawUnit = true
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &n
				sawUnit = true
			}
		case "MB/s":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.MBPerSec = &f
				sawUnit = true
			}
		default:
			// A custom b.ReportMetric unit; anything non-numeric is a
			// stray token from a wrapped line and is skipped.
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = f
				sawUnit = true
			}
		}
	}
	if !sawUnit {
		return "", Result{}, false, true
	}
	return name, r, true, false
}

// gomaxprocsSuffix strips the trailing -N processor-count tag so names
// are stable across machines.
func gomaxprocsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || !allDigits(name[i+1:]) {
		return name
	}
	return name[:i]
}

// convert reads bench text from in and writes the JSON record to out.
// It returns the number of benchmark-looking lines that failed to
// parse — the same count the "_header" records — so callers (-strict)
// can fail the run instead of just annotating the record.
func convert(in io.Reader, out io.Writer) (parseErrors int, err error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok, bad := parseLine(strings.TrimSpace(sc.Text()))
		if bad {
			parseErrors++
			continue
		}
		if ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return parseErrors, err
	}
	if len(results) == 0 {
		return parseErrors, fmt.Errorf("no benchmark lines on stdin")
	}
	// json.Marshal sorts map keys, so output is deterministic, but emit
	// through an explicit ordered structure for indented readability.
	// The header leads so a truncated record is obvious at the top.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	hdr, err := json.Marshal(header{ParseErrors: parseErrors, Results: len(results), CodeVersion: codeVersion()})
	if err != nil {
		return parseErrors, err
	}
	fmt.Fprintf(&b, "  %s: %s,\n", mustMarshal("_header"), hdr)
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			return parseErrors, err
		}
		fmt.Fprintf(&b, "  %s: %s", mustMarshal(n), enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err = io.WriteString(out, b.String())
	return parseErrors, err
}

// loadRecord reads a BENCH_*.json file, skipping "_"-prefixed
// metadata keys when collecting results so both header-carrying and
// older header-less records load; the header itself (zero-valued when
// absent) is returned alongside for provenance reporting.
func loadRecord(path string) (map[string]Result, header, error) {
	var hdr header
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, hdr, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, hdr, fmt.Errorf("%s: %w", path, err)
	}
	if msg, ok := raw["_header"]; ok {
		// A malformed header only loses provenance labels; the results
		// still compare.
		_ = json.Unmarshal(msg, &hdr)
	}
	out := make(map[string]Result, len(raw))
	for name, msg := range raw {
		if strings.HasPrefix(name, "_") {
			continue
		}
		var r Result
		if err := json.Unmarshal(msg, &r); err != nil {
			return nil, hdr, fmt.Errorf("%s: %q: %w", path, name, err)
		}
		out[name] = r
	}
	return out, hdr, nil
}

// delta is one benchmark's old/new comparison.
type delta struct {
	name               string
	nsRatio            float64 // new/old ns/op; 0 when old ns/op is 0
	allocRatio         float64 // new/old allocs/op; 0 when not comparable
	nsOld, nsNew       float64
	allocOld, allocNew int64
	// metricsWorse / metricsBetter are the custom b.ReportMetric units
	// whose value moved past the threshold in either direction — the
	// same factor that governs ns/op. Many of them (host-build-B/rank,
	// events, the virtual-time figures) are deterministic, so growth is
	// a real regression, not noise.
	metricsWorse  []metricDelta
	metricsBetter []metricDelta
}

// metricDelta is one custom metric's old/new comparison.
type metricDelta struct {
	unit     string
	ratio    float64 // new/old; 0 when old is 0
	old, new float64
}

// compareRecords diffs two records. A benchmark regresses when its
// ns/op, allocs/op, or any shared custom metric grows by more than
// threshold (e.g. 1.10 = +10%); it improves when one of them shrinks
// by the same factor (and nothing regressed).
func compareRecords(old, new map[string]Result, threshold float64) (regressions, improvements []delta, added, removed []string) {
	for name, n := range new {
		o, ok := old[name]
		if !ok {
			added = append(added, name)
			continue
		}
		d := delta{name: name, nsOld: o.NsPerOp, nsNew: n.NsPerOp}
		if o.NsPerOp > 0 {
			d.nsRatio = n.NsPerOp / o.NsPerOp
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			d.allocOld, d.allocNew = *o.AllocsPerOp, *n.AllocsPerOp
			if d.allocOld > 0 {
				d.allocRatio = float64(d.allocNew) / float64(d.allocOld)
			}
		}
		// Custom metrics present in both records, in sorted unit order so
		// the report is stable. Units only one side reports are skipped —
		// they show up as changed record bytes in review instead.
		units := make([]string, 0, len(n.Metrics))
		for u := range n.Metrics {
			if _, ok := o.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			md := metricDelta{unit: u, old: o.Metrics[u], new: n.Metrics[u]}
			if md.old > 0 {
				md.ratio = md.new / md.old
			}
			switch {
			case md.ratio > threshold:
				d.metricsWorse = append(d.metricsWorse, md)
			case md.ratio > 0 && md.ratio < 1/threshold:
				d.metricsBetter = append(d.metricsBetter, md)
			}
		}
		switch {
		case d.nsRatio > threshold || d.allocRatio > threshold || len(d.metricsWorse) > 0:
			regressions = append(regressions, d)
		case (d.nsRatio > 0 && d.nsRatio < 1/threshold) || len(d.metricsBetter) > 0:
			improvements = append(improvements, d)
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok {
			removed = append(removed, name)
		}
	}
	byName := func(ds []delta) {
		sort.Slice(ds, func(i, j int) bool { return ds[i].name < ds[j].name })
	}
	byName(regressions)
	byName(improvements)
	sort.Strings(added)
	sort.Strings(removed)
	return regressions, improvements, added, removed
}

// compare runs compare mode and returns the process exit code.
func compare(oldPath, newPath string, threshold float64, out, errOut io.Writer) int {
	if threshold <= 1 {
		fmt.Fprintf(errOut, "benchjson: -threshold must be > 1 (got %g)\n", threshold)
		return 2
	}
	old, oldHdr, err := loadRecord(oldPath)
	if err != nil {
		fmt.Fprintf(errOut, "benchjson: %v\n", err)
		return 2
	}
	new, newHdr, err := loadRecord(newPath)
	if err != nil {
		fmt.Fprintf(errOut, "benchjson: %v\n", err)
		return 2
	}
	regressions, improvements, added, removed := compareRecords(old, new, threshold)
	fmt.Fprintf(out, "benchjson compare: %s -> %s (threshold %.2fx)\n", oldPath, newPath, threshold)
	// Label each record's code version so a cross-commit diff (the
	// committed record vs a working-tree rerun) reads as one.
	for _, f := range []struct {
		path string
		hdr  header
	}{{oldPath, oldHdr}, {newPath, newHdr}} {
		if f.hdr.CodeVersion != "" {
			fmt.Fprintf(out, "  %s: code %s\n", f.path, f.hdr.CodeVersion)
		}
	}
	for _, d := range regressions {
		fmt.Fprintf(out, "  REGRESSION %s: %.0f -> %.0f ns/op (%.2fx)", d.name, d.nsOld, d.nsNew, d.nsRatio)
		if d.allocRatio > threshold {
			fmt.Fprintf(out, ", %d -> %d allocs/op (%.2fx)", d.allocOld, d.allocNew, d.allocRatio)
		}
		for _, m := range d.metricsWorse {
			fmt.Fprintf(out, ", %g -> %g %s (%.2fx)", m.old, m.new, m.unit, m.ratio)
		}
		fmt.Fprintln(out)
	}
	for _, d := range improvements {
		fmt.Fprintf(out, "  improvement %s: %.0f -> %.0f ns/op (%.2fx)", d.name, d.nsOld, d.nsNew, d.nsRatio)
		for _, m := range d.metricsBetter {
			fmt.Fprintf(out, ", %g -> %g %s (%.2fx)", m.old, m.new, m.unit, m.ratio)
		}
		fmt.Fprintln(out)
	}
	for _, n := range added {
		fmt.Fprintf(out, "  added %s\n", n)
	}
	for _, n := range removed {
		fmt.Fprintf(out, "  removed %s\n", n)
	}
	fmt.Fprintf(out, "  %d compared, %d regressions, %d improvements, %d added, %d removed\n",
		len(new)-len(added), len(regressions), len(improvements), len(added), len(removed))
	if len(regressions) > 0 {
		return 1
	}
	return 0
}

func main() {
	comparePair := flag.Bool("compare", false,
		"compare two BENCH_*.json records given as positional args (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 1.10,
		"compare mode: flag a regression when ns/op or allocs/op grows by more than this factor")
	strict := flag.Bool("strict", false,
		"convert mode: exit non-zero when any benchmark-looking line fails to parse, instead of only recording the count in _header")
	flag.Parse()

	if *comparePair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout, os.Stderr))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: convert mode reads stdin and takes no args (did you mean -compare?)")
		os.Exit(2)
	}
	os.Exit(runConvert(os.Stdin, os.Stdout, os.Stderr, *strict))
}

// runConvert runs convert mode and returns the process exit code.
func runConvert(in io.Reader, out, errOut io.Writer, strict bool) int {
	parseErrors, err := convert(in, out)
	if err != nil {
		fmt.Fprintf(errOut, "benchjson: %v\n", err)
		return 1
	}
	if strict && parseErrors > 0 {
		// The record was still written — the header marks it dirty — but
		// a strict pipeline (CI) must not commit it silently.
		fmt.Fprintf(errOut, "benchjson: -strict: %d benchmark line(s) failed to parse\n", parseErrors)
		return 1
	}
	return 0
}

func mustMarshal(s string) string {
	enc, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(enc)
}
