// Command benchjson converts `go test -bench` text output (on stdin)
// into a stable JSON document mapping benchmark name to its measured
// ns/op, B/op, and allocs/op. CI uses it to commit machine-readable
// benchmark records (BENCH_*.json) next to the prose results, so
// regressions show up in diffs.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. BytesPerOp/AllocsPerOp are
// present only when the run used -benchmem. Metrics collects every
// custom unit a benchmark reported through b.ReportMetric (e.g.
// host-bytes/rank from the scale benchmarks), keyed by unit string.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkHeapLookup/1024-8   50000   28941 ns/op   96 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N processor-count tag so names
// are stable across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(line string) (string, Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", Result{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = &n
			}
		case "MB/s":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.MBPerSec = &f
			}
		default:
			// A custom b.ReportMetric unit; anything non-numeric is a
			// stray token from a wrapped line and is skipped.
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = f
			}
		}
	}
	return name, r, true
}

func main() {
	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// json.Marshal sorts map keys, so output is deterministic, but emit
	// through an explicit ordered structure for indented readability.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %s: %s", mustMarshal(n), enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	os.Stdout.WriteString(b.String())
}

func mustMarshal(s string) string {
	enc, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(enc)
}
