package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, r, ok, bad := parseLine("BenchmarkHeapLookup/1024-8  \t  50000\t     28941 ns/op\t      96 B/op\t       2 allocs/op")
	if !ok || bad {
		t.Fatalf("line not recognized: ok=%v bad=%v", ok, bad)
	}
	if name != "HeapLookup/1024" {
		t.Errorf("name %q, want HeapLookup/1024 (processor suffix stripped)", name)
	}
	if r.Iterations != 50000 || r.NsPerOp != 28941 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 96 || r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Errorf("memstats not parsed: %+v", r)
	}

	name, r, ok, _ = parseLine("BenchmarkMigrateRank-16   	    2906	    412345.5 ns/op")
	if !ok || name != "MigrateRank" {
		t.Fatalf("plain line: ok=%v name=%q", ok, name)
	}
	if r.NsPerOp != 412345.5 || r.BytesPerOp != nil {
		t.Errorf("parsed %+v", r)
	}

	name, r, ok, _ = parseLine("BenchmarkScaleAllreduce-8   	       1	 812345678 ns/op	        42.50 host-B/rank	   1048576 model-B/rank")
	if !ok || name != "ScaleAllreduce" {
		t.Fatalf("metric line: ok=%v name=%q", ok, name)
	}
	if r.Metrics["host-B/rank"] != 42.5 || r.Metrics["model-B/rank"] != 1048576 {
		t.Errorf("custom metrics not parsed: %+v", r.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	provirt/internal/mem	12.3s",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkFoo", // -v announce line, not a result
	} {
		if _, _, ok, bad := parseLine(line); ok || bad {
			t.Errorf("non-benchmark line misclassified (ok=%v bad=%v): %q", ok, bad, line)
		}
	}
}

// Subtest names containing spaces (b.Run before underscore escaping,
// or hand-edited records) must survive up to the iteration count
// instead of truncating at the first space.
func TestParseLineNameWithSpaces(t *testing.T) {
	name, r, ok, bad := parseLine("BenchmarkFig5/PIE globals 8x-4   	 120	  9876543 ns/op")
	if !ok || bad {
		t.Fatalf("spaced name not recognized: ok=%v bad=%v", ok, bad)
	}
	if name != "Fig5/PIE globals 8x" {
		t.Errorf("name %q, want \"Fig5/PIE globals 8x\"", name)
	}
	if r.Iterations != 120 || r.NsPerOp != 9876543 {
		t.Errorf("parsed %+v", r)
	}
}

// Lines that look like benchmark results but don't parse are counted,
// not silently dropped.
func TestParseLineBadLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkTruncated-8   	    2906",          // no measurements
		"BenchmarkNoIters-8   	 ns/op garbage here", // no iteration count
	} {
		if _, _, ok, bad := parseLine(line); ok || !bad {
			t.Errorf("want bad parse (ok=%v bad=%v): %q", ok, bad, line)
		}
	}
}

func TestConvertEmitsHeaderWithParseErrors(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkGood-8   	 100	  5000 ns/op",
		"BenchmarkTruncated-8   	 100", // bad: no measurements
		"PASS",
	}, "\n")
	var out bytes.Buffer
	parseErrors, err := convert(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	// The returned count is what -strict gates on; it must agree with
	// the header the record carries.
	if parseErrors != 1 {
		t.Errorf("convert returned %d parse errors, want 1", parseErrors)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, out.String())
	}
	var h header
	if err := json.Unmarshal(doc["_header"], &h); err != nil {
		t.Fatalf("no _header: %v\n%s", err, out.String())
	}
	if h.ParseErrors != 1 || h.Results != 1 {
		t.Errorf("header = %+v, want 1 parse error and 1 result", h)
	}
	// The header leads the document so truncation is visible at the top.
	if !strings.HasPrefix(out.String(), "{\n  \"_header\":") {
		t.Errorf("header is not the first key:\n%s", out.String())
	}
}

// Satellite: -strict turns a dirty record (parse errors in the
// header) into a non-zero exit, while clean input stays 0 and lax
// mode keeps the old always-0 behavior.
func TestRunConvertStrictExitCodes(t *testing.T) {
	dirty := strings.Join([]string{
		"BenchmarkGood-8   	 100	  5000 ns/op",
		"BenchmarkTruncated-8   	 100", // bad: no measurements
	}, "\n")
	clean := "BenchmarkGood-8   	 100	  5000 ns/op\n"

	cases := []struct {
		name   string
		in     string
		strict bool
		want   int
	}{
		{"strict-dirty", dirty, true, 1},
		{"strict-clean", clean, true, 0},
		{"lax-dirty", dirty, false, 0},
	}
	for _, c := range cases {
		var out, errOut bytes.Buffer
		if got := runConvert(strings.NewReader(c.in), &out, &errOut, c.strict); got != c.want {
			t.Errorf("%s: exit code %d, want %d (stderr: %s)", c.name, got, c.want, errOut.String())
		}
		// The record itself is always written, even on a strict failure —
		// the exit code is the gate, not the output.
		if !strings.Contains(out.String(), `"Good"`) {
			t.Errorf("%s: record missing:\n%s", c.name, out.String())
		}
		if c.want == 1 && !strings.Contains(errOut.String(), "-strict") {
			t.Errorf("%s: no -strict diagnostic on stderr", c.name)
		}
	}
}

func writeRecord(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadRecord must read both header-carrying records and the committed
// pre-header BENCH_*.json files.
func TestLoadRecordSkipsMetadataKeys(t *testing.T) {
	dir := t.TempDir()
	path := writeRecord(t, dir, "b.json", `{
  "_header": {"parse_errors": 0, "results": 1},
  "Foo": {"iterations": 10, "ns_per_op": 123}
}`)
	rec, _, err := loadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec["Foo"].NsPerOp != 123 {
		t.Errorf("loaded %+v", rec)
	}
}

// The acceptance check: an injected 2x ns/op regression is detected
// and turns into a nonzero exit code.
func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", `{
  "Fig5Startup": {"iterations": 100, "ns_per_op": 1000, "allocs_per_op": 50},
  "Fig8Migration": {"iterations": 100, "ns_per_op": 2000},
  "Gone": {"iterations": 1, "ns_per_op": 1}
}`)
	new := writeRecord(t, dir, "new.json", `{
  "_header": {"parse_errors": 0, "results": 3},
  "Fig5Startup": {"iterations": 100, "ns_per_op": 2000, "allocs_per_op": 50},
  "Fig8Migration": {"iterations": 100, "ns_per_op": 1500},
  "Fresh": {"iterations": 1, "ns_per_op": 1}
}`)
	var out, errOut bytes.Buffer
	code := compare(old, new, 1.10, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (regression present)\n%s%s", code, out.String(), errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "REGRESSION Fig5Startup: 1000 -> 2000 ns/op (2.00x)") {
		t.Errorf("2x regression not reported:\n%s", report)
	}
	if !strings.Contains(report, "improvement Fig8Migration") {
		t.Errorf("improvement not reported:\n%s", report)
	}
	if !strings.Contains(report, "added Fresh") || !strings.Contains(report, "removed Gone") {
		t.Errorf("added/removed not reported:\n%s", report)
	}

	// With a threshold above the regression, the same pair passes.
	out.Reset()
	if code := compare(old, new, 2.5, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d with generous threshold, want 0\n%s", code, out.String())
	}
}

// Allocation growth alone also trips the threshold: allocs/op is
// host-deterministic, so it's the more trustworthy regression signal
// on noisy CI machines.
func TestCompareFlagsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", `{"X": {"iterations": 10, "ns_per_op": 100, "allocs_per_op": 10}}`)
	new := writeRecord(t, dir, "new.json", `{"X": {"iterations": 10, "ns_per_op": 100, "allocs_per_op": 30}}`)
	var out, errOut bytes.Buffer
	if code := compare(old, new, 1.10, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "10 -> 30 allocs/op (3.00x)") {
		t.Errorf("alloc regression not reported:\n%s", out.String())
	}
}

// Round-trip: committed records produced by convert load cleanly.
func TestConvertThenLoadRoundTrip(t *testing.T) {
	in := "BenchmarkRoundTrip-8   	 100	  5000 ns/op	 96 B/op	 2 allocs/op\n"
	var out bytes.Buffer
	parseErrors, err := convert(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if parseErrors != 0 {
		t.Errorf("clean input reported %d parse errors", parseErrors)
	}
	path := writeRecord(t, t.TempDir(), "rt.json", out.String())
	rec, _, err := loadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rec["RoundTrip"]
	if !ok || r.NsPerOp != 5000 || r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Errorf("round-trip lost data: %+v", rec)
	}
}

// Custom b.ReportMetric units ride the same threshold as ns/op:
// growth in a shared metric (host bytes per rank, event counts, the
// virtual-time figures) is a regression even when wall time holds
// steady, and shrinkage alone reports as an improvement.
func TestCompareDiffsCustomMetrics(t *testing.T) {
	dir := t.TempDir()
	old := writeRecord(t, dir, "old.json", `{
  "ScaleMillionVP": {"iterations": 1, "ns_per_op": 1000,
    "metrics": {"host-build-B/rank": 100, "events": 2000000, "old-only": 7}},
  "FlatWorldBuild": {"iterations": 1, "ns_per_op": 500,
    "metrics": {"model-resident-B/rank": 900}}
}`)
	new := writeRecord(t, dir, "new.json", `{
  "ScaleMillionVP": {"iterations": 1, "ns_per_op": 1000,
    "metrics": {"host-build-B/rank": 150, "events": 2000000, "new-only": 9}},
  "FlatWorldBuild": {"iterations": 1, "ns_per_op": 500,
    "metrics": {"model-resident-B/rank": 600}}
}`)
	var out, errOut bytes.Buffer
	code := compare(old, new, 1.10, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (metric regression present)\n%s%s", code, out.String(), errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "REGRESSION ScaleMillionVP") ||
		!strings.Contains(report, "100 -> 150 host-build-B/rank (1.50x)") {
		t.Errorf("metric regression not reported:\n%s", report)
	}
	if strings.Contains(report, "events") || strings.Contains(report, "only") {
		t.Errorf("unchanged or one-sided metrics should not be reported:\n%s", report)
	}
	if !strings.Contains(report, "improvement FlatWorldBuild") ||
		!strings.Contains(report, "900 -> 600 model-resident-B/rank (0.67x)") {
		t.Errorf("metric-only improvement not reported:\n%s", report)
	}

	// Above the growth, the same pair passes.
	out.Reset()
	if code := compare(old, new, 1.6, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d with generous threshold, want 0\n%s", code, out.String())
	}
}

// Satellite: compare mode labels each record with the code version its
// header carries, and stays silent for records without one (pre-header
// files, or builds without VCS stamping).
func TestCompareReportsCodeVersion(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRecord(t, dir, "old.json", `{
  "_header": {"parse_errors": 0, "results": 1, "code_version": "abc123"},
  "Foo": {"iterations": 10, "ns_per_op": 100}
}`)
	newPath := writeRecord(t, dir, "new.json", `{
  "_header": {"parse_errors": 0, "results": 1, "code_version": "def456-dirty"},
  "Foo": {"iterations": 10, "ns_per_op": 100}
}`)
	var out, errOut bytes.Buffer
	if code := compare(oldPath, newPath, 1.5, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "old.json: code abc123") {
		t.Errorf("old record's code version not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new.json: code def456-dirty") {
		t.Errorf("new record's code version not reported:\n%s", out.String())
	}

	barePath := writeRecord(t, dir, "bare.json", `{
  "Foo": {"iterations": 10, "ns_per_op": 100}
}`)
	out.Reset()
	if code := compare(barePath, barePath, 1.5, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "code ") {
		t.Errorf("header-less record grew a code label:\n%s", out.String())
	}
}
