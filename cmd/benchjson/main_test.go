package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkHeapLookup/1024-8  \t  50000\t     28941 ns/op\t      96 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "HeapLookup/1024" {
		t.Errorf("name %q, want HeapLookup/1024 (processor suffix stripped)", name)
	}
	if r.Iterations != 50000 || r.NsPerOp != 28941 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 96 || r.AllocsPerOp == nil || *r.AllocsPerOp != 2 {
		t.Errorf("memstats not parsed: %+v", r)
	}

	name, r, ok = parseLine("BenchmarkMigrateRank-16   	    2906	    412345.5 ns/op")
	if !ok || name != "MigrateRank" {
		t.Fatalf("plain line: ok=%v name=%q", ok, name)
	}
	if r.NsPerOp != 412345.5 || r.BytesPerOp != nil {
		t.Errorf("parsed %+v", r)
	}

	name, r, ok = parseLine("BenchmarkScaleAllreduce-8   	       1	 812345678 ns/op	        42.50 host-B/rank	   1048576 model-B/rank")
	if !ok || name != "ScaleAllreduce" {
		t.Fatalf("metric line: ok=%v name=%q", ok, name)
	}
	if r.Metrics["host-B/rank"] != 42.5 || r.Metrics["model-B/rank"] != 1048576 {
		t.Errorf("custom metrics not parsed: %+v", r.Metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	provirt/internal/mem	12.3s",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line recognized: %q", line)
		}
	}
}
