// Command ampirun launches a built-in MPI program on the simulated
// cluster with virtualization, mirroring AMPI's launcher interface:
//
//	ampirun -program hello -vp 8 -pes 2 -privatize pieglobals
//	ampirun -program jacobi -vp 64 -pes 8 -privatize tlsglobals
//	ampirun -program adcirc -vp 128 -pes 16 -lb greedyrefine
//	ampirun -program ping -privatize swapglobals -oldlinker
//
// Programs come from the scenario workload registry; runs are
// described as a scenario.Spec under the stock Bridges-2 environment,
// so an environment the selected method cannot run in is reported as
// a validation error naming the flag to add (-oldlinker,
// -patched-glibc, -mpc-compiler).
//
// It prints per-run statistics: startup time, execution time, context
// switches, migrations, and program-specific output. Add -stats for a
// per-PE utilization breakdown and -timeline FILE for a
// Projections-style JSON execution trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/trace"
)

func main() {
	var (
		program   = flag.String("program", "hello", "program to run: "+strings.Join(scenario.WorkloadNames(), ", "))
		vps       = flag.Int("vp", 4, "number of virtual ranks (+vp N)")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		procs     = flag.Int("procs", 1, "OS processes per node")
		pes       = flag.Int("pes", 1, "PEs (cores) per process; >1 is SMP mode")
		method    = flag.String("privatize", "pieglobals", "privatization method ("+strings.Join(core.KindNames(), ", ")+")")
		balancer  = flag.String("lb", "", "load balancer: "+strings.Join(scenario.BalancerNames(), ", ")+" (empty = none)")
		quick     = flag.Bool("quick", false, "reduced problem size (smoke runs)")
		oldLinker = flag.Bool("oldlinker", false, "pretend ld <= 2.23 (enables swapglobals)")
		patched   = flag.Bool("patched-glibc", false, "use the PIP project's patched glibc (lifts the 12-namespace limit)")
		mpc       = flag.Bool("mpc-compiler", false, "use an MPC-patched compiler (enables -fmpc-privatize)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		stats     = flag.Bool("stats", false, "print the per-PE utilization breakdown")
		timeline  = flag.String("timeline", "", "write a Projections-style JSON execution timeline to this file")
	)
	flag.Parse()

	kind, err := core.ParseKind(*method)
	if err != nil {
		fail(err)
	}
	strategy, err := scenario.ParseBalancer(*balancer, *pes)
	if err != nil {
		fail(err)
	}

	sp := scenario.Spec{
		Machine:   machine.Config{Nodes: *nodes, ProcsPerNode: *procs, PEsPerProc: *pes, Seed: *seed},
		VPs:       *vps,
		Method:    kind,
		EnvPolicy: scenario.EnvBridges2,
		Tweaks: scenario.EnvTweaks{
			OldOrPatchedLinker: *oldLinker,
			PatchedGlibc:       *patched,
			MPCToolchain:       *mpc,
		},
		Workload:       *program,
		WorkloadParams: scenario.WorkloadParams{Quick: *quick},
		Balancer:       strategy,
	}
	built, err := sp.Build()
	if err != nil {
		fail(err)
	}
	w := built.World
	if *timeline != "" {
		w.EnableTracing()
	}
	if err := w.Run(); err != nil {
		fail(err)
	}
	if built.Report != nil {
		built.Report()
	}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fail(err)
		}
		if err := w.WriteTimeline(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("timeline:       %s\n", *timeline)
	}

	fmt.Printf("\n--- run statistics ---\n")
	fmt.Printf("machine:        %d node(s) x %d proc(s) x %d PE(s), %d virtual ranks (%s)\n",
		*nodes, *procs, *pes, *vps, kind)
	fmt.Printf("startup:        %s\n", trace.FormatDuration(w.SetupDone))
	fmt.Printf("execution:      %s\n", trace.FormatDuration(w.ExecutionTime()))
	fmt.Printf("ULT switches:   %d\n", w.TotalSwitches())
	fmt.Printf("migrations:     %d (%s)\n", w.Migrations, trace.FormatBytes(int64(w.MigratedBytes)))
	if *stats {
		fmt.Println()
		fmt.Println(w.Stats().Table())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ampirun: %v\n", err)
	os.Exit(1)
}
