// Command ampirun launches a built-in MPI program on the simulated
// cluster with virtualization, mirroring AMPI's launcher interface:
//
//	ampirun -program hello -vp 8 -pes 2 -privatize pieglobals
//	ampirun -program jacobi -vp 64 -pes 8 -privatize tlsglobals
//	ampirun -program adcirc -vp 128 -pes 16 -lb greedyrefine
//	ampirun -program ping -privatize swapglobals -oldlinker
//
// It prints per-run statistics: startup time, execution time, context
// switches, migrations, and program-specific output. Add -stats for a
// per-PE utilization breakdown and -timeline FILE for a
// Projections-style JSON execution trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
	"provirt/internal/workloads/jacobi"
	"provirt/internal/workloads/synth"
)

func main() {
	var (
		program   = flag.String("program", "hello", "program to run: hello, jacobi, adcirc, ping, empty")
		vps       = flag.Int("vp", 4, "number of virtual ranks (+vp N)")
		nodes     = flag.Int("nodes", 1, "cluster nodes")
		procs     = flag.Int("procs", 1, "OS processes per node")
		pes       = flag.Int("pes", 1, "PEs (cores) per process; >1 is SMP mode")
		method    = flag.String("privatize", "pieglobals", "privatization method (none, manual, photran, swapglobals, tlsglobals, fmpc-privatize, pipglobals, fsglobals, pieglobals)")
		balancer  = flag.String("lb", "", "load balancer: greedy, greedyrefine, hierarchical, rotate, null (empty = none)")
		oldLinker = flag.Bool("oldlinker", false, "pretend ld <= 2.23 (enables swapglobals)")
		patched   = flag.Bool("patched-glibc", false, "use the PIP project's patched glibc (lifts the 12-namespace limit)")
		mpc       = flag.Bool("mpc-compiler", false, "use an MPC-patched compiler (enables -fmpc-privatize)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		stats     = flag.Bool("stats", false, "print the per-PE utilization breakdown")
		timeline  = flag.String("timeline", "", "write a Projections-style JSON execution timeline to this file")
	)
	flag.Parse()

	kind, err := core.ParseKind(*method)
	if err != nil {
		fail(err)
	}
	tc, osEnv := core.Bridges2Env()
	osEnv.OldOrPatchedLinker = *oldLinker
	osEnv.PatchedGlibc = *patched
	tc.MPCPatched = *mpc

	var strategy lb.Strategy
	switch *balancer {
	case "":
	case "greedy":
		strategy = lb.GreedyLB{}
	case "greedyrefine":
		strategy = lb.GreedyRefineLB{}
	case "hierarchical":
		strategy = lb.HierarchicalLB{PEsPerNode: *pes}
	case "rotate":
		strategy = lb.RotateLB{}
	case "null":
		strategy = lb.NullLB{}
	default:
		fail(fmt.Errorf("unknown balancer %q", *balancer))
	}

	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: *nodes, ProcsPerNode: *procs, PEsPerProc: *pes, Seed: *seed},
		VPs:       *vps,
		Privatize: kind,
		Toolchain: tc,
		OS:        osEnv,
		Balancer:  strategy,
	}

	prog, report := buildProgram(*program, strategy != nil)
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		fail(err)
	}
	if *timeline != "" {
		w.EnableTracing()
	}
	if err := w.Run(); err != nil {
		fail(err)
	}
	report()
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fail(err)
		}
		if err := w.WriteTimeline(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("timeline:       %s\n", *timeline)
	}

	fmt.Printf("\n--- run statistics ---\n")
	fmt.Printf("machine:        %d node(s) x %d proc(s) x %d PE(s), %d virtual ranks (%s)\n",
		*nodes, *procs, *pes, *vps, kind)
	fmt.Printf("startup:        %s\n", trace.FormatDuration(w.SetupDone))
	fmt.Printf("execution:      %s\n", trace.FormatDuration(w.ExecutionTime()))
	fmt.Printf("ULT switches:   %d\n", w.TotalSwitches())
	fmt.Printf("migrations:     %d (%s)\n", w.Migrations, trace.FormatBytes(int64(w.MigratedBytes)))
	if *stats {
		fmt.Println()
		fmt.Println(w.Stats().Table())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ampirun: %v\n", err)
	os.Exit(1)
}

// buildProgram returns the selected program plus a function that prints
// its collected output after the run.
func buildProgram(name string, hasLB bool) (*ampi.Program, func()) {
	switch name {
	case "hello":
		var results []synth.HelloResult
		prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
		return prog, func() {
			sort.Slice(results, func(i, j int) bool { return results[i].VP < results[j].VP })
			for _, hr := range results {
				fmt.Printf("rank: %d\n", hr.Printed)
			}
		}
	case "jacobi":
		cfg := jacobi.DefaultConfig()
		var results []jacobi.Result
		prog := jacobi.New(cfg, func(r jacobi.Result) { results = append(results, r) })
		return prog, func() {
			var resid float64
			var accesses uint64
			for _, r := range results {
				resid = r.Residual
				accesses += r.Accesses
			}
			fmt.Printf("jacobi3d: %dx%dx%d grid, %d iterations, residual %.6g, %d privatized accesses\n",
				cfg.NX, cfg.NY, cfg.NZ, cfg.Iters, resid, accesses)
		}
	case "adcirc":
		cfg := adcirc.DefaultConfig()
		if !hasLB {
			cfg.LBPeriod = 0
		}
		var volume uint64
		prog := adcirc.New(cfg, func(r adcirc.Result) { volume += r.WetCellSteps })
		return prog, func() {
			fmt.Printf("adcirc: %dx%d grid, %d steps, total wet-cell updates %d (oracle %d)\n",
				cfg.Width, cfg.Height, cfg.Steps, volume, adcirc.TotalWetCellSteps(cfg))
		}
	case "ping":
		return synth.Ping(), func() {
			fmt.Printf("ping: %d context switches between two user-level threads\n", synth.PingCount)
		}
	case "empty":
		return synth.Empty(), func() {}
	default:
		fail(fmt.Errorf("unknown program %q (try hello, jacobi, adcirc, ping, empty)", name))
		return nil, nil
	}
}
