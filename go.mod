module provirt

go 1.22
