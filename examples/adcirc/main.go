// ADCIRC storm-surge surrogate with dynamic load balancing (§4.6).
//
// The computationally intensive region follows the flood front as it
// spreads across the coastal grid, so static decompositions go out of
// balance. The example runs the same storm three ways on 8 PEs:
//
//  1. baseline: one rank per PE, no balancing;
//  2. overdecomposed 8x, no balancing (latency hiding only);
//  3. overdecomposed 8x with GreedyRefineLB migrating ranks under
//     PIEglobals.
//
// Run with: go run ./examples/adcirc [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

func main() {
	quick := flag.Bool("quick", false, "reduced problem size (smoke runs)")
	flag.Parse()

	cfg := adcirc.DefaultConfig()
	if *quick {
		cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
	}
	const pes = 8

	type variant struct {
		name     string
		vps      int
		balancer lb.Strategy
	}
	variants := []variant{
		{"baseline (1 rank/PE, no LB)", pes, nil},
		{"8x virtualization, no LB", pes * 8, nil},
		{"8x virtualization + GreedyRefineLB", pes * 8, lb.GreedyRefineLB{}},
	}

	tbl := trace.NewTable(
		fmt.Sprintf("ADCIRC surrogate: %dx%d grid, %d steps, %d PEs, PIEglobals",
			cfg.Width, cfg.Height, cfg.Steps, pes),
		"Configuration", "Execution", "Migrations", "Moved", "Speedup")
	var baseline float64
	for _, v := range variants {
		run := cfg
		if v.balancer == nil {
			run.LBPeriod = 0
		}
		var volume uint64
		sp := scenario.Spec{
			Machine:  machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
			VPs:      v.vps,
			Method:   core.KindPIEglobals,
			Program:  adcirc.New(run, func(r adcirc.Result) { volume += r.WetCellSteps }),
			Balancer: v.balancer,
		}
		w, err := sp.Run()
		if err != nil {
			log.Fatalf("adcirc: %v", err)
		}
		if oracle := adcirc.TotalWetCellSteps(run); volume != oracle {
			log.Fatalf("adcirc: volume %d != oracle %d — decomposition bug", volume, oracle)
		}
		secs := w.ExecutionTime().Seconds()
		if baseline == 0 {
			baseline = secs
		}
		tbl.AddRow(
			v.name,
			trace.FormatDuration(w.ExecutionTime()),
			fmt.Sprint(w.Migrations),
			trace.FormatBytes(int64(w.MigratedBytes)),
			fmt.Sprintf("%+.0f%%", (baseline/secs-1)*100),
		)
	}
	fmt.Println(tbl)
	fmt.Println("Every configuration computes the same total wet-cell work;")
	fmt.Println("migration lets the runtime chase the storm across the PEs.")
}
