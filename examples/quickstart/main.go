// Quickstart: the paper's Fig. 2/3 demonstration.
//
// An MPI "hello world" that stores its rank number in a mutable global
// variable is run with 2 virtual ranks inside 1 OS process — first
// without privatization (both ranks print the last writer's value, the
// bug of Fig. 3), then under each privatization method that fixes it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

func main() {
	fmt.Println("$ ./hello_world +vp 2   # no privatization (Fig. 3)")
	run(core.KindNone)

	for _, kind := range []core.Kind{
		core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	} {
		fmt.Printf("\n$ ./hello_world +vp 2   # -privatize %s\n", kind)
		run(kind)
	}

	fmt.Println("\nEach runtime method privatizes the global automatically;")
	fmt.Println("only PIEglobals additionally supports dynamic rank migration.")
}

func run(kind core.Kind) {
	var results []synth.HelloResult
	prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: kind,
	}, prog)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	if err := w.Run(); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].VP < results[j].VP })
	for _, hr := range results {
		fmt.Printf("rank: %d\n", hr.Printed)
	}
}
