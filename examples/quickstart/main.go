// Quickstart: the paper's Fig. 2/3 demonstration.
//
// An MPI "hello world" that stores its rank number in a mutable global
// variable is run with 2 virtual ranks inside 1 OS process — first
// without privatization (both ranks print the last writer's value, the
// bug of Fig. 3), then under each privatization method that fixes it.
//
// Each run is declared as a scenario.Spec naming the registered
// "hello" workload; the Spec's Build resolves the workload and its
// report function.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "reduced problem size (already tiny; accepted for smoke-run uniformity)")
	flag.Parse()

	fmt.Println("$ ./hello_world +vp 2   # no privatization (Fig. 3)")
	run(core.KindNone, *quick)

	for _, kind := range []core.Kind{
		core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	} {
		fmt.Printf("\n$ ./hello_world +vp 2   # -privatize %s\n", kind)
		run(kind, *quick)
	}

	fmt.Println("\nEach runtime method privatizes the global automatically;")
	fmt.Println("only PIEglobals additionally supports dynamic rank migration.")
}

func run(kind core.Kind, quick bool) {
	sp := scenario.Spec{
		Machine:        machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:            2,
		Method:         kind,
		Workload:       "hello",
		WorkloadParams: scenario.WorkloadParams{Quick: quick},
	}
	built, err := sp.Build()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	if err := built.World.Run(); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	built.Report()
}
