// Jacobi-3D under overdecomposition: the workload behind Figs. 6 and 7.
//
// A 7-point stencil solve is run at several virtualization ratios on
// the same 4-PE machine. More virtual ranks than cores lets the
// message-driven scheduler overlap one rank's halo waits with another
// rank's compute, and the run prints how execution time responds.
// All inner-loop variables (relaxation coefficient, grid spacings) are
// privatized globals, so the run also reports the privatized-access
// count.
//
// Run with: go run ./examples/jacobi3d [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/trace"
	"provirt/internal/workloads/jacobi"
)

func main() {
	quick := flag.Bool("quick", false, "reduced problem size (smoke runs)")
	flag.Parse()

	cfg := jacobi.Config{NX: 48, NY: 48, NZ: 48, Iters: 25}
	ratios := []int{1, 2, 4, 8}
	if *quick {
		cfg = jacobi.Config{NX: 16, NY: 16, NZ: 16, Iters: 6}
		ratios = []int{1, 2}
	}
	const pes = 4

	tbl := trace.NewTable(
		fmt.Sprintf("Jacobi-3D %d^3, %d iterations, %d PEs, PIEglobals", cfg.NX, cfg.Iters, pes),
		"VPs", "ratio", "execution", "ULT switches", "privatized accesses", "residual")
	for _, ratio := range ratios {
		vps := pes * ratio
		var accesses uint64
		var residual float64
		sp := scenario.Spec{
			Machine: machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
			VPs:     vps,
			Method:  core.KindPIEglobals,
			Program: jacobi.New(cfg, func(r jacobi.Result) {
				accesses += r.Accesses
				residual = r.Residual
			}),
		}
		w, err := sp.Run()
		if err != nil {
			log.Fatalf("jacobi3d: %v", err)
		}
		tbl.AddRow(
			fmt.Sprint(vps),
			fmt.Sprintf("%dx", ratio),
			trace.FormatDuration(w.ExecutionTime()),
			fmt.Sprint(w.TotalSwitches()),
			fmt.Sprint(accesses),
			fmt.Sprintf("%.6g", residual),
		)
	}
	fmt.Println(tbl)
	fmt.Println("The residual is identical at every ratio: decomposition and")
	fmt.Println("privatization change performance, never the numerical answer.")
}
