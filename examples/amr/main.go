// Adaptive mesh refinement under virtualization: the "increase
// resolution only where needed" workload the paper's introduction
// motivates.
//
// A shock front sweeps a block-structured mesh; blocks near the front
// refine up to 3 levels (64x the coarse work). Because each rank owns
// a spatially contiguous tile, refinement concentrates load on
// whichever ranks the front is crossing — and the periodic regrid step
// (AMPI_Migrate + GreedyRefineLB under PIEglobals) chases it.
//
// Run with: go run ./examples/amr [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/trace"
	"provirt/internal/workloads/amr"
)

func main() {
	quick := flag.Bool("quick", false, "reduced problem size (smoke runs)")
	flag.Parse()

	cfg := amr.DefaultConfig()
	if *quick {
		cfg.BlocksX, cfg.BlocksY, cfg.Steps, cfg.RegridEvery = 8, 8, 8, 4
	}
	const pes = 8

	fmt.Printf("AMR: %dx%d blocks, %d cells/block-edge, %d refinement levels, %d steps\n",
		cfg.BlocksX, cfg.BlocksY, cfg.BlockCells, cfg.MaxLevel, cfg.Steps)
	fmt.Printf("oracle fine-cell updates: %d\n\n", amr.TotalCellUpdates(cfg))

	tbl := trace.NewTable("8 PEs, PIEglobals",
		"Configuration", "Execution", "Migrations", "Speedup")
	var baseline float64
	for _, v := range []struct {
		name     string
		vps      int
		regrid   bool
		balancer lb.Strategy
	}{
		{"static, 1 rank/PE", pes, false, nil},
		{"4x virtualization, no regrid LB", pes * 4, false, nil},
		{"4x virtualization + regrid LB", pes * 4, true, lb.GreedyRefineLB{}},
	} {
		run := cfg
		if !v.regrid {
			run.RegridEvery = 0
		}
		var updates uint64
		sp := scenario.Spec{
			Machine:  machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
			VPs:      v.vps,
			Method:   core.KindPIEglobals,
			Program:  amr.New(run, func(r amr.Result) { updates += r.CellUpdates }),
			Balancer: v.balancer,
		}
		w, err := sp.Run()
		if err != nil {
			log.Fatalf("amr: %v", err)
		}
		if updates != amr.TotalCellUpdates(run) {
			log.Fatalf("amr: work accounting broken: %d", updates)
		}
		secs := w.ExecutionTime().Seconds()
		if baseline == 0 {
			baseline = secs
		}
		tbl.AddRow(v.name, trace.FormatDuration(w.ExecutionTime()),
			fmt.Sprint(w.Migrations), fmt.Sprintf("%+.0f%%", (baseline/secs-1)*100))
	}
	fmt.Println(tbl)
	fmt.Println("Refinement follows the front; rank migration follows the refinement.")
}
