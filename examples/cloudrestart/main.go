// Cloud stop/restart: the elasticity scenario from the paper's
// introduction — "What happens if the price of compute resources
// changes during a run — can the job be stopped and restarted from
// that point later on?"
//
// A 16-rank iterative solve checkpoints to the shared filesystem part
// way through. The job is then "interrupted" (spot price spike) and
// restarted from the snapshot on HALF the cores — possible because
// rank state serializes placement-independently through Isomalloc, and
// 16 virtual ranks run as happily on 4 PEs as on 8. Each rank resumes
// from its restored iteration counter; the final answer matches an
// uninterrupted run exactly. The restarted phase is declared as a
// scenario.Spec whose Restart field carries the snapshot.
//
// Phase 3 replays the same story hands-free: the elastic supervisor
// (ft.RunElastic) receives the reclaim as a churn event with a notice
// window, drains the job through a checkpoint at the next consistency
// point, shrinks the machine onto the surviving node, and restarts
// from the snapshot — zero rework, node-hours accounted.
//
// Run with: go run ./examples/cloudrestart [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/ft"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

const vps = 16

func image() *elf.Image {
	return elf.NewBuilder("cloudsolver").
		TaggedGlobal("iter", 0).
		TaggedGlobal("local_sum", 0).
		Func("main", 4096).
		CodeBulk(2 << 20).
		MustBuild()
}

// program iterates, accumulating into privatized state; interrupt=true
// stops the job right after the checkpoint (the price spike).
func program(interrupt bool, totalIters, ckptAt int, finals []uint64) *ampi.Program {
	return &ampi.Program{
		Image: image(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < totalIters {
				it := ctx.Load("iter")
				ctx.Store("local_sum", ctx.Load("local_sum")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(50_000) // 50us of work per iteration
				if int(it+1) == ckptAt {
					r.Checkpoint("/scratch/cloud")
					if interrupt {
						return // the job is torn down here
					}
				}
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("local_sum")
		},
	}
}

// elasticProgram is the same solve written for supervision: it offers
// the runtime a checkpoint at every iteration boundary
// (CheckpointIfDue — a no-op until a policy arms it), which is also
// what lets the elastic supervisor drain the job on demand.
func elasticProgram(totalIters int, finals []uint64) *ampi.Program {
	return &ampi.Program{
		Image: image(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < totalIters {
				it := ctx.Load("iter")
				ctx.Store("local_sum", ctx.Load("local_sum")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(50_000)
				r.CheckpointIfDue()
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("local_sum")
		},
	}
}

func expected(rank, totalIters int) uint64 {
	var sum uint64
	for it := 1; it <= totalIters; it++ {
		sum += uint64(it) * uint64(rank+1)
	}
	return sum
}

func main() {
	quick := flag.Bool("quick", false, "reduced iteration count (smoke runs)")
	flag.Parse()
	totalIters, ckptAt := 24, 10
	if *quick {
		totalIters, ckptAt = 8, 4
	}

	// Phase 1: 8 PEs, interrupted at the checkpoint.
	fmt.Printf("phase 1: %d ranks on 8 PEs, checkpoint at iteration %d/%d, then interrupted\n",
		vps, ckptAt, totalIters)
	sp1 := scenario.Spec{
		Machine: machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:     vps,
		Method:  core.KindPIEglobals,
		Program: program(true, totalIters, ckptAt, make([]uint64, vps)),
	}
	w1, err := sp1.Run()
	if err != nil {
		log.Fatalf("cloudrestart: %v", err)
	}
	ck := w1.LastCheckpoint()
	if ck == nil {
		log.Fatal("cloudrestart: no checkpoint taken")
	}
	fmt.Printf("  snapshot: %s across %d rank files, durable at t=%s\n",
		trace.FormatBytes(int64(ck.Bytes)), ck.VPs, trace.FormatDuration(ck.Taken))

	// Phase 2: prices dropped on a smaller instance type — restart on
	// 4 PEs.
	fmt.Printf("phase 2: restart from the snapshot on 4 PEs (half the cores)\n")
	finals := make([]uint64, vps)
	sp2 := scenario.Spec{
		Machine: machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:     vps,
		Method:  core.KindPIEglobals,
		Program: program(false, totalIters, ckptAt, finals),
		Restart: ck,
	}
	w2, err := sp2.Run()
	if err != nil {
		log.Fatalf("cloudrestart: %v", err)
	}
	for vp, got := range finals {
		if got != expected(vp, totalIters) {
			log.Fatalf("cloudrestart: rank %d finished with %d, want %d — lost work!", vp, got, expected(vp, totalIters))
		}
	}
	fmt.Printf("  all %d ranks resumed at iteration %d and finished with the exact\n", vps, ckptAt)
	fmt.Printf("  uninterrupted answers (restart read %s back through the shared FS).\n",
		trace.FormatBytes(int64(ck.Bytes)))
	fmt.Printf("  restarted job: startup %s, execution %s\n",
		trace.FormatDuration(w2.SetupDone), trace.FormatDuration(w2.ExecutionTime()))

	// Phase 3: the same reclaim, handled by the elastic supervisor.
	// The spot market gives node 1 a generous notice; the supervisor
	// drains the job through a checkpoint, shrinks onto node 0's PEs,
	// and restarts from the snapshot — no hand-written phases.
	fmt.Printf("phase 3: supervised elastic run — node 1 reclaimed with notice, supervisor drains and shrinks\n")
	sp3 := scenario.Spec{
		Machine: machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:     vps,
		Method:  core.KindPIEglobals,
	}
	cfg3, err := sp3.Config()
	if err != nil {
		log.Fatalf("cloudrestart: %v", err)
	}
	cfg3.Checkpoint = &ampi.CheckpointPolicy{
		Target:   ampi.TargetFS,
		Dir:      "/scratch/cloud-elastic",
		Interval: 200 * sim.Time(time.Microsecond),
	}
	finals3 := make([]uint64, vps)
	rep, err := ft.RunElastic(ft.ElasticJob{
		Config:  cfg3,
		Program: func() *ampi.Program { return elasticProgram(totalIters, finals3) },
		Churn: ft.ChurnPlan{Events: []ft.ChurnEvent{{
			Kind:   ft.Eviction,
			At:     sim.Time(500 * time.Microsecond),
			Node:   1,
			Notice: sim.Time(250 * time.Millisecond),
		}}},
		Recovery: ft.Shrink,
	})
	if err != nil {
		log.Fatalf("cloudrestart: elastic: %v", err)
	}
	for vp, got := range finals3 {
		if got != expected(vp, totalIters) {
			log.Fatalf("cloudrestart: elastic rank %d finished with %d, want %d — lost work!", vp, got, expected(vp, totalIters))
		}
	}
	for _, rz := range rep.Resizes {
		fmt.Printf("  epoch: %s at t=%s -> %d node(s), drained=%v, rework=%s\n",
			rz.Kind, trace.FormatDuration(rz.At), rz.Nodes, rz.Drained, trace.FormatDuration(rz.Rework))
	}
	fmt.Printf("  answers again exact across %d attempt(s); time-to-solution %s, %s node-hours\n",
		rep.Attempts, trace.FormatDuration(rep.TotalTime), machine.FormatNodeHours(rep.NodeSeconds))
}
