// Migration walkthrough: what PIEglobals actually moves, and how the
// pieglobalsfind debugging facility translates privatized addresses.
//
// A single rank with a 14 MB (ADCIRC-sized) code segment and a user
// heap is migrated across nodes under TLSglobals and PIEglobals; the
// example prints each payload's composition and timing (the Fig. 8
// asymmetry), then demonstrates pieglobalsfind on a privatized function
// address.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

const userHeap = 8 << 20 // 8 MiB of application state

func main() {
	fmt.Println("Migrating one rank (ADCIRC-sized binary, 8 MiB user heap) across nodes:")
	fmt.Println()
	tbl := trace.NewTable("", "Method", "Payload", "Migration time", "Notes")
	for _, kind := range []core.Kind{core.KindTLSglobals, core.KindPIEglobals} {
		rec := migrateOnce(kind)
		note := "stack + heap + TLS block"
		if kind == core.KindPIEglobals {
			note = "stack + heap + TLS + code & data segments"
		}
		tbl.AddRow(kind.String(), trace.FormatBytes(int64(rec.Bytes)),
			trace.FormatDuration(rec.Duration), note)
	}
	fmt.Println(tbl)

	demoPieglobalsFind()

	fmt.Println("\nNon-migratable methods refuse politely:")
	prog := &ampi.Program{
		Image: adcirc.Image(),
		Main:  func(r *ampi.Rank) { r.Migrate() },
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindPIPglobals,
		Balancer:  forceMove{},
	}, prog)
	if err != nil {
		log.Fatalf("migration: %v", err)
	}
	if err := w.Run(); err != nil {
		fmt.Printf("  %v\n", err)
	} else {
		log.Fatal("migration: expected PIPglobals migration to fail")
	}
}

func migrateOnce(kind core.Kind) ampi.MigrationRecord {
	prog := &ampi.Program{
		Image: adcirc.Image(),
		Main: func(r *ampi.Rank) {
			if _, err := r.Ctx().Heap.AllocBallast(userHeap, "app-state"); err != nil {
				panic(err)
			}
			r.Migrate()
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: kind,
		Balancer:  lb.RotateLB{},
	}, prog)
	if err != nil {
		log.Fatalf("migration: %v", err)
	}
	if err := w.Run(); err != nil {
		log.Fatalf("migration: %v", err)
	}
	recs := w.LastMigrations()
	if len(recs) != 1 {
		log.Fatalf("migration: %d records", len(recs))
	}
	return recs[0]
}

func demoPieglobalsFind() {
	fmt.Println("pieglobalsfind: translating a privatized address for the debugger:")
	prog := &ampi.Program{
		Image: adcirc.Image(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			addr, err := ctx.FuncAddr("momentum_solve")
			if err != nil {
				panic(err)
			}
			res, err := core.PieglobalsFind(ctx, addr+0x42)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  privatized %#x -> original %#x  (%s+%#x in %s segment)\n",
				addr+0x42, res.Original, res.Symbol, res.Offset, res.Segment)
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindPIEglobals,
	}, prog)
	if err != nil {
		log.Fatalf("migration: %v", err)
	}
	if err := w.Run(); err != nil {
		log.Fatalf("migration: %v", err)
	}
}

// forceMove deliberately ignores migratability to show the runtime's
// enforcement.
type forceMove struct{}

func (forceMove) Name() string { return "forceMove" }
func (forceMove) Rebalance(loads []lb.RankLoad, numPEs int) []int {
	out := make([]int, len(loads))
	for i, l := range loads {
		out[i] = (l.PE + 1) % numPEs
	}
	return out
}
