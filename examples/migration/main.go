// Migration walkthrough: what PIEglobals actually moves, and how the
// pieglobalsfind debugging facility translates privatized addresses.
//
// A single rank with a 14 MB (ADCIRC-sized) code segment and a user
// heap is migrated across nodes under TLSglobals and PIEglobals; the
// example prints each payload's composition and timing (the Fig. 8
// asymmetry), then demonstrates pieglobalsfind on a privatized function
// address. Finally, a non-migratable method is paired with a load
// balancer to show scenario.Spec rejecting the combination up front,
// before any world is built.
//
// Run with: go run ./examples/migration [-quick]
package main

import (
	"flag"
	"fmt"
	"log"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

func main() {
	quick := flag.Bool("quick", false, "reduced user-heap size (smoke runs)")
	flag.Parse()
	userHeap := uint64(8 << 20) // 8 MiB of application state
	if *quick {
		userHeap = 1 << 20
	}

	fmt.Printf("Migrating one rank (ADCIRC-sized binary, %s user heap) across nodes:\n",
		trace.FormatBytes(int64(userHeap)))
	fmt.Println()
	tbl := trace.NewTable("", "Method", "Payload", "Migration time", "Notes")
	for _, kind := range []core.Kind{core.KindTLSglobals, core.KindPIEglobals} {
		rec := migrateOnce(kind, userHeap)
		note := "stack + heap + TLS block"
		if kind == core.KindPIEglobals {
			note = "stack + heap + TLS + code & data segments"
		}
		tbl.AddRow(kind.String(), trace.FormatBytes(int64(rec.Bytes)),
			trace.FormatDuration(rec.Duration), note)
	}
	fmt.Println(tbl)

	demoPieglobalsFind()

	fmt.Println("\nNon-migratable methods refuse up front, at Spec validation:")
	bad := scenario.Spec{
		Machine: machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:     1,
		Method:  core.KindPIPglobals,
		Program: &ampi.Program{
			Image: adcirc.Image(),
			Main:  func(r *ampi.Rank) { r.Migrate() },
		},
		Balancer: lb.RotateLB{},
	}
	if err := bad.Validate(); err != nil {
		fmt.Printf("  %v\n", err)
	} else {
		log.Fatal("migration: expected PIPglobals + balancer to fail validation")
	}
}

func migrateOnce(kind core.Kind, userHeap uint64) ampi.MigrationRecord {
	sp := scenario.Spec{
		Machine: machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:     1,
		Method:  kind,
		Program: &ampi.Program{
			Image: adcirc.Image(),
			Main: func(r *ampi.Rank) {
				if _, err := r.Ctx().Heap.AllocBallast(userHeap, "app-state"); err != nil {
					panic(err)
				}
				r.Migrate()
			},
		},
		Balancer: lb.RotateLB{},
	}
	w, err := sp.Run()
	if err != nil {
		log.Fatalf("migration: %v", err)
	}
	recs := w.LastMigrations()
	if len(recs) != 1 {
		log.Fatalf("migration: %d records", len(recs))
	}
	return recs[0]
}

func demoPieglobalsFind() {
	fmt.Println("pieglobalsfind: translating a privatized address for the debugger:")
	sp := scenario.Spec{
		Machine: machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:     1,
		Method:  core.KindPIEglobals,
		Program: &ampi.Program{
			Image: adcirc.Image(),
			Main: func(r *ampi.Rank) {
				ctx := r.Ctx()
				addr, err := ctx.FuncAddr("momentum_solve")
				if err != nil {
					panic(err)
				}
				res, err := core.PieglobalsFind(ctx, addr+0x42)
				if err != nil {
					panic(err)
				}
				fmt.Printf("  privatized %#x -> original %#x  (%s+%#x in %s segment)\n",
					addr+0x42, res.Original, res.Symbol, res.Offset, res.Segment)
			},
		},
	}
	if _, err := sp.Run(); err != nil {
		log.Fatalf("migration: %v", err)
	}
}
