// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus raw microbenchmarks of the substrate. Custom
// metrics carry the reproduced quantities:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks report virtual-time results via
// b.ReportMetric (suffix names the unit); wall-clock ns/op measures
// only the simulator's own speed.
package provirt

import (
	"fmt"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/mem"
	"provirt/internal/papi"
	"provirt/internal/ult"
	"provirt/internal/workloads/adcirc"
	"provirt/internal/workloads/jacobi"
	"provirt/internal/workloads/synth"
)

// ---------------------------------------------------------------------
// Table 1 / Table 3 (E1): feature matrices.
// ---------------------------------------------------------------------

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1().NumRows() != 6 {
			b.Fatal("table 1 row count")
		}
	}
}

func BenchmarkTable3FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table3().NumRows() != 8 {
			b.Fatal("table 3 row count")
		}
	}
}

// ---------------------------------------------------------------------
// Figure 5 (E3): startup overhead at 8x virtualization.
// ---------------------------------------------------------------------

func BenchmarkFig5Startup(b *testing.B) {
	for _, kind := range harness.Fig5Methods() {
		b.Run(kind.String(), func(b *testing.B) {
			var rows []harness.Fig5Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, _, err = harness.Fig5Startup(harness.Opts{}, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range rows {
				if r.Method == kind {
					b.ReportMetric(float64(r.Startup.Milliseconds()), "startup-ms")
					b.ReportMetric((r.VsBaseline-1)*100, "overhead-%")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 6 (E4): user-level thread context-switch time.
// ---------------------------------------------------------------------

func BenchmarkFig6ContextSwitch(b *testing.B) {
	var rows []harness.Fig6Row
	var err error
	rows, _, err = harness.Fig6ContextSwitch(harness.Opts{})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.Method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows2, _, err := harness.Fig6ContextSwitch(harness.Opts{})
				if err != nil {
					b.Fatal(err)
				}
				rows = rows2
			}
			for _, r := range rows {
				if r.Method == row.Method {
					b.ReportMetric(float64(r.PerSwitch.Nanoseconds()), "switch-ns")
					b.ReportMetric(float64(r.OverBaseline.Nanoseconds()), "over-baseline-ns")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7 (E5): privatized variable access (Jacobi-3D).
// ---------------------------------------------------------------------

func BenchmarkFig7JacobiAccess(b *testing.B) {
	rows, _, err := harness.Fig7JacobiAccess(harness.Opts{})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.Method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows2, _, err := harness.Fig7JacobiAccess(harness.Opts{})
				if err != nil {
					b.Fatal(err)
				}
				rows = rows2
			}
			for _, r := range rows {
				if r.Method == row.Method {
					b.ReportMetric(float64(r.Time.Microseconds()), "exec-us")
					b.ReportMetric((r.VsBaseline-1)*100, "vs-baseline-%")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 8 (E6): migration time vs heap size, TLSglobals vs PIEglobals.
// ---------------------------------------------------------------------

func BenchmarkFig8Migration(b *testing.B) {
	var rows []harness.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = harness.Fig8Migration(harness.Opts{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := fmt.Sprintf("heap-%dMiB", r.HeapBytes>>20)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = r
			}
			b.ReportMetric(float64(r.TLSTime.Microseconds()), "tls-us")
			b.ReportMetric(float64(r.PIETime.Microseconds()), "pie-us")
			b.ReportMetric(float64(r.PIETime)/float64(r.TLSTime), "pie/tls")
		})
	}
}

// ---------------------------------------------------------------------
// §4.5 (E7): L1 instruction cache misses on the two site geometries.
// ---------------------------------------------------------------------

func BenchmarkICacheMisses(b *testing.B) {
	var rows []harness.ICacheRow
	for i := 0; i < b.N; i++ {
		rows, _ = harness.ICacheExperiment()
	}
	for _, r := range rows {
		r := r
		b.Run(r.Site, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = r
			}
			b.ReportMetric(float64(r.TLSMisses), "tls-misses")
			b.ReportMetric(float64(r.PIEMisses), "pie-misses")
			b.ReportMetric(r.Advantage*100, "winner-advantage-%")
		})
	}
}

// ---------------------------------------------------------------------
// Table 2 + Figure 9 (E8/E9): ADCIRC strong scaling with
// virtualization and load balancing. The bench sweeps a reduced core
// set to keep wall time sane; cmd/privbench runs the full sweep.
// ---------------------------------------------------------------------

func BenchmarkTable2AdcircSpeedup(b *testing.B) {
	var rows []harness.AdcircRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, _, err = harness.AdcircScaling(harness.Opts{}, adcirc.DefaultConfig(), []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		r := r
		b.Run(fmt.Sprintf("cores-%d", r.Cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = r
			}
			b.ReportMetric(r.SpeedupPct, "speedup-%")
			b.ReportMetric(float64(r.BestRatio), "best-ratio")
		})
	}
}

func BenchmarkFig9AdcircScaling(b *testing.B) {
	var rows []harness.AdcircRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, _, err = harness.AdcircScaling(harness.Opts{}, adcirc.DefaultConfig(), []int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		for _, p := range r.Points {
			p := p
			b.Run(fmt.Sprintf("cores-%d/ratio-%d", p.Cores, p.Ratio), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = p
				}
				b.ReportMetric(float64(p.Time.Milliseconds()), "exec-ms")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks: wall-clock speed of the simulator itself.
// ---------------------------------------------------------------------

func BenchmarkULTSwitchRaw(b *testing.B) {
	cl, err := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := ult.NewScheduler(cl.PE(0), cl.Engine, cl.Cost)
	th := ult.NewThread(0, func(t *ult.Thread) {
		for i := 0; i < b.N; i++ {
			t.Yield()
		}
	})
	b.ResetTimer()
	s.Adopt(th)
	cl.Engine.Drain()
}

func BenchmarkVarAccess(b *testing.B) {
	for _, kind := range []core.Kind{core.KindNone, core.KindTLSglobals, core.KindPIEglobals} {
		b.Run(kind.String(), func(b *testing.B) {
			var total uint64
			prog := &ampi.Program{
				Image: synth.HelloImage(),
				Main: func(r *ampi.Rank) {
					h := r.Ctx().Var("my_rank")
					for i := 0; i < b.N; i++ {
						h.Store(uint64(i))
						total += h.Load()
					}
				},
			}
			w, err := ampi.NewWorld(ampi.Config{
				Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
				VPs:       1,
				Privatize: kind,
			}, prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := w.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkIsomallocAllocFree(b *testing.B) {
	h := mem.NewHeap(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := h.Alloc(256, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(blk.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapSerializeRestore(b *testing.B) {
	h := mem.NewHeap(1)
	for i := 0; i < 100; i++ {
		if _, err := h.Alloc(1024, "x"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := h.Serialize()
		if mem.Restore(snap) == nil {
			b.Fatal("restore failed")
		}
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, vps := range []int{8, 64} {
		b.Run(fmt.Sprintf("vps-%d", vps), func(b *testing.B) {
			prog := &ampi.Program{
				Image: synth.EmptyImage(),
				Main: func(r *ampi.Rank) {
					for i := 0; i < b.N; i++ {
						r.Allreduce([]float64{1}, ampi.OpSum)
					}
				},
			}
			w, err := ampi.NewWorld(ampi.Config{
				Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
				VPs:       vps,
				Privatize: core.KindPIEglobals,
			}, prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := w.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkCacheSimFetch(b *testing.B) {
	c := papi.NewCache(papi.Bridges2L1I())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(uint64(i) * 64)
	}
}

// BenchmarkAblationMigrationBandwidth shows Fig. 8's sensitivity to
// the interconnect: doubling inter-node bandwidth should shrink PIE
// migration time materially (its payload is bandwidth-bound).
func BenchmarkAblationMigrationBandwidth(b *testing.B) {
	migrate := func(bw float64) float64 {
		cost := machine.Default()
		cost.InterNodeBandwidth = bw
		prog := &ampi.Program{
			Image: adcirc.Image(),
			Main:  func(r *ampi.Rank) { r.Migrate() },
		}
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1, Cost: cost},
			VPs:       1,
			Privatize: core.KindPIEglobals,
			Balancer:  lb.RotateLB{},
		}, prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
		return float64(w.LastMigrations()[0].Duration.Microseconds())
	}
	var base, fast float64
	for i := 0; i < b.N; i++ {
		base = migrate(12e9)
		fast = migrate(24e9)
	}
	b.ReportMetric(base, "12GBps-us")
	b.ReportMetric(fast, "24GBps-us")
}

// BenchmarkAblationLBTrigger compares always-balancing with the
// adaptive imbalance trigger on the ADCIRC run: skipping
// low-imbalance steps avoids migration payload for nearly the same
// balance quality.
func BenchmarkAblationLBTrigger(b *testing.B) {
	run := func(trigger lb.Trigger) (float64, uint64) {
		cfg := adcirc.DefaultConfig()
		cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 192, 256, 24, 4
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
			VPs:       32,
			Privatize: core.KindPIEglobals,
			Balancer:  lb.GreedyRefineLB{},
			Trigger:   trigger,
		}, adcirc.New(cfg, nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
		return float64(w.ExecutionTime().Milliseconds()), w.MigratedBytes
	}
	var alwaysT, trigT float64
	var alwaysB, trigB uint64
	for i := 0; i < b.N; i++ {
		alwaysT, alwaysB = run(nil)
		trigT, trigB = run(lb.ImbalanceTrigger{Threshold: 1.3})
	}
	b.ReportMetric(alwaysT, "always-ms")
	b.ReportMetric(trigT, "triggered-ms")
	b.ReportMetric(float64(alwaysB)/(1<<20), "always-moved-MiB")
	b.ReportMetric(float64(trigB)/(1<<20), "triggered-moved-MiB")
}

// BenchmarkFutureWorkSharedCode quantifies the paper's §6 future-work
// optimization: mapping code segments from a single descriptor removes
// the code bytes from both the per-rank resident footprint and the
// migration payload.
func BenchmarkFutureWorkSharedCode(b *testing.B) {
	measure := func(method core.Method) (payload uint64, resident uint64, dur float64) {
		prog := &ampi.Program{
			Image: adcirc.Image(),
			Main:  func(r *ampi.Rank) { r.Migrate() },
		}
		w, err := ampi.NewWorld(ampi.Config{
			Machine:  machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
			VPs:      1,
			Method:   method,
			Balancer: lb.RotateLB{},
		}, prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
		rec := w.LastMigrations()[0]
		return rec.Bytes, w.Ranks[0].Ctx().Heap.ResidentBytes(), float64(rec.Duration.Microseconds())
	}
	var basePayload, optPayload, baseRes, optRes uint64
	var baseDur, optDur float64
	for i := 0; i < b.N; i++ {
		basePayload, baseRes, baseDur = measure(core.New(core.KindPIEglobals))
		optPayload, optRes, optDur = measure(core.NewPIEglobals(core.PIEOptions{ShareCodePages: true}))
	}
	b.ReportMetric(float64(basePayload)/(1<<20), "copy-payload-MiB")
	b.ReportMetric(float64(optPayload)/(1<<20), "shared-payload-MiB")
	b.ReportMetric(float64(baseRes)/(1<<20), "copy-resident-MiB")
	b.ReportMetric(float64(optRes)/(1<<20), "shared-resident-MiB")
	b.ReportMetric(baseDur, "copy-migration-us")
	b.ReportMetric(optDur, "shared-migration-us")
	if optPayload+adcirc.CodeSegmentBytes > basePayload+1<<20 || optPayload >= basePayload {
		b.Fatalf("shared code pages did not shrink the payload: %d vs %d", optPayload, basePayload)
	}
}

// ---------------------------------------------------------------------
// Million-VP scale (ROADMAP item 1): flat world, tree-modeled
// collectives, shared images.
// ---------------------------------------------------------------------

// BenchmarkScaleMillionVP builds the million-rank flat world and runs
// the full scale experiment (binomial allreduce, then a migration
// storm over an eighth of the ranks). ns/op is the wall-clock cost of
// simulating the whole thing; the metrics carry the reproduced
// quantities, including the host heap footprint per simulated rank —
// the number the compact rank-state work exists to shrink.
func BenchmarkScaleMillionVP(b *testing.B) {
	var rows []harness.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = harness.ScaleExperiment(harness.Opts{}, harness.DefaultScaleVPs)
		if err != nil {
			b.Fatal(err)
		}
	}
	ar, storm := rows[0], rows[1]
	b.ReportMetric(float64(ar.Time.Microseconds()), "allreduce-vt-us")
	b.ReportMetric(float64(storm.Time.Microseconds()), "storm-vt-us")
	b.ReportMetric(float64(storm.Events), "events")
	b.ReportMetric(float64(storm.Migrations), "migrations")
	b.ReportMetric(float64(storm.MigratedBytes)/(1<<20), "moved-MiB")
	b.ReportMetric(float64(ar.PerRankBytes), "model-resident-B/rank")
	b.ReportMetric(float64(ar.SharedBytesPerRank), "model-shared-B/rank")
	b.ReportMetric(float64(ar.HostBuildBytesPerRank), "host-build-B/rank")
	b.ReportMetric(float64(ar.HostPeakBytesPerRank), "host-peak-B/rank")
	if ar.Events != 2*(harness.DefaultScaleVPs-1) {
		b.Fatalf("allreduce fired %d events, want %d", ar.Events, 2*(harness.DefaultScaleVPs-1))
	}
}

// BenchmarkFlatWorldBuild isolates world construction: ns/op is the
// cost of standing up a million rank records (privatization sampled,
// not materialized), the metric its host memory price per rank.
func BenchmarkFlatWorldBuild(b *testing.B) {
	const vps = 1 << 20
	var perRank uint64
	for i := 0; i < b.N; i++ {
		w, err := ampi.NewFlatWorld(ampi.FlatConfig{
			Machine: machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 8},
			VPs:     vps,
			Image:   adcirc.Image(),
		})
		if err != nil {
			b.Fatal(err)
		}
		perRank = w.PerRankBytes
	}
	b.ReportMetric(float64(perRank), "model-resident-B/rank")
}

// BenchmarkAblationJacobiNoHoisting shows Fig. 7's dependence on the
// compiler-hoisting assumption: with hoisting disabled, TLS-indirect
// accesses cost extra per touch and the Jacobi gap opens.
func BenchmarkAblationJacobiNoHoisting(b *testing.B) {
	run := func(hoist bool, kind core.Kind) float64 {
		cost := machine.Default()
		cost.CompilerHoistsIndirection = hoist
		cfg := jacobi.Config{NX: 16, NY: 16, NZ: 16, Iters: 5}
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1, Cost: cost},
			VPs:       1,
			Privatize: kind,
		}, jacobi.New(cfg, nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
		return float64(w.ExecutionTime().Microseconds())
	}
	var hoisted, unhoisted float64
	for i := 0; i < b.N; i++ {
		hoisted = run(true, core.KindTLSglobals)
		unhoisted = run(false, core.KindTLSglobals)
	}
	b.ReportMetric(hoisted, "hoisted-us")
	b.ReportMetric(unhoisted, "unhoisted-us")
	if unhoisted <= hoisted {
		b.Fatal("disabling hoisting should slow privatized access")
	}
}

// BenchmarkScaleMillionVPParallel is the tentpole gate for the
// parallel event loop: the same million-rank scale experiment as
// BenchmarkScaleMillionVP, but with the flat world's event loop
// sharded across lookahead domains (sim.ParallelEngine). workers-1 is
// the serial engine running with composite domain stamps — the honest
// baseline, since the stamp arithmetic is the protocol's fixed cost —
// and higher counts fan the per-PE domains out across host cores. The
// results are byte-identical at every setting (pinned by
// harness.TestScaleSimWorkersIsDeterministic); only ns/op moves.
func BenchmarkScaleMillionVPParallel(b *testing.B) {
	// The tag is workers=N, not workers-N: benchjson strips a trailing
	// -N as the GOMAXPROCS suffix, which would collapse the
	// sub-benchmarks into one record on single-core machines.
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows []harness.ScaleRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, _, err = harness.ScaleExperiment(
					harness.Opts{SimWorkers: workers}, harness.DefaultScaleVPs)
				if err != nil {
					b.Fatal(err)
				}
			}
			ar, storm := rows[0], rows[1]
			b.ReportMetric(float64(ar.Time.Microseconds()), "allreduce-vt-us")
			b.ReportMetric(float64(storm.Time.Microseconds()), "storm-vt-us")
			b.ReportMetric(float64(storm.Events), "events")
			if ar.Events != 2*(harness.DefaultScaleVPs-1) {
				b.Fatalf("allreduce fired %d events, want %d", ar.Events, 2*(harness.DefaultScaleVPs-1))
			}
		})
	}
}
