// Package provirt is a Go reproduction of "Runtime Techniques for
// Automatic Process Virtualization" (Ramos, White, Bhosale, Kale; ICPP
// Workshops '22): an Adaptive-MPI-like runtime whose MPI ranks are
// migratable user-level threads, with the paper's privatization methods
// — Swapglobals, TLSglobals, -fmpc-privatize, PIPglobals, FSglobals,
// and PIEglobals — implemented as strategies over a synthetic ELF/PIE
// process model on a deterministic discrete-event cluster simulator.
//
// See README.md for a guided tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results. The benchmark
// harness in bench_test.go regenerates every table and figure of the
// paper's evaluation; cmd/privbench prints them (-experiment=list
// enumerates the registry). Experiments are declared in
// internal/scenario Specs and run through explicit harness options —
// no package-level knobs.
package provirt
