package trace

import (
	"sync"
	"testing"
)

func TestMemGaugeTracksBuildAndPeak(t *testing.T) {
	g := NewMemGauge()
	// Retain an allocation so the sampled heap genuinely grows past the
	// baseline; the sink assignment keeps the compiler from eliding it.
	buf := make([]byte, 8<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	g.SampleBuild()
	if g.BuildBytes == 0 {
		t.Fatal("BuildBytes = 0 after retaining 8 MiB past the baseline")
	}
	if g.PeakBytes < g.BuildBytes {
		t.Fatalf("peak %d below build %d: SampleBuild must count toward the peak", g.PeakBytes, g.BuildBytes)
	}
	g.Sample()
	if g.PeakBytes < g.BuildBytes {
		t.Fatalf("peak %d fell below build %d after Sample", g.PeakBytes, g.BuildBytes)
	}
	sink = buf
}

// sink keeps test allocations reachable across sample points.
var sink []byte

// A zero-rank world divides by nothing: PerRank(0) (and negative
// counts) must report zeros, not panic.
func TestMemGaugeZeroRankWorld(t *testing.T) {
	g := NewMemGauge()
	g.SampleBuild()
	for _, vps := range []int{0, -1} {
		build, peak := g.PerRank(vps)
		if build != 0 || peak != 0 {
			t.Errorf("PerRank(%d) = (%d, %d), want (0, 0)", vps, build, peak)
		}
	}
	if build, _ := g.PerRank(1); build != g.BuildBytes {
		t.Errorf("PerRank(1) build = %d, want %d", build, g.BuildBytes)
	}
}

// Parallel sweep workers fold readings into one gauge; concurrent
// Sample/PerRank must be race-free and the peak must end at least as
// high as any single sample (run with -race to make this bite).
func TestMemGaugeConcurrentSampling(t *testing.T) {
	g := NewMemGauge()
	g.SampleBuild()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				g.Sample()
				g.PerRank(4)
			}
		}()
	}
	wg.Wait()
	if g.PeakBytes < g.BuildBytes {
		t.Fatalf("peak %d below build %d after concurrent sampling", g.PeakBytes, g.BuildBytes)
	}
}
