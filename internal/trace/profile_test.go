package trace

import (
	"strings"
	"testing"
	"time"
)

func TestBuildProfilePartition(t *testing.T) {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	// Rank 0 on PE 0: switch 1us, exec 10us, wait 4us, exec 5us; run ends
	// at 30us. Rank 1 never runs (pure idle).
	events := []Event{
		{Time: 0, Dur: us(2), Kind: KindSetup, PE: 0, VP: -1},
		{Time: us(2), Dur: us(1), Kind: KindSwitch, PE: 0, VP: 0, Peer: -1},
		{Time: us(3), Dur: us(10), Kind: KindExec, PE: 0, VP: 0},
		{Time: us(13), Dur: us(4), Kind: KindWait, PE: 0, VP: 0, Aux: WaitMessage},
		{Time: us(17), Dur: us(5), Kind: KindExec, PE: 0, VP: 0},
		{Time: us(5), Kind: KindSendPost, PE: 0, VP: 1},
		{Time: us(6), Kind: KindRecvPost, PE: 0, VP: 1},
		{Time: us(8), Dur: us(3), Kind: KindColl, PE: 0, VP: 0, Aux: CollBarrier},
		{Time: us(22), Dur: us(4), Kind: KindWait, PE: 0, VP: 0, Aux: WaitMigrate},
		{Time: us(22), Dur: us(4), Kind: KindMigration, PE: 0, VP: 0, Peer: 1, Bytes: 100},
		{Time: us(30), Kind: KindRunEnd, PE: -1, VP: -1},
	}
	p := BuildProfile(events)
	if p.Span != us(30) {
		t.Fatalf("span %v, want 30us", p.Span)
	}
	if len(p.Ranks) != 2 || p.Ranks[0].VP != 0 || p.Ranks[1].VP != 1 {
		t.Fatalf("ranks %+v", p.Ranks)
	}
	r0 := p.Ranks[0]
	if r0.Compute != us(15) || r0.Blocked != us(8) || r0.Overhead != us(1) {
		t.Fatalf("rank 0 compute=%v blocked=%v overhead=%v", r0.Compute, r0.Blocked, r0.Overhead)
	}
	// Partition: idle is the remainder of the makespan.
	if got := r0.Compute + r0.Blocked + r0.Overhead + r0.Idle; got != p.Span {
		t.Fatalf("rank 0 partition sums to %v, want %v", got, p.Span)
	}
	if r0.MigrateStall != us(4) || r0.Collective != us(3) || r0.Migrations != 1 {
		t.Fatalf("rank 0 inclusive columns: %+v", r0)
	}
	r1 := p.Ranks[1]
	if r1.Compute != 0 || r1.Idle != p.Span {
		t.Fatalf("never-running rank 1 should be all idle: %+v", r1)
	}
	if r1.Sends != 1 || r1.Recvs != 1 {
		t.Fatalf("rank 1 message counts: %+v", r1)
	}
	if len(p.PEs) != 1 {
		t.Fatalf("PEs %+v", p.PEs)
	}
	q := p.PEs[0]
	if q.Setup != us(2) || q.Busy != us(15) || q.Switch != us(1) || q.Switches != 1 {
		t.Fatalf("PE 0 %+v", q)
	}
	if got := q.Setup + q.Busy + q.Switch + q.Idle; got != p.Span {
		t.Fatalf("PE partition sums to %v, want %v", got, p.Span)
	}
}

func TestCriticalPath(t *testing.T) {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	events := []Event{
		{Time: 0, Dur: us(10), Kind: KindExec, PE: 0, VP: 0},
		{Time: 0, Dur: us(20), Kind: KindExec, PE: 1, VP: 1},
		{Time: us(20), Kind: KindRunEnd, PE: -1, VP: -1},
	}
	p := BuildProfile(events)
	cp := p.CriticalPath()
	if cp.VP != 1 || cp.End != us(20) {
		t.Fatalf("critical path %+v, want rank 1 at 20us", cp)
	}
	if cp.Utilization != 1.0 {
		t.Fatalf("utilization %v, want 1.0", cp.Utilization)
	}
	if s := cp.Summary(); !strings.Contains(s, "rank 1") || !strings.Contains(s, "100% compute") {
		t.Fatalf("summary %q", s)
	}

	// Ties break toward the lowest VP.
	tie := BuildProfile([]Event{
		{Time: 0, Dur: us(5), Kind: KindExec, PE: 0, VP: 3},
		{Time: 0, Dur: us(5), Kind: KindExec, PE: 1, VP: 1},
	})
	if cp := tie.CriticalPath(); cp.VP != 1 {
		t.Fatalf("tie broke to rank %d, want 1 (lowest VP)", cp.VP)
	}

	empty := BuildProfile(nil)
	if cp := empty.CriticalPath(); cp.VP != -1 || !strings.Contains(cp.Summary(), "no rank activity") {
		t.Fatalf("empty critical path %+v", cp)
	}
}

func TestProfileTablesRender(t *testing.T) {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	p := BuildProfile([]Event{
		{Time: 0, Dur: us(2), Kind: KindSetup, PE: 0, VP: -1},
		{Time: us(2), Dur: us(8), Kind: KindExec, PE: 0, VP: 0},
		{Time: us(10), Kind: KindRunEnd, PE: -1, VP: -1},
	})
	rt := p.RankTable().String()
	if !strings.Contains(rt, "per-rank utilization") || !strings.Contains(rt, "80%") {
		t.Fatalf("rank table:\n%s", rt)
	}
	pt := p.PETable().String()
	if !strings.Contains(pt, "per-PE utilization") || !strings.Contains(pt, "80%") {
		t.Fatalf("PE table:\n%s", pt)
	}
}
