package trace

import (
	"bytes"
	"testing"
	"time"
)

func windowSampleEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Time: time.Duration(i) * time.Microsecond,
			Dur:  time.Duration(i%7) * 100 * time.Nanosecond,
			Kind: Kind(i % int(numKinds)),
			PE:   int32(i % 8), VP: int32(i % 64), Peer: int32(i%64) - 1,
			Tag: int32(i % 5), Aux: int32(i % 3), Comm: int64(i % 2), Bytes: uint64(i) * 8,
		}
	}
	return evs
}

// TestWindowWriterMatchesRecorder pins the core property: a windowed
// stream is byte-identical to Recorder + WriteJSONL over the same
// events, for any window size, including windows that don't divide the
// stream length.
func TestWindowWriterMatchesRecorder(t *testing.T) {
	evs := windowSampleEvents(1000)
	rec := NewRecorder(AllKinds()...)
	for _, ev := range evs {
		rec.Emit(ev)
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, rec.Events()); err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 7, 64, 1000, 4096} {
		var got bytes.Buffer
		ww := NewWindowWriter(&got, window, AllKinds()...)
		for _, ev := range evs {
			ww.Emit(ev)
		}
		if err := ww.Close(); err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("window %d: stream differs from buffered JSONL", window)
		}
		if ww.Emitted() != uint64(len(evs)) {
			t.Fatalf("window %d: emitted %d, want %d", window, ww.Emitted(), len(evs))
		}
	}
}

// TestWindowWriterFilters checks kind selection matches Recorder's.
func TestWindowWriterFilters(t *testing.T) {
	evs := windowSampleEvents(200)
	rec := NewRecorder() // DefaultKinds: everything but KindEngineEvent
	for _, ev := range evs {
		rec.Emit(ev)
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	ww := NewWindowWriter(&got, 16)
	for _, ev := range evs {
		ww.Emit(ev)
	}
	if err := ww.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("filtered windowed stream differs from filtered recorder stream")
	}
}

// TestMemGauge exercises the gauge's clamping and per-rank division.
func TestMemGauge(t *testing.T) {
	g := NewMemGauge()
	g.SampleBuild()
	hold := make([]byte, 1<<20)
	for i := range hold {
		hold[i] = byte(i)
	}
	g.Sample()
	if g.PeakBytes < g.BuildBytes {
		t.Fatalf("peak %d below build %d", g.PeakBytes, g.BuildBytes)
	}
	if hold[len(hold)-1] == 0 { // keep hold live past Sample
		t.Fatal("unreachable")
	}
	b, p := g.PerRank(0)
	if b != 0 || p != 0 {
		t.Fatal("PerRank(0) must be zero")
	}
}
