package trace

import (
	"fmt"
	"time"
)

// Profile condenses a recorded event stream into the per-rank and
// per-PE virtual-time breakdown Projections users read first: where
// did each virtual rank spend the run — computing, blocked on
// messages, paying runtime overhead, or waiting for a core?

// RankProfile is one virtual rank's activity breakdown. Compute,
// Blocked, Overhead, and Idle partition the makespan: Compute sums the
// rank's execution quanta, Blocked its suspended time (message waits
// and migration stalls), Overhead the context-switch cost of switching
// to it, and Idle the remainder — ready-queue delay plus time before
// adoption and after completion. Collective and MigrateStall are
// inclusive views (a collective span contains compute and waits) and
// deliberately not part of the partition.
type RankProfile struct {
	VP       int
	Compute  time.Duration
	Blocked  time.Duration
	Overhead time.Duration
	Idle     time.Duration

	Collective   time.Duration
	MigrateStall time.Duration

	Sends, Recvs, Colls uint64
	Migrations          int
	// End is the virtual time of the rank's last recorded activity.
	End time.Duration
}

// PEProfile is one processing element's breakdown: Setup + Busy +
// Switch + Idle partition the makespan.
type PEProfile struct {
	PE       int
	Setup    time.Duration
	Busy     time.Duration
	Switch   time.Duration
	Idle     time.Duration
	Switches uint64
}

// Profile is the whole run's utilization summary.
type Profile struct {
	// Span is the run's makespan in virtual time.
	Span  time.Duration
	Ranks []RankProfile
	PEs   []PEProfile
	// Events is the number of events profiled.
	Events int
	// Mem, when attached via SetMemGauge, carries the run's host-memory
	// readings. It is host-measured (see MemGauge) and excluded from the
	// deterministic table renderings.
	Mem *MemGauge
}

// SetMemGauge attaches host-memory readings to the profile.
func (p *Profile) SetMemGauge(g *MemGauge) { p.Mem = g }

// BuildProfile condenses an event stream (in emission order) into a
// profile. Ranks and PEs are discovered from the events themselves.
func BuildProfile(events []Event) *Profile {
	p := &Profile{Events: len(events)}
	ranks := map[int32]*RankProfile{}
	pes := map[int32]*PEProfile{}
	rank := func(vp int32) *RankProfile {
		r := ranks[vp]
		if r == nil {
			r = &RankProfile{VP: int(vp)}
			ranks[vp] = r
		}
		return r
	}
	pe := func(id int32) *PEProfile {
		q := pes[id]
		if q == nil {
			q = &PEProfile{PE: int(id)}
			pes[id] = q
		}
		return q
	}
	for _, ev := range events {
		if end := ev.Time + ev.Dur; end > p.Span {
			p.Span = end
		}
		switch ev.Kind {
		case KindSetup:
			pe(ev.PE).Setup += ev.Dur
		case KindIdle:
			pe(ev.PE).Idle += ev.Dur
		case KindSwitch:
			q := pe(ev.PE)
			q.Switch += ev.Dur
			q.Switches++
			rank(ev.VP).Overhead += ev.Dur
		case KindExec:
			pe(ev.PE).Busy += ev.Dur
			r := rank(ev.VP)
			r.Compute += ev.Dur
			if end := ev.Time + ev.Dur; end > r.End {
				r.End = end
			}
		case KindWait:
			r := rank(ev.VP)
			r.Blocked += ev.Dur
			if ev.Aux == WaitMigrate {
				r.MigrateStall += ev.Dur
			}
			if end := ev.Time + ev.Dur; end > r.End {
				r.End = end
			}
		case KindColl:
			r := rank(ev.VP)
			r.Collective += ev.Dur
			r.Colls++
		case KindSendPost:
			rank(ev.VP).Sends++
		case KindRecvPost:
			rank(ev.VP).Recvs++
		case KindMigration:
			rank(ev.VP).Migrations++
		}
	}
	// Idle is the partition remainder; PE idle events only cover gaps
	// between scheduler passes, so fold the trailing/leading remainder
	// in the same way.
	for _, r := range ranks {
		if idle := p.Span - r.Compute - r.Blocked - r.Overhead; idle > 0 {
			r.Idle = idle
		}
	}
	for _, q := range pes {
		q.Idle = 0
		if idle := p.Span - q.Setup - q.Busy - q.Switch; idle > 0 {
			q.Idle = idle
		}
	}
	for _, vp := range sortedKeys(boolKeys(ranks)) {
		p.Ranks = append(p.Ranks, *ranks[vp])
	}
	for _, id := range sortedKeys(boolKeys(pes)) {
		p.PEs = append(p.PEs, *pes[id])
	}
	return p
}

func boolKeys[V any](m map[int32]V) map[int32]bool {
	out := make(map[int32]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// CriticalPath summarizes the rank that bounds the makespan: the one
// whose recorded activity finishes last. Its blocked and idle time is
// the headroom a better schedule or privatization method could
// recover; its compute time is a lower bound no method can beat.
type CriticalPath struct {
	VP  int
	End time.Duration
	// Breakdown of the critical rank.
	Compute, Blocked, Overhead, Idle time.Duration
	// Utilization is Compute / End.
	Utilization float64
}

// CriticalPath picks the last-finishing rank. Ties break toward the
// lowest VP so the answer is deterministic.
func (p *Profile) CriticalPath() CriticalPath {
	var cp CriticalPath
	cp.VP = -1
	for i := range p.Ranks {
		r := &p.Ranks[i]
		if cp.VP == -1 || r.End > cp.End {
			cp = CriticalPath{VP: r.VP, End: r.End,
				Compute: r.Compute, Blocked: r.Blocked, Overhead: r.Overhead, Idle: r.Idle}
		}
	}
	if cp.End > 0 {
		cp.Utilization = float64(cp.Compute) / float64(cp.End)
	}
	return cp
}

// Summary renders the critical path as one line.
func (cp CriticalPath) Summary() string {
	if cp.VP < 0 {
		return "critical path: no rank activity recorded"
	}
	return fmt.Sprintf(
		"critical path: rank %d finishes at %s (%.0f%% compute: %s compute, %s blocked, %s overhead, %s idle)",
		cp.VP, FormatDuration(cp.End), cp.Utilization*100,
		FormatDuration(cp.Compute), FormatDuration(cp.Blocked),
		FormatDuration(cp.Overhead), FormatDuration(cp.Idle))
}

// RankTable renders the per-rank utilization profile.
func (p *Profile) RankTable() *Table {
	t := NewTable(
		fmt.Sprintf("per-rank utilization over %s of virtual time", FormatDuration(p.Span)),
		"VP", "Compute", "Blocked", "Overhead", "Idle", "Util", "Coll", "Sends", "Recvs", "Migr")
	for _, r := range p.Ranks {
		util := 0.0
		if p.Span > 0 {
			util = float64(r.Compute) / float64(p.Span)
		}
		t.AddRow(
			fmt.Sprint(r.VP),
			FormatDuration(r.Compute),
			FormatDuration(r.Blocked),
			FormatDuration(r.Overhead),
			FormatDuration(r.Idle),
			fmt.Sprintf("%.0f%%", util*100),
			FormatDuration(r.Collective),
			fmt.Sprint(r.Sends),
			fmt.Sprint(r.Recvs),
			fmt.Sprint(r.Migrations),
		)
	}
	return t
}

// PETable renders the per-PE utilization profile.
func (p *Profile) PETable() *Table {
	t := NewTable(
		fmt.Sprintf("per-PE utilization over %s of virtual time", FormatDuration(p.Span)),
		"PE", "Setup", "Busy", "Switch", "Idle", "Util", "Switches")
	for _, q := range p.PEs {
		util := 0.0
		if p.Span > 0 {
			util = float64(q.Busy) / float64(p.Span)
		}
		t.AddRow(
			fmt.Sprint(q.PE),
			FormatDuration(q.Setup),
			FormatDuration(q.Busy),
			FormatDuration(q.Switch),
			FormatDuration(q.Idle),
			fmt.Sprintf("%.0f%%", util*100),
			fmt.Sprint(q.Switches),
		)
	}
	return t
}
