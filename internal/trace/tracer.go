package trace

import "time"

// This file is the event-tracing core: a Projections-style virtual-time
// event stream for the simulated AMPI runtime. The runtime packages
// (sim, ult, machine, ampi) each hold an optional Tracer and emit
// events at their hook points; a nil Tracer costs exactly one pointer
// comparison per hook, so untraced runs pay nothing measurable and —
// because no hook ever advances a clock or perturbs scheduling —
// traced and untraced runs of the same configuration are bit-identical
// in every experiment row.
//
// All timestamps are virtual time (time.Duration offsets from
// simulation start, the same representation as sim.Time). Since each
// simulation runs on one logical thread, events are emitted in a
// deterministic order: the trace of a configuration is a pure function
// of that configuration, byte-identical across repeated runs and
// across serial vs parallel experiment sweeps.

// Kind classifies a trace event.
type Kind uint8

const (
	// KindEngineEvent marks one discrete-event dispatch in the
	// simulation engine (very high volume; excluded by DefaultKinds).
	KindEngineEvent Kind = iota
	// KindSetup spans one process's privatization setup (dlopen/dlmopen
	// work, FS copies) from t=0 to its completion. PE is the process's
	// first PE.
	KindSetup
	// KindIdle spans a gap in which a PE had no ready thread.
	KindIdle
	// KindSwitch spans one ULT context switch on a PE: scheduler base
	// cost plus the privatization method's surcharge. VP is the thread
	// switched to, Peer the thread switched from (-1 for none).
	KindSwitch
	// KindExec spans one scheduling quantum: VP ran on PE from Time for
	// Dur of virtual time.
	KindExec
	// KindSendPost marks a send entering the network (instant).
	KindSendPost
	// KindRecvPost marks a receive being posted (instant).
	KindRecvPost
	// KindMatch marks a message matching a receive (instant). Aux is
	// MatchOnDeliver or MatchOnPost.
	KindMatch
	// KindUnexpected marks a message queuing as unexpected (instant).
	KindUnexpected
	// KindWait spans a rank blocked in Wait (Aux=WaitMessage) or
	// suspended in the AMPI_Migrate collective (Aux=WaitMigrate).
	KindWait
	// KindColl spans one rank-level collective call; Aux is the CollOp.
	KindColl
	// KindMigration spans one rank migration from PE (Peer is the
	// destination PE), pack to unpack, in virtual time.
	KindMigration
	// KindLink spans a message's flight on a network tier: PE is the
	// source, Peer the destination, Aux the Tier* constant.
	KindLink
	// KindFSIO spans one shared-filesystem transfer (after queueing on
	// the shared bandwidth resource).
	KindFSIO
	// KindRunEnd marks job completion at the final virtual time.
	KindRunEnd
	// KindFault marks an injected fault taking effect: Aux is the
	// Fault* constant. For node crashes Peer is the node id and Bytes
	// the number of ranks killed; for link-degradation windows and
	// straggler PEs, Time/Dur span the window and PE names the
	// straggling PE (-1 for cluster-wide link faults).
	KindFault
	// KindDetect marks the runtime observing a fault and aborting the
	// job (the fault-detector instant a supervisor reacts to). Peer is
	// the failed node id.
	KindDetect
	// KindRecover spans one rank's state restoration during a restart
	// from a checkpoint: setup completion to restore completion, with
	// Bytes the restored payload size. Aux is the Checkpoint target
	// code (0 = shared FS, 1 = buddy memory).
	KindRecover
	// KindEpoch marks a cluster-membership epoch transition (instant):
	// nodes arrived or were retired. Aux is the Epoch* constant, Peer
	// the new live node count, Bytes the number of nodes the event
	// added or retired.
	KindEpoch
	// KindDrain spans a drain checkpoint: the forced snapshot taken
	// between an eviction notice arriving and the node leaving, so
	// planned departures lose no work. Aux is the Checkpoint target
	// code (0 = shared FS, 1 = buddy memory), Bytes the payload size.
	KindDrain

	numKinds
)

var kindNames = [numKinds]string{
	KindEngineEvent: "engine_event",
	KindSetup:       "setup",
	KindIdle:        "idle",
	KindSwitch:      "switch",
	KindExec:        "exec",
	KindSendPost:    "send_post",
	KindRecvPost:    "recv_post",
	KindMatch:       "match",
	KindUnexpected:  "unexpected",
	KindWait:        "wait",
	KindColl:        "coll",
	KindMigration:   "migration",
	KindLink:        "link",
	KindFSIO:        "fs_io",
	KindRunEnd:      "run_end",
	KindFault:       "fault",
	KindDetect:      "detect",
	KindRecover:     "recover",
	KindEpoch:       "epoch",
	KindDrain:       "drain",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Aux values for KindMatch.
const (
	// MatchOnDeliver: an arriving message found a posted receive.
	MatchOnDeliver int32 = 0
	// MatchOnPost: a posted receive found a queued unexpected message.
	MatchOnPost int32 = 1
)

// Aux values for KindWait.
const (
	// WaitMessage: blocked in Wait on a receive.
	WaitMessage int32 = 0
	// WaitMigrate: suspended in the AMPI_Migrate collective.
	WaitMigrate int32 = 1
)

// CollOp codes carried in Event.Aux for KindColl events.
const (
	CollBarrier int32 = iota
	CollBcast
	CollReduce
	CollAllreduce
	CollGather
	CollScatter
	CollAllgather
	CollAlltoall
	CollScan
	CollExscan
	CollReduceScatter
)

var collNames = [...]string{
	CollBarrier:       "barrier",
	CollBcast:         "bcast",
	CollReduce:        "reduce",
	CollAllreduce:     "allreduce",
	CollGather:        "gather",
	CollScatter:       "scatter",
	CollAllgather:     "allgather",
	CollAlltoall:      "alltoall",
	CollScan:          "scan",
	CollExscan:        "exscan",
	CollReduceScatter: "reduce_scatter",
}

// CollName names a CollOp code.
func CollName(op int32) string {
	if op >= 0 && int(op) < len(collNames) {
		return collNames[op]
	}
	return "coll?"
}

// Aux values for KindFault events.
const (
	// FaultNodeCrash: a node died (fail-stop), killing its ranks.
	FaultNodeCrash int32 = iota
	// FaultLinkDegrade: network transfers slowed for a window.
	FaultLinkDegrade
	// FaultStraggler: one PE computes slower for a window.
	FaultStraggler
)

var faultNames = [...]string{
	FaultNodeCrash:   "node_crash",
	FaultLinkDegrade: "link_degrade",
	FaultStraggler:   "straggler",
}

// FaultName names a KindFault Aux code.
func FaultName(f int32) string {
	if f >= 0 && int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "fault?"
}

// Aux values for KindEpoch events.
const (
	// EpochAdd: nodes joined the cluster.
	EpochAdd int32 = iota
	// EpochRetire: nodes were retired (possibly with an eviction
	// notice; the event time is when the notice arrived).
	EpochRetire
)

var epochNames = [...]string{
	EpochAdd:    "add",
	EpochRetire: "retire",
}

// EpochName names a KindEpoch Aux code.
func EpochName(e int32) string {
	if e >= 0 && int(e) < len(epochNames) {
		return epochNames[e]
	}
	return "epoch?"
}

// Network tier codes carried in Event.Aux for KindLink events.
const (
	TierSharedMem int32 = iota
	TierIntraNode
	TierInterNode
)

var tierNames = [...]string{
	TierSharedMem: "shm",
	TierIntraNode: "intra_node",
	TierInterNode: "inter_node",
}

// TierName names a network tier code.
func TierName(tier int32) string {
	if tier >= 0 && int(tier) < len(tierNames) {
		return tierNames[tier]
	}
	return "tier?"
}

// Event is one trace record. It is a fixed-size value — hook sites
// build it on the stack and hand it to the Tracer by value, so an
// enabled trace costs one slice append per event and a disabled one
// costs a nil check. Fields that do not apply to a Kind are -1 (ids)
// or 0 (quantities).
type Event struct {
	// Time is the event's virtual start time.
	Time time.Duration
	// Dur is the span length; 0 for instantaneous events.
	Dur time.Duration
	// Kind classifies the event.
	Kind Kind
	// PE is the processing element (or source PE for KindLink); -1 if
	// not PE-bound.
	PE int32
	// VP is the virtual rank; -1 for PE- or machine-level events.
	VP int32
	// Peer is the other party: destination rank for sends, source rank
	// for matches, previous thread for switches, destination PE for
	// links and migrations; -1 when absent.
	Peer int32
	// Tag is the message tag (point-to-point events).
	Tag int32
	// Aux carries a kind-specific code: CollOp, Tier, Match*, Wait*.
	Aux int32
	// Comm is the communicator id (point-to-point events).
	Comm int64
	// Bytes is the payload/wire size where applicable.
	Bytes uint64
}

// Tracer receives trace events. Implementations must not mutate
// simulation state; the runtime guarantees Emit is called from the
// world's single logical thread, in deterministic order.
type Tracer interface {
	Emit(Event)
}

// Recorder is the standard Tracer: it filters by Kind and accumulates
// events in memory for later export or profiling.
type Recorder struct {
	mask   uint64
	events []Event
}

// DefaultKinds is every Kind except KindEngineEvent, whose one-record-
// per-dispatch volume swamps a trace without adding timeline structure.
func DefaultKinds() []Kind {
	ks := make([]Kind, 0, numKinds-1)
	for k := Kind(0); k < numKinds; k++ {
		if k != KindEngineEvent {
			ks = append(ks, k)
		}
	}
	return ks
}

// AllKinds lists every Kind, including KindEngineEvent.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for k := range ks {
		ks[k] = Kind(k)
	}
	return ks
}

// NewRecorder returns a recorder capturing the given kinds; with no
// arguments it captures DefaultKinds.
func NewRecorder(kinds ...Kind) *Recorder {
	r := &Recorder{}
	if len(kinds) == 0 {
		kinds = DefaultKinds()
	}
	for _, k := range kinds {
		r.mask |= 1 << k
	}
	return r
}

// Emit records the event if its kind is selected.
func (r *Recorder) Emit(ev Event) {
	if r.mask&(1<<ev.Kind) == 0 {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in emission order. The slice is
// owned by the recorder; callers must not mutate it.
func (r *Recorder) Events() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Reset discards recorded events, keeping the kind selection.
func (r *Recorder) Reset() { r.events = r.events[:0] }
