package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// sampleEvents covers every kind once, in a plausible timeline.
func sampleEvents() []Event {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return []Event{
		{Time: 0, Kind: KindEngineEvent, PE: -1, VP: -1, Peer: -1},
		{Time: 0, Dur: us(50), Kind: KindSetup, PE: 0, VP: -1, Peer: -1},
		{Time: us(50), Dur: us(1), Kind: KindSwitch, PE: 0, VP: 0, Peer: -1},
		{Time: us(51), Dur: us(10), Kind: KindExec, PE: 0, VP: 0, Peer: -1},
		{Time: us(55), Kind: KindSendPost, PE: 0, VP: 0, Peer: 1, Tag: 7, Comm: 1, Bytes: 4096},
		{Time: us(55), Dur: us(3), Kind: KindLink, PE: 0, VP: -1, Peer: 1, Aux: TierInterNode, Bytes: 4096},
		{Time: us(56), Kind: KindRecvPost, PE: 1, VP: 1, Peer: 0, Tag: 7, Comm: 1},
		{Time: us(58), Kind: KindMatch, PE: 1, VP: 1, Peer: 0, Tag: 7, Aux: MatchOnDeliver, Comm: 1},
		{Time: us(58), Kind: KindUnexpected, PE: 1, VP: 1, Peer: 0, Tag: 8, Comm: 1},
		{Time: us(56), Dur: us(2), Kind: KindWait, PE: 1, VP: 1, Peer: 0, Tag: 7, Aux: WaitMessage, Comm: 1},
		{Time: us(61), Dur: us(5), Kind: KindColl, PE: 0, VP: 0, Peer: -1, Aux: CollAllreduce},
		{Time: us(66), Dur: us(4), Kind: KindWait, PE: 0, VP: 0, Peer: -1, Aux: WaitMigrate},
		{Time: us(66), Dur: us(4), Kind: KindMigration, PE: 0, VP: 0, Peer: 1, Bytes: 1 << 20},
		{Time: us(70), Dur: us(2), Kind: KindFSIO, PE: 1, VP: -1, Peer: -1, Bytes: 512},
		{Time: us(70), Dur: us(1), Kind: KindIdle, PE: 0, VP: -1, Peer: -1},
		{Time: us(72), Kind: KindRunEnd, PE: -1, VP: -1, Peer: -1},
	}
}

func TestWriteJSONL(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		for _, field := range []string{"t_ns", "dur_ns", "kind", "pe", "vp", "peer", "tag", "aux", "comm", "bytes"} {
			if _, ok := m[field]; !ok {
				t.Fatalf("line %d missing %q: %s", i, field, line)
			}
		}
		if m["kind"] != events[i].Kind.String() {
			t.Fatalf("line %d kind %v, want %v", i, m["kind"], events[i].Kind)
		}
		// Every line has the same fixed field order.
		if !strings.HasPrefix(line, `{"t_ns":`) {
			t.Fatalf("line %d not in fixed field order: %s", i, line)
		}
	}
}

func TestWriteChromeValidAndComplete(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("chrome export is not a valid JSON array: %v", err)
	}

	// Track names for every rank, PE, the network, and the FS.
	names := map[string]bool{}
	phases := map[string]int{}
	for _, r := range records {
		phases[r["ph"].(string)]++
		if r["ph"] == "M" && r["name"] == "process_name" {
			names[r["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"rank 0", "rank 1", "PE 0", "PE 1", "network", "shared fs"} {
		if !names[want] {
			t.Errorf("missing process_name metadata for %q (have %v)", want, names)
		}
	}
	// Slices, instants, and async begin/end pairs must all appear.
	if phases["X"] == 0 || phases["i"] == 0 {
		t.Errorf("missing slice or instant events: %v", phases)
	}
	if phases["b"] != phases["e"] || phases["b"] != 3 {
		t.Errorf("async begin/end mismatch: %d b vs %d e, want 3 each (link, migration, fs)", phases["b"], phases["e"])
	}
	// Engine events are excluded from the timeline export.
	if strings.Contains(buf.String(), "engine_event") {
		t.Error("chrome export must skip engine events")
	}
	// Distinct compute/comm categories per rank (the Perfetto acceptance
	// criterion: compute, comm, and idle slices are distinguishable).
	for _, cat := range []string{"compute", "comm", "idle", "runtime"} {
		if !strings.Contains(buf.String(), `"cat":"`+cat+`"`) {
			t.Errorf("missing %q category slices", cat)
		}
	}
}

func TestExportsAreByteDeterministic(t *testing.T) {
	events := sampleEvents()
	render := func(f func(w *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	j1 := render(func(w *bytes.Buffer) error { return WriteJSONL(w, events) })
	j2 := render(func(w *bytes.Buffer) error { return WriteJSONL(w, events) })
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL export not byte-deterministic")
	}
	c1 := render(func(w *bytes.Buffer) error { return WriteChrome(w, events) })
	c2 := render(func(w *bytes.Buffer) error { return WriteChrome(w, events) })
	if !bytes.Equal(c1, c2) {
		t.Error("chrome export not byte-deterministic")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("empty chrome export invalid: %v (%q)", err, buf.String())
	}
	if len(records) != 0 {
		t.Fatalf("%d records for no events", len(records))
	}
}
