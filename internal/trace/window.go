package trace

import (
	"bufio"
	"io"
)

// WindowWriter is a Tracer that streams events to an io.Writer in
// bounded windows instead of buffering the whole run in memory. A
// traced million-rank world emits millions of events; a Recorder would
// hold them all (64 bytes each), while a WindowWriter's footprint is
// one fixed window regardless of run length. Events are encoded in the
// canonical JSONL format as each window fills, so the resulting file is
// byte-identical to Recorder + WriteJSONL over the same stream.
//
// Like every Tracer it is driven from the world's single logical
// thread; writes happen inline as windows fill. I/O errors are sticky:
// the first one is kept, later emits become no-ops, and Close reports
// it.
type WindowWriter struct {
	bw      *bufio.Writer
	mask    uint64
	buf     []Event
	emitted uint64
	err     error
}

// DefaultWindow is the event-window size used when NewWindowWriter is
// given a non-positive one: 64 KiB of event structs.
const DefaultWindow = 1024

// NewWindowWriter returns a windowed streaming tracer writing JSONL to
// w, flushing every window events. With no kinds it captures
// DefaultKinds, mirroring NewRecorder.
func NewWindowWriter(w io.Writer, window int, kinds ...Kind) *WindowWriter {
	if window <= 0 {
		window = DefaultWindow
	}
	ww := &WindowWriter{bw: bufio.NewWriter(w), buf: make([]Event, 0, window)}
	if len(kinds) == 0 {
		kinds = DefaultKinds()
	}
	for _, k := range kinds {
		ww.mask |= 1 << k
	}
	return ww
}

// Emit buffers the event if its kind is selected, draining the window
// to the underlying writer when it fills.
func (ww *WindowWriter) Emit(ev Event) {
	if ww.mask&(1<<ev.Kind) == 0 || ww.err != nil {
		return
	}
	ww.buf = append(ww.buf, ev)
	if len(ww.buf) == cap(ww.buf) {
		ww.flush()
	}
}

// flush encodes and clears the current window.
func (ww *WindowWriter) flush() {
	for _, ev := range ww.buf {
		if err := writeEventJSONL(ww.bw, ev); err != nil {
			ww.err = err
			break
		}
	}
	ww.emitted += uint64(len(ww.buf))
	ww.buf = ww.buf[:0]
}

// Emitted reports how many events have been written (not counting the
// still-buffered tail window).
func (ww *WindowWriter) Emitted() uint64 { return ww.emitted }

// Err reports the first write error, if any.
func (ww *WindowWriter) Err() error { return ww.err }

// Close drains the tail window and flushes the underlying buffered
// writer. It returns the first error seen anywhere in the stream.
func (ww *WindowWriter) Close() error {
	ww.flush()
	if err := ww.bw.Flush(); err != nil && ww.err == nil {
		ww.err = err
	}
	return ww.err
}
