package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesSummaries(t *testing.T) {
	s := NewSeries("lat")
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.Name() != "lat" || s.N() != 4 {
		t.Fatalf("name/n wrong")
	}
	if s.Sum() != 20 || s.Mean() != 5 {
		t.Fatalf("sum=%v mean=%v", s.Sum(), s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	want := math.Sqrt((1 + 9 + 9 + 1) / 4.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev %v want %v", s.Stddev(), want)
	}
	if s.Percentile(50) != 4 {
		t.Fatalf("p50 %v", s.Percentile(50))
	}
	if s.Percentile(100) != 8 || s.Percentile(0) != 2 {
		t.Fatal("extreme percentiles wrong")
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("e")
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series summaries should be zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestSeriesDuration(t *testing.T) {
	s := NewSeries("d")
	s.AddDuration(3 * time.Microsecond)
	if s.Sum() != 3000 {
		t.Fatalf("duration stored as %v ns", s.Sum())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSeries("p")
		for _, v := range vals {
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("msgs")
	c.Inc()
	c.Addn(10)
	if c.Value() != 11 || c.Name() != "msgs" {
		t.Fatalf("counter %d", c.Value())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "A", "Bee", "C")
	tb.AddRow("1", "2", "3")
	tb.AddRowf("x", 1500*time.Nanosecond, 0.123456)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Bee") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1500ns") {
		t.Errorf("duration cell not formatted: %s", out)
	}
	if !strings.Contains(out, "0.123") {
		t.Errorf("float cell not formatted: %s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("%d lines: %q", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Nanosecond:     "5ns",
		42 * time.Microsecond:   "42.0us",
		3500 * time.Microsecond: "3500.0us",
		250 * time.Millisecond:  "250.00ms",
		12 * time.Second:        "12.00s",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
