package trace

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Percentile memoizes its sorted view; Add must invalidate it so later
// queries see the new samples.
func TestPercentileMemoInvalidatedByAdd(t *testing.T) {
	s := NewSeries("m")
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Percentile(100) != 3 {
		t.Fatalf("p100 %v", s.Percentile(100))
	}
	s.Add(10) // must invalidate the memoized sorted view
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("p100 after Add = %v, want 10", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 after Add = %v, want 1", got)
	}
	// The memo must be a copy: sample insertion order is preserved.
	if s.samples[0] != 3 || s.samples[3] != 10 {
		t.Fatalf("samples reordered: %v", s.samples)
	}
}

func TestPercentileMemoReused(t *testing.T) {
	s := NewSeries("m")
	for _, v := range []float64{5, 1, 9, 3} {
		s.Add(v)
	}
	s.Percentile(50)
	first := s.sorted
	if first == nil {
		t.Fatal("Percentile did not build the sorted memo")
	}
	s.Percentile(90)
	if &s.sorted[0] != &first[0] {
		t.Fatal("repeated Percentile calls rebuilt the sorted view")
	}
	if !sort.Float64sAreSorted(s.sorted) {
		t.Fatalf("memo not sorted: %v", s.sorted)
	}
}

// A row with more cells than headers would render misaligned; AddRow
// treats it as a programming error.
func TestAddRowTooManyCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with extra cells must panic")
		}
	}()
	tb := NewTable("t", "A", "B")
	tb.AddRow("1", "2", "3")
}

// Short rows pad with empty cells so ragged data renders aligned.
func TestAddRowShortRowPadded(t *testing.T) {
	tb := NewTable("t", "A", "B", "C")
	tb.AddRow("1")
	tb.AddRow("x", "y", "z")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Both data rows render at the full header width.
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("padded row width %d != full row width %d:\n%s", len(lines[3]), len(lines[4]), out)
	}
}

// Headerless tables keep accepting rows of any width.
func TestAddRowNoHeaders(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("a", "b", "c")
	tb.AddRow("d")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows %d", tb.NumRows())
	}
}

// The memoization target: rendering a summary asks for several quantiles
// of one series back to back; the sort must be paid once, not per call.
func BenchmarkPercentileMemoized(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSeries("bench")
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(50)
		s.Percentile(90)
		s.Percentile(99)
	}
}

// Baseline: each batch of quantile queries after an Add pays one sort.
func BenchmarkPercentileAfterAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSeries("bench")
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
		s.Percentile(50)
		s.Percentile(90)
		s.Percentile(99)
	}
}
