package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Export formats for a recorded event stream. Both writers are
// deterministic down to the byte: fields appear in a fixed order and
// numbers are formatted with explicit precision, so the same event
// stream always serializes identically. Combined with the determinism
// of the stream itself, a trace file is a reproducible artifact: two
// runs of the same configuration — serial or inside a parallel sweep —
// produce identical files.

// writeEventJSONL writes one event in the canonical JSONL encoding.
// WriteJSONL and the streaming WindowWriter both go through it, so a
// windowed trace of a run is byte-identical to the buffered one.
func writeEventJSONL(bw *bufio.Writer, ev Event) error {
	_, err := fmt.Fprintf(bw,
		`{"t_ns":%d,"dur_ns":%d,"kind":%q,"pe":%d,"vp":%d,"peer":%d,"tag":%d,"aux":%d,"comm":%d,"bytes":%d}`+"\n",
		ev.Time.Nanoseconds(), ev.Dur.Nanoseconds(), ev.Kind.String(),
		ev.PE, ev.VP, ev.Peer, ev.Tag, ev.Aux, ev.Comm, ev.Bytes)
	return err
}

// WriteJSONL writes one JSON object per event, every field present and
// in a fixed order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if err := writeEventJSONL(bw, ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Synthetic pids for the Chrome trace-event export. Each virtual rank
// is a "process" (pid = VP+1) so its compute/comm slices group under
// one named track; each PE is a process in a separate id range; the
// network and filesystem get one process each for in-flight transfers.
const (
	chromeRankBase = 1
	chromePEBase   = 100001
	chromeNetPID   = 900001
	chromeFSPID    = 900002
)

// us renders a virtual-time duration in the microsecond unit the
// Chrome trace-event format specifies, keeping nanosecond precision.
func us(d int64) string {
	return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
}

// chromeWriter assembles the trace-event JSON array.
type chromeWriter struct {
	bw    *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) emit(line string) {
	if cw.err != nil {
		return
	}
	sep := ",\n"
	if cw.first {
		sep = "\n"
		cw.first = false
	}
	if _, err := cw.bw.WriteString(sep + line); err != nil {
		cw.err = err
	}
}

func (cw *chromeWriter) meta(pid int, name string, sortIndex int) {
	cw.emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q}}`, pid, name))
	cw.emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, sortIndex))
}

func (cw *chromeWriter) slice(pid, tid int, name, cat string, t, dur int64, args string) {
	if args == "" {
		args = "{}"
	}
	cw.emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%q,"cat":%q,"ts":%s,"dur":%s,"args":%s}`,
		pid, tid, name, cat, us(t), us(dur), args))
}

func (cw *chromeWriter) instant(pid, tid int, name, cat string, t int64, args string) {
	if args == "" {
		args = "{}"
	}
	cw.emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"name":%q,"cat":%q,"ts":%s,"s":"t","args":%s}`,
		pid, tid, name, cat, us(t), args))
}

// async emits a begin/end pair for spans that may overlap on one track
// (messages in flight share a link; Perfetto renders async events on
// their own nested lanes).
func (cw *chromeWriter) async(pid int, id int, name, cat string, t, dur int64, args string) {
	if args == "" {
		args = "{}"
	}
	cw.emit(fmt.Sprintf(`{"ph":"b","pid":%d,"tid":0,"id":%d,"name":%q,"cat":%q,"ts":%s,"args":%s}`,
		pid, id, name, cat, us(t), args))
	cw.emit(fmt.Sprintf(`{"ph":"e","pid":%d,"tid":0,"id":%d,"name":%q,"cat":%q,"ts":%s}`,
		pid, id, name, cat, us(t+dur)))
}

// WriteChrome writes the events as a Chrome trace-event JSON array,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// virtual rank appears as a named process with a "state" thread
// (compute and wait slices, message instants) and an "mpi" thread
// (collective spans, which may partially overlap scheduling quanta);
// each PE appears as a process whose single thread carries setup,
// per-VP execution quanta, context switches, and idle gaps; network
// flights and filesystem transfers render as async spans.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("["); err != nil {
		return err
	}
	cw := &chromeWriter{bw: bw, first: true}

	// Name every rank and PE track that appears in the stream, ranks
	// first, in id order.
	ranks := map[int32]bool{}
	pes := map[int32]bool{}
	hasNet, hasFS := false, false
	for _, ev := range events {
		if ev.VP >= 0 {
			ranks[ev.VP] = true
		}
		switch ev.Kind {
		case KindLink, KindMigration, KindRunEnd, KindFault, KindDetect:
			hasNet = true
		case KindFSIO:
			hasFS = true
		default:
			if ev.PE >= 0 {
				pes[ev.PE] = true
			}
		}
	}
	for _, vp := range sortedKeys(ranks) {
		cw.meta(chromeRankBase+int(vp), fmt.Sprintf("rank %d", vp), int(vp))
	}
	for _, pe := range sortedKeys(pes) {
		cw.meta(chromePEBase+int(pe), fmt.Sprintf("PE %d", pe), 100000+int(pe))
	}
	if hasNet {
		cw.meta(chromeNetPID, "network", 900000)
	}
	if hasFS {
		cw.meta(chromeFSPID, "shared fs", 900001)
	}

	asyncID := 0
	for _, ev := range events {
		t, d := ev.Time.Nanoseconds(), ev.Dur.Nanoseconds()
		rankPID := chromeRankBase + int(ev.VP)
		pePID := chromePEBase + int(ev.PE)
		switch ev.Kind {
		case KindSetup:
			cw.slice(pePID, 0, "setup", "runtime", t, d, "")
		case KindIdle:
			cw.slice(pePID, 0, "idle", "idle", t, d, "")
		case KindSwitch:
			cw.slice(pePID, 0, fmt.Sprintf("switch to vp %d", ev.VP), "runtime", t, d, "")
		case KindExec:
			cw.slice(pePID, 0, fmt.Sprintf("vp %d", ev.VP), "compute", t, d, "")
			cw.slice(rankPID, 0, "compute", "compute", t, d,
				fmt.Sprintf(`{"pe":%d}`, ev.PE))
		case KindWait:
			name := "wait"
			if ev.Aux == WaitMigrate {
				name = "migrate_stall"
			}
			cw.slice(rankPID, 0, name, "comm", t, d,
				fmt.Sprintf(`{"src":%d,"tag":%d}`, ev.Peer, ev.Tag))
		case KindColl:
			cw.slice(rankPID, 1, CollName(ev.Aux), "comm", t, d,
				fmt.Sprintf(`{"root":%d}`, ev.Peer))
		case KindSendPost:
			cw.instant(rankPID, 0, "send", "comm", t,
				fmt.Sprintf(`{"dst":%d,"tag":%d,"bytes":%d}`, ev.Peer, ev.Tag, ev.Bytes))
		case KindRecvPost:
			cw.instant(rankPID, 0, "recv_post", "comm", t,
				fmt.Sprintf(`{"src":%d,"tag":%d}`, ev.Peer, ev.Tag))
		case KindMatch:
			cw.instant(rankPID, 0, "match", "comm", t,
				fmt.Sprintf(`{"src":%d,"tag":%d}`, ev.Peer, ev.Tag))
		case KindUnexpected:
			cw.instant(rankPID, 0, "unexpected", "comm", t,
				fmt.Sprintf(`{"src":%d,"tag":%d}`, ev.Peer, ev.Tag))
		case KindMigration:
			cw.async(chromeNetPID, asyncID, fmt.Sprintf("migrate vp %d: pe %d -> %d", ev.VP, ev.PE, ev.Peer),
				"migration", t, d, fmt.Sprintf(`{"bytes":%d}`, ev.Bytes))
			asyncID++
		case KindLink:
			cw.async(chromeNetPID, asyncID, fmt.Sprintf("%s pe %d -> %d", TierName(ev.Aux), ev.PE, ev.Peer),
				"comm", t, d, fmt.Sprintf(`{"bytes":%d}`, ev.Bytes))
			asyncID++
		case KindFSIO:
			cw.async(chromeFSPID, asyncID, "fs transfer", "io", t, d,
				fmt.Sprintf(`{"bytes":%d}`, ev.Bytes))
			asyncID++
		case KindRunEnd:
			cw.instant(chromeNetPID, 0, "run_end", "runtime", t, "")
		case KindFault:
			if d > 0 {
				cw.async(chromeNetPID, asyncID, FaultName(ev.Aux), "fault", t, d,
					fmt.Sprintf(`{"pe":%d,"node":%d}`, ev.PE, ev.Peer))
				asyncID++
			} else {
				cw.instant(chromeNetPID, 0, FaultName(ev.Aux), "fault", t,
					fmt.Sprintf(`{"node":%d,"killed":%d}`, ev.Peer, ev.Bytes))
			}
		case KindDetect:
			cw.instant(chromeNetPID, 0, "detect", "fault", t,
				fmt.Sprintf(`{"node":%d}`, ev.Peer))
		case KindRecover:
			cw.slice(rankPID, 0, "restore", "fault", t, d,
				fmt.Sprintf(`{"bytes":%d}`, ev.Bytes))
		case KindEngineEvent:
			// Too fine-grained for a timeline; JSONL carries them when
			// explicitly selected.
		}
	}
	if cw.err != nil {
		return cw.err
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func sortedKeys(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
