package trace

import (
	"runtime"
	"sync"
)

// MemGauge measures host heap usage of a world build and run: bytes in
// use at world build and at the observed peak, relative to a baseline
// taken when the gauge was created. This is the one deliberately
// host-measured quantity in the reproduction — it answers "what does a
// million-rank world cost the machine it runs on", which virtual time
// cannot. Gauge readings therefore must never feed back into virtual
// time or rendered experiment tables (the golden-smoke test pins those
// to be bit-identical across runs); they travel in result rows and
// benchmark metrics only.
//
// Sample, SampleBuild, and PerRank are safe for concurrent use, so
// parallel sweep workers can fold readings into one gauge; read the
// exported fields directly only after sampling has quiesced.
type MemGauge struct {
	mu       sync.Mutex
	baseline uint64
	// BuildBytes is heap in use right after world build, net of the
	// baseline.
	BuildBytes uint64
	// PeakBytes is the highest sampled heap use, net of the baseline.
	PeakBytes uint64
}

// heapInUse reads the live-heap byte count after collecting garbage, so
// samples measure retained state rather than allocation churn.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// NewMemGauge captures the baseline; call it before building the world
// being measured.
func NewMemGauge() *MemGauge {
	return &MemGauge{baseline: heapInUse()}
}

// sub returns cur-baseline, clamped at zero (GC can shrink the heap
// below the baseline).
func (g *MemGauge) sub(cur uint64) uint64 {
	if cur < g.baseline {
		return 0
	}
	return cur - g.baseline
}

// SampleBuild records the build-time reading; call it once, right after
// world construction. It also counts toward the peak.
func (g *MemGauge) SampleBuild() {
	n := g.sub(heapInUse())
	g.mu.Lock()
	defer g.mu.Unlock()
	g.BuildBytes = n
	if g.BuildBytes > g.PeakBytes {
		g.PeakBytes = g.BuildBytes
	}
}

// Sample folds the current reading into the peak; call it at phase
// boundaries (after a collective, after a migration storm).
func (g *MemGauge) Sample() {
	n := g.sub(heapInUse())
	g.mu.Lock()
	defer g.mu.Unlock()
	if n > g.PeakBytes {
		g.PeakBytes = n
	}
}

// PerRank reports the build and peak readings divided across vps ranks.
func (g *MemGauge) PerRank(vps int) (build, peak uint64) {
	if vps <= 0 {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.BuildBytes / uint64(vps), g.PeakBytes / uint64(vps)
}
