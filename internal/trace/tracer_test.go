package trace

import (
	"testing"
	"time"
)

func TestRecorderDefaultKindsExcludeEngineEvents(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Time: 1, Kind: KindEngineEvent})
	r.Emit(Event{Time: 2, Kind: KindExec, VP: 3})
	r.Emit(Event{Time: 3, Kind: KindRunEnd})
	if r.Len() != 2 {
		t.Fatalf("recorded %d events, want 2 (engine event filtered)", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindExec || evs[1].Kind != KindRunEnd {
		t.Fatalf("wrong events kept: %v, %v", evs[0].Kind, evs[1].Kind)
	}
}

func TestRecorderExplicitKinds(t *testing.T) {
	r := NewRecorder(KindEngineEvent, KindExec)
	for _, k := range AllKinds() {
		r.Emit(Event{Kind: k})
	}
	if r.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", r.Len())
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindExec})
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("len %d after reset", r.Len())
	}
	r.Emit(Event{Kind: KindWait})
	if r.Len() != 1 {
		t.Fatal("reset recorder must keep recording with the same kinds")
	}
}

func TestKindSets(t *testing.T) {
	all, def := AllKinds(), DefaultKinds()
	if len(all) != len(def)+1 {
		t.Fatalf("AllKinds %d vs DefaultKinds %d", len(all), len(def))
	}
	for _, k := range def {
		if k == KindEngineEvent {
			t.Fatal("DefaultKinds must not include KindEngineEvent")
		}
	}
	seen := map[string]bool{}
	for _, k := range all {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}

func TestCodeNames(t *testing.T) {
	if CollName(CollAllreduce) != "allreduce" || CollName(99) != "coll?" {
		t.Fatal("CollName wrong")
	}
	if TierName(TierInterNode) != "inter_node" || TierName(-1) != "tier?" {
		t.Fatal("TierName wrong")
	}
}

// The zero-overhead contract at an enabled hook: one append per event.
func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder()
	ev := Event{Time: time.Microsecond, Dur: time.Microsecond, Kind: KindExec, PE: 1, VP: 2, Peer: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(ev)
	}
}
