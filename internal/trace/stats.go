// Package trace provides lightweight statistics containers and table
// formatting used by the experiment harness to report the paper's figures
// and tables.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series accumulates float64 samples and answers summary queries.
type Series struct {
	name    string
	samples []float64
	// sorted memoizes the sorted view for Percentile; nil means stale.
	// Rendering a summary table asks for several quantiles of the same
	// series back to back, so the sort is paid once per batch of Adds
	// instead of once per quantile.
	sorted []float64
}

// NewSeries returns an empty series with the given display name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the display name.
func (s *Series) Name() string { return s.name }

// Add appends a sample, invalidating the memoized sorted view.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = nil
}

// AddDuration appends a duration sample in nanoseconds.
func (s *Series) AddDuration(d time.Duration) { s.Add(float64(d)) }

// N reports the sample count.
func (s *Series) N() int { return len(s.samples) }

// Sum returns the total of all samples.
func (s *Series) Sum() float64 {
	t := 0.0
	for _, v := range s.samples {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.samples))
}

// Min returns the smallest sample, or +Inf for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.samples {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or -Inf for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
// The sorted view is memoized across calls and rebuilt only after Add,
// so repeated quantile queries cost O(1) sorts per batch of samples.
func (s *Series) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append(make([]float64, 0, len(s.samples)), s.samples...)
		sort.Float64s(s.sorted)
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Counter is a monotonically increasing named count.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n uint64) { c.n += n }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the display name.
func (c *Counter) Name() string { return c.name }

// Table formats rows of experiment output with aligned columns, in the
// spirit of the rows the paper reports per figure.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns an empty table.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a formatted row. A row with more cells than the table
// has headers is a programming error (the extra cells would render
// misaligned under no column) and panics; a short row is padded with
// empty cells so ragged data stays readable.
func (t *Table) AddRow(cells ...string) {
	if n := len(t.headers); n > 0 {
		if len(cells) > n {
			panic(fmt.Sprintf("trace: table %q row has %d cells for %d headers", t.title, len(cells), n))
		}
		for len(cells) < n {
			cells = append(cells, "")
		}
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row where each cell is fmt.Sprint of the argument, with
// durations and floats given compact formatting.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// NumRows reports how many data rows the table holds.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a virtual-time duration with a unit chosen for
// readability (ns below 10us, us below 10ms, ms below 10s, else seconds).
func FormatDuration(d time.Duration) string {
	switch {
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	case d < 10*time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	}
}
