package jacobi_test

import (
	"math"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/workloads/jacobi"
)

func TestDecompose3D(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		12: {3, 2, 2},
		27: {3, 3, 3},
		64: {4, 4, 4},
	}
	for v, want := range cases {
		px, py, pz := jacobi.Decompose3D(v)
		if px*py*pz != v {
			t.Fatalf("Decompose3D(%d) = %d*%d*%d != %d", v, px, py, pz, v)
		}
		if px != want[0] || py != want[1] || pz != want[2] {
			t.Errorf("Decompose3D(%d) = (%d,%d,%d), want %v", v, px, py, pz, want)
		}
	}
}

// run executes the distributed solver and returns the global field sum
// and residual.
func run(t *testing.T, cfg jacobi.Config, vps, pes int, kind core.Kind, balancer lb.Strategy) (sum, resid float64, w *ampi.World) {
	t.Helper()
	var localSums []float64
	prog := jacobi.New(cfg, func(res jacobi.Result) {
		localSums = append(localSums, res.LocalSum)
		resid = res.Residual
	})
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
		VPs:       vps,
		Privatize: kind,
		Balancer:  balancer,
	}, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range localSums {
		sum += s
	}
	return sum, resid, w
}

// TestMatchesSerialOracle compares the virtualized distributed solve
// against a serial solve of the same problem, across decompositions
// and privatization methods.
func TestMatchesSerialOracle(t *testing.T) {
	cfg := jacobi.Config{NX: 12, NY: 10, NZ: 8, Iters: 7}
	field, serialResid := jacobi.SerialSolve(cfg)
	want := jacobi.GlobalSum(field)
	for _, vps := range []int{1, 2, 4, 8} {
		for _, kind := range []core.Kind{core.KindNone, core.KindPIEglobals} {
			sum, resid, _ := run(t, cfg, vps, 2, kind, nil)
			if math.Abs(sum-want) > 1e-9*math.Abs(want) {
				t.Errorf("vps=%d %s: field sum %.12f, serial %.12f", vps, kind, sum, want)
			}
			if math.Abs(resid-serialResid) > 1e-9 {
				t.Errorf("vps=%d %s: residual %.12g, serial %.12g", vps, kind, resid, serialResid)
			}
		}
	}
}

// TestResultsIndependentOfMethod: the numerical answer must not depend
// on the privatization method (only timings do).
func TestResultsIndependentOfMethod(t *testing.T) {
	cfg := jacobi.Config{NX: 8, NY: 8, NZ: 8, Iters: 5}
	var sums []float64
	for _, kind := range []core.Kind{
		core.KindManual, core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	} {
		s, _, _ := run(t, cfg, 4, 2, kind, nil)
		sums = append(sums, s)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Errorf("method %d produced sum %v, method 0 produced %v", i, sums[i], sums[0])
		}
	}
}

// TestWithMigration keeps the answer intact while ranks migrate under
// load balancing mid-solve.
func TestWithMigration(t *testing.T) {
	cfg := jacobi.Config{NX: 12, NY: 10, NZ: 8, Iters: 8, MigrateEvery: 3}
	field, _ := jacobi.SerialSolve(cfg)
	want := jacobi.GlobalSum(field)
	sum, _, w := run(t, cfg, 8, 4, core.KindPIEglobals, lb.GreedyLB{})
	if math.Abs(sum-want) > 1e-9*math.Abs(want) {
		t.Fatalf("migrating solve sum %.12f, serial %.12f", sum, want)
	}
	if w.Migrations == 0 {
		t.Log("note: balancer chose not to migrate (acceptable for balanced load)")
	}
}

// TestOverdecompositionHidesLatency: with compute spread over more
// VPs than PEs, message waits overlap with other ranks' compute, so
// 8x virtualization should not be slower than 1x by more than the
// scheduling overhead, and on multi-PE runs is typically faster.
func TestOverdecompositionHidesLatency(t *testing.T) {
	cfg := jacobi.Config{NX: 16, NY: 16, NZ: 16, Iters: 6}
	_, _, w1 := run(t, cfg, 2, 2, core.KindPIEglobals, nil)
	_, _, w8 := run(t, cfg, 16, 2, core.KindPIEglobals, nil)
	t1, t8 := w1.ExecutionTime(), w8.ExecutionTime()
	if t8 > t1*3/2 {
		t.Errorf("8x overdecomposition time %v vs 1x %v: scheduling overhead dominates", t8, t1)
	}
}

// TestAccessCounting verifies the privatized inner-loop accesses are
// charged per cell.
func TestAccessCounting(t *testing.T) {
	cfg := jacobi.Config{NX: 8, NY: 8, NZ: 8, Iters: 3, AccessesPerCell: 6}
	var accesses uint64
	prog := jacobi.New(cfg, func(res jacobi.Result) { accesses += res.Accesses })
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindTLSglobals,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	cells := uint64(8 * 8 * 8)
	min := cells * 6 * 3 // charged accesses alone
	if accesses < min {
		t.Fatalf("counted %d accesses, want at least %d", accesses, min)
	}
}

// TestInnerLoopHoldsHandles proves the solver's inner loop does not pay
// a symbol lookup per access: ranks resolve each privatized global to a
// VarHandle once, so the image's name-lookup count depends on setup
// (ranks x referenced variables), not on iteration count or per-cell
// access volume.
func TestInnerLoopHoldsHandles(t *testing.T) {
	lookupsFor := func(iters int) (lookups int64, accesses uint64) {
		cfg := jacobi.Config{NX: 8, NY: 8, NZ: 8, Iters: iters, AccessesPerCell: 6}
		prog := jacobi.New(cfg, func(res jacobi.Result) { accesses += res.Accesses })
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
			VPs:       2,
			Privatize: core.KindPIEglobals,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return prog.Image.VarLookups(), accesses
	}
	short, shortAcc := lookupsFor(2)
	long, longAcc := lookupsFor(20)
	if longAcc <= shortAcc {
		t.Fatalf("long run charged %d accesses vs short %d: workload not exercising the loop", longAcc, shortAcc)
	}
	if long != short {
		t.Fatalf("name lookups scale with iterations (%d at 2 iters, %d at 20): inner loop is re-resolving", short, long)
	}
	if uint64(long) >= longAcc {
		t.Fatalf("%d lookups for %d accesses: handles are not being held", long, longAcc)
	}
}
