// Package jacobi implements the paper's Jacobi-3D benchmark: a 7-point
// stencil relaxation on a 3-D grid, block-decomposed across virtual
// ranks with halo exchange each iteration. Every variable referenced in
// the innermost loop (relaxation coefficients, grid spacings) is a
// privatized global, which is what makes the benchmark a per-access
// overhead probe (Fig. 7). The standalone binary is ~100 source lines
// with a 3 MB code segment (§4.4).
package jacobi

import (
	"fmt"
	"math"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/sim"
)

// Config sizes one Jacobi-3D run.
type Config struct {
	// NX, NY, NZ are the global grid dimensions (interior points).
	NX, NY, NZ int
	// Iters is the number of relaxation sweeps.
	Iters int
	// AccessesPerCell is the number of privatized-global touches per
	// cell per sweep charged to the access-cost model (the inner loop
	// reads omega, three spacings, and writes through coefficient
	// pointers).
	AccessesPerCell uint64
	// FlopsPerCell scales the per-cell compute charge.
	FlopsPerCell int
	// HeapBallast adds per-rank heap bytes beyond the grid (used by
	// the migration experiments).
	HeapBallast uint64
	// MigrateEvery, if positive, calls AMPI_Migrate every that many
	// iterations.
	MigrateEvery int
}

// DefaultConfig returns a small deterministic problem.
func DefaultConfig() Config {
	return Config{NX: 24, NY: 24, NZ: 24, Iters: 10, AccessesPerCell: 6, FlopsPerCell: 8}
}

// Image returns the Jacobi-3D program image: a handful of tagged
// mutable globals used in the innermost loop, main/sweep/exchange
// functions, and a 3 MB code segment.
func Image() *elf.Image {
	return elf.NewBuilder("jacobi3d").
		Language("c").
		TaggedGlobal("omega", math.Float64bits(0.8)).
		TaggedGlobal("hx", math.Float64bits(1.0)).
		TaggedGlobal("hy", math.Float64bits(1.0)).
		TaggedGlobal("hz", math.Float64bits(1.0)).
		TaggedGlobal("iter_count", 0).
		TaggedStatic("sweep_calls", 0).
		Const("max_iters", 1<<20).
		Func("main", 4096).
		Func("sweep", 8192).
		Func("exchange_halos", 4096).
		Func("residual", 2048).
		CodeBulk(3 << 20).
		DataBulk(128 << 10).
		MustBuild()
}

// Decompose3D factors v ranks into a (px, py, pz) grid with sides as
// equal as possible (px >= py >= pz).
func Decompose3D(v int) (px, py, pz int) {
	px, py, pz = v, 1, 1
	best := func(a, b, c int) int { // surface-area-ish objective: minimize max side
		m := a
		if b > m {
			m = b
		}
		if c > m {
			m = c
		}
		return m
	}
	for a := 1; a*a*a <= v; a++ {
		if v%a != 0 {
			continue
		}
		rem := v / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			if best(c, b, a) < best(px, py, pz) {
				px, py, pz = c, b, a
			}
		}
	}
	return px, py, pz
}

// Result summarizes one rank's run.
type Result struct {
	VP        int
	Residual  float64
	Sweeps    uint64
	LocalSum  float64
	Accesses  uint64
	ElapsedNS int64
}

// block is one rank's subdomain with one ghost layer per face.
type block struct {
	nx, ny, nz int // interior sizes
	u, un      []float64
}

func newBlock(nx, ny, nz int) *block {
	b := &block{nx: nx, ny: ny, nz: nz}
	n := (nx + 2) * (ny + 2) * (nz + 2)
	b.u = make([]float64, n)
	b.un = make([]float64, n)
	return b
}

func (b *block) idx(i, j, k int) int {
	return (i*(b.ny+2)+j)*(b.nz+2) + k
}

// ranges splits n points across p parts; part i gets [lo, hi).
func ranges(n, p, i int) (lo, hi int) {
	lo = i * n / p
	hi = (i + 1) * n / p
	return lo, hi
}

// New returns the Jacobi-3D program. results receives one Result per
// rank at completion.
func New(cfg Config, results func(Result)) *ampi.Program {
	if cfg.AccessesPerCell == 0 {
		cfg.AccessesPerCell = 6
	}
	if cfg.FlopsPerCell == 0 {
		cfg.FlopsPerCell = 8
	}
	return &ampi.Program{
		Image: Image(),
		Main:  func(r *ampi.Rank) { runRank(cfg, r, results) },
	}
}

func runRank(cfg Config, r *ampi.Rank, results func(Result)) {
	v := r.Size()
	px, py, pz := Decompose3D(v)
	me := r.Rank()
	ix := me % px
	iy := (me / px) % py
	iz := me / (px * py)

	x0, x1 := ranges(cfg.NX, px, ix)
	y0, y1 := ranges(cfg.NY, py, iy)
	z0, z1 := ranges(cfg.NZ, pz, iz)
	b := newBlock(x1-x0, y1-y0, z1-z0)

	if cfg.HeapBallast > 0 {
		if _, err := r.Ctx().Heap.AllocBallast(cfg.HeapBallast, "user-heap"); err != nil {
			panic(err)
		}
	}

	// Dirichlet condition: u = 1 on the global x = 0 face.
	if ix == 0 {
		for j := 0; j <= b.ny+1; j++ {
			for k := 0; k <= b.nz+1; k++ {
				b.u[b.idx(0, j, k)] = 1
				b.un[b.idx(0, j, k)] = 1
			}
		}
	}

	neighbor := func(dx, dy, dz int) int {
		jx, jy, jz := ix+dx, iy+dy, iz+dz
		if jx < 0 || jx >= px || jy < 0 || jy >= py || jz < 0 || jz >= pz {
			return -1
		}
		return (jz*py+jy)*px + jx
	}

	// Resolve each privatized global once and hold the handle across
	// iterations; handles survive migration (the cached resolution is
	// epoch-invalidated), so the inner loop never re-runs the symbol
	// lookup.
	ctx := r.Ctx()
	omegaVar := ctx.Var("omega")
	iterCount := ctx.Var("iter_count")
	sweepCalls := ctx.Var("sweep_calls")
	omega := math.Float64frombits(omegaVar.Load())
	cells := uint64(b.nx) * uint64(b.ny) * uint64(b.nz)
	flop := r.World().Cluster.Cost.FlopTime
	start := r.Wtime()

	var resid float64
	for it := 0; it < cfg.Iters; it++ {
		exchangeHalos(r, b, neighbor, it)
		// The sweep's inner loop touches privatized globals per cell;
		// charge those accesses plus the floating-point work.
		omegaVar.Charge(cells * cfg.AccessesPerCell)
		r.Compute(sim.Time(cells) * sim.Time(cfg.FlopsPerCell) * flop)
		resid = b.sweep(omega)
		iterCount.Store(uint64(it + 1))
		sweepCalls.Store(sweepCalls.Load() + 1)
		if cfg.MigrateEvery > 0 && (it+1)%cfg.MigrateEvery == 0 {
			r.Migrate()
		}
		// Iteration boundaries are the solver's consistency points:
		// snapshot here when a checkpoint policy is armed (free when
		// none is — the call returns immediately without a collective),
		// which also makes the workload drainable for elastic runs.
		r.CheckpointIfDue()
	}
	global := r.Allreduce([]float64{resid * resid}, ampi.OpSum)

	var sum float64
	for i := 1; i <= b.nx; i++ {
		for j := 1; j <= b.ny; j++ {
			for k := 1; k <= b.nz; k++ {
				sum += b.u[b.idx(i, j, k)]
			}
		}
	}
	if results != nil {
		results(Result{
			VP:        me,
			Residual:  math.Sqrt(global[0]),
			Sweeps:    sweepCalls.Load(),
			LocalSum:  sum,
			Accesses:  r.Ctx().Accesses(),
			ElapsedNS: int64(r.Wtime() - start),
		})
	}
}

// face identifiers for halo tags.
const (
	faceXlo = iota
	faceXhi
	faceYlo
	faceYhi
	faceZlo
	faceZhi
)

func haloTag(it, face int) int { return it*8 + face }

// exchangeHalos swaps boundary planes with up to six neighbors using
// nonblocking receives to avoid deadlock.
func exchangeHalos(r *ampi.Rank, b *block, neighbor func(dx, dy, dz int) int, it int) {
	type xfer struct {
		peer     int
		sendTag  int
		recvTag  int
		gather   func() []float64
		scatter  func([]float64)
		planeLen int
	}
	var xs []xfer

	addX := func(peer, sendFace, recvFace, iSend, iGhost int) {
		if peer < 0 {
			return
		}
		xs = append(xs, xfer{
			peer: peer, sendTag: haloTag(it, sendFace), recvTag: haloTag(it, recvFace),
			planeLen: (b.ny) * (b.nz),
			gather: func() []float64 {
				out := make([]float64, 0, b.ny*b.nz)
				for j := 1; j <= b.ny; j++ {
					for k := 1; k <= b.nz; k++ {
						out = append(out, b.u[b.idx(iSend, j, k)])
					}
				}
				return out
			},
			scatter: func(in []float64) {
				p := 0
				for j := 1; j <= b.ny; j++ {
					for k := 1; k <= b.nz; k++ {
						b.u[b.idx(iGhost, j, k)] = in[p]
						p++
					}
				}
			},
		})
	}
	addY := func(peer, sendFace, recvFace, jSend, jGhost int) {
		if peer < 0 {
			return
		}
		xs = append(xs, xfer{
			peer: peer, sendTag: haloTag(it, sendFace), recvTag: haloTag(it, recvFace),
			planeLen: (b.nx) * (b.nz),
			gather: func() []float64 {
				out := make([]float64, 0, b.nx*b.nz)
				for i := 1; i <= b.nx; i++ {
					for k := 1; k <= b.nz; k++ {
						out = append(out, b.u[b.idx(i, jSend, k)])
					}
				}
				return out
			},
			scatter: func(in []float64) {
				p := 0
				for i := 1; i <= b.nx; i++ {
					for k := 1; k <= b.nz; k++ {
						b.u[b.idx(i, jGhost, k)] = in[p]
						p++
					}
				}
			},
		})
	}
	addZ := func(peer, sendFace, recvFace, kSend, kGhost int) {
		if peer < 0 {
			return
		}
		xs = append(xs, xfer{
			peer: peer, sendTag: haloTag(it, sendFace), recvTag: haloTag(it, recvFace),
			planeLen: (b.nx) * (b.ny),
			gather: func() []float64 {
				out := make([]float64, 0, b.nx*b.ny)
				for i := 1; i <= b.nx; i++ {
					for j := 1; j <= b.ny; j++ {
						out = append(out, b.u[b.idx(i, j, kSend)])
					}
				}
				return out
			},
			scatter: func(in []float64) {
				p := 0
				for i := 1; i <= b.nx; i++ {
					for j := 1; j <= b.ny; j++ {
						b.u[b.idx(i, j, kGhost)] = in[p]
						p++
					}
				}
			},
		})
	}

	addX(neighbor(-1, 0, 0), faceXlo, faceXhi, 1, 0)
	addX(neighbor(+1, 0, 0), faceXhi, faceXlo, b.nx, b.nx+1)
	addY(neighbor(0, -1, 0), faceYlo, faceYhi, 1, 0)
	addY(neighbor(0, +1, 0), faceYhi, faceYlo, b.ny, b.ny+1)
	addZ(neighbor(0, 0, -1), faceZlo, faceZhi, 1, 0)
	addZ(neighbor(0, 0, +1), faceZhi, faceZlo, b.nz, b.nz+1)

	reqs := make([]*ampi.Request, len(xs))
	for i, x := range xs {
		reqs[i] = r.Irecv(x.peer, x.recvTag)
	}
	for _, x := range xs {
		r.Send(x.peer, x.sendTag, x.gather(), 0)
	}
	for i, x := range xs {
		in := r.Wait(reqs[i])
		if len(in) != x.planeLen {
			panic(fmt.Sprintf("jacobi: rank %d halo from %d has %d cells, want %d", r.Rank(), x.peer, len(in), x.planeLen))
		}
		x.scatter(in)
	}
}

// sweep performs one damped-Jacobi relaxation over the interior and
// returns the local residual norm contribution.
func (b *block) sweep(omega float64) float64 {
	var resid float64
	for i := 1; i <= b.nx; i++ {
		for j := 1; j <= b.ny; j++ {
			for k := 1; k <= b.nz; k++ {
				c := b.idx(i, j, k)
				avg := (b.u[b.idx(i-1, j, k)] + b.u[b.idx(i+1, j, k)] +
					b.u[b.idx(i, j-1, k)] + b.u[b.idx(i, j+1, k)] +
					b.u[b.idx(i, j, k-1)] + b.u[b.idx(i, j, k+1)]) / 6
				next := (1-omega)*b.u[c] + omega*avg
				d := next - b.u[c]
				resid += d * d
				b.un[c] = next
			}
		}
	}
	b.u, b.un = b.un, b.u
	// Ghost/boundary planes of un are stale after the swap for the
	// global Dirichlet face; re-pin handled by owner in next exchange.
	return math.Sqrt(resid)
}

// SerialSolve runs the same relaxation on a single global grid for
// oracle comparisons in tests. It returns the field and final residual.
func SerialSolve(cfg Config) ([]float64, float64) {
	b := newBlock(cfg.NX, cfg.NY, cfg.NZ)
	for j := 0; j <= b.ny+1; j++ {
		for k := 0; k <= b.nz+1; k++ {
			b.u[b.idx(0, j, k)] = 1
			b.un[b.idx(0, j, k)] = 1
		}
	}
	var resid float64
	for it := 0; it < cfg.Iters; it++ {
		resid = b.sweep(0.8)
	}
	out := make([]float64, 0, cfg.NX*cfg.NY*cfg.NZ)
	for i := 1; i <= b.nx; i++ {
		for j := 1; j <= b.ny; j++ {
			for k := 1; k <= b.nz; k++ {
				out = append(out, b.u[b.idx(i, j, k)])
			}
		}
	}
	return out, resid
}

// GlobalSum is a helper for oracle comparison: the sum of a serial
// field.
func GlobalSum(field []float64) float64 {
	var s float64
	for _, v := range field {
		s += v
	}
	return s
}
