package amr_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/workloads/amr"
)

func smallCfg() amr.Config {
	cfg := amr.DefaultConfig()
	cfg.BlocksX, cfg.BlocksY = 12, 12
	cfg.Steps = 12
	cfg.RegridEvery = 4
	return cfg
}

func runAMR(t *testing.T, cfg amr.Config, vps, pes int, balancer lb.Strategy) (uint64, int, *ampi.World) {
	t.Helper()
	var updates uint64
	maxLevel := 0
	prog := amr.New(cfg, func(r amr.Result) {
		updates += r.CellUpdates
		if r.MaxLevel > maxLevel {
			maxLevel = r.MaxLevel
		}
	})
	acfg := cfg
	_ = acfg
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
		VPs:       vps,
		Privatize: core.KindPIEglobals,
		Balancer:  balancer,
	}, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return updates, maxLevel, w
}

// TestWorkInvariant: total fine-cell updates are a pure function of
// the refinement schedule, independent of decomposition or balancing.
func TestWorkInvariant(t *testing.T) {
	cfg := smallCfg()
	want := amr.TotalCellUpdates(cfg)
	if want == 0 {
		t.Fatal("oracle zero")
	}
	for _, shape := range []struct{ vps, pes int }{{1, 1}, {4, 2}, {12, 4}} {
		got, maxLevel, _ := runAMR(t, cfg, shape.vps, shape.pes, lb.GreedyRefineLB{})
		if got != want {
			t.Errorf("vps=%d: %d cell updates, oracle %d", shape.vps, got, want)
		}
		if maxLevel != cfg.MaxLevel {
			t.Errorf("vps=%d: max level %d, want %d", shape.vps, maxLevel, cfg.MaxLevel)
		}
	}
}

// TestRefinementLevels: the level function respects the front and the
// configured depth.
func TestRefinementLevels(t *testing.T) {
	cfg := smallCfg()
	sawDeep, sawCoarse := false, false
	for t2 := 0; t2 < cfg.Steps; t2++ {
		for by := 0; by < cfg.BlocksY; by++ {
			for bx := 0; bx < cfg.BlocksX; bx++ {
				l := amr.Level(cfg, bx, by, t2)
				if l < 0 || l > cfg.MaxLevel {
					t.Fatalf("level %d out of range", l)
				}
				if l == cfg.MaxLevel {
					sawDeep = true
				}
				if l == 0 {
					sawCoarse = true
				}
			}
		}
	}
	if !sawDeep || !sawCoarse {
		t.Fatalf("degenerate refinement: deep=%v coarse=%v", sawDeep, sawCoarse)
	}
	// Refinement quadruples per level.
	if amr.CellUpdates(cfg, 1) != 4*amr.CellUpdates(cfg, 0) {
		t.Error("refinement cost ratio wrong")
	}
}

// TestRegridBalancingHelps: with the front concentrated on a few
// ranks' tiles, overdecomposition + GreedyRefineLB beats the static
// baseline.
func TestRegridBalancingHelps(t *testing.T) {
	cfg := amr.DefaultConfig()
	base := cfg
	base.RegridEvery = 0
	_, _, w0 := runAMR(t, base, 4, 4, nil)
	_, _, w1 := runAMR(t, cfg, 32, 4, lb.GreedyRefineLB{})
	if w1.ExecutionTime() >= w0.ExecutionTime() {
		t.Errorf("balanced AMR (%v) not faster than static (%v), migrations=%d",
			w1.ExecutionTime(), w0.ExecutionTime(), w1.Migrations)
	}
	if w1.Migrations == 0 {
		t.Error("regrid never migrated")
	}
}

// TestFrontCreatesImbalance: at any instant, per-rank step work is
// strongly skewed.
func TestFrontCreatesImbalance(t *testing.T) {
	cfg := smallCfg()
	const v = 6
	t2 := cfg.Steps / 2
	perRank := make([]uint64, v)
	for by := 0; by < cfg.BlocksY; by++ {
		for bx := 0; bx < cfg.BlocksX; bx++ {
			owner := amr.OwnerOf(cfg, v, bx, by)
			perRank[owner] += amr.CellUpdates(cfg, amr.Level(cfg, bx, by, t2))
		}
	}
	var min, max uint64 = 1 << 62, 0
	for _, u := range perRank {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max < 3*min {
		t.Errorf("front imbalance too weak: per-rank %v", perRank)
	}
}
