// Package amr is an adaptive-mesh-refinement surrogate for the
// multiscale workloads the paper's introduction motivates ("multiscale
// or other dynamic methods to increase simulation resolution only where
// needed, in areas of interest").
//
// The domain is a grid of coarse blocks, assigned to virtual ranks in
// spatially contiguous tiles. A moving feature (a shock front crossing
// the domain)
// forces blocks near it to refine; a block at refinement level L costs
// 4^L times the coarse work and exchanges proportionally larger halos.
// As the front moves, refinement — and therefore load — migrates
// through the block ownership map, producing a different imbalance
// structure than the ADCIRC surrogate's wet/dry regions: work
// multiplies in place across several levels rather than switching
// on/off.
package amr

import (
	"math"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/sim"
)

// Config sizes one AMR run.
type Config struct {
	// BlocksX, BlocksY are the coarse block grid dimensions.
	BlocksX, BlocksY int
	// BlockCells is the cells per coarse block edge (a block holds
	// BlockCells^2 cells at level 0).
	BlockCells int
	// MaxLevel is the deepest refinement level.
	MaxLevel int
	// Steps is the number of timesteps.
	Steps int
	// RegridEvery calls AMPI_Migrate after every that many steps
	// (0 = never).
	RegridEvery int
	// FlopsPerCell is the per-cell work at any level.
	FlopsPerCell int
	// FrontWidth is the refinement halo around the feature, in block
	// units per level (blocks within FrontWidth*(MaxLevel-L+1) of the
	// front refine to at least level L).
	FrontWidth float64
}

// DefaultConfig returns a deterministic mid-size problem.
func DefaultConfig() Config {
	return Config{
		BlocksX:      24,
		BlocksY:      24,
		BlockCells:   16,
		MaxLevel:     3,
		Steps:        32,
		RegridEvery:  8,
		FlopsPerCell: 40,
		FrontWidth:   1.0,
	}
}

// Image returns the AMR program image: a C++ code with per-rank mesh
// metadata in tagged globals and a moderate code segment.
func Image() *elf.Image {
	return elf.NewBuilder("amr").
		Language("c++").
		TaggedGlobal("num_blocks_owned", 0).
		TaggedGlobal("max_level_seen", 0).
		TaggedGlobal("step", 0).
		TaggedStatic("regrid_count", 0).
		Const("max_level_cfg", 8).
		Func("main", 8192).
		Func("advance_block", 32<<10).
		Func("refine_check", 16<<10).
		Func("exchange_fluxes", 16<<10).
		CodeBulk(6 << 20).
		DataBulk(1 << 20).
		MustBuild()
}

// frontPos returns the shock front's x-position (in block units) at
// step t: it sweeps across the domain once over the run.
func frontPos(cfg Config, t int) float64 {
	return float64(cfg.BlocksX) * float64(t) / float64(cfg.Steps)
}

// Level returns block (bx, by)'s refinement level at step t.
func Level(cfg Config, bx, by, t int) int {
	// Distance from the block center to the front line, with a mild
	// vertical bow so the front is not axis-trivial.
	fx := frontPos(cfg, t)
	bow := 2 * math.Sin(float64(by)/float64(cfg.BlocksY)*math.Pi)
	d := math.Abs(float64(bx) + 0.5 - fx - bow)
	for l := cfg.MaxLevel; l >= 1; l-- {
		if d <= cfg.FrontWidth*float64(cfg.MaxLevel-l+1) {
			return l
		}
	}
	return 0
}

// CellUpdates returns the fine-cell updates a block performs in one
// step at the given level: refining one level quadruples the cells
// (2x in each dimension).
func CellUpdates(cfg Config, level int) uint64 {
	cells := uint64(cfg.BlockCells) * uint64(cfg.BlockCells)
	return cells << (2 * uint(level))
}

// TotalCellUpdates computes the oracle: total fine-cell updates over
// the whole run, independent of decomposition.
func TotalCellUpdates(cfg Config) uint64 {
	var total uint64
	for t := 0; t < cfg.Steps; t++ {
		for by := 0; by < cfg.BlocksY; by++ {
			for bx := 0; bx < cfg.BlocksX; bx++ {
				total += CellUpdates(cfg, Level(cfg, bx, by, t))
			}
		}
	}
	return total
}

// Result summarizes one rank's run.
type Result struct {
	VP          int
	CellUpdates uint64
	MaxLevel    int
	Regrids     uint64
}

// OwnerOf maps a block to its rank: contiguous column-major runs, so
// each rank owns a spatially local tile and the moving front loads a
// few ranks at a time (the imbalance the regrid step must fix).
func OwnerOf(cfg Config, v, bx, by int) int {
	idx := bx*cfg.BlocksY + by
	return idx * v / (cfg.BlocksX * cfg.BlocksY)
}

// New returns the AMR program.
func New(cfg Config, results func(Result)) *ampi.Program {
	return &ampi.Program{
		Image: Image(),
		Main:  func(r *ampi.Rank) { runRank(cfg, r, results) },
	}
}

func runRank(cfg Config, r *ampi.Rank, results func(Result)) {
	v := r.Size()
	me := r.Rank()
	flop := r.World().Cluster.Cost.FlopTime

	// Collect owned blocks.
	type block struct{ bx, by int }
	var owned []block
	for by := 0; by < cfg.BlocksY; by++ {
		for bx := 0; bx < cfg.BlocksX; bx++ {
			if OwnerOf(cfg, v, bx, by) == me {
				owned = append(owned, block{bx, by})
			}
		}
	}
	// Handles held across the step loop: resolved once, re-resolved
	// automatically after each regrid migration.
	ctx := r.Ctx()
	stepVar := ctx.Var("step")
	regridCount := ctx.Var("regrid_count")
	ctx.Store("num_blocks_owned", uint64(len(owned)))

	var updates uint64
	maxLevel := 0
	for t := 0; t < cfg.Steps; t++ {
		stepVar.Store(uint64(t))

		// Flux exchange: one message to each neighbor rank owning an
		// adjacent block, sized by the finer side's boundary cells.
		type edge struct {
			peer  int
			bytes uint64
		}
		volume := map[int]uint64{}
		for _, b := range owned {
			lvl := Level(cfg, b.bx, b.by, t)
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := b.bx+d[0], b.by+d[1]
				if nx < 0 || nx >= cfg.BlocksX || ny < 0 || ny >= cfg.BlocksY {
					continue
				}
				peer := OwnerOf(cfg, v, nx, ny)
				if peer == me {
					continue
				}
				nl := Level(cfg, nx, ny, t)
				fine := lvl
				if nl > fine {
					fine = nl
				}
				volume[peer] += uint64(cfg.BlockCells) << uint(fine) * 8
			}
		}
		var edges []edge
		for peer, bytes := range volume {
			edges = append(edges, edge{peer, bytes})
		}
		// Deterministic order.
		for i := 0; i < len(edges); i++ {
			for j := i + 1; j < len(edges); j++ {
				if edges[j].peer < edges[i].peer {
					edges[i], edges[j] = edges[j], edges[i]
				}
			}
		}
		reqs := make([]*ampi.Request, len(edges))
		for i, e := range edges {
			reqs[i] = r.Irecv(e.peer, t)
		}
		for _, e := range edges {
			r.Send(e.peer, t, nil, e.bytes)
		}
		r.Waitall(reqs)

		// Advance owned blocks at their current refinement.
		var stepUpdates uint64
		for _, b := range owned {
			lvl := Level(cfg, b.bx, b.by, t)
			if lvl > maxLevel {
				maxLevel = lvl
			}
			stepUpdates += CellUpdates(cfg, lvl)
		}
		updates += stepUpdates
		r.Compute(sim.Time(stepUpdates) * sim.Time(cfg.FlopsPerCell) * flop)
		stepVar.Charge(stepUpdates / 8)

		if cfg.RegridEvery > 0 && (t+1)%cfg.RegridEvery == 0 && t+1 < cfg.Steps {
			regridCount.Store(regridCount.Load() + 1)
			r.Migrate()
		}
	}
	ctx.Store("max_level_seen", uint64(maxLevel))
	r.Allreduce([]float64{float64(updates)}, ampi.OpSum)
	if results != nil {
		results(Result{
			VP:          me,
			CellUpdates: updates,
			MaxLevel:    maxLevel,
			Regrids:     regridCount.Load(),
		})
	}
}
