// Package adcirc is a surrogate for ADCIRC, the production Fortran
// storm-surge simulation the paper validates PIEglobals on (§4.6).
//
// ADCIRC models rising ocean waters flooding over coastal terrain; the
// computationally intensive parts of the domain follow the water as it
// spreads, while dry areas have little to no work. The surrogate keeps
// exactly that load structure: a 2-D coastal grid, row-decomposed
// across virtual ranks, with a storm front that moves across the domain
// wetting cells near its track. Per-step compute cost is proportional
// to a rank's wet cells, so the hotspot migrates through rank
// subdomains over time — the dynamic imbalance that makes
// overdecomposition plus GreedyRefineLB effective.
//
// Like the real code, the surrogate's binary image carries hundreds of
// mutable global variables across a ~14 MB code segment — the code size
// that makes PIEglobals migration measurably more expensive (Fig. 8).
package adcirc

import (
	"fmt"
	"math"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/sim"
)

// Config sizes one surge simulation.
type Config struct {
	// Width, Height are the global grid dimensions (Height rows are
	// decomposed across ranks).
	Width, Height int
	// Steps is the number of timesteps.
	Steps int
	// LBPeriod calls AMPI_Migrate every that many steps (0 = never).
	LBPeriod int
	// WetFlops and DryFlops are per-cell work for wet and dry cells.
	WetFlops int
	DryFlops int
	// StormRadius is the wet front's initial radius in cells.
	StormRadius float64
	// StormGrowth is the relative radius growth over the run: the
	// radius ends at StormRadius * (1 + StormGrowth). Surge flooding
	// is growth-dominated — water spreads over the floodplain — which
	// is what keeps load distributions valid between balancing steps.
	StormGrowth float64
	// CacheL2Bytes models per-core L2; a rank whose working set fits
	// gets CacheSpeedup on its compute charge (the cache-blocking
	// benefit of overdecomposition the paper observes even on one
	// core).
	CacheL2Bytes uint64
	CacheSpeedup float64
	// HeapBytesPerCell models user heap per owned cell (mesh arrays),
	// contributing to migration payloads.
	HeapBytesPerCell uint64
}

// DefaultConfig returns the configuration used by the Table 2 / Fig. 9
// experiments (scaled down from production size but preserving the
// imbalance structure).
func DefaultConfig() Config {
	return Config{
		Width:            384,
		Height:           512,
		Steps:            48,
		LBPeriod:         8,
		WetFlops:         2200,
		DryFlops:         40,
		StormRadius:      24,
		StormGrowth:      4,
		CacheL2Bytes:     512 << 10, // EPYC 7742: 512 KiB L2 per core
		CacheSpeedup:     0.85,
		HeapBytesPerCell: 64,
	}
}

// CodeSegmentBytes is the surrogate's code footprint, matching the
// ~14 MB the paper reports for ADCIRC under PIEglobals.
const CodeSegmentBytes = 14 << 20

// NumGlobals is the number of mutable global variables in the image;
// the paper describes "hundreds of mutable global variables across
// nearly 50,000 source lines".
const NumGlobals = 320

// Image returns the ADCIRC surrogate binary image: hundreds of tagged
// mutable Fortran module variables and common blocks, a 14 MB code
// segment, and a handful of entry points.
func Image() *elf.Image {
	b := elf.NewBuilder("adcirc").Language("fortran")
	for i := 0; i < NumGlobals; i++ {
		name := fmt.Sprintf("global_%03d", i)
		switch i % 3 {
		case 0:
			b.TaggedGlobal(name, uint64(i))
		case 1:
			b.TaggedStatic(name, uint64(i)) // implicit-save locals
		default:
			b.TaggedGlobal(name, 0) // common blocks
		}
	}
	b.Const("gravity", math.Float64bits(9.81))
	b.Func("main", 16<<10).
		Func("timestep", 64<<10).
		Func("wetdry_check", 32<<10).
		Func("momentum_solve", 96<<10).
		Func("continuity_solve", 64<<10).
		Func("boundary_forcing", 24<<10).
		CodeBulk(CodeSegmentBytes).
		DataBulk(2 << 20).
		RODataBulk(1 << 20). // nodal lookup tables, basis constants
		Relocations(4096)
	return b.MustBuild()
}

// Result summarizes one rank's run.
type Result struct {
	VP int
	// WetCellSteps is the rank's total wet-cell updates — the "water
	// volume" invariant tests compare across decompositions.
	WetCellSteps uint64
	// MaxStepLoad is the rank's largest single-step wet count,
	// indicating how concentrated the hotspot got.
	MaxStepLoad int
}

// storm returns the front's center at step t: landfall near the lower
// quarter of the domain, drifting slowly as the surge spreads.
func storm(cfg Config, t int) (x, y float64) {
	frac := float64(t) / float64(cfg.Steps)
	x = (0.3 + 0.4*frac) * float64(cfg.Width)
	y = (0.3 + 0.35*frac) * float64(cfg.Height)
	return x, y
}

// Radius returns the wet front's radius at step t.
func Radius(cfg Config, t int) float64 {
	frac := float64(t) / float64(cfg.Steps)
	return cfg.StormRadius * (1 + cfg.StormGrowth*frac)
}

// wet reports whether cell (x, y) is wet at step t.
func wet(cfg Config, x, y, t int) bool {
	sx, sy := storm(cfg, t)
	dx, dy := float64(x)-sx, float64(y)-sy
	r := Radius(cfg, t)
	return dx*dx+dy*dy <= r*r
}

// WetCount returns the number of wet cells in rows [r0, r1) at step t.
// The wet region is a disk, so each row's wet span is computed
// analytically.
func WetCount(cfg Config, r0, r1, t int) int {
	sx, sy := storm(cfg, t)
	r := Radius(cfg, t)
	n := 0
	for y := r0; y < r1; y++ {
		dy := float64(y) - sy
		d2 := r*r - dy*dy
		if d2 < 0 {
			continue
		}
		half := math.Sqrt(d2)
		// Cells x with (x-sx)^2 <= d2: x in [ceil(sx-half), floor(sx+half)].
		lo := int(math.Ceil(sx - half))
		hi := int(math.Floor(sx + half))
		if lo < 0 {
			lo = 0
		}
		if hi >= cfg.Width {
			hi = cfg.Width - 1
		}
		if hi >= lo {
			n += hi - lo + 1
		}
	}
	return n
}

// New returns the surge program.
func New(cfg Config, results func(Result)) *ampi.Program {
	return &ampi.Program{
		Image: Image(),
		Main:  func(r *ampi.Rank) { runRank(cfg, r, results) },
	}
}

func rows(cfg Config, v, vp int) (r0, r1 int) {
	r0 = vp * cfg.Height / v
	r1 = (vp + 1) * cfg.Height / v
	return r0, r1
}

func runRank(cfg Config, r *ampi.Rank, results func(Result)) {
	v := r.Size()
	me := r.Rank()
	r0, r1 := rows(cfg, v, me)
	myRows := r1 - r0
	cells := uint64(myRows) * uint64(cfg.Width)

	if cfg.HeapBytesPerCell > 0 && cells > 0 {
		if _, err := r.Ctx().Heap.AllocBallast(cells*cfg.HeapBytesPerCell, "mesh-arrays"); err != nil {
			panic(err)
		}
	}

	// The timestep loop references module variables pervasively; a few
	// representative privatized accesses per cell are charged below.
	flop := r.World().Cluster.Cost.FlopTime
	workingSet := cells * 16 // two fields of 8 bytes
	cacheFactor := 1.0
	if cfg.CacheL2Bytes > 0 && workingSet > 0 && workingSet <= cfg.CacheL2Bytes {
		cacheFactor = cfg.CacheSpeedup
	}

	// One representative module variable, resolved once and held across
	// the timestep loop (the handle survives LB migrations).
	g0 := r.Ctx().Var("global_000")

	var volume uint64
	maxStep := 0
	haloBytes := uint64(cfg.Width) * 8
	for t := 0; t < cfg.Steps; t++ {
		// Exchange water-height halos with row neighbors.
		reqs := make([]*ampi.Request, 0, 2)
		if me > 0 {
			reqs = append(reqs, r.Irecv(me-1, t*2))
		}
		if me < v-1 {
			reqs = append(reqs, r.Irecv(me+1, t*2))
		}
		if me > 0 {
			r.Send(me-1, t*2, nil, haloBytes)
		}
		if me < v-1 {
			r.Send(me+1, t*2, nil, haloBytes)
		}
		r.Waitall(reqs)

		wetCells := WetCount(cfg, r0, r1, t)
		dryCells := int(cells) - wetCells
		work := sim.Time(wetCells)*sim.Time(cfg.WetFlops) + sim.Time(dryCells)*sim.Time(cfg.DryFlops)
		r.Compute(sim.Time(float64(work) * cacheFactor * float64(flop)))
		g0.Charge(uint64(wetCells) * 4)
		g0.Store(uint64(t))

		volume += uint64(wetCells)
		if wetCells > maxStep {
			maxStep = wetCells
		}

		if cfg.LBPeriod > 0 && (t+1)%cfg.LBPeriod == 0 && t+1 < cfg.Steps {
			r.Migrate()
		}
	}
	// Global volume check keeps every rank honest about its share.
	r.Allreduce([]float64{float64(volume)}, ampi.OpSum)
	if results != nil {
		results(Result{VP: me, WetCellSteps: volume, MaxStepLoad: maxStep})
	}
}

// TotalWetCellSteps computes the oracle water volume: the sum of wet
// cells over all steps, independent of decomposition.
func TotalWetCellSteps(cfg Config) uint64 {
	var total uint64
	for t := 0; t < cfg.Steps; t++ {
		total += uint64(WetCount(cfg, 0, cfg.Height, t))
	}
	return total
}
