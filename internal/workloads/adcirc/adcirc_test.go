package adcirc_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/workloads/adcirc"
)

func smallCfg() adcirc.Config {
	cfg := adcirc.DefaultConfig()
	cfg.Width, cfg.Height = 48, 48
	cfg.Steps = 12
	cfg.LBPeriod = 4
	cfg.StormRadius = 6
	cfg.StormGrowth = 1.5
	return cfg
}

func runSurge(t *testing.T, cfg adcirc.Config, vps, pes int, balancer lb.Strategy) (uint64, *ampi.World) {
	t.Helper()
	var volume uint64
	prog := adcirc.New(cfg, func(res adcirc.Result) { volume += res.WetCellSteps })
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
		VPs:       vps,
		Privatize: core.KindPIEglobals,
		Balancer:  balancer,
	}, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return volume, w
}

// TestVolumeInvariant: total wet-cell work is a physical invariant,
// independent of decomposition, virtualization ratio, or balancing.
func TestVolumeInvariant(t *testing.T) {
	cfg := smallCfg()
	want := adcirc.TotalWetCellSteps(cfg)
	if want == 0 {
		t.Fatal("oracle volume is zero; storm misses the domain")
	}
	for _, shape := range []struct{ vps, pes int }{{1, 1}, {4, 2}, {8, 2}, {16, 4}} {
		got, _ := runSurge(t, cfg, shape.vps, shape.pes, lb.GreedyRefineLB{})
		if got != want {
			t.Errorf("vps=%d pes=%d volume %d, oracle %d", shape.vps, shape.pes, got, want)
		}
	}
}

// TestStormCreatesImbalance: the hotspot concentrates on few ranks at
// any instant.
func TestStormCreatesImbalance(t *testing.T) {
	cfg := smallCfg()
	var maxLoad, minLoad = 0, 1 << 30
	prog := adcirc.New(cfg, func(res adcirc.Result) {
		if res.MaxStepLoad > maxLoad {
			maxLoad = res.MaxStepLoad
		}
		if res.MaxStepLoad < minLoad {
			minLoad = res.MaxStepLoad
		}
	})
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       8,
		Privatize: core.KindPIEglobals,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if maxLoad <= 2*minLoad {
		t.Errorf("storm load spread max=%d min=%d; expected concentration", maxLoad, minLoad)
	}
}

// TestLoadBalancingHelps: with the storm-induced imbalance,
// overdecomposition plus GreedyRefineLB beats the unvirtualized,
// unbalanced baseline.
func TestLoadBalancingHelps(t *testing.T) {
	// Paper-scale per-step work: migration payloads (the 14 MB code
	// segment) must be amortizable, as in the real ADCIRC runs.
	cfg := adcirc.DefaultConfig()
	cfg.Steps = 24
	cfg.LBPeriod = 8

	baseCfg := cfg
	baseCfg.LBPeriod = 0
	_, base := runSurge(t, baseCfg, 4, 4, nil) // 1 VP per PE, no LB
	_, tuned := runSurge(t, cfg, 32, 4, lb.GreedyRefineLB{})
	bt, tt := base.ExecutionTime(), tuned.ExecutionTime()
	if tt >= bt {
		t.Errorf("LB run %v not faster than baseline %v (migrations=%d)", tt, bt, tuned.Migrations)
	}
	if tuned.Migrations == 0 {
		t.Error("GreedyRefineLB never migrated despite storm imbalance")
	}
}

// TestImageShape: the surrogate matches the paper's description of
// ADCIRC (hundreds of globals, ~14 MB code).
func TestImageShape(t *testing.T) {
	img := adcirc.Image()
	if img.Language != "fortran" {
		t.Errorf("language %q", img.Language)
	}
	if n := len(img.MutableVars()); n < 300 {
		t.Errorf("%d mutable globals, want hundreds", n)
	}
	if img.CodeSize < 14<<20 {
		t.Errorf("code segment %d bytes, want >= 14 MiB", img.CodeSize)
	}
}
