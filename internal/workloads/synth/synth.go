// Package synth provides small synthetic MPI programs: the paper's
// hello-world privatization demonstrator (Fig. 2/3), an empty program
// for startup measurements (Fig. 5), and a two-thread ping benchmark
// for context-switch measurements (Fig. 6).
package synth

import (
	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/sim"
)

// HelloImage models the Fig. 2 C program: a mutable global my_rank, a
// write-once global num_ranks, a mutable static call counter, and a
// main function. Both mutable variables are tagged thread_local so the
// image is also usable with TLSglobals.
func HelloImage() *elf.Image {
	return elf.NewBuilder("hello_world").
		Language("c").
		TaggedGlobal("my_rank", 0).
		Const("num_ranks", 0).
		TaggedStatic("calls", 0).
		Func("main", 2048).
		Func("report", 512).
		CodeBulk(64 << 10).
		MustBuild()
}

// HelloResult is one rank's observed output line.
type HelloResult struct {
	VP      int
	Printed uint64
}

// Hello returns the Fig. 2 program. Each rank stores its rank number
// into the global my_rank, enters a barrier, then "prints" the global's
// value through sink. Without privatization, ranks sharing a process
// print the last writer's rank (Fig. 3); with privatization each prints
// its own.
func Hello(sink func(HelloResult)) *ampi.Program {
	return &ampi.Program{
		Image: HelloImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			myRank := ctx.Var("my_rank")
			calls := ctx.Var("calls")
			myRank.Store(uint64(r.Rank()))
			calls.Store(calls.Load() + 1)
			r.Barrier()
			sink(HelloResult{VP: r.Rank(), Printed: myRank.Load()})
		},
	}
}

// EmptyImage is a minimal program image for startup measurements, with
// a modest 3 MB code segment like the paper's Jacobi-3D binary.
func EmptyImage() *elf.Image {
	return elf.NewBuilder("empty").
		Global("g0", 0).
		Static("s0", 0).
		Func("main", 1024).
		CodeBulk(3 << 20).
		DataBulk(256 << 10).
		MustBuild()
}

// Empty returns a program whose ranks immediately synchronize and
// exit; its job time is dominated by startup.
func Empty() *ampi.Program {
	return &ampi.Program{
		Image: EmptyImage(),
		Main: func(r *ampi.Rank) {
			r.Barrier()
		},
	}
}

// PingCount is the number of context switches the Fig. 6 microbenchmark
// performs between its two user-level threads.
const PingCount = 100_000

// Ping returns the Fig. 6 microbenchmark: two ranks on one PE that
// yield back and forth PingCount times, so the job's scheduler switch
// count and switch time measure per-switch overhead for the active
// privatization method.
func Ping() *ampi.Program {
	return PingWithImage(EmptyImage())
}

// PingWithImage is Ping over an arbitrary program image, used to
// verify that context-switch cost does not depend on code size or
// global-variable count (§4.2).
func PingWithImage(img *elf.Image) *ampi.Program {
	return &ampi.Program{
		Image: img,
		Main: func(r *ampi.Rank) {
			for i := 0; i < PingCount/2; i++ {
				r.Yield()
			}
		},
	}
}

// CheckpointedImage tracks progress in privatized globals (an
// iteration counter and an accumulator), so a restarted run can skip
// completed work hot-start style.
func CheckpointedImage() *elf.Image {
	return elf.NewBuilder("ckpt_synth").
		TaggedGlobal("iter", 0).
		TaggedGlobal("acc", 0).
		Func("main", 1024).
		CodeBulk(1 << 20).
		DataBulk(256 << 10).
		MustBuild()
}

// Checkpointed returns an iterative program for fault-tolerance runs:
// each rank performs iters iterations of compute work, folding a
// rank-dependent term into a privatized accumulator, and offers the
// runtime a checkpoint (CheckpointIfDue) at every iteration boundary.
// Restarted ranks resume from the restored iteration counter, so the
// final accumulators come out right only if no work is lost or
// double-counted — the property recovery tests pin. finals[rank]
// receives each rank's accumulator; compare against CheckpointedAcc.
func Checkpointed(iters int, compute sim.Time, finals []uint64) *ampi.Program {
	return &ampi.Program{
		Image: CheckpointedImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < iters {
				it := ctx.Load("iter")
				r.Compute(compute)
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.CheckpointIfDue()
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("acc")
		},
	}
}

// CheckpointedAcc is the accumulator value a rank of Checkpointed(iters)
// must end with.
func CheckpointedAcc(iters, rank int) uint64 {
	var acc uint64
	for it := 1; it <= iters; it++ {
		acc += uint64(it) * uint64(rank+1)
	}
	return acc
}

// ComputeBound returns a program where each rank computes for the
// given virtual duration, yielding periodically; used by scheduler and
// load-balance tests.
func ComputeBound(perRank []sim.Time, chunks int) *ampi.Program {
	return &ampi.Program{
		Image: EmptyImage(),
		Main: func(r *ampi.Rank) {
			total := perRank[r.Rank()%len(perRank)]
			for i := 0; i < chunks; i++ {
				r.Compute(total / sim.Time(chunks))
				r.Yield()
			}
			r.Barrier()
		},
	}
}
