package synth_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/workloads/synth"
)

func TestHelloImageShape(t *testing.T) {
	img := synth.HelloImage()
	if img.VarByName("my_rank") == nil || !img.VarByName("my_rank").Tagged {
		t.Error("my_rank must be a tagged mutable global")
	}
	if img.VarByName("num_ranks").Class != elf.ClassConst {
		t.Error("num_ranks must be write-once (the paper calls it safe to share)")
	}
	if img.VarByName("calls").Class != elf.ClassStatic {
		t.Error("calls must be a static")
	}
	if img.FuncByName("main") == nil {
		t.Error("missing main")
	}
}

func TestEmptyImageShape(t *testing.T) {
	img := synth.EmptyImage()
	if img.CodeSize < 3<<20 {
		t.Errorf("empty image code %d, want the paper's ~3MB Jacobi-class binary", img.CodeSize)
	}
}

func TestPingSwitchCount(t *testing.T) {
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindNone,
	}, synth.Ping())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.TotalSwitches(); got < synth.PingCount {
		t.Fatalf("%d switches, want >= %d", got, synth.PingCount)
	}
}

func TestComputeBoundCharges(t *testing.T) {
	per := []sim.Time{1e6, 2e6}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindNone,
	}, synth.ComputeBound(per, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Serialized on one PE: at least 3 ms of compute.
	if w.ExecutionTime() < 3e6 {
		t.Fatalf("execution %v, want >= 3ms", w.ExecutionTime())
	}
}
