// Package loader models the dynamic linker facilities the paper's
// runtime privatization methods are built on: dlopen, the glibc
// extension dlmopen with link-map namespaces, dl_iterate_phdr, and — for
// FSglobals — loading per-rank copies of the binary from a shared
// filesystem.
//
// The model reproduces the operational properties the paper depends on:
//
//   - dlmopen with LM_ID_NEWLM duplicates code and data segments per
//     namespace, but stock glibc supports only a small fixed number of
//     namespaces per process (the paper cites 12), which caps PIPglobals'
//     virtualization degree unless a patched glibc is used (§3.1);
//   - dlopen of *distinct file paths* also yields distinct segment
//     copies, which is what FSglobals exploits with POSIX-only calls
//     (§3.2);
//   - segments mapped by the linker come from the plain mmap path — the
//     runtime cannot route them through Isomalloc, so they can never
//     migrate (§3.1, §3.2);
//   - dl_iterate_phdr exposes segment locations before/after a dlopen,
//     which is how PIEglobals discovers the fresh code and data segments
//     it then copies through Isomalloc itself (§3.3).
package loader

import (
	"errors"
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/mem"
	"provirt/internal/sim"
)

// GlibcNamespaceLimit is the number of link-map namespaces stock glibc
// supports per process. The paper calls it "a seemingly arbitrary limit
// inside glibc's implementation"; PIP ships a patched glibc to raise it.
const GlibcNamespaceLimit = 12

// ShimFunctionCount is the number of MPI entry points in the
// function-pointer shim of Fig. 4 (the AMPI_FuncPtr_Transport struct);
// populating a loaded binary's pointers costs one store per entry.
const ShimFunctionCount = 128

// ErrNamespaceLimit is returned by Dlmopen when the process has
// exhausted its link-map namespaces.
var ErrNamespaceLimit = errors.New("loader: dlmopen: out of link-map namespaces (glibc limit; patched glibc required)")

// Handle is a loaded object: the instantiated image plus its mapped
// regions.
type Handle struct {
	Path       string
	Inst       *elf.Instance
	CodeRegion *mem.Region
	DataRegion *mem.Region
	Namespace  int
	// ShimPopulated reports whether the AMPI function-pointer shim in
	// this copy of the binary has been filled in (Fig. 4's
	// AMPI_FuncPtr_Unpack). Calling into MPI from a copy whose shim was
	// never populated is a crash in the real system.
	ShimPopulated bool
	// CtorAllocs counts heap allocations made by static constructors
	// when this handle was opened.
	CtorAllocs int

	refs int
}

// SegmentInfo is one dl_iterate_phdr record.
type SegmentInfo struct {
	Path     string
	CodeBase uint64
	CodeSize uint64
	DataBase uint64
	DataSize uint64
}

// Linker is one process's dynamic-linking state.
type Linker struct {
	Proc *machine.Process
	Cost *machine.CostModel
	// PatchedGlibc lifts the namespace limit, modeling the patched
	// glibc the PIP project distributes.
	PatchedGlibc bool

	nextNamespace int
	byPath        map[string]*Handle
	handles       []*Handle
}

// New returns a linker for the process.
func New(proc *machine.Process, cost *machine.CostModel) *Linker {
	return &Linker{Proc: proc, Cost: cost, nextNamespace: 1, byPath: make(map[string]*Handle)}
}

// NamespacesInUse reports how many extra link-map namespaces exist.
func (l *Linker) NamespacesInUse() int { return l.nextNamespace - 1 }

// Handles returns all live handles in load order.
func (l *Linker) Handles() []*Handle { return l.handles }

// loadCost is the virtual time one load takes, excluding any filesystem
// transfer: fixed dlopen cost, relocation processing, page mapping, and
// static-constructor execution.
func (l *Linker) loadCost(img *elf.Image, dlmopen bool, ctorAllocs int) sim.Time {
	c := l.Cost
	d := c.DlopenBase
	if dlmopen {
		d += c.DlmopenExtra
	}
	d += sim.Time(img.Relocations) * c.RelocationCost
	d += c.PageMapTime(img.TotalSegmentBytes())
	d += sim.Time(ctorAllocs) * c.CtorReplayPerAlloc
	return d
}

// open maps the image into the process and runs its constructors.
func (l *Linker) open(img *elf.Image, path string, namespace int) (*Handle, error) {
	code := l.Proc.AS.Mmap(img.CodeSize, path+":code")
	data := l.Proc.AS.Mmap(img.DataSize, path+":data")
	inst, err := elf.NewInstance(img, code.Base, data.Base, namespace)
	if err != nil {
		return nil, err
	}
	n, err := inst.RunCtors(l.Proc.Malloc)
	if err != nil {
		return nil, err
	}
	h := &Handle{
		Path:       path,
		Inst:       inst,
		CodeRegion: code,
		DataRegion: data,
		Namespace:  namespace,
		CtorAllocs: n,
		refs:       1,
	}
	l.byPath[path] = h
	l.handles = append(l.handles, h)
	return h, nil
}

// Dlopen loads the object at path into the base namespace, starting at
// virtual time start; it returns the handle and the completion time.
// Opening an already-open path returns the existing handle (dlopen
// reference semantics) at negligible cost.
func (l *Linker) Dlopen(img *elf.Image, path string, start sim.Time) (*Handle, sim.Time, error) {
	if h, ok := l.byPath[path]; ok {
		h.refs++
		return h, start + l.Cost.DlopenBase/10, nil
	}
	h, err := l.open(img, path, 0)
	if err != nil {
		return nil, start, err
	}
	return h, start + l.loadCost(img, false, h.CtorAllocs), nil
}

// Dlmopen loads the object into a fresh link-map namespace (LM_ID_NEWLM)
// with its own copies of the code and data segments. Without a patched
// glibc the namespace supply is GlibcNamespaceLimit.
func (l *Linker) Dlmopen(img *elf.Image, path string, start sim.Time) (*Handle, sim.Time, error) {
	if !l.PatchedGlibc && l.nextNamespace > GlibcNamespaceLimit {
		return nil, start, fmt.Errorf("%w (process %d has %d namespaces)",
			ErrNamespaceLimit, l.Proc.ID, l.nextNamespace-1)
	}
	ns := l.nextNamespace
	l.nextNamespace++
	h, err := l.open(img, fmt.Sprintf("%s#ns%d", path, ns), ns)
	if err != nil {
		return nil, start, err
	}
	h.Namespace = ns
	h.Inst.Namespace = ns
	return h, start + l.loadCost(img, true, h.CtorAllocs), nil
}

// DlopenFromFS loads a copy of the binary previously written to the
// shared filesystem: the read is charged against the (contended)
// filesystem, then the object is linked as a plain dlopen. This is the
// FSglobals path.
func (l *Linker) DlopenFromFS(fs *machine.SharedFS, img *elf.Image, path string, start sim.Time) (*Handle, sim.Time, error) {
	if _, ok := l.byPath[path]; ok {
		return nil, start, fmt.Errorf("loader: FS copy %q already opened in process %d; FSglobals requires one copy per rank", path, l.Proc.ID)
	}
	readDone, _, err := fs.ReadFile(start, path)
	if err != nil {
		return nil, start, err
	}
	h, err := l.open(img, path, 0)
	if err != nil {
		return nil, start, err
	}
	return h, readDone + l.loadCost(img, false, h.CtorAllocs), nil
}

// PopulateShim fills the function-pointer shim of a loaded copy
// (AMPI_FuncPtr_Unpack of Fig. 4) and returns the completion time.
func (l *Linker) PopulateShim(h *Handle, start sim.Time) sim.Time {
	h.ShimPopulated = true
	return start + sim.Time(ShimFunctionCount)*l.Cost.GlobalAccessDirect
}

// IteratePhdr returns one record per loaded object, in load order —
// the dl_iterate_phdr view PIEglobals diffs before and after a dlopen to
// find the new object's segments.
func (l *Linker) IteratePhdr() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(l.handles))
	for _, h := range l.handles {
		out = append(out, SegmentInfo{
			Path:     h.Path,
			CodeBase: h.CodeRegion.Base,
			CodeSize: h.Inst.Img.CodeSize,
			DataBase: h.DataRegion.Base,
			DataSize: h.Inst.Img.DataSize,
		})
	}
	return out
}

// Dlclose drops a reference; the final close unmaps the segments.
func (l *Linker) Dlclose(h *Handle) error {
	if h.refs <= 0 {
		return fmt.Errorf("loader: dlclose of closed handle %q", h.Path)
	}
	h.refs--
	if h.refs > 0 {
		return nil
	}
	if err := l.Proc.AS.Unmap(h.CodeRegion.Base); err != nil {
		return err
	}
	if err := l.Proc.AS.Unmap(h.DataRegion.Base); err != nil {
		return err
	}
	delete(l.byPath, h.Path)
	for i, hh := range l.handles {
		if hh == h {
			l.handles = append(l.handles[:i], l.handles[i+1:]...)
			break
		}
	}
	return nil
}

// WriteBinaryToFS writes one rank's copy of the binary to the shared
// filesystem (the FSglobals startup write) and returns the completion
// time.
func WriteBinaryToFS(fs *machine.SharedFS, img *elf.Image, path string, start sim.Time) sim.Time {
	return fs.WriteFile(start, path, img.TotalSegmentBytes())
}
