package loader

import (
	"errors"
	"strings"
	"testing"

	"provirt/internal/elf"
	"provirt/internal/machine"
)

func testSetup(t *testing.T) (*Linker, *machine.Cluster, *elf.Image) {
	t.Helper()
	cl, err := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	proc := cl.Processes()[0]
	img := elf.NewBuilder("app").
		Global("g", 5).
		Func("main", 1024).
		CodeBulk(1 << 20).
		MustBuild()
	return New(proc, cl.Cost), cl, img
}

func TestDlopenMapsSegments(t *testing.T) {
	l, _, img := testSetup(t)
	h, done, err := l.Dlopen(img, "app", 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("dlopen charged no time")
	}
	if h.CodeRegion.Base == h.DataRegion.Base {
		t.Error("code and data segments alias")
	}
	if h.Inst.Data[img.VarByName("g").Index] != 5 {
		t.Error("globals not initialized")
	}
	// Re-opening the same path returns the same handle cheaply.
	h2, _, err := l.Dlopen(img, "app", done)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Error("dlopen of open path returned new handle")
	}
}

func TestDlmopenNamespaces(t *testing.T) {
	l, _, img := testSetup(t)
	seen := map[uint64]bool{}
	for i := 0; i < GlibcNamespaceLimit; i++ {
		h, _, err := l.Dlmopen(img, "app", 0)
		if err != nil {
			t.Fatalf("dlmopen %d: %v", i, err)
		}
		if h.Namespace == 0 {
			t.Error("dlmopen landed in the base namespace")
		}
		if seen[h.CodeRegion.Base] {
			t.Error("namespaces share a code segment")
		}
		seen[h.CodeRegion.Base] = true
	}
	if _, _, err := l.Dlmopen(img, "app", 0); !errors.Is(err, ErrNamespaceLimit) {
		t.Fatalf("13th dlmopen: %v, want ErrNamespaceLimit", err)
	}
	l.PatchedGlibc = true
	if _, _, err := l.Dlmopen(img, "app", 0); err != nil {
		t.Fatalf("patched glibc still limited: %v", err)
	}
}

func TestFSCopyLoad(t *testing.T) {
	l, cl, img := testSetup(t)
	done := WriteBinaryToFS(cl.FS, img, "/scratch/app.vp0", 0)
	if done <= 0 {
		t.Error("FS write charged no time")
	}
	h, done2, err := l.DlopenFromFS(cl.FS, img, "/scratch/app.vp0", done)
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done {
		t.Error("FS read charged no time")
	}
	if h.Inst == nil {
		t.Fatal("no instance")
	}
	// A second open of the same copy is an FSglobals usage error.
	if _, _, err := l.DlopenFromFS(cl.FS, img, "/scratch/app.vp0", done2); err == nil {
		t.Fatal("reopening a per-rank FS copy must fail")
	}
	// Reading a nonexistent file fails.
	if _, _, err := l.DlopenFromFS(cl.FS, img, "/scratch/nope", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSharedFSContention(t *testing.T) {
	_, cl, img := testSetup(t)
	// Two writes starting at the same instant serialize.
	d1 := WriteBinaryToFS(cl.FS, img, "/a", 0)
	d2 := WriteBinaryToFS(cl.FS, img, "/b", 0)
	if d2 <= d1 {
		t.Errorf("concurrent writes did not serialize: %v then %v", d1, d2)
	}
	if cl.FS.TotalBytes() != 2*img.TotalSegmentBytes() {
		t.Errorf("fs holds %d bytes", cl.FS.TotalBytes())
	}
}

func TestIteratePhdrDiff(t *testing.T) {
	l, _, img := testSetup(t)
	before := l.IteratePhdr()
	if len(before) != 0 {
		t.Fatalf("%d phdr records before any load", len(before))
	}
	h, _, _ := l.Dlopen(img, "app", 0)
	after := l.IteratePhdr()
	if len(after) != 1 {
		t.Fatalf("%d phdr records after load", len(after))
	}
	if after[0].CodeBase != h.CodeRegion.Base || after[0].DataBase != h.DataRegion.Base {
		t.Error("phdr bases disagree with regions")
	}
	if after[0].CodeSize != img.CodeSize {
		t.Error("phdr code size wrong")
	}
}

func TestDlclose(t *testing.T) {
	l, _, img := testSetup(t)
	h, _, _ := l.Dlopen(img, "app", 0)
	l.Dlopen(img, "app", 0) // refcount 2
	if err := l.Dlclose(h); err != nil {
		t.Fatal(err)
	}
	if len(l.IteratePhdr()) != 1 {
		t.Fatal("object unmapped while referenced")
	}
	if err := l.Dlclose(h); err != nil {
		t.Fatal(err)
	}
	if len(l.IteratePhdr()) != 0 {
		t.Fatal("object still mapped after final close")
	}
	if err := l.Dlclose(h); err == nil || !strings.Contains(err.Error(), "closed handle") {
		t.Fatalf("dlclose of closed handle: %v", err)
	}
}

func TestPopulateShim(t *testing.T) {
	l, _, img := testSetup(t)
	h, done, _ := l.Dlopen(img, "app", 0)
	if h.ShimPopulated {
		t.Fatal("shim populated before unpack")
	}
	after := l.PopulateShim(h, done)
	if !h.ShimPopulated || after <= done {
		t.Fatal("populate shim did not run or charged no time")
	}
}

func TestLoadCostScalesWithRelocations(t *testing.T) {
	l, _, _ := testSetup(t)
	small := elf.NewBuilder("small").Global("g", 0).Func("f", 64).Relocations(10).MustBuild()
	big := elf.NewBuilder("big").Global("g", 0).Func("f", 64).Relocations(100000).MustBuild()
	_, dSmall, err := l.Dlopen(small, "small", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, dBig, err := l.Dlopen(big, "big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dBig-0 <= dSmall {
		t.Errorf("relocation-heavy load (%v) not slower than light one (%v)", dBig, dSmall)
	}
}
