package core

import (
	"strings"
	"testing"

	"provirt/internal/elf"
	"provirt/internal/loader"
	"provirt/internal/machine"
	"provirt/internal/ult"
)

// newTestScheduler builds a scheduler on the cluster's first PE.
func newTestScheduler(cl *machine.Cluster) *ult.Scheduler {
	return ult.NewScheduler(cl.PE(0), cl.Engine, cl.Cost)
}

// newBoundThread makes a ULT bound to the context so access charges
// land on its clock.
func newBoundThread(c *RankContext, _ *ult.Scheduler, body func()) *ult.Thread {
	th := ult.NewThread(c.VP, func(*ult.Thread) { body() })
	th.Context = c
	c.Thread = th
	return th
}

// testEnv builds a process environment on a 1-process cluster.
func testEnv(t *testing.T, smp bool) *ProcessEnv {
	t.Helper()
	pes := 1
	if smp {
		pes = 2
	}
	cl, err := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes})
	if err != nil {
		t.Fatal(err)
	}
	proc := cl.Processes()[0]
	tc, osEnv := Bridges2Env()
	return &ProcessEnv{
		Proc:      proc,
		Cost:      cl.Cost,
		Linker:    loader.New(proc, cl.Cost),
		FS:        cl.FS,
		Toolchain: tc,
		OS:        osEnv,
		SMP:       smp,
	}
}

func testImage(t *testing.T) *elf.Image {
	t.Helper()
	return elf.NewBuilder("app").
		TaggedGlobal("tg", 100).
		Global("ug", 200). // untagged mutable global
		TaggedStatic("ts", 300).
		Static("us", 400). // untagged mutable static
		Const("ro", 500).
		Func("main", 1024).
		Func("op", 256).
		CodeBulk(256 << 10).
		MustBuild()
}

// setup builds contexts for the given method over the image.
func setup(t *testing.T, kind Kind, env *ProcessEnv, img *elf.Image, vps int) *SetupResult {
	t.Helper()
	m := New(kind)
	if err := m.CheckEnv(env); err != nil {
		t.Fatalf("CheckEnv(%s): %v", kind, err)
	}
	ids := make([]int, vps)
	for i := range ids {
		ids[i] = i
	}
	res, err := m.Setup(env, img, ids, 0)
	if err != nil {
		t.Fatalf("Setup(%s): %v", kind, err)
	}
	if len(res.Contexts) != vps {
		t.Fatalf("%d contexts for %d vps", len(res.Contexts), vps)
	}
	return res
}

// privatizationMatrix pins, per method, which storage classes are
// actually privatized — the semantic content of Tables 1 and 3.
func TestPrivatizationMatrix(t *testing.T) {
	cases := []struct {
		kind Kind
		env  func(*ProcessEnv)
		// privatized variable names; the rest of the mutable set stays
		// shared.
		priv []string
	}{
		{KindNone, nil, nil},
		{KindManual, nil, []string{"tg", "ug", "ts", "us"}},
		{KindSwapglobals, func(e *ProcessEnv) { e.OS.OldOrPatchedLinker = true },
			[]string{"tg", "ug"}}, // globals only: no statics
		{KindTLSglobals, nil, []string{"tg", "ts"}}, // tagged only
		{KindMPCPrivatize, func(e *ProcessEnv) { e.Toolchain.MPCPatched = true },
			[]string{"tg", "ug", "ts", "us"}},
		{KindPIPglobals, nil, []string{"tg", "ug", "ts", "us"}},
		{KindFSglobals, nil, []string{"tg", "ug", "ts", "us"}},
		{KindPIEglobals, nil, []string{"tg", "ug", "ts", "us"}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			env := testEnv(t, false)
			if tc.env != nil {
				tc.env(env)
			}
			img := testImage(t)
			res := setup(t, tc.kind, env, img, 2)
			privSet := map[string]bool{}
			for _, n := range tc.priv {
				privSet[n] = true
			}
			c0, c1 := res.Contexts[0], res.Contexts[1]
			for _, v := range img.MutableVars() {
				h0, h1 := c0.Var(v.Name), c1.Var(v.Name)
				if h0.Privatized() != privSet[v.Name] {
					t.Errorf("%s: privatized=%v, want %v", v.Name, h0.Privatized(), privSet[v.Name])
				}
				h0.Store(1111)
				if privSet[v.Name] {
					if h1.Load() == 1111 {
						t.Errorf("%s: store leaked across ranks despite privatization", v.Name)
					}
				} else {
					if h1.Load() != 1111 {
						t.Errorf("%s: shared variable did not leak (model broken)", v.Name)
					}
				}
				// Reset for the next variable.
				h0.Store(v.Init)
				if !privSet[v.Name] {
					h1.Store(v.Init)
				}
			}
			// Consts are always shared and panic on store.
			if c0.Var("ro").Privatized() {
				t.Error("const reported privatized")
			}
		})
	}
}

func TestConstStorePanics(t *testing.T) {
	env := testEnv(t, false)
	res := setup(t, KindNone, env, testImage(t), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("store to const did not panic")
		}
	}()
	res.Contexts[0].Store("ro", 1)
}

func TestCheckEnvFailures(t *testing.T) {
	cases := []struct {
		kind Kind
		env  func(*ProcessEnv)
		want string
	}{
		{KindSwapglobals, nil, "linker"}, // modern ld by default
		{KindSwapglobals, func(e *ProcessEnv) { e.OS.OldOrPatchedLinker = true; e.SMP = true }, "SMP"},
		{KindTLSglobals, func(e *ProcessEnv) { e.Toolchain.SupportsTLSSegRefs = false }, "-mno-tls-direct-seg-refs"},
		{KindMPCPrivatize, nil, "patched"},
		{KindPIPglobals, func(e *ProcessEnv) { e.OS.Kind = "macos"; e.OS.Glibc = false }, "GNU/Linux"},
		{KindPIEglobals, func(e *ProcessEnv) { e.OS.Kind = "macos"; e.OS.Glibc = false }, "GNU/Linux"},
		{KindFSglobals, func(e *ProcessEnv) { e.OS.SharedFS = false }, "shared filesystem"},
		{KindPIPglobals, func(e *ProcessEnv) { e.Toolchain.PIE = false }, "Position Independent"},
	}
	for _, tc := range cases {
		env := testEnv(t, false)
		if tc.env != nil {
			tc.env(env)
		}
		err := New(tc.kind).CheckEnv(env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s CheckEnv = %v, want mention of %q", tc.kind, err, tc.want)
		}
	}
}

func TestPhotranRequiresFortran(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t) // language "c"
	m := New(KindPhotran)
	if _, err := m.Setup(env, img, []int{0}, 0); err == nil {
		t.Fatal("photran accepted a C program")
	}
	fimg := elf.NewBuilder("fapp").Language("fortran").Global("g", 1).Func("main", 64).MustBuild()
	if _, err := m.Setup(env, fimg, []int{0}, 0); err != nil {
		t.Fatalf("photran rejected Fortran: %v", err)
	}
}

func TestFSglobalsRejectsSharedDeps(t *testing.T) {
	env := testEnv(t, false)
	img := elf.NewBuilder("dyn").Global("g", 1).Func("main", 64).SharedDeps(2).MustBuild()
	if _, err := New(KindFSglobals).Setup(env, img, []int{0}, 0); err == nil {
		t.Fatal("fsglobals accepted shared-object dependencies")
	}
}

func TestPIEglobalsDistinctSegments(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	res := setup(t, KindPIEglobals, env, img, 3)
	bases := map[uint64]bool{}
	for _, c := range res.Contexts {
		if c.Private == nil {
			t.Fatal("no private instance")
		}
		if !c.Private.Migratable {
			t.Error("PIE instance not marked migratable")
		}
		if bases[c.Private.CodeBase] {
			t.Error("two ranks share a code base")
		}
		bases[c.Private.CodeBase] = true
		// Segments live inside the rank's own Isomalloc range.
		if c.Heap.Lookup(c.Private.CodeBase) == nil {
			t.Error("code segment not in the rank's heap")
		}
		if c.Heap.Lookup(c.Private.DataBase) == nil {
			t.Error("data segment not in the rank's heap")
		}
	}
	// GOT entries in each copy point into that copy.
	for _, c := range res.Contexts {
		g := img.VarByName("tg")
		got, ok := c.Private.GOTEntryForVar(g)
		if !ok {
			t.Fatal("no GOT entry")
		}
		if !c.Private.ContainsData(got) {
			t.Errorf("rank %d GOT entry %#x points outside its own data segment", c.VP, got)
		}
	}
}

func TestPIEglobalsCtorHeapReplication(t *testing.T) {
	env := testEnv(t, false)
	img := elf.NewBuilder("cpp").
		Language("c++").
		Global("obj", 0).
		Func("main", 512).
		Func("vmethod", 128).
		Ctor(elf.Ctor{
			Allocs: []elf.CtorAlloc{{Size: 64, FuncPtrSlots: []int{0}}},
			Writes: []elf.CtorWrite{elf.AllocPtrWrite("obj", 0)},
		}).
		MustBuild()
	res := setup(t, KindPIEglobals, env, img, 2)
	c0, c1 := res.Contexts[0], res.Contexts[1]
	p0 := c0.Load("obj")
	p1 := c1.Load("obj")
	if p0 == p1 {
		t.Fatal("ctor heap object shared between ranks")
	}
	// Each rank's pointer lands in its own heap, and the replicated
	// object's function pointer points into that rank's code copy.
	o0 := c0.Private.HeapObjAt(p0)
	if o0 == nil {
		t.Fatal("rank 0 object not reachable")
	}
	if !c0.Private.ContainsCode(o0.Words[0]) {
		t.Errorf("rank 0 vtable slot %#x outside its code copy [%#x,%#x)",
			o0.Words[0], c0.Private.CodeBase, c0.Private.CodeBase+img.CodeSize)
	}
	o1 := c1.Private.HeapObjAt(p1)
	if o1 == nil || !c1.Private.ContainsCode(o1.Words[0]) {
		t.Error("rank 1 replication broken")
	}
}

// TestPIEglobalsFalsePositive demonstrates the §3.3 pointer-scan
// hazard the authors plan to fix: an integer global whose value
// happens to fall inside the original code segment gets "rebased".
func TestPIEglobalsFalsePositive(t *testing.T) {
	env := testEnv(t, false)
	// First load to discover where the code segment will land; then
	// rebuild the scenario with an integer crafted into that range.
	probe := setup(t, KindPIEglobals, env, testImage(t), 1)
	codeBase := probe.SharedInstance.CodeBase

	env2 := testEnv(t, false)
	img := elf.NewBuilder("trap").
		Global("innocent_int", codeBase+64). // just a number, honest!
		Func("main", 1024).
		MustBuild()
	res := setup(t, KindPIEglobals, env2, img, 1)
	got := res.Contexts[0].Load("innocent_int")
	if got == codeBase+64 {
		t.Fatal("expected the pointer scan to corrupt the value (the documented false-positive hazard); it did not")
	}
	if !res.Contexts[0].Private.ContainsCode(got) {
		t.Fatalf("false positive rebased to %#x, outside the private code copy", got)
	}
}

func TestPieglobalsFind(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	res := setup(t, KindPIEglobals, env, img, 1)
	c := res.Contexts[0]

	// A privatized code address translates back to the original, with
	// the right symbol.
	opAddr, err := c.FuncAddr("op")
	if err != nil {
		t.Fatal(err)
	}
	find, err := PieglobalsFind(c, opAddr+17)
	if err != nil {
		t.Fatal(err)
	}
	if find.Symbol != "op" || find.Offset != 17 || find.Segment != "code" {
		t.Fatalf("find = %+v", find)
	}
	origOp := c.Shared.FuncAddr(img.FuncByName("op"))
	if find.Original != origOp+17 {
		t.Fatalf("original %#x, want %#x", find.Original, origOp+17)
	}

	// A privatized data address names its variable.
	dfind, err := PieglobalsFind(c, c.Private.VarAddr(img.VarByName("ug")))
	if err != nil {
		t.Fatal(err)
	}
	if dfind.Symbol != "ug" || dfind.Segment != "data" {
		t.Fatalf("data find = %+v", dfind)
	}

	// Addresses outside the private copy are rejected.
	if _, err := PieglobalsFind(c, 0x1234); err == nil {
		t.Fatal("bogus address accepted")
	}
	// Contexts without private segments are rejected.
	envN := testEnv(t, false)
	resN := setup(t, KindNone, envN, testImage(t), 1)
	if _, err := PieglobalsFind(resN.Contexts[0], opAddr); err == nil {
		t.Fatal("pieglobalsfind on unprivatized context accepted")
	}
}

func TestMigrationRoundTripPreservesEverything(t *testing.T) {
	for _, kind := range []Kind{KindManual, KindTLSglobals, KindPIEglobals} {
		t.Run(kind.String(), func(t *testing.T) {
			env := testEnv(t, false)
			img := testImage(t)
			res := setup(t, kind, env, img, 1)
			c := res.Contexts[0]
			// Mutate privatized state and heap.
			c.Store("tg", 777)
			blk, err := c.Heap.Alloc(128, "user")
			if err != nil {
				t.Fatal(err)
			}
			blk.Words[5] = 12345

			payload, err := c.Serialize()
			if err != nil {
				t.Fatal(err)
			}
			if payload.Bytes() == 0 {
				t.Fatal("empty payload")
			}

			// Restore into a different process.
			env2 := testEnv(t, false)
			res2 := setup(t, kind, env2, img, 1)
			if err := c.RestoreInto(payload, res2.SharedInstance); err != nil {
				t.Fatal(err)
			}
			if got := c.Load("tg"); got != 777 {
				t.Errorf("tg = %d after restore", got)
			}
			nb := c.Heap.Lookup(blk.Addr)
			if nb == nil || nb.Words[5] != 12345 {
				t.Error("heap payload lost")
			}
			if kind == KindPIEglobals {
				if c.Private == nil || c.Heap.Lookup(c.Private.CodeBase) == nil {
					t.Error("code segment not rebound after restore")
				}
			}
		})
	}
}

func TestSerializeRefusals(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want string
	}{
		{KindPIPglobals, "ld-linux"},
		{KindFSglobals, "dlopen"},
		{KindMPCPrivatize, "not implemented"},
	} {
		env := testEnv(t, false)
		if tc.kind == KindMPCPrivatize {
			env.Toolchain.MPCPatched = true
		}
		res := setup(t, tc.kind, env, testImage(t), 1)
		_, err := res.Contexts[0].Serialize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s Serialize = %v, want mention of %q", tc.kind, err, tc.want)
		}
	}
}

func TestFuncOffsetTranslationAcrossRanks(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	res := setup(t, KindPIEglobals, env, img, 2)
	c0, c1 := res.Contexts[0], res.Contexts[1]
	a0, _ := c0.FuncAddr("op")
	a1, _ := c1.FuncAddr("op")
	if a0 == a1 {
		t.Fatal("ranks share a function address under PIEglobals")
	}
	off0, err := c0.FuncOffset(a0)
	if err != nil {
		t.Fatal(err)
	}
	// The offset resolves to the same function at the other rank.
	f, err := c1.FuncAtOffset(off0)
	if err != nil || f.Name != "op" {
		t.Fatalf("offset translation: %v, %v", f, err)
	}
}

// TestPIESharedCodePages verifies the §6 future-work option: shared
// read-only code mappings preserve privatization semantics while
// eliminating code bytes from resident memory and migration payloads.
func TestPIESharedCodePages(t *testing.T) {
	img := testImage(t)

	mkCtx := func(m Method) *RankContext {
		env := testEnv(t, false)
		ids := []int{0}
		res, err := m.Setup(env, img, ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Contexts[0]
	}
	plain := mkCtx(New(KindPIEglobals))
	shared := mkCtx(NewPIEglobals(PIEOptions{ShareCodePages: true}))

	// Same privatization semantics.
	shared.Store("ug", 42)
	if shared.Var("ug").Load() != 42 || !shared.Var("ug").Privatized() {
		t.Fatal("shared-code option broke privatization")
	}
	// Code still occupies the rank's address range (functions resolve
	// to per-rank addresses).
	a, _ := shared.FuncAddr("op")
	if shared.Heap.Lookup(a) == nil {
		t.Fatal("shared code block not in the rank's range")
	}
	// Resident footprint shrinks by the code size.
	if plainRes, sharedRes := plain.Heap.ResidentBytes(), shared.Heap.ResidentBytes(); plainRes-sharedRes < img.CodeSize {
		t.Errorf("resident bytes %d vs %d: expected a %d-byte code saving", plainRes, sharedRes, img.CodeSize)
	}
	// Migration payload shrinks by the code size, and survives a round
	// trip.
	p1, err := plain.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shared.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Bytes()-p2.Bytes() < img.CodeSize {
		t.Errorf("payload %d vs %d: expected a %d-byte saving", p1.Bytes(), p2.Bytes(), img.CodeSize)
	}
	env2 := testEnv(t, false)
	res2, err := NewPIEglobals(PIEOptions{ShareCodePages: true}).Setup(env2, img, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := shared.RestoreInto(p2, res2.SharedInstance); err != nil {
		t.Fatal(err)
	}
	if shared.Var("ug").Load() != 42 {
		t.Error("privatized value lost across shared-code migration")
	}
}

// TestAccessCostsChargedToClock: every privatized load/store advances
// the owning thread's PE clock by the cost model's per-access charge,
// and ChargeAccesses amortizes bulk touches identically.
func TestAccessCostsChargedToClock(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	res := setup(t, KindPIEglobals, env, img, 1)
	c := res.Contexts[0]

	cl, err := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := newTestScheduler(cl)
	done := make(chan struct{})
	th := newBoundThread(c, sched, func() {
		before := c.Thread.Now()
		c.Store("ug", 1)
		_ = c.Load("ug")
		perAccess := env.Cost.GlobalAccessDirect
		if got := c.Thread.Now() - before; got != 2*perAccess {
			t.Errorf("2 accesses charged %v, want %v", got, 2*perAccess)
		}
		before = c.Thread.Now()
		c.ChargeAccesses("ug", 1000)
		if got := c.Thread.Now() - before; got != 1000*perAccess {
			t.Errorf("bulk charge %v, want %v", got, 1000*perAccess)
		}
		close(done)
	})
	sched.Adopt(th)
	cl.Engine.Drain()
	select {
	case <-done:
	default:
		t.Fatal("thread body did not run")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("nonsense method parsed")
	}
}

func TestCapabilityTableComplete(t *testing.T) {
	for _, k := range Kinds() {
		c := CapabilitiesOf(k)
		if c.DisplayName == "" {
			t.Errorf("%s has no capabilities row", k)
		}
		// Semantic flags must agree with the Table 3 cells.
		if c.SupportsMigration && c.MigrationSupport == "No" {
			t.Errorf("%s: flag/cell mismatch on migration", k)
		}
		if !c.SupportsSMP && c.SMPSupport == "Yes" {
			t.Errorf("%s: flag/cell mismatch on SMP", k)
		}
	}
	if len(Table3Order()) != 8 {
		t.Errorf("Table 3 has %d rows", len(Table3Order()))
	}
}

// The capability flags must agree with observed Setup behaviour.
func TestCapabilitiesMatchBehaviour(t *testing.T) {
	for _, kind := range []Kind{KindManual, KindTLSglobals, KindPIPglobals, KindFSglobals, KindPIEglobals} {
		env := testEnv(t, false)
		res := setup(t, kind, env, testImage(t), 1)
		caps := CapabilitiesOf(kind)
		if res.Contexts[0].Migratable != caps.SupportsMigration {
			t.Errorf("%s: context migratable=%v, capabilities say %v",
				kind, res.Contexts[0].Migratable, caps.SupportsMigration)
		}
	}
}
