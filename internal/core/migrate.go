package core

import (
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/mem"
)

// MigrationPayload is the serialized form of one rank's migratable
// state: its Isomalloc heap (which, under PIEglobals, contains the
// duplicated code and data segments), its TLS block, and bookkeeping.
// Everything restores at identical virtual addresses in the destination
// process, so pointers inside the payload need no translation.
type MigrationPayload struct {
	VP   int
	Heap *mem.Snapshot
	TLS  []uint64
}

// Bytes reports the full logical size of the payload: every live heap
// byte (user data, ULT stack, and — under PIEglobals — the code and
// data segments) plus the TLS block.
func (p *MigrationPayload) Bytes() uint64 {
	return p.Heap.Bytes() + uint64(len(p.TLS))*8
}

// DeltaBytes reports the bytes that actually changed since the rank's
// previous serialization: the dirty heap blocks plus the TLS block
// (which is small and always copied). A rank's first serialization has
// no predecessor, so its delta equals Bytes().
func (p *MigrationPayload) DeltaBytes() uint64 {
	return p.Heap.DeltaBytes() + uint64(len(p.TLS))*8
}

// Serialize captures the rank's migratable state, or explains why the
// active privatization method cannot migrate it.
func (c *RankContext) Serialize() (*MigrationPayload, error) {
	if !c.Migratable {
		veto := c.MigrationVeto
		if veto == "" {
			veto = "method does not support migration"
		}
		return nil, fmt.Errorf("core: rank %d cannot migrate under %s: %s", c.VP, c.Method.Kind(), veto)
	}
	p := &MigrationPayload{VP: c.VP, Heap: c.Heap.Serialize()}
	if c.TLS != nil {
		p.TLS = append([]uint64(nil), c.TLS...)
	}
	return p, nil
}

// RestoreInto rebuilds the rank's state in a destination process from
// the payload: the heap is reconstructed at identical addresses, block
// handles (stack, privatized-copy cells, duplicated segments) are
// rebound, and the rank's view of *shared* variables switches to the
// destination process's base instance — unprivatized state is
// per-process, so a migrated rank sees the destination's copy.
func (c *RankContext) RestoreInto(p *MigrationPayload, destShared *elf.Instance) error {
	return c.restoreInto(p, destShared, false)
}

// RestoreIntoConsume is RestoreInto for payloads the caller owns
// exclusively and discards afterwards — the migration path, where the
// source rank's heap dies with the move. Dirty-block payloads are
// adopted zero-copy instead of being copied a second time. The payload
// must not be restored again (a kept checkpoint must use RestoreInto).
func (c *RankContext) RestoreIntoConsume(p *MigrationPayload, destShared *elf.Instance) error {
	return c.restoreInto(p, destShared, true)
}

func (c *RankContext) restoreInto(p *MigrationPayload, destShared *elf.Instance, consume bool) error {
	if p.VP != c.VP {
		return fmt.Errorf("core: payload for rank %d restored into context of rank %d", p.VP, c.VP)
	}
	if consume {
		c.Heap = mem.RestoreConsume(p.Heap)
	} else {
		c.Heap = mem.Restore(p.Heap)
	}
	// Every cached cell pointer referenced the old heap, TLS block, and
	// instances; force handles to re-resolve.
	c.invalidateResolutions()
	stack := c.Heap.Lookup(c.Stack.Addr)
	if stack == nil {
		return fmt.Errorf("core: rank %d: restored heap lost the ULT stack at %#x", c.VP, c.Stack.Addr)
	}
	c.Stack = stack
	if c.heapCells != nil {
		blk := c.Heap.Lookup(c.heapCells.Addr)
		if blk == nil {
			return fmt.Errorf("core: rank %d: restored heap lost privatized cells at %#x", c.VP, c.heapCells.Addr)
		}
		c.heapCells = blk
	}
	if p.TLS != nil {
		c.TLS = append([]uint64(nil), p.TLS...)
	}
	if destShared != nil {
		c.Shared = destShared
	}
	return rebindPrivateInstance(c)
}

// Instance returns the program instance the rank executes from: its
// private duplicated copy under segment-duplicating methods, otherwise
// the process-shared instance.
func (c *RankContext) Instance() *elf.Instance {
	if c.Private != nil {
		return c.Private
	}
	return c.Shared
}

// FuncAddr returns the address of the named function in the rank's
// instance. Under segment-duplicating methods this address is unique to
// the rank — the property that forced AMPI to store user reduction
// operators as code-base offsets (§3.3).
func (c *RankContext) FuncAddr(name string) (uint64, error) {
	f := c.Img.FuncByName(name)
	if f == nil {
		return 0, fmt.Errorf("core: program %q has no function %q", c.Img.Name, name)
	}
	return c.Instance().FuncAddr(f), nil
}

// FuncOffset translates an absolute function address from this rank's
// instance into a code-base-relative offset.
func (c *RankContext) FuncOffset(addr uint64) (uint64, error) {
	return c.Instance().FuncOffset(addr)
}

// FuncAtOffset resolves a code-base-relative offset to the function it
// names in this rank's instance.
func (c *RankContext) FuncAtOffset(off uint64) (*elf.Func, error) {
	in := c.Instance()
	f := in.FuncAt(in.CodeBase + off)
	if f == nil {
		return nil, fmt.Errorf("core: rank %d: no function at code offset %#x", c.VP, off)
	}
	return f, nil
}
