package core

import (
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/sim"
)

// ---------------------------------------------------------------------
// None: the unsafe baseline. Every rank's accesses reach the single
// process-shared data segment, reproducing the bug of Fig. 2/3.
// ---------------------------------------------------------------------

type noneMethod struct{}

func (*noneMethod) Kind() Kind                 { return KindNone }
func (*noneMethod) Capabilities() Capabilities { return CapabilitiesOf(KindNone) }
func (*noneMethod) CheckEnv(*ProcessEnv) error { return nil }

func (m *noneMethod) SwitchExtra(from, to *RankContext) sim.Time { return 0 }

func (m *noneMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst, Done: done}
	direct := accessCost(env.Cost, false)
	for _, vp := range vps {
		c, err := newContext(m, env, img, h.Inst, vp)
		if err != nil {
			return nil, err
		}
		c.Migratable = true
		c.resolveAll(env, func(v *elf.Var) cellRef {
			return cellRef{kind: storeShared, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Manual refactoring and Photran source-to-source refactoring: every
// mutable variable is encapsulated in a per-rank structure allocated on
// the rank's (migratable) heap and passed to all referencing functions
// (§2.3.1, §2.3.2). The two differ only in applicability: Photran
// automates the rewrite for Fortran codes.
// ---------------------------------------------------------------------

type refactorMethod struct {
	kind Kind
}

func (m *refactorMethod) Kind() Kind                 { return m.kind }
func (m *refactorMethod) Capabilities() Capabilities { return CapabilitiesOf(m.kind) }

func (m *refactorMethod) CheckEnv(env *ProcessEnv) error { return nil }

func (m *refactorMethod) checkImage(img *elf.Image) error {
	if m.kind == KindPhotran && img.Language != "fortran" {
		return fmt.Errorf("core: photran refactoring applies only to Fortran codes; %q is %s",
			img.Name, img.Language)
	}
	return nil
}

func (m *refactorMethod) SwitchExtra(from, to *RankContext) sim.Time { return 0 }

func (m *refactorMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	if err := m.checkImage(img); err != nil {
		return nil, err
	}
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	// The encapsulated state struct is addressed through a pointer
	// parameter; compilers keep the base in a register, so accesses
	// charge as one indirection at most.
	priv := accessCost(env.Cost, true)
	words := uint64(len(img.Vars))
	for _, vp := range vps {
		c, err := newContext(m, env, img, h.Inst, vp)
		if err != nil {
			return nil, err
		}
		if words > 0 {
			blk, err := c.Heap.Alloc(words*8, "refactored-state")
			if err != nil {
				return nil, err
			}
			for _, v := range img.Vars {
				blk.Words[v.Index] = v.Init
			}
			c.heapCells = blk
			done += env.Cost.CopyTime(words * 8)
		}
		c.Migratable = true
		c.resolveAll(env, func(v *elf.Var) cellRef {
			return cellRef{kind: storeHeapCell, slot: v.Index, cost: priv}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.Done = done
	return res, nil
}

// ---------------------------------------------------------------------
// Swapglobals: the runtime gives each rank a private copy of every
// GOT-reachable (external-linkage) variable and swaps the Global Offset
// Table at each context switch (§2.3.3). Static variables have no GOT
// entry and stay shared — the method's defining gap. Only one GOT can
// be active per process, so SMP mode is unsupported, and the technique
// requires an old or patched linker that preserves GOT-indirect
// accesses.
// ---------------------------------------------------------------------

type swapglobalsMethod struct{}

func (*swapglobalsMethod) Kind() Kind                 { return KindSwapglobals }
func (*swapglobalsMethod) Capabilities() Capabilities { return CapabilitiesOf(KindSwapglobals) }

func (m *swapglobalsMethod) CheckEnv(env *ProcessEnv) error {
	if !env.OS.OldOrPatchedLinker {
		return fmt.Errorf("core: swapglobals requires ld <= 2.23 or a patched linker: newer linkers optimize out the GOT pointer reference at each global access")
	}
	if env.SMP {
		return fmt.Errorf("core: swapglobals does not support SMP mode: only one GOT can be active per OS process")
	}
	return nil
}

func (m *swapglobalsMethod) SwitchExtra(from, to *RankContext) sim.Time {
	if to == nil || to.Method.Kind() != KindSwapglobals {
		return 0
	}
	return to.costModel.GOTSwapCost
}

func (m *swapglobalsMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	direct := accessCost(env.Cost, false)
	got := accessCost(env.Cost, true)
	words := uint64(len(img.Vars))
	for _, vp := range vps {
		c, err := newContext(m, env, img, h.Inst, vp)
		if err != nil {
			return nil, err
		}
		blk, err := c.Heap.Alloc(words*8, "swapglobals-copies")
		if err != nil {
			return nil, err
		}
		for _, v := range img.Vars {
			blk.Words[v.Index] = v.Init
		}
		c.heapCells = blk
		// Per-rank GOT construction: one relocation-sized fixup per
		// entry plus the copy of initial values.
		done += env.Cost.CopyTime(words*8) +
			sim.Time(len(img.Vars)+len(img.Funcs))*env.Cost.RelocationCost
		c.Migratable = true
		c.resolveAll(env, func(v *elf.Var) cellRef {
			if v.Class == elf.ClassStatic {
				// Not in the GOT: the access bypasses the swap and
				// reaches shared storage. The bug is preserved, not
				// diagnosed — exactly the real method's behaviour.
				return cellRef{kind: storeShared, cost: direct}
			}
			return cellRef{kind: storeHeapCell, slot: v.Index, cost: got}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.Done = done
	return res, nil
}

// ---------------------------------------------------------------------
// TLSglobals: variables the programmer tagged thread_local live in a
// per-rank TLS block; the runtime switches the TLS segment pointer at
// each ULT context switch (§2.3.4). Untagged mutable variables remain
// shared — automation is "Mediocre" because the programmer must find
// and tag every unsafe declaration.
// ---------------------------------------------------------------------

type tlsglobalsMethod struct{}

func (*tlsglobalsMethod) Kind() Kind                 { return KindTLSglobals }
func (*tlsglobalsMethod) Capabilities() Capabilities { return CapabilitiesOf(KindTLSglobals) }

func (m *tlsglobalsMethod) CheckEnv(env *ProcessEnv) error {
	if !env.Toolchain.SupportsTLSSegRefs {
		return fmt.Errorf("core: tlsglobals requires a compiler supporting -mno-tls-direct-seg-refs (GCC or Clang 10+); %s does not", env.Toolchain.Name)
	}
	return nil
}

func (m *tlsglobalsMethod) SwitchExtra(from, to *RankContext) sim.Time {
	if to == nil {
		return 0
	}
	return to.costModel.TLSSwitchCost
}

func (m *tlsglobalsMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	extra, err := setupTLSContexts(m, env, img, h.Inst, vps, res, false)
	if err != nil {
		return nil, err
	}
	res.Done = done + extra
	return res, nil
}

// setupTLSContexts builds contexts whose tagged (or, if privatizeAll,
// every mutable) variables live in per-rank TLS blocks. It returns the
// summed per-rank TLS template copy cost. Shared code between
// TLSglobals and -fmpc-privatize.
func setupTLSContexts(m Method, env *ProcessEnv, img *elf.Image, shared *elf.Instance, vps []int, res *SetupResult, privatizeAll bool) (sim.Time, error) {
	direct := accessCost(env.Cost, false)
	tls := accessCost(env.Cost, true)
	// Assign TLS slots once; identical layout per rank.
	slots := make(map[int]int)
	for _, v := range img.Vars {
		if !v.Mutable() {
			continue
		}
		if privatizeAll || v.Tagged {
			slots[v.Index] = len(slots)
		}
	}
	var extra sim.Time
	for _, vp := range vps {
		c, err := newContext(m, env, img, shared, vp)
		if err != nil {
			return 0, err
		}
		c.TLS = make([]uint64, len(slots))
		for idx, slot := range slots {
			c.TLS[slot] = img.Vars[idx].Init
			c.tlsSlot[idx] = slot
		}
		extra += tlsCopyCost(env, len(slots))
		c.Migratable = true
		c.resolveAll(env, func(v *elf.Var) cellRef {
			if slot, ok := slots[v.Index]; ok {
				return cellRef{kind: storeTLS, slot: slot, cost: tls}
			}
			return cellRef{kind: storeShared, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.PrivatizedWords = uint64(len(slots) * len(vps))
	return extra, nil
}

// ---------------------------------------------------------------------
// -fmpc-privatize: compiler-automated TLS tagging (§2.3.5). Behaves
// like TLSglobals at runtime but covers every mutable variable without
// programmer effort; requires the MPC-patched compiler, and migration
// was never implemented for it.
// ---------------------------------------------------------------------

type mpcMethod struct {
	// hls enables hierarchical local storage: variables annotated with
	// elf.LevelCore or elf.LevelNode share one copy per core or per
	// process instead of one per rank, minimizing memory overhead
	// (§2.3.5, Tchiboukdjian et al.).
	hls bool
}

// NewMPCPrivatizeHLS returns -fmpc-privatize with MPC's hierarchical
// local storage extension enabled.
func NewMPCPrivatizeHLS() Method { return &mpcMethod{hls: true} }

func (*mpcMethod) Kind() Kind                 { return KindMPCPrivatize }
func (*mpcMethod) Capabilities() Capabilities { return CapabilitiesOf(KindMPCPrivatize) }

func (m *mpcMethod) CheckEnv(env *ProcessEnv) error {
	if !env.Toolchain.MPCPatched {
		return fmt.Errorf("core: -fmpc-privatize requires the Intel compiler or an MPC-patched GCC; %s is not patched", env.Toolchain.Name)
	}
	return nil
}

func (m *mpcMethod) SwitchExtra(from, to *RankContext) sim.Time {
	if to == nil {
		return 0
	}
	return to.costModel.TLSSwitchCost
}

func (m *mpcMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	if m.hls {
		extra, err := m.setupHLSContexts(env, img, h.Inst, vps, res)
		if err != nil {
			return nil, err
		}
		done += extra
	} else {
		extra, err := setupTLSContexts(m, env, img, h.Inst, vps, res, true)
		if err != nil {
			return nil, err
		}
		done += extra
	}
	for _, c := range res.Contexts {
		c.Migratable = false
		c.MigrationVeto = "migration is not implemented for -fmpc-privatize (Table 1)"
	}
	res.Done = done
	return res, nil
}

// setupHLSContexts builds contexts with per-level storage: LevelULT
// variables get per-rank TLS slots, LevelCore variables one cell block
// per PE, LevelNode variables one block per process.
func (m *mpcMethod) setupHLSContexts(env *ProcessEnv, img *elf.Image, shared *elf.Instance, vps []int, res *SetupResult) (sim.Time, error) {
	tlsCost := accessCost(env.Cost, true)
	direct := accessCost(env.Cost, false)

	ultSlots := map[int]int{}
	coreSlots := map[int]int{}
	nodeSlots := map[int]int{}
	for _, v := range img.Vars {
		if !v.Mutable() {
			continue
		}
		switch v.Level {
		case elf.LevelCore:
			coreSlots[v.Index] = len(coreSlots)
		case elf.LevelNode:
			nodeSlots[v.Index] = len(nodeSlots)
		default:
			ultSlots[v.Index] = len(ultSlots)
		}
	}
	nodeCells := make([]uint64, len(nodeSlots))
	for idx, slot := range nodeSlots {
		nodeCells[slot] = img.Vars[idx].Init
	}
	coreCellsByPE := map[int][]uint64{}
	var extra sim.Time
	extra += tlsCopyCost(env, len(nodeSlots)) // one node-level copy
	for _, vp := range vps {
		c, err := newContext(m, env, img, shared, vp)
		if err != nil {
			return 0, err
		}
		c.TLS = make([]uint64, len(ultSlots))
		for idx, slot := range ultSlots {
			c.TLS[slot] = img.Vars[idx].Init
			c.tlsSlot[idx] = slot
		}
		pe := env.localPE(vp)
		cells, ok := coreCellsByPE[pe]
		if !ok {
			cells = make([]uint64, len(coreSlots))
			for idx, slot := range coreSlots {
				cells[slot] = img.Vars[idx].Init
			}
			coreCellsByPE[pe] = cells
			extra += tlsCopyCost(env, len(coreSlots))
		}
		c.coreCells = cells
		c.nodeCells = nodeCells
		extra += tlsCopyCost(env, len(ultSlots))
		c.resolveAll(env, func(v *elf.Var) cellRef {
			if slot, ok := ultSlots[v.Index]; ok {
				return cellRef{kind: storeTLS, slot: slot, cost: tlsCost}
			}
			if slot, ok := coreSlots[v.Index]; ok {
				return cellRef{kind: storeCoreCell, slot: slot, cost: tlsCost}
			}
			if slot, ok := nodeSlots[v.Index]; ok {
				return cellRef{kind: storeNodeCell, slot: slot, cost: direct}
			}
			return cellRef{kind: storeShared, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	// Memory accounting: words of privatized storage materialized in
	// this process.
	res.PrivatizedWords = uint64(len(ultSlots)*len(vps) + len(coreSlots)*len(coreCellsByPE) + len(nodeSlots))
	return extra, nil
}
