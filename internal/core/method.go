// Package core implements the paper's primary contribution: automatic
// runtime privatization of global and static program state, so that MPI
// ranks can run as migratable user-level threads inside shared OS
// processes.
//
// Each privatization technique from the paper — the surveyed existing
// ones (§2.3) and the three new runtime methods (§3) — is a Method
// strategy over the synthetic ELF/PIE model in internal/elf. A method
// decides, per program variable, which storage a given virtual rank's
// loads and stores reach; it charges its startup work, per-context-switch
// work, and per-access work to the virtual clock; and it declares whether
// the rank state it creates can migrate between address spaces.
package core

import (
	"fmt"
	"time"

	"provirt/internal/elf"
	"provirt/internal/loader"
	"provirt/internal/machine"
	"provirt/internal/sim"
)

// Kind enumerates the privatization methods discussed in the paper.
type Kind int

const (
	// KindNone runs the unmodified program: all ranks in a process
	// share every global — the unsafe baseline of Fig. 2/3.
	KindNone Kind = iota
	// KindManual models hand-refactored code: every mutable variable
	// moved into a per-rank structure (§2.3.1).
	KindManual
	// KindPhotran models source-to-source refactoring for Fortran
	// (§2.3.2); mechanically equivalent to manual refactoring.
	KindPhotran
	// KindSwapglobals swaps the ELF Global Offset Table per rank at
	// context-switch time (§2.3.3). Statics are missed; SMP mode is
	// unsupported.
	KindSwapglobals
	// KindTLSglobals privatizes variables the programmer tagged
	// thread_local by switching the TLS segment pointer per rank
	// (§2.3.4).
	KindTLSglobals
	// KindMPCPrivatize is compiler-automated TLS tagging
	// (-fmpc-privatize, §2.3.5): every mutable variable is treated as
	// thread_local.
	KindMPCPrivatize
	// KindPIPglobals duplicates code and data segments per rank via
	// dlmopen link-map namespaces (§3.1).
	KindPIPglobals
	// KindFSglobals duplicates the binary per rank on a shared
	// filesystem and loads each copy with plain dlopen (§3.2).
	KindFSglobals
	// KindPIEglobals copies the PIE's code and data segments per rank
	// through Isomalloc, rebases pointers, and combines with
	// TLSglobals for TLS variables (§3.3).
	KindPIEglobals

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindManual:
		return "manual"
	case KindPhotran:
		return "photran"
	case KindSwapglobals:
		return "swapglobals"
	case KindTLSglobals:
		return "tlsglobals"
	case KindMPCPrivatize:
		return "fmpc-privatize"
	case KindPIPglobals:
		return "pipglobals"
	case KindFSglobals:
		return "fsglobals"
	case KindPIEglobals:
		return "pieglobals"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a method name (as accepted by the -privatize flag) to
// its Kind.
func ParseKind(s string) (Kind, error) {
	for k := KindNone; k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown privatization method %q", s)
}

// KindNames returns every method name (as accepted by ParseKind) in
// declaration order, for flag help.
func KindNames() []string {
	out := make([]string, 0, int(numKinds))
	for k := KindNone; k < numKinds; k++ {
		out = append(out, k.String())
	}
	return out
}

// Kinds returns every method kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := KindNone; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Toolchain describes the compiler environment, used to model the
// compiler-specific portability restrictions of Table 1.
type Toolchain struct {
	// Name is informational ("gcc-10.2.0").
	Name string
	// SupportsTLSSegRefs reports support for
	// -mno-tls-direct-seg-refs (GCC, Clang 10+), required by
	// TLSglobals.
	SupportsTLSSegRefs bool
	// MPCPatched reports an MPC-patched compiler providing
	// -fmpc-privatize.
	MPCPatched bool
	// PIE reports support for building Position Independent
	// Executables (ubiquitous; required by the three new methods).
	PIE bool
}

// OS describes the operating system environment.
type OS struct {
	// Kind is "linux", "macos", ...
	Kind string
	// Glibc reports a GNU libc with dlmopen and dl_iterate_phdr.
	Glibc bool
	// PatchedGlibc lifts the link-map namespace limit (the patched
	// glibc PIP distributes).
	PatchedGlibc bool
	// OldOrPatchedLinker reports an ld <= 2.23 or a patched newer ld,
	// required by Swapglobals to keep GOT-relative accesses.
	OldOrPatchedLinker bool
	// SharedFS reports a shared filesystem reachable by all nodes,
	// required by FSglobals.
	SharedFS bool
}

// Bridges2Env returns toolchain/OS settings matching the paper's test
// system (GCC 10.2.0 on GNU/Linux; stock glibc; modern ld — which is why
// the authors "were unable to get Swapglobals working on this system").
func Bridges2Env() (Toolchain, OS) {
	tc := Toolchain{Name: "gcc-10.2.0", SupportsTLSSegRefs: true, MPCPatched: false, PIE: true}
	os := OS{Kind: "linux", Glibc: true, PatchedGlibc: false, OldOrPatchedLinker: false, SharedFS: true}
	return tc, os
}

// ProcessEnv is everything a Method needs about the process it is
// privatizing ranks in.
type ProcessEnv struct {
	Proc      *machine.Process
	Cost      *machine.CostModel
	Linker    *loader.Linker
	FS        *machine.SharedFS
	Toolchain Toolchain
	OS        OS
	// SMP reports whether the process hosts multiple PE scheduler
	// threads (Fig. 1's SMP mode).
	SMP bool
	// StackSize is the per-rank user-level thread stack, allocated via
	// Isomalloc.
	StackSize uint64
	// PEOfVP maps a virtual rank to its home PE's process-local index,
	// used by hierarchical local storage to build per-core cells. Nil
	// places every rank on local PE 0.
	PEOfVP func(vp int) int
}

// localPE returns the process-local PE index for a rank.
func (env *ProcessEnv) localPE(vp int) int {
	if env.PEOfVP == nil {
		return 0
	}
	return env.PEOfVP(vp)
}

// SetupResult is what a Method produces for one process.
type SetupResult struct {
	// Contexts holds one rank context per requested VP, in input
	// order.
	Contexts []*RankContext
	// Done is the virtual time at which privatization setup for this
	// process completes.
	Done sim.Time
	// SharedInstance is the base (namespace-0) program instance.
	SharedInstance *elf.Instance
	// PrivatizedWords counts 8-byte cells of privatized storage
	// materialized in the process (reported by HLS for its memory-
	// overhead claim; zero when a method does not account for it).
	PrivatizedWords uint64
}

// Method is one privatization technique.
type Method interface {
	Kind() Kind
	// Capabilities returns the method's Table 1 / Table 3 row.
	Capabilities() Capabilities
	// CheckEnv verifies the method can run in the environment at all
	// (compiler, linker, OS requirements). It is called before Setup.
	CheckEnv(env *ProcessEnv) error
	// Setup loads the program and builds one privatized context per
	// virtual rank in vps, charging all work to virtual time starting
	// at start.
	Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error)
	// SwitchExtra is the additional work performed at each user-level
	// thread context switch (e.g. updating the TLS segment pointer).
	SwitchExtra(from, to *RankContext) sim.Time
}

// New returns the Method implementing kind.
func New(kind Kind) Method {
	switch kind {
	case KindNone:
		return &noneMethod{}
	case KindManual:
		return &refactorMethod{kind: KindManual}
	case KindPhotran:
		return &refactorMethod{kind: KindPhotran}
	case KindSwapglobals:
		return &swapglobalsMethod{}
	case KindTLSglobals:
		return &tlsglobalsMethod{}
	case KindMPCPrivatize:
		return &mpcMethod{}
	case KindPIPglobals:
		return &pipglobalsMethod{}
	case KindFSglobals:
		return &fsglobalsMethod{}
	case KindPIEglobals:
		return &pieglobalsMethod{}
	default:
		panic(fmt.Sprintf("core: no such method kind %d", int(kind)))
	}
}

// loadBaseProgram performs the work every method shares: loading the
// program (and the AMPI runtime) into the process once. It returns the
// base instance and the completion time.
func loadBaseProgram(env *ProcessEnv, img *elf.Image, start sim.Time) (*loader.Handle, sim.Time, error) {
	start += env.Cost.ExecLoadBase + env.Cost.RuntimeInitBase
	h, done, err := env.Linker.Dlopen(img, img.Name, start)
	if err != nil {
		return nil, start, err
	}
	return h, done, nil
}

// tlsCopyCost is the cost of materializing one rank's TLS block from
// the image's TLS initialization template.
func tlsCopyCost(env *ProcessEnv, words int) sim.Time {
	return env.Cost.CopyTime(uint64(words) * 8)
}

// accessCost returns the per-load/store charge for a variable reached
// through one level of indirection, honoring the cost model's
// compiler-hoisting assumption (§4.3).
func accessCost(cost *machine.CostModel, indirect bool) time.Duration {
	if !indirect || cost.CompilerHoistsIndirection {
		return cost.GlobalAccessDirect
	}
	return cost.GlobalAccessIndirect
}
