package core

import (
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/mem"
	"provirt/internal/sim"
)

// dupResult carries one rank's duplicated PIE segments.
type dupResult struct {
	inst     *elf.Instance
	codeAddr uint64
	dataAddr uint64
	// heapObjAddrs maps original ctor-heap-object addresses to this
	// rank's replicated copies.
	heapObjAddrs map[uint64]uint64
}

// duplicateInstance implements the PIEglobals copy: allocate the code
// and data segments in the rank's Isomalloc heap, memcpy them, scan the
// data copy for values that look like pointers into the original
// segments (or into constructor heap allocations) and rebase them, and
// replicate the constructor heap allocations themselves.
//
// The scan is the "contents that look like pointers" heuristic of §3.3:
// a data word whose integer value happens to fall inside the original
// segment ranges is rebased even if it was never a pointer — the false
// positive hazard the authors plan to engineer away. The simulation
// preserves that hazard deliberately (see TestPIEglobalsFalsePositive).
func duplicateInstance(env *ProcessEnv, src *elf.Instance, heap *mem.Heap, opts PIEOptions) (*dupResult, sim.Time, error) {
	img := src.Img
	var cost sim.Time

	codeBlk, err := heap.AllocBallast(img.CodeSize, "pie-code-segment")
	if err != nil {
		return nil, 0, err
	}
	dataBytes := uint64(len(src.Data)) * 8
	dataBlk, err := heap.Alloc(dataBytes, "pie-data-segment")
	if err != nil {
		return nil, 0, err
	}
	if opts.ShareCodePages {
		// §6 future work: the rank's code is a read-only mapping of
		// one shared descriptor — page tables only, no copy, no
		// resident footprint, no migration payload.
		heap.MarkShared(codeBlk)
		copyBytes := dataBytes
		if opts.ShareROData {
			// COW extension: the read-only slice of the data segment
			// (const cells + declared .rodata bulk) stays on the shared
			// mapping too. Only the writable delta is copied per rank;
			// the RO bytes are page-table work, not memcpy, and drop out
			// of the rank's resident footprint and migration payload.
			ro := img.Layout().ROBytes
			if ro > copyBytes {
				ro = copyBytes
			}
			heap.MarkSharedBytes(dataBlk, ro)
			copyBytes -= ro
		}
		cost += env.Cost.CopyTime(copyBytes)
	} else {
		cost += env.Cost.CopyTime(img.CodeSize + dataBytes)
	}
	cost += env.Cost.PageMapTime(img.CodeSize + dataBytes)

	dup := &dupResult{
		codeAddr:     codeBlk.Addr,
		dataAddr:     dataBlk.Addr,
		heapObjAddrs: make(map[uint64]uint64),
	}

	// Replicate constructor heap allocations first so the data scan
	// can redirect pointers to them.
	var objs []*elf.HeapObj
	for _, o := range src.HeapObjs {
		blk, err := heap.Alloc(o.Size, "pie-ctor-alloc")
		if err != nil {
			return nil, 0, err
		}
		copy(blk.Words, o.Words)
		cost += env.Cost.CopyTime(o.Size) + env.Cost.CtorReplayPerAlloc
		dup.heapObjAddrs[o.Addr] = blk.Addr
		objs = append(objs, &elf.HeapObj{Addr: blk.Addr, Size: o.Size, Words: blk.Words})
	}

	rebase := func(w uint64) uint64 {
		switch {
		case src.ContainsCode(w):
			return dup.codeAddr + (w - src.CodeBase)
		case src.ContainsData(w):
			return dup.dataAddr + (w - src.DataBase)
		default:
			if na, ok := dup.heapObjAddrs[w]; ok {
				return na
			}
			if obj := src.HeapObjAt(w); obj != nil {
				return dup.heapObjAddrs[obj.Addr] + (w - obj.Addr)
			}
			return w
		}
	}

	// Copy + scan the data segment (GOT entries live inside it and are
	// rebased by the same pass).
	copy(dataBlk.Words, src.Data)
	for i, w := range dataBlk.Words {
		dataBlk.Words[i] = rebase(w)
	}
	cost += sim.Time(len(dataBlk.Words)) * env.Cost.PointerScanPerWord

	// Scan the replicated constructor heap objects for pointers into
	// the original segments (vtables, cross-object pointers).
	for _, o := range objs {
		for i, w := range o.Words {
			o.Words[i] = rebase(w)
		}
		cost += sim.Time(len(o.Words)) * env.Cost.PointerScanPerWord
	}

	dup.inst = &elf.Instance{
		Img:        img,
		Namespace:  src.Namespace,
		CodeBase:   dup.codeAddr,
		DataBase:   dup.dataAddr,
		Data:       dataBlk.Words,
		HeapObjs:   objs,
		Migratable: true,
	}
	return dup, cost, nil
}

// rebindPrivateInstance reattaches a migrated PIEglobals context's
// private instance to the restored heap blocks (same addresses, new
// storage). Called after mem.Restore on the destination process.
func rebindPrivateInstance(c *RankContext) error {
	if c.pieDataAddr == 0 {
		return nil
	}
	dataBlk := c.Heap.Lookup(c.pieDataAddr)
	if dataBlk == nil {
		return fmt.Errorf("core: rank %d: restored heap lost data segment block at %#x", c.VP, c.pieDataAddr)
	}
	codeBlk := c.Heap.Lookup(c.pieCodeAddr)
	if codeBlk == nil {
		return fmt.Errorf("core: rank %d: restored heap lost code segment block at %#x", c.VP, c.pieCodeAddr)
	}
	var objs []*elf.HeapObj
	for _, na := range c.pieHeapObjAddrs {
		blk := c.Heap.Lookup(na)
		if blk == nil {
			return fmt.Errorf("core: rank %d: restored heap lost ctor allocation at %#x", c.VP, na)
		}
		objs = append(objs, &elf.HeapObj{Addr: blk.Addr, Size: blk.Size, Words: blk.Words})
	}
	c.Private = &elf.Instance{
		Img:        c.Img,
		Namespace:  c.Private.Namespace,
		CodeBase:   c.pieCodeAddr,
		DataBase:   c.pieDataAddr,
		Data:       dataBlk.Words,
		HeapObjs:   objs,
		Migratable: true,
	}
	return nil
}
