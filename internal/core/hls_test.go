package core

import (
	"testing"

	"provirt/internal/elf"
)

// hlsImage declares variables at all three privatization levels.
func hlsImage(t *testing.T) *elf.Image {
	t.Helper()
	return elf.NewBuilder("hlsapp").
		Global("per_rank", 1).Level(elf.LevelULT).
		Global("per_core", 2).Level(elf.LevelCore).
		Global("per_node", 3).Level(elf.LevelNode).
		Const("shared_ro", 4).
		Func("main", 512).
		MustBuild()
}

// hlsSetup builds 4 ranks on 2 local PEs (0,0,1,1).
func hlsSetup(t *testing.T, m Method) *SetupResult {
	t.Helper()
	env := testEnv(t, true)
	env.Toolchain.MPCPatched = true
	env.PEOfVP = func(vp int) int { return vp / 2 }
	if err := m.CheckEnv(env); err != nil {
		t.Fatal(err)
	}
	res, err := m.Setup(env, hlsImage(t), []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHLSSharingLevels(t *testing.T) {
	res := hlsSetup(t, NewMPCPrivatizeHLS())
	c := res.Contexts

	// per_rank: fully private.
	c[0].Store("per_rank", 100)
	if c[1].Load("per_rank") == 100 {
		t.Error("ULT-level variable leaked to a sibling rank")
	}

	// per_core: shared within a PE, private across PEs.
	c[0].Store("per_core", 200)
	if c[1].Load("per_core") != 200 {
		t.Error("core-level variable not shared with the co-scheduled rank")
	}
	if c[2].Load("per_core") == 200 {
		t.Error("core-level variable leaked across cores")
	}

	// per_node: shared by every rank in the process.
	c[3].Store("per_node", 300)
	for i := 0; i < 4; i++ {
		if c[i].Load("per_node") != 300 {
			t.Errorf("rank %d does not see the node-level value", i)
		}
	}

	// All three levels still count as privatized (not raw sharing of
	// the base data segment).
	for _, name := range []string{"per_rank", "per_core", "per_node"} {
		if !c[0].Var(name).Privatized() {
			t.Errorf("%s not privatized under HLS", name)
		}
	}
	if c[0].Var("shared_ro").Privatized() {
		t.Error("const privatized")
	}
}

func TestHLSInitialValues(t *testing.T) {
	res := hlsSetup(t, NewMPCPrivatizeHLS())
	for i, c := range res.Contexts {
		if c.Load("per_rank") != 1 || c.Load("per_core") != 2 || c.Load("per_node") != 3 {
			t.Fatalf("rank %d initial values: %d %d %d", i,
				c.Load("per_rank"), c.Load("per_core"), c.Load("per_node"))
		}
	}
}

// TestHLSMemorySavings: the point of HLS is fewer materialized copies
// than flat per-rank privatization.
func TestHLSMemorySavings(t *testing.T) {
	flat := hlsSetup(t, New(KindMPCPrivatize))
	hls := hlsSetup(t, NewMPCPrivatizeHLS())
	// Flat: 3 mutable vars x 4 ranks = 12 words. HLS: 1x4 + 1x2 + 1 = 7.
	if flat.PrivatizedWords != 12 {
		t.Errorf("flat privatized words = %d, want 12", flat.PrivatizedWords)
	}
	if hls.PrivatizedWords != 7 {
		t.Errorf("hls privatized words = %d, want 7", hls.PrivatizedWords)
	}
	if hls.PrivatizedWords >= flat.PrivatizedWords {
		t.Error("HLS did not reduce privatized storage")
	}
}

func TestHLSRemainsNonMigratable(t *testing.T) {
	res := hlsSetup(t, NewMPCPrivatizeHLS())
	if _, err := res.Contexts[0].Serialize(); err == nil {
		t.Fatal("HLS (mpc) rank serialized despite Table 1's 'Not implemented'")
	}
}
