package core

// Capabilities is a method's row in the paper's Table 1 / Table 3,
// plus machine-readable flags the runtime enforces.
type Capabilities struct {
	// DisplayName is the row label used in Table 3.
	DisplayName string
	// Automation, Portability, SMPSupport, MigrationSupport are the
	// verbatim cell texts of Table 3.
	Automation       string
	Portability      string
	SMPSupport       string
	MigrationSupport string

	// SupportsSMP reports whether the method can run with multiple PE
	// scheduler threads per OS process at all.
	SupportsSMP bool
	// SMPNeedsPatchedGlibc reports the PIPglobals caveat: SMP-scale
	// virtualization requires the patched glibc.
	SMPNeedsPatchedGlibc bool
	// SupportsMigration reports whether ranks privatized by this
	// method can migrate between address spaces.
	SupportsMigration bool
	// PrivatizesStatics reports whether static variables are
	// privatized (Swapglobals' gap).
	PrivatizesStatics bool
	// PrivatizesUntagged reports whether mutable variables the
	// programmer did not tag thread_local are privatized (TLSglobals'
	// gap).
	PrivatizesUntagged bool
	// FullyAutomatic reports zero per-variable programmer effort.
	FullyAutomatic bool
	// Novel reports the method is one of the paper's three new runtime
	// techniques.
	Novel bool
}

// capabilityTable holds each method's declared row. Cell strings match
// Table 3 of the paper.
var capabilityTable = map[Kind]Capabilities{
	KindNone: {
		DisplayName:        "none (unsafe)",
		Automation:         "n/a",
		Portability:        "n/a",
		SMPSupport:         "Yes",
		MigrationSupport:   "Yes",
		SupportsSMP:        true,
		SupportsMigration:  true,
		PrivatizesStatics:  false,
		PrivatizesUntagged: false,
	},
	KindManual: {
		DisplayName:        "Manual refactoring",
		Automation:         "Poor",
		Portability:        "Good",
		SMPSupport:         "Yes",
		MigrationSupport:   "Yes",
		SupportsSMP:        true,
		SupportsMigration:  true,
		PrivatizesStatics:  true,
		PrivatizesUntagged: true,
	},
	KindPhotran: {
		DisplayName:        "Photran",
		Automation:         "Fortran-specific",
		Portability:        "Good",
		SMPSupport:         "Yes",
		MigrationSupport:   "Yes",
		SupportsSMP:        true,
		SupportsMigration:  true,
		PrivatizesStatics:  true,
		PrivatizesUntagged: true,
	},
	KindSwapglobals: {
		DisplayName:        "Swapglobals",
		Automation:         "No static vars",
		Portability:        "Linker-specific",
		SMPSupport:         "No",
		MigrationSupport:   "Yes",
		SupportsSMP:        false,
		SupportsMigration:  true,
		PrivatizesStatics:  false,
		PrivatizesUntagged: true,
		FullyAutomatic:     true,
	},
	KindTLSglobals: {
		DisplayName:        "TLSglobals",
		Automation:         "Mediocre",
		Portability:        "Compiler-specific",
		SMPSupport:         "Yes",
		MigrationSupport:   "Yes",
		SupportsSMP:        true,
		SupportsMigration:  true,
		PrivatizesStatics:  true, // tagged statics work
		PrivatizesUntagged: false,
	},
	KindMPCPrivatize: {
		DisplayName:        "-fmpc-privatize",
		Automation:         "Good",
		Portability:        "Compiler-specific",
		SMPSupport:         "Yes",
		MigrationSupport:   "Not implemented, but possible",
		SupportsSMP:        true,
		SupportsMigration:  false,
		PrivatizesStatics:  true,
		PrivatizesUntagged: true,
		FullyAutomatic:     true,
	},
	KindPIPglobals: {
		DisplayName:          "PIPglobals",
		Automation:           "Good",
		Portability:          "Requires GNU libc extension",
		SMPSupport:           "Limited w/o patched glibc",
		MigrationSupport:     "No",
		SupportsSMP:          true,
		SMPNeedsPatchedGlibc: true,
		SupportsMigration:    false,
		PrivatizesStatics:    true,
		PrivatizesUntagged:   true,
		FullyAutomatic:       true,
		Novel:                true,
	},
	KindFSglobals: {
		DisplayName:        "FSglobals",
		Automation:         "Good",
		Portability:        "Shared file system needed",
		SMPSupport:         "Yes",
		MigrationSupport:   "No",
		SupportsSMP:        true,
		SupportsMigration:  false,
		PrivatizesStatics:  true,
		PrivatizesUntagged: true,
		FullyAutomatic:     true,
		Novel:              true,
	},
	KindPIEglobals: {
		DisplayName:        "PIEglobals",
		Automation:         "Good",
		Portability:        "Implemented w/ GNU libc extension",
		SMPSupport:         "Yes",
		MigrationSupport:   "Yes",
		SupportsSMP:        true,
		SupportsMigration:  true,
		PrivatizesStatics:  true,
		PrivatizesUntagged: true,
		FullyAutomatic:     true,
		Novel:              true,
	},
}

// CapabilitiesOf returns the Table 3 row for a method kind.
func CapabilitiesOf(k Kind) Capabilities { return capabilityTable[k] }

// Table3Order lists the methods in the paper's Table 3 row order.
func Table3Order() []Kind {
	return []Kind{
		KindManual, KindPhotran, KindSwapglobals, KindTLSglobals,
		KindMPCPrivatize, KindPIPglobals, KindFSglobals, KindPIEglobals,
	}
}

// Table1Order lists the methods in the paper's Table 1 row order (the
// pre-existing techniques only).
func Table1Order() []Kind {
	return []Kind{
		KindManual, KindPhotran, KindSwapglobals, KindTLSglobals,
		KindMPCPrivatize, KindPIPglobals,
	}
}
