package core

import (
	"testing"
)

// TestPIEglobalsOpensOncePerProcess pins the §3.3 fix: PIEglobals must
// dlopen the user's shared object exactly once per OS process — not
// once per virtual rank — to avoid glibc crashes from dlopen/pthread
// interactions in SMP mode. The duplication happens via Isomalloc
// memcpy, not via the linker.
func TestPIEglobalsOpensOncePerProcess(t *testing.T) {
	env := testEnv(t, true) // SMP process
	img := testImage(t)
	res := setup(t, KindPIEglobals, env, img, 8)
	if got := len(env.Linker.Handles()); got != 1 {
		t.Fatalf("PIEglobals loaded %d linker objects for 8 ranks, want 1 (dlopen once per process)", got)
	}
	if env.Linker.NamespacesInUse() != 0 {
		t.Fatalf("PIEglobals used %d dlmopen namespaces, want 0", env.Linker.NamespacesInUse())
	}
	if len(res.Contexts) != 8 {
		t.Fatal("missing contexts")
	}
}

// TestPIPglobalsOneNamespacePerRank pins §3.1: PIPglobals performs one
// dlmopen (fresh namespace) per virtual rank.
func TestPIPglobalsOneNamespacePerRank(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	setup(t, KindPIPglobals, env, img, 5)
	if got := env.Linker.NamespacesInUse(); got != 5 {
		t.Fatalf("PIPglobals used %d namespaces for 5 ranks", got)
	}
	// Base object + 5 per-rank copies.
	if got := len(env.Linker.Handles()); got != 6 {
		t.Fatalf("PIPglobals holds %d linker objects, want 6", got)
	}
	// Every rank copy has its function-pointer shim populated
	// (Fig. 4's AMPI_FuncPtr_Unpack); calling MPI through an
	// unpopulated shim would crash the real system.
	for _, h := range env.Linker.Handles() {
		if h.Namespace != 0 && !h.ShimPopulated {
			t.Fatalf("rank copy in namespace %d has an unpopulated shim", h.Namespace)
		}
	}
}

// TestFSglobalsFilesOnSharedFS pins §3.2: one binary copy per rank on
// the shared filesystem, each opened exactly once.
func TestFSglobalsFilesOnSharedFS(t *testing.T) {
	env := testEnv(t, false)
	img := testImage(t)
	setup(t, KindFSglobals, env, img, 4)
	if env.FS.Opens == 0 {
		t.Fatal("FSglobals did not touch the shared filesystem")
	}
	if got := env.FS.TotalBytes(); got != 4*img.TotalSegmentBytes() {
		t.Fatalf("shared FS holds %d bytes, want %d (4 binary copies)", got, 4*img.TotalSegmentBytes())
	}
	for vp := 0; vp < 4; vp++ {
		path := "/scratch/fsglobals/app.vp" + string(rune('0'+vp))
		if !env.FS.Exists(path) {
			t.Errorf("missing per-rank binary copy %s", path)
		}
	}
}

// TestStartupCostOrdering pins Fig. 5's qualitative ordering at the
// Setup level, independent of the ampi layer.
func TestStartupCostOrdering(t *testing.T) {
	img := testImage(t)
	cost := func(kind Kind) int64 {
		env := testEnv(t, false)
		if kind == KindMPCPrivatize {
			env.Toolchain.MPCPatched = true
		}
		res := setup(t, kind, env, img, 8)
		return int64(res.Done)
	}
	base := cost(KindNone)
	tls := cost(KindTLSglobals)
	pip := cost(KindPIPglobals)
	fs := cost(KindFSglobals)
	pie := cost(KindPIEglobals)
	if tls < base || pip < tls || pie < tls {
		t.Errorf("ordering violated: base=%d tls=%d pip=%d pie=%d", base, tls, pip, pie)
	}
	if fs <= pip || fs <= pie {
		t.Errorf("FSglobals (%d) must be the slowest (pip=%d pie=%d)", fs, pip, pie)
	}
}
