package core

import "fmt"

// FindResult is pieglobalsfind's answer: the original (debugger-
// friendly) address corresponding to a privatized one, plus the symbol
// it falls in, if any.
type FindResult struct {
	// Original is the equivalent address in the base instance as
	// mapped by the system's runtime linker — the address debug
	// symbols describe.
	Original uint64
	// Segment is "code" or "data".
	Segment string
	// Symbol is the function containing the address (code) or the
	// variable at the address (data); empty if the address falls in
	// segment bulk.
	Symbol string
	// Offset is the byte offset within Symbol.
	Offset uint64
}

// PieglobalsFind translates an address inside a rank's privatized
// (manually copied) code or data segment back to its original location
// as allocated by the system's runtime linker, so that a debugger can
// associate it with debug symbols (§3.3). It is the facility the paper
// provides because GDB/LLDB backtraces through the copied segments are
// otherwise "mostly mysterious".
func PieglobalsFind(c *RankContext, addr uint64) (*FindResult, error) {
	if c.Private == nil {
		return nil, fmt.Errorf("core: pieglobalsfind: rank %d has no privatized segments", c.VP)
	}
	in, base := c.Private, c.Shared
	switch {
	case in.ContainsCode(addr):
		off := addr - in.CodeBase
		res := &FindResult{Original: base.CodeBase + off, Segment: "code"}
		if f := base.FuncAt(res.Original); f != nil {
			res.Symbol = f.Name
			res.Offset = res.Original - base.FuncAddr(f)
		}
		return res, nil
	case in.ContainsData(addr):
		off := addr - in.DataBase
		res := &FindResult{Original: base.DataBase + off, Segment: "data"}
		if idx := int(off / 8); idx < len(c.Img.Vars) && off%8 == 0 {
			res.Symbol = c.Img.Vars[idx].Name
		}
		return res, nil
	default:
		return nil, fmt.Errorf("core: pieglobalsfind: address %#x is not in rank %d's privatized segments (code [%#x,%#x), data [%#x,%#x))",
			addr, c.VP, in.CodeBase, in.CodeBase+c.Img.CodeSize, in.DataBase, in.DataBase+c.Img.DataSize)
	}
}
