package core

import (
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/loader"
	"provirt/internal/sim"
)

// ---------------------------------------------------------------------
// PIPglobals (§3.1): the program is built as a PIE and dlmopen'd once
// per virtual rank with a fresh link-map namespace, duplicating its
// code and data segments. Global accesses are PC-relative within each
// copy, so no work happens at context-switch time and no per-access
// indirection exists. Limits: stock glibc provides only 12 namespaces
// per process, and the segment copies are mapped by ld-linux.so's own
// mmap calls — the runtime cannot route them through Isomalloc, so
// ranks can never migrate.
// ---------------------------------------------------------------------

type pipglobalsMethod struct{}

func (*pipglobalsMethod) Kind() Kind                 { return KindPIPglobals }
func (*pipglobalsMethod) Capabilities() Capabilities { return CapabilitiesOf(KindPIPglobals) }

func (m *pipglobalsMethod) CheckEnv(env *ProcessEnv) error {
	if env.OS.Kind != "linux" || !env.OS.Glibc {
		return fmt.Errorf("core: pipglobals requires GNU/Linux: dlmopen is a non-POSIX glibc extension")
	}
	if !env.Toolchain.PIE {
		return fmt.Errorf("core: pipglobals requires building the program as a Position Independent Executable")
	}
	return nil
}

func (m *pipglobalsMethod) SwitchExtra(from, to *RankContext) sim.Time { return 0 }

func (m *pipglobalsMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	env.Linker.PatchedGlibc = env.OS.PatchedGlibc
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	direct := accessCost(env.Cost, false)
	for _, vp := range vps {
		// One dlmopen per virtual rank; hits ErrNamespaceLimit past 12
		// ranks/process on stock glibc.
		copyH, copyDone, err := env.Linker.Dlmopen(img, img.Name, done)
		if err != nil {
			return nil, fmt.Errorf("core: pipglobals: rank %d: %w", vp, err)
		}
		done = env.Linker.PopulateShim(copyH, copyDone)
		c, err := newContext(m, env, img, h.Inst, vp)
		if err != nil {
			return nil, err
		}
		c.Private = copyH.Inst
		c.Migratable = false
		c.MigrationVeto = "pipglobals segments are mapped by ld-linux.so's internal mmap calls, which cannot be intercepted and allocated via Isomalloc (§3.1)"
		c.resolveAll(env, func(v *elf.Var) cellRef {
			return cellRef{kind: storePrivSeg, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.Done = done
	return res, nil
}

// ---------------------------------------------------------------------
// FSglobals (§3.2): like PIPglobals, but instead of dlmopen namespaces
// the runtime writes one copy of the PIE binary per rank to a shared
// filesystem and opens each with POSIX dlopen — distinct paths yield
// distinct segment copies. Portable beyond glibc and free of the
// namespace limit, at the price of startup I/O that contends on the
// shared filesystem and scales with rank count; shared-object
// dependencies are unsupported; migration is impossible for the same
// reason as PIPglobals.
// ---------------------------------------------------------------------

type fsglobalsMethod struct{}

func (*fsglobalsMethod) Kind() Kind                 { return KindFSglobals }
func (*fsglobalsMethod) Capabilities() Capabilities { return CapabilitiesOf(KindFSglobals) }

func (m *fsglobalsMethod) CheckEnv(env *ProcessEnv) error {
	if !env.OS.SharedFS {
		return fmt.Errorf("core: fsglobals requires a shared filesystem visible to all nodes")
	}
	if !env.Toolchain.PIE {
		return fmt.Errorf("core: fsglobals requires building the program as a Position Independent Executable")
	}
	return nil
}

func (m *fsglobalsMethod) SwitchExtra(from, to *RankContext) sim.Time { return 0 }

func (m *fsglobalsMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	if img.SharedDeps > 0 {
		return nil, fmt.Errorf("core: fsglobals: %q has %d shared-object dependencies; shared objects are not supported (iterating and copying every dependency per rank is unimplemented, §3.2)",
			img.Name, img.SharedDeps)
	}
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	res := &SetupResult{SharedInstance: h.Inst}
	direct := accessCost(env.Cost, false)
	for _, vp := range vps {
		path := fmt.Sprintf("/scratch/fsglobals/%s.vp%d", img.Name, vp)
		// Write this rank's binary copy, then dlopen it back. Both
		// transfers serialize on the shared filesystem, which is what
		// makes FSglobals startup degrade with scale.
		writeDone := loader.WriteBinaryToFS(env.FS, img, path, done)
		copyH, copyDone, err := env.Linker.DlopenFromFS(env.FS, img, path, writeDone)
		if err != nil {
			return nil, fmt.Errorf("core: fsglobals: rank %d: %w", vp, err)
		}
		done = env.Linker.PopulateShim(copyH, copyDone)
		c, err := newContext(m, env, img, h.Inst, vp)
		if err != nil {
			return nil, err
		}
		c.Private = copyH.Inst
		c.Migratable = false
		c.MigrationVeto = "fsglobals segments are mapped by the system dlopen, which cannot be intercepted and allocated via Isomalloc (§3.2)"
		c.resolveAll(env, func(v *elf.Var) cellRef {
			return cellRef{kind: storePrivSeg, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.Done = done
	return res, nil
}

// ---------------------------------------------------------------------
// PIEglobals (§3.3): the most fully automated method, and the only new
// one supporting migration. The PIE shared object is dlopen'd ONCE per
// process (a per-rank dlopen crashes glibc under SMP mode's pthreads);
// dl_iterate_phdr before and after the dlopen locates its code and
// data segments; then for each rank the runtime copies both segments
// through Isomalloc, scans the data-segment copy for values that look
// like pointers into the original segments and rebases them (GOT
// entries and C++ vtable/global-object pointers included), replays the
// heap allocations logged from static constructors, and combines with
// TLSglobals for thread-local variables. Because every byte of the
// rank's code and data now lives in Isomalloc, the rank can migrate —
// at the price of moving the code segment with it (Fig. 8).
// ---------------------------------------------------------------------

// PIEOptions enables the paper's §6 future-work optimizations on
// PIEglobals.
type PIEOptions struct {
	// ShareCodePages maps each rank's code segment from a single
	// read-only descriptor instead of copying it: startup skips the
	// code memcpy, the per-rank resident footprint drops by the code
	// size, and migrations transfer only metadata for the code block
	// (the destination remaps it). This is the "mapping the code
	// segments into virtual memory from a single file descriptor using
	// mmap" plus "only migrate segments of code that differ across
	// ranks" plan of §6; with no self-modifying code no segment ever
	// differs, so nothing is transferred.
	ShareCodePages bool
	// ShareROData extends the single-descriptor mapping to the read-only
	// portion of the data segment (const variable cells and declared
	// .rodata-like bulk, per elf.Layout.ROBytes): those bytes stay on
	// shared pages with copy-on-write semantics, so startup skips their
	// memcpy, the per-rank resident footprint shrinks to the writable
	// delta plus handles, and migrations remap them instead of moving
	// them. Requires ShareCodePages (same descriptor machinery).
	ShareROData bool
}

// NewPIEglobals returns PIEglobals with explicit future-work options;
// New(KindPIEglobals) returns the paper's evaluated configuration
// (everything copied).
func NewPIEglobals(opts PIEOptions) Method {
	return &pieglobalsMethod{opts: opts}
}

type pieglobalsMethod struct {
	opts PIEOptions
}

func (*pieglobalsMethod) Kind() Kind                 { return KindPIEglobals }
func (*pieglobalsMethod) Capabilities() Capabilities { return CapabilitiesOf(KindPIEglobals) }

func (m *pieglobalsMethod) CheckEnv(env *ProcessEnv) error {
	if env.OS.Kind != "linux" || !env.OS.Glibc {
		return fmt.Errorf("core: pieglobals requires GNU/Linux: dl_iterate_phdr has shipped in stable glibc since 2005 but is not POSIX")
	}
	if !env.Toolchain.PIE {
		return fmt.Errorf("core: pieglobals requires building the program as a Position Independent Executable (-pieglobals toolchain option)")
	}
	return nil
}

func (m *pieglobalsMethod) SwitchExtra(from, to *RankContext) sim.Time {
	// PIEglobals implies TLSglobals where supported, so it pays the
	// TLS segment pointer update at every switch (§4.2).
	if to == nil || to.TLS == nil {
		return 0
	}
	return to.costModel.TLSSwitchCost
}

func (m *pieglobalsMethod) Setup(env *ProcessEnv, img *elf.Image, vps []int, start sim.Time) (*SetupResult, error) {
	before := env.Linker.IteratePhdr()
	h, done, err := loadBaseProgram(env, img, start)
	if err != nil {
		return nil, err
	}
	after := env.Linker.IteratePhdr()
	seg, err := diffPhdr(before, after, img.Name)
	if err != nil {
		return nil, err
	}
	shared := h.Inst
	if seg.CodeBase != shared.CodeBase || seg.DataBase != shared.DataBase {
		return nil, fmt.Errorf("core: pieglobals: dl_iterate_phdr diff located segments at %#x/%#x, loader reports %#x/%#x",
			seg.CodeBase, seg.DataBase, shared.CodeBase, shared.DataBase)
	}

	res := &SetupResult{SharedInstance: shared}
	useTLS := env.Toolchain.SupportsTLSSegRefs
	direct := accessCost(env.Cost, false)
	tlsCost := accessCost(env.Cost, true)

	// TLS slot layout shared by all ranks (tagged variables only; the
	// remaining mutable state is privatized by segment duplication).
	slots := make(map[int]int)
	if useTLS {
		for _, v := range img.Vars {
			if v.Mutable() && v.Tagged {
				slots[v.Index] = len(slots)
			}
		}
	}

	for _, vp := range vps {
		c, err := newContext(m, env, img, shared, vp)
		if err != nil {
			return nil, err
		}
		dup, cost, err := duplicateInstance(env, shared, c.Heap, m.opts)
		if err != nil {
			return nil, fmt.Errorf("core: pieglobals: rank %d: %w", vp, err)
		}
		done += cost
		c.Private = dup.inst
		c.pieCodeAddr = dup.codeAddr
		c.pieDataAddr = dup.dataAddr
		c.pieHeapObjAddrs = dup.heapObjAddrs
		if useTLS {
			c.TLS = make([]uint64, len(slots))
			for idx, slot := range slots {
				c.TLS[slot] = img.Vars[idx].Init
				c.tlsSlot[idx] = slot
			}
			done += tlsCopyCost(env, len(slots))
		}
		c.Migratable = true
		c.resolveAll(env, func(v *elf.Var) cellRef {
			if slot, ok := slots[v.Index]; ok {
				return cellRef{kind: storeTLS, slot: slot, cost: tlsCost}
			}
			return cellRef{kind: storePrivSeg, cost: direct}
		})
		res.Contexts = append(res.Contexts, c)
	}
	res.Done = done
	return res, nil
}

// diffPhdr finds the phdr record present in after but not before —
// how the PIEglobals loader locates the fresh object's segments.
func diffPhdr(before, after []loader.SegmentInfo, want string) (loader.SegmentInfo, error) {
	seen := make(map[uint64]bool, len(before))
	for _, s := range before {
		seen[s.CodeBase] = true
	}
	for _, s := range after {
		if !seen[s.CodeBase] {
			return s, nil
		}
	}
	return loader.SegmentInfo{}, fmt.Errorf("core: pieglobals: dl_iterate_phdr diff found no new object for %q", want)
}
