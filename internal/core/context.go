package core

import (
	"fmt"

	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/mem"
	"provirt/internal/sim"
	"provirt/internal/ult"
)

// storageKind records where a rank's view of one variable lives; it
// drives both the access-cost charge and the migration story.
type storageKind int

const (
	storeShared   storageKind = iota // base instance data segment (unprivatized)
	storePrivSeg                     // rank's private duplicated data segment
	storeTLS                         // rank's TLS block
	storeHeapCell                    // per-rank heap cell (manual refactor / swapglobals copy)
	storeCoreCell                    // per-core cell (hierarchical local storage)
	storeNodeCell                    // per-node/process cell (hierarchical local storage)
)

// RankContext is one virtual rank's privatized view of the program: for
// every variable, the storage its loads and stores reach under the
// active method, plus the rank's Isomalloc heap and user-level thread
// stack.
type RankContext struct {
	VP     int
	Method Method
	Img    *elf.Image

	// Shared is the base (namespace-0) program instance all ranks in
	// the process can see.
	Shared *elf.Instance
	// Private is the rank's own instance under segment-duplicating
	// methods (PIP/FS/PIE), else nil.
	Private *elf.Instance
	// TLS is the rank's thread-local storage block (TLSglobals,
	// -fmpc-privatize, and PIEglobals-with-TLS), else nil.
	TLS []uint64
	// coreCells and nodeCells are hierarchical-local-storage blocks
	// shared with, respectively, the other ranks on this rank's core
	// and every rank in the process (HLS, §2.3.5).
	coreCells []uint64
	nodeCells []uint64

	// Heap is the rank's Isomalloc heap (stack, user allocations, and —
	// under PIEglobals — the duplicated segments themselves).
	Heap *mem.Heap
	// Stack is the rank's user-level thread stack block.
	Stack *mem.Block

	// Migratable reports whether the rank's complete state can be
	// serialized and reconstructed in another address space.
	Migratable bool
	// MigrationVeto explains why migration is unsupported, for error
	// messages ("code segments were mapped by ld.so, not Isomalloc").
	MigrationVeto string

	// Thread is the user-level thread executing this rank, once bound.
	Thread *ult.Thread

	// Per-variable resolution, indexed by elf.Var.Index.
	cells []cellRef
	// rcells memoizes the resolved cell pointer (and the heap block a
	// store must dirty) per variable; an entry is valid while its epoch
	// matches the context's. See resolve.
	rcells []resolvedCell
	// epoch versions every resolved cell pointer: restore/migration and
	// method setup bump it, invalidating all cached resolutions at once.
	epoch uint64
	// tlsSlot maps a variable index to its slot in TLS, or -1.
	tlsSlot []int
	// heapCells is the per-rank privatized-copy block for manual /
	// swapglobals methods, else nil.
	heapCells *mem.Block

	// pieCodeAddr/pieDataAddr are the Isomalloc addresses of the
	// duplicated segments under PIEglobals (used to rebind after
	// migration restore).
	pieCodeAddr uint64
	pieDataAddr uint64
	// pieHeapObjAddrs maps original ctor heap object addresses to the
	// rank's replicated copies (PIEglobals).
	pieHeapObjAddrs map[uint64]uint64

	// accesses counts privatized loads+stores for reporting.
	accesses uint64

	costModel *machine.CostModel
}

type cellRef struct {
	kind storageKind
	slot int      // index into the owning storage array
	cost sim.Time // per-access charge
}

// resolvedCell is the access fast path for one variable: the storage
// cell's address and cost, resolved once per epoch so inner loops skip
// the name lookup and the storage-kind switch.
type resolvedCell struct {
	epoch uint64
	cell  *uint64
	cost  sim.Time
	// blk is the heap block backing the cell, if any; stores touch it
	// so incremental snapshots re-copy the block.
	blk *mem.Block
}

// newContext returns a context with heap + stack prepared; methods fill
// in storage resolution.
func newContext(m Method, env *ProcessEnv, img *elf.Image, shared *elf.Instance, vp int) (*RankContext, error) {
	heap := mem.NewHeap(vp)
	stackSize := env.StackSize
	if stackSize == 0 {
		stackSize = 1 << 20 // AMPI's default 1 MiB ULT stack
	}
	stack, err := heap.AllocBallast(stackSize, "ult-stack")
	if err != nil {
		return nil, err
	}
	c := &RankContext{
		VP:        vp,
		Method:    m,
		Img:       img,
		Shared:    shared,
		Heap:      heap,
		Stack:     stack,
		costModel: env.Cost,
	}
	c.cells = make([]cellRef, len(img.Vars))
	c.rcells = make([]resolvedCell, len(img.Vars))
	c.epoch = 1 // zero-valued rcells entries are never current
	c.tlsSlot = make([]int, len(img.Vars))
	for i := range c.tlsSlot {
		c.tlsSlot[i] = -1
	}
	return c, nil
}

// storage returns the backing slice and element index for a variable.
func (c *RankContext) storage(v *elf.Var) (*uint64, error) {
	ref := c.cells[v.Index]
	switch ref.kind {
	case storeShared:
		return &c.Shared.Data[v.Index], nil
	case storePrivSeg:
		if c.Private == nil {
			return nil, fmt.Errorf("core: rank %d: private segment storage with no private instance", c.VP)
		}
		return &c.Private.Data[v.Index], nil
	case storeTLS:
		return &c.TLS[ref.slot], nil
	case storeHeapCell:
		return &c.heapCells.Words[ref.slot], nil
	case storeCoreCell:
		return &c.coreCells[ref.slot], nil
	case storeNodeCell:
		return &c.nodeCells[ref.slot], nil
	default:
		return nil, fmt.Errorf("core: rank %d: unresolved storage for %s", c.VP, v.Name)
	}
}

// invalidateResolutions discards every cached cell pointer; the next
// access through any handle re-resolves against the context's current
// storage. Called whenever storage moves: migration restore, method
// setup.
func (c *RankContext) invalidateResolutions() { c.epoch++ }

// resolve returns the variable's current fast-path entry, refreshing it
// if the context's storage changed since it was last resolved.
func (c *RankContext) resolve(v *elf.Var) *resolvedCell {
	rc := &c.rcells[v.Index]
	if rc.epoch == c.epoch {
		return rc
	}
	cell, err := c.storage(v)
	if err != nil {
		panic(err)
	}
	ref := c.cells[v.Index]
	rc.cell, rc.cost, rc.blk, rc.epoch = cell, ref.cost, nil, c.epoch
	switch ref.kind {
	case storeHeapCell:
		rc.blk = c.heapCells
	case storePrivSeg:
		if c.pieDataAddr != 0 {
			// PIE private-segment cells live inside the duplicated data
			// segment's heap block; stores must dirty it.
			rc.blk = c.Heap.Lookup(c.pieDataAddr)
		}
	}
	return rc
}

// Var returns an access handle for the named variable. Unknown names
// are programming errors and panic, matching the behaviour of an
// undefined symbol at link time.
func (c *RankContext) Var(name string) VarHandle {
	v := c.Img.VarByName(name)
	if v == nil {
		panic(fmt.Sprintf("core: program %q has no variable %q", c.Img.Name, name))
	}
	return VarHandle{ctx: c, v: v}
}

// Load reads the named variable, charging access cost to the rank's
// thread.
func (c *RankContext) Load(name string) uint64 { return c.Var(name).Load() }

// Store writes the named variable, charging access cost to the rank's
// thread.
func (c *RankContext) Store(name string, val uint64) { c.Var(name).Store(val) }

// Accesses reports the number of loads+stores performed through this
// context.
func (c *RankContext) Accesses() uint64 { return c.accesses }

// ChargeAccesses charges the cost of n additional variable accesses of
// the named variable without performing them — workloads use it to
// model inner loops that touch privatized globals billions of times
// without executing each touch.
func (c *RankContext) ChargeAccesses(name string, n uint64) {
	c.Var(name).Charge(n)
}

// VarHandle is a resolved accessor for one variable in one rank's
// context.
type VarHandle struct {
	ctx *RankContext
	v   *elf.Var
}

// Name returns the variable's name.
func (h VarHandle) Name() string { return h.v.Name }

// Addr returns the virtual address the rank's accesses reach — useful
// for the pointer-identity tests and pieglobalsfind.
func (h VarHandle) Addr() uint64 {
	ref := h.ctx.cells[h.v.Index]
	switch ref.kind {
	case storeShared:
		return h.ctx.Shared.VarAddr(h.v)
	case storePrivSeg:
		return h.ctx.Private.VarAddr(h.v)
	case storeTLS:
		// TLS cells live in the rank's heap-resident TLS block in the
		// real system; model a stable synthetic address derived from
		// the rank's reserved range top.
		return h.ctx.Heap.Base() + mem.IsomallocRangeSize - uint64(len(h.ctx.TLS)-ref.slot)*8
	case storeHeapCell:
		return h.ctx.heapCells.Addr + uint64(ref.slot)*8
	default:
		// Hierarchical-local-storage cells live in runtime-owned
		// shared blocks with no modeled address.
		return 0
	}
}

// Load reads the variable, charging the method's access cost. Handles
// survive migration: the cached resolution re-resolves automatically
// when the context's storage epoch advances.
func (h VarHandle) Load() uint64 {
	c := h.ctx
	rc := c.resolve(h.v)
	if c.Thread != nil {
		c.Thread.Advance(rc.cost)
	}
	c.accesses++
	return *rc.cell
}

// Store writes the variable, charging the method's access cost. Writing
// a const-class variable panics: the program is violating its own
// write-once contract.
func (h VarHandle) Store(val uint64) {
	if h.v.Class == elf.ClassConst {
		panic(fmt.Sprintf("core: store to const variable %s", h.v.Name))
	}
	c := h.ctx
	rc := c.resolve(h.v)
	if c.Thread != nil {
		c.Thread.Advance(rc.cost)
	}
	c.accesses++
	*rc.cell = val
	if rc.blk != nil {
		rc.blk.Touch()
	}
}

// Charge bills the cost of n accesses to the variable without
// performing them — the bulk fast path behind ChargeAccesses. The
// batch may include stores, so the backing heap block (if any) is
// conservatively dirtied.
func (h VarHandle) Charge(n uint64) {
	c := h.ctx
	rc := c.resolve(h.v)
	if c.Thread != nil {
		c.Thread.Advance(sim.Time(n) * rc.cost)
	}
	c.accesses += n
	if rc.blk != nil {
		rc.blk.Touch()
	}
}

// Privatized reports whether the rank sees private storage for the
// variable (false means accesses reach process-shared state).
func (h VarHandle) Privatized() bool {
	k := h.ctx.cells[h.v.Index].kind
	return k != storeShared
}

// resolveAll assigns every variable a storage location. decide returns
// the storage for mutable variables; const variables always resolve to
// the shared instance.
func (c *RankContext) resolveAll(env *ProcessEnv, decide func(v *elf.Var) cellRef) {
	c.invalidateResolutions()
	direct := accessCost(env.Cost, false)
	for _, v := range c.Img.Vars {
		if !v.Mutable() {
			c.cells[v.Index] = cellRef{kind: storeShared, cost: direct}
			continue
		}
		c.cells[v.Index] = decide(v)
	}
}
