// Package scenario assembles simulated AMPI runs declaratively.
//
// The paper's evaluation is a matrix of scenarios — privatization
// method x workload x machine shape x policy — and every consumer of
// the runtime (the harness experiments, cmd/privbench, cmd/ampirun,
// the examples) used to wire its cell of that matrix by hand. A Spec
// is the single description of one cell: machine shape, virtual
// ranks, privatization method, toolchain/OS environment, workload,
// load-balancing strategy, checkpoint policy, and tracer. Validate
// reports every problem with the description as structured field
// errors; Config lowers it to the ampi.Config the engine consumes;
// Build constructs the world (optionally restoring from a
// checkpoint); Run builds and executes it.
//
// Workloads are resolved by name through a registry (see
// workloads.go), so launchers list and select programs without
// importing each workload package, and load-balancer strategies parse
// through ParseBalancer (see balancer.go).
package scenario

import (
	"fmt"
	"strings"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/trace"
)

// EnvPolicy selects how a Spec derives its toolchain/OS environment.
type EnvPolicy int

const (
	// EnvAdjust (the default) starts from the paper's Bridges-2
	// environment and adjusts it so the selected method can run, as the
	// paper's experiments did: PIPglobals beyond 12 ranks per process
	// gets the patched glibc, Swapglobals gets the old-or-patched
	// linker, and -fmpc-privatize gets the MPC-patched compiler.
	// Explicit Tweaks are applied on top.
	EnvAdjust EnvPolicy = iota
	// EnvBridges2 uses the stock Bridges-2 environment plus explicit
	// Tweaks only; a method whose requirements are not met fails
	// Validate. This is the launcher policy: the user opts into
	// environment changes by flag.
	EnvBridges2
	// EnvExplicit uses the Spec's Toolchain and OS verbatim.
	EnvExplicit
)

// EnvTweaks are user-requested deviations from the Bridges-2 base
// environment (EnvAdjust and EnvBridges2 policies).
type EnvTweaks struct {
	// OldOrPatchedLinker pretends ld <= 2.23, enabling Swapglobals.
	OldOrPatchedLinker bool
	// PatchedGlibc lifts the dlmopen namespace limit for PIPglobals.
	PatchedGlibc bool
	// MPCToolchain uses an MPC-patched compiler, enabling
	// -fmpc-privatize.
	MPCToolchain bool
}

// Spec declares one simulated run.
type Spec struct {
	// Machine is the cluster shape (nodes x processes x PEs) plus the
	// seed and cost model.
	Machine machine.Config
	// VPs is the number of virtual ranks (+vp N).
	VPs int
	// Method selects the privatization method.
	Method core.Kind
	// MethodImpl, if non-nil, overrides Method with a configured
	// instance (e.g. core.NewPIEglobals with future-work options); its
	// Kind is used for validation.
	MethodImpl core.Method

	// EnvPolicy, Tweaks, Toolchain, and OS describe the build/run
	// environment; see EnvPolicy.
	EnvPolicy EnvPolicy
	Tweaks    EnvTweaks
	Toolchain core.Toolchain
	OS        core.OS

	// Workload names a registered workload (see Workloads); mutually
	// exclusive with Program. Exactly one of the two must be set.
	Workload string
	// WorkloadParams parameterizes a named workload's constructor.
	WorkloadParams WorkloadParams
	// Program is an explicit program for callers that need custom
	// images, result sinks, or per-rank main functions.
	Program *ampi.Program

	// Balancer, if set, runs at every AMPI_Migrate collective; Trigger
	// optionally gates it.
	Balancer lb.Strategy
	Trigger  lb.Trigger
	// Checkpoint, if set, is the policy Rank.CheckpointIfDue consults.
	Checkpoint *ampi.CheckpointPolicy
	// Churn, if set and enabled, runs the scenario under elastic
	// cluster membership: the spec is compiled to a deterministic
	// arrival/eviction schedule and executed by the ft elastic
	// supervisor (RunElastic). Requires a Checkpoint policy (membership
	// changes drain through snapshots) and a migratable method (ranks
	// must move when the machine reshapes).
	Churn *ft.ChurnSpec
	// Restart, if set, restores every rank from the snapshot before
	// its thread first runs (stop/restart and recovery scenarios).
	Restart *ampi.Checkpoint
	// Placement overrides the default block mapping of VPs onto PEs.
	Placement []int
	// StackSize overrides the default 1 MiB per-rank ULT stack.
	StackSize uint64
	// Tracer, if set, receives virtual-time events from every layer.
	Tracer trace.Tracer
	// SimWorkers requests intra-world parallel simulation (sharded
	// event engine with conservative lookahead). Results and trace
	// bytes are byte-identical at any value. Worlds that form a single
	// lookahead domain — the goroutine world's shared schedulers and
	// filesystem couple every PE — run serial regardless; the flat
	// scale path shards. Negative values are invalid; 0 and 1 mean
	// serial.
	SimWorkers int
}

// FieldError is one problem with a Spec, tied to the field that
// caused it.
type FieldError struct {
	Field string
	Msg   string
}

func (e FieldError) Error() string { return fmt.Sprintf("%s: %s", e.Field, e.Msg) }

// ValidationError aggregates every FieldError found in one Validate
// pass, so a caller can report all problems at once.
type ValidationError struct {
	Errs []FieldError
}

func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, fe := range e.Errs {
		msgs[i] = fe.Error()
	}
	return "scenario: invalid spec: " + strings.Join(msgs, "; ")
}

// capabilities returns the effective method's Table 3 row.
func (s *Spec) capabilities() core.Capabilities {
	if s.MethodImpl != nil {
		return s.MethodImpl.Capabilities()
	}
	return core.CapabilitiesOf(s.Method)
}

// kind returns the effective method kind.
func (s *Spec) kind() core.Kind {
	if s.MethodImpl != nil {
		return s.MethodImpl.Kind()
	}
	return s.Method
}

// ranksPerProc returns the worst-case virtual ranks per OS process
// under the default block placement (used for the PIPglobals namespace
// limit).
func (s *Spec) ranksPerProc() int {
	procs := s.Machine.Nodes * s.Machine.ProcsPerNode
	if procs <= 0 {
		return s.VPs
	}
	return (s.VPs + procs - 1) / procs
}

// env resolves the toolchain/OS pair the run executes under.
func (s *Spec) env() (core.Toolchain, core.OS) {
	if s.EnvPolicy == EnvExplicit {
		return s.Toolchain, s.OS
	}
	tc, osEnv := core.Bridges2Env()
	if s.Tweaks.OldOrPatchedLinker {
		osEnv.OldOrPatchedLinker = true
	}
	if s.Tweaks.PatchedGlibc {
		osEnv.PatchedGlibc = true
	}
	if s.Tweaks.MPCToolchain {
		tc.MPCPatched = true
	}
	if s.EnvPolicy == EnvAdjust {
		switch s.kind() {
		case core.KindPIPglobals:
			if s.ranksPerProc() > 12 {
				osEnv.PatchedGlibc = true
			}
		case core.KindSwapglobals:
			osEnv.OldOrPatchedLinker = true
		case core.KindMPCPrivatize:
			tc.MPCPatched = true
		}
	}
	return tc, osEnv
}

// Validate checks the Spec as a whole and returns a *ValidationError
// carrying one FieldError per problem, or nil.
func (s *Spec) Validate() error {
	var errs []FieldError
	add := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if err := s.Machine.Validate(); err != nil {
		add("Machine", "%v", err)
	}
	if s.VPs <= 0 {
		add("VPs", "must be positive, got %d", s.VPs)
	}

	kind := s.kind()
	caps := s.capabilities()
	if caps.DisplayName == "" {
		add("Method", "unknown privatization method %d", int(kind))
		caps = core.Capabilities{}
	}

	// A Spec with neither Workload nor Program is still valid for
	// Config() — callers like the fault-tolerance supervisor construct
	// the program per attempt — but Build() requires one of the two.
	switch {
	case s.Workload != "" && s.Program != nil:
		add("Workload", "mutually exclusive with Program; set exactly one")
	case s.Workload != "":
		if _, ok := LookupWorkload(s.Workload); !ok {
			add("Workload", "unknown workload %q (try %s)",
				s.Workload, strings.Join(WorkloadNames(), ", "))
		}
	}

	if s.Balancer != nil && caps.DisplayName != "" && !caps.SupportsMigration {
		add("Balancer", "method %s does not support migration; a load balancer cannot move its ranks", kind)
	}
	if caps.DisplayName != "" && !caps.SupportsSMP && s.Machine.PEsPerProc > 1 {
		add("Machine", "method %s does not support SMP mode (%d PEs per process)", kind, s.Machine.PEsPerProc)
	}
	if s.Placement != nil && len(s.Placement) != s.VPs {
		add("Placement", "has %d entries, want one per VP (%d)", len(s.Placement), s.VPs)
	}
	if s.Churn != nil {
		if err := s.Churn.Validate(); err != nil {
			add("Churn", "%v", err)
		}
		if s.Churn.Enabled() {
			if s.Checkpoint == nil || s.Checkpoint.Interval <= 0 {
				add("Churn", "elastic membership changes need a checkpoint policy to drain through")
			}
			if caps.DisplayName != "" && !caps.SupportsMigration {
				add("Churn", "method %s does not support migration; ranks cannot move when the machine reshapes", kind)
			}
		}
	}
	if s.SimWorkers < 0 {
		add("SimWorkers", "must be non-negative, got %d", s.SimWorkers)
	}

	// Environment requirements the resolved env cannot meet. Under
	// EnvAdjust these are satisfied by construction; under EnvBridges2
	// and EnvExplicit the combination is a user error worth naming
	// before the engine rejects it.
	tc, osEnv := s.env()
	if caps.DisplayName != "" {
		switch kind {
		case core.KindSwapglobals:
			if !osEnv.OldOrPatchedLinker {
				add("Method", "swapglobals needs an old or patched linker (ld <= 2.23)")
			}
		case core.KindMPCPrivatize:
			if !tc.MPCPatched {
				add("Method", "fmpc-privatize needs an MPC-patched compiler")
			}
		case core.KindPIPglobals:
			if !osEnv.PatchedGlibc && s.ranksPerProc() > 12 {
				add("Method", "pipglobals beyond 12 ranks per process needs the patched glibc (%d ranks/process)", s.ranksPerProc())
			}
		case core.KindFSglobals:
			if !osEnv.SharedFS {
				add("Method", "fsglobals needs a shared filesystem")
			}
		case core.KindTLSglobals:
			if !tc.SupportsTLSSegRefs {
				add("Method", "tlsglobals needs -mno-tls-direct-seg-refs compiler support")
			}
		}
	}

	if len(errs) > 0 {
		return &ValidationError{Errs: errs}
	}
	return nil
}

// Config validates the Spec and lowers it to the engine configuration.
func (s *Spec) Config() (ampi.Config, error) {
	if err := s.Validate(); err != nil {
		return ampi.Config{}, err
	}
	tc, osEnv := s.env()
	return ampi.Config{
		Machine:    s.Machine,
		VPs:        s.VPs,
		Privatize:  s.kind(),
		Method:     s.MethodImpl,
		Toolchain:  tc,
		OS:         osEnv,
		StackSize:  s.StackSize,
		Balancer:   s.Balancer,
		Trigger:    s.Trigger,
		Checkpoint: s.Checkpoint,
		Placement:  s.Placement,
		Tracer:     s.Tracer,
		SimWorkers: s.SimWorkers,
	}, nil
}

// Built is a constructed, not-yet-run world.
type Built struct {
	World *ampi.World
	// Report, when the Spec named a registered workload, prints the
	// workload's collected output; nil for explicit Programs or
	// workloads with nothing to report.
	Report func()
}

// Build validates the Spec, resolves its workload, and constructs the
// world (from the Restart snapshot when one is set).
func (s *Spec) Build() (*Built, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	prog := s.Program
	var report func()
	if prog == nil {
		if s.Workload == "" {
			return nil, &ValidationError{Errs: []FieldError{{
				Field: "Workload",
				Msg: fmt.Sprintf("no workload: name one of %s or set Program",
					strings.Join(WorkloadNames(), ", ")),
			}}}
		}
		wl, _ := LookupWorkload(s.Workload) // existence pinned by Config's Validate
		p := s.WorkloadParams
		p.HasLB = s.Balancer != nil
		prog, report = wl.New(p)
	}
	var w *ampi.World
	if s.Restart != nil {
		w, err = ampi.NewWorldFromCheckpoint(cfg, prog, s.Restart)
	} else {
		w, err = ampi.NewWorld(cfg, prog)
	}
	if err != nil {
		return nil, err
	}
	return &Built{World: w, Report: report}, nil
}

// Run builds the world and runs it to completion.
func (s *Spec) Run() (*ampi.World, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	if err := b.World.Run(); err != nil {
		return nil, err
	}
	return b.World, nil
}

// RunElastic runs the scenario under its Churn schedule via the
// elastic supervisor: the spec compiles to a deterministic membership
// plan and the job drains, reshapes, and restarts across every
// arrival and eviction. Requires a named Workload (each restart
// attempt needs a fresh program instance) and, when churn is enabled,
// a Checkpoint policy. The returned report function prints the final
// attempt's workload output, mirroring Built.Report.
func (s *Spec) RunElastic() (*ft.ElasticReport, func(), error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, nil, err
	}
	if s.Program != nil {
		return nil, nil, &ValidationError{Errs: []FieldError{{
			Field: "Program",
			Msg:   "elastic runs restart the program across membership changes; name a registered Workload instead",
		}}}
	}
	if s.Workload == "" {
		return nil, nil, &ValidationError{Errs: []FieldError{{
			Field: "Workload",
			Msg: fmt.Sprintf("no workload: name one of %s",
				strings.Join(WorkloadNames(), ", ")),
		}}}
	}
	wl, _ := LookupWorkload(s.Workload) // existence pinned by Config's Validate
	params := s.WorkloadParams
	params.HasLB = s.Balancer != nil
	var report func()
	job := ft.ElasticJob{
		Config: cfg,
		Program: func() *ampi.Program {
			p, r := wl.New(params)
			report = r
			return p
		},
	}
	if s.Churn != nil {
		job.Churn = s.Churn.Compile(s.Machine.Nodes)
	}
	rep, err := ft.RunElastic(job)
	if err != nil {
		return rep, nil, err
	}
	return rep, report, nil
}
