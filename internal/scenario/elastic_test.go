package scenario_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/scenario"
	"provirt/internal/sim"
)

func churnSpec() *ft.ChurnSpec {
	// Two evictions at most (MaxEvents) so a 3-node job never shrinks
	// past its last node; the 1s notice always reaches a consistency
	// point, so every change drains.
	return &ft.ChurnSpec{
		Seed:          7,
		EvictionEvery: 20 * sim.Time(time.Millisecond),
		Notice:        sim.Time(time.Second),
		Horizon:       400 * sim.Time(time.Millisecond),
		MaxEvents:     2,
	}
}

func elasticSpec() scenario.Spec {
	return scenario.Spec{
		Machine:        shape(3, 1, 2),
		VPs:            12,
		Method:         core.KindPIEglobals,
		Workload:       "jacobi",
		WorkloadParams: scenario.WorkloadParams{Quick: true},
		Checkpoint: &ampi.CheckpointPolicy{
			Target:   ampi.TargetFS,
			Dir:      "/scratch/elastic",
			Interval: 5 * sim.Time(time.Millisecond),
		},
		Churn: churnSpec(),
	}
}

func TestValidateChurnNeedsCheckpoint(t *testing.T) {
	sp := elasticSpec()
	sp.Checkpoint = nil
	wantField(t, sp.Validate(), "Churn", "checkpoint policy")
}

func TestValidateChurnNeedsMigratableMethod(t *testing.T) {
	sp := elasticSpec()
	sp.Machine = shape(3, 1, 1)
	sp.Method = core.KindPIPglobals
	wantField(t, sp.Validate(), "Churn", "does not support migration")
}

func TestValidateChurnBadSpec(t *testing.T) {
	sp := elasticSpec()
	sp.Churn = &ft.ChurnSpec{EvictionEvery: sim.Time(time.Millisecond)} // no horizon
	wantField(t, sp.Validate(), "Churn", "horizon")
}

func TestChurnJSONRoundTripAndHash(t *testing.T) {
	sp := elasticSpec()
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back scenario.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Churn == nil || *back.Churn != *sp.Churn {
		t.Errorf("churn did not round-trip: %+v vs %+v", back.Churn, sp.Churn)
	}
	h1, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash changed across round trip: %s vs %s", h1, h2)
	}
	// Churn is output-determining: the same Spec without it hashes
	// differently.
	calm := sp
	calm.Churn = nil
	hc, err := calm.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == h1 {
		t.Error("churn-free spec shares the churned spec's hash")
	}
	// A *disabled* churn spec (nil) keeps the pre-elasticity canonical
	// bytes: no churn lines appear at all.
	canon, err := calm.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "churn.") {
		t.Errorf("churn-free canonical form mentions churn:\n%s", canon)
	}
}

func TestRunElasticExecutesChurn(t *testing.T) {
	sp := elasticSpec()
	rep, report, err := sp.RunElastic()
	if err != nil {
		t.Fatal(err)
	}
	if rep.World == nil {
		t.Fatal("no completed world")
	}
	if report == nil {
		t.Error("jacobi workload should come with a report function")
	}
	if rep.Epochs() == 0 {
		t.Fatalf("churn schedule executed no membership changes (attempts %d)", rep.Attempts)
	}
	for i, rz := range rep.Resizes {
		if !rz.Drained {
			t.Errorf("resize %d not drained despite a 1s notice: %+v", i, rz)
		}
	}
	if rep.NodeSeconds <= 0 {
		t.Error("node-seconds not accounted")
	}
}

func TestRunElasticDeterministic(t *testing.T) {
	run := func() (sim.Time, sim.Time, int) {
		sp := elasticSpec()
		rep, _, err := sp.RunElastic()
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalTime, rep.NodeSeconds, rep.Epochs()
	}
	t1, n1, e1 := run()
	t2, n2, e2 := run()
	if t1 != t2 || n1 != n2 || e1 != e2 {
		t.Errorf("elastic scenario not deterministic: (%v, %v, %d) vs (%v, %v, %d)", t1, n1, e1, t2, n2, e2)
	}
}

func TestRunElasticRequiresWorkload(t *testing.T) {
	sp := elasticSpec()
	sp.Workload = ""
	sp.Program = nil
	if _, _, err := sp.RunElastic(); err == nil {
		t.Error("RunElastic accepted a spec with no workload")
	}
	sp2 := elasticSpec()
	sp2.Workload = ""
	sp2.Program = &ampi.Program{}
	if _, _, err := sp2.RunElastic(); err == nil {
		t.Error("RunElastic accepted an explicit Program")
	}
}
