package scenario_test

import (
	"errors"
	"strings"
	"testing"

	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/workloads/synth"
)

func shape(nodes, procs, pes int) machine.Config {
	return machine.Config{Nodes: nodes, ProcsPerNode: procs, PEsPerProc: pes}
}

// fields extracts the Field names of a *ValidationError, failing the
// test if err is nil or of another type.
func fields(t *testing.T, err error) []string {
	t.Helper()
	var ve *scenario.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	var out []string
	for _, fe := range ve.Errs {
		out = append(out, fe.Field)
	}
	return out
}

func wantField(t *testing.T, err error, field, substr string) {
	t.Helper()
	var ve *scenario.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T: %v", err, err)
	}
	for _, fe := range ve.Errs {
		if fe.Field == field && strings.Contains(fe.Msg, substr) {
			return
		}
	}
	t.Fatalf("no FieldError on %q containing %q in %v", field, substr, ve)
}

func TestValidateHappyPathAndRun(t *testing.T) {
	sp := scenario.Spec{
		Machine:  shape(1, 1, 1),
		VPs:      2,
		Method:   core.KindPIEglobals,
		Workload: "hello",
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	built, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.Report == nil {
		t.Error("hello workload should come with a report function")
	}
	if err := built.World.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateZeroVPs(t *testing.T) {
	sp := scenario.Spec{Machine: shape(1, 1, 1), Method: core.KindTLSglobals, Workload: "empty"}
	wantField(t, sp.Validate(), "VPs", "must be positive")
}

func TestValidateBadMachine(t *testing.T) {
	sp := scenario.Spec{Machine: shape(0, 1, 1), VPs: 2, Method: core.KindTLSglobals, Workload: "empty"}
	wantField(t, sp.Validate(), "Machine", "")
}

func TestValidateUnknownMethod(t *testing.T) {
	sp := scenario.Spec{Machine: shape(1, 1, 1), VPs: 2, Method: core.Kind(99), Workload: "empty"}
	wantField(t, sp.Validate(), "Method", "unknown privatization method")
}

func TestValidateUnknownWorkload(t *testing.T) {
	sp := scenario.Spec{Machine: shape(1, 1, 1), VPs: 2, Method: core.KindTLSglobals, Workload: "nope"}
	err := sp.Validate()
	wantField(t, err, "Workload", `unknown workload "nope"`)
	// The message lists the registered names so the user can fix the
	// flag without reading source.
	if !strings.Contains(err.Error(), "hello") {
		t.Errorf("unknown-workload error should list registered names: %v", err)
	}
}

func TestValidateWorkloadAndProgramMutuallyExclusive(t *testing.T) {
	sp := scenario.Spec{
		Machine:  shape(1, 1, 1),
		VPs:      2,
		Method:   core.KindTLSglobals,
		Workload: "empty",
		Program:  synth.Empty(),
	}
	wantField(t, sp.Validate(), "Workload", "mutually exclusive")
}

func TestValidateNonMigratableMethodWithBalancer(t *testing.T) {
	sp := scenario.Spec{
		Machine:  shape(1, 1, 2),
		VPs:      4,
		Method:   core.KindPIPglobals,
		Workload: "empty",
		Balancer: lb.GreedyRefineLB{},
	}
	wantField(t, sp.Validate(), "Balancer", "does not support migration")
}

func TestValidateNonSMPMethodInSMPMode(t *testing.T) {
	sp := scenario.Spec{
		Machine:   shape(1, 1, 2),
		VPs:       4,
		Method:    core.KindSwapglobals,
		EnvPolicy: scenario.EnvBridges2,
		Tweaks:    scenario.EnvTweaks{OldOrPatchedLinker: true},
		Workload:  "empty",
	}
	wantField(t, sp.Validate(), "Machine", "does not support SMP")
}

func TestValidateSwapglobalsNeedsOldLinker(t *testing.T) {
	sp := scenario.Spec{
		Machine:   shape(1, 1, 1),
		VPs:       2,
		Method:    core.KindSwapglobals,
		EnvPolicy: scenario.EnvBridges2,
		Workload:  "empty",
	}
	wantField(t, sp.Validate(), "Method", "old or patched linker")
	sp.Tweaks.OldOrPatchedLinker = true
	if err := sp.Validate(); err != nil {
		t.Errorf("swapglobals with -oldlinker tweak rejected: %v", err)
	}
	// The harness policy adjusts the environment automatically.
	sp.Tweaks.OldOrPatchedLinker = false
	sp.EnvPolicy = scenario.EnvAdjust
	if err := sp.Validate(); err != nil {
		t.Errorf("swapglobals under EnvAdjust rejected: %v", err)
	}
}

func TestValidateMPCNeedsPatchedCompiler(t *testing.T) {
	sp := scenario.Spec{
		Machine:   shape(1, 1, 1),
		VPs:       2,
		Method:    core.KindMPCPrivatize,
		EnvPolicy: scenario.EnvBridges2,
		Workload:  "empty",
	}
	wantField(t, sp.Validate(), "Method", "MPC-patched compiler")
	sp.Tweaks.MPCToolchain = true
	if err := sp.Validate(); err != nil {
		t.Errorf("fmpc-privatize with -mpc-compiler tweak rejected: %v", err)
	}
}

func TestValidatePIPglobalsNamespaceLimit(t *testing.T) {
	// 16 ranks in one process exceeds the stock 12-namespace dlmopen
	// limit; the launcher policy reports it, the harness policy patches
	// glibc automatically.
	sp := scenario.Spec{
		Machine:   shape(1, 1, 1),
		VPs:       16,
		Method:    core.KindPIPglobals,
		EnvPolicy: scenario.EnvBridges2,
		Workload:  "empty",
	}
	wantField(t, sp.Validate(), "Method", "patched glibc")
	sp.EnvPolicy = scenario.EnvAdjust
	if err := sp.Validate(); err != nil {
		t.Errorf("pipglobals under EnvAdjust rejected: %v", err)
	}
	// Under the limit, the stock environment is fine.
	sp.EnvPolicy = scenario.EnvBridges2
	sp.VPs = 8
	if err := sp.Validate(); err != nil {
		t.Errorf("pipglobals with 8 ranks/process rejected: %v", err)
	}
}

func TestValidatePlacementLength(t *testing.T) {
	sp := scenario.Spec{
		Machine:   shape(1, 1, 1),
		VPs:       4,
		Method:    core.KindTLSglobals,
		Workload:  "empty",
		Placement: []int{0, 0},
	}
	wantField(t, sp.Validate(), "Placement", "want one per VP")
}

func TestValidateAggregatesAllErrors(t *testing.T) {
	sp := scenario.Spec{
		Machine:  shape(0, 1, 1),
		VPs:      0,
		Method:   core.Kind(99),
		Workload: "nope",
	}
	got := fields(t, sp.Validate())
	want := map[string]bool{"Machine": true, "VPs": true, "Method": true, "Workload": true}
	for _, f := range got {
		delete(want, f)
	}
	if len(want) != 0 {
		t.Errorf("missing FieldErrors for %v (got fields %v)", want, got)
	}
}

func TestConfigWithoutWorkloadIsValidButBuildRejects(t *testing.T) {
	// A Config-only Spec (the fault-tolerance supervisor builds the
	// program per attempt) needs neither Workload nor Program...
	sp := scenario.Spec{Machine: shape(1, 1, 1), VPs: 2, Method: core.KindTLSglobals}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatalf("Config-only spec rejected: %v", err)
	}
	if cfg.VPs != 2 || cfg.Privatize != core.KindTLSglobals {
		t.Errorf("lowered config wrong: %+v", cfg)
	}
	// ...but Build has nothing to run.
	if _, err := sp.Build(); err == nil {
		t.Fatal("Build accepted a spec with no workload and no program")
	} else {
		wantField(t, err, "Workload", "no workload")
	}
}

func TestConfigMatchesEngineDefaults(t *testing.T) {
	// The Spec lowers the Bridges-2 environment explicitly; the engine
	// defaults a zero environment to the same values, so both routes
	// must produce value-identical configs (this is what keeps the
	// refactored experiments bit-identical).
	sp := scenario.Spec{Machine: shape(1, 1, 1), VPs: 2, Method: core.KindPIEglobals}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	tc, osEnv := core.Bridges2Env()
	if cfg.Toolchain != tc || cfg.OS != osEnv {
		t.Errorf("Spec env differs from Bridges2Env: %+v / %+v", cfg.Toolchain, cfg.OS)
	}
	if cfg.Machine != shape(1, 1, 1) || cfg.VPs != 2 || cfg.Privatize != core.KindPIEglobals ||
		cfg.StackSize != 0 || cfg.Balancer != nil || cfg.Checkpoint != nil || cfg.Placement != nil {
		t.Errorf("Spec config carries unexpected values: %+v", cfg)
	}
}

func TestParseBalancer(t *testing.T) {
	for _, name := range scenario.BalancerNames() {
		s, err := scenario.ParseBalancer(name, 4)
		if err != nil || s == nil {
			t.Errorf("ParseBalancer(%q) = %v, %v", name, s, err)
		}
	}
	if s, err := scenario.ParseBalancer("", 4); err != nil || s != nil {
		t.Errorf("empty balancer should be nil, nil; got %v, %v", s, err)
	}
	if _, err := scenario.ParseBalancer("zigzag", 4); err == nil {
		t.Error("unknown balancer accepted")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := scenario.WorkloadNames()
	for _, want := range []string{"hello", "ping", "empty", "jacobi", "adcirc", "amr"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %q not registered (have %v)", want, names)
		}
	}
	if len(scenario.Workloads()) != len(names) {
		t.Error("Workloads and WorkloadNames disagree")
	}
}
