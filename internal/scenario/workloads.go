package scenario

import (
	"fmt"
	"sort"

	"provirt/internal/ampi"
	"provirt/internal/workloads/adcirc"
	"provirt/internal/workloads/amr"
	"provirt/internal/workloads/jacobi"
	"provirt/internal/workloads/synth"
)

// WorkloadParams parameterizes a registered workload's constructor.
type WorkloadParams struct {
	// HasLB reports whether the run has a load balancer; workloads
	// with a periodic AMPI_Migrate step skip it when nothing would
	// rebalance. Build sets this from the Spec's Balancer.
	HasLB bool
	// Quick selects a reduced problem size for smoke runs.
	Quick bool
}

// Workload is a registered program: a name launchers select by, a
// one-line description, and a constructor returning the program plus
// an optional report function that prints the collected output after
// the run.
type Workload struct {
	Name        string
	Description string
	New         func(p WorkloadParams) (*ampi.Program, func())
}

var workloadRegistry = map[string]Workload{}

// RegisterWorkload adds a workload to the registry; registering a
// duplicate name panics (registration is init-time wiring).
func RegisterWorkload(w Workload) {
	if w.Name == "" || w.New == nil {
		panic("scenario: workload needs a name and a constructor")
	}
	if _, dup := workloadRegistry[w.Name]; dup {
		panic(fmt.Sprintf("scenario: workload %q registered twice", w.Name))
	}
	workloadRegistry[w.Name] = w
}

// LookupWorkload finds a registered workload by name.
func LookupWorkload(name string) (Workload, bool) {
	w, ok := workloadRegistry[name]
	return w, ok
}

// Workloads returns every registered workload sorted by name.
func Workloads() []Workload {
	out := make([]Workload, 0, len(workloadRegistry))
	for _, w := range workloadRegistry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WorkloadNames returns the sorted registered names.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloadRegistry))
	for name := range workloadRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterWorkload(Workload{
		Name:        "hello",
		Description: "MPI hello world storing its rank in a privatized global (Fig. 2/3)",
		New: func(WorkloadParams) (*ampi.Program, func()) {
			var results []synth.HelloResult
			prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
			return prog, func() {
				sort.Slice(results, func(i, j int) bool { return results[i].VP < results[j].VP })
				for _, hr := range results {
					fmt.Printf("rank: %d\n", hr.Printed)
				}
			}
		},
	})
	RegisterWorkload(Workload{
		Name:        "ping",
		Description: "two-ULT context-switch microbenchmark (Fig. 6)",
		New: func(WorkloadParams) (*ampi.Program, func()) {
			return synth.Ping(), func() {
				fmt.Printf("ping: %d context switches between two user-level threads\n", synth.PingCount)
			}
		},
	})
	RegisterWorkload(Workload{
		Name:        "empty",
		Description: "init/finalize only; measures startup (Fig. 5)",
		New: func(WorkloadParams) (*ampi.Program, func()) {
			return synth.Empty(), nil
		},
	})
	RegisterWorkload(Workload{
		Name:        "jacobi",
		Description: "Jacobi-3D stencil with privatized inner-loop variables (Fig. 7)",
		New: func(p WorkloadParams) (*ampi.Program, func()) {
			cfg := jacobi.DefaultConfig()
			if p.Quick {
				cfg.NX, cfg.NY, cfg.NZ, cfg.Iters = 12, 12, 12, 4
			}
			var results []jacobi.Result
			prog := jacobi.New(cfg, func(r jacobi.Result) { results = append(results, r) })
			return prog, func() {
				var resid float64
				var accesses uint64
				for _, r := range results {
					resid = r.Residual
					accesses += r.Accesses
				}
				fmt.Printf("jacobi3d: %dx%dx%d grid, %d iterations, residual %.6g, %d privatized accesses\n",
					cfg.NX, cfg.NY, cfg.NZ, cfg.Iters, resid, accesses)
			}
		},
	})
	RegisterWorkload(Workload{
		Name:        "adcirc",
		Description: "ADCIRC storm-surge surrogate with dynamic load imbalance (§4.6)",
		New: func(p WorkloadParams) (*ampi.Program, func()) {
			cfg := adcirc.DefaultConfig()
			if p.Quick {
				cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
			}
			if !p.HasLB {
				cfg.LBPeriod = 0
			}
			var volume uint64
			prog := adcirc.New(cfg, func(r adcirc.Result) { volume += r.WetCellSteps })
			return prog, func() {
				fmt.Printf("adcirc: %dx%d grid, %d steps, total wet-cell updates %d (oracle %d)\n",
					cfg.Width, cfg.Height, cfg.Steps, volume, adcirc.TotalWetCellSteps(cfg))
			}
		},
	})
	RegisterWorkload(Workload{
		Name:        "amr",
		Description: "block-structured AMR chasing a shock front with regrid LB",
		New: func(p WorkloadParams) (*ampi.Program, func()) {
			cfg := amr.DefaultConfig()
			if p.Quick {
				cfg.BlocksX, cfg.BlocksY, cfg.Steps, cfg.RegridEvery = 8, 8, 8, 4
			}
			if !p.HasLB {
				cfg.RegridEvery = 0
			}
			var updates uint64
			prog := amr.New(cfg, func(r amr.Result) { updates += r.CellUpdates })
			return prog, func() {
				fmt.Printf("amr: %dx%d blocks, %d steps, fine-cell updates %d (oracle %d)\n",
					cfg.BlocksX, cfg.BlocksY, cfg.Steps, updates, amr.TotalCellUpdates(cfg))
			}
		},
	})
}
