package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// fullSpec exercises every declarative field at once.
func fullSpec() Spec {
	return Spec{
		Machine:        machine.Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2, Seed: 7},
		VPs:            16,
		Method:         core.KindTLSglobals,
		EnvPolicy:      EnvAdjust,
		Tweaks:         EnvTweaks{PatchedGlibc: true},
		Workload:       "adcirc",
		WorkloadParams: WorkloadParams{HasLB: true, Quick: true},
		Balancer:       lb.HierarchicalLB{PEsPerNode: 4},
		Checkpoint: &ampi.CheckpointPolicy{
			Target:   ampi.TargetBuddy,
			Interval: sim.Time(50 * time.Millisecond),
		},
		Placement:  []int{0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7},
		StackSize:  1 << 20,
		SimWorkers: 4,
	}
}

// Satellite: marshal -> unmarshal -> re-marshal is byte-identical and
// Validate passes on the round-tripped value, for every registered
// workload's default Spec (plus a fully-populated Spec).
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := map[string]Spec{"full": fullSpec()}
	for _, name := range WorkloadNames() {
		specs["default-"+name] = DefaultSpec(name)
	}
	for name, sp := range specs {
		first, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Spec
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: round trip not byte-identical:\n first: %s\nsecond: %s", name, first, second)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped spec fails Validate: %v", name, err)
		}
		h1, err := sp.Hash()
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatalf("%s: round-tripped hash: %v", name, err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash changed across round trip: %s vs %s", name, h1, h2)
		}
	}
}

func TestSpecUnmarshalRejectsUnknownFields(t *testing.T) {
	var sp Spec
	err := json.Unmarshal([]byte(`{"machine":{"nodes":1,"procs_per_node":1,"pes_per_proc":1},"vps":4,"method":"pieglobals","env_policy":"adjust","workloadd":"empty"}`), &sp)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestSpecUnmarshalBadValues(t *testing.T) {
	cases := map[string]string{
		"method":     `{"machine":{"nodes":1,"procs_per_node":1,"pes_per_proc":1},"vps":4,"method":"nope","env_policy":"adjust"}`,
		"env_policy": `{"machine":{"nodes":1,"procs_per_node":1,"pes_per_proc":1},"vps":4,"method":"pieglobals","env_policy":"nope"}`,
		"balancer":   `{"machine":{"nodes":1,"procs_per_node":1,"pes_per_proc":1},"vps":4,"method":"pieglobals","env_policy":"adjust","balancer":"nope"}`,
		"checkpoint": `{"machine":{"nodes":1,"procs_per_node":1,"pes_per_proc":1},"vps":4,"method":"pieglobals","env_policy":"adjust","checkpoint":{"target":"nope"}}`,
	}
	for name, doc := range cases {
		var sp Spec
		if err := json.Unmarshal([]byte(doc), &sp); err == nil {
			t.Errorf("%s: bad value accepted", name)
		}
	}
}

func TestSpecMarshalRejectsNonDeclarative(t *testing.T) {
	sp := DefaultSpec("empty")
	sp.Tracer = trace.NewRecorder()
	if _, err := json.Marshal(sp); err == nil {
		t.Fatal("non-declarative spec marshaled")
	}
	if _, err := sp.Hash(); err == nil {
		t.Fatal("non-declarative spec hashed")
	}
	var nde *NotDeclarativeError
	_, err := sp.Canonical()
	if !errors.As(err, &nde) || len(nde.Fields) != 1 || nde.Fields[0] != "Tracer" {
		t.Fatalf("want NotDeclarativeError{Tracer}, got %v", err)
	}
}

// Golden hashes: the canonical encoding is hand-written field by
// field, so renaming or reordering Spec's Go fields cannot change
// these. If this test fails, the canonical *format* changed — that
// invalidates every cached result keyed by an old hash, so bump the
// canon version line deliberately rather than silently.
func TestSpecHashGolden(t *testing.T) {
	golden := map[string]string{
		"empty-default": "6a6c7c453ed6d6d604787cdc2e52f7bbef0839a14033077166ea891aa1fe071c",
		"full":          "5bf5cb8e117dd6491e1748d462ae86a9242bfb5722a77492b733d666e30b9956",
	}

	specs := map[string]Spec{
		"empty-default": DefaultSpec("empty"),
		"full":          fullSpec(),
	}
	for name, sp := range specs {
		h, err := sp.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h != golden[name] {
			canon, _ := sp.Canonical()
			t.Errorf("%s: hash %s, want %s\ncanonical form:\n%s", name, h, golden[name], canon)
		}
	}
}

// The canonical form resolves the environment, so an EnvAdjust Spec
// and the equivalent EnvExplicit Spec are the same content; and the
// output-neutral SimWorkers knob never perturbs the hash.
func TestSpecHashSemanticEquivalence(t *testing.T) {
	adjusted := DefaultSpec("empty")
	tc, osEnv := core.Bridges2Env()
	explicit := adjusted
	explicit.EnvPolicy = EnvExplicit
	explicit.Toolchain = tc
	explicit.OS = osEnv

	ha, err := adjusted.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != he {
		t.Errorf("EnvAdjust and equivalent EnvExplicit hash differently: %s vs %s", ha, he)
	}

	sharded := adjusted
	sharded.SimWorkers = 8
	hs, err := sharded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hs != ha {
		t.Errorf("SimWorkers changed the hash: %s vs %s", hs, ha)
	}

	other := adjusted
	other.VPs = 8
	ho, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ho == ha {
		t.Error("different VPs hash identically")
	}
}

func TestDefaultSpecValidates(t *testing.T) {
	for _, name := range WorkloadNames() {
		sp := DefaultSpec(name)
		if err := sp.Validate(); err != nil {
			t.Errorf("DefaultSpec(%q): %v", name, err)
		}
	}
}

func TestCanonicalMentionsNoGoFieldNames(t *testing.T) {
	// The canonical form must not be derived from Go reflection: a
	// struct field rename would then change hashes. Cheap guard: the
	// encoding uses lowercase tags, never the exported field names.
	sp := fullSpec()
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, goName := range []string{"VPs=", "Machine.", "StackSize", "WorkloadParams", "EnvPolicy"} {
		if strings.Contains(string(canon), goName) {
			t.Errorf("canonical form leaks Go field name %q:\n%s", goName, canon)
		}
	}
}
