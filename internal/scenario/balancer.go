package scenario

import (
	"fmt"
	"strings"

	"provirt/internal/lb"
)

// BalancerNames lists the strategies ParseBalancer accepts, in help
// order.
func BalancerNames() []string {
	return []string{"greedy", "greedyrefine", "hierarchical", "rotate", "null"}
}

// ParseBalancer maps a launcher flag value to a strategy. The empty
// string selects no balancer; pesPerNode parameterizes the
// hierarchical strategy's node grouping.
func ParseBalancer(name string, pesPerNode int) (lb.Strategy, error) {
	switch name {
	case "":
		return nil, nil
	case "greedy":
		return lb.GreedyLB{}, nil
	case "greedyrefine":
		return lb.GreedyRefineLB{}, nil
	case "hierarchical":
		return lb.HierarchicalLB{PEsPerNode: pesPerNode}, nil
	case "rotate":
		return lb.RotateLB{}, nil
	case "null":
		return lb.NullLB{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown balancer %q (try %s)",
			name, strings.Join(BalancerNames(), ", "))
	}
}
