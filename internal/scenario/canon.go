// Canonical encoding and content addressing for Specs.
//
// A Spec whose fields are all *declarative* — expressible as data, no
// injected Go values — can be written to JSON, read back, and hashed.
// Two encodings live here and they serve different masters:
//
//   - The JSON document (MarshalJSON/UnmarshalJSON) is the wire format
//     the serve API accepts and the launchers emit. It is stable,
//     human-writable, and round-trips byte-identically: marshal →
//     unmarshal → re-marshal reproduces the same bytes.
//   - The canonical form (Canonical) is the hashing pre-image: a flat
//     list of `tag=value` lines appended in a fixed, hand-written
//     order. Because every line is written explicitly, renaming or
//     reordering the Go struct fields of Spec cannot change the bytes
//     (pinned by a golden hash test). Hash is SHA-256 over it.
//
// The canonical form captures exactly the fields that determine a
// run's output. Knobs that are guaranteed output-neutral — SimWorkers
// (byte-identical at any setting, see sim.ParallelEngine) and Tracer
// (nil-hook discipline) — are deliberately excluded, so e.g. a serial
// and a sharded run of the same Spec share one hash and one cache
// entry. The environment is hashed *resolved* (after EnvPolicy and
// Tweaks are applied), so an EnvAdjust Spec and the equivalent
// EnvExplicit Spec are the same content.

package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
)

// NotDeclarativeError reports Spec fields that hold injected Go values
// (programs, method instances, tracers...) and therefore cannot be
// serialized or hashed.
type NotDeclarativeError struct {
	Fields []string
}

func (e *NotDeclarativeError) Error() string {
	return "scenario: spec is not declarative: " + strings.Join(e.Fields, ", ") +
		" cannot be serialized"
}

// declarativeErr returns nil when every Spec field is expressible as
// data, else a NotDeclarativeError naming the offenders.
func (s *Spec) declarativeErr() error {
	var fields []string
	if s.MethodImpl != nil {
		fields = append(fields, "MethodImpl")
	}
	if s.Program != nil {
		fields = append(fields, "Program")
	}
	if s.Tracer != nil {
		fields = append(fields, "Tracer")
	}
	if s.Trigger != nil {
		fields = append(fields, "Trigger")
	}
	if s.Restart != nil {
		fields = append(fields, "Restart")
	}
	if s.Machine.Cost != nil {
		fields = append(fields, "Machine.Cost")
	}
	if s.Balancer != nil {
		if _, _, err := balancerName(s.Balancer); err != nil {
			fields = append(fields, "Balancer")
		}
	}
	if len(fields) > 0 {
		return &NotDeclarativeError{Fields: fields}
	}
	return nil
}

// balancerName maps a strategy instance back to its ParseBalancer
// name (and the hierarchical strategy's node-grouping parameter).
func balancerName(b lb.Strategy) (name string, pesPerNode int, err error) {
	switch v := b.(type) {
	case lb.GreedyLB:
		return "greedy", 0, nil
	case lb.GreedyRefineLB:
		return "greedyrefine", 0, nil
	case lb.HierarchicalLB:
		return "hierarchical", v.PEsPerNode, nil
	case lb.RotateLB:
		return "rotate", 0, nil
	case lb.NullLB:
		return "null", 0, nil
	default:
		return "", 0, fmt.Errorf("scenario: balancer %T has no registered name", b)
	}
}

// envPolicyName maps the policy to its wire name.
func envPolicyName(p EnvPolicy) (string, error) {
	switch p {
	case EnvAdjust:
		return "adjust", nil
	case EnvBridges2:
		return "bridges2", nil
	case EnvExplicit:
		return "explicit", nil
	default:
		return "", fmt.Errorf("scenario: unknown env policy %d", int(p))
	}
}

// parseEnvPolicy is envPolicyName's inverse; the empty string selects
// the default policy (adjust).
func parseEnvPolicy(s string) (EnvPolicy, error) {
	switch s {
	case "", "adjust":
		return EnvAdjust, nil
	case "bridges2":
		return EnvBridges2, nil
	case "explicit":
		return EnvExplicit, nil
	default:
		return 0, fmt.Errorf("scenario: unknown env policy %q (want adjust, bridges2, or explicit)", s)
	}
}

// The wire document. Field tags are the format; Go names are
// incidental. Optional sub-objects are pointers with omitempty so a
// zero Spec marshals small and round-trips byte-identically.
type specDoc struct {
	Machine    machineDoc     `json:"machine"`
	VPs        int            `json:"vps"`
	Method     string         `json:"method"`
	EnvPolicy  string         `json:"env_policy"`
	Tweaks     *tweaksDoc     `json:"tweaks,omitempty"`
	Toolchain  *toolchainDoc  `json:"toolchain,omitempty"`
	OS         *osDoc         `json:"os,omitempty"`
	Workload   string         `json:"workload,omitempty"`
	Params     *paramsDoc     `json:"workload_params,omitempty"`
	Balancer   string         `json:"balancer,omitempty"`
	BalancerPE int            `json:"balancer_pes_per_node,omitempty"`
	Checkpoint *checkpointDoc `json:"checkpoint,omitempty"`
	Churn      *churnDoc      `json:"churn,omitempty"`
	Placement  []int          `json:"placement,omitempty"`
	StackSize  uint64         `json:"stack_size,omitempty"`
	SimWorkers int            `json:"sim_workers,omitempty"`
}

type machineDoc struct {
	Nodes        int    `json:"nodes"`
	ProcsPerNode int    `json:"procs_per_node"`
	PEsPerProc   int    `json:"pes_per_proc"`
	Seed         uint64 `json:"seed,omitempty"`
}

type tweaksDoc struct {
	OldOrPatchedLinker bool `json:"old_or_patched_linker,omitempty"`
	PatchedGlibc       bool `json:"patched_glibc,omitempty"`
	MPCToolchain       bool `json:"mpc_toolchain,omitempty"`
}

type toolchainDoc struct {
	Name               string `json:"name,omitempty"`
	SupportsTLSSegRefs bool   `json:"supports_tls_seg_refs,omitempty"`
	MPCPatched         bool   `json:"mpc_patched,omitempty"`
	PIE                bool   `json:"pie,omitempty"`
}

type osDoc struct {
	Kind               string `json:"kind,omitempty"`
	Glibc              bool   `json:"glibc,omitempty"`
	PatchedGlibc       bool   `json:"patched_glibc,omitempty"`
	OldOrPatchedLinker bool   `json:"old_or_patched_linker,omitempty"`
	SharedFS           bool   `json:"shared_fs,omitempty"`
}

type paramsDoc struct {
	HasLB bool `json:"has_lb,omitempty"`
	Quick bool `json:"quick,omitempty"`
}

type checkpointDoc struct {
	Target     string `json:"target"`
	Dir        string `json:"dir,omitempty"`
	IntervalNs int64  `json:"interval_ns,omitempty"`
}

type churnDoc struct {
	Seed            uint64 `json:"seed,omitempty"`
	ArrivalEveryNs  int64  `json:"arrival_every_ns,omitempty"`
	EvictionEveryNs int64  `json:"eviction_every_ns,omitempty"`
	NoticeNs        int64  `json:"notice_ns,omitempty"`
	HorizonNs       int64  `json:"horizon_ns,omitempty"`
	RollingEveryNs  int64  `json:"rolling_every_ns,omitempty"`
	RollingNodes    int    `json:"rolling_nodes,omitempty"`
	MaxEvents       int    `json:"max_events,omitempty"`
}

// doc lowers the Spec to its wire document, rejecting non-declarative
// Specs.
func (s *Spec) doc() (*specDoc, error) {
	if err := s.declarativeErr(); err != nil {
		return nil, err
	}
	policy, err := envPolicyName(s.EnvPolicy)
	if err != nil {
		return nil, err
	}
	d := &specDoc{
		Machine: machineDoc{
			Nodes:        s.Machine.Nodes,
			ProcsPerNode: s.Machine.ProcsPerNode,
			PEsPerProc:   s.Machine.PEsPerProc,
			Seed:         s.Machine.Seed,
		},
		VPs:        s.VPs,
		Method:     s.Method.String(),
		EnvPolicy:  policy,
		Workload:   s.Workload,
		Placement:  s.Placement,
		StackSize:  s.StackSize,
		SimWorkers: s.SimWorkers,
	}
	if s.Tweaks != (EnvTweaks{}) {
		d.Tweaks = &tweaksDoc{
			OldOrPatchedLinker: s.Tweaks.OldOrPatchedLinker,
			PatchedGlibc:       s.Tweaks.PatchedGlibc,
			MPCToolchain:       s.Tweaks.MPCToolchain,
		}
	}
	if s.Toolchain != (core.Toolchain{}) {
		d.Toolchain = &toolchainDoc{
			Name:               s.Toolchain.Name,
			SupportsTLSSegRefs: s.Toolchain.SupportsTLSSegRefs,
			MPCPatched:         s.Toolchain.MPCPatched,
			PIE:                s.Toolchain.PIE,
		}
	}
	if s.OS != (core.OS{}) {
		d.OS = &osDoc{
			Kind:               s.OS.Kind,
			Glibc:              s.OS.Glibc,
			PatchedGlibc:       s.OS.PatchedGlibc,
			OldOrPatchedLinker: s.OS.OldOrPatchedLinker,
			SharedFS:           s.OS.SharedFS,
		}
	}
	if s.WorkloadParams != (WorkloadParams{}) {
		d.Params = &paramsDoc{HasLB: s.WorkloadParams.HasLB, Quick: s.WorkloadParams.Quick}
	}
	if s.Balancer != nil {
		name, pes, err := balancerName(s.Balancer)
		if err != nil {
			return nil, err
		}
		d.Balancer, d.BalancerPE = name, pes
	}
	if s.Checkpoint != nil {
		d.Checkpoint = &checkpointDoc{
			Target:     s.Checkpoint.Target.String(),
			Dir:        s.Checkpoint.Dir,
			IntervalNs: int64(s.Checkpoint.Interval),
		}
	}
	if s.Churn != nil {
		d.Churn = &churnDoc{
			Seed:            s.Churn.Seed,
			ArrivalEveryNs:  int64(s.Churn.ArrivalEvery),
			EvictionEveryNs: int64(s.Churn.EvictionEvery),
			NoticeNs:        int64(s.Churn.Notice),
			HorizonNs:       int64(s.Churn.Horizon),
			RollingEveryNs:  int64(s.Churn.RollingEvery),
			RollingNodes:    s.Churn.RollingNodes,
			MaxEvents:       s.Churn.MaxEvents,
		}
	}
	return d, nil
}

// MarshalJSON encodes the declarative Spec as its wire document. Specs
// holding injected Go values (Program, MethodImpl, Tracer, Trigger,
// Restart, a custom cost model, an unregistered balancer) return a
// *NotDeclarativeError.
func (s Spec) MarshalJSON() ([]byte, error) {
	d, err := s.doc()
	if err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// UnmarshalJSON decodes the wire document into the Spec. Unknown
// fields are errors, so a typoed document fails loudly instead of
// silently running the defaults.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var d specDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return fmt.Errorf("scenario: spec document: %w", err)
	}
	policy, err := parseEnvPolicy(d.EnvPolicy)
	if err != nil {
		return err
	}
	var kind core.Kind
	if d.Method != "" {
		kind, err = core.ParseKind(d.Method)
		if err != nil {
			return err
		}
	}
	out := Spec{
		Machine: machine.Config{
			Nodes:        d.Machine.Nodes,
			ProcsPerNode: d.Machine.ProcsPerNode,
			PEsPerProc:   d.Machine.PEsPerProc,
			Seed:         d.Machine.Seed,
		},
		VPs:        d.VPs,
		Method:     kind,
		EnvPolicy:  policy,
		Workload:   d.Workload,
		Placement:  d.Placement,
		StackSize:  d.StackSize,
		SimWorkers: d.SimWorkers,
	}
	if d.Tweaks != nil {
		out.Tweaks = EnvTweaks{
			OldOrPatchedLinker: d.Tweaks.OldOrPatchedLinker,
			PatchedGlibc:       d.Tweaks.PatchedGlibc,
			MPCToolchain:       d.Tweaks.MPCToolchain,
		}
	}
	if d.Toolchain != nil {
		out.Toolchain = core.Toolchain{
			Name:               d.Toolchain.Name,
			SupportsTLSSegRefs: d.Toolchain.SupportsTLSSegRefs,
			MPCPatched:         d.Toolchain.MPCPatched,
			PIE:                d.Toolchain.PIE,
		}
	}
	if d.OS != nil {
		out.OS = core.OS{
			Kind:               d.OS.Kind,
			Glibc:              d.OS.Glibc,
			PatchedGlibc:       d.OS.PatchedGlibc,
			OldOrPatchedLinker: d.OS.OldOrPatchedLinker,
			SharedFS:           d.OS.SharedFS,
		}
	}
	if d.Params != nil {
		out.WorkloadParams = WorkloadParams{HasLB: d.Params.HasLB, Quick: d.Params.Quick}
	}
	if d.Balancer != "" {
		b, err := ParseBalancer(d.Balancer, d.BalancerPE)
		if err != nil {
			return err
		}
		out.Balancer = b
	}
	if d.Checkpoint != nil {
		var target ampi.CheckpointTarget
		switch d.Checkpoint.Target {
		case "fs":
			target = ampi.TargetFS
		case "buddy":
			target = ampi.TargetBuddy
		default:
			return fmt.Errorf("scenario: unknown checkpoint target %q (want fs or buddy)", d.Checkpoint.Target)
		}
		out.Checkpoint = &ampi.CheckpointPolicy{
			Target:   target,
			Dir:      d.Checkpoint.Dir,
			Interval: sim.Time(d.Checkpoint.IntervalNs),
		}
	}
	if d.Churn != nil {
		out.Churn = &ft.ChurnSpec{
			Seed:          d.Churn.Seed,
			ArrivalEvery:  sim.Time(d.Churn.ArrivalEveryNs),
			EvictionEvery: sim.Time(d.Churn.EvictionEveryNs),
			Notice:        sim.Time(d.Churn.NoticeNs),
			Horizon:       sim.Time(d.Churn.HorizonNs),
			RollingEvery:  sim.Time(d.Churn.RollingEveryNs),
			RollingNodes:  d.Churn.RollingNodes,
			MaxEvents:     d.Churn.MaxEvents,
		}
	}
	*s = out
	return nil
}

// Canonical returns the hashing pre-image: one `tag=value` line per
// output-determining field, in a fixed order that is independent of
// the Go struct layout. The environment is written *resolved* (after
// EnvPolicy and Tweaks), and output-neutral knobs (SimWorkers, Tracer)
// are omitted — see the package comment at the top of this file.
//
// The leading version line guards the format itself: if the canonical
// encoding ever has to change shape, bumping it invalidates every old
// hash instead of silently colliding with them.
func (s *Spec) Canonical() ([]byte, error) {
	if err := s.declarativeErr(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	line := func(tag string, format string, args ...any) {
		fmt.Fprintf(&b, tag+"="+format+"\n", args...)
	}
	line("canon", "%d", 1)
	line("machine.nodes", "%d", s.Machine.Nodes)
	line("machine.procs_per_node", "%d", s.Machine.ProcsPerNode)
	line("machine.pes_per_proc", "%d", s.Machine.PEsPerProc)
	line("machine.seed", "%d", s.Machine.Seed)
	line("vps", "%d", s.VPs)
	line("method", "%s", s.kind())
	tc, osEnv := s.env()
	line("env.toolchain.name", "%s", tc.Name)
	line("env.toolchain.tls_seg_refs", "%t", tc.SupportsTLSSegRefs)
	line("env.toolchain.mpc", "%t", tc.MPCPatched)
	line("env.toolchain.pie", "%t", tc.PIE)
	line("env.os.kind", "%s", osEnv.Kind)
	line("env.os.glibc", "%t", osEnv.Glibc)
	line("env.os.patched_glibc", "%t", osEnv.PatchedGlibc)
	line("env.os.old_or_patched_linker", "%t", osEnv.OldOrPatchedLinker)
	line("env.os.shared_fs", "%t", osEnv.SharedFS)
	line("workload", "%s", s.Workload)
	line("workload.has_lb", "%t", s.WorkloadParams.HasLB)
	line("workload.quick", "%t", s.WorkloadParams.Quick)
	if s.Balancer != nil {
		name, pes, err := balancerName(s.Balancer)
		if err != nil {
			return nil, err
		}
		line("balancer", "%s", name)
		line("balancer.pes_per_node", "%d", pes)
	} else {
		line("balancer", "")
		line("balancer.pes_per_node", "%d", 0)
	}
	if s.Checkpoint != nil {
		line("checkpoint.target", "%s", s.Checkpoint.Target)
		line("checkpoint.dir", "%s", s.Checkpoint.Dir)
		line("checkpoint.interval_ns", "%d", int64(s.Checkpoint.Interval))
	} else {
		line("checkpoint.target", "")
		line("checkpoint.dir", "")
		line("checkpoint.interval_ns", "%d", 0)
	}
	// Churn lines appear only when churn is configured: churn-free
	// Specs keep the exact canonical bytes (and hashes) they had before
	// elasticity existed.
	if s.Churn != nil {
		line("churn.seed", "%d", s.Churn.Seed)
		line("churn.arrival_every_ns", "%d", int64(s.Churn.ArrivalEvery))
		line("churn.eviction_every_ns", "%d", int64(s.Churn.EvictionEvery))
		line("churn.notice_ns", "%d", int64(s.Churn.Notice))
		line("churn.horizon_ns", "%d", int64(s.Churn.Horizon))
		line("churn.rolling_every_ns", "%d", int64(s.Churn.RollingEvery))
		line("churn.rolling_nodes", "%d", s.Churn.RollingNodes)
		line("churn.max_events", "%d", s.Churn.MaxEvents)
	}
	placement := make([]string, len(s.Placement))
	for i, p := range s.Placement {
		placement[i] = fmt.Sprintf("%d", p)
	}
	line("placement", "%s", strings.Join(placement, ","))
	line("stack_size", "%d", s.StackSize)
	return b.Bytes(), nil
}

// Hash returns the hex SHA-256 of the canonical form: the Spec's
// content address. Because every run is a pure function of its
// declarative Spec, two Specs with equal hashes produce bit-identical
// output (for one build of the code — pair the hash with a code
// version when caching across builds).
func (s *Spec) Hash() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// DefaultSpec returns a small, valid Spec running the named registered
// workload: one single-PE node, four virtual ranks, PIEglobals, quick
// problem size. It is the example document `GET /v1/experiments`
// serves and the seed Spec tests round-trip.
func DefaultSpec(workload string) Spec {
	return Spec{
		Machine:        machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:            4,
		Method:         core.KindPIEglobals,
		Workload:       workload,
		WorkloadParams: WorkloadParams{Quick: true},
	}
}
