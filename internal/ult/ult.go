// Package ult implements user-level threads over goroutines with strict
// cooperative handoff, bound to the discrete-event clock.
//
// Exactly one goroutine in the whole simulation runs at a time: either
// the engine (processing events) or one rank thread. A thread runs real
// Go code — the MPI program — and charges virtual compute time to its
// PE's local clock as it goes. When it blocks (inside MPI_Recv, a
// barrier, ...), control hands back to the per-PE scheduler, which
// context switches to the next ready thread, charging the privatization
// method's switch cost. This mirrors AMPI's message-driven cooperative
// scheduling of virtual ranks (§2.1) with ~100ns switches.
package ult

import (
	"fmt"

	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// State is a thread's lifecycle state.
type State int

const (
	// Created: never run.
	Created State = iota
	// Ready: runnable, waiting in a scheduler queue.
	Ready
	// Running: currently executing.
	Running
	// Blocked: suspended inside a blocking call.
	Blocked
	// Done: body returned.
	Done
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thread is one user-level thread (one virtual rank).
type Thread struct {
	ID    int
	state State
	sched *Scheduler
	body  func(*Thread)

	resume chan struct{}
	parked chan struct{}

	started bool
	killed  bool
	// Err holds a panic recovered from the thread body.
	Err error

	// Load is virtual compute time accumulated since the last call to
	// ResetLoad; the load balancer reads it.
	Load sim.Time

	// Context is the privatization rank context attached by the core
	// runtime; ult treats it opaquely but exposes it to the switch
	// hook.
	Context any
}

// NewThread creates a thread that will run body when first scheduled.
// The backing goroutine and its handoff channels are created lazily on
// the first run, so a thread that never executes (an idle rank parked in
// a collective for the whole run) costs one struct, not a goroutine.
func NewThread(id int, body func(*Thread)) *Thread {
	return &Thread{ID: id, body: body}
}

// InitThread initializes a caller-allocated Thread in place, for worlds
// that keep rank threads in one contiguous slab instead of a heap object
// each. The thread behaves exactly like one from NewThread.
func InitThread(t *Thread, id int, body func(*Thread)) {
	*t = Thread{ID: id, body: body}
}

// State reports the thread's lifecycle state.
func (t *Thread) State() State { return t.state }

// Scheduler returns the scheduler the thread is currently bound to.
func (t *Thread) Scheduler() *Scheduler { return t.sched }

// Now reports the thread's PE-local virtual clock. Valid only while the
// thread is running.
func (t *Thread) Now() sim.Time { return t.sched.now }

// Advance charges d of virtual compute time to the thread's PE. If the
// PE is inside an injected straggler window, the charge is dilated by
// the window's factor; the healthy path costs one length comparison.
func (t *Thread) Advance(d sim.Time) {
	if d < 0 {
		panic("ult: negative compute time")
	}
	if len(t.sched.slow) != 0 {
		d = t.sched.dilate(d)
	}
	t.sched.now += d
	t.Load += d
	t.sched.busy += d
}

// ResetLoad zeroes the thread's accumulated load (after a LB pass).
func (t *Thread) ResetLoad() { t.Load = 0 }

// killedPanic is the sentinel a killed thread unwinds with.
type killedPanic struct{}

// park hands control back to the scheduler until resumed. The caller
// must set the thread's state (Blocked or Ready) first.
func (t *Thread) park() {
	t.parked <- struct{}{}
	<-t.resume
	if t.killed {
		// Unwind the body; the run wrapper recovers and parks the
		// goroutine for good.
		panic(killedPanic{})
	}
	t.state = Running
}

// Kill forcibly terminates a parked thread (hard-fault injection: the
// node hosting the rank died). The thread's body unwinds via a panic
// recovered by the runtime; Err is set to a description. Kill may be
// called on Blocked, Ready, or never-started threads — i.e. from any
// engine event, where no thread is Running; killing a Running thread
// panics.
func (t *Thread) Kill(reason string) {
	switch t.state {
	case Done:
		return
	case Blocked, Ready, Created:
	default:
		panic(fmt.Sprintf("ult: kill of %v thread %d", t.state, t.ID))
	}
	t.killed = true
	if !t.started {
		t.state = Done
		t.Err = fmt.Errorf("ult: thread %d killed before first run: %s", t.ID, reason)
		if t.sched != nil {
			t.sched.done++
		}
		return
	}
	t.resume <- struct{}{}
	<-t.parked
	t.Err = fmt.Errorf("ult: thread %d killed: %s", t.ID, reason)
}

// Suspend parks the thread until another component calls Wake. The
// typical caller is a blocking MPI operation whose completion condition
// is not yet met.
func (t *Thread) Suspend() {
	t.state = Blocked
	t.park()
}

// Yield places the thread at the back of its scheduler's ready queue
// and parks; it resumes after other ready threads have run.
func (t *Thread) Yield() {
	s := t.sched
	t.state = Ready
	s.ready = append(s.ready, t)
	t.park()
}

// Wake makes a blocked thread ready on its current scheduler and
// ensures a scheduler pass is queued. Waking a non-blocked thread
// panics: it indicates a lost-wakeup bug in the caller.
func (t *Thread) Wake() {
	if t.state != Blocked && t.state != Created {
		panic(fmt.Sprintf("ult: wake of thread %d in state %v", t.ID, t.state))
	}
	s := t.sched
	t.state = Ready
	s.ready = append(s.ready, t)
	s.schedule()
}

// run hands control to the thread until it parks or finishes.
func (t *Thread) run() {
	if !t.started {
		t.started = true
		// Lazy materialization: the goroutine and its handoff channels
		// exist only once the thread actually executes.
		t.resume = make(chan struct{})
		t.parked = make(chan struct{})
		go func() {
			<-t.resume
			defer func() {
				if r := recover(); r != nil {
					if _, wasKill := r.(killedPanic); !wasKill {
						t.Err = fmt.Errorf("ult: thread %d panicked: %v", t.ID, r)
					}
				}
				t.state = Done
				if t.sched != nil {
					t.sched.done++
				}
				t.parked <- struct{}{}
			}()
			t.state = Running
			t.body(t)
		}()
	}
	t.resume <- struct{}{}
	<-t.parked
}

// Scheduler is the per-PE cooperative scheduler.
type Scheduler struct {
	PE     *machine.PE
	Engine *sim.Engine
	Cost   *machine.CostModel

	now   sim.Time
	ready []*Thread

	passQueued bool
	inPass     bool
	// passFn caches the bound method value for s.pass so queueing a
	// scheduler pass does not allocate one per event.
	passFn func()

	// SwitchExtra is the privatization method's additional
	// per-context-switch cost (TLS segment pointer update, GOT swap);
	// nil means zero.
	SwitchExtra func(from, to *Thread) sim.Time

	// Trace enables execution-span recording (Projections-style
	// timelines); spans accumulate in Spans.
	Trace bool
	// Spans holds one entry per scheduling quantum when Trace is on.
	Spans []Span

	// Tracer, when non-nil, receives context-switch, execution-quantum,
	// and PE-idle events on the virtual clock. The nil default costs
	// the scheduling loop one pointer comparison per quantum.
	Tracer trace.Tracer

	// slow holds injected straggler windows (fault injection); empty on
	// the healthy path.
	slow []SlowWindow

	// Stats
	switches   uint64
	switchTime sim.Time
	busy       sim.Time
	done       int
	threads    []*Thread
	last       *Thread
}

// SlowWindow is one injected straggler interval: compute charged while
// the PE-local clock is inside [Start, End) takes Factor times as long
// (thermal throttling, a noisy neighbor, a failing DIMM).
type SlowWindow struct {
	Start, End sim.Time
	Factor     float64
}

// AddSlowdown injects a straggler window on this PE. Windows are part
// of the run's configuration, so runs stay pure functions of their
// inputs. Factors below 1 and empty windows are ignored.
func (s *Scheduler) AddSlowdown(w SlowWindow) {
	if w.Factor < 1 || w.End <= w.Start {
		return
	}
	s.slow = append(s.slow, w)
}

// dilate applies the compound straggler factor at the current PE clock.
func (s *Scheduler) dilate(d sim.Time) sim.Time {
	f := 1.0
	for _, w := range s.slow {
		if s.now >= w.Start && s.now < w.End {
			f *= w.Factor
		}
	}
	if f == 1 {
		return d
	}
	return sim.Time(float64(d) * f)
}

// NewScheduler binds a scheduler to a PE.
func NewScheduler(pe *machine.PE, engine *sim.Engine, cost *machine.CostModel) *Scheduler {
	s := &Scheduler{PE: pe, Engine: engine, Cost: cost}
	s.passFn = s.pass
	pe.Sched = s
	return s
}

// Now reports the PE-local clock.
func (s *Scheduler) Now() sim.Time { return s.now }

// Switches reports the number of ULT context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

// SwitchTime reports total virtual time spent context switching.
func (s *Scheduler) SwitchTime() sim.Time { return s.switchTime }

// BusyTime reports total virtual compute time charged to this PE.
func (s *Scheduler) BusyTime() sim.Time { return s.busy }

// Threads returns the threads homed on this scheduler.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// DoneCount reports how many of this scheduler's threads have finished.
func (s *Scheduler) DoneCount() int { return s.done }

// Adopt homes a thread on this scheduler and marks it ready to run.
func (s *Scheduler) Adopt(t *Thread) {
	t.sched = s
	s.threads = append(s.threads, t)
	if t.state == Created || t.state == Blocked {
		t.state = Ready
		s.ready = append(s.ready, t)
	}
	s.schedule()
}

// Remove unbinds a (blocked or done) thread from this scheduler, e.g.
// for migration. Removing a running or ready thread panics.
func (s *Scheduler) Remove(t *Thread) {
	if t.state == Running || t.state == Ready {
		panic(fmt.Sprintf("ult: remove of %v thread %d", t.state, t.ID))
	}
	for i, tt := range s.threads {
		if tt == t {
			s.threads = append(s.threads[:i], s.threads[i+1:]...)
			break
		}
	}
	if t.state == Done {
		s.done--
	}
	if s.last == t {
		s.last = nil
	}
	t.sched = nil
}

// AdoptBlocked homes a thread on this scheduler without making it
// runnable; a later Wake schedules it. Migration uses this to land a
// rank that is still suspended in a barrier.
func (s *Scheduler) AdoptBlocked(t *Thread) {
	t.sched = s
	s.threads = append(s.threads, t)
}

// schedule queues a scheduler pass if one is needed and not already
// pending.
func (s *Scheduler) schedule() {
	if s.passQueued || s.inPass || len(s.ready) == 0 {
		return
	}
	s.passQueued = true
	at := s.now
	if now := s.Engine.Now(); now > at {
		at = now
	}
	s.Engine.At(at, s.passFn)
}

// pass runs ready threads until the queue drains. It executes as one
// engine event; virtual time advances on the PE-local clock as threads
// compute.
func (s *Scheduler) pass() {
	s.passQueued = false
	s.inPass = true
	defer func() { s.inPass = false }()
	if now := s.Engine.Now(); now > s.now {
		if s.Tracer != nil {
			s.Tracer.Emit(trace.Event{Time: s.now, Dur: now - s.now, Kind: trace.KindIdle,
				PE: int32(s.PE.ID), VP: -1, Peer: -1})
		}
		s.now = now
	}
	for len(s.ready) > 0 {
		t := s.ready[0]
		s.ready = s.ready[1:]
		if t.state != Ready {
			continue
		}
		// Charge the context switch: scheduler overhead plus the
		// privatization method's extra work (stack switch, TLS segment
		// pointer update, GOT swap).
		cost := s.Cost.ULTSwitchBase
		if s.SwitchExtra != nil {
			cost += s.SwitchExtra(s.last, t)
		}
		if s.Tracer != nil {
			from := int32(-1)
			if s.last != nil {
				from = int32(s.last.ID)
			}
			s.Tracer.Emit(trace.Event{Time: s.now, Dur: cost, Kind: trace.KindSwitch,
				PE: int32(s.PE.ID), VP: int32(t.ID), Peer: from})
		}
		s.now += cost
		s.switches++
		s.switchTime += cost
		s.last = t
		start := s.now
		t.run()
		if s.Trace {
			s.Spans = append(s.Spans, Span{VP: t.ID, Start: start, End: s.now})
		}
		if s.Tracer != nil {
			s.Tracer.Emit(trace.Event{Time: start, Dur: s.now - start, Kind: trace.KindExec,
				PE: int32(s.PE.ID), VP: int32(t.ID), Peer: -1})
		}
	}
}

// Span is one scheduling quantum: thread VP ran on this PE from Start
// to End in virtual time. The Projections-style timeline view of a run
// is the per-PE sequence of spans.
type Span struct {
	VP    int      `json:"vp"`
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`
}

// RunnableCount reports how many threads are waiting in the ready
// queue.
func (s *Scheduler) RunnableCount() int { return len(s.ready) }
