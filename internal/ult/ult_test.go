package ult

import (
	"testing"
	"time"

	"provirt/internal/machine"
	"provirt/internal/sim"
)

func testSched(t *testing.T) (*Scheduler, *sim.Engine) {
	t.Helper()
	cl, err := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	return NewScheduler(cl.PE(0), cl.Engine, cl.Cost), cl.Engine
}

func TestThreadRunsToCompletion(t *testing.T) {
	s, e := testSched(t)
	ran := false
	th := NewThread(0, func(t *Thread) { ran = true })
	s.Adopt(th)
	e.Drain()
	if !ran || th.State() != Done {
		t.Fatalf("ran=%v state=%v", ran, th.State())
	}
	if s.DoneCount() != 1 {
		t.Fatalf("done count %d", s.DoneCount())
	}
}

func TestCooperativeInterleaving(t *testing.T) {
	s, e := testSched(t)
	var order []int
	mk := func(id int) *Thread {
		return NewThread(id, func(th *Thread) {
			for i := 0; i < 3; i++ {
				order = append(order, id)
				th.Yield()
			}
		})
	}
	s.Adopt(mk(1))
	s.Adopt(mk(2))
	e.Drain()
	want := []int{1, 2, 1, 2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestAdvanceMovesClockAndLoad(t *testing.T) {
	s, e := testSched(t)
	th := NewThread(0, func(th *Thread) {
		th.Advance(5 * time.Millisecond)
	})
	s.Adopt(th)
	e.Drain()
	if s.Now() < 5*time.Millisecond {
		t.Fatalf("clock %v", s.Now())
	}
	if th.Load != 5*time.Millisecond {
		t.Fatalf("load %v", th.Load)
	}
	th.ResetLoad()
	if th.Load != 0 {
		t.Fatal("load not reset")
	}
	if s.BusyTime() != 5*time.Millisecond {
		t.Fatalf("busy %v", s.BusyTime())
	}
}

func TestSuspendWake(t *testing.T) {
	s, e := testSched(t)
	phase := 0
	th := NewThread(0, func(th *Thread) {
		phase = 1
		th.Suspend()
		phase = 2
	})
	s.Adopt(th)
	e.Drain()
	if phase != 1 || th.State() != Blocked {
		t.Fatalf("phase=%d state=%v", phase, th.State())
	}
	e.After(time.Microsecond, func() { th.Wake() })
	e.Drain()
	if phase != 2 || th.State() != Done {
		t.Fatalf("after wake: phase=%d state=%v", phase, th.State())
	}
}

func TestSwitchCostCharged(t *testing.T) {
	s, e := testSched(t)
	extra := 7 * time.Nanosecond
	s.SwitchExtra = func(from, to *Thread) sim.Time { return extra }
	th := NewThread(0, func(th *Thread) {
		for i := 0; i < 9; i++ {
			th.Yield()
		}
	})
	s.Adopt(th)
	e.Drain()
	if s.Switches() != 10 {
		t.Fatalf("%d switches", s.Switches())
	}
	want := 10 * (s.Cost.ULTSwitchBase + extra)
	if s.SwitchTime() != want {
		t.Fatalf("switch time %v, want %v", s.SwitchTime(), want)
	}
}

func TestPanicCapturedAsErr(t *testing.T) {
	s, e := testSched(t)
	th := NewThread(3, func(th *Thread) { panic("boom") })
	s.Adopt(th)
	e.Drain()
	if th.Err == nil || th.State() != Done {
		t.Fatalf("err=%v state=%v", th.Err, th.State())
	}
}

func TestRemoveAndAdoptBlocked(t *testing.T) {
	cl, _ := machine.New(machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2})
	s0 := NewScheduler(cl.PE(0), cl.Engine, cl.Cost)
	s1 := NewScheduler(cl.PE(1), cl.Engine, cl.Cost)
	var resumedOn *Scheduler
	th := NewThread(0, func(th *Thread) {
		th.Suspend()
		resumedOn = th.Scheduler()
	})
	s0.Adopt(th)
	cl.Engine.Drain()
	// Migrate the blocked thread.
	s0.Remove(th)
	if th.Scheduler() != nil {
		t.Fatal("removed thread still bound")
	}
	s1.AdoptBlocked(th)
	if th.State() != Blocked {
		t.Fatal("AdoptBlocked changed state")
	}
	cl.Engine.After(time.Microsecond, func() { th.Wake() })
	cl.Engine.Drain()
	if resumedOn != s1 {
		t.Fatal("thread did not resume on the destination scheduler")
	}
	if len(s0.Threads()) != 0 || len(s1.Threads()) != 1 {
		t.Fatalf("thread lists: %d and %d", len(s0.Threads()), len(s1.Threads()))
	}
}

func TestWakeOfRunnableThreadPanics(t *testing.T) {
	s, e := testSched(t)
	th := NewThread(0, func(th *Thread) { th.Yield() })
	s.Adopt(th)
	defer func() {
		if recover() == nil {
			t.Fatal("waking a ready thread must panic")
		}
	}()
	_ = e
	th.Wake() // state Ready (adopted, not yet run)
}

func TestSchedulerClockFollowsEngine(t *testing.T) {
	s, e := testSched(t)
	// An event far in the future adopts a thread; the scheduler pass
	// must not run the thread at an earlier local time.
	e.At(time.Second, func() {
		th := NewThread(0, func(th *Thread) {
			if th.Now() < time.Second {
				t.Errorf("thread ran at %v, before adoption time", th.Now())
			}
		})
		s.Adopt(th)
	})
	e.Drain()
}

func TestManyThreadsFIFO(t *testing.T) {
	s, e := testSched(t)
	const n = 100
	var order []int
	for i := 0; i < n; i++ {
		i := i
		s.Adopt(NewThread(i, func(th *Thread) { order = append(order, i) }))
	}
	e.Drain()
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("adoption order not FIFO at %d: %v", i, order[:i+1])
		}
	}
	if s.RunnableCount() != 0 {
		t.Fatal("runnable queue not drained")
	}
}
