package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The acceptance contract for the metrics server: /metrics serves
// Prometheus text, /progress serves the JSON progress document, and
// the pprof endpoints answer.
func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events_dispatched_total", "events").Add(42)
	prog := NewProgress(r)
	prog.StartSweep(4)
	prog.Point(1, 3*time.Millisecond)

	srv := httptest.NewServer(NewHandler(r, prog))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, frag := range []string{
		"# TYPE sim_events_dispatched_total counter",
		"sim_events_dispatched_total 42",
		"sweep_points_total 1",
	} {
		if !strings.Contains(body, frag) {
			t.Fatalf("/metrics missing %q:\n%s", frag, body)
		}
	}

	code, body = get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.PointsDone != 1 || snap.PointsTotal != 4 {
		t.Fatalf("/progress done/total = %d/%d, want 1/4", snap.PointsDone, snap.PointsTotal)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].Worker != 1 {
		t.Fatalf("/progress workers = %+v", snap.Workers)
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
	if code, _ := get("/"); code != http.StatusOK {
		t.Fatal("index not served")
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatal("unknown path not 404")
	}
}

func TestHandlerWithoutProgress(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/progress without source: status %d, want 404", resp.StatusCode)
	}
}
