// Package obs is the host-side metrics subsystem: cheap always-on
// counters, gauges, and fixed-bucket histograms over the *runtime that
// executes simulations* — engine dispatch rates, matchqueue depths,
// snapshot byte volumes, sweep-worker throughput. It is the host-time
// complement of package trace, which observes the simulated world in
// virtual time.
//
// The discipline mirrors trace.Tracer's: every instrument is a pointer
// whose methods are no-ops on a nil receiver, so an un-instrumented
// run pays exactly one pointer comparison per hook site. Instrumented
// packages hold package-level instrument pointers (nil by default) and
// expose an EnableObs(*Registry) that populates them; passing a nil
// registry restores the no-op state.
//
// Instruments never feed back into the simulation: no hook reads a
// metric, advances a clock, or perturbs scheduling, so runs with
// metrics enabled are bit-identical to runs without (pinned by the
// harness determinism tests). Counter and histogram updates are
// atomic, so concurrently sweeping worlds share instruments safely,
// and because addition and maximum are order-independent, the
// *aggregate* values of deterministic instruments are themselves
// deterministic at any sweep parallelism. Instruments whose values
// depend on host timing or scheduling (wall-time histograms,
// per-worker attribution) are registered as volatile and excluded
// from the deterministic text snapshot.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The nil Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. The nil Gauge is a valid no-op
// instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update. Maximum is order-independent, so concurrent
// SetMax calls from sweep workers converge on the same value
// regardless of interleaving.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at
// registration. The nil Histogram is a valid no-op instrument.
type Histogram struct {
	// bounds are ascending inclusive upper bounds; an implicit +Inf
	// bucket catches everything above the last bound.
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (a dozen bounds) and the
	// common case lands in the first few, which beats a binary search's
	// branch misses at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot returns the bucket bounds and per-bucket counts (the last
// count is the +Inf bucket, so len(counts) == len(bounds)+1).
func (h *Histogram) Snapshot() (bounds []uint64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = h.bounds
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return bounds, counts
}

// ExpBuckets builds n ascending bounds starting at start and growing
// by factor — the standard shape for depth and byte-size histograms.
func ExpBuckets(start, factor uint64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	out := make([]uint64, 0, n)
	for v := start; len(out) < n; v *= factor {
		out = append(out, v)
	}
	return out
}

// metricKind tags what a registry entry holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument plus its metadata.
type metric struct {
	name, help string
	kind       metricKind
	// volatile marks instruments whose values depend on host timing or
	// goroutine scheduling; the deterministic text snapshot skips them.
	volatile bool

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Option adjusts a registration.
type Option func(*metric)

// Volatile marks the instrument as host-timing-dependent: it is served
// on /metrics but excluded from the deterministic text snapshot.
func Volatile() Option {
	return func(m *metric) { m.volatile = true }
}

// Registry names and owns instruments. The nil Registry hands out nil
// instruments, so a package's EnableObs(nil) is exactly "metrics off".
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds the entry or panics on a duplicate name: two packages
// claiming one name is a programming error worth failing fast on.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[m.name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
}

// Counter registers and returns a counter (nil on a nil registry).
func (r *Registry) Counter(name, help string, opts ...Option) *Counter {
	if r == nil {
		return nil
	}
	m := &metric{name: name, help: help, kind: kindCounter, counter: &Counter{}}
	for _, o := range opts {
		o(m)
	}
	r.register(m)
	return m.counter
}

// Gauge registers and returns a gauge (nil on a nil registry).
func (r *Registry) Gauge(name, help string, opts ...Option) *Gauge {
	if r == nil {
		return nil
	}
	m := &metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}
	for _, o := range opts {
		o(m)
	}
	r.register(m)
	return m.gauge
}

// Histogram registers and returns a fixed-bucket histogram (nil on a
// nil registry). bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []uint64, opts ...Option) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	m := &metric{name: name, help: help, kind: kindHistogram, hist: h}
	for _, o := range opts {
		o(m)
	}
	r.register(m)
	return m.hist
}

// sorted returns the registered metrics ordered by name, so every
// rendering is independent of registration and map iteration order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.byName))
	for _, m := range r.byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
