package obs

import (
	"testing"
	"time"
)

func TestNilProgressIsNoOp(t *testing.T) {
	var p *Progress
	p.StartSweep(10)
	p.Point(0, time.Millisecond)
	s := p.Snapshot()
	if s.PointsDone != 0 || s.PointsTotal != 0 || s.ETAMS != -1 {
		t.Fatalf("nil progress snapshot: %+v", s)
	}
}

func TestProgressAccountingAndETA(t *testing.T) {
	r := NewRegistry()
	p := NewProgress(r)
	// Freeze the clock: 2 of 8 points done after 10s extrapolates to
	// 30s remaining at 0.2 points/s.
	base := time.Unix(1000, 0)
	p.start = base
	p.now = func() time.Time { return base.Add(10 * time.Second) }

	p.StartSweep(8)
	p.Point(0, 5*time.Second)
	p.Point(2, 5*time.Second)

	s := p.Snapshot()
	if s.PointsDone != 2 || s.PointsTotal != 8 {
		t.Fatalf("done/total = %d/%d, want 2/8", s.PointsDone, s.PointsTotal)
	}
	if s.ElapsedMS != 10_000 {
		t.Fatalf("elapsed = %dms, want 10000", s.ElapsedMS)
	}
	if s.ETAMS != 30_000 {
		t.Fatalf("eta = %dms, want 30000", s.ETAMS)
	}
	if s.RatePerS != 0.2 {
		t.Fatalf("rate = %v, want 0.2", s.RatePerS)
	}
	if len(s.Workers) != 2 || s.Workers[0] != (WorkerState{Worker: 0, Points: 1}) ||
		s.Workers[1] != (WorkerState{Worker: 2, Points: 1}) {
		t.Fatalf("workers = %+v", s.Workers)
	}

	// Registry views: the point counter and expected gauge are
	// deterministic; the wall histogram is volatile but counts.
	if got := p.points.Value(); got != 2 {
		t.Fatalf("sweep_points_total = %d", got)
	}
	if got := p.expected.Value(); got != 8 {
		t.Fatalf("sweep_points_expected = %d", got)
	}
	if got := p.wall.Count(); got != 2 {
		t.Fatalf("wall histogram count = %d", got)
	}
}

func TestProgressBeforeFirstPointHasNoETA(t *testing.T) {
	p := NewProgress(nil)
	p.StartSweep(5)
	if s := p.Snapshot(); s.ETAMS != -1 {
		t.Fatalf("eta before first point = %d, want -1", s.ETAMS)
	}
}
