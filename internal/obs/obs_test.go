package obs

import (
	"strings"
	"sync"
	"testing"
)

// Nil instruments are the metrics-off fast path: every method must be
// a safe no-op.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(4)
	g.Add(2)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	if b, c := h.Snapshot(); b != nil || c != nil {
		t.Fatal("nil histogram has buckets")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("y", "") != nil || r.Histogram("z", "", nil) != nil {
		t.Fatal("nil registry handed out instruments")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	// The maximum across all workers' sequences is deterministic even
	// though the interleaving is not.
	if g.Value() != 7999 {
		t.Fatalf("gauge high water = %d, want 7999", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", "test", []uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("shape: %v %v", bounds, counts)
	}
	// <=1: {0,1}; <=4: {2,4}; <=16: {5,16}; +Inf: {17,1000}
	want := []uint64{2, 2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 8 || h.Sum() != 0+1+2+4+5+16+17+1000 {
		t.Fatalf("count %d sum %d", h.Count(), h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []uint64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "")
}

// The text snapshot must be sorted by name, skip volatile instruments,
// and be identical across renderings.
func TestWriteTextDeterministicAndSkipsVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last").Add(3)
	r.Counter("aa_total", "first").Add(1)
	r.Gauge("mm_gauge", "middle").Set(-2)
	r.Histogram("hh_depth", "hist", []uint64{2, 8}).Observe(5)
	r.Histogram("vv_wall_us", "volatile hist", []uint64{10}, Volatile()).Observe(3)
	r.Counter("vv_total", "volatile counter", Volatile()).Inc()

	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("text snapshot unstable:\n%s\nvs\n%s", a.String(), b.String())
	}
	got := a.String()
	want := strings.Join([]string{
		"aa_total 1",
		`hh_depth_bucket{le="2"} 0`,
		`hh_depth_bucket{le="8"} 1`,
		`hh_depth_bucket{le="+Inf"} 1`,
		"hh_depth_count 1",
		"hh_depth_sum 5",
		"mm_gauge -2",
		"zz_total 3",
	}, "\n") + "\n"
	if got != want {
		t.Fatalf("text snapshot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(got, "vv_") {
		t.Fatal("volatile instrument leaked into the deterministic snapshot")
	}

	var p strings.Builder
	if err := r.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	prom := p.String()
	for _, frag := range []string{
		"# TYPE aa_total counter", "# TYPE mm_gauge gauge", "# TYPE hh_depth histogram",
		"vv_total 1", `vv_wall_us_bucket{le="10"} 1`,
	} {
		if !strings.Contains(prom, frag) {
			t.Fatalf("prometheus output missing %q:\n%s", frag, prom)
		}
	}
}
