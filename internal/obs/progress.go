package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Progress tracks live sweep execution for the /progress endpoint:
// points done versus expected, throughput-extrapolated ETA, and
// per-worker completion counts. The harness wires it to the sweep
// runner's completion hooks; a nil *Progress is a valid no-op, so
// un-instrumented sweeps pay one pointer comparison per point.
//
// Aggregate point counts are deterministic (a sweep's size is a pure
// function of its configuration); everything host-timed — the ETA,
// the wall-time histogram, which worker ran which point — is
// volatile and therefore lives here and on /progress, never in the
// deterministic text snapshot.
type Progress struct {
	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	workers map[int]int // worker id -> points completed

	// points and expected are the deterministic registry views of the
	// same accounting; wall is the volatile per-point host wall-time
	// histogram (microsecond buckets up to ~16s).
	points   *Counter
	expected *Gauge
	wall     *Histogram

	// now is the clock, injectable for tests.
	now func() time.Time
}

// NewProgress returns a tracker registered in r (which may be nil; the
// tracker still counts, it just registers no instruments).
func NewProgress(r *Registry) *Progress {
	return &Progress{
		start:   time.Now(),
		workers: make(map[int]int),
		points: r.Counter("sweep_points_total",
			"sweep points completed across all experiments this run"),
		expected: r.Gauge("sweep_points_expected",
			"sweep points scheduled across all experiments this run"),
		wall: r.Histogram("sweep_point_wall_us",
			"host wall time per completed sweep point, microseconds",
			ExpBuckets(64, 4, 13), Volatile()),
		now: time.Now,
	}
}

// StartSweep records that a sweep of total points is about to run.
// Sweeps accumulate: running several experiments (or nested sweeps)
// raises the expected count each time.
func (p *Progress) StartSweep(total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += total
	p.mu.Unlock()
	p.expected.Add(int64(total))
}

// Point records one completed sweep point: which worker ran it and how
// much host wall time it took.
func (p *Progress) Point(worker int, elapsed time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.workers[worker]++
	p.mu.Unlock()
	p.points.Inc()
	p.wall.Observe(uint64(elapsed / time.Microsecond))
}

// WorkerState is one worker's row in a progress snapshot.
type WorkerState struct {
	Worker int `json:"worker"`
	Points int `json:"points"`
}

// Snapshot is the JSON document /progress serves.
type Snapshot struct {
	PointsDone  int   `json:"points_done"`
	PointsTotal int   `json:"points_total"`
	ElapsedMS   int64 `json:"elapsed_ms"`
	// ETAMS extrapolates the remaining points at the observed rate; -1
	// while no point has completed (no rate to extrapolate from).
	ETAMS    int64         `json:"eta_ms"`
	RatePerS float64       `json:"rate_per_s"`
	Workers  []WorkerState `json:"workers"`
}

// Snapshot captures the current state. Workers are sorted by id so the
// document's shape is stable.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{ETAMS: -1}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{PointsDone: p.done, PointsTotal: p.total, ETAMS: -1}
	elapsed := p.now().Sub(p.start)
	s.ElapsedMS = elapsed.Milliseconds()
	if p.done > 0 && elapsed > 0 {
		s.RatePerS = float64(p.done) / elapsed.Seconds()
		remaining := p.total - p.done
		if remaining < 0 {
			remaining = 0
		}
		s.ETAMS = (elapsed * time.Duration(remaining) / time.Duration(p.done)).Milliseconds()
	}
	s.Workers = make([]WorkerState, 0, len(p.workers))
	for w, n := range p.workers {
		s.Workers = append(s.Workers, WorkerState{Worker: w, Points: n})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}

// WriteJSON writes the snapshot as one indented JSON document.
func (p *Progress) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}
