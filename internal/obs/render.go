package obs

import (
	"bufio"
	"fmt"
	"io"
)

// This file renders a registry two ways from one sorted walk:
//
//   - WriteText: the deterministic snapshot `privbench -metrics`
//     appends to its output. It skips volatile instruments, so at a
//     fixed sweep parallelism two runs of the same configuration
//     produce byte-identical snapshots (pinned by tests).
//   - WritePrometheus: the live /metrics endpoint. It includes
//     everything, volatile instruments and HELP/TYPE metadata.
//
// Both formats use Prometheus exposition conventions for sample lines
// (`name value`, histogram `name_bucket{le="..."}` series), so the
// text snapshot diffs cleanly against a scraped endpoint.

// WriteText writes the deterministic sorted-text snapshot: every
// non-volatile instrument, one sample per line, ordered by name.
func (r *Registry) WriteText(w io.Writer) error {
	return r.render(w, false, false)
}

// WritePrometheus writes the full registry in Prometheus text
// exposition format, including volatile instruments.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.render(w, true, true)
}

func (r *Registry) render(w io.Writer, includeVolatile, meta bool) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, m := range r.sorted() {
		if m.volatile && !includeVolatile {
			continue
		}
		if meta {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeName(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.gauge.Value())
		case kindHistogram:
			bounds, counts := m.hist.Snapshot()
			// Prometheus histogram buckets are cumulative.
			var cum uint64
			for i, c := range counts {
				cum += c
				if i < len(bounds) {
					fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", m.name, bounds[i], cum)
				} else {
					fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
				}
			}
			fmt.Fprintf(bw, "%s_count %d\n", m.name, m.hist.Count())
			fmt.Fprintf(bw, "%s_sum %d\n", m.name, m.hist.Sum())
		}
	}
	return bw.Flush()
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}
