package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// NewHandler serves the registry and progress tracker over HTTP:
//
//	/metrics   Prometheus text exposition of every instrument
//	/progress  JSON: points done/total, ETA, per-worker state
//	/debug/pprof/...  the standard Go profiling endpoints
//
// The handler is read-only over atomics and its own locks, so serving
// while a sweep runs never blocks or perturbs the run — the endpoint
// exists precisely to watch long sweeps live. prog may be nil (no
// sweep progress source); /progress then reports 404.
func NewHandler(r *Registry, prog *Progress) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Too late for an HTTP error status; the broken connection
			// is the client's signal.
			return
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		if prog == nil {
			http.Error(w, "no sweep progress source", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = prog.WriteJSON(w)
	})
	// net/http/pprof self-registers only on http.DefaultServeMux; wire
	// its handlers onto this mux explicitly so the metrics server is
	// self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "privbench metrics server\n\n/metrics\n/progress\n/debug/pprof/\n")
	})
	return mux
}
