package lb

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"provirt/internal/sim"
)

// Golden-mapping tests: GreedyRefineLB is the strategy both the ADCIRC
// runs and shrink recovery depend on, so its exact decisions on crafted
// load vectors are pinned here. If the strategy changes, these goldens
// change — update them only with the before/after Imbalance numbers in
// hand.

func ms(n int64) sim.Time { return sim.Time(n) * sim.Time(time.Millisecond) }

func TestGreedyRefineGoldenHotspotWithPin(t *testing.T) {
	// PE0 is overloaded and holds a non-migratable rank; the refiner
	// must drain PE0 around the pin, cheapest state first.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(40), Migratable: true},
		{VP: 1, PE: 0, Load: ms(10), Migratable: true},
		{VP: 2, PE: 0, Load: ms(30), Migratable: false},
		{VP: 3, PE: 1, Load: ms(20), Migratable: true},
		{VP: 4, PE: 2, Load: ms(10), Migratable: true},
		{VP: 5, PE: 3, Load: ms(10), Migratable: true},
	}
	const numPEs = 4
	if got, want := Imbalance(loads, numPEs), 8.0/3.0; got != want {
		t.Fatalf("pre-balance imbalance = %v, want %v", got, want)
	}
	assign := GreedyRefineLB{}.Rebalance(loads, numPEs)
	if err := Validate(loads, numPEs, assign); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 0, 1, 2, 1}
	if fmt.Sprint(assign) != fmt.Sprint(want) {
		t.Errorf("assignment = %v, want %v", assign, want)
	}
	after := make([]RankLoad, len(loads))
	for i, l := range loads {
		after[i] = l
		after[i].PE = assign[i]
	}
	if got, want := Imbalance(after, numPEs), 4.0/3.0; got != want {
		t.Errorf("post-balance imbalance = %v, want %v", got, want)
	}
}

func TestGreedyRefineGoldenShrinkPlacesDisplaced(t *testing.T) {
	// The shrink-recovery shape: a 3-node x 2-PE machine loses node 1,
	// so its two ranks are displaced (PE -1) and the old node-2 PEs have
	// been renumbered down to 2 and 3. The survivors are perfectly
	// balanced; the refiner must seat the displaced ranks heaviest-first
	// on the least-loaded survivors.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(20), Migratable: true},
		{VP: 1, PE: 1, Load: ms(20), Migratable: true},
		{VP: 2, PE: -1, Load: ms(30), Migratable: true},
		{VP: 3, PE: -1, Load: ms(10), Migratable: true},
		{VP: 4, PE: 2, Load: ms(20), Migratable: true},
		{VP: 5, PE: 3, Load: ms(20), Migratable: true},
	}
	const numPEs = 4
	// Displaced ranks carry no PE load yet, so the surviving machine
	// reads as balanced.
	if got := Imbalance(loads, numPEs); got != 1.0 {
		t.Fatalf("pre-balance imbalance = %v, want 1 (displaced ranks carry no load)", got)
	}
	assign := GreedyRefineLB{}.Rebalance(loads, numPEs)
	if err := Validate(loads, numPEs, assign); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0, 1, 2, 3}
	if fmt.Sprint(assign) != fmt.Sprint(want) {
		t.Errorf("assignment = %v, want %v", assign, want)
	}
	after := make([]RankLoad, len(loads))
	for i, l := range loads {
		after[i] = l
		after[i].PE = assign[i]
	}
	if got, want := Imbalance(after, numPEs), 4.0/3.0; got != want {
		t.Errorf("post-balance imbalance = %v, want %v", got, want)
	}
}

func TestValidateRejectsDisplacedNonMigratable(t *testing.T) {
	// A non-migratable rank whose PE died cannot be recovered by
	// shrinking: any seat the strategy finds for it is a move, and
	// Validate must say why.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(10), Migratable: true},
		{VP: 7, PE: -1, Load: ms(10), Migratable: false},
	}
	const numPEs = 2
	assign := GreedyRefineLB{}.Rebalance(loads, numPEs)
	err := Validate(loads, numPEs, assign)
	if err == nil {
		t.Fatal("Validate accepted a displaced non-migratable rank")
	}
	if want := "non-migratable rank 7 cannot be remapped off departed PE"; !strings.Contains(err.Error(), want) {
		t.Errorf("error = %q, want it to mention %q", err, want)
	}
}
