package lb

import (
	"testing"
	"testing/quick"

	"provirt/internal/sim"
)

func mkLoads(loads []int64, pes int) []RankLoad {
	out := make([]RankLoad, len(loads))
	for i, l := range loads {
		out[i] = RankLoad{VP: i, PE: i % pes, Load: sim.Time(l), Migratable: true}
	}
	return out
}

func TestPELoadsAndImbalance(t *testing.T) {
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: 10},
		{VP: 1, PE: 0, Load: 20},
		{VP: 2, PE: 1, Load: 30},
	}
	pe := PELoads(loads, 2)
	if pe[0] != 30 || pe[1] != 30 {
		t.Fatalf("PELoads = %v", pe)
	}
	if im := Imbalance(loads, 2); im != 1 {
		t.Fatalf("balanced imbalance = %v", im)
	}
	loads[2].PE = 0
	if im := Imbalance(loads, 2); im != 2 {
		t.Fatalf("imbalance = %v, want 2 (all load on one of two PEs)", im)
	}
	if Imbalance(nil, 4) != 1 {
		t.Fatal("empty imbalance")
	}
}

func TestGreedyLBBalances(t *testing.T) {
	loads := mkLoads([]int64{100, 100, 100, 100, 1, 1, 1, 1}, 2)
	assign := GreedyLB{}.Rebalance(loads, 4)
	if err := Validate(loads, 4, assign); err != nil {
		t.Fatal(err)
	}
	// The four heavy ranks must land on four distinct PEs.
	heavy := map[int]bool{}
	for i := 0; i < 4; i++ {
		heavy[assign[i]] = true
	}
	if len(heavy) != 4 {
		t.Fatalf("heavy ranks on %d PEs: %v", len(heavy), assign[:4])
	}
}

func TestGreedyLBPinsNonMigratable(t *testing.T) {
	loads := mkLoads([]int64{100, 100, 1, 1}, 1) // all on PE 0
	loads[0].Migratable = false
	assign := GreedyLB{}.Rebalance(loads, 4)
	if assign[0] != 0 {
		t.Fatal("non-migratable rank moved")
	}
	if err := Validate(loads, 4, assign); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRefineMovesLittleWhenBalanced(t *testing.T) {
	loads := mkLoads([]int64{10, 10, 10, 10}, 4) // perfectly balanced
	assign := GreedyRefineLB{}.Rebalance(loads, 4)
	for i, pe := range assign {
		if pe != loads[i].PE {
			t.Fatalf("refine moved rank %d on balanced input", i)
		}
	}
}

func TestGreedyRefineFixesHotspot(t *testing.T) {
	// PE 0 has 4 ranks of load; PEs 1-3 idle.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: 40, Migratable: true},
		{VP: 1, PE: 0, Load: 40, Migratable: true},
		{VP: 2, PE: 0, Load: 40, Migratable: true},
		{VP: 3, PE: 0, Load: 40, Migratable: true},
	}
	assign := GreedyRefineLB{}.Rebalance(loads, 4)
	if err := Validate(loads, 4, assign); err != nil {
		t.Fatal(err)
	}
	after := make([]sim.Time, 4)
	for i, pe := range assign {
		after[pe] += loads[i].Load
	}
	var max sim.Time
	for _, l := range after {
		if l > max {
			max = l
		}
	}
	if max > 80 {
		t.Fatalf("refine left a %v hotspot: %v", max, assign)
	}
}

func TestRotateAndNull(t *testing.T) {
	loads := mkLoads([]int64{1, 2, 3, 4}, 2)
	rot := RotateLB{}.Rebalance(loads, 2)
	for i, pe := range rot {
		if pe != (loads[i].PE+1)%2 {
			t.Fatalf("rotate wrong at %d", i)
		}
	}
	nul := NullLB{}.Rebalance(loads, 2)
	for i, pe := range nul {
		if pe != loads[i].PE {
			t.Fatalf("null moved rank %d", i)
		}
	}
}

func TestHierarchicalLBBalancesAndMinimizesCrossNodeMoves(t *testing.T) {
	// 2 nodes x 4 PEs with EQUAL node totals but one hot PE inside each
	// node: the fix never requires crossing a node boundary, so a
	// topology-aware balancer should make zero inter-node moves, while
	// flat greedy scatters ranks over all 8 PEs.
	var loads []RankLoad
	for i := 0; i < 4; i++ {
		loads = append(loads, RankLoad{VP: i, PE: 0, Load: 25, Migratable: true})
	}
	for i := 4; i < 8; i++ {
		loads = append(loads, RankLoad{VP: i, PE: 4, Load: 25, Migratable: true})
	}
	h := HierarchicalLB{PEsPerNode: 4}
	assign := h.Rebalance(loads, 8)
	if err := Validate(loads, 8, assign); err != nil {
		t.Fatal(err)
	}
	moved := make([]RankLoad, len(loads))
	copy(moved, loads)
	for i := range moved {
		moved[i].PE = assign[i]
	}
	before := Imbalance(loads, 8)
	after := Imbalance(moved, 8)
	if after >= before {
		t.Errorf("imbalance %v -> %v; hierarchical balancer did not help", before, after)
	}
	if cross := CrossNodeMoves(loads, assign, 4); cross != 0 {
		t.Errorf("hierarchical made %d cross-node moves; intra-node refinement sufficed", cross)
	}
	// Flat greedy, blind to topology, crosses nodes for the same fix.
	flat := GreedyLB{}.Rebalance(loads, 8)
	if fCross := CrossNodeMoves(loads, flat, 4); fCross == 0 {
		t.Skip("flat greedy happened to respect node boundaries on this input")
	}
}

// TestHierarchicalLBMovesAcrossNodesWhenNeeded: with genuinely skewed
// node totals, level 1 must move ranks between nodes.
func TestHierarchicalLBMovesAcrossNodesWhenNeeded(t *testing.T) {
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: 50, Migratable: true},
		{VP: 1, PE: 1, Load: 50, Migratable: true},
		{VP: 2, PE: 2, Load: 50, Migratable: true},
		{VP: 3, PE: 3, Load: 50, Migratable: true},
		{VP: 4, PE: 4, Load: 10, Migratable: true},
	}
	assign := HierarchicalLB{PEsPerNode: 4}.Rebalance(loads, 8)
	if err := Validate(loads, 8, assign); err != nil {
		t.Fatal(err)
	}
	if cross := CrossNodeMoves(loads, assign, 4); cross == 0 {
		t.Error("node totals 200 vs 10 and no cross-node move")
	}
}

func TestHierarchicalLBPinsNonMigratable(t *testing.T) {
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: 100, Migratable: false},
		{VP: 1, PE: 0, Load: 100, Migratable: true},
		{VP: 2, PE: 0, Load: 100, Migratable: true},
	}
	assign := HierarchicalLB{PEsPerNode: 2}.Rebalance(loads, 4)
	if err := Validate(loads, 4, assign); err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 {
		t.Fatal("pinned rank moved")
	}
}

func TestEvacuateLB(t *testing.T) {
	loads := mkLoads([]int64{10, 20, 30, 40, 50, 60, 70, 80}, 4)
	e := EvacuateLB{Departing: []int{1, 3}}
	assign := e.Rebalance(loads, 4)
	if err := Validate(loads, 4, assign); err != nil {
		t.Fatal(err)
	}
	for i, pe := range assign {
		if pe == 1 || pe == 3 {
			t.Fatalf("rank %d still on departing PE %d", i, pe)
		}
		if loads[i].PE == 0 || loads[i].PE == 2 {
			if pe != loads[i].PE {
				t.Fatalf("rank %d on surviving PE moved", i)
			}
		}
	}
	// Non-migratable evacuees stay (the runtime surfaces that error
	// separately).
	loads[1].Migratable = false // rank 1 on PE 1
	assign = e.Rebalance(loads, 4)
	if assign[1] != 1 {
		t.Fatal("non-migratable evacuee moved")
	}
	// All PEs departing: no valid destination, everything stays.
	all := EvacuateLB{Departing: []int{0, 1, 2, 3}}
	assign = all.Rebalance(loads, 4)
	for i, pe := range assign {
		if pe != loads[i].PE {
			t.Fatal("rank moved with no surviving PE")
		}
	}
}

func TestValidateCatchesBadAssignments(t *testing.T) {
	loads := mkLoads([]int64{1, 2}, 2)
	if Validate(loads, 2, []int{0}) == nil {
		t.Error("short assignment accepted")
	}
	if Validate(loads, 2, []int{0, 5}) == nil {
		t.Error("out-of-range PE accepted")
	}
	loads[1].Migratable = false
	if Validate(loads, 2, []int{0, 0}) == nil {
		t.Error("moved non-migratable rank accepted")
	}
}

// Property: every strategy returns a valid assignment and never
// increases max PE load beyond the pre-existing max plus one rank (for
// the greedy family, it must not *worsen* the hotspot).
func TestStrategiesProperty(t *testing.T) {
	strategies := []Strategy{GreedyLB{}, GreedyRefineLB{}, RotateLB{}, NullLB{}, HierarchicalLB{PEsPerNode: 2}}
	f := func(raw []uint16, pes8 uint8) bool {
		pes := int(pes8%8) + 1
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		loads := make([]RankLoad, len(raw))
		for i, r := range raw {
			loads[i] = RankLoad{
				VP: i, PE: i % pes, Load: sim.Time(r),
				Migratable: r%5 != 0, // some non-migratable
			}
		}
		beforeMax := maxLoad(PELoads(loads, pes))
		for _, s := range strategies {
			assign := s.Rebalance(loads, pes)
			if Validate(loads, pes, assign) != nil {
				return false
			}
			// Only GreedyRefineLB guarantees the hotspot never worsens
			// (it moves a rank only when the destination stays below the
			// source). GreedyLB repacks from scratch largest-first, and
			// like any LPT schedule it can exceed an already-balanced
			// incumbent even when every rank is migratable — e.g. loads
			// {0x7e17,0xb881,0xb015,0xca68,0xa0fc,0x5e3c,0xdf26,0xd178}
			// on 2 PEs repack to a higher max than the round-robin start.
			if _, checkNoWorse := s.(GreedyRefineLB); checkNoWorse {
				moved := make([]RankLoad, len(loads))
				copy(moved, loads)
				for i := range moved {
					moved[i].PE = assign[i]
				}
				if maxLoad(PELoads(moved, pes)) > beforeMax {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func maxLoad(pe []sim.Time) sim.Time {
	var m sim.Time
	for _, l := range pe {
		if l > m {
			m = l
		}
	}
	return m
}
