package lb

import (
	"fmt"

	"provirt/internal/trace"
)

// Autoscaler is a deterministic target-utilization resize controller:
// it looks at the measured PE utilization of the last execution window
// (from trace.BuildProfile) and decides how many nodes to add or
// remove. It is a policy, not a mechanism — the elastic supervisor
// (internal/ft) executes the decision as membership events.
//
// The control law is the classic band controller cloud autoscalers
// use: while utilization sits inside [LowWater, HighWater] nothing
// happens; outside the band the cluster steps toward the size that
// would bring utilization back to TargetUtil, clamped to
// [MinNodes, MaxNodes] and to StepNodes per decision so one noisy
// window cannot whipsaw the machine.
type Autoscaler struct {
	// TargetUtil is the busy fraction the controller steers toward
	// (default 0.75).
	TargetUtil float64
	// HighWater and LowWater bound the dead band: scale up above
	// HighWater (default TargetUtil+0.10), down below LowWater
	// (default TargetUtil-0.25).
	HighWater float64
	LowWater  float64
	// MinNodes and MaxNodes clamp the cluster size (defaults 1 and
	// no upper bound).
	MinNodes int
	MaxNodes int
	// StepNodes caps how many nodes one decision adds or removes
	// (default 1).
	StepNodes int
}

func (a Autoscaler) target() float64 {
	if a.TargetUtil > 0 {
		return a.TargetUtil
	}
	return 0.75
}

func (a Autoscaler) high() float64 {
	if a.HighWater > 0 {
		return a.HighWater
	}
	return a.target() + 0.10
}

func (a Autoscaler) low() float64 {
	if a.LowWater > 0 {
		return a.LowWater
	}
	l := a.target() - 0.25
	if l < 0 {
		l = 0
	}
	return l
}

func (a Autoscaler) step() int {
	if a.StepNodes > 0 {
		return a.StepNodes
	}
	return 1
}

// Validate rejects inconsistent controller configurations.
func (a Autoscaler) Validate() error {
	if a.low() >= a.high() {
		return fmt.Errorf("lb: autoscaler low water %.2f must be below high water %.2f", a.low(), a.high())
	}
	if a.MinNodes < 0 || (a.MaxNodes > 0 && a.MaxNodes < a.MinNodes) {
		return fmt.Errorf("lb: autoscaler node bounds [%d, %d] invalid", a.MinNodes, a.MaxNodes)
	}
	return nil
}

// Decide returns the node-count delta (positive = expand, negative =
// shrink, 0 = hold) given the utilization of the last window on a
// nodes-node cluster. Pure and deterministic.
func (a Autoscaler) Decide(util float64, nodes int) int {
	if nodes <= 0 {
		return 0
	}
	if util >= a.low() && util <= a.high() {
		return 0
	}
	// Ideal size keeps total busy work constant: util*nodes busy
	// node-equivalents spread at TargetUtil each.
	ideal := int(float64(nodes)*util/a.target() + 0.5)
	min := a.MinNodes
	if min < 1 {
		min = 1
	}
	if ideal < min {
		ideal = min
	}
	if a.MaxNodes > 0 && ideal > a.MaxNodes {
		ideal = a.MaxNodes
	}
	delta := ideal - nodes
	if step := a.step(); delta > step {
		delta = step
	} else if delta < -step {
		delta = -step
	}
	return delta
}

// Utilization condenses a run profile into the busy fraction the
// autoscaler consumes: total PE busy time over span × PE count. A
// profile with no span or no PEs reports 0.
func Utilization(p *trace.Profile) float64 {
	if p == nil || p.Span <= 0 || len(p.PEs) == 0 {
		return 0
	}
	var busy float64
	for _, pe := range p.PEs {
		busy += float64(pe.Busy)
	}
	return busy / (float64(p.Span) * float64(len(p.PEs)))
}
