// Package lb implements dynamic load balancing strategies in the style
// of Charm++'s centralized balancers, including the GreedyRefineLB
// strategy the paper uses for ADCIRC (§4.6).
//
// A strategy sees only measured per-rank loads and the current
// rank-to-PE mapping; it returns a new mapping. Executing the decision
// (serializing and moving rank state) is the runtime's job, so the
// rebalancing logic stays separate from application logic, as §2.1
// emphasizes.
package lb

import (
	"fmt"
	"sort"

	"provirt/internal/sim"
)

// RankLoad is one rank's measured load since the previous balancing
// step.
type RankLoad struct {
	VP int
	// PE is the rank's current processing element. A value outside
	// [0, numPEs) marks a *displaced* rank: its PE no longer exists
	// (job shrink after a node failure, or cores returned to the
	// scheduler), so a shrink-aware strategy must find it a new home.
	PE   int
	Load sim.Time
	// Migratable reports whether the runtime can move this rank; a
	// strategy must keep non-migratable ranks in place.
	Migratable bool
}

// Displaced reports whether the rank's current PE is gone under a
// numPEs-wide machine.
func (l RankLoad) Displaced(numPEs int) bool { return l.PE < 0 || l.PE >= numPEs }

// Strategy decides a new rank-to-PE mapping.
type Strategy interface {
	Name() string
	// Rebalance returns the destination PE for each rank, indexed as
	// loads is. Implementations must return len(loads) entries within
	// [0, numPEs).
	Rebalance(loads []RankLoad, numPEs int) []int
}

// PELoads aggregates rank loads by PE. Displaced ranks (PE outside
// [0, numPEs)) are skipped: they contribute load only once a strategy
// has placed them.
func PELoads(loads []RankLoad, numPEs int) []sim.Time {
	out := make([]sim.Time, numPEs)
	for _, l := range loads {
		if l.Displaced(numPEs) {
			continue
		}
		out[l.PE] += l.Load
	}
	return out
}

// Imbalance returns max/mean PE load (1.0 = perfectly balanced). An
// empty or zero-load input returns 1.
func Imbalance(loads []RankLoad, numPEs int) float64 {
	pe := PELoads(loads, numPEs)
	var total, max sim.Time
	for _, l := range pe {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(numPEs)
	return float64(max) / mean
}

// Validate checks a strategy result against the invariants every
// balancer must preserve.
func Validate(loads []RankLoad, numPEs int, assign []int) error {
	if len(assign) != len(loads) {
		return fmt.Errorf("lb: assignment has %d entries for %d ranks", len(assign), len(loads))
	}
	for i, pe := range assign {
		if pe < 0 || pe >= numPEs {
			return fmt.Errorf("lb: rank %d assigned to PE %d of %d", loads[i].VP, pe, numPEs)
		}
		if !loads[i].Migratable && pe != loads[i].PE {
			if loads[i].Displaced(numPEs) {
				return fmt.Errorf("lb: non-migratable rank %d cannot be remapped off departed PE %d",
					loads[i].VP, loads[i].PE)
			}
			return fmt.Errorf("lb: non-migratable rank %d moved from PE %d to %d", loads[i].VP, loads[i].PE, pe)
		}
	}
	return nil
}

// Trigger decides whether a balancing opportunity (an AMPI_Migrate
// collective) is worth acting on. Migration is expensive — under
// PIEglobals each moved rank carries its code segment — so adaptive
// runtimes skip rebalancing while the system is already balanced.
type Trigger interface {
	// ShouldBalance reports whether to run the strategy now.
	ShouldBalance(loads []RankLoad, numPEs int) bool
}

// AlwaysTrigger rebalances at every opportunity (the default).
type AlwaysTrigger struct{}

// ShouldBalance implements Trigger.
func (AlwaysTrigger) ShouldBalance([]RankLoad, int) bool { return true }

// ImbalanceTrigger rebalances only when max/mean PE load exceeds a
// threshold, in the spirit of Charm++'s adaptive MetaLB.
type ImbalanceTrigger struct {
	// Threshold is the max/mean ratio above which balancing runs
	// (default 1.1).
	Threshold float64
}

// ShouldBalance implements Trigger.
func (g ImbalanceTrigger) ShouldBalance(loads []RankLoad, numPEs int) bool {
	th := g.Threshold
	if th <= 0 {
		th = 1.1
	}
	return Imbalance(loads, numPEs) > th
}

// GreedyLB sorts ranks by decreasing load and assigns each to the
// currently least-loaded PE. It produces near-optimal balance but
// ignores current placement, so it migrates aggressively.
type GreedyLB struct{}

// Name implements Strategy.
func (GreedyLB) Name() string { return "GreedyLB" }

// Rebalance implements Strategy.
func (GreedyLB) Rebalance(loads []RankLoad, numPEs int) []int {
	assign := make([]int, len(loads))
	peLoad := make([]sim.Time, numPEs)
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	// Pin non-migratable ranks first.
	for i, l := range loads {
		if !l.Migratable {
			assign[i] = l.PE
			peLoad[l.PE] += l.Load
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]].Load > loads[order[b]].Load })
	for _, i := range order {
		if !loads[i].Migratable {
			continue
		}
		best := 0
		for pe := 1; pe < numPEs; pe++ {
			if peLoad[pe] < peLoad[best] {
				best = pe
			}
		}
		assign[i] = best
		peLoad[best] += loads[i].Load
	}
	return assign
}

// GreedyRefineLB improves balance while minimizing migrations: only
// PEs loaded above a tolerance over the mean donate ranks, and they
// donate their smallest ranks first to the least-loaded PEs. This is
// the strategy the paper's ADCIRC runs use.
//
// GreedyRefineLB is shrink-aware: ranks whose current PE is outside
// [0, numPEs) (their node failed, or its cores were returned to the
// scheduler) are treated as displaced and placed first, heaviest onto
// the least-loaded surviving PE, before the refinement pass runs. This
// is the remap restart-with-shrink recovery drives.
//
// It is also expand-aware: when Expand names freshly arrived PEs, the
// donation pass sends ranks only onto those arrivals, so an expansion
// migrates exactly the work needed to fill the new capacity instead of
// reshuffling the whole machine.
type GreedyRefineLB struct {
	// Tolerance is the allowed overload ratio over the mean before a
	// PE must donate (default 1.05).
	Tolerance float64
	// Expand optionally names PE ids that just joined the machine
	// (empty, inside [0, numPEs)). When non-empty, donations target
	// only these PEs — the rebalance-onto-arrivals pass an expansion
	// epoch runs. Displaced ranks may still land anywhere.
	Expand []int
}

// Name implements Strategy.
func (GreedyRefineLB) Name() string { return "GreedyRefineLB" }

// Rebalance implements Strategy.
func (g GreedyRefineLB) Rebalance(loads []RankLoad, numPEs int) []int {
	tol := g.Tolerance
	if tol <= 0 {
		tol = 1.05
	}
	assign := make([]int, len(loads))
	peLoad := make([]sim.Time, numPEs)
	byPE := make([][]int, numPEs)
	var displaced []int
	var total sim.Time
	for i, l := range loads {
		if l.Displaced(numPEs) {
			displaced = append(displaced, i)
			total += l.Load
			continue
		}
		assign[i] = l.PE
		peLoad[l.PE] += l.Load
		byPE[l.PE] = append(byPE[l.PE], i)
		total += l.Load
	}
	// Place displaced ranks first, heaviest onto the least-loaded
	// surviving PE, so the refinement below starts from a full (and
	// already sensible) mapping.
	sort.SliceStable(displaced, func(a, b int) bool {
		return loads[displaced[a]].Load > loads[displaced[b]].Load
	})
	for _, i := range displaced {
		dest := 0
		for pe := 1; pe < numPEs; pe++ {
			if peLoad[pe] < peLoad[dest] {
				dest = pe
			}
		}
		assign[i] = dest
		peLoad[dest] += loads[i].Load
		byPE[dest] = append(byPE[dest], i)
	}
	if total == 0 || numPEs <= 1 {
		return assign
	}
	threshold := sim.Time(float64(total) / float64(numPEs) * tol)

	// Donation destinations: all PEs normally, or just the arrivals
	// when an expand target set is given.
	var dests []int
	for _, pe := range g.Expand {
		if pe >= 0 && pe < numPEs {
			dests = append(dests, pe)
		}
	}
	if len(dests) == 0 {
		dests = make([]int, numPEs)
		for pe := range dests {
			dests[pe] = pe
		}
	}

	// Donate smallest ranks from overloaded PEs to the least-loaded PE
	// until every PE fits under the threshold or no move helps.
	for pe := 0; pe < numPEs; pe++ {
		// Sort this PE's ranks by increasing load so we donate the
		// cheapest state first (fewest bytes moved per unit of balance
		// gained).
		ids := byPE[pe]
		sort.SliceStable(ids, func(a, b int) bool { return loads[ids[a]].Load < loads[ids[b]].Load })
		for peLoad[pe] > threshold {
			moved := false
			for _, i := range ids {
				if assign[i] != pe || !loads[i].Migratable || loads[i].Load == 0 {
					continue
				}
				// Least-loaded destination among the candidates.
				dest := dests[0]
				for _, q := range dests[1:] {
					if peLoad[q] < peLoad[dest] {
						dest = q
					}
				}
				if dest == pe || peLoad[dest]+loads[i].Load >= peLoad[pe] {
					break
				}
				assign[i] = dest
				peLoad[pe] -= loads[i].Load
				peLoad[dest] += loads[i].Load
				moved = true
				break
			}
			if !moved {
				break
			}
		}
	}
	return assign
}

// RotateLB moves every migratable rank to the next PE; useful for
// exercising migration machinery deterministically in tests.
type RotateLB struct{}

// Name implements Strategy.
func (RotateLB) Name() string { return "RotateLB" }

// Rebalance implements Strategy.
func (RotateLB) Rebalance(loads []RankLoad, numPEs int) []int {
	assign := make([]int, len(loads))
	for i, l := range loads {
		if l.Migratable {
			assign[i] = (l.PE + 1) % numPEs
		} else {
			assign[i] = l.PE
		}
	}
	return assign
}

// HierarchicalLB balances in two levels, the way Charm++'s hybrid
// balancers scale to large machines: first ranks move between *nodes*
// only as needed to equalize node totals (each inter-node move pays
// network transfer for the whole rank payload — expensive under
// PIEglobals), then each node refines locally across its own PEs
// (cheap shared-memory moves).
type HierarchicalLB struct {
	// PEsPerNode groups PE ids into nodes: PEs [k*G, (k+1)*G) form
	// node k.
	PEsPerNode int
	// Tolerance is the allowed overload ratio at both levels
	// (default 1.05).
	Tolerance float64
}

// Name implements Strategy.
func (HierarchicalLB) Name() string { return "HierarchicalLB" }

// Rebalance implements Strategy.
func (h HierarchicalLB) Rebalance(loads []RankLoad, numPEs int) []int {
	g := h.PEsPerNode
	if g <= 0 || g > numPEs {
		g = numPEs
	}
	tol := h.Tolerance
	if tol <= 0 {
		tol = 1.05
	}
	numNodes := (numPEs + g - 1) / g
	nodeOf := func(pe int) int { return pe / g }

	// Level 1: balance across nodes. Project ranks onto nodes and run
	// the refine donation at node granularity.
	nodeLoads := make([]RankLoad, len(loads))
	for i, l := range loads {
		nodeLoads[i] = RankLoad{VP: l.VP, PE: nodeOf(l.PE), Load: l.Load, Migratable: l.Migratable}
	}
	nodeAssign := GreedyRefineLB{Tolerance: tol}.Rebalance(nodeLoads, numNodes)

	// Materialize node decisions as PE assignments: a rank that stays
	// on its node keeps its PE; a mover lands on its new node's
	// least-loaded PE (refined below anyway).
	assign := make([]int, len(loads))
	peLoad := make([]sim.Time, numPEs)
	for i, l := range loads {
		if nodeAssign[i] == nodeOf(l.PE) {
			assign[i] = l.PE
			peLoad[l.PE] += l.Load
		} else {
			assign[i] = -1
		}
	}
	for i, l := range loads {
		if assign[i] >= 0 {
			continue
		}
		lo := nodeAssign[i] * g
		hi := lo + g
		if hi > numPEs {
			hi = numPEs
		}
		best := lo
		for pe := lo + 1; pe < hi; pe++ {
			if peLoad[pe] < peLoad[best] {
				best = pe
			}
		}
		assign[i] = best
		peLoad[best] += l.Load
	}

	// Level 2: refine within each node.
	for n := 0; n < numNodes; n++ {
		lo := n * g
		hi := lo + g
		if hi > numPEs {
			hi = numPEs
		}
		var idx []int
		var local []RankLoad
		for i := range loads {
			if assign[i] >= lo && assign[i] < hi {
				idx = append(idx, i)
				local = append(local, RankLoad{
					VP: loads[i].VP, PE: assign[i] - lo,
					Load: loads[i].Load, Migratable: loads[i].Migratable,
				})
			}
		}
		sub := GreedyRefineLB{Tolerance: tol}.Rebalance(local, hi-lo)
		for j, i := range idx {
			assign[i] = lo + sub[j]
		}
	}
	return assign
}

// CrossNodeMoves counts assignments that change a rank's node — the
// expensive moves a topology-aware balancer minimizes.
func CrossNodeMoves(loads []RankLoad, assign []int, pesPerNode int) int {
	if pesPerNode <= 0 {
		return 0
	}
	n := 0
	for i, l := range loads {
		if l.PE/pesPerNode != assign[i]/pesPerNode {
			n++
		}
	}
	return n
}

// EvacuateLB empties a set of PEs — the mechanism behind dynamic job
// shrink (§2.1): before releasing cores back to the scheduler, every
// rank resident on a departing PE migrates to the least-loaded
// remaining PE. Ranks elsewhere stay put.
type EvacuateLB struct {
	// Departing lists PE ids that must end up empty.
	Departing []int
}

// Name implements Strategy.
func (e EvacuateLB) Name() string { return "EvacuateLB" }

// Rebalance implements Strategy.
func (e EvacuateLB) Rebalance(loads []RankLoad, numPEs int) []int {
	leaving := make(map[int]bool, len(e.Departing))
	for _, pe := range e.Departing {
		leaving[pe] = true
	}
	assign := make([]int, len(loads))
	peLoad := make([]sim.Time, numPEs)
	for i, l := range loads {
		assign[i] = l.PE
		peLoad[l.PE] += l.Load
	}
	// Move evacuees one at a time, heaviest first, to the least-loaded
	// surviving PE.
	order := make([]int, 0, len(loads))
	for i, l := range loads {
		if leaving[l.PE] && l.Migratable {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]].Load > loads[order[b]].Load })
	for _, i := range order {
		dest := -1
		for pe := 0; pe < numPEs; pe++ {
			if leaving[pe] {
				continue
			}
			if dest < 0 || peLoad[pe] < peLoad[dest] {
				dest = pe
			}
		}
		if dest < 0 {
			// Every PE is departing; nothing valid to do.
			break
		}
		peLoad[loads[i].PE] -= loads[i].Load
		peLoad[dest] += loads[i].Load
		assign[i] = dest
	}
	return assign
}

// NullLB keeps every rank in place (baseline for ablations).
type NullLB struct{}

// Name implements Strategy.
func (NullLB) Name() string { return "NullLB" }

// Rebalance implements Strategy.
func (NullLB) Rebalance(loads []RankLoad, numPEs int) []int {
	assign := make([]int, len(loads))
	for i, l := range loads {
		assign[i] = l.PE
	}
	return assign
}
