package lb

import (
	"fmt"
	"testing"

	"provirt/internal/sim"
	"provirt/internal/trace"
)

// Expand-direction coverage: the target set is larger than the set the
// ranks currently occupy (nodes arrived), and GreedyRefineLB must
// donate onto the arrivals — and only onto them.

func TestGreedyRefineExpandDonatesOntoArrivals(t *testing.T) {
	// Four busy PEs; PEs 4 and 5 just arrived empty. Every rank starts
	// inside [0,4), the target set is 6 wide.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(40), Migratable: true},
		{VP: 1, PE: 0, Load: ms(10), Migratable: true},
		{VP: 2, PE: 1, Load: ms(30), Migratable: true},
		{VP: 3, PE: 1, Load: ms(10), Migratable: true},
		{VP: 4, PE: 2, Load: ms(30), Migratable: true},
		{VP: 5, PE: 2, Load: ms(10), Migratable: true},
		{VP: 6, PE: 3, Load: ms(30), Migratable: true},
		{VP: 7, PE: 3, Load: ms(10), Migratable: true},
	}
	const numPEs = 6
	assign := GreedyRefineLB{Expand: []int{4, 5}}.Rebalance(loads, numPEs)
	if err := Validate(loads, numPEs, assign); err != nil {
		t.Fatal(err)
	}
	// Every move must land on an arrival; unmoved ranks stay put.
	moves := 0
	for i, pe := range assign {
		if pe == loads[i].PE {
			continue
		}
		moves++
		if pe != 4 && pe != 5 {
			t.Errorf("rank %d moved to PE %d, not an arrival", loads[i].VP, pe)
		}
	}
	if moves == 0 {
		t.Fatal("expansion moved nothing onto the new PEs")
	}
	// Both arrivals must actually receive work.
	peLoad := PELoads(applyAssign(loads, assign), numPEs)
	if peLoad[4] == 0 || peLoad[5] == 0 {
		t.Errorf("arrival loads = %v / %v, want both non-zero", peLoad[4], peLoad[5])
	}
	// Balance must improve.
	before := Imbalance(loads, numPEs)
	after := Imbalance(applyAssign(loads, assign), numPEs)
	if after >= before {
		t.Errorf("imbalance %v -> %v, want improvement", before, after)
	}
}

func TestGreedyRefineExpandGolden(t *testing.T) {
	// Pinned decision for the canonical expand shape: 2 busy PEs, one
	// arrival. The overloaded PE donates its cheapest migratable state
	// onto the arrival.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(40), Migratable: true},
		{VP: 1, PE: 0, Load: ms(20), Migratable: true},
		{VP: 2, PE: 0, Load: ms(10), Migratable: true},
		{VP: 3, PE: 1, Load: ms(30), Migratable: true},
	}
	const numPEs = 3
	assign := GreedyRefineLB{Expand: []int{2}}.Rebalance(loads, numPEs)
	if err := Validate(loads, numPEs, assign); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 2, 1}
	if fmt.Sprint(assign) != fmt.Sprint(want) {
		t.Errorf("assignment = %v, want %v", assign, want)
	}
}

func TestGreedyRefineExpandEmptySetMatchesDefault(t *testing.T) {
	// An absent (or fully out-of-range) expand set must reproduce the
	// default refinement byte for byte — the churn-free guarantee at
	// the strategy layer.
	loads := []RankLoad{
		{VP: 0, PE: 0, Load: ms(40), Migratable: true},
		{VP: 1, PE: 0, Load: ms(10), Migratable: true},
		{VP: 2, PE: 1, Load: ms(20), Migratable: true},
		{VP: 3, PE: 2, Load: ms(10), Migratable: true},
		{VP: 4, PE: 3, Load: ms(10), Migratable: true},
	}
	const numPEs = 4
	base := GreedyRefineLB{}.Rebalance(loads, numPEs)
	nilSet := GreedyRefineLB{Expand: nil}.Rebalance(loads, numPEs)
	oob := GreedyRefineLB{Expand: []int{numPEs + 7, -1}}.Rebalance(loads, numPEs)
	if fmt.Sprint(nilSet) != fmt.Sprint(base) || fmt.Sprint(oob) != fmt.Sprint(base) {
		t.Errorf("expand-less runs diverge: base %v, nil %v, oob %v", base, nilSet, oob)
	}
}

func TestGreedyRefineExpandPlacesDisplacedToo(t *testing.T) {
	// Expand and displaced ranks can coexist (rolling restart: a node
	// left and another arrived). Displaced ranks may land anywhere;
	// donations still target the arrivals only.
	loads := []RankLoad{
		{VP: 0, PE: -1, Load: ms(30), Migratable: true},
		{VP: 1, PE: 0, Load: ms(40), Migratable: true},
		{VP: 2, PE: 0, Load: ms(10), Migratable: true},
		{VP: 3, PE: 1, Load: ms(20), Migratable: true},
	}
	const numPEs = 3
	assign := GreedyRefineLB{Expand: []int{2}}.Rebalance(loads, numPEs)
	if err := Validate(loads, numPEs, assign); err != nil {
		t.Fatal(err)
	}
	if assign[0] < 0 || assign[0] >= numPEs {
		t.Fatalf("displaced rank left unplaced: %v", assign)
	}
}

func applyAssign(loads []RankLoad, assign []int) []RankLoad {
	out := make([]RankLoad, len(loads))
	for i, l := range loads {
		out[i] = l
		out[i].PE = assign[i]
	}
	return out
}

func TestAutoscalerDecide(t *testing.T) {
	a := Autoscaler{TargetUtil: 0.75, MinNodes: 1, MaxNodes: 8, StepNodes: 2}
	cases := []struct {
		util  float64
		nodes int
		want  int
	}{
		{0.75, 4, 0},  // on target: hold
		{0.80, 4, 0},  // inside the dead band: hold
		{0.55, 4, 0},  // still inside band (low water 0.50)
		{0.95, 4, 1},  // above high water: grow toward ideal 5
		{1.00, 4, 1},  // saturated: grow
		{0.98, 6, 2},  // ideal 8, step-capped at +2
		{0.30, 4, -2}, // far under: shrink toward ideal 2
		{0.10, 2, -1}, // ideal 0 clamps to MinNodes=1
		{0.99, 8, 0},  // already at MaxNodes
		{0.40, 1, 0},  // can't shrink below MinNodes
	}
	for _, c := range cases {
		if got := a.Decide(c.util, c.nodes); got != c.want {
			t.Errorf("Decide(%.2f, %d) = %+d, want %+d", c.util, c.nodes, got, c.want)
		}
	}
}

func TestAutoscalerValidate(t *testing.T) {
	if err := (Autoscaler{}).Validate(); err != nil {
		t.Errorf("zero-value autoscaler should validate: %v", err)
	}
	if err := (Autoscaler{LowWater: 0.9, HighWater: 0.5}).Validate(); err == nil {
		t.Error("inverted band accepted")
	}
	if err := (Autoscaler{MinNodes: 4, MaxNodes: 2}).Validate(); err == nil {
		t.Error("inverted node bounds accepted")
	}
}

func TestUtilizationFromProfile(t *testing.T) {
	p := &trace.Profile{
		Span: 100 * millisecond,
		PEs: []trace.PEProfile{
			{PE: 0, Busy: 80 * millisecond},
			{PE: 1, Busy: 40 * millisecond},
		},
	}
	if got, want := Utilization(p), 0.6; got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	if got := Utilization(nil); got != 0 {
		t.Errorf("Utilization(nil) = %v, want 0", got)
	}
	if got := Utilization(&trace.Profile{}); got != 0 {
		t.Errorf("Utilization(empty) = %v, want 0", got)
	}
}

const millisecond = sim.Time(1e6)
