package resultstore

import "provirt/internal/obs"

// Package-level instruments, nil (no-op) by default, following the obs
// discipline: an un-instrumented store pays one pointer comparison per
// hook site.
var (
	evictions *obs.Counter
	corrupt   *obs.Counter
)

// EnableObs registers the store's instruments in r; EnableObs(nil)
// restores the no-op state. Call between requests/runs — installation
// is not synchronized with concurrent store use.
func EnableObs(r *obs.Registry) {
	if r == nil {
		evictions, corrupt = nil, nil
		return
	}
	evictions = r.Counter("resultstore_evictions_total",
		"entries evicted from the in-memory LRU index (disk copies are kept)")
	corrupt = r.Counter("resultstore_corrupt_skipped_total",
		"on-disk entries skipped because the header, length, or checksum failed verification")
}

// Evictions and CorruptSkipped expose the counters for tests and
// launchers that report cache health without scraping the registry.
func Evictions() uint64      { return evictions.Value() }
func CorruptSkipped() uint64 { return corrupt.Value() }
