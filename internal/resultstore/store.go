// Package resultstore is the content-addressed result cache behind the
// experiment server: an on-disk store of opaque payloads keyed by
// (kind, content hash) and partitioned by code version, fronted by a
// bounded in-memory LRU index.
//
// The store exists because the simulation is deterministic: a Spec's
// hash fully identifies its output for one build of the code, so a
// result computed once never needs computing again. The code version
// partitions the keyspace instead of invalidating it — results from an
// old build stay on disk (useful for cross-version diffing) but are
// never served for a new one.
//
// Durability and concurrency discipline:
//
//   - Writes are atomic: payload goes to a temp file in the target
//     directory, is synced, then renamed over the final path. Readers
//     therefore never observe a half-written entry under POSIX rename
//     semantics; a crash leaves at worst an orphaned temp file.
//   - Loads are corruption-tolerant: every entry carries a header with
//     the payload length and SHA-256. A truncated, garbled, or
//     mis-keyed file is counted (resultstore_corrupt_skipped_total)
//     and treated as a miss — never a panic, never served.
//   - Locking follows the short-critical-section discipline the Go
//     optimistic-concurrency study recommends: the mutex guards only
//     the map/LRU index; all file I/O and hashing happen outside it,
//     so concurrent readers never serialize behind the disk.
package resultstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
)

// DefaultMaxEntries bounds the in-memory index when Open is given no
// explicit capacity.
const DefaultMaxEntries = 1024

// magic leads every entry file; the version number guards the framing
// format itself.
const magic = "provirt-result 1"

// CodeVersion identifies the running build for cache partitioning: the
// VCS revision stamped into the binary (suffixed "+dirty" when built
// from a modified tree), or "dev" when no build info is available
// (e.g. `go test` binaries).
func CodeVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev == "" {
		return "dev"
	}
	if modified == "true" {
		return rev + "+dirty"
	}
	return rev
}

// Store is one version-partition of the on-disk cache plus its
// in-memory LRU index. Methods are safe for concurrent use.
type Store struct {
	dir        string // version-specific root directory
	maxEntries int

	// mu guards exactly the three index fields below — never file I/O.
	mu    sync.Mutex
	byKey map[string]*list.Element // -> *entry
	lru   *list.List               // front = most recently used
}

// entry is one cached payload in the memory index.
type entry struct {
	key     string
	payload []byte
}

// Open returns the store rooted at dir for the given code version,
// creating directories as needed. maxEntries bounds the in-memory
// index (<= 0 selects DefaultMaxEntries); the disk is unbounded and
// never evicted.
func Open(dir, version string, maxEntries int) (*Store, error) {
	if version == "" {
		version = "dev"
	}
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	root := filepath.Join(dir, sanitize(version))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{
		dir:        root,
		maxEntries: maxEntries,
		byKey:      make(map[string]*list.Element),
		lru:        list.New(),
	}, nil
}

// sanitize maps an arbitrary token onto a safe path segment.
func sanitize(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// path places an entry on disk: kind partitions the namespace (point
// results vs run manifests), the hash's leading byte fans entries
// across subdirectories so no single directory grows unboundedly.
func (s *Store) path(kind, hash string) string {
	kind = sanitize(kind)
	hash = sanitize(hash)
	shard := "00"
	if len(hash) >= 2 {
		shard = hash[:2]
	}
	return filepath.Join(s.dir, kind, shard, hash+".res")
}

func indexKey(kind, hash string) string { return kind + "/" + hash }

// Get returns the payload stored under (kind, hash), consulting the
// memory index first and falling back to disk. The returned bytes are
// shared — callers must treat them as read-only. ok is false on a
// miss, including entries that failed the corruption check.
func (s *Store) Get(kind, hash string) (payload []byte, ok bool) {
	key := indexKey(kind, hash)
	s.mu.Lock()
	if el, hit := s.byKey[key]; hit {
		s.lru.MoveToFront(el)
		p := el.Value.(*entry).payload
		s.mu.Unlock()
		return p, true
	}
	s.mu.Unlock()

	// Disk read and verification happen outside the lock.
	payload, ok = s.load(s.path(kind, hash), hash)
	if !ok {
		return nil, false
	}
	s.insert(key, payload)
	return payload, true
}

// Put stores payload under (kind, hash): atomic write-then-rename on
// disk, then index insertion. The store keeps a reference to payload;
// callers must not mutate it afterwards.
func (s *Store) Put(kind, hash string, payload []byte) error {
	path := s.path(kind, hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", magic, sanitize(hash), len(payload), hex.EncodeToString(sum[:]))
	_, err = tmp.WriteString(header)
	if err == nil {
		_, err = tmp.Write(payload)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.insert(indexKey(kind, hash), payload)
	return nil
}

// insert adds (or refreshes) an index entry and evicts past capacity.
func (s *Store) insert(key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, hit := s.byKey[key]; hit {
		el.Value.(*entry).payload = payload
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[key] = s.lru.PushFront(&entry{key: key, payload: payload})
	for s.lru.Len() > s.maxEntries {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.byKey, back.Value.(*entry).key)
		evictions.Inc()
	}
}

// Len reports the number of entries in the memory index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// load reads and verifies one entry file. Any deviation — missing
// file, bad magic, wrong hash, short payload, checksum mismatch —
// is a miss; corruption (as opposed to plain absence) is counted.
func (s *Store) load(path, wantHash string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false // plain miss: the entry was never written
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		corrupt.Inc()
		return nil, false
	}
	fields := strings.Fields(string(data[:nl]))
	// magic is two tokens, then hash, length, checksum.
	if len(fields) != 5 || fields[0]+" "+fields[1] != magic || fields[2] != sanitize(wantHash) {
		corrupt.Inc()
		return nil, false
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		corrupt.Inc()
		return nil, false
	}
	payload := data[nl+1:]
	if len(payload) != n {
		corrupt.Inc()
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[4] {
		corrupt.Inc()
		return nil, false
	}
	return payload, true
}
