package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"provirt/internal/obs"
)

func TestCodeVersionNonEmpty(t *testing.T) {
	if CodeVersion() == "" {
		t.Fatal("empty code version")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, "v1", 8)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"row":42}`)
	if err := st.Put("pt", "abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("pt", "abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("memory get: ok=%v payload=%q", ok, got)
	}

	// A fresh store over the same directory must hit disk.
	st2, err := Open(dir, "v1", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = st2.Get("pt", "abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk get: ok=%v payload=%q", ok, got)
	}

	// No temp files left behind by the write-then-rename protocol.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			t.Errorf("orphaned temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVersionPartitions(t *testing.T) {
	dir := t.TempDir()
	st1, _ := Open(dir, "v1", 8)
	st2, _ := Open(dir, "v2", 8)
	if err := st1.Put("pt", "k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get("pt", "k"); ok {
		t.Fatal("v2 store served a v1 result")
	}
}

func TestKindPartitions(t *testing.T) {
	st, _ := Open(t.TempDir(), "v1", 8)
	if err := st.Put("pt", "k", []byte("point")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("run", "k"); ok {
		t.Fatal("run namespace served a point result")
	}
}

func TestMissOnAbsentIsNotCorrupt(t *testing.T) {
	reg := obs.NewRegistry()
	EnableObs(reg)
	defer EnableObs(nil)
	st, _ := Open(t.TempDir(), "v1", 8)
	if _, ok := st.Get("pt", "nothere"); ok {
		t.Fatal("hit on absent key")
	}
	if CorruptSkipped() != 0 {
		t.Fatalf("plain miss counted as corruption: %d", CorruptSkipped())
	}
}

// Satellite: a truncated or garbage entry on disk is skipped with a
// counted metric, never a panic, and never served.
func TestCorruptEntriesSkippedAndCounted(t *testing.T) {
	reg := obs.NewRegistry()
	EnableObs(reg)
	defer EnableObs(nil)

	dir := t.TempDir()
	st, err := Open(dir, "v1", 8)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"row":1}`)

	corruptions := []struct {
		name    string
		mutate  func(path string) error
	}{
		{"garbage", func(p string) error { return os.WriteFile(p, []byte("not a result file"), 0o644) }},
		{"empty", func(p string) error { return os.WriteFile(p, nil, 0o644) }},
		{"truncated-payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)-3], 0o644)
		}},
		{"flipped-byte", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0xff
			return os.WriteFile(p, data, 0o644)
		}},
		{"header-only", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			nl := bytes.IndexByte(data, '\n')
			return os.WriteFile(p, data[:nl+1], 0o644)
		}},
	}
	for i, c := range corruptions {
		hash := fmt.Sprintf("hash%d", i)
		if err := st.Put("pt", hash, payload); err != nil {
			t.Fatalf("%s: put: %v", c.name, err)
		}
		path := st.path("pt", hash)
		if err := c.mutate(path); err != nil {
			t.Fatalf("%s: mutate: %v", c.name, err)
		}
		// Fresh store so the memory index doesn't mask the disk state.
		cold, err := Open(dir, "v1", 8)
		if err != nil {
			t.Fatal(err)
		}
		before := CorruptSkipped()
		got, ok := cold.Get("pt", hash)
		if ok {
			t.Errorf("%s: corrupt entry served: %q", c.name, got)
		}
		if CorruptSkipped() != before+1 {
			t.Errorf("%s: corrupt counter %d, want %d", c.name, CorruptSkipped(), before+1)
		}
	}
}

func TestLRUEvictionCountsAndKeepsDisk(t *testing.T) {
	reg := obs.NewRegistry()
	EnableObs(reg)
	defer EnableObs(nil)

	st, err := Open(t.TempDir(), "v1", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Put("pt", fmt.Sprintf("h%d", i), []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("index length %d, want 2", st.Len())
	}
	if Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", Evictions())
	}
	// The evicted entry (h0, least recently used) reloads from disk.
	got, ok := st.Get("pt", "h0")
	if !ok || string(got) != "p0" {
		t.Fatalf("evicted entry lost: ok=%v payload=%q", ok, got)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir(), "v1", 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				hash := fmt.Sprintf("h%d", (g+i)%24)
				want := []byte("payload-" + hash)
				if err := st.Put("pt", hash, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := st.Get("pt", hash); ok && !bytes.Equal(got, want) {
					t.Errorf("got %q, want %q", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
