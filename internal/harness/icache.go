package harness

import (
	"provirt/internal/mem"
	"provirt/internal/papi"
	"provirt/internal/trace"
)

// ICacheRow is one site's result in the §4.5 instruction-cache
// experiment.
type ICacheRow struct {
	Site      string
	TLSMisses uint64
	PIEMisses uint64
	// Winner is "pieglobals" or "tlsglobals" (fewer misses).
	Winner string
	// Advantage is 1 - winner/loser misses (the paper reports 22% and
	// 15%).
	Advantage float64
}

// icacheModel builds the fetch-trace model for the Jacobi-3D hot loop
// under the two methods.
//
// The key codegen asymmetry: TLSglobals compiles every privatized
// access into TLS-indirect addressing (-mno-tls-direct-seg-refs), which
// inflates the shared hot loop's instruction footprint; PIEglobals
// keeps PC-relative addressing (compact code) but gives every rank its
// own copy of it. Which effect dominates depends on the cache geometry
// — the mechanism behind the paper's contradictory site results.
func icacheModel(shared bool, ranks int, hotBytes uint64) papi.ExecModel {
	bases := make([]uint64, ranks)
	for i := range bases {
		if shared {
			bases[i] = 0x0000_7000_0040_0000 // one copy mapped by ld.so
		} else {
			// Per-rank Isomalloc copies at rank-strided bases.
			bases[i] = mem.RankRangeBase(i) + 0x1000
		}
	}
	return papi.ExecModel{
		RankCodeBases:  bases,
		HotBytes:       hotBytes,
		SchedBase:      0x0000_7000_0000_0000,
		SchedBytes:     2 << 10,
		Switches:       4096,
		LoopsPerTurn:   1,
		RankExtraBytes: 16 << 10,
	}
}

// ICacheSites returns the two measured cache geometries.
func ICacheSites() []papi.CacheConfig {
	return []papi.CacheConfig{papi.Bridges2L1I(), papi.Stampede2L1I()}
}

// tlsCodeInflation is the hot-loop footprint growth from TLS-indirect
// codegen relative to PC-relative PIE code (every privatized access
// costs extra instruction bytes under -mno-tls-direct-seg-refs).
const tlsCodeInflation = 1.45

// pieHotBytes is the PIE hot-loop instruction footprint per rank.
const pieHotBytes = 24 << 10

// ICacheRanks is the virtualization degree of the i-cache experiment.
const ICacheRanks = 8

// ICacheExperiment runs the Jacobi-3D fetch-trace model on both cache
// geometries, reproducing §4.5's contradictory outcome: PIEglobals has
// fewer L1I misses on the Bridges-2 geometry while TLSglobals has fewer
// on the Stampede2 geometry.
func ICacheExperiment() ([]ICacheRow, *trace.Table) {
	inflation := tlsCodeInflation // force non-constant arithmetic
	tlsHot := uint64(pieHotBytes * inflation)
	var rows []ICacheRow
	for _, site := range ICacheSites() {
		tls := papi.Simulate(site, icacheModel(true, ICacheRanks, tlsHot))
		pie := papi.Simulate(site, icacheModel(false, ICacheRanks, pieHotBytes))
		row := ICacheRow{Site: site.Name, TLSMisses: tls.Misses, PIEMisses: pie.Misses}
		if pie.Misses < tls.Misses {
			row.Winner = "pieglobals"
			row.Advantage = 1 - float64(pie.Misses)/float64(tls.Misses)
		} else {
			row.Winner = "tlsglobals"
			row.Advantage = 1 - float64(tls.Misses)/float64(pie.Misses)
		}
		rows = append(rows, row)
	}
	t := trace.NewTable("Section 4.5: L1 instruction cache misses (Jacobi-3D fetch model)",
		"Site", "TLSglobals misses", "PIEglobals misses", "Fewer misses", "Advantage")
	for _, r := range rows {
		t.AddRowf(r.Site, r.TLSMisses, r.PIEMisses, r.Winner, r.Advantage*100)
	}
	return rows, t
}
