package harness_test

import (
	"strings"
	"testing"
	"time"

	"provirt/internal/harness"
	"provirt/internal/sim"
	"provirt/internal/workloads/adcirc"
)

// tinyRunOpts shrinks every parameterized experiment to smoke-test
// scale while exercising its full code path.
func tinyRunOpts(par int) harness.RunOpts {
	cfg := adcirc.DefaultConfig()
	cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
	return harness.RunOpts{
		Opts:       harness.Opts{Parallelism: par},
		Nodes:      1,
		NodeCounts: []int{1, 2},
		Cores:      []int{1, 2},
		MTBFs:      []sim.Time{120 * time.Millisecond, 960 * time.Millisecond},
		Adcirc:     cfg,
		ScaleVPs:   4096,
	}
}

// TestRegistryGoldenSmoke runs every registered experiment at tiny
// scale and pins the engine-wide determinism contract at the registry
// boundary: every entry renders non-empty tables, and the rendered
// bytes are identical between a serial and a parallel sweep.
func TestRegistryGoldenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, e := range harness.Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			render := func(par int) string {
				res, err := e.Run(tinyRunOpts(par))
				if err != nil {
					t.Fatalf("%s: %v", e.Name, err)
				}
				var sb strings.Builder
				for _, tbl := range res.Tables {
					sb.WriteString(tbl.String())
					sb.WriteByte('\n')
				}
				return sb.String()
			}
			serial := render(1)
			if strings.TrimSpace(serial) == "" {
				t.Fatalf("%s rendered no table text", e.Name)
			}
			parallel := render(4)
			if serial != parallel {
				t.Errorf("%s output diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s",
					e.Name, serial, parallel)
			}
		})
	}
}

// TestRegistryLookup pins the registry's shape: canonical names
// resolve, aliases resolve to the same entry, unknown names miss, and
// the enumeration order is the `-experiment=all` execution order.
func TestRegistryLookup(t *testing.T) {
	wantOrder := []string{
		"tables", "fig5", "fig5scale", "fig6", "fig7", "fig8",
		"icache", "memory", "ftsweep", "table2", "scale", "elastic",
	}
	exps := harness.Experiments()
	if len(exps) != len(wantOrder) {
		t.Fatalf("%d experiments registered, want %d", len(exps), len(wantOrder))
	}
	for i, e := range exps {
		if e.Name != wantOrder[i] {
			t.Errorf("experiment %d is %q, want %q", i, e.Name, wantOrder[i])
		}
		if e.Description == "" {
			t.Errorf("%s has no description", e.Name)
		}
		if e.Traceable && len(e.TraceKeys) == 0 {
			t.Errorf("%s is traceable but names no trace keys", e.Name)
		}
		got, ok := harness.LookupExperiment(e.Name)
		if !ok || got.Name != e.Name {
			t.Errorf("LookupExperiment(%q) failed", e.Name)
		}
	}
	if e, ok := harness.LookupExperiment("fig9"); !ok || e.Name != "table2" {
		t.Error("alias fig9 should resolve to table2")
	}
	if _, ok := harness.LookupExperiment("fig99"); ok {
		t.Error("unknown experiment resolved")
	}
	names := harness.ExperimentNames()
	if len(names) != len(wantOrder)+1 { // +1 for the fig9 alias
		t.Errorf("ExperimentNames has %d entries: %v", len(names), names)
	}
}
