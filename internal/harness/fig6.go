package harness

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

// Fig6Row is one bar of Fig. 6: mean user-level thread context-switch
// time under one privatization method.
type Fig6Row struct {
	Method   core.Kind
	Switches uint64
	// PerSwitch is the mean time per ULT context switch, including
	// scheduling.
	PerSwitch sim.Time
	// OverBaseline is PerSwitch minus the no-privatization mean.
	OverBaseline sim.Time
}

// Fig6Methods are the methods the context-switch microbenchmark
// compares.
func Fig6Methods() []core.Kind {
	return []core.Kind{
		core.KindNone, core.KindSwapglobals, core.KindTLSglobals,
		core.KindPIPglobals, core.KindFSglobals, core.KindPIEglobals,
	}
}

// Fig6ContextSwitch runs the two-ULT ping microbenchmark (100,000
// switches) for each method and reports mean switch time (Fig. 6).
func Fig6ContextSwitch(o Opts) ([]Fig6Row, *trace.Table, error) {
	methods := Fig6Methods()
	rows := make([]Fig6Row, len(methods))
	err := o.runner().Run(len(methods), func(i int) error {
		kind := methods[i]
		sp := scenario.Spec{
			Machine: machineShape(1, 1, 1),
			VPs:     2,
			Method:  kind,
			Program: synth.Ping(),
			Tracer:  o.tracerFor(func(ts *TraceSel) bool { return ts.Method == kind }),
		}
		w, err := sp.Run()
		if err != nil {
			return fmt.Errorf("fig6 %s: %w", kind, err)
		}
		s := w.Scheds()[0]
		if s.Switches() == 0 {
			return fmt.Errorf("fig6 %s: no context switches recorded", kind)
		}
		per := s.SwitchTime() / sim.Time(s.Switches())
		rows[i] = Fig6Row{Method: kind, Switches: s.Switches(), PerSwitch: per}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var baseline sim.Time
	for i := range rows {
		if rows[i].Method == core.KindNone {
			baseline = rows[i].PerSwitch
		}
		rows[i].OverBaseline = rows[i].PerSwitch - baseline
	}
	t := trace.NewTable("Figure 6: ULT context switch time (lower is better)",
		"Method", "Switches", "ns/switch", "over baseline")
	for _, r := range rows {
		t.AddRow(r.Method.String(),
			fmt.Sprint(r.Switches),
			fmt.Sprintf("%d", r.PerSwitch.Nanoseconds()),
			fmt.Sprintf("+%dns", r.OverBaseline.Nanoseconds()))
	}
	return rows, t, nil
}
