// Package sweep fans independent simulation runs across worker
// goroutines.
//
// Every experiment in the harness regenerates its figure or table from
// many *independent* simulations: one world per (method, node count) or
// (core count, virtualization ratio) point, each with its own engine,
// cluster, and seed. A run never shares mutable state with another, so
// the sweep can execute them concurrently and still produce bit-for-bit
// the rows a serial loop would: each task writes only its own
// caller-owned slot, result assembly happens after Run returns, and
// error selection is position-stable. Determinism therefore comes from
// the engine (each run is a pure function of its config), not from the
// execution order of the sweep.
package sweep

import (
	"runtime"
	"sync"
	"time"
)

// PointDone describes one completed sweep task to a progress hook.
type PointDone struct {
	// Index is the task's index in [0,n); Worker the worker that ran
	// it (0 on a serial sweep).
	Index, Worker int
	// Done counts tasks completed so far, including this one; Total is
	// the sweep size, so Done ranges 1..Total over a sweep.
	Done, Total int
	// Elapsed is the task's host wall time. It never feeds back into
	// the simulation — it exists for throughput metrics and ETAs.
	Elapsed time.Duration
}

// Runner executes independent tasks with bounded parallelism.
type Runner struct {
	// Workers is the maximum number of concurrent tasks. Values <= 1
	// run the sweep serially on the calling goroutine.
	Workers int
	// OnStart, if non-nil, is called once with the sweep size before
	// any task runs.
	OnStart func(total int)
	// OnPoint, if non-nil, is called after each task completes,
	// including failed ones. Calls are serialized (never concurrent)
	// and Done is strictly increasing, so a hook can drive live
	// progress without its own locking. The hook observes the host
	// runtime only; task results are unaffected by its presence.
	OnPoint func(PointDone)
	// Acquire/Release, if non-nil, bracket every task: Acquire is
	// called (and must return) before the task runs, Release after it
	// finishes, on the same goroutine. They exist for admission
	// control when several Runners share one machine-wide execution
	// budget — e.g. the experiment server bounds total concurrent
	// simulations across requests by having every Runner block in
	// Acquire on a shared semaphore. Workers still caps this Runner's
	// own concurrency; the gate only tightens it. The measured Elapsed
	// reported to OnPoint covers the task only, not the wait in
	// Acquire.
	Acquire func()
	Release func()
}

// Default returns a runner sized to the machine.
func Default() Runner {
	return Runner{Workers: runtime.GOMAXPROCS(0)}
}

// Run executes task(0..n-1). Each task must be independent of the
// others and confine its writes to caller-owned state indexed by its
// own i (e.g. results[i]). All tasks run to completion even if some
// fail; Run returns the error of the lowest-indexed failed task, so
// the reported error does not depend on scheduling order.
func (r Runner) Run(n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if r.OnStart != nil {
		r.OnStart(n)
	}
	workers := r.Workers
	if workers > n {
		workers = n
	}
	// run executes one task inside the admission gate; the elapsed
	// time excludes the wait in Acquire, so per-point throughput
	// metrics measure simulation, not queueing.
	run := func(i int) (time.Duration, error) {
		if r.Acquire != nil {
			r.Acquire()
		}
		var began time.Time
		if r.OnPoint != nil {
			began = time.Now()
		}
		err := task(i)
		var elapsed time.Duration
		if r.OnPoint != nil {
			elapsed = time.Since(began)
		}
		if r.Release != nil {
			r.Release()
		}
		return elapsed, err
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			elapsed, err := run(i)
			if err != nil && first == nil {
				first = err
			}
			if r.OnPoint != nil {
				r.OnPoint(PointDone{Index: i, Done: i + 1, Total: n, Elapsed: elapsed})
			}
		}
		return first
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	// done and the OnPoint call share one mutex so hooks observe a
	// strictly increasing completion count and never run concurrently.
	var progressMu sync.Mutex
	done := 0
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := range next {
				var elapsed time.Duration
				elapsed, errs[i] = run(i)
				if r.OnPoint != nil {
					progressMu.Lock()
					done++
					r.OnPoint(PointDone{Index: i, Worker: w, Done: done, Total: n, Elapsed: elapsed})
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
