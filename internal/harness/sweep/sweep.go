// Package sweep fans independent simulation runs across worker
// goroutines.
//
// Every experiment in the harness regenerates its figure or table from
// many *independent* simulations: one world per (method, node count) or
// (core count, virtualization ratio) point, each with its own engine,
// cluster, and seed. A run never shares mutable state with another, so
// the sweep can execute them concurrently and still produce bit-for-bit
// the rows a serial loop would: each task writes only its own
// caller-owned slot, result assembly happens after Run returns, and
// error selection is position-stable. Determinism therefore comes from
// the engine (each run is a pure function of its config), not from the
// execution order of the sweep.
package sweep

import (
	"runtime"
	"sync"
)

// Runner executes independent tasks with bounded parallelism.
type Runner struct {
	// Workers is the maximum number of concurrent tasks. Values <= 1
	// run the sweep serially on the calling goroutine.
	Workers int
}

// Default returns a runner sized to the machine.
func Default() Runner {
	return Runner{Workers: runtime.GOMAXPROCS(0)}
}

// Run executes task(0..n-1). Each task must be independent of the
// others and confine its writes to caller-owned state indexed by its
// own i (e.g. results[i]). All tasks run to completion even if some
// fail; Run returns the error of the lowest-indexed failed task, so
// the reported error does not depend on scheduling order.
func (r Runner) Run(n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := task(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
