package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunFillsEverySlot(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 100)
		err := Runner{Workers: workers}.Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	want := errors.New("task 3")
	err := Runner{Workers: 8}.Run(10, func(i int) error {
		if i == 3 {
			return want
		}
		if i == 7 {
			return fmt.Errorf("task 7")
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
}

func TestRunAllTasksRunDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_ = Runner{Workers: 4}.Run(20, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if ran.Load() != 20 {
		t.Fatalf("%d tasks ran, want 20", ran.Load())
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := (Runner{Workers: 4}).Run(0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunActuallyParallel(t *testing.T) {
	// With 4 workers and 4 tasks that each wait for all 4 to start,
	// completion proves concurrent execution.
	const n = 4
	start := make(chan struct{})
	var started atomic.Int64
	err := Runner{Workers: n}.Run(n, func(i int) error {
		if started.Add(1) == n {
			close(start)
		}
		<-start
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSizedToMachine(t *testing.T) {
	if Default().Workers < 1 {
		t.Fatalf("Default().Workers = %d", Default().Workers)
	}
}
