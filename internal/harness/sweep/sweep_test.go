package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunFillsEverySlot(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 100)
		err := Runner{Workers: workers}.Run(len(out), func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	want := errors.New("task 3")
	err := Runner{Workers: 8}.Run(10, func(i int) error {
		if i == 3 {
			return want
		}
		if i == 7 {
			return fmt.Errorf("task 7")
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
}

func TestRunAllTasksRunDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_ = Runner{Workers: 4}.Run(20, func(i int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if ran.Load() != 20 {
		t.Fatalf("%d tasks ran, want 20", ran.Load())
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := (Runner{Workers: 4}).Run(0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunActuallyParallel(t *testing.T) {
	// With 4 workers and 4 tasks that each wait for all 4 to start,
	// completion proves concurrent execution.
	const n = 4
	start := make(chan struct{})
	var started atomic.Int64
	err := Runner{Workers: n}.Run(n, func(i int) error {
		if started.Add(1) == n {
			close(start)
		}
		<-start
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSizedToMachine(t *testing.T) {
	if Default().Workers < 1 {
		t.Fatalf("Default().Workers = %d", Default().Workers)
	}
}

// The progress hooks' contract under parallelism: OnStart fires once
// with the sweep size before any task, OnPoint calls are serialized
// with a strictly increasing Done of 1..n, every index is reported
// exactly once, and worker attribution stays in range.
func TestOnPointOrderingUnderParallelism(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		const n = 60
		var starts []int
		var inHook atomic.Int64
		lastDone := 0
		seen := make([]int, n)
		perWorker := make(map[int]int)
		r := Runner{
			Workers: workers,
			OnStart: func(total int) { starts = append(starts, total) },
			OnPoint: func(d PointDone) {
				if inHook.Add(1) != 1 {
					t.Errorf("workers=%d: OnPoint ran concurrently", workers)
				}
				defer inHook.Add(-1)
				if len(starts) == 0 {
					t.Fatalf("workers=%d: OnPoint before OnStart", workers)
				}
				if d.Total != n {
					t.Fatalf("workers=%d: Total = %d, want %d", workers, d.Total, n)
				}
				if d.Done != lastDone+1 {
					t.Fatalf("workers=%d: Done = %d after %d, want strict increments", workers, d.Done, lastDone)
				}
				lastDone = d.Done
				seen[d.Index]++
				if d.Worker < 0 || d.Worker >= workers {
					t.Fatalf("workers=%d: worker id %d out of range", workers, d.Worker)
				}
				perWorker[d.Worker]++
				if d.Elapsed < 0 {
					t.Fatalf("workers=%d: negative elapsed %v", workers, d.Elapsed)
				}
			},
		}
		err := r.Run(n, func(i int) error {
			if i%7 == 3 {
				return errors.New("some points fail")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected a task error", workers)
		}
		if len(starts) != 1 || starts[0] != n {
			t.Fatalf("workers=%d: OnStart calls %v, want one with %d", workers, starts, n)
		}
		if lastDone != n {
			t.Fatalf("workers=%d: final Done = %d, want %d (failed tasks must still report)", workers, lastDone, n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d reported %d times", workers, i, c)
			}
		}
		total := 0
		for _, c := range perWorker {
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: per-worker counts sum to %d, want %d", workers, total, n)
		}
	}
}

// Hooks must not change what Run computes: same slots filled, same
// lowest-indexed error.
func TestOnPointDoesNotPerturbResults(t *testing.T) {
	want := errors.New("task 5")
	out := make([]int, 40)
	err := Runner{
		Workers: 8,
		OnPoint: func(PointDone) {},
	}.Run(len(out), func(i int) error {
		out[i] = i + 1
		if i == 5 {
			return want
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// The admission gate's contract: every task is bracketed by exactly
// one Acquire/Release pair, and a gate backed by a shared semaphore
// bounds concurrency below Workers — the experiment server's pattern
// of many Runners sharing one machine-wide execution budget.
func TestAcquireReleaseGateBoundsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 8} {
		const n, slots = 30, 2
		sem := make(chan struct{}, slots)
		var acquired, released atomic.Int64
		var running, peak atomic.Int64
		r := Runner{
			Workers: workers,
			Acquire: func() { acquired.Add(1); sem <- struct{}{} },
			Release: func() { <-sem; released.Add(1) },
		}
		err := r.Run(n, func(i int) error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			running.Add(-1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if acquired.Load() != n || released.Load() != n {
			t.Fatalf("workers=%d: %d acquires / %d releases, want %d each",
				workers, acquired.Load(), released.Load(), n)
		}
		if peak.Load() > slots {
			t.Fatalf("workers=%d: %d tasks ran concurrently past the %d-slot gate",
				workers, peak.Load(), slots)
		}
	}
}

// Release runs even for failing tasks, so a shared semaphore can never
// leak slots.
func TestReleaseRunsOnTaskError(t *testing.T) {
	var balance atomic.Int64
	_ = Runner{
		Workers: 4,
		Acquire: func() { balance.Add(1) },
		Release: func() { balance.Add(-1) },
	}.Run(16, func(i int) error { return errors.New("boom") })
	if balance.Load() != 0 {
		t.Fatalf("acquire/release imbalance: %d", balance.Load())
	}
}
