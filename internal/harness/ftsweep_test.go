package harness_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// The fault-tolerance sweep's crash plans are compiled from per-point
// seeds before any world runs, so the sweep inherits the same
// determinism contract as every other experiment: rows, tables, and a
// selected point's trace are byte-identical at any parallelism, traced
// or not.

func ftTestMTBFs() []sim.Time {
	return []sim.Time{120 * time.Millisecond, 960 * time.Millisecond}
}

func TestFTSweepParallelSweepIsDeterministic(t *testing.T) {
	run := func(par int) (string, string) {
		rows, tbl, err := harness.FTSweep(harness.Opts{Parallelism: par}, ftTestMTBFs())
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	serialRows, serialTbl := run(1)
	parallelRows, parallelTbl := run(4)
	if serialRows != parallelRows {
		t.Errorf("ftsweep rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", serialRows, parallelRows)
	}
	if serialTbl != parallelTbl {
		t.Errorf("ftsweep table diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s", serialTbl, parallelTbl)
	}
}

func TestFaultTracedRunMatchesUntraced(t *testing.T) {
	run := func(o harness.Opts) (string, string) {
		rows, tbl, err := harness.FTSweep(o, ftTestMTBFs())
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	plainRows, plainTbl := run(harness.Opts{})
	o, rec := tracing(0, harness.TraceSel{
		Method: core.KindTLSglobals,
		Target: ampi.TargetFS,
		MTBF:   120 * time.Millisecond,
	})
	tracedRows, tracedTbl := run(o)
	if rec.Len() == 0 {
		t.Fatal("trace selection matched no ftsweep run")
	}
	if plainRows != tracedRows {
		t.Errorf("ftsweep rows diverge when traced:\nuntraced: %s\ntraced:   %s", plainRows, tracedRows)
	}
	if plainTbl != tracedTbl {
		t.Errorf("ftsweep table diverges when traced:\nuntraced:\n%s\ntraced:\n%s", plainTbl, tracedTbl)
	}
	// The selected point's plan injects crashes, so the stream must
	// carry fault and detection events. (KindRecover appears only when a
	// crash strikes after a snapshot exists — that path is pinned by the
	// ft package's traced-recovery test, where the crash time is placed
	// deterministically.)
	kinds := map[trace.Kind]int{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindFault, trace.KindDetect} {
		if kinds[k] == 0 {
			t.Errorf("traced supervised run recorded no %v events (kinds: %v)", k, kinds)
		}
	}
}

func TestFTSweepTraceBytesParallelismInvariant(t *testing.T) {
	sel := harness.TraceSel{
		Method: core.KindPIEglobals,
		Target: ampi.TargetBuddy,
		MTBF:   120 * time.Millisecond,
	}
	capture := func(par int) []byte {
		o, rec := tracing(par, sel)
		if _, _, err := harness.FTSweep(o, ftTestMTBFs()); err != nil {
			t.Fatal(err)
		}
		if rec.Len() == 0 {
			t.Fatal("trace selection matched no ftsweep run")
		}
		return jsonl(t, rec)
	}
	serial := capture(1)
	parallel := capture(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("selected ftsweep trace differs between serial (%d bytes) and parallel (%d bytes) sweeps",
			len(serial), len(parallel))
	}
}
