package harness

import (
	"fmt"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

// FTRow is one point of the fault-tolerance sweep: a supervised job
// under a seeded MTBF crash process, with Daly-optimal checkpointing to
// one of the two targets, compared against its own fault-free baseline.
type FTRow struct {
	Method core.Kind
	Target ampi.CheckpointTarget
	MTBF   sim.Time
	// Interval is the Daly-optimal checkpoint interval derived from the
	// measured per-checkpoint cost and the MTBF.
	Interval sim.Time
	// Baseline is the job's fault-free time with no checkpointing;
	// Total is the supervised time-to-solution under the crash plan
	// (all attempts); Overhead is Total/Baseline.
	Baseline sim.Time
	Total    sim.Time
	Overhead float64
	// Checkpoints and Recoveries count snapshots taken and crashes
	// recovered from; MeanRecovery is the average rework+downtime per
	// crash, and RestoredBytes the snapshot volume restarts read back
	// (zero when every restart was from scratch).
	Checkpoints   int
	Recoveries    int
	MeanRecovery  sim.Time
	RestoredBytes uint64
}

// The sweep's job: an iterative checkpointable kernel sized so the
// default MTBF list produces a handful of crashes at the short end and
// none at the long end.
const (
	ftIters   = 24
	ftCompute = 8 * time.Millisecond
	ftNodes   = 3
	ftVPs     = 6
	ftDir     = "/scratch/ftsweep"
)

// FTSweepMTBFs is the default MTBF list, bracketing the job's length
// from crash-every-phase to effectively fault-free.
func FTSweepMTBFs() []sim.Time {
	return []sim.Time{
		120 * time.Millisecond,
		240 * time.Millisecond,
		480 * time.Millisecond,
		960 * time.Millisecond,
	}
}

// FTSweepMethods are the privatization methods the sweep compares (the
// two migratable methods the paper's recovery story rests on).
func FTSweepMethods() []core.Kind {
	return []core.Kind{core.KindTLSglobals, core.KindPIEglobals}
}

func ftConfig(kind core.Kind, simWorkers int, tracer trace.Tracer) ampi.Config {
	// No Program here: ft.Run constructs the program fresh for every
	// attempt, so this Spec is lowered to a Config only.
	sp := scenario.Spec{
		Machine:    machineShape(ftNodes, 1, 2),
		VPs:        ftVPs,
		Method:     kind,
		SimWorkers: simWorkers,
		Tracer:     tracer,
	}
	cfg, err := sp.Config()
	if err != nil {
		panic(fmt.Sprintf("ftsweep: %v", err))
	}
	return cfg
}

// ftSeed derives each sweep point's crash-plan seed purely from its
// configuration, so plans are identical at any sweep parallelism.
func ftSeed(kind core.Kind, target ampi.CheckpointTarget, mtbf sim.Time) uint64 {
	return 0x9e3779b97f4a7c15 ^ uint64(kind)<<40 ^ uint64(target)<<32 ^ uint64(mtbf)
}

// ftRun builds and runs one world for a sweep point's measurement.
func ftRun(cfg ampi.Config, prog *ampi.Program) (*ampi.World, error) {
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		return nil, err
	}
	if err := w.Run(); err != nil {
		return nil, err
	}
	return w, nil
}

// ftPoint measures one sweep point: a fault-free no-checkpoint
// baseline, a measured per-checkpoint cost, and then the supervised run
// under the point's seeded crash plan.
func ftPoint(o Opts, kind core.Kind, target ampi.CheckpointTarget, mtbf sim.Time) (FTRow, error) {
	row := FTRow{Method: kind, Target: target, MTBF: mtbf}

	// Fault-free baseline, no checkpointing.
	finals := make([]uint64, ftVPs)
	w, err := ftRun(ftConfig(kind, o.SimWorkers, nil), synth.Checkpointed(ftIters, ftCompute, finals))
	if err != nil {
		return row, err
	}
	row.Baseline = w.Time()

	// Per-checkpoint cost: the same job snapshotting at every iteration
	// boundary; the slowdown per snapshot is Daly's C for this method
	// and target.
	ckCfg := ftConfig(kind, o.SimWorkers, nil)
	ckCfg.Checkpoint = &ampi.CheckpointPolicy{Target: target, Dir: ftDir, Interval: 1}
	wck, err := ftRun(ckCfg, synth.Checkpointed(ftIters, ftCompute, finals))
	if err != nil {
		return row, err
	}
	var ckCost sim.Time
	if wck.Checkpoints > 0 && wck.Time() > row.Baseline {
		ckCost = (wck.Time() - row.Baseline) / sim.Time(wck.Checkpoints)
	}
	row.Interval = ft.DalyInterval(ckCost, mtbf)

	// The supervised run: Daly-interval checkpointing under a seeded
	// crash plan whose horizon generously covers the job. MaxRestarts
	// exceeds the plan's crash count, so the supervisor never gives up
	// before the plan runs dry.
	cfg := ftConfig(kind, o.SimWorkers, o.tracerFor(func(ts *TraceSel) bool {
		return ts.Method == kind && ts.Target == target && ts.MTBF == mtbf
	}))
	if row.Interval > 0 {
		cfg.Checkpoint = &ampi.CheckpointPolicy{Target: target, Dir: ftDir, Interval: row.Interval}
	}
	plan := ft.CrashPlan(ftSeed(kind, target, mtbf), ftNodes, mtbf, 4*row.Baseline)
	supFinals := make([]uint64, ftVPs)
	rep, err := ft.Run(ft.Job{
		Config:      cfg,
		Program:     func() *ampi.Program { return synth.Checkpointed(ftIters, ftCompute, supFinals) },
		Plan:        plan,
		Recovery:    ft.Spare,
		MaxRestarts: len(plan.Crashes()) + 1,
	})
	if err != nil {
		return row, err
	}
	for rank, got := range supFinals {
		if want := synth.CheckpointedAcc(ftIters, rank); got != want {
			return row, fmt.Errorf("rank %d finished with acc %d, want %d: recovery lost or double-counted work", rank, got, want)
		}
	}
	row.Total = rep.TotalTime
	row.Overhead = float64(rep.TotalTime) / float64(row.Baseline)
	row.Checkpoints = rep.Checkpoints
	row.Recoveries = len(rep.Recoveries)
	row.MeanRecovery = rep.MeanRecovery()
	for _, rec := range rep.Recoveries {
		row.RestoredBytes += rec.RestoredBytes
	}
	return row, nil
}

// FTSweep reproduces the resilience figure: supervised time-to-solution
// versus machine MTBF, for each privatization method and checkpoint
// target, with the checkpoint interval set to Daly's optimum for each
// point. Every run is a pure function of its configuration — crash
// plans are compiled from per-point seeds before the run — so rows,
// tables, and any selected trace are byte-identical at any sweep
// parallelism. A nil mtbfs selects FTSweepMTBFs().
func FTSweep(o Opts, mtbfs []sim.Time) ([]FTRow, *trace.Table, error) {
	if mtbfs == nil {
		mtbfs = FTSweepMTBFs()
	}
	kinds := FTSweepMethods()
	targets := []ampi.CheckpointTarget{ampi.TargetFS, ampi.TargetBuddy}
	rows := make([]FTRow, len(mtbfs)*len(kinds)*len(targets))
	err := o.runner().Run(len(rows), func(i int) error {
		mtbf := mtbfs[i/(len(kinds)*len(targets))]
		kind := kinds[i/len(targets)%len(kinds)]
		target := targets[i%len(targets)]
		row, err := ftPoint(o, kind, target, mtbf)
		if err != nil {
			return fmt.Errorf("ftsweep %s/%s mtbf=%v: %w", kind, target, mtbf, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := trace.NewTable("Fault tolerance: supervised time-to-solution vs MTBF (Daly-optimal checkpointing)",
		"Method", "Target", "MTBF", "Daly interval", "Baseline", "Total", "Overhead", "Ckpts", "Crashes", "Mean recovery")
	for _, r := range rows {
		interval := "off"
		if r.Interval > 0 {
			interval = trace.FormatDuration(r.Interval)
		}
		t.AddRow(core.CapabilitiesOf(r.Method).DisplayName, r.Target.String(),
			trace.FormatDuration(r.MTBF), interval,
			trace.FormatDuration(r.Baseline), trace.FormatDuration(r.Total),
			pct(r.Overhead), fmt.Sprint(r.Checkpoints), fmt.Sprint(r.Recoveries),
			trace.FormatDuration(r.MeanRecovery))
	}
	return rows, t, nil
}
