package harness

import (
	"fmt"
	"sort"

	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// RunOpts is everything a registry experiment can consume: the
// cross-cutting Opts plus the per-experiment parameters launchers
// expose as flags. Zero-valued parameters select each experiment's
// defaults, so RunOpts{} runs every experiment as `-experiment=all`
// does.
type RunOpts struct {
	Opts
	// Nodes is fig5's node count (<= 0 selects 1).
	Nodes int
	// NodeCounts is fig5scale's sweep (nil selects 1,2,4,8).
	NodeCounts []int
	// Cores is table2/fig9's core-count sweep (nil selects
	// Table2Cores).
	Cores []int
	// MTBFs is ftsweep's MTBF list (nil selects FTSweepMTBFs).
	MTBFs []sim.Time
	// Adcirc sizes the table2/fig9 workload (zero selects
	// adcirc.DefaultConfig).
	Adcirc adcirc.Config
	// ScaleVPs is the scale experiment's rank count (<= 0 selects
	// DefaultScaleVPs — one million).
	ScaleVPs int
	// Elastic overrides the elastic experiment's churn-regime list
	// (nil selects ElasticRegimes).
	Elastic []ElasticRegime
}

func (r RunOpts) nodes() int {
	if r.Nodes <= 0 {
		return 1
	}
	return r.Nodes
}

func (r RunOpts) nodeCounts() []int {
	if r.NodeCounts == nil {
		return []int{1, 2, 4, 8}
	}
	return r.NodeCounts
}

func (r RunOpts) adcirc() adcirc.Config {
	if r.Adcirc == (adcirc.Config{}) {
		return adcirc.DefaultConfig()
	}
	return r.Adcirc
}

// Result is what a registry experiment produced: the structured rows
// (experiment-specific slice type; nil for the static tables) and the
// formatted tables a launcher prints in order.
type Result struct {
	Rows   any
	Tables []*trace.Table
}

// Experiment is one registry entry: a named, self-describing wrapper
// around a harness experiment.
type Experiment struct {
	// Name is the canonical `-experiment=` value; Aliases are accepted
	// equivalents (fig9 for table2).
	Name    string
	Aliases []string
	// Description is the one-line summary `-experiment=list` prints.
	Description string
	// Flags names the launcher flags the experiment consumes beyond
	// the cross-cutting ones (parallelism, tracing, profiles).
	Flags []string
	// Traceable reports whether the experiment honors Opts.Trace;
	// TraceKeys names the TraceSel fields that select a sweep point.
	Traceable bool
	TraceKeys []string
	// Run executes the experiment.
	Run func(RunOpts) (Result, error)
}

// registry holds every experiment in `-experiment=all` execution
// order.
var registry = []Experiment{
	{
		Name:        "tables",
		Description: "Tables 1 & 3: privatization method feature matrices",
		Run: func(RunOpts) (Result, error) {
			return Result{Tables: []*trace.Table{Table1(), Table3()}}, nil
		},
	},
	{
		Name:        "fig5",
		Description: "Fig. 5: startup time per privatization method at one node count",
		Flags:       []string{"nodes"},
		Traceable:   true,
		TraceKeys:   []string{"method", "nodes"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := Fig5Startup(r.Opts, r.nodes())
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "fig5scale",
		Description: "Fig. 5 scaling: startup time across node counts",
		Traceable:   true,
		TraceKeys:   []string{"method", "nodes"},
		Run: func(r RunOpts) (Result, error) {
			tbl, err := Fig5Scaling(r.Opts, r.nodeCounts())
			return Result{Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "fig6",
		Description: "Fig. 6: context-switch overhead per privatization method",
		Traceable:   true,
		TraceKeys:   []string{"method"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := Fig6ContextSwitch(r.Opts)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "fig7",
		Description: "Fig. 7: privatized-variable access overhead (Jacobi-3D)",
		Traceable:   true,
		TraceKeys:   []string{"method"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := Fig7JacobiAccess(r.Opts)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "fig8",
		Description: "Fig. 8: migration time vs per-rank heap size",
		Traceable:   true,
		TraceKeys:   []string{"method", "heap"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := Fig8Migration(r.Opts)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "icache",
		Description: "§4.5: L1 instruction-cache misses, TLSglobals vs PIEglobals",
		Run: func(RunOpts) (Result, error) {
			rows, tbl := ICacheExperiment()
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, nil
		},
	},
	{
		Name:        "memory",
		Description: "§6: per-rank privatization memory footprint (ADCIRC image)",
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := MemoryFootprint(r.Opts)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "ftsweep",
		Description: "Fault tolerance: supervised time-to-solution vs MTBF",
		Flags:       []string{"mtbf"},
		Traceable:   true,
		TraceKeys:   []string{"method", "mtbf", "target"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := FTSweep(r.Opts, r.MTBFs)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "table2",
		Aliases:     []string{"fig9"},
		Description: "Table 2 & Fig. 9: ADCIRC strong scaling, virtualization x load balancing",
		Flags:       []string{"cores"},
		Traceable:   true,
		TraceKeys:   []string{"cores", "ratio"},
		Run: func(r RunOpts) (Result, error) {
			rows, t2, f9, err := AdcircScaling(r.Opts, r.adcirc(), r.Cores)
			return Result{Rows: rows, Tables: []*trace.Table{t2, f9}}, err
		},
	},
	{
		Name:        "scale",
		Description: "Million-VP scale: flat-world allreduce + migration storm with per-rank memory gauges",
		Flags:       []string{"vps", "sim-workers"},
		Traceable:   true,
		TraceKeys:   []string{"vps"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := ScaleExperiment(r.Opts, r.ScaleVPs)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
	{
		Name:        "elastic",
		Description: "Elastic worlds: time-to-solution and node-hours under cluster churn",
		Flags:       []string{"churn-rate", "churn-notice", "churn-seed"},
		Traceable:   true,
		TraceKeys:   []string{"method", "target", "churn"},
		Run: func(r RunOpts) (Result, error) {
			rows, tbl, err := ElasticSweep(r.Opts, r.Elastic)
			return Result{Rows: rows, Tables: []*trace.Table{tbl}}, err
		},
	},
}

// Experiments returns every registry entry in `-experiment=all`
// execution order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// LookupExperiment resolves a name or alias to its entry.
func LookupExperiment(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == name {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// ExperimentNames returns every canonical name plus aliases, sorted,
// for flag help and error messages.
func ExperimentNames() []string {
	var names []string
	for _, e := range registry {
		names = append(names, e.Name)
		names = append(names, e.Aliases...)
	}
	sort.Strings(names)
	return names
}

// TraceableNames returns the names (and aliases) of experiments that
// honor a trace selection, sorted.
func TraceableNames() []string {
	var names []string
	for _, e := range registry {
		if !e.Traceable {
			continue
		}
		names = append(names, e.Name)
		names = append(names, e.Aliases...)
	}
	sort.Strings(names)
	return names
}

// init sanity-checks the registry: duplicate names or aliases are a
// programming error worth failing fast on.
func init() {
	seen := map[string]bool{}
	for _, e := range registry {
		for _, n := range append([]string{e.Name}, e.Aliases...) {
			if seen[n] {
				panic(fmt.Sprintf("harness: duplicate experiment name %q", n))
			}
			seen[n] = true
		}
	}
}
