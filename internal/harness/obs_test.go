package harness_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/obs"
	"provirt/internal/sim"
)

// Host metrics observe the runtime that executes simulations, never
// the virtual clock, so enabling them must change no experiment
// output: rows, tables, and trace bytes are bit-identical with
// metrics on or off. And because instrument updates commute (atomic
// adds and maxima), the deterministic text snapshot is byte-identical
// across repeated runs at a fixed parallelism. These tests pin both
// contracts for Fig. 5, Fig. 8, and the ftsweep.

// ftMTBFs keeps the ftsweep cases here fast: one short MTBF exercises
// crashes, recovery, and checkpointing.
func ftMTBFs() []sim.Time {
	return []sim.Time{sim.Time(120 * time.Millisecond)}
}

// withObs runs fn with metrics installed into a fresh registry and
// guarantees the no-op state is restored afterwards.
func withObs(t *testing.T, fn func(r *obs.Registry, p *obs.Progress)) {
	t.Helper()
	r := obs.NewRegistry()
	p := harness.EnableObs(r)
	defer harness.EnableObs(nil)
	fn(r, p)
}

func TestObsLeavesRowsAndTracesBitIdentical(t *testing.T) {
	type capture struct {
		fig5Rows, fig5Tbl string
		fig5Trace         []byte
		fig8Rows, fig8Tbl string
		fig8Trace         []byte
		ftRows, ftTbl     string
		ftTrace           []byte
	}
	run := func(o harness.Opts) capture {
		var c capture

		fo, fig5Rec := tracing(o.Parallelism, harness.TraceSel{Method: core.KindPIEglobals, Nodes: 2})
		fo.Progress = o.Progress
		rows5, tbl5, err := harness.Fig5Startup(fo, 2)
		if err != nil {
			t.Fatal(err)
		}
		c.fig5Rows, c.fig5Tbl, c.fig5Trace = fmt.Sprintf("%#v", rows5), tbl5.String(), jsonl(t, fig5Rec)

		eo, fig8Rec := tracing(o.Parallelism, harness.TraceSel{Method: core.KindTLSglobals, Heap: 1 << 20})
		eo.Progress = o.Progress
		rows8, tbl8, err := harness.Fig8Migration(eo)
		if err != nil {
			t.Fatal(err)
		}
		c.fig8Rows, c.fig8Tbl, c.fig8Trace = fmt.Sprintf("%#v", rows8), tbl8.String(), jsonl(t, fig8Rec)

		to, ftRec := tracing(o.Parallelism, harness.TraceSel{
			Method: core.KindPIEglobals, MTBF: ftMTBFs()[0], Target: 0})
		to.Progress = o.Progress
		rowsFT, tblFT, err := harness.FTSweep(to, ftMTBFs())
		if err != nil {
			t.Fatal(err)
		}
		c.ftRows, c.ftTbl, c.ftTrace = fmt.Sprintf("%#v", rowsFT), tblFT.String(), jsonl(t, ftRec)
		return c
	}

	plain := run(harness.Opts{Parallelism: 4})
	var instrumented capture
	withObs(t, func(r *obs.Registry, p *obs.Progress) {
		instrumented = run(harness.Opts{Parallelism: 4, Progress: p})

		// The instruments must actually have observed the runs — a
		// silently disabled registry would make this test vacuous.
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, frag := range []string{"sim_events_dispatched_total", "ft_recoveries_total", "mem_snapshots_total"} {
			if !strings.Contains(buf.String(), frag+" ") {
				t.Fatalf("registry missing %s after instrumented runs", frag)
			}
			line := buf.String()[strings.Index(buf.String(), frag+" "):]
			if strings.HasPrefix(line, frag+" 0\n") {
				t.Fatalf("%s stayed zero across fig5+fig8+ftsweep", frag)
			}
		}
		if p.Snapshot().PointsDone == 0 {
			t.Fatal("progress tracker saw no sweep points")
		}
	})

	for _, cmp := range []struct {
		name    string
		off, on string
	}{
		{"fig5 rows", plain.fig5Rows, instrumented.fig5Rows},
		{"fig5 table", plain.fig5Tbl, instrumented.fig5Tbl},
		{"fig8 rows", plain.fig8Rows, instrumented.fig8Rows},
		{"fig8 table", plain.fig8Tbl, instrumented.fig8Tbl},
		{"ftsweep rows", plain.ftRows, instrumented.ftRows},
		{"ftsweep table", plain.ftTbl, instrumented.ftTbl},
	} {
		if cmp.off != cmp.on {
			t.Errorf("%s diverge with metrics on:\noff: %s\non:  %s", cmp.name, cmp.off, cmp.on)
		}
	}
	if !bytes.Equal(plain.fig5Trace, instrumented.fig5Trace) {
		t.Error("fig5 trace bytes diverge with metrics on")
	}
	if !bytes.Equal(plain.fig8Trace, instrumented.fig8Trace) {
		t.Error("fig8 trace bytes diverge with metrics on")
	}
	if !bytes.Equal(plain.ftTrace, instrumented.ftTrace) {
		t.Error("ftsweep trace bytes diverge with metrics on")
	}
}

// The deterministic text snapshot: at a fixed parallelism, two runs of
// the same experiments produce byte-identical snapshots (volatile
// wall-time instruments are excluded by WriteText).
func TestObsTextSnapshotDeterministic(t *testing.T) {
	capture := func() string {
		var out string
		withObs(t, func(r *obs.Registry, p *obs.Progress) {
			o := harness.Opts{Parallelism: 4, Progress: p}
			if _, _, err := harness.Fig5Startup(o, 2); err != nil {
				t.Fatal(err)
			}
			if _, _, err := harness.Fig8Migration(o); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			out = buf.String()
		})
		return out
	}
	a := capture()
	b := capture()
	if a != b {
		t.Errorf("text snapshot diverges across identical runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "sim_events_dispatched_total") {
		t.Fatalf("snapshot missing engine counters:\n%s", a)
	}
	if strings.Contains(a, "sweep_point_wall_us") {
		t.Fatalf("volatile wall-time histogram leaked into the deterministic snapshot:\n%s", a)
	}
}
