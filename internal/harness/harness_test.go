package harness_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/harness"
	"provirt/internal/machine"
	"provirt/internal/workloads/adcirc"
	"provirt/internal/workloads/synth"
)

func TestTables1And3MatchPaper(t *testing.T) {
	t3 := harness.Table3().String()
	for _, want := range []string{
		"Manual refactoring", "Photran", "Swapglobals", "TLSglobals",
		"-fmpc-privatize", "PIPglobals", "FSglobals", "PIEglobals",
		"No static vars", "Limited w/o patched glibc",
		"Implemented w/ GNU libc extension", "Shared file system needed",
		"Not implemented, but possible",
	} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, t3)
		}
	}
	t1 := harness.Table1().String()
	if strings.Contains(t1, "PIEglobals") || strings.Contains(t1, "FSglobals") {
		t.Error("Table 1 must not contain the novel methods")
	}
}

// TestFig5Shape: baseline fastest; TLS ~ baseline; the worst
// non-FSglobals new method stays within ~10-15% of baseline; FSglobals
// is the slowest.
func TestFig5Shape(t *testing.T) {
	rows, tbl, err := harness.Fig5Startup(harness.Opts{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	byKind := map[core.Kind]harness.Fig5Row{}
	for _, r := range rows {
		byKind[r.Method] = r
	}
	base := byKind[core.KindNone].Startup
	for _, r := range rows {
		if r.Startup < base {
			t.Errorf("%s startup %v beats baseline %v", r.Method, r.Startup, base)
		}
	}
	if v := byKind[core.KindTLSglobals].VsBaseline; v > 1.02 {
		t.Errorf("TLSglobals startup overhead %.1f%%, want ~0", (v-1)*100)
	}
	for _, k := range []core.Kind{core.KindPIPglobals, core.KindPIEglobals} {
		if v := byKind[k].VsBaseline; v > 1.15 {
			t.Errorf("%s startup overhead %.1f%%, want <= ~10%%", k, (v-1)*100)
		}
	}
	if byKind[core.KindFSglobals].Startup <= byKind[core.KindPIEglobals].Startup {
		t.Error("FSglobals should be the slowest startup (shared FS I/O)")
	}
}

// TestFig5FSglobalsDegradesWithScale: only FSglobals startup grows
// with node count.
func TestFig5FSglobalsDegradesWithScale(t *testing.T) {
	rows1, _, err := harness.Fig5Startup(harness.Opts{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows8, _, err := harness.Fig5Startup(harness.Opts{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []harness.Fig5Row, k core.Kind) harness.Fig5Row {
		for _, r := range rows {
			if r.Method == k {
				return r
			}
		}
		t.Fatalf("missing %s", k)
		return harness.Fig5Row{}
	}
	fs1 := get(rows1, core.KindFSglobals).Startup
	fs8 := get(rows8, core.KindFSglobals).Startup
	if fs8 < fs1*2 {
		t.Errorf("FSglobals startup at 8 nodes (%v) should degrade vs 1 node (%v)", fs8, fs1)
	}
	pie1 := get(rows1, core.KindPIEglobals).Startup
	pie8 := get(rows8, core.KindPIEglobals).Startup
	if d := float64(pie8) / float64(pie1); d > 1.05 {
		t.Errorf("PIEglobals startup grew %.2fx with node count; should be constant per process", d)
	}
}

// TestFig6Shape: ~100ns baseline; every method within 12ns of it;
// TLSglobals and PIEglobals the two slowest.
func TestFig6Shape(t *testing.T) {
	rows, tbl, err := harness.Fig6ContextSwitch(harness.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	byKind := map[core.Kind]harness.Fig6Row{}
	for _, r := range rows {
		byKind[r.Method] = r
		if r.Switches < 100_000 {
			t.Errorf("%s: only %d switches measured", r.Method, r.Switches)
		}
	}
	base := byKind[core.KindNone].PerSwitch
	if base < 80*time.Nanosecond || base > 130*time.Nanosecond {
		t.Errorf("baseline switch %v, want ~100ns", base)
	}
	var worst core.Kind
	var worstOver time.Duration
	for _, r := range rows {
		if r.OverBaseline > 12*time.Nanosecond {
			t.Errorf("%s exceeds baseline by %v, paper bound is 12ns", r.Method, r.OverBaseline)
		}
		if r.OverBaseline > worstOver {
			worstOver, worst = r.OverBaseline, r.Method
		}
	}
	if worst != core.KindTLSglobals && worst != core.KindPIEglobals {
		t.Errorf("worst method is %s; paper says TLSglobals and PIEglobals perform worst", worst)
	}
	if byKind[core.KindTLSglobals].PerSwitch != byKind[core.KindPIEglobals].PerSwitch {
		t.Error("TLSglobals and PIEglobals should pay the same TLS-pointer update")
	}
}

// TestFig6IndependentOfProgramShape pins §4.2's claim that switch
// overhead "does not increase based on the number of global variables
// or code size for any of the methods": a 100x bigger binary with 100x
// the globals pays exactly the same per-switch cost.
func TestFig6IndependentOfProgramShape(t *testing.T) {
	measure := func(img *elf.Image, kind core.Kind) time.Duration {
		tcfg := ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
			VPs:       2,
			Privatize: kind,
		}
		w, err := ampi.NewWorld(tcfg, synth.PingWithImage(img))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		s := w.Scheds()[0]
		return s.SwitchTime() / time.Duration(s.Switches())
	}
	small := elf.NewBuilder("small").TaggedGlobal("g", 0).Func("main", 1024).MustBuild()
	bigB := elf.NewBuilder("big").Func("main", 1024).CodeBulk(100 << 20)
	for i := 0; i < 500; i++ {
		bigB.TaggedGlobal(fmt.Sprintf("g%03d", i), uint64(i))
	}
	big := bigB.MustBuild()
	for _, kind := range []core.Kind{core.KindTLSglobals, core.KindPIEglobals} {
		a, b := measure(small, kind), measure(big, kind)
		if a != b {
			t.Errorf("%s: per-switch cost depends on program shape: %v vs %v", kind, a, b)
		}
	}
}

// TestFig7Shape: no hidden per-access cost — every method within 1% of
// the unprivatized baseline.
func TestFig7Shape(t *testing.T) {
	rows, tbl, err := harness.Fig7JacobiAccess(harness.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	for _, r := range rows {
		if r.VsBaseline > 1.01 || (r.VsBaseline != 0 && r.VsBaseline < 0.99) {
			t.Errorf("%s Jacobi time is %.2f%% off baseline; Fig. 7 shows no per-access overhead",
				r.Method, (r.VsBaseline-1)*100)
		}
	}
}

// TestFig8Shape: PIE migration = TLS + segments; the relative gap
// shrinks as heap grows.
func TestFig8Shape(t *testing.T) {
	rows, tbl, err := harness.Fig8Migration(harness.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	segBytes := adcirc.Image().TotalSegmentBytes()
	prevRatio := 1e9
	for _, r := range rows {
		if r.PIETime <= r.TLSTime {
			t.Errorf("heap %d: PIE migration %v not slower than TLS %v", r.HeapBytes, r.PIETime, r.TLSTime)
		}
		extra := r.PIEBytes - r.TLSBytes
		if extra < segBytes || extra > segBytes+segBytes/2 {
			t.Errorf("heap %d: PIE extra payload %d bytes, want ~%d (code+data segments)", r.HeapBytes, extra, segBytes)
		}
		ratio := float64(r.PIETime) / float64(r.TLSTime)
		if ratio >= prevRatio {
			t.Errorf("heap %d: PIE/TLS ratio %.3f did not shrink (prev %.3f)", r.HeapBytes, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// At 100 MB the code segment is a small fraction: ratio < 1.35.
	if last := rows[len(rows)-1]; float64(last.PIETime)/float64(last.TLSTime) > 1.35 {
		t.Errorf("at 100MB heap the PIE migration penalty should be proportionally small")
	}
}

// TestICacheContradiction: PIE wins on the Bridges-2 geometry, TLS
// wins on the Stampede2 geometry — the paper's inconclusive outcome.
func TestICacheContradiction(t *testing.T) {
	rows, tbl := harness.ICacheExperiment()
	t.Log("\n" + tbl.String())
	if len(rows) != 2 {
		t.Fatalf("%d sites", len(rows))
	}
	if rows[0].Winner != "pieglobals" {
		t.Errorf("on %s the paper measured fewer misses for PIEglobals (22%%); model gives %s (%.0f%%)",
			rows[0].Site, rows[0].Winner, rows[0].Advantage*100)
	}
	if rows[1].Winner != "tlsglobals" {
		t.Errorf("on %s the paper measured fewer misses for TLSglobals (15%%); model gives %s (%.0f%%)",
			rows[1].Site, rows[1].Winner, rows[1].Advantage*100)
	}
	// Magnitudes should land near the paper's 22% and 15%.
	if a := rows[0].Advantage; a < 0.10 || a > 0.35 {
		t.Errorf("Bridges-2 PIE advantage %.0f%%, paper reports 22%%", a*100)
	}
	if a := rows[1].Advantage; a < 0.05 || a > 0.30 {
		t.Errorf("Stampede2 TLS advantage %.0f%%, paper reports 15%%", a*100)
	}
}

// TestFig5ScalingTable renders the node-count sweep and checks it has
// one row per method.
func TestFig5ScalingTable(t *testing.T) {
	tbl, err := harness.Fig5Scaling(harness.Opts{}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != len(harness.Fig5Methods()) {
		t.Fatalf("%d rows", tbl.NumRows())
	}
	t.Log("\n" + tbl.String())
}

// TestMemoryFootprintShape: segment-duplicating methods pay the full
// 16 MiB per rank; TLSglobals pays kilobytes; §6's shared-code option
// removes the 14 MiB code segment from PIEglobals' footprint.
func TestMemoryFootprintShape(t *testing.T) {
	rows, tbl, err := harness.MemoryFootprint(harness.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	by := map[string]uint64{}
	for _, r := range rows {
		by[r.Method] = r.PerRankBytes
	}
	if by["tlsglobals"] > 1<<20 {
		t.Errorf("TLSglobals per-rank footprint %d; should be KiB-scale", by["tlsglobals"])
	}
	for _, m := range []string{"pipglobals", "fsglobals", "pieglobals"} {
		if by[m] < 15<<20 {
			t.Errorf("%s footprint %d; should carry the full segments", m, by[m])
		}
	}
	if by["pieglobals+sharedcode"] >= by["pieglobals"]-(13<<20) {
		t.Errorf("shared-code option saved too little: %d vs %d", by["pieglobals+sharedcode"], by["pieglobals"])
	}
}

// TestAdcircScalingShape checks Table 2's qualitative shape on a
// reduced core sweep: positive speedup everywhere, peaking at small-mid
// core counts and tapering at the strong-scaling limit.
func TestAdcircScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("adcirc sweep is the long experiment")
	}
	cfg := adcirc.DefaultConfig()
	rows, t2, f9, err := harness.AdcircScaling(harness.Opts{}, cfg, []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t2.String())
	t.Log("\n" + f9.String())
	for _, r := range rows {
		if r.SpeedupPct <= 0 {
			t.Errorf("cores=%d: no speedup (%.0f%%); paper reports 13-79%%", r.Cores, r.SpeedupPct)
		}
	}
	byCores := map[int]float64{}
	for _, r := range rows {
		byCores[r.Cores] = r.SpeedupPct
	}
	if byCores[4] <= byCores[1] {
		t.Errorf("speedup at 4 cores (%.0f%%) should exceed 1 core (%.0f%%)", byCores[4], byCores[1])
	}
	if byCores[64] >= byCores[4] {
		t.Errorf("speedup at 64 cores (%.0f%%) should taper below the 4-core peak (%.0f%%)", byCores[64], byCores[4])
	}
}
