// Package harness regenerates every table and figure of the paper's
// evaluation (§4) from the simulation. Each experiment returns both
// structured rows (asserted by tests and benchmarks) and a formatted
// table (printed by cmd/privbench), and every experiment is an entry
// in the registry (see registry.go) so launchers can enumerate and
// dispatch them uniformly.
//
// Experiments take an explicit Opts value — sweep parallelism and the
// optional trace selection — instead of package-level state, so
// concurrent experiment execution is safe by construction and a trace
// selection cannot outlive the call that made it.
package harness

import (
	"fmt"
	"runtime"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness/sweep"
	"provirt/internal/machine"
	"provirt/internal/obs"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// Opts carries the cross-cutting run options every experiment
// receives. The zero value is ready to use: machine-sized sweep
// parallelism and no tracing.
type Opts struct {
	// Parallelism is how many independent simulations the sweep
	// experiments run concurrently. Every simulation is
	// single-threaded and a pure function of its configuration, and
	// result assembly is a serial post-pass, so rows and tables are
	// bit-identical at any setting; 1 forces serial execution and
	// values <= 0 select every available core.
	Parallelism int
	// Trace selects exactly one sweep point of the experiment to
	// trace; nil runs untraced.
	Trace *TraceSel
	// Progress, if non-nil, receives sweep lifecycle callbacks (points
	// scheduled and completed, host wall time per point) for live
	// progress reporting. Progress observes the host runtime only:
	// rows, tables, and traces are bit-identical with or without it.
	Progress *obs.Progress
	// SimWorkers is the intra-world event-loop parallelism: how many
	// workers a single simulated world may spread its lookahead
	// domains across (sim.ParallelEngine). Rows, tables, and traces
	// are byte-identical at every setting — the conservative-window
	// protocol fires events in the same (time, domain, seq) total
	// order the serial engine uses. Only experiments on the flat
	// world (scale) shard their event loop; the goroutine-world
	// experiments form a single domain and run serial at any value.
	// 0 or 1 keeps the serial engine.
	SimWorkers int
}

// Workers resolves the effective sweep parallelism.
func (o Opts) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runner returns the sweep runner the experiments fan out with,
// wiring the progress tracker to the runner's completion hooks.
func (o Opts) runner() sweep.Runner {
	r := sweep.Runner{Workers: o.Workers()}
	if p := o.Progress; p != nil {
		r.OnStart = p.StartSweep
		r.OnPoint = func(d sweep.PointDone) { p.Point(d.Worker, d.Elapsed) }
	}
	return r
}

// TraceSel selects exactly one sweep point of an experiment to trace.
// Each experiment matches only the fields it sweeps — Fig5Startup
// matches (Method, Nodes), Fig6/Fig7 match Method, Fig8 matches
// (Method, Heap), AdcircScaling matches (Cores, Ratio), FTSweep
// matches (Method, MTBF, Target) — and attaches Rec to the single
// world whose configuration matches exactly. Because the match is a
// pure function of the configuration (never of scheduling order), the
// recorded trace is byte-identical between serial and parallel
// sweeps, and the untraced worlds of the sweep run exactly as if no
// selection existed.
//
// The caller must make the selection unique for the experiment it
// runs (e.g. set Nodes when tracing inside Fig5Scaling): a selection
// that matched two concurrently-running worlds would interleave their
// events in one recorder.
type TraceSel struct {
	// Method selects the privatization method (fig5/6/7/8).
	Method core.Kind
	// Nodes selects the node count (fig5).
	Nodes int
	// Heap selects the per-rank heap size in bytes (fig8).
	Heap uint64
	// Cores and Ratio select the scaling point (table2/fig9); Ratio 1
	// is the unvirtualized baseline.
	Cores int
	Ratio int
	// MTBF and Target select the fault-tolerance sweep point (ftsweep
	// matches Method, MTBF, and Target); the recorder then captures the
	// selected point's supervised run across all of its attempts.
	MTBF   sim.Time
	Target ampi.CheckpointTarget
	// VPs selects the rank count (scale).
	VPs int
	// Churn selects the elastic churn regime by name (elastic matches
	// Method, Target, and Churn).
	Churn string
	// Rec receives the selected world's events.
	Rec *trace.Recorder
	// Sink, consulted when Rec is nil, receives the selected world's
	// events through an arbitrary Tracer — a trace.WindowWriter for
	// runs whose event volume must not be buffered in memory (the
	// million-rank scale experiment).
	Sink trace.Tracer
}

// tracerFor returns the selection's tracer when match reports the
// sweep point is the selected one, else a nil Tracer. An in-memory
// recorder takes precedence; otherwise the streaming sink is used.
func (o Opts) tracerFor(match func(*TraceSel) bool) trace.Tracer {
	ts := o.Trace
	if ts == nil || (ts.Rec == nil && ts.Sink == nil) || !match(ts) {
		return nil
	}
	if ts.Rec != nil {
		return ts.Rec
	}
	return ts.Sink
}

// Fig5Methods are the privatization methods the startup experiment
// compares (baseline plus AMPI's existing TLSglobals plus the paper's
// three new runtime methods).
func Fig5Methods() []core.Kind {
	return []core.Kind{
		core.KindNone, core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	}
}

// Table1 renders the feature matrix of pre-existing privatization
// methods (paper Table 1).
func Table1() *trace.Table {
	t := trace.NewTable("Table 1: existing privatization methods",
		"Method", "Automation", "Portability", "SMP Mode Support", "Migration Support")
	for _, k := range core.Table1Order() {
		c := core.CapabilitiesOf(k)
		t.AddRow(c.DisplayName, c.Automation, c.Portability, c.SMPSupport, c.MigrationSupport)
	}
	return t
}

// Table3 renders the full feature matrix including the three novel
// runtime methods (paper Table 3).
func Table3() *trace.Table {
	t := trace.NewTable("Table 3: privatization methods including the three novel runtime methods",
		"Method", "Automation", "Portability", "SMP Mode Support", "Migration Support")
	for _, k := range core.Table3Order() {
		c := core.CapabilitiesOf(k)
		t.AddRow(c.DisplayName, c.Automation, c.Portability, c.SMPSupport, c.MigrationSupport)
	}
	return t
}

// machineShape is a convenience constructor.
func machineShape(nodes, procs, pes int) machine.Config {
	return machine.Config{Nodes: nodes, ProcsPerNode: procs, PEsPerProc: pes}
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", (x-1)*100) }
