package harness

import (
	"provirt/internal/ampi"
	"provirt/internal/ft"
	"provirt/internal/mem"
	"provirt/internal/obs"
	"provirt/internal/sim"
)

// EnableObs turns on host-side metrics for every instrumented runtime
// layer — the engine (sim), matchqueues (ampi), snapshots (mem), and
// the supervisor (ft) — registering their instruments in r, and
// returns a sweep progress tracker registered in the same registry
// (wire it into Opts.Progress). EnableObs(nil) uninstalls everything,
// restoring the one-pointer-comparison no-op state, and returns nil.
//
// Call it only between runs: instruments are process-global and the
// install itself is not synchronized with running worlds. Metrics
// never feed back into virtual time, so enabling them changes no row,
// table, or trace byte (pinned by TestObsLeavesRowsAndTracesBitIdentical).
func EnableObs(r *obs.Registry) *obs.Progress {
	sim.EnableObs(r)
	ampi.EnableObs(r)
	mem.EnableObs(r)
	ft.EnableObs(r)
	if r == nil {
		return nil
	}
	return obs.NewProgress(r)
}
