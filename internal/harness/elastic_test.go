package harness_test

import (
	"bytes"
	"fmt"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/trace"
)

// The elastic sweep compiles every churn plan from seeds before any
// world runs, so rows, tables, and a selected trace must be
// byte-identical at any sweep parallelism and any sim-worker count.
func TestElasticSweepIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full elastic sweep three times")
	}
	run := func(par, simWorkers int) (string, string, []byte) {
		rec := trace.NewRecorder(trace.AllKinds()...)
		o := harness.Opts{
			Parallelism: par,
			SimWorkers:  simWorkers,
			Trace: &harness.TraceSel{
				Method: core.KindPIEglobals, Target: ampi.TargetFS,
				Churn: "spot-busy", Rec: rec,
			},
		}
		rows, tbl, err := harness.ElasticSweep(o, nil)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String(), jsonl(t, rec)
	}
	serialRows, serialTbl, serialTrace := run(1, 0)
	if len(serialTrace) == 0 {
		t.Fatal("trace selection matched no elastic run")
	}
	for _, p := range [][2]int{{4, 0}, {1, 8}} {
		rows, tbl, tr := run(p[0], p[1])
		if rows != serialRows {
			t.Errorf("parallel=%d sim-workers=%d: elastic rows diverge from serial", p[0], p[1])
		}
		if tbl != serialTbl {
			t.Errorf("parallel=%d sim-workers=%d: elastic table diverges:\nserial:\n%s\ngot:\n%s", p[0], p[1], serialTbl, tbl)
		}
		if !bytes.Equal(tr, serialTrace) {
			t.Errorf("parallel=%d sim-workers=%d: elastic trace bytes diverge (%d vs %d bytes)", p[0], p[1], len(tr), len(serialTrace))
		}
	}
}

// TestElasticDrainDividend pins the sweep's headline result on every
// method/target combination: the noticed-eviction regime drains with
// zero rework, while the identical eviction schedule with no notice
// crashes, reworks lost iterations, and costs more on both axes
// (time-to-solution and node-hours). The calm control stays
// churn-free, and the arrival surge spends more node-hours than calm.
func TestElasticDrainDividend(t *testing.T) {
	rows, _, err := harness.ElasticSweep(harness.Opts{Parallelism: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byRegime := func(kind core.Kind, target ampi.CheckpointTarget, regime string) harness.ElasticRow {
		for _, r := range rows {
			if r.Method == kind && r.Target == target && r.Regime == regime {
				return r
			}
		}
		t.Fatalf("no row for %v/%v %s", kind, target, regime)
		return harness.ElasticRow{}
	}
	for _, kind := range harness.FTSweepMethods() {
		for _, target := range []ampi.CheckpointTarget{ampi.TargetFS, ampi.TargetBuddy} {
			calm := byRegime(kind, target, "calm")
			busy := byRegime(kind, target, "spot-busy")
			blind := byRegime(kind, target, "spot-blind")
			surge := byRegime(kind, target, "surge")

			if calm.Epochs != 0 || calm.ReworkForced != 0 {
				t.Errorf("%v/%v calm: unexpected churn: %+v", kind, target, calm)
			}
			if busy.Epochs == 0 || busy.Crashed != 0 || busy.Drained != busy.Epochs {
				t.Errorf("%v/%v spot-busy: evictions should all drain: %+v", kind, target, busy)
			}
			if busy.ReworkNoticed != 0 {
				t.Errorf("%v/%v spot-busy: drained evictions reworked %v; drains are zero-rework by construction",
					kind, target, busy.ReworkNoticed)
			}
			if blind.Crashed == 0 || blind.Drained != 0 {
				t.Errorf("%v/%v spot-blind: zero-notice evictions should crash: %+v", kind, target, blind)
			}
			if blind.ReworkForced <= 0 {
				t.Errorf("%v/%v spot-blind: crashes reworked nothing", kind, target)
			}
			if blind.Total <= busy.Total {
				t.Errorf("%v/%v: crashing (%v) should cost more time than draining (%v) under the same eviction schedule",
					kind, target, blind.Total, busy.Total)
			}
			if blind.NodeSeconds <= busy.NodeSeconds {
				t.Errorf("%v/%v: crashing (%v) should cost more node-seconds than draining (%v)",
					kind, target, blind.NodeSeconds, busy.NodeSeconds)
			}
			if surge.NodeSeconds <= calm.NodeSeconds {
				t.Errorf("%v/%v surge: arrivals should raise node-seconds above calm (%v vs %v)",
					kind, target, surge.NodeSeconds, calm.NodeSeconds)
			}
		}
	}
}

// A custom regime built from launcher flags replaces the default list.
func TestElasticCustomRegime(t *testing.T) {
	regime := harness.CustomChurnRegime(20, 80_000_000, 120_000_000)
	rows, tbl, err := harness.ElasticSweep(harness.Opts{Parallelism: 2}, []harness.ElasticRegime{regime})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 methods x 2 targets x 1 regime
		t.Fatalf("custom regime produced %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Regime != "custom" {
			t.Errorf("row regime %q, want custom", r.Regime)
		}
		if r.Epochs == 0 {
			t.Errorf("%v/%v: custom churn executed no membership changes", r.Method, r.Target)
		}
	}
	if tbl.String() == "" {
		t.Error("empty table")
	}
}
