package harness

import (
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// Fig8Row is one point of Fig. 8: time to migrate one virtual rank
// with the given heap size, under TLSglobals vs PIEglobals.
type Fig8Row struct {
	HeapBytes uint64
	TLSTime   sim.Time
	PIETime   sim.Time
	TLSBytes  uint64
	PIEBytes  uint64
}

// Fig8HeapSizes are the swept per-rank heap sizes (the paper sweeps
// 1 MB to 100 MB).
func Fig8HeapSizes() []uint64 {
	return []uint64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 100 << 20}
}

// Fig8Migration measures single-rank migration time across node
// boundaries as heap size grows, comparing TLSglobals (rank state only)
// with PIEglobals (rank state plus the ADCIRC-sized 14 MB code segment
// and data segment), reproducing Fig. 8.
func Fig8Migration() ([]Fig8Row, *trace.Table, error) {
	measure := func(kind core.Kind, heap uint64) (sim.Time, uint64, error) {
		prog := &ampi.Program{
			Image: adcirc.Image(),
			Main: func(r *ampi.Rank) {
				if _, err := r.Ctx().Heap.AllocBallast(heap, "user-heap"); err != nil {
					panic(err)
				}
				r.Migrate()
			},
		}
		tc, osEnv := envFor(kind, 1)
		cfg := ampi.Config{
			Machine:   machineShape(2, 1, 1),
			VPs:       1,
			Privatize: kind,
			Toolchain: tc,
			OS:        osEnv,
			Balancer:  lb.RotateLB{},
		}
		w, err := runWorld(cfg, prog)
		if err != nil {
			return 0, 0, err
		}
		recs := w.LastMigrations()
		if len(recs) != 1 {
			return 0, 0, fmt.Errorf("%d migrations recorded, want 1", len(recs))
		}
		return recs[0].Duration, recs[0].Bytes, nil
	}

	var rows []Fig8Row
	for _, heap := range Fig8HeapSizes() {
		tlsT, tlsB, err := measure(core.KindTLSglobals, heap)
		if err != nil {
			return nil, nil, fmt.Errorf("fig8 tlsglobals heap=%d: %w", heap, err)
		}
		pieT, pieB, err := measure(core.KindPIEglobals, heap)
		if err != nil {
			return nil, nil, fmt.Errorf("fig8 pieglobals heap=%d: %w", heap, err)
		}
		rows = append(rows, Fig8Row{HeapBytes: heap, TLSTime: tlsT, PIETime: pieT, TLSBytes: tlsB, PIEBytes: pieB})
	}
	t := trace.NewTable("Figure 8: migration time vs per-rank heap size (lower is better)",
		"Heap", "TLSglobals", "PIEglobals", "PIE/TLS", "PIE extra bytes")
	for _, r := range rows {
		t.AddRow(trace.FormatBytes(int64(r.HeapBytes)),
			trace.FormatDuration(r.TLSTime),
			trace.FormatDuration(r.PIETime),
			fmt.Sprintf("%.2fx", float64(r.PIETime)/float64(r.TLSTime)),
			trace.FormatBytes(int64(r.PIEBytes-r.TLSBytes)))
	}
	return rows, t, nil
}
