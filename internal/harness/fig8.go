package harness

import (
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// Fig8Row is one point of Fig. 8: time to migrate one virtual rank
// with the given heap size, under TLSglobals vs PIEglobals.
type Fig8Row struct {
	HeapBytes uint64
	TLSTime   sim.Time
	PIETime   sim.Time
	TLSBytes  uint64
	PIEBytes  uint64
}

// Fig8HeapSizes are the swept per-rank heap sizes (the paper sweeps
// 1 MB to 100 MB).
func Fig8HeapSizes() []uint64 {
	return []uint64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 100 << 20}
}

// Fig8Migration measures single-rank migration time across node
// boundaries as heap size grows, comparing TLSglobals (rank state only)
// with PIEglobals (rank state plus the ADCIRC-sized 14 MB code segment
// and data segment), reproducing Fig. 8.
func Fig8Migration(o Opts) ([]Fig8Row, *trace.Table, error) {
	measure := func(kind core.Kind, heap uint64) (sim.Time, uint64, error) {
		prog := &ampi.Program{
			Image: adcirc.Image(),
			Main: func(r *ampi.Rank) {
				if _, err := r.Ctx().Heap.AllocBallast(heap, "user-heap"); err != nil {
					panic(err)
				}
				r.Migrate()
			},
		}
		sp := scenario.Spec{
			Machine:    machineShape(2, 1, 1),
			VPs:        1,
			Method:     kind,
			Program:    prog,
			Balancer:   lb.RotateLB{},
			SimWorkers: o.SimWorkers,
			Tracer: o.tracerFor(func(ts *TraceSel) bool {
				return ts.Method == kind && ts.Heap == heap
			}),
		}
		w, err := sp.Run()
		if err != nil {
			return 0, 0, err
		}
		recs := w.LastMigrations()
		if len(recs) != 1 {
			return 0, 0, fmt.Errorf("%d migrations recorded, want 1", len(recs))
		}
		return recs[0].Duration, recs[0].Bytes, nil
	}

	// Flatten the (heap size x method) grid into independent jobs.
	heaps := Fig8HeapSizes()
	kinds := []core.Kind{core.KindTLSglobals, core.KindPIEglobals}
	times := make([]sim.Time, len(heaps)*len(kinds))
	bytes := make([]uint64, len(heaps)*len(kinds))
	err := o.runner().Run(len(times), func(i int) error {
		heap, kind := heaps[i/len(kinds)], kinds[i%len(kinds)]
		t, b, err := measure(kind, heap)
		if err != nil {
			return fmt.Errorf("fig8 %s heap=%d: %w", kind, heap, err)
		}
		times[i], bytes[i] = t, b
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []Fig8Row
	for i, heap := range heaps {
		rows = append(rows, Fig8Row{
			HeapBytes: heap,
			TLSTime:   times[i*2], PIETime: times[i*2+1],
			TLSBytes: bytes[i*2], PIEBytes: bytes[i*2+1],
		})
	}
	t := trace.NewTable("Figure 8: migration time vs per-rank heap size (lower is better)",
		"Heap", "TLSglobals", "PIEglobals", "PIE/TLS", "PIE extra bytes")
	for _, r := range rows {
		t.AddRow(trace.FormatBytes(int64(r.HeapBytes)),
			trace.FormatDuration(r.TLSTime),
			trace.FormatDuration(r.PIETime),
			fmt.Sprintf("%.2fx", float64(r.PIETime)/float64(r.TLSTime)),
			trace.FormatBytes(int64(r.PIEBytes-r.TLSBytes)))
	}
	return rows, t, nil
}
