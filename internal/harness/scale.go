package harness

import (
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// The scale experiment is ROADMAP item 1's gate: build one world with a
// million virtual ranks on a laptop-class machine shape, run a full
// allreduce over the binomial tree, then a migration storm over an
// eighth of the ranks, and report both the modeled physics (virtual
// times, events, modeled per-rank resident bytes) and the host cost of
// simulating it (bytes of host heap per rank at build and at peak).
//
// It runs on the flat world path (ampi.FlatWorld): array-of-structs
// rank records, lazy privatization sampling, tree-modeled collectives
// with one engine event per edge. The default method is PIEglobals
// with shared code pages and read-only-data COW — the configuration
// whose per-rank footprint the shared-image work exists to shrink.

// DefaultScaleVPs is the rank count the scale experiment runs at when
// none is given: the million-rank world of ROADMAP item 1.
const DefaultScaleVPs = 1_000_000

// scaleStride is the migration-storm stride: every stride-th rank
// migrates halfway across the machine.
const scaleStride = 8

// ScaleRow is one phase of the scale experiment.
type ScaleRow struct {
	Phase string
	VPs   int
	// SetupDone and Time are modeled virtual times (extrapolated setup;
	// phase completion).
	SetupDone sim.Time
	Time      sim.Time
	// Events is the cumulative engine event count after the phase.
	Events uint64
	// Migrations and MigratedBytes are the storm's modeled volume (zero
	// for the allreduce phase).
	Migrations    int
	MigratedBytes uint64
	// PerRankBytes is the modeled per-rank resident footprint;
	// SharedBytesPerRank the per-rank bytes on shared mappings.
	PerRankBytes       uint64
	SharedBytesPerRank uint64
	// HostBuildBytesPerRank and HostPeakBytesPerRank are HOST-measured
	// (trace.MemGauge): bytes of simulator heap per rank at world build
	// and at the phase peak. They are reported in rows and benchmark
	// metrics but deliberately kept out of the rendered table, which
	// must stay bit-identical across runs.
	HostBuildBytesPerRank uint64
	HostPeakBytesPerRank  uint64
}

// scaleImage is the program image the scale experiment samples
// privatization on: a few MB of code, a mostly-read-only data segment.
func scaleImage() *elf.Image {
	return elf.NewBuilder("scaleapp").
		TaggedGlobal("iter", 0).
		TaggedGlobal("local_norm", 0).
		Const("mesh_dim", 64).
		Func("main", 4096).
		Func("compute", 16<<10).
		CodeBulk(4 << 20).
		DataBulk(256 << 10).
		RODataBulk(192 << 10). // stencil tables, basis constants
		MustBuild()
}

// ScaleExperiment runs the flat-world allreduce + migration storm at
// the given rank count (<= 0 selects DefaultScaleVPs) and returns one
// row per phase. The world is a single simulation, so Opts.Parallelism
// does not apply; Opts.Trace selects it via the VPs key.
func ScaleExperiment(o Opts, vps int) ([]ScaleRow, *trace.Table, error) {
	if vps <= 0 {
		vps = DefaultScaleVPs
	}
	gauge := trace.NewMemGauge()
	w, err := ampi.NewFlatWorld(ampi.FlatConfig{
		Machine:    machineShape(1, 1, 8),
		VPs:        vps,
		Image:      scaleImage(),
		Tracer:     o.tracerFor(func(ts *TraceSel) bool { return ts.VPs == vps }),
		SimWorkers: o.SimWorkers,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("scale: %w", err)
	}
	gauge.SampleBuild()

	arDone, err := w.Allreduce(8)
	if err != nil {
		return nil, nil, fmt.Errorf("scale: %w", err)
	}
	gauge.Sample()
	arEvents := w.EventsFired()
	rows := make([]ScaleRow, 0, 2)
	rows = append(rows, ScaleRow{
		Phase:              "allreduce",
		VPs:                vps,
		SetupDone:          w.SetupDone,
		Time:               arDone,
		Events:             arEvents,
		PerRankBytes:       w.PerRankBytes,
		SharedBytesPerRank: w.SharedBytesPerRank,
	})

	stormDone, err := w.MigrationStorm(scaleStride)
	if err != nil {
		return nil, nil, fmt.Errorf("scale: %w", err)
	}
	gauge.Sample()
	rows = append(rows, ScaleRow{
		Phase:              "migration-storm",
		VPs:                vps,
		SetupDone:          w.SetupDone,
		Time:               stormDone,
		Events:             w.EventsFired(),
		Migrations:         w.Migrations,
		MigratedBytes:      w.MigratedBytes,
		PerRankBytes:       w.PerRankBytes,
		SharedBytesPerRank: w.SharedBytesPerRank,
	})

	hostBuild, hostPeak := gauge.PerRank(vps)
	for i := range rows {
		rows[i].HostBuildBytesPerRank = hostBuild
		rows[i].HostPeakBytesPerRank = hostPeak
	}

	// The rendered table carries only modeled (deterministic) values;
	// the host-measured gauge readings live in the rows and in the
	// benchmark metrics (BENCH_6.json).
	t := trace.NewTable(
		fmt.Sprintf("Scale: flat world with %d virtual ranks (PIEglobals, shared code + RO COW)", vps),
		"Phase", "Setup", "Done", "Events", "Migrations", "Moved", "Rank resident", "Rank shared")
	for _, r := range rows {
		t.AddRow(
			r.Phase,
			trace.FormatDuration(r.SetupDone),
			trace.FormatDuration(r.Time),
			fmt.Sprint(r.Events),
			fmt.Sprint(r.Migrations),
			trace.FormatBytes(int64(r.MigratedBytes)),
			trace.FormatBytes(int64(r.PerRankBytes)),
			trace.FormatBytes(int64(r.SharedBytesPerRank)),
		)
	}
	return rows, t, nil
}
