package harness

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// AdcircPoint is one (cores, ratio) measurement of the ADCIRC strong-
// scaling study.
type AdcircPoint struct {
	Cores int
	Ratio int // virtualization ratio (VPs per core); 0 marks baseline
	LB    bool
	Time  sim.Time
}

// AdcircRow is one core count's summary: the baseline and the best
// virtualized+balanced result (Table 2's "speedup of best performing
// virtualization ratio").
type AdcircRow struct {
	Cores     int
	Baseline  sim.Time
	Best      sim.Time
	BestRatio int
	// SpeedupPct is (Baseline/Best - 1) * 100.
	SpeedupPct float64
	Points     []AdcircPoint
}

// Table2Cores are the measured core counts.
func Table2Cores() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// AdcircRatios are the virtualization ratios swept per core count.
func AdcircRatios() []int { return []int{2, 4, 8} }

// runAdcirc executes one configuration and returns execution time.
func runAdcirc(o Opts, cfg adcirc.Config, cores, vps int, balancer lb.Strategy) (sim.Time, error) {
	acfg := cfg
	if balancer == nil {
		acfg.LBPeriod = 0
	}
	ratio := vps / cores
	sp := scenario.Spec{
		Machine:  machineShape(1, 1, cores),
		VPs:      vps,
		Method:   core.KindPIEglobals,
		Program:  adcirc.New(acfg, nil),
		Balancer: balancer,
		Tracer: o.tracerFor(func(ts *TraceSel) bool {
			return ts.Cores == cores && ts.Ratio == ratio
		}),
	}
	w, err := sp.Run()
	if err != nil {
		return 0, err
	}
	return w.ExecutionTime(), nil
}

// AdcircScaling runs the full strong-scaling study of §4.6: for each
// core count, an unvirtualized/unbalanced baseline plus each
// virtualization ratio with GreedyRefineLB. It reproduces Table 2 (best
// speedup per core count) and Fig. 9 (the full time series).
func AdcircScaling(o Opts, cfg adcirc.Config, cores []int) ([]AdcircRow, *trace.Table, *trace.Table, error) {
	if cores == nil {
		cores = Table2Cores()
	}
	// Flatten the (cores x ratio) grid — one baseline plus each
	// virtualization ratio per core count — into independent jobs and
	// fan them across the sweep runner. Each job builds its own world
	// and engine; rows are assembled serially afterwards, so the output
	// is bit-identical to the serial loop this replaces.
	ratios := AdcircRatios()
	stride := 1 + len(ratios)
	type job struct {
		cores, ratio int
		balanced     bool
	}
	jobs := make([]job, 0, len(cores)*stride)
	for _, c := range cores {
		jobs = append(jobs, job{cores: c, ratio: 1})
		for _, ratio := range ratios {
			jobs = append(jobs, job{cores: c, ratio: ratio, balanced: true})
		}
	}
	times := make([]sim.Time, len(jobs))
	err := o.runner().Run(len(jobs), func(i int) error {
		j := jobs[i]
		var bal lb.Strategy
		if j.balanced {
			bal = lb.GreedyRefineLB{}
		}
		tt, err := runAdcirc(o, cfg, j.cores, j.cores*j.ratio, bal)
		if err != nil {
			if !j.balanced {
				return fmt.Errorf("adcirc baseline cores=%d: %w", j.cores, err)
			}
			return fmt.Errorf("adcirc cores=%d ratio=%d: %w", j.cores, j.ratio, err)
		}
		times[i] = tt
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var rows []AdcircRow
	for ci, c := range cores {
		base := times[ci*stride]
		row := AdcircRow{Cores: c, Baseline: base, Best: base, BestRatio: 1}
		row.Points = append(row.Points, AdcircPoint{Cores: c, Ratio: 1, LB: false, Time: base})
		for ri, ratio := range ratios {
			tt := times[ci*stride+1+ri]
			row.Points = append(row.Points, AdcircPoint{Cores: c, Ratio: ratio, LB: true, Time: tt})
			if tt < row.Best {
				row.Best = tt
				row.BestRatio = ratio
			}
		}
		row.SpeedupPct = (float64(row.Baseline)/float64(row.Best) - 1) * 100
		rows = append(rows, row)
	}

	t2 := trace.NewTable("Table 2: ADCIRC speedup of best virtualization ratio over baseline",
		"Cores", "Baseline", "Best", "Best ratio", "Speedup %")
	for _, r := range rows {
		t2.AddRow(fmt.Sprint(r.Cores),
			trace.FormatDuration(r.Baseline),
			trace.FormatDuration(r.Best),
			fmt.Sprintf("%dx", r.BestRatio),
			fmt.Sprintf("%.0f", r.SpeedupPct))
	}

	f9 := trace.NewTable("Figure 9: ADCIRC strong scaling, virtualization x load balancing (lower is better)",
		"Cores", "ratio 1 (no LB)", "ratio 2 + LB", "ratio 4 + LB", "ratio 8 + LB")
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.Cores)}
		for _, p := range r.Points {
			cells = append(cells, trace.FormatDuration(p.Time))
		}
		f9.AddRow(cells...)
	}
	return rows, t2, f9, nil
}
