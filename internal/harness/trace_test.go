package harness_test

import (
	"bytes"
	"fmt"
	"testing"

	"provirt/internal/core"
	"provirt/internal/harness"
	"provirt/internal/trace"
)

// Tracing one sweep point must not perturb results: hooks only read
// simulator state, so a traced sweep renders byte-identical rows and
// tables to an untraced one. And because the traced world is selected
// by configuration (not scheduling order) and runs single-threaded,
// the recorded event stream is byte-identical at any sweep
// parallelism. These tests pin both contracts for Fig. 5 and Fig. 8.

// tracing returns Opts carrying a fresh recorder for one sweep point.
func tracing(par int, sel harness.TraceSel) (harness.Opts, *trace.Recorder) {
	rec := trace.NewRecorder()
	sel.Rec = rec
	return harness.Opts{Parallelism: par, Trace: &sel}, rec
}

func jsonl(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFig5TracedRunMatchesUntraced(t *testing.T) {
	run := func(o harness.Opts) (string, string) {
		rows, tbl, err := harness.Fig5Startup(o, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	plainRows, plainTbl := run(harness.Opts{})
	o, rec := tracing(0, harness.TraceSel{Method: core.KindPIEglobals, Nodes: 2})
	tracedRows, tracedTbl := run(o)
	if rec.Len() == 0 {
		t.Fatal("trace selection matched no fig5 run")
	}
	if plainRows != tracedRows {
		t.Errorf("fig5 rows diverge when traced:\nuntraced: %s\ntraced:   %s", plainRows, tracedRows)
	}
	if plainTbl != tracedTbl {
		t.Errorf("fig5 table diverges when traced:\nuntraced:\n%s\ntraced:\n%s", plainTbl, tracedTbl)
	}
}

func TestFig8TracedRunMatchesUntraced(t *testing.T) {
	run := func(o harness.Opts) (string, string) {
		rows, tbl, err := harness.Fig8Migration(o)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	plainRows, plainTbl := run(harness.Opts{})
	o, rec := tracing(0, harness.TraceSel{Method: core.KindTLSglobals, Heap: 4 << 20})
	tracedRows, tracedTbl := run(o)
	if rec.Len() == 0 {
		t.Fatal("trace selection matched no fig8 run")
	}
	if plainRows != tracedRows {
		t.Errorf("fig8 rows diverge when traced:\nuntraced: %s\ntraced:   %s", plainRows, tracedRows)
	}
	if plainTbl != tracedTbl {
		t.Errorf("fig8 table diverges when traced:\nuntraced:\n%s\ntraced:\n%s", plainTbl, tracedTbl)
	}
}

func TestFig5TraceBytesParallelismInvariant(t *testing.T) {
	capture := func(par int) []byte {
		o, rec := tracing(par, harness.TraceSel{Method: core.KindPIEglobals, Nodes: 2})
		if _, _, err := harness.Fig5Startup(o, 2); err != nil {
			t.Fatal(err)
		}
		if rec.Len() == 0 {
			t.Fatalf("no events recorded at parallelism %d", par)
		}
		return jsonl(t, rec)
	}
	serial := capture(1)
	parallel := capture(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fig5 trace bytes diverge between serial and parallel sweeps (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}

func TestFig8TraceBytesParallelismInvariant(t *testing.T) {
	capture := func(par int) []byte {
		o, rec := tracing(par, harness.TraceSel{Method: core.KindPIEglobals, Heap: 1 << 20})
		if _, _, err := harness.Fig8Migration(o); err != nil {
			t.Fatal(err)
		}
		if rec.Len() == 0 {
			t.Fatalf("no events recorded at parallelism %d", par)
		}
		return jsonl(t, rec)
	}
	serial := capture(1)
	parallel := capture(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fig8 trace bytes diverge between serial and parallel sweeps (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}
