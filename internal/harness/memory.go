package harness

import (
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/scenario"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// MemoryRow is one method's per-rank memory overhead for privatized
// state (beyond the application's own heap), using the ADCIRC-sized
// image. This quantifies the "code bloat issue of memory usage in
// PIEglobals" that §6's future work targets.
type MemoryRow struct {
	Method string
	// PerRankBytes is the privatization storage materialized per
	// virtual rank (segment copies, TLS blocks, private cells),
	// excluding the 1 MiB ULT stack every rank owns regardless.
	PerRankBytes uint64
}

// MemoryFootprint measures per-rank privatization memory for each
// runtime method plus PIEglobals with §6's shared-code-pages
// optimization.
func MemoryFootprint(o Opts) ([]MemoryRow, *trace.Table, error) {
	type variant struct {
		name   string
		method func() core.Method
	}
	// Each sweep point builds its own method instance and image so
	// concurrent points never share mutable state.
	variants := []variant{
		{"tlsglobals", func() core.Method { return core.New(core.KindTLSglobals) }},
		{"pipglobals", func() core.Method { return core.New(core.KindPIPglobals) }},
		{"fsglobals", func() core.Method { return core.New(core.KindFSglobals) }},
		{"pieglobals", func() core.Method { return core.New(core.KindPIEglobals) }},
		{"pieglobals+sharedcode", func() core.Method {
			return core.NewPIEglobals(core.PIEOptions{ShareCodePages: true})
		}},
		{"pieglobals+sharedcode+cow", func() core.Method {
			return core.NewPIEglobals(core.PIEOptions{ShareCodePages: true, ShareROData: true})
		}},
	}
	rows := make([]MemoryRow, len(variants))
	err := o.runner().Run(len(variants), func(i int) error {
		v := variants[i]
		img := adcirc.Image()
		sp := scenario.Spec{
			Machine:    machineShape(1, 1, 1),
			VPs:        1,
			MethodImpl: v.method(),
			Program:    &ampi.Program{Image: img, Main: func(r *ampi.Rank) {}},
		}
		w, err := sp.Run()
		if err != nil {
			return fmt.Errorf("memory %s: %w", v.name, err)
		}
		ctx := w.Ranks[0].Ctx()
		var bytes uint64
		// Heap-resident privatization state (PIE segment copies,
		// swap/manual cells) minus the stack ballast. Subtract what the
		// stack block actually contributes to ResidentBytes — if it
		// were ever shared-backed or ballast-accounted differently,
		// subtracting its nominal Size would underflow the unsigned
		// total.
		resident := ctx.Heap.ResidentBytes()
		var stackResident uint64
		if blk := ctx.Heap.Lookup(ctx.Stack.Addr); blk != nil && !blk.Shared {
			stackResident = blk.Size - blk.SharedBytes
		}
		bytes += resident - stackResident
		// TLS block.
		bytes += uint64(len(ctx.TLS)) * 8
		// Linker-held per-rank copies (PIP namespaces, FS copies).
		for _, h := range w.EnvFor(w.Ranks[0].PE()).Linker.Handles() {
			if h.Namespace != 0 || h.Path != img.Name {
				bytes += h.Inst.Img.TotalSegmentBytes()
			}
		}
		rows[i] = MemoryRow{Method: v.name, PerRankBytes: bytes}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := trace.NewTable("Memory: per-rank privatization footprint, ADCIRC-sized image (16 MiB segments)",
		"Method", "Per-rank bytes")
	for _, r := range rows {
		t.AddRow(r.Method, trace.FormatBytes(int64(r.PerRankBytes)))
	}
	return rows, t, nil
}
