package harness

import (
	"fmt"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/jacobi"
)

// Fig7Row is one bar of Fig. 7: Jacobi-3D execution time with all
// inner-loop variables privatized under one method.
type Fig7Row struct {
	Method core.Kind
	Time   sim.Time
	// VsBaseline is Time / unprivatized time.
	VsBaseline float64
}

// Fig7Methods are the methods compared in the privatized-variable-
// access experiment.
func Fig7Methods() []core.Kind {
	return []core.Kind{
		core.KindNone, core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	}
}

// Fig7JacobiAccess runs Jacobi-3D with every inner-loop variable
// privatized and compares execution time across methods (Fig. 7). One
// rank per PE isolates access cost from scheduling effects, matching
// the paper's experimental intent.
func Fig7JacobiAccess() ([]Fig7Row, *trace.Table, error) {
	cfg := jacobi.Config{NX: 32, NY: 32, NZ: 32, Iters: 20, AccessesPerCell: 6, FlopsPerCell: 8}
	var rows []Fig7Row
	var baseline sim.Time
	for _, kind := range Fig7Methods() {
		tc, osEnv := envFor(kind, 1)
		wcfg := ampi.Config{
			Machine:   machineShape(1, 1, 4),
			VPs:       4,
			Privatize: kind,
			Toolchain: tc,
			OS:        osEnv,
		}
		w, err := runWorld(wcfg, jacobi.New(cfg, nil))
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 %s: %w", kind, err)
		}
		row := Fig7Row{Method: kind, Time: w.ExecutionTime()}
		if kind == core.KindNone {
			baseline = row.Time
		}
		if baseline > 0 {
			row.VsBaseline = float64(row.Time) / float64(baseline)
		}
		rows = append(rows, row)
	}
	t := trace.NewTable("Figure 7: Jacobi-3D execution time, privatized inner-loop variables (lower is better)",
		"Method", "Execution time", "vs baseline")
	for _, r := range rows {
		t.AddRow(r.Method.String(), trace.FormatDuration(r.Time), pct(r.VsBaseline))
	}
	return rows, t, nil
}
