package harness

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/jacobi"
)

// Fig7Row is one bar of Fig. 7: Jacobi-3D execution time with all
// inner-loop variables privatized under one method.
type Fig7Row struct {
	Method core.Kind
	Time   sim.Time
	// VsBaseline is Time / unprivatized time.
	VsBaseline float64
}

// Fig7Methods are the methods compared in the privatized-variable-
// access experiment.
func Fig7Methods() []core.Kind {
	return []core.Kind{
		core.KindNone, core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	}
}

// Fig7JacobiAccess runs Jacobi-3D with every inner-loop variable
// privatized and compares execution time across methods (Fig. 7). One
// rank per PE isolates access cost from scheduling effects, matching
// the paper's experimental intent.
func Fig7JacobiAccess(o Opts) ([]Fig7Row, *trace.Table, error) {
	cfg := jacobi.Config{NX: 32, NY: 32, NZ: 32, Iters: 20, AccessesPerCell: 6, FlopsPerCell: 8}
	methods := Fig7Methods()
	rows := make([]Fig7Row, len(methods))
	err := o.runner().Run(len(methods), func(i int) error {
		kind := methods[i]
		sp := scenario.Spec{
			Machine: machineShape(1, 1, 4),
			VPs:     4,
			Method:  kind,
			Program: jacobi.New(cfg, nil),
			Tracer:  o.tracerFor(func(ts *TraceSel) bool { return ts.Method == kind }),
		}
		w, err := sp.Run()
		if err != nil {
			return fmt.Errorf("fig7 %s: %w", kind, err)
		}
		rows[i] = Fig7Row{Method: kind, Time: w.ExecutionTime()}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var baseline sim.Time
	for i := range rows {
		if rows[i].Method == core.KindNone {
			baseline = rows[i].Time
		}
		if baseline > 0 {
			rows[i].VsBaseline = float64(rows[i].Time) / float64(baseline)
		}
	}
	t := trace.NewTable("Figure 7: Jacobi-3D execution time, privatized inner-loop variables (lower is better)",
		"Method", "Execution time", "vs baseline")
	for _, r := range rows {
		t.AddRow(r.Method.String(), trace.FormatDuration(r.Time), pct(r.VsBaseline))
	}
	return rows, t, nil
}
