package harness

import (
	"fmt"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/ft"
	"provirt/internal/machine"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

// ElasticRegime names one churn pattern the elastic experiment runs a
// job under. The zero Churn spec is the calm (churn-free) control.
type ElasticRegime struct {
	Name  string
	Churn ft.ChurnSpec
}

// ElasticRow is one point of the elasticity sweep: a checkpointed job
// run under a seeded churn regime, reporting the two axes the paper's
// malleability story trades between — time-to-solution and node-hours
// — plus the rework split that makes the drain dividend visible.
type ElasticRow struct {
	Method core.Kind
	Target ampi.CheckpointTarget
	Regime string
	// Baseline is the job's churn-free, checkpoint-free time; Total is
	// the elastic time-to-solution (all attempts, drains and restarts
	// included); Overhead is Total/Baseline.
	Baseline sim.Time
	Total    sim.Time
	Overhead float64
	// NodeSeconds integrates cluster membership over the run — the
	// cost axis (shrinking under eviction spends fewer node-hours than
	// holding the full machine; surging spends more).
	NodeSeconds sim.Time
	// Epochs counts membership transitions; Drained and Crashed split
	// them by whether the eviction notice reached a consistency point.
	Epochs  int
	Drained int
	Crashed int
	// ReworkNoticed is rework across drained changes (zero by
	// construction); ReworkForced is rework across notice-too-short
	// evictions — the cost of running blind.
	ReworkNoticed sim.Time
	ReworkForced  sim.Time
	Checkpoints   int
}

// The sweep's job: the checkpointable iterative kernel from the FT
// sweep, on a machine with headroom to shrink twice and still hold
// every rank.
const (
	elIters    = 24
	elCompute  = 8 * time.Millisecond
	elNodes    = 4
	elVPs      = 8
	elDir      = "/scratch/elastic"
	elInterval = 4 * elCompute // checkpoint cadence: every 4 iterations
	// elNotice covers the job's setup phase plus several iteration
	// boundaries, so a noticed eviction always reaches a consistency
	// point and drains — even one announced before the first iteration
	// runs; elHorizon brackets the job.
	elNotice  = 120 * time.Millisecond
	elHorizon = 200 * time.Millisecond
)

// ElasticRegimes is the default churn-regime list: a churn-free
// control, spot-market evictions at two rates, the same busy eviction
// schedule with no notice (every reclaim degrades into a crash), and
// an arrival surge. spot-busy and spot-blind share a seed, so their
// eviction instants are identical and the rows differ only in the
// notice — the drain-versus-crash comparison the paper's malleability
// argument rests on.
func ElasticRegimes() []ElasticRegime {
	return []ElasticRegime{
		{Name: "calm"},
		{Name: "spot-rare", Churn: ft.ChurnSpec{
			Seed: 11, EvictionEvery: 240 * time.Millisecond, Notice: elNotice,
			Horizon: elHorizon, MaxEvents: 1,
		}},
		{Name: "spot-busy", Churn: ft.ChurnSpec{
			Seed: 20, EvictionEvery: 80 * time.Millisecond, Notice: elNotice,
			Horizon: elHorizon, MaxEvents: 2,
		}},
		{Name: "spot-blind", Churn: ft.ChurnSpec{
			Seed: 20, EvictionEvery: 80 * time.Millisecond, Notice: 0,
			Horizon: elHorizon, MaxEvents: 2,
		}},
		{Name: "surge", Churn: ft.ChurnSpec{
			Seed: 13, ArrivalEvery: 90 * time.Millisecond,
			Horizon: elHorizon, MaxEvents: 2,
		}},
	}
}

// CustomChurnRegime builds a single spot-eviction regime from launcher
// flags, sized to the elastic experiment's job.
func CustomChurnRegime(seed uint64, rate, notice sim.Time) ElasticRegime {
	return ElasticRegime{Name: "custom", Churn: ft.ChurnSpec{
		Seed: seed, EvictionEvery: rate, Notice: notice,
		Horizon: elHorizon, MaxEvents: 2,
	}}
}

func elConfig(kind core.Kind, simWorkers int, tracer trace.Tracer) ampi.Config {
	sp := scenario.Spec{
		Machine:    machineShape(elNodes, 1, 2),
		VPs:        elVPs,
		Method:     kind,
		SimWorkers: simWorkers,
		Tracer:     tracer,
	}
	cfg, err := sp.Config()
	if err != nil {
		panic(fmt.Sprintf("elastic: %v", err))
	}
	return cfg
}

// elasticPoint measures one sweep point: the churn-free checkpoint-free
// baseline, then the elastic supervised run under the regime's
// compiled churn plan.
func elasticPoint(o Opts, kind core.Kind, target ampi.CheckpointTarget, regime ElasticRegime) (ElasticRow, error) {
	row := ElasticRow{Method: kind, Target: target, Regime: regime.Name}

	finals := make([]uint64, elVPs)
	w, err := ftRun(elConfig(kind, o.SimWorkers, nil), synth.Checkpointed(elIters, elCompute, finals))
	if err != nil {
		return row, err
	}
	row.Baseline = w.Time()

	// The elastic run: fixed-cadence checkpointing (churn, not MTBF,
	// drives the snapshot need here) under the regime's compiled plan.
	// The plan depends only on the regime, so every method/target combo
	// weathers the identical churn schedule — an equal-footing
	// comparison, and trivially identical at any sweep parallelism.
	plan := regime.Churn.Compile(elNodes)
	cfg := elConfig(kind, o.SimWorkers, o.tracerFor(func(ts *TraceSel) bool {
		return ts.Method == kind && ts.Target == target && ts.Churn == regime.Name
	}))
	cfg.Checkpoint = &ampi.CheckpointPolicy{Target: target, Dir: elDir, Interval: sim.Time(elInterval)}
	supFinals := make([]uint64, elVPs)
	rep, err := ft.RunElastic(ft.ElasticJob{
		Config:      cfg,
		Program:     func() *ampi.Program { return synth.Checkpointed(elIters, elCompute, supFinals) },
		Churn:       plan,
		Recovery:    ft.Shrink,
		MaxRestarts: len(plan.Events) + DefaultElasticHeadroom,
	})
	if err != nil {
		return row, fmt.Errorf("regime %s: %w", regime.Name, err)
	}
	for rank, got := range supFinals {
		if want := synth.CheckpointedAcc(elIters, rank); got != want {
			return row, fmt.Errorf("regime %s: rank %d finished with acc %d, want %d: a membership change lost or double-counted work",
				regime.Name, rank, got, want)
		}
	}
	row.Total = rep.TotalTime
	row.Overhead = float64(rep.TotalTime) / float64(row.Baseline)
	row.NodeSeconds = rep.NodeSeconds
	row.Epochs = rep.Epochs()
	for _, rz := range rep.Resizes {
		if rz.Drained {
			row.Drained++
		}
		if rz.Crashed {
			row.Crashed++
		}
	}
	row.ReworkNoticed = rep.ReworkNoticed()
	row.ReworkForced = rep.ReworkForced()
	row.Checkpoints = rep.Checkpoints
	return row, nil
}

// DefaultElasticHeadroom pads MaxRestarts past the compiled plan's
// event count, covering the restart each membership change costs plus
// slack for crash-path recoveries.
const DefaultElasticHeadroom = 4

// ElasticSweep reproduces the elasticity experiment: supervised
// time-to-solution and node-hours under cluster churn, for each
// migratable privatization method, checkpoint target, and churn
// regime. Churn plans are compiled from per-point seeds before any
// world runs, so rows, tables, and any selected trace are
// byte-identical at any sweep parallelism. A nil regimes selects
// ElasticRegimes().
func ElasticSweep(o Opts, regimes []ElasticRegime) ([]ElasticRow, *trace.Table, error) {
	if regimes == nil {
		regimes = ElasticRegimes()
	}
	kinds := FTSweepMethods()
	targets := []ampi.CheckpointTarget{ampi.TargetFS, ampi.TargetBuddy}
	rows := make([]ElasticRow, len(regimes)*len(kinds)*len(targets))
	err := o.runner().Run(len(rows), func(i int) error {
		regime := regimes[i/(len(kinds)*len(targets))]
		kind := kinds[i/len(targets)%len(kinds)]
		target := targets[i%len(targets)]
		row, err := elasticPoint(o, kind, target, regime)
		if err != nil {
			return fmt.Errorf("elastic %s/%s %s: %w", kind, target, regime.Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := trace.NewTable("Elastic worlds: time-to-solution and node-hours under cluster churn",
		"Method", "Target", "Regime", "Baseline", "Total", "Overhead", "Node-hours",
		"Epochs", "Drains", "Crashes", "Rework (noticed)", "Rework (forced)")
	for _, r := range rows {
		t.AddRow(core.CapabilitiesOf(r.Method).DisplayName, r.Target.String(), r.Regime,
			trace.FormatDuration(r.Baseline), trace.FormatDuration(r.Total), pct(r.Overhead),
			machine.FormatNodeHours(r.NodeSeconds),
			fmt.Sprint(r.Epochs), fmt.Sprint(r.Drained), fmt.Sprint(r.Crashed),
			trace.FormatDuration(r.ReworkNoticed), trace.FormatDuration(r.ReworkForced))
	}
	return rows, t, nil
}
