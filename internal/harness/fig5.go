package harness

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/scenario"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

// Fig5Row is one bar of Fig. 5: startup/initialization time for one
// privatization method at 8x virtualization.
type Fig5Row struct {
	Method core.Kind
	// Startup is the job's initialization time (slowest process).
	Startup sim.Time
	// VsBaseline is Startup / baseline Startup.
	VsBaseline float64
}

// Fig5Startup measures AMPI initialization time for each method with 8
// virtual ranks per process (Fig. 5). nodes controls scale; the
// dlmopen/PIE methods cost constant per process while FSglobals
// degrades with node count due to shared-filesystem contention.
func Fig5Startup(o Opts, nodes int) ([]Fig5Row, *trace.Table, error) {
	if nodes <= 0 {
		nodes = 1
	}
	methods := Fig5Methods()
	rows := make([]Fig5Row, len(methods))
	err := o.runner().Run(len(methods), func(i int) error {
		kind := methods[i]
		sp := scenario.Spec{
			Machine:    machineShape(nodes, 1, 1),
			VPs:        nodes * 8, // 8x virtualization per process
			Method:     kind,
			Program:    synth.Empty(),
			SimWorkers: o.SimWorkers,
			Tracer: o.tracerFor(func(ts *TraceSel) bool {
				return ts.Method == kind && ts.Nodes == nodes
			}),
		}
		w, err := sp.Run()
		if err != nil {
			return fmt.Errorf("fig5 %s: %w", kind, err)
		}
		rows[i] = Fig5Row{Method: kind, Startup: w.SetupDone}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Baseline normalization is a serial post-pass so parallel and
	// serial sweeps produce identical rows.
	var baseline sim.Time
	for i := range rows {
		if rows[i].Method == core.KindNone {
			baseline = rows[i].Startup
		}
		if baseline > 0 {
			rows[i].VsBaseline = float64(rows[i].Startup) / float64(baseline)
		}
	}
	t := trace.NewTable(
		fmt.Sprintf("Figure 5: startup overhead, 8x virtualization, %d node(s) (lower is better)", nodes),
		"Method", "Startup", "vs baseline")
	for _, r := range rows {
		t.AddRow(r.Method.String(), trace.FormatDuration(r.Startup), pct(r.VsBaseline))
	}
	return rows, t, nil
}

// Fig5Scaling shows how each method's startup responds to node count:
// §4.1's observation that "with the exception of FSglobals, which
// relies on a shared file system, the cost is constant per-process and
// does not increase with node counts".
func Fig5Scaling(o Opts, nodeCounts []int) (*trace.Table, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8}
	}
	methods := Fig5Methods()
	headers := []string{"Method"}
	for _, n := range nodeCounts {
		headers = append(headers, fmt.Sprintf("%d node(s)", n))
	}
	t := trace.NewTable("Figure 5 (scaling): startup vs node count, 8x virtualization", headers...)
	perNode := make([][]Fig5Row, len(nodeCounts))
	err := o.runner().Run(len(nodeCounts), func(i int) error {
		// The inner sweep runs serially: the outer fan-out already
		// saturates the workers, and nesting parallel runners would
		// oversubscribe without changing any output.
		rows, _, err := Fig5Startup(Opts{Parallelism: 1, Trace: o.Trace, Progress: o.Progress}, nodeCounts[i])
		perNode[i] = rows
		return err
	})
	if err != nil {
		return nil, err
	}
	cells := make(map[core.Kind][]string, len(methods))
	for _, rows := range perNode {
		for _, r := range rows {
			cells[r.Method] = append(cells[r.Method], trace.FormatDuration(r.Startup))
		}
	}
	for _, m := range methods {
		t.AddRow(append([]string{m.String()}, cells[m]...)...)
	}
	return t, nil
}
