package harness_test

import (
	"fmt"
	"testing"

	"provirt/internal/harness"
	"provirt/internal/workloads/adcirc"
)

// The sweep runner parallelizes experiments by running independent
// worlds on worker goroutines; every world is single-threaded and
// seeded, so the rendered rows and tables must be byte-identical to
// serial execution. These tests pin that contract for the Fig. 5
// startup sweep and the Table 2 / Fig. 9 ADCIRC sweep.

func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	old := harness.Parallelism
	harness.Parallelism = n
	defer func() { harness.Parallelism = old }()
	f()
}

func TestFig5ParallelSweepIsDeterministic(t *testing.T) {
	var serialRows, parallelRows string
	var serialTbl, parallelTbl string
	withParallelism(t, 1, func() {
		rows, tbl, err := harness.Fig5Startup(2)
		if err != nil {
			t.Fatal(err)
		}
		serialRows, serialTbl = fmt.Sprintf("%#v", rows), tbl.String()
	})
	withParallelism(t, 4, func() {
		rows, tbl, err := harness.Fig5Startup(2)
		if err != nil {
			t.Fatal(err)
		}
		parallelRows, parallelTbl = fmt.Sprintf("%#v", rows), tbl.String()
	})
	if serialRows != parallelRows {
		t.Errorf("fig5 rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", serialRows, parallelRows)
	}
	if serialTbl != parallelTbl {
		t.Errorf("fig5 table diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s", serialTbl, parallelTbl)
	}
}

func TestFig9ParallelSweepIsDeterministic(t *testing.T) {
	cfg := adcirc.DefaultConfig()
	cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
	cores := []int{1, 2, 4}

	run := func() (rows string, t2 string, f9 string) {
		r, tbl2, tbl9, err := harness.AdcircScaling(cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", r), tbl2.String(), tbl9.String()
	}
	var sRows, sT2, sF9 string
	withParallelism(t, 1, func() { sRows, sT2, sF9 = run() })
	var pRows, pT2, pF9 string
	withParallelism(t, 4, func() { pRows, pT2, pF9 = run() })

	if sRows != pRows {
		t.Errorf("adcirc rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", sRows, pRows)
	}
	if sT2 != pT2 {
		t.Errorf("table 2 diverges:\nserial:\n%s\nparallel:\n%s", sT2, pT2)
	}
	if sF9 != pF9 {
		t.Errorf("figure 9 diverges:\nserial:\n%s\nparallel:\n%s", sF9, pF9)
	}
}
