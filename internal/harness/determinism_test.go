package harness_test

import (
	"fmt"
	"testing"

	"provirt/internal/harness"
	"provirt/internal/workloads/adcirc"
)

// The sweep runner parallelizes experiments by running independent
// worlds on worker goroutines; every world is single-threaded and
// seeded, so the rendered rows and tables must be byte-identical to
// serial execution. These tests pin that contract for the Fig. 5
// startup sweep and the Table 2 / Fig. 9 ADCIRC sweep.

func TestFig5ParallelSweepIsDeterministic(t *testing.T) {
	run := func(par int) (string, string) {
		rows, tbl, err := harness.Fig5Startup(harness.Opts{Parallelism: par}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	serialRows, serialTbl := run(1)
	parallelRows, parallelTbl := run(4)
	if serialRows != parallelRows {
		t.Errorf("fig5 rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", serialRows, parallelRows)
	}
	if serialTbl != parallelTbl {
		t.Errorf("fig5 table diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s", serialTbl, parallelTbl)
	}
}

func TestFig9ParallelSweepIsDeterministic(t *testing.T) {
	cfg := adcirc.DefaultConfig()
	cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
	cores := []int{1, 2, 4}

	run := func(par int) (rows string, t2 string, f9 string) {
		r, tbl2, tbl9, err := harness.AdcircScaling(harness.Opts{Parallelism: par}, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", r), tbl2.String(), tbl9.String()
	}
	sRows, sT2, sF9 := run(1)
	pRows, pT2, pF9 := run(4)

	if sRows != pRows {
		t.Errorf("adcirc rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", sRows, pRows)
	}
	if sT2 != pT2 {
		t.Errorf("table 2 diverges:\nserial:\n%s\nparallel:\n%s", sT2, pT2)
	}
	if sF9 != pF9 {
		t.Errorf("figure 9 diverges:\nserial:\n%s\nparallel:\n%s", sF9, pF9)
	}
}
