package harness_test

import (
	"bytes"
	"fmt"
	"testing"

	"provirt/internal/harness"
	"provirt/internal/trace"
	"provirt/internal/workloads/adcirc"
)

// The sweep runner parallelizes experiments by running independent
// worlds on worker goroutines; every world is single-threaded and
// seeded, so the rendered rows and tables must be byte-identical to
// serial execution. These tests pin that contract for the Fig. 5
// startup sweep and the Table 2 / Fig. 9 ADCIRC sweep.

func TestFig5ParallelSweepIsDeterministic(t *testing.T) {
	run := func(par int) (string, string) {
		rows, tbl, err := harness.Fig5Startup(harness.Opts{Parallelism: par}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	serialRows, serialTbl := run(1)
	parallelRows, parallelTbl := run(4)
	if serialRows != parallelRows {
		t.Errorf("fig5 rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", serialRows, parallelRows)
	}
	if serialTbl != parallelTbl {
		t.Errorf("fig5 table diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s", serialTbl, parallelTbl)
	}
}

func TestFig9ParallelSweepIsDeterministic(t *testing.T) {
	cfg := adcirc.DefaultConfig()
	cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 8, 4
	cores := []int{1, 2, 4}

	run := func(par int) (rows string, t2 string, f9 string) {
		r, tbl2, tbl9, err := harness.AdcircScaling(harness.Opts{Parallelism: par}, cfg, cores)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", r), tbl2.String(), tbl9.String()
	}
	sRows, sT2, sF9 := run(1)
	pRows, pT2, pF9 := run(4)

	if sRows != pRows {
		t.Errorf("adcirc rows diverge between serial and parallel sweeps:\nserial:   %s\nparallel: %s", sRows, pRows)
	}
	if sT2 != pT2 {
		t.Errorf("table 2 diverges:\nserial:\n%s\nparallel:\n%s", sT2, pT2)
	}
	if sF9 != pF9 {
		t.Errorf("figure 9 diverges:\nserial:\n%s\nparallel:\n%s", sF9, pF9)
	}
}

// SimWorkers shards a single world's event loop across lookahead
// domains (sim.ParallelEngine). The conservative-window protocol fires
// events in the same (time, domain, seq) total order the serial
// engine uses, so rows, tables, and the full trace byte stream must be
// identical at every worker count. The scale experiment is the one
// that actually shards (flat world, per-PE domains); pinning it here
// is the harness-level end of the byte-identity chain that starts at
// sim.TestParallelEngineMatchesSerial. The host-measured gauge fields
// (HostBuildBytesPerRank, HostPeakBytesPerRank) observe the
// simulator's own heap — which legitimately grows with the engine's
// shards — and are already excluded from the rendered table; the
// comparison zeroes them for the same reason.
func TestScaleSimWorkersIsDeterministic(t *testing.T) {
	const vps = 2048
	run := func(workers int) (string, string, []byte) {
		rec := trace.NewRecorder(trace.AllKinds()...)
		o := harness.Opts{
			SimWorkers: workers,
			Trace:      &harness.TraceSel{VPs: vps, Rec: rec},
		}
		rows, tbl, err := harness.ScaleExperiment(o, vps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			rows[i].HostBuildBytesPerRank = 0
			rows[i].HostPeakBytesPerRank = 0
		}
		return fmt.Sprintf("%#v", rows), tbl.String(), jsonl(t, rec)
	}
	serialRows, serialTbl, serialTrace := run(0)
	for _, workers := range []int{1, 2, 8} {
		rows, tbl, tr := run(workers)
		if rows != serialRows {
			t.Errorf("sim-workers=%d: scale rows diverge from serial:\nserial:   %s\nparallel: %s", workers, serialRows, rows)
		}
		if tbl != serialTbl {
			t.Errorf("sim-workers=%d: scale table diverges from serial:\nserial:\n%s\nparallel:\n%s", workers, serialTbl, tbl)
		}
		if !bytes.Equal(tr, serialTrace) {
			t.Errorf("sim-workers=%d: scale trace bytes diverge from serial (%d vs %d bytes)", workers, len(tr), len(serialTrace))
		}
	}
}

// The goroutine-world experiments form a single lookahead domain and
// must run serial — and produce identical output — at any SimWorkers
// setting.
func TestFig5SimWorkersIsANoOp(t *testing.T) {
	run := func(workers int) (string, string) {
		rows, tbl, err := harness.Fig5Startup(harness.Opts{Parallelism: 1, SimWorkers: workers}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", rows), tbl.String()
	}
	serialRows, serialTbl := run(0)
	rows, tbl := run(8)
	if rows != serialRows {
		t.Errorf("fig5 rows change with sim-workers:\nserial:   %s\nworkers 8: %s", serialRows, rows)
	}
	if tbl != serialTbl {
		t.Errorf("fig5 table changes with sim-workers:\nserial:\n%s\nworkers 8:\n%s", serialTbl, tbl)
	}
}
