package machine

import (
	"fmt"
	"time"

	"provirt/internal/sim"
)

// This file is the membership half of the cluster model: an
// epoch-versioned log of node arrivals and retirements at virtual
// times. Construction is epoch 0; AddNodes and RetireNodes append
// later epochs. Everything that reads the machine shape —
// DomainPlanAt, transfer liveness, node-hour accounting — is stamped
// against this log, so fixed-shape clusters (the overwhelmingly common
// case) stay on the exact pre-elastic code path: their log holds one
// event and the hot paths check a single bool.

// MembershipEvent is one epoch transition in a cluster's life. The
// zero epoch records construction.
type MembershipEvent struct {
	// At is the virtual time the event was logged. For retirements
	// with an eviction notice, At is when the notice arrived; the
	// nodes actually leave at At+Notice.
	At sim.Time
	// Added and Retired are the node ids the event added or retired.
	Added   []int
	Retired []int
	// Notice is the eviction-notice window retirements carried (spot
	// instances announce departure ahead of time; 0 for immediate).
	Notice sim.Time
	// Nodes is the live node count once the event has fully taken
	// effect; NodesBuilt counts every node ever constructed (live or
	// retired) and PEs every PE ever built — the id-space sizes
	// DomainPlanAt partitions.
	Nodes      int
	NodesBuilt int
	PEs        int
}

// Epoch reports the cluster's current membership epoch (0 until the
// first post-construction change).
func (cl *Cluster) Epoch() int { return len(cl.events) - 1 }

// Events returns a copy of the membership epoch log; Events()[i] is
// epoch i's transition and Events()[0] the construction epoch.
func (cl *Cluster) Events() []MembershipEvent {
	out := make([]MembershipEvent, len(cl.events))
	copy(out, cl.events)
	return out
}

// EpochAt reports the epoch in effect at virtual time t: the last
// logged event with At <= t.
func (cl *Cluster) EpochAt(t sim.Time) int {
	e := 0
	for i, ev := range cl.events {
		if ev.At <= t {
			e = i
		}
	}
	return e
}

// AddNodes grows the cluster by count nodes of the configured per-node
// shape at virtual time at, appending a membership epoch. New nodes
// continue the global node/process/PE id sequences, so existing ids
// (and everything keyed on them) are untouched. The log is
// append-only and time-ordered: at must not precede the latest event.
func (cl *Cluster) AddNodes(at sim.Time, count int) ([]*Node, error) {
	if count <= 0 {
		return nil, fmt.Errorf("machine: AddNodes needs a positive count, got %d", count)
	}
	if last := cl.events[len(cl.events)-1].At; at < last {
		return nil, fmt.Errorf("machine: AddNodes at %v precedes the latest membership event at %v", at, last)
	}
	added := cl.buildNodes(at, count)
	cl.events = append(cl.events, MembershipEvent{
		At:         at,
		Added:      added,
		Nodes:      cl.liveCount(),
		NodesBuilt: len(cl.Nodes),
		PEs:        len(cl.pes),
	})
	cl.elastic = true
	nodes := make([]*Node, len(added))
	for i, id := range added {
		nodes[i] = cl.Nodes[id]
	}
	return nodes, nil
}

// RetireNodes removes the named nodes from membership, appending a
// membership epoch. The notice window models spot-instance eviction:
// the retirement is logged (and visible to schedulers) at virtual time
// at, but the nodes remain usable until at+notice — the drain window a
// supervisor spends on a final checkpoint. At least one node must
// remain live.
func (cl *Cluster) RetireNodes(at sim.Time, notice sim.Time, ids ...int) error {
	if len(ids) == 0 {
		return fmt.Errorf("machine: RetireNodes needs at least one node id")
	}
	if notice < 0 {
		return fmt.Errorf("machine: RetireNodes notice must be non-negative, got %v", notice)
	}
	if last := cl.events[len(cl.events)-1].At; at < last {
		return fmt.Errorf("machine: RetireNodes at %v precedes the latest membership event at %v", at, last)
	}
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(cl.Nodes) {
			return fmt.Errorf("machine: RetireNodes: no node %d", id)
		}
		if seen[id] {
			return fmt.Errorf("machine: RetireNodes: node %d named twice", id)
		}
		seen[id] = true
		if n := cl.Nodes[id]; n.RetiredAt >= 0 {
			return fmt.Errorf("machine: RetireNodes: node %d already retired at %v", id, n.RetiredAt)
		}
	}
	if cl.liveCount()-len(ids) < 1 {
		return fmt.Errorf("machine: RetireNodes would leave no live nodes (%d live, retiring %d)",
			cl.liveCount(), len(ids))
	}
	leave := at + notice
	retired := append([]int(nil), ids...)
	for _, id := range retired {
		cl.Nodes[id].RetiredAt = leave
	}
	cl.events = append(cl.events, MembershipEvent{
		At:         at,
		Retired:    retired,
		Notice:     notice,
		Nodes:      cl.liveCount(),
		NodesBuilt: len(cl.Nodes),
		PEs:        len(cl.pes),
	})
	cl.elastic = true
	return nil
}

// liveCount counts nodes that have not been retired.
func (cl *Cluster) liveCount() int {
	n := 0
	for _, node := range cl.Nodes {
		if node.RetiredAt < 0 {
			n++
		}
	}
	return n
}

// LiveNodes returns the nodes that are members at virtual time t, in
// id order.
func (cl *Cluster) LiveNodes(t sim.Time) []*Node {
	var out []*Node
	for _, n := range cl.Nodes {
		if n.Live(t) {
			out = append(out, n)
		}
	}
	return out
}

// LivePEs returns the PEs whose nodes are members at virtual time t,
// in global id order.
func (cl *Cluster) LivePEs(t sim.Time) []*PE {
	var out []*PE
	for _, pe := range cl.pes {
		if pe.Proc.Node.Live(t) {
			out = append(out, pe)
		}
	}
	return out
}

// NodeSeconds integrates membership over [0, horizon): the sum over
// nodes of the virtual time each spent as a member — the cost axis of
// an elastic run (node-hours at cloud billing granularity are
// NodeSeconds scaled by 3600s). Nodes still live are charged through
// the horizon.
func (cl *Cluster) NodeSeconds(horizon sim.Time) sim.Time {
	var total sim.Time
	for _, n := range cl.Nodes {
		total += memberSpan(n.JoinedAt, n.RetiredAt, horizon)
	}
	return total
}

// NodeHours is NodeSeconds expressed in node-hours.
func (cl *Cluster) NodeHours(horizon sim.Time) float64 {
	return cl.NodeSeconds(horizon).Hours()
}

// memberSpan is the overlap of [joined, retired) with [0, horizon),
// where retired < 0 means still live.
func memberSpan(joined, retired, horizon sim.Time) sim.Time {
	end := horizon
	if retired >= 0 && retired < end {
		end = retired
	}
	if end <= joined {
		return 0
	}
	return end - joined
}

// NodeSecondsOf integrates a membership timeline kept outside any one
// Cluster — the form an elastic supervisor accumulates while its job
// restarts across cluster instances. spans[i] is one node's
// (joined, retired) pair with retired < 0 meaning live; the result is
// the same integral Cluster.NodeSeconds computes for its own nodes.
func NodeSecondsOf(spans [][2]sim.Time, horizon sim.Time) sim.Time {
	var total sim.Time
	for _, s := range spans {
		total += memberSpan(s[0], s[1], horizon)
	}
	return total
}

// FormatNodeHours renders a node-seconds integral as a fixed-precision
// node-hour string for experiment tables.
func FormatNodeHours(nodeSeconds sim.Time) string {
	return fmt.Sprintf("%.6f", time.Duration(nodeSeconds).Hours())
}
