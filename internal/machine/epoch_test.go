package machine

import (
	"fmt"
	"testing"
	"time"

	"provirt/internal/sim"
)

func sec(n int64) sim.Time { return sim.Time(n) * sim.Time(time.Second) }

func TestEpochZeroIsConstruction(t *testing.T) {
	cl, err := New(Config{Nodes: 3, ProcsPerNode: 2, PEsPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Epoch(); got != 0 {
		t.Fatalf("fresh cluster epoch = %d, want 0", got)
	}
	evs := cl.Events()
	if len(evs) != 1 {
		t.Fatalf("fresh cluster has %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.At != 0 || ev.Nodes != 3 || ev.NodesBuilt != 3 || ev.PEs != 12 || len(ev.Added) != 3 {
		t.Errorf("construction event = %+v", ev)
	}
	for _, n := range cl.Nodes {
		if !n.Live(0) || !n.Live(sec(1000)) {
			t.Errorf("node %d not live on a static cluster", n.ID)
		}
	}
}

func TestAddNodesGrowsShape(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2})
	added, err := cl.AddNodes(sec(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 || added[0].ID != 2 || added[1].ID != 3 {
		t.Fatalf("added node ids = %v", added)
	}
	if got := cl.Epoch(); got != 1 {
		t.Fatalf("epoch after AddNodes = %d, want 1", got)
	}
	// New nodes carry the construction per-node shape and continue the
	// global id sequences.
	if got := len(cl.PEs()); got != 16 {
		t.Fatalf("PE count after expand = %d, want 16", got)
	}
	last := cl.PEs()[15]
	if last.ID != 15 || last.Proc.Node.ID != 3 {
		t.Errorf("last PE = id %d on node %d, want 15 on 3", last.ID, last.Proc.Node.ID)
	}
	if added[0].JoinedAt != sec(10) || added[0].RetiredAt >= 0 {
		t.Errorf("arrival membership = joined %v retired %v", added[0].JoinedAt, added[0].RetiredAt)
	}
	// Before the join instant the arrivals are not members.
	if added[0].Live(sec(9)) || !added[0].Live(sec(10)) {
		t.Error("arrival liveness window wrong")
	}
	if got := len(cl.LiveNodes(sec(9))); got != 2 {
		t.Errorf("live nodes before arrival = %d, want 2", got)
	}
	if got := len(cl.LiveNodes(sec(10))); got != 4 {
		t.Errorf("live nodes after arrival = %d, want 4", got)
	}
	if got := len(cl.LivePEs(sec(10))); got != 16 {
		t.Errorf("live PEs after arrival = %d, want 16", got)
	}
}

func TestRetireNodesWithNotice(t *testing.T) {
	cl, _ := New(Config{Nodes: 3, ProcsPerNode: 1, PEsPerProc: 2})
	if err := cl.RetireNodes(sec(20), sec(5), 1); err != nil {
		t.Fatal(err)
	}
	n := cl.Nodes[1]
	// The notice window keeps the node usable until at+notice.
	if !n.Live(sec(24)) || n.Live(sec(25)) {
		t.Errorf("noticed eviction window wrong: retired at %v", n.RetiredAt)
	}
	ev := cl.Events()[1]
	if ev.At != sec(20) || ev.Notice != sec(5) || len(ev.Retired) != 1 || ev.Nodes != 2 {
		t.Errorf("retire event = %+v", ev)
	}
	if got := len(cl.LiveNodes(sec(30))); got != 2 {
		t.Errorf("live nodes after leave = %d, want 2", got)
	}
}

func TestRetireNodesValidation(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	if err := cl.RetireNodes(0, 0); err == nil {
		t.Error("empty retire accepted")
	}
	if err := cl.RetireNodes(0, 0, 7); err == nil {
		t.Error("unknown node accepted")
	}
	if err := cl.RetireNodes(0, 0, 1, 1); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := cl.RetireNodes(0, -sec(1), 1); err == nil {
		t.Error("negative notice accepted")
	}
	if err := cl.RetireNodes(0, 0, 0, 1); err == nil {
		t.Error("retiring every node accepted")
	}
	if err := cl.RetireNodes(sec(5), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.RetireNodes(sec(6), 0, 1); err == nil {
		t.Error("double retire accepted")
	}
	if err := cl.RetireNodes(sec(1), 0, 0); err == nil {
		t.Error("out-of-order event accepted")
	}
	if _, err := cl.AddNodes(sec(1), 1); err == nil {
		t.Error("out-of-order AddNodes accepted")
	}
	if _, err := cl.AddNodes(sec(6), 0); err == nil {
		t.Error("zero-count AddNodes accepted")
	}
}

func TestEpochAt(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	cl.AddNodes(sec(10), 1)
	cl.RetireNodes(sec(20), sec(2), 0)
	for _, c := range []struct {
		t    sim.Time
		want int
	}{{0, 0}, {sec(9), 0}, {sec(10), 1}, {sec(19), 1}, {sec(20), 2}, {sec(100), 2}} {
		if got := cl.EpochAt(c.t); got != c.want {
			t.Errorf("EpochAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDomainPlanAtEpochs(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2})
	// Epoch 0 plan must be identical to the plain DomainPlan of an
	// untouched twin — the fixed-shape constructors are epoch 0 of the
	// general model.
	twin, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2})
	wantDom, wantN, wantLA := twin.DomainPlan()
	gotDom, gotN, gotLA := cl.DomainPlanAt(0)
	if gotN != wantN || gotLA != wantLA || fmt.Sprint(gotDom) != fmt.Sprint(wantDom) {
		t.Fatalf("epoch-0 plan (%v, %d, %v) != static plan (%v, %d, %v)",
			gotDom, gotN, gotLA, wantDom, wantN, wantLA)
	}
	cl.AddNodes(sec(10), 2)
	// The current plan covers the grown PE space, one domain per node.
	dom, ndom, _ := cl.DomainPlan()
	if ndom != 4 || len(dom) != 8 {
		t.Fatalf("post-expand plan: %d domains over %d PEs, want 4 over 8", ndom, len(dom))
	}
	for pe, d := range dom {
		if want := int32(pe / 2); d != want {
			t.Errorf("PE %d in domain %d, want %d", pe, d, want)
		}
	}
	// The epoch-0 plan is still reconstructible after the expansion.
	oldDom, oldN, _ := cl.DomainPlanAt(0)
	if oldN != wantN || fmt.Sprint(oldDom) != fmt.Sprint(wantDom) {
		t.Errorf("epoch-0 plan changed after expand: (%v, %d)", oldDom, oldN)
	}
}

func TestElasticTransferLivenessAssert(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	cl.RetireNodes(sec(10), 0, 1)
	pes := cl.PEs()
	// Before the retirement transfers flow normally.
	if d := cl.TransferTimeAt(sec(5), pes[0], pes[1], 1024); d <= 0 {
		t.Fatalf("pre-retire transfer time = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("transfer through a retired node did not panic")
		}
	}()
	cl.TransferTimeAt(sec(10), pes[0], pes[1], 1024)
}

func TestStaticClusterSkipsLivenessAssert(t *testing.T) {
	// A cluster whose log never grew must not assert — even for times
	// before zero or absurdly late; the hot path is one bool check.
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	pes := cl.PEs()
	if d := cl.TransferTimeAt(sec(1<<20), pes[0], pes[1], 64); d <= 0 {
		t.Errorf("static transfer time = %v", d)
	}
}

func TestNodeSecondsIntegration(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	cl.AddNodes(sec(10), 1)          // node 2 joins at 10
	cl.RetireNodes(sec(20), 0, 0)    // node 0 leaves at 20
	cl.RetireNodes(sec(30), sec(5), 2) // node 2 notice at 30, leaves 35
	horizon := sec(40)
	// node 0: [0,20) = 20; node 1: [0,40) = 40; node 2: [10,35) = 25.
	if got, want := cl.NodeSeconds(horizon), sec(85); got != want {
		t.Errorf("NodeSeconds = %v, want %v", got, want)
	}
	// Horizon clips live nodes.
	if got, want := cl.NodeSeconds(sec(15)), sec(15)+sec(15)+sec(5); got != want {
		t.Errorf("NodeSeconds(15s) = %v, want %v", got, want)
	}
	// The standalone integral agrees.
	spans := [][2]sim.Time{{0, sec(20)}, {0, -1}, {sec(10), sec(35)}}
	if got, want := NodeSecondsOf(spans, horizon), sec(85); got != want {
		t.Errorf("NodeSecondsOf = %v, want %v", got, want)
	}
	if got, want := cl.NodeHours(horizon), (85.0 / 3600.0); got != want {
		t.Errorf("NodeHours = %v, want %v", got, want)
	}
	if got, want := FormatNodeHours(sec(3600)), "1.000000"; got != want {
		t.Errorf("FormatNodeHours = %q, want %q", got, want)
	}
}

func TestDegradeLinksRejectsNoOpWindows(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	cl.DegradeLinks(0, sec(10), 1.0)     // factor 1: silent no-op, dropped
	cl.DegradeLinks(sec(10), sec(10), 4) // empty interval, dropped
	cl.DegradeLinks(sec(10), sec(5), 4)  // inverted interval, dropped
	cl.DegradeLinks(0, sec(10), 0.5)     // speed-up: not a degradation, dropped
	if got := len(cl.degrades); got != 0 {
		t.Fatalf("%d no-op windows retained, want 0", got)
	}
	pes := cl.PEs()
	base := cl.TransferTime(pes[0], pes[1], 4096)
	if got := cl.TransferTimeAt(sec(5), pes[0], pes[1], 4096); got != base {
		t.Errorf("dropped windows changed transfer time: %v != %v", got, base)
	}
}

func TestDegradeLinksOverlappingWindowsCompound(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1})
	cl.DegradeLinks(0, sec(20), 2)
	cl.DegradeLinks(sec(10), sec(30), 3)
	pes := cl.PEs()
	base := float64(cl.TransferTime(pes[0], pes[1], 1<<20))
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{sec(5), 2},   // first window only
		{sec(15), 6},  // overlap: factors multiply
		{sec(25), 3},  // second window only
		{sec(30), 1},  // past both ([from, until) is half-open)
	}
	for _, c := range cases {
		got := float64(cl.TransferTimeAt(c.at, pes[0], pes[1], 1<<20))
		want := base * c.want
		if diff := got - want; diff > 1 || diff < -1 { // 1ns slack for float rounding
			t.Errorf("transfer at %v = %v, want %v (factor %v)", c.at, got, want, c.want)
		}
	}
}
