// Package machine models the hardware substrate of the evaluation: a
// cluster of nodes with multi-core processors, a tiered interconnect, and
// a shared parallel filesystem. All costs are charged to the discrete-event
// clock from a CostModel calibrated against the magnitudes the paper
// reports for Bridges-2 (AMD EPYC 7742 nodes, Mellanox Infiniband).
package machine

import "time"

// CostModel holds every latency and bandwidth constant the simulation
// charges. Experiments never invent costs inline; they all flow from here
// so ablations can swap a single field and observe sensitivity.
type CostModel struct {
	// --- User-level threading (Figure 6) ---

	// ULTSwitchBase is the cost of one user-level thread context switch
	// including scheduler overhead, with no privatization enabled. The
	// paper cites ~100ns.
	ULTSwitchBase time.Duration
	// TLSSwitchCost is the additional cost of updating the TLS segment
	// pointer at a context switch (TLSglobals and PIEglobals pay this).
	TLSSwitchCost time.Duration
	// GOTSwapCost is the additional cost of swapping the Global Offset
	// Table pointer at a context switch (Swapglobals pays this).
	GOTSwapCost time.Duration

	// --- Variable access (Figure 7) ---

	// GlobalAccessDirect is the cost of one load/store of an
	// unprivatized global (PC-relative or absolute addressing).
	GlobalAccessDirect time.Duration
	// GlobalAccessIndirect is the cost of one load/store through one
	// level of indirection (GOT entry or TLS block pointer) when the
	// compiler cannot cache the base register. At the optimization
	// levels the paper uses, the indirection is hoisted out of inner
	// loops, so the effective extra cost is zero; the raw (unoptimized)
	// extra cost is kept for the ablation bench.
	GlobalAccessIndirect time.Duration
	// CompilerHoistsIndirection reports whether inner-loop privatized
	// accesses are charged at the direct rate (the paper's §4.3
	// hypothesis that optimizing compilers hide the indirection).
	CompilerHoistsIndirection bool

	// --- Memory operations ---

	// MemcpyBandwidth is bytes/second for large intra-process copies
	// (code/data segment duplication, TLS template copies).
	MemcpyBandwidth float64
	// PointerScanPerWord is the cost of inspecting one 8-byte word of
	// the data segment during PIEglobals' pointer-fixup scan.
	PointerScanPerWord time.Duration
	// PageMapCost is the per-page cost of establishing a mapping
	// (mmap/mprotect bookkeeping in the simulated kernel).
	PageMapCost time.Duration

	// --- Dynamic linking (Figure 5) ---

	// ExecLoadBase is the one-time cost of loading the initial
	// executable and the runtime into a process.
	ExecLoadBase time.Duration
	// RuntimeInitBase is the one-time cost of AMPI/Charm++ runtime
	// bring-up per process (network endpoints, scheduler threads,
	// location manager). It dominates baseline startup, which is why
	// modest per-rank privatization work stays within ~10% (Fig. 5).
	RuntimeInitBase time.Duration
	// DlopenBase is the fixed cost of one dlopen call (file open,
	// header parse) excluding per-relocation and per-page work.
	DlopenBase time.Duration
	// DlmopenExtra is dlmopen's additional fixed cost over dlopen
	// (fresh link-map namespace construction).
	DlmopenExtra time.Duration
	// RelocationCost is the cost of processing one relocation entry.
	RelocationCost time.Duration
	// CtorReplayPerAlloc is the cost of replaying one logged static
	// constructor heap allocation for a new rank under PIEglobals.
	CtorReplayPerAlloc time.Duration

	// --- Interconnect ---

	// SharedMemLatency/Bandwidth: ranks in the same OS process.
	SharedMemLatency   time.Duration
	SharedMemBandwidth float64
	// IntraNodeLatency/Bandwidth: different processes, same node.
	IntraNodeLatency   time.Duration
	IntraNodeBandwidth float64
	// InterNodeLatency/Bandwidth: across the interconnect.
	InterNodeLatency   time.Duration
	InterNodeBandwidth float64
	// MsgSendOverhead and MsgRecvOverhead are the per-message CPU costs
	// of the runtime's send and receive paths (envelope handling,
	// matching).
	MsgSendOverhead time.Duration
	MsgRecvOverhead time.Duration
	// MigrationOverhead is the fixed per-migration runtime cost
	// (location management update, barrier participation).
	MigrationOverhead time.Duration

	// --- Shared filesystem (FSglobals) ---

	// FSOpenLatency is the per-file metadata cost (open/create/stat).
	FSOpenLatency time.Duration
	// FSBandwidth is the aggregate shared-filesystem bandwidth in
	// bytes/second; concurrent clients serialize on it, which is what
	// makes FSglobals startup degrade with scale (§3.2).
	FSBandwidth float64

	// --- Compute ---

	// FlopTime is the cost of one floating-point stencil update worth
	// of work (used by the Jacobi and ADCIRC workloads).
	FlopTime time.Duration
}

// Default returns the cost model used by all headline experiments,
// calibrated to the magnitudes reported in the paper: ~100ns ULT context
// switches with every method within ~12ns of baseline (Fig. 6), startup
// overheads within ~10% of baseline for the dlmopen-based methods at 8x
// virtualization (Fig. 5), and migration dominated by bytes moved over an
// Infiniband-class network (Fig. 8).
func Default() *CostModel {
	return &CostModel{
		ULTSwitchBase: 100 * time.Nanosecond,
		TLSSwitchCost: 11 * time.Nanosecond,
		GOTSwapCost:   6 * time.Nanosecond,

		GlobalAccessDirect:        1 * time.Nanosecond,
		GlobalAccessIndirect:      2 * time.Nanosecond,
		CompilerHoistsIndirection: true,

		MemcpyBandwidth:    12e9, // 12 GB/s single-core copy
		PointerScanPerWord: 1 * time.Nanosecond,
		PageMapCost:        150 * time.Nanosecond,

		ExecLoadBase:       5 * time.Millisecond,
		RuntimeInitBase:    90 * time.Millisecond,
		DlopenBase:         120 * time.Microsecond,
		DlmopenExtra:       80 * time.Microsecond,
		RelocationCost:     40 * time.Nanosecond,
		CtorReplayPerAlloc: 300 * time.Nanosecond,

		SharedMemLatency:   600 * time.Nanosecond,
		SharedMemBandwidth: 8e9,
		IntraNodeLatency:   900 * time.Nanosecond,
		IntraNodeBandwidth: 6e9,
		InterNodeLatency:   1500 * time.Nanosecond,
		InterNodeBandwidth: 12e9, // HDR Infiniband class
		MsgSendOverhead:    250 * time.Nanosecond,
		MsgRecvOverhead:    200 * time.Nanosecond,
		MigrationOverhead:  50 * time.Microsecond,

		FSOpenLatency: 250 * time.Microsecond,
		FSBandwidth:   2e9,

		FlopTime: 1 * time.Nanosecond,
	}
}

// MinLatencyAcross reports the smallest latency of any link that can
// cross a partition boundary when PEs are grouped at the given machine
// tier: grouping by node leaves only inter-node links crossing;
// grouping by process adds intra-node links; grouping by PE (or any
// finer split) can cross every tier. This is the conservative lookahead
// bound parallel simulation uses — no cross-domain event can arrive
// sooner than the cheapest link that joins two domains.
//
// tier follows the trace tier constants via the sameNode/sameProc
// geometry: pass the coarsest relation still shared inside one domain.
func (c *CostModel) MinLatencyAcross(sameNode, sameProc bool) time.Duration {
	min := c.InterNodeLatency
	if sameNode {
		if c.IntraNodeLatency < min {
			min = c.IntraNodeLatency
		}
	}
	if sameProc {
		if c.SharedMemLatency < min {
			min = c.SharedMemLatency
		}
	}
	return min
}

// CopyTime returns the virtual time to memcpy n bytes within a process.
func (c *CostModel) CopyTime(n uint64) time.Duration {
	return time.Duration(float64(n) / c.MemcpyBandwidth * float64(time.Second))
}

// PageMapTime returns the cost of mapping n bytes of fresh pages.
func (c *CostModel) PageMapTime(n uint64) time.Duration {
	pages := (n + 4095) / 4096
	return time.Duration(pages) * c.PageMapCost
}
