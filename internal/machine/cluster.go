package machine

import (
	"fmt"
	"time"

	"provirt/internal/mem"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// Config describes a cluster to simulate.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// ProcsPerNode is the number of OS processes launched per node
	// (one per socket or per node is typical for AMPI's SMP mode).
	ProcsPerNode int
	// PEsPerProc is the number of processing elements (scheduler
	// threads pinned to cores) per process. PEsPerProc > 1 is what the
	// paper calls SMP mode.
	PEsPerProc int
	// Cost is the cost model; nil selects Default().
	Cost *CostModel
	// Seed drives all pseudo-randomness in the run.
	Seed uint64
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("machine: Nodes must be positive, got %d", c.Nodes)
	}
	if c.ProcsPerNode <= 0 {
		return fmt.Errorf("machine: ProcsPerNode must be positive, got %d", c.ProcsPerNode)
	}
	if c.PEsPerProc <= 0 {
		return fmt.Errorf("machine: PEsPerProc must be positive, got %d", c.PEsPerProc)
	}
	return nil
}

// TotalPEs returns the number of processing elements in the cluster.
func (c Config) TotalPEs() int { return c.Nodes * c.ProcsPerNode * c.PEsPerProc }

// SMPMode reports whether processes host more than one PE.
func (c Config) SMPMode() bool { return c.PEsPerProc > 1 }

// Cluster is the simulated machine: nodes containing OS processes
// containing PEs, joined by a tiered network and a shared filesystem.
//
// Membership is runtime state, not a construction-time constant: the
// cluster keeps an epoch-versioned membership log (see epoch.go), and
// New records the initial shape as epoch 0. AddNodes and RetireNodes
// append later epochs at virtual times. A cluster whose log never
// grows past epoch 0 behaves exactly as the fixed-shape model always
// did — the elastic checks are gated on a single bool that stays false
// until the first membership change.
type Cluster struct {
	Engine *sim.Engine
	Cost   *CostModel
	RNG    *sim.RNG
	Nodes  []*Node
	FS     *SharedFS

	// Tracer, when non-nil, receives link-occupancy events from
	// Transfer. Nil (the default) costs one pointer comparison.
	Tracer trace.Tracer

	pes []*PE

	// cfg is the construction shape; AddNodes builds new nodes with the
	// same per-node process/PE layout.
	cfg Config

	// events is the membership epoch log; events[0] is the construction
	// epoch. elastic flips true on the first post-construction event so
	// the hot transfer path pays one bool check while membership is
	// static.
	events  []MembershipEvent
	elastic bool

	// degrades holds injected link-degradation windows (fault
	// injection). Empty on the healthy path, which transfers check with
	// one length comparison.
	degrades []degradeWindow
}

// degradeWindow is one transient network fault: transfers departing
// within [From, Until) take Factor times as long.
type degradeWindow struct {
	From, Until sim.Time
	Factor      float64
}

// DegradeLinks injects a transient network fault: every transfer whose
// departure falls in [from, until) is slowed by factor (> 1).
// Overlapping windows compound multiplicatively. Windows are part of
// the run's configuration, so runs remain pure functions of their
// inputs. Windows that cannot change any transfer — an empty interval,
// or factor <= 1 (a factor of exactly 1 would be a silent no-op that
// linkFactor still scans on every degraded transfer) — are dropped.
func (cl *Cluster) DegradeLinks(from, until sim.Time, factor float64) {
	if factor <= 1 || until <= from {
		return
	}
	cl.degrades = append(cl.degrades, degradeWindow{From: from, Until: until, Factor: factor})
}

// linkFactor reports the compound slowdown for a transfer departing at
// start.
func (cl *Cluster) linkFactor(start sim.Time) float64 {
	f := 1.0
	for _, w := range cl.degrades {
		if start >= w.From && start < w.Until {
			f *= w.Factor
		}
	}
	return f
}

// SetTracer wires a tracer through the machine layer: link occupancy
// on the cluster, transfer spans on the shared filesystem, and
// dispatch events on the engine.
func (cl *Cluster) SetTracer(t trace.Tracer) {
	cl.Tracer = t
	cl.FS.tracer = t
	cl.Engine.SetTracer(t)
}

// Node is one compute node.
type Node struct {
	ID    int
	Procs []*Process

	// JoinedAt is the virtual time the node entered the cluster (0 for
	// construction-time nodes). RetiredAt is the virtual time it left,
	// or -1 while it is live.
	JoinedAt  sim.Time
	RetiredAt sim.Time
}

// Live reports whether the node is a member at virtual time t.
func (n *Node) Live(t sim.Time) bool {
	return t >= n.JoinedAt && (n.RetiredAt < 0 || t < n.RetiredAt)
}

// Process is one OS process: an address space plus one or more PEs.
type Process struct {
	ID       int // global process id
	Node     *Node
	PEs      []*PE
	AS       *mem.AddressSpace
	Walltime time.Duration // accumulated startup work charged to this process

	heapArena *mem.Region
	heapNext  uint64
}

// Malloc allocates n bytes on the process's (non-migratable) heap and
// returns the address. This is the allocator static constructors hit at
// dlopen time — allocations the privatization runtime cannot intercept.
func (p *Process) Malloc(n uint64) uint64 {
	n = (n + 7) &^ 7
	if p.heapArena == nil || p.heapNext+n > p.heapArena.End() {
		size := uint64(1 << 24)
		if n > size {
			size = n
		}
		p.heapArena = p.AS.Mmap(size, "process-heap")
		p.heapNext = p.heapArena.Base
	}
	addr := p.heapNext
	p.heapNext += n
	return addr
}

// PE is a processing element: one scheduler thread pinned to a core.
type PE struct {
	ID   int // global PE id
	Proc *Process
	// Sched is the user-level thread scheduler bound to this PE. It is
	// declared as an interface to keep the package dependency order
	// machine -> (nothing); package ult assigns the concrete type.
	Sched Scheduler
}

// Scheduler is the contract package ult's per-PE scheduler fulfils.
type Scheduler interface {
	// Now reports the PE's local clock.
	Now() sim.Time
}

// New builds a cluster per cfg. The engine clock starts at zero.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cost := cfg.Cost
	if cost == nil {
		cost = Default()
	}
	cl := &Cluster{
		Engine: sim.NewEngine(),
		Cost:   cost,
		RNG:    sim.NewRNG(cfg.Seed),
		cfg:    cfg,
	}
	cl.FS = NewSharedFS(cl.Engine, cost)
	added := cl.buildNodes(0, cfg.Nodes)
	// The construction shape is epoch 0 of the membership log; a
	// cluster that never changes shape never leaves it.
	cl.events = append(cl.events, MembershipEvent{
		At: 0, Added: added, Nodes: cfg.Nodes, NodesBuilt: cfg.Nodes, PEs: len(cl.pes),
	})
	return cl, nil
}

// buildNodes appends count nodes of the configured per-node shape,
// continuing the global node/process/PE id sequences, with the given
// join time. It returns the new node ids.
func (cl *Cluster) buildNodes(at sim.Time, count int) []int {
	procID := 0
	for _, n := range cl.Nodes {
		procID += len(n.Procs)
	}
	peID := len(cl.pes)
	var added []int
	for i := 0; i < count; i++ {
		node := &Node{ID: len(cl.Nodes), JoinedAt: at, RetiredAt: -1}
		for p := 0; p < cl.cfg.ProcsPerNode; p++ {
			proc := &Process{ID: procID, Node: node, AS: mem.NewAddressSpace()}
			procID++
			for q := 0; q < cl.cfg.PEsPerProc; q++ {
				pe := &PE{ID: peID, Proc: proc}
				peID++
				proc.PEs = append(proc.PEs, pe)
				cl.pes = append(cl.pes, pe)
			}
			node.Procs = append(node.Procs, proc)
		}
		added = append(added, node.ID)
		cl.Nodes = append(cl.Nodes, node)
	}
	return added
}

// PEs returns every PE in global id order.
func (cl *Cluster) PEs() []*PE { return cl.pes }

// PE returns the PE with global id i.
func (cl *Cluster) PE(i int) *PE { return cl.pes[i] }

// Processes returns every process in global id order.
func (cl *Cluster) Processes() []*Process {
	var out []*Process
	for _, n := range cl.Nodes {
		out = append(out, n.Procs...)
	}
	return out
}

// DomainPlan partitions the cluster's PEs into conservative-lookahead
// domains for parallel simulation: domains follow the coarsest machine
// tier with more than one unit — one domain per node on a multi-node
// machine, else per process, else per PE — so the cheapest link that
// can cross a domain boundary is as slow as the machine allows.
// It returns the per-PE domain assignment (indexed by global PE id),
// the domain count, and the lookahead bound: the minimum latency of
// any cross-domain link. When the natural unit count exceeds
// sim.MaxDomains, contiguous units share a domain; merging whole units
// only removes boundaries, so the bound still holds.
func (cl *Cluster) DomainPlan() (domOf []int32, ndom int, lookahead time.Duration) {
	return cl.DomainPlanAt(cl.Epoch())
}

// DomainPlanAt is DomainPlan evaluated at a membership epoch: it
// covers exactly the PEs that existed by that epoch (later arrivals
// are absent from the assignment). Retired nodes keep their domains —
// their PEs simply stop producing events — so an assignment computed
// at an early epoch stays valid as nodes leave, and epoch 0 of an
// unchanged cluster reproduces the fixed-shape plan bit for bit.
func (cl *Cluster) DomainPlanAt(epoch int) (domOf []int32, ndom int, lookahead time.Duration) {
	ev := cl.events[epoch]
	pes := cl.pes[:ev.PEs]
	nodesBuilt := ev.NodesBuilt
	procsBuilt := nodesBuilt * cl.cfg.ProcsPerNode
	// unitOf maps each PE to its partition unit at the chosen tier.
	unitOf := make([]int, len(pes))
	var units int
	switch {
	case nodesBuilt > 1:
		units = nodesBuilt
		for i, pe := range pes {
			unitOf[i] = pe.Proc.Node.ID
		}
		lookahead = cl.Cost.MinLatencyAcross(false, false)
	case procsBuilt > 1:
		units = procsBuilt
		for i, pe := range pes {
			unitOf[i] = pe.Proc.ID
		}
		lookahead = cl.Cost.MinLatencyAcross(true, false)
	default:
		units = len(pes)
		for i := range pes {
			unitOf[i] = i
		}
		lookahead = cl.Cost.MinLatencyAcross(true, true)
	}
	ndom = units
	if ndom > sim.MaxDomains {
		ndom = sim.MaxDomains
	}
	domOf = make([]int32, len(pes))
	for i, u := range unitOf {
		domOf[i] = int32(u * ndom / units)
	}
	return domOf, ndom, lookahead
}

// TransferTime returns the network cost of moving n bytes from PE a to
// PE b, picking the tier from their relative placement.
func (cl *Cluster) TransferTime(a, b *PE, n uint64) time.Duration {
	c := cl.Cost
	switch {
	case a.Proc == b.Proc:
		return c.SharedMemLatency + time.Duration(float64(n)/c.SharedMemBandwidth*float64(time.Second))
	case a.Proc.Node == b.Proc.Node:
		return c.IntraNodeLatency + time.Duration(float64(n)/c.IntraNodeBandwidth*float64(time.Second))
	default:
		return c.InterNodeLatency + time.Duration(float64(n)/c.InterNodeBandwidth*float64(time.Second))
	}
}

// Tier reports which network tier joins two PEs.
func (cl *Cluster) Tier(a, b *PE) int32 {
	switch {
	case a.Proc == b.Proc:
		return trace.TierSharedMem
	case a.Proc.Node == b.Proc.Node:
		return trace.TierIntraNode
	default:
		return trace.TierInterNode
	}
}

// TransferTimeAt is TransferTime anchored at a departure instant: it
// additionally applies any link-degradation window covering start, and
// on an elastic cluster (one whose membership log has grown past the
// construction epoch) asserts both endpoints are members at departure.
// With no injected faults and no membership changes it is exactly
// TransferTime.
func (cl *Cluster) TransferTimeAt(start sim.Time, a, b *PE, n uint64) time.Duration {
	if cl.elastic {
		cl.assertLive(start, a)
		cl.assertLive(start, b)
	}
	d := cl.TransferTime(a, b, n)
	if len(cl.degrades) != 0 {
		d = time.Duration(float64(d) * cl.linkFactor(start))
	}
	return d
}

// assertLive panics when a transfer endpoint's node is not a cluster
// member at the departure instant — routing traffic through departed
// or not-yet-joined hardware is a modeling bug, not a recoverable
// condition. Only elastic clusters pay this check.
func (cl *Cluster) assertLive(at sim.Time, pe *PE) {
	if n := pe.Proc.Node; !n.Live(at) {
		panic(fmt.Sprintf("machine: transfer at %v touches PE %d on node %d, which is not a member (joined %v, retired %v)",
			at, pe.ID, n.ID, n.JoinedAt, n.RetiredAt))
	}
}

// Transfer charges a transfer of n bytes departing PE a for PE b at
// virtual time start and returns the arrival time. It is TransferTimeAt
// anchored at a departure instant, which lets the tracer record the
// flight as a link-occupancy span; untraced callers on a healthy
// network get exactly start + TransferTime(a, b, n).
func (cl *Cluster) Transfer(start sim.Time, a, b *PE, n uint64) sim.Time {
	d := cl.TransferTimeAt(start, a, b, n)
	if cl.Tracer != nil {
		cl.Tracer.Emit(trace.Event{Time: start, Dur: d, Kind: trace.KindLink,
			PE: int32(a.ID), VP: -1, Peer: int32(b.ID), Aux: cl.Tier(a, b), Bytes: n})
	}
	return start + d
}

// SharedFS models a parallel filesystem whose aggregate bandwidth is
// shared by all clients. Transfers serialize on the filesystem resource,
// so per-client throughput degrades as more processes do I/O at once —
// the behaviour that makes FSglobals startup scale poorly (§3.2).
type SharedFS struct {
	engine   *sim.Engine
	cost     *CostModel
	busyTill sim.Time
	tracer   trace.Tracer

	files map[string]uint64 // path -> size

	// Stats
	BytesWritten uint64
	BytesRead    uint64
	Opens        uint64
}

// NewSharedFS returns an empty filesystem.
func NewSharedFS(e *sim.Engine, c *CostModel) *SharedFS {
	return &SharedFS{engine: e, cost: c, files: make(map[string]uint64)}
}

// transfer charges a transfer of n bytes starting no earlier than start
// and returns its completion time.
func (fs *SharedFS) transfer(start sim.Time, n uint64) sim.Time {
	if fs.busyTill > start {
		start = fs.busyTill
	}
	done := start + fs.cost.FSOpenLatency +
		time.Duration(float64(n)/fs.cost.FSBandwidth*float64(time.Second))
	fs.busyTill = done
	if fs.tracer != nil {
		// The span starts when the transfer reaches the head of the
		// shared-bandwidth queue, so concurrent clients render as the
		// serialized occupancy the FSglobals startup pathology is about.
		fs.tracer.Emit(trace.Event{Time: start, Dur: done - start, Kind: trace.KindFSIO,
			PE: -1, VP: -1, Peer: -1, Bytes: n})
	}
	return done
}

// WriteFile writes a file of n bytes beginning at virtual time start and
// returns the completion time.
func (fs *SharedFS) WriteFile(start sim.Time, path string, n uint64) sim.Time {
	fs.files[path] = n
	fs.Opens++
	fs.BytesWritten += n
	return fs.transfer(start, n)
}

// ReadFile reads the named file beginning at start; it returns the
// completion time and the file size.
func (fs *SharedFS) ReadFile(start sim.Time, path string) (sim.Time, uint64, error) {
	n, ok := fs.files[path]
	if !ok {
		return start, 0, fmt.Errorf("machine: shared fs: no such file %q", path)
	}
	fs.Opens++
	fs.BytesRead += n
	return fs.transfer(start, n), n, nil
}

// Populate records a pre-existing file without charging I/O time —
// contents written by an earlier job on the persistent shared
// filesystem (e.g. checkpoint files a restarted job reads back).
func (fs *SharedFS) Populate(path string, n uint64) {
	fs.files[path] = n
}

// Exists reports whether path is present.
func (fs *SharedFS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Remove deletes a file (no time cost; cleanup happens off the critical
// path).
func (fs *SharedFS) Remove(path string) {
	delete(fs.files, path)
}

// TotalBytes reports the space consumed on the filesystem.
func (fs *SharedFS) TotalBytes() uint64 {
	var t uint64
	for _, n := range fs.files {
		t += n
	}
	return t
}
