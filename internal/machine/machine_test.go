package machine

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 1},
		{Nodes: 1, ProcsPerNode: 1},
		{Nodes: 0, ProcsPerNode: 1, PEsPerProc: 1},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	good := Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.TotalPEs() != 16 {
		t.Errorf("TotalPEs = %d", good.TotalPEs())
	}
	if !good.SMPMode() {
		t.Error("4 PEs/proc should be SMP mode")
	}
	if (Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1}).SMPMode() {
		t.Error("1 PE/proc is not SMP mode")
	}
}

func TestClusterTopology(t *testing.T) {
	cl, err := New(Config{Nodes: 2, ProcsPerNode: 3, PEsPerProc: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 2 || len(cl.Processes()) != 6 || len(cl.PEs()) != 24 {
		t.Fatalf("topology %d/%d/%d", len(cl.Nodes), len(cl.Processes()), len(cl.PEs()))
	}
	// Global ids are dense and ordered.
	for i, pe := range cl.PEs() {
		if pe.ID != i {
			t.Fatalf("PE %d has id %d", i, pe.ID)
		}
	}
	for i, p := range cl.Processes() {
		if p.ID != i {
			t.Fatalf("process %d has id %d", i, p.ID)
		}
		if p.AS == nil {
			t.Fatal("process without address space")
		}
	}
	// Each process's PEs point back at it.
	for _, p := range cl.Processes() {
		for _, pe := range p.PEs {
			if pe.Proc != p {
				t.Fatal("PE/process linkage broken")
			}
		}
	}
}

func TestTransferTimeTiers(t *testing.T) {
	cl, _ := New(Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2})
	pes := cl.PEs()
	const n = 1 << 20
	sameProc := cl.TransferTime(pes[0], pes[1], n)
	sameNode := cl.TransferTime(pes[0], pes[2], n)
	crossNode := cl.TransferTime(pes[0], pes[4], n)
	if !(sameProc < sameNode) {
		t.Errorf("shared-memory transfer %v not faster than intra-node %v", sameProc, sameNode)
	}
	if crossNode < sameNode/10 {
		t.Errorf("implausible cross-node %v vs intra-node %v", crossNode, sameNode)
	}
	// Latency dominates small messages; bandwidth dominates large.
	small := cl.TransferTime(pes[0], pes[4], 8)
	large := cl.TransferTime(pes[0], pes[4], 1<<30)
	if small >= large {
		t.Error("transfer time not increasing in size")
	}
	if small < cl.Cost.InterNodeLatency {
		t.Error("small transfer beat the wire latency")
	}
}

func TestProcessMalloc(t *testing.T) {
	cl, _ := New(Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	p := cl.Processes()[0]
	a := p.Malloc(100)
	b := p.Malloc(100)
	if a == b || b < a+100 {
		t.Fatalf("mallocs overlap: %#x %#x", a, b)
	}
	// A huge allocation spills into a fresh arena.
	c := p.Malloc(64 << 20)
	if c == 0 {
		t.Fatal("large malloc failed")
	}
	if p.AS.Find(c) == nil {
		t.Fatal("malloc result not inside a mapped region")
	}
}

func TestSharedFSSerialization(t *testing.T) {
	cl, _ := New(Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1})
	fs := cl.FS
	d1 := fs.WriteFile(0, "/a", 1<<20)
	d2 := fs.WriteFile(0, "/b", 1<<20)
	if d2 <= d1 {
		t.Error("concurrent writes did not serialize on the FS")
	}
	done, n, err := fs.ReadFile(d2, "/a")
	if err != nil || n != 1<<20 {
		t.Fatalf("read: %v n=%d", err, n)
	}
	if done <= d2 {
		t.Error("read charged no time")
	}
	if !fs.Exists("/a") || fs.Exists("/c") {
		t.Error("Exists wrong")
	}
	fs.Remove("/a")
	if fs.Exists("/a") {
		t.Error("Remove failed")
	}
	if _, _, err := fs.ReadFile(0, "/a"); err == nil {
		t.Error("read of removed file succeeded")
	}
}

func TestCostModelHelpers(t *testing.T) {
	c := Default()
	if c.CopyTime(0) != 0 {
		t.Error("zero-byte copy costs time")
	}
	oneGig := c.CopyTime(1 << 30)
	if oneGig < 10*time.Millisecond || oneGig > 1*time.Second {
		t.Errorf("1 GiB copy = %v, implausible", oneGig)
	}
	if c.PageMapTime(1) != c.PageMapCost {
		t.Error("sub-page mapping should cost one page")
	}
	if c.PageMapTime(8192) != 2*c.PageMapCost {
		t.Error("two-page mapping wrong")
	}
}
