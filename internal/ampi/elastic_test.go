package ampi_test

import (
	"errors"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

func elasticConfig(vps int) ampi.Config {
	return ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       vps,
		Privatize: core.KindPIEglobals,
		Checkpoint: &ampi.CheckpointPolicy{
			Target:   ampi.TargetFS,
			Dir:      "/scratch/elastic",
			Interval: 5 * sim.Time(time.Millisecond),
		},
	}
}

func TestScheduleReconfigureDrainsThroughCheckpoint(t *testing.T) {
	finals := make([]uint64, 4)
	prog := synth.Checkpointed(64, 2*sim.Time(time.Millisecond), finals)
	w, err := ampi.NewWorld(elasticConfig(4), prog)
	if err != nil {
		t.Fatal(err)
	}
	reqAt := 20 * sim.Time(time.Millisecond)
	if err := w.ScheduleReconfigure(reqAt); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	var rc *ampi.Reconfigure
	if !errors.As(err, &rc) {
		t.Fatalf("Run returned %v, want *Reconfigure", err)
	}
	if rc.Requested != reqAt {
		t.Errorf("Reconfigure.Requested = %v, want %v", rc.Requested, reqAt)
	}
	ck := w.LastCheckpoint()
	if ck == nil {
		t.Fatal("drain left no checkpoint")
	}
	if ck.Taken != rc.At {
		t.Errorf("drain stopped at %v but snapshot completed at %v", rc.At, ck.Taken)
	}
	if ck.Taken < reqAt {
		t.Errorf("drain snapshot at %v predates the request at %v", ck.Taken, reqAt)
	}
	// The ranks did not finish — the drain interrupted them.
	for vp, acc := range finals {
		if acc != 0 {
			t.Errorf("rank %d finished (acc %d) despite the drain", vp, acc)
		}
	}

	// Restarting from the drain snapshot completes the job with every
	// accumulator intact: no work was lost and none double-counted.
	finals2 := make([]uint64, 4)
	w2, err := ampi.NewWorldFromCheckpoint(elasticConfig(4), synth.Checkpointed(64, 2*sim.Time(time.Millisecond), finals2), ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	for vp, acc := range finals2 {
		if want := synth.CheckpointedAcc(64, vp); acc != want {
			t.Errorf("restarted rank %d acc %d, want %d", vp, acc, want)
		}
	}
}

func TestScheduleReconfigureForcesUndueCheckpoint(t *testing.T) {
	// With a huge policy interval no ordinary snapshot would ever be
	// due; the drain must force one anyway.
	finals := make([]uint64, 4)
	cfg := elasticConfig(4)
	cfg.Checkpoint.Interval = sim.Time(time.Hour)
	w, err := ampi.NewWorld(cfg, synth.Checkpointed(32, sim.Time(time.Millisecond), finals))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleReconfigure(10 * sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	var rc *ampi.Reconfigure
	if !errors.As(err, &rc) {
		t.Fatalf("Run returned %v, want *Reconfigure", err)
	}
	if w.LastCheckpoint() == nil {
		t.Fatal("forced drain took no snapshot")
	}
	if w.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want exactly the drain snapshot", w.Checkpoints)
	}
}

func TestScheduleReconfigureNeedsPolicy(t *testing.T) {
	cfg := elasticConfig(4)
	cfg.Checkpoint = nil
	w, err := ampi.NewWorld(cfg, synth.Checkpointed(4, sim.Time(time.Millisecond), make([]uint64, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleReconfigure(sim.Time(time.Millisecond)); err == nil {
		t.Fatal("ScheduleReconfigure accepted a world with no checkpoint policy")
	}
}

func TestDrainEmitsDrainSpan(t *testing.T) {
	rec := trace.NewRecorder(trace.AllKinds()...)
	finals := make([]uint64, 4)
	cfg := elasticConfig(4)
	cfg.Tracer = rec
	w, err := ampi.NewWorld(cfg, synth.Checkpointed(64, 2*sim.Time(time.Millisecond), finals))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleReconfigure(20 * sim.Time(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var rc *ampi.Reconfigure
	if err := w.Run(); !errors.As(err, &rc) {
		t.Fatalf("Run returned %v, want *Reconfigure", err)
	}
	drains := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindDrain {
			drains++
			if ev.Time+ev.Dur != rc.At {
				t.Errorf("drain span ends at %v, world stopped at %v", ev.Time+ev.Dur, rc.At)
			}
			if ev.Aux != int32(ampi.TargetFS) {
				t.Errorf("drain span target = %d, want fs", ev.Aux)
			}
		}
	}
	if drains != 1 {
		t.Errorf("%d drain spans, want 1", drains)
	}
}

// TestRaceWithNodeFailure pins the notice-too-short degradation: when
// the node dies before the next consistency point, the world fails
// with *NodeFailure, not *Reconfigure.
func TestReconfigureRaceWithNodeFailure(t *testing.T) {
	finals := make([]uint64, 4)
	w, err := ampi.NewWorld(elasticConfig(4), synth.Checkpointed(64, 2*sim.Time(time.Millisecond), finals))
	if err != nil {
		t.Fatal(err)
	}
	notice := 20 * sim.Time(time.Millisecond)
	if err := w.ScheduleReconfigure(notice); err != nil {
		t.Fatal(err)
	}
	// The node leaves almost immediately after the notice: no
	// consistency point fits in the window.
	if err := w.ScheduleNodeFailure(1, notice+sim.Time(time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	var nf *ampi.NodeFailure
	if !errors.As(err, &nf) {
		t.Fatalf("Run returned %v, want *NodeFailure (notice too short to drain)", err)
	}
}

func TestFlatExpandStorm(t *testing.T) {
	w, err := ampi.NewFlatWorld(ampi.FlatConfig{
		Machine: machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:     512,
		Image:   flatImage(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Allreduce(8); err != nil {
		t.Fatal(err)
	}
	before := w.Time()
	done, err := w.ExpandStorm(2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cluster.Epoch() != 1 {
		t.Errorf("cluster epoch = %d, want 1", w.Cluster.Epoch())
	}
	if got := len(w.Cluster.PEs()); got != 8 {
		t.Errorf("PE count after expand = %d, want 8", got)
	}
	if done <= before {
		t.Errorf("expand storm finished at %v, not after %v", done, before)
	}
	// Block placement over a doubled machine keeps only the first
	// block (ranks 0-63 stay on PE 0); everyone else storms over.
	if w.Migrations != 448 {
		t.Errorf("expand migrated %d ranks, want 448", w.Migrations)
	}
	// Collectives keep working over the widened machine.
	if _, err := w.Allreduce(8); err != nil {
		t.Fatal(err)
	}
}

func TestFlatExpandStormDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (sim.Time, int, uint64) {
		w, err := ampi.NewFlatWorld(ampi.FlatConfig{
			Machine:    machine.Config{Nodes: 4, ProcsPerNode: 1, PEsPerProc: 2},
			VPs:        1024,
			Image:      flatImage(),
			SimWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Allreduce(64); err != nil {
			t.Fatal(err)
		}
		if _, err := w.ExpandStorm(2); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Allreduce(64); err != nil {
			t.Fatal(err)
		}
		return w.Time(), w.Migrations, w.MigratedBytes
	}
	t1, m1, b1 := run(1)
	t8, m8, b8 := run(8)
	if t1 != t8 || m1 != m8 || b1 != b8 {
		t.Errorf("serial (%v, %d, %d) != parallel (%v, %d, %d)", t1, m1, b1, t8, m8, b8)
	}
}
