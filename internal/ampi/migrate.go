package ampi

import (
	"fmt"

	"provirt/internal/lb"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// MigrationRecord describes one completed rank migration.
type MigrationRecord struct {
	VP     int
	FromPE int
	ToPE   int
	// Bytes is the rank's full logical payload; DeltaBytes is what the
	// move actually transferred (dirty blocks only, when the rank had a
	// previous snapshot to be incremental against).
	Bytes      uint64
	DeltaBytes uint64
	Duration   sim.Time
}

// Migrate is the AMPI_Migrate collective: every rank must call it. The
// runtime takes the opportunity to run the configured load balancer and
// move ranks; ranks resume once any migrations affecting them complete.
func (r *Rank) Migrate() {
	w := r.world
	var stallStart sim.Time
	if w.tracer != nil {
		stallStart = r.thread.Now()
	}
	w.migrateWaiting = append(w.migrateWaiting, r)
	if len(w.migrateWaiting) == len(w.Ranks) {
		at := r.thread.Now()
		w.Cluster.Engine.At(at, func() { w.runBalancer() })
	}
	r.thread.Suspend()
	if w.tracer != nil {
		// The stall covers the collective's barrier semantics plus any
		// serialization/transfer/unpack time for ranks that moved.
		w.tracer.Emit(trace.Event{Time: stallStart, Dur: r.thread.Now() - stallStart,
			Kind: trace.KindWait, PE: int32(r.pe.ID), VP: int32(r.vp), Peer: -1,
			Aux: trace.WaitMigrate})
	}
}

// LastMigrations returns the records from the most recent balancing
// step.
func (w *World) LastMigrations() []MigrationRecord { return w.lastMigrations }

// runBalancer executes one load-balancing step while every rank is
// suspended in the Migrate collective (so no rank state is mutating and
// no application messages are unmatched by construction of the callers).
func (w *World) runBalancer() {
	// Synchronization point: no rank resumes before the slowest PE
	// reached the collective.
	sync := w.Cluster.Engine.Now()
	for _, s := range w.scheds {
		if s.Now() > sync {
			sync = s.Now()
		}
	}
	waiting := w.migrateWaiting
	w.migrateWaiting = nil
	w.lastMigrations = nil

	assign := make([]int, len(waiting))
	loads := make([]lb.RankLoad, len(waiting))
	for i, r := range waiting {
		loads[i] = lb.RankLoad{
			VP:         r.vp,
			PE:         r.PE().ID,
			Load:       r.thread.Load,
			Migratable: r.ctx.Migratable,
		}
		assign[i] = loads[i].PE
	}
	shouldBalance := w.Cfg.Balancer != nil
	if shouldBalance && w.Cfg.Trigger != nil && !w.Cfg.Trigger.ShouldBalance(loads, len(w.scheds)) {
		shouldBalance = false
		w.SkippedBalances++
	}
	if shouldBalance {
		assign = w.Cfg.Balancer.Rebalance(loads, len(w.scheds))
		if err := lb.Validate(loads, len(w.scheds), assign); err != nil {
			w.fail(fmt.Errorf("ampi: balancer %s produced an invalid mapping: %w", w.Cfg.Balancer.Name(), err))
			return
		}
	}

	for i, r := range waiting {
		r.thread.ResetLoad()
		from, to := loads[i].PE, assign[i]
		if from == to {
			w.wakeAt(r, sync)
			continue
		}
		if err := w.migrateRank(r, from, to, sync); err != nil {
			w.fail(err)
			return
		}
	}
}

// wakeAt resumes a suspended rank at virtual time t on its current
// scheduler.
func (w *World) wakeAt(r *Rank, t sim.Time) {
	w.Cluster.Engine.At(t, func() { r.thread.Wake() })
}

// migrateRank serializes a rank, charges the transfer, and lands it on
// the destination PE.
func (w *World) migrateRank(r *Rank, from, to int, start sim.Time) error {
	payload, err := r.ctx.Serialize()
	if err != nil {
		return fmt.Errorf("ampi: balancer selected an unmigratable rank: %w", err)
	}
	bytes := payload.Bytes()
	// The transport is incremental: only bytes that changed since the
	// rank's previous serialization cross the wire. A first-ever
	// migration has no previous snapshot, so wire == bytes and the
	// modeled cost matches the full-copy runtime exactly.
	wire := payload.DeltaBytes()
	cost := w.Cluster.Cost
	srcPE, dstPE := w.Cluster.PE(from), w.Cluster.PE(to)
	// Pack on the source, fly, unpack on the destination.
	depart := start + cost.CopyTime(wire)
	arrive := depart + w.Cluster.TransferTimeAt(depart, srcPE, dstPE, wire) +
		cost.CopyTime(wire) + cost.MigrationOverhead

	src := w.scheds[from]
	dst := w.scheds[to]
	src.Remove(r.thread)
	r.pe = dstPE // messages sent mid-flight route to the destination
	w.Cluster.Engine.At(arrive, func() {
		// The payload is this move's private copy and the source heap is
		// gone; consume it zero-copy.
		if err := r.ctx.RestoreIntoConsume(payload, w.sharedInstanceOf(dstPE.Proc)); err != nil {
			w.fail(fmt.Errorf("ampi: restoring rank %d on PE %d: %w", r.vp, to, err))
			return
		}
		dst.AdoptBlocked(r.thread)
		w.Migrations++
		w.MigratedBytes += bytes
		w.MigratedDeltaBytes += wire
		w.lastMigrations = append(w.lastMigrations, MigrationRecord{
			VP: r.vp, FromPE: from, ToPE: to, Bytes: bytes, DeltaBytes: wire,
			Duration: arrive - start,
		})
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Time: start, Dur: arrive - start, Kind: trace.KindMigration,
				PE: int32(from), VP: int32(r.vp), Peer: int32(to), Bytes: bytes})
		}
		r.thread.Wake()
	})
	return nil
}
