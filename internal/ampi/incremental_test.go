package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
)

// TestMigrationMovesOnlyDirtyBytes: a rank migrated every load-balance
// round pays the full payload once; later rounds transfer only the
// blocks written since the previous serialization, while the logical
// payload size stays constant.
func TestMigrationMovesOnlyDirtyBytes(t *testing.T) {
	var w *ampi.World
	var records []ampi.MigrationRecord
	const rounds = 4
	prog := &ampi.Program{
		Image: migrationImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			if _, err := ctx.Heap.Alloc(256<<10, "cold-data"); err != nil {
				panic(err)
			}
			state := ctx.Var("state")
			for i := 0; i < rounds; i++ {
				state.Store(uint64(i + 1))
				r.Migrate()
				records = append(records, w.LastMigrations()...)
			}
		},
	}
	var err error
	w, err = ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindManual,
		Balancer:  lb.RotateLB{},
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(records) != rounds {
		t.Fatalf("recorded %d migrations, want %d", len(records), rounds)
	}
	first := records[0]
	if first.DeltaBytes != first.Bytes {
		t.Fatalf("first migration delta %d, want full payload %d", first.DeltaBytes, first.Bytes)
	}
	for i, rec := range records[1:] {
		if rec.Bytes != first.Bytes {
			t.Errorf("round %d logical payload %d, want %d", i+1, rec.Bytes, first.Bytes)
		}
		if rec.DeltaBytes >= rec.Bytes/2 {
			t.Errorf("round %d transferred %d of %d bytes: steady-state migration is not incremental",
				i+1, rec.DeltaBytes, rec.Bytes)
		}
	}
	if w.MigratedDeltaBytes >= w.MigratedBytes {
		t.Fatalf("world totals: delta %d >= full %d", w.MigratedDeltaBytes, w.MigratedBytes)
	}
}

// TestCheckpointWritesOnlyDirtyBytes: the first checkpoint writes the
// whole payload to the filesystem; the next one writes only what
// changed, while reporting the same logical snapshot size.
func TestCheckpointWritesOnlyDirtyBytes(t *testing.T) {
	var w *ampi.World
	var cks []*ampi.Checkpoint
	prog := &ampi.Program{
		Image: migrationImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			if _, err := ctx.Heap.Alloc(256<<10, "cold-data"); err != nil {
				panic(err)
			}
			state := ctx.Var("state")
			for i := 0; i < 2; i++ {
				state.Store(uint64(i + 1))
				r.Checkpoint("/ckpt")
				cks = append(cks, w.LastCheckpoint())
			}
		},
	}
	var err error
	w, err = ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindManual,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 {
		t.Fatalf("took %d checkpoints, want 2", len(cks))
	}
	if cks[0].DeltaBytes != cks[0].Bytes {
		t.Fatalf("first checkpoint wrote %d, want full %d", cks[0].DeltaBytes, cks[0].Bytes)
	}
	if cks[1].Bytes != cks[0].Bytes {
		t.Errorf("second checkpoint logical size %d, want %d", cks[1].Bytes, cks[0].Bytes)
	}
	if cks[1].DeltaBytes >= cks[1].Bytes/2 {
		t.Fatalf("second checkpoint wrote %d of %d bytes: not incremental", cks[1].DeltaBytes, cks[1].Bytes)
	}
}

// TestCheckpointImmutableAfterMigration guards the sharpest aliasing
// hazard in the incremental path: a checkpoint taken after a migration
// (whose restore adopted snapshot arrays zero-copy) must stay intact
// while the rank keeps writing and even migrates again. Restarting from
// it must see the checkpoint-time values, not the later ones.
func TestCheckpointImmutableAfterMigration(t *testing.T) {
	var blkAddr uint64
	var restoredState, restoredWord uint64
	prog := &ampi.Program{
		Image: migrationImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			state := ctx.Var("state")
			if v := state.Load(); v != 0 {
				// Restart path: record what the checkpoint preserved.
				restoredState = v
				restoredWord = ctx.Heap.Lookup(blkAddr).Words[0]
				return
			}
			blk, err := ctx.Heap.Alloc(4096, "data")
			if err != nil {
				panic(err)
			}
			blkAddr = blk.Addr
			blk.Words[0] = 77
			blk.Touch()
			r.Migrate() // restore adopts the payload arrays zero-copy
			state.Store(5)
			r.Checkpoint("/ckpt")
			// Keep mutating after the checkpoint, then migrate again: none
			// of this may leak into the kept snapshot.
			state.Store(9)
			nb := ctx.Heap.Lookup(blkAddr)
			nb.Words[0] = 88
			nb.Touch()
			r.Migrate()
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindPIEglobals,
		Balancer:  lb.RotateLB{},
	}
	w := runProgram(t, cfg, prog)
	if w.Migrations != 2 {
		t.Fatalf("completed %d migrations, want 2", w.Migrations)
	}
	ck := w.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint taken")
	}
	w2, err := ampi.NewWorldFromCheckpoint(cfg, prog, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	if restoredState != 5 {
		t.Errorf("restarted state = %d, want the checkpoint-time 5", restoredState)
	}
	if restoredWord != 77 {
		t.Errorf("restarted heap word = %d, want the checkpoint-time 77", restoredWord)
	}
}
