package ampi_test

import (
	"sort"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

// smallConfig is a 1-node, 1-process, 1-PE machine with v virtual
// ranks.
func smallConfig(v int, kind core.Kind) ampi.Config {
	return ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       v,
		Privatize: kind,
	}
}

func runHello(t *testing.T, cfg ampi.Config) []synth.HelloResult {
	t.Helper()
	var results []synth.HelloResult
	prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].VP < results[j].VP })
	return results
}

// TestFig3UnsafeOutput reproduces Fig. 3: without privatization, two
// virtual ranks sharing a process both print the last writer's rank.
func TestFig3UnsafeOutput(t *testing.T) {
	results := runHello(t, smallConfig(2, core.KindNone))
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	// Both ranks print the same (clobbered) value.
	if results[0].Printed != results[1].Printed {
		t.Fatalf("unprivatized ranks printed different values %d and %d; expected the shared global to be clobbered",
			results[0].Printed, results[1].Printed)
	}
	// And that value is the rank that wrote last (rank 1 runs second).
	if results[0].Printed != 1 {
		t.Errorf("shared global holds %d, want last writer 1", results[0].Printed)
	}
}

// TestHelloPrivatized verifies every method that privatizes tagged
// globals makes each rank print its own number.
func TestHelloPrivatized(t *testing.T) {
	kinds := []core.Kind{
		core.KindManual, core.KindTLSglobals, core.KindPIPglobals,
		core.KindFSglobals, core.KindPIEglobals,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			results := runHello(t, smallConfig(4, kind))
			if len(results) != 4 {
				t.Fatalf("got %d results, want 4", len(results))
			}
			for _, hr := range results {
				if hr.Printed != uint64(hr.VP) {
					t.Errorf("rank %d printed %d, want %d", hr.VP, hr.Printed, hr.VP)
				}
			}
		})
	}
}

// TestHelloMultiProcess runs privatized hello across processes and
// nodes.
func TestHelloMultiProcess(t *testing.T) {
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 2},
		VPs:       16,
		Privatize: core.KindPIEglobals,
	}
	results := runHello(t, cfg)
	if len(results) != 16 {
		t.Fatalf("got %d results, want 16", len(results))
	}
	for _, hr := range results {
		if hr.Printed != uint64(hr.VP) {
			t.Errorf("rank %d printed %d", hr.VP, hr.Printed)
		}
	}
}

// TestSwapglobalsStaticGap verifies Swapglobals privatizes globals but
// leaves statics shared (its Table 1 gap). Requires the old/patched
// linker and non-SMP mode.
func TestSwapglobalsStaticGap(t *testing.T) {
	cfg := smallConfig(2, core.KindSwapglobals)
	tc, osEnv := core.Bridges2Env()
	osEnv.OldOrPatchedLinker = true
	cfg.Toolchain, cfg.OS = tc, osEnv

	var results []synth.HelloResult
	prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, hr := range results {
		if hr.Printed != uint64(hr.VP) {
			t.Errorf("rank %d printed %d; swapglobals should privatize the global", hr.VP, hr.Printed)
		}
	}
	// The static counter was shared: both increments landed in one cell.
	shared := w.Ranks[0].Ctx().Var("calls")
	if got := shared.Load(); got != 2 {
		t.Errorf("shared static `calls` = %d, want 2 (both ranks incremented one cell)", got)
	}
	if w.Ranks[0].Ctx().Var("calls").Privatized() {
		t.Error("static variable reports privatized under swapglobals")
	}
}

// TestSwapglobalsRefusesModernLinker reproduces the paper's §4
// experience: Swapglobals could not run on Bridges-2 (modern ld).
func TestSwapglobalsRefusesModernLinker(t *testing.T) {
	cfg := smallConfig(2, core.KindSwapglobals)
	_, err := ampi.NewWorld(cfg, synth.Hello(func(synth.HelloResult) {}))
	if err == nil {
		t.Fatal("expected swapglobals to refuse a modern unpatched linker")
	}
}

// TestPIPglobalsNamespaceLimit verifies stock glibc caps PIPglobals at
// 12 ranks per process and the patched glibc lifts the cap.
func TestPIPglobalsNamespaceLimit(t *testing.T) {
	cfg := smallConfig(13, core.KindPIPglobals)
	_, err := ampi.NewWorld(cfg, synth.Hello(func(synth.HelloResult) {}))
	if err == nil {
		t.Fatal("expected 13 ranks/process to exhaust glibc namespaces")
	}

	tc, osEnv := core.Bridges2Env()
	osEnv.PatchedGlibc = true
	cfg.Toolchain, cfg.OS = tc, osEnv
	var results []synth.HelloResult
	prog := synth.Hello(func(hr synth.HelloResult) { results = append(results, hr) })
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		t.Fatalf("NewWorld with patched glibc: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 13 {
		t.Fatalf("got %d results, want 13", len(results))
	}
}

// TestTLSglobalsUntaggedGap verifies an untagged mutable global stays
// shared under TLSglobals ("Mediocre" automation).
func TestTLSglobalsUntaggedGap(t *testing.T) {
	img := elf.NewBuilder("forgetful").
		TaggedGlobal("tagged", 0).
		Global("forgotten", 0). // the programmer missed this one
		Func("main", 1024).
		MustBuild()
	var vals []uint64
	prog := &ampi.Program{
		Image: img,
		Main: func(r *ampi.Rank) {
			r.Ctx().Store("forgotten", uint64(r.Rank()+100))
			r.Barrier()
			vals = append(vals, r.Ctx().Load("forgotten"))
		},
	}
	w, err := ampi.NewWorld(smallConfig(2, core.KindTLSglobals), prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vals[0] != vals[1] {
		t.Errorf("untagged global values diverged %v; want shared (clobbered)", vals)
	}
}
