package ampi_test

import (
	"bytes"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

func flatImage() *elf.Image {
	return elf.NewBuilder("flatapp").
		TaggedGlobal("iter", 0).
		Const("table_len", 64).
		Func("main", 4096).
		CodeBulk(1 << 20).
		DataBulk(64 << 10).
		RODataBulk(48 << 10).
		MustBuild()
}

func laptop() machine.Config {
	return machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 8}
}

func newFlat(t *testing.T, vps int, tr trace.Tracer) *ampi.FlatWorld {
	t.Helper()
	w, err := ampi.NewFlatWorld(ampi.FlatConfig{
		Machine: laptop(),
		VPs:     vps,
		Image:   flatImage(),
		Tracer:  tr,
	})
	if err != nil {
		t.Fatalf("NewFlatWorld: %v", err)
	}
	return w
}

// TestFlatWorldAllreduce checks the flat path completes, advances the
// clock past setup, and spends exactly one engine event per tree edge
// per wave.
func TestFlatWorldAllreduce(t *testing.T) {
	const vps = 4096
	w := newFlat(t, vps, nil)
	if w.PerRankBytes == 0 {
		t.Fatal("per-rank footprint not measured")
	}
	if w.SharedBytesPerRank == 0 {
		t.Fatal("shared-mapping bytes not measured (code sharing + RO COW should be on)")
	}
	done, err := w.Allreduce(8)
	if err != nil {
		t.Fatal(err)
	}
	if done <= w.SetupDone {
		t.Fatalf("allreduce finished at %v, not after setup %v", done, w.SetupDone)
	}
	if got, want := w.EventsFired(), uint64(2*(vps-1)); got != want {
		t.Fatalf("allreduce fired %d events, want %d (one per tree edge per wave)", got, want)
	}
}

// TestFlatWorldDeterministic pins the flat model's virtual-time results:
// identical configs give identical times, traced or not.
func TestFlatWorldDeterministic(t *testing.T) {
	run := func(tr trace.Tracer) (sim.Time, sim.Time) {
		w := newFlat(t, 2048, tr)
		ar, err := w.Allreduce(8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := w.MigrationStorm(4)
		if err != nil {
			t.Fatal(err)
		}
		return ar, st
	}
	ar1, st1 := run(nil)
	rec := trace.NewRecorder(trace.AllKinds()...)
	ar2, st2 := run(rec)
	if ar1 != ar2 || st1 != st2 {
		t.Fatalf("traced run diverged: allreduce %v vs %v, storm %v vs %v", ar1, ar2, st1, st2)
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	ar3, st3 := run(nil)
	if ar1 != ar3 || st1 != st3 {
		t.Fatalf("repeat run diverged: allreduce %v vs %v, storm %v vs %v", ar1, ar3, st1, st3)
	}
}

// TestFlatWorldMillion is the tentpole acceptance check: a
// 1,000,000-VP allreduce world builds and completes on one machine,
// followed by a migration storm over an eighth of the ranks.
func TestFlatWorldMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-rank world in -short mode")
	}
	const vps = 1_000_000
	w := newFlat(t, vps, nil)
	if _, err := w.Allreduce(8); err != nil {
		t.Fatal(err)
	}
	if got, want := w.EventsFired(), uint64(2*(vps-1)); got != want {
		t.Fatalf("allreduce fired %d events, want %d", got, want)
	}
	if _, err := w.MigrationStorm(8); err != nil {
		t.Fatal(err)
	}
	if w.Migrations == 0 || w.MigratedBytes == 0 {
		t.Fatalf("storm moved nothing: %d migrations, %d bytes", w.Migrations, w.MigratedBytes)
	}
}

// flatRun captures everything a flat run produces that must be
// byte-identical across engine implementations and worker counts.
type flatRun struct {
	allreduce, storm sim.Time
	events           uint64
	migrations       int
	migratedBytes    uint64
	traceJSONL       string
}

// runFlatAt runs allreduce + storm on the given machine shape with the
// given SimWorkers, recording every trace kind (engine dispatch
// included) and exporting it to canonical JSONL bytes.
func runFlatAt(t *testing.T, mc machine.Config, vps, workers int) flatRun {
	t.Helper()
	rec := trace.NewRecorder(trace.AllKinds()...)
	w, err := ampi.NewFlatWorld(ampi.FlatConfig{
		Machine:    mc,
		VPs:        vps,
		Image:      flatImage(),
		Tracer:     rec,
		SimWorkers: workers,
	})
	if err != nil {
		t.Fatalf("NewFlatWorld(workers=%d): %v", workers, err)
	}
	ar, err := w.Allreduce(8)
	if err != nil {
		t.Fatalf("Allreduce(workers=%d): %v", workers, err)
	}
	st, err := w.MigrationStorm(4)
	if err != nil {
		t.Fatalf("MigrationStorm(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	return flatRun{
		allreduce:     ar,
		storm:         st,
		events:        w.EventsFired(),
		migrations:    w.Migrations,
		migratedBytes: w.MigratedBytes,
		traceJSONL:    buf.String(),
	}
}

// TestFlatWorldParallelByteIdentical is the PDES determinism gate: the
// sharded ParallelEngine must reproduce the serial engine's results AND
// trace bytes exactly, at any worker count, on both a one-node shape
// (per-PE domains, shared-memory lookahead) and a multi-node shape
// (per-node domains, inter-node lookahead).
func TestFlatWorldParallelByteIdentical(t *testing.T) {
	shapes := []struct {
		name string
		mc   machine.Config
	}{
		{"laptop-1x1x8", laptop()},
		{"cluster-4x2x2", machine.Config{Nodes: 4, ProcsPerNode: 2, PEsPerProc: 2}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			serial := runFlatAt(t, sh.mc, 2048, 0)
			if serial.traceJSONL == "" {
				t.Fatal("serial run produced no trace bytes")
			}
			for _, workers := range []int{1, 2, 8} {
				par := runFlatAt(t, sh.mc, 2048, workers)
				if par.allreduce != serial.allreduce || par.storm != serial.storm {
					t.Fatalf("workers=%d: times diverged: allreduce %v vs %v, storm %v vs %v",
						workers, par.allreduce, serial.allreduce, par.storm, serial.storm)
				}
				if par.events != serial.events || par.migrations != serial.migrations ||
					par.migratedBytes != serial.migratedBytes {
					t.Fatalf("workers=%d: counters diverged: events %d vs %d, migrations %d vs %d, bytes %d vs %d",
						workers, par.events, serial.events, par.migrations, serial.migrations,
						par.migratedBytes, serial.migratedBytes)
				}
				if par.traceJSONL != serial.traceJSONL {
					t.Fatalf("workers=%d: trace bytes diverged (serial %d bytes, parallel %d bytes)",
						workers, len(serial.traceJSONL), len(par.traceJSONL))
				}
			}
		})
	}
}
