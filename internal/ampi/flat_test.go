package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

func flatImage() *elf.Image {
	return elf.NewBuilder("flatapp").
		TaggedGlobal("iter", 0).
		Const("table_len", 64).
		Func("main", 4096).
		CodeBulk(1 << 20).
		DataBulk(64 << 10).
		RODataBulk(48 << 10).
		MustBuild()
}

func laptop() machine.Config {
	return machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 8}
}

func newFlat(t *testing.T, vps int, tr trace.Tracer) *ampi.FlatWorld {
	t.Helper()
	w, err := ampi.NewFlatWorld(ampi.FlatConfig{
		Machine: laptop(),
		VPs:     vps,
		Image:   flatImage(),
		Tracer:  tr,
	})
	if err != nil {
		t.Fatalf("NewFlatWorld: %v", err)
	}
	return w
}

// TestFlatWorldAllreduce checks the flat path completes, advances the
// clock past setup, and spends exactly one engine event per tree edge
// per wave.
func TestFlatWorldAllreduce(t *testing.T) {
	const vps = 4096
	w := newFlat(t, vps, nil)
	if w.PerRankBytes == 0 {
		t.Fatal("per-rank footprint not measured")
	}
	if w.SharedBytesPerRank == 0 {
		t.Fatal("shared-mapping bytes not measured (code sharing + RO COW should be on)")
	}
	done, err := w.Allreduce(8)
	if err != nil {
		t.Fatal(err)
	}
	if done <= w.SetupDone {
		t.Fatalf("allreduce finished at %v, not after setup %v", done, w.SetupDone)
	}
	if got, want := w.EventsFired(), uint64(2*(vps-1)); got != want {
		t.Fatalf("allreduce fired %d events, want %d (one per tree edge per wave)", got, want)
	}
}

// TestFlatWorldDeterministic pins the flat model's virtual-time results:
// identical configs give identical times, traced or not.
func TestFlatWorldDeterministic(t *testing.T) {
	run := func(tr trace.Tracer) (sim.Time, sim.Time) {
		w := newFlat(t, 2048, tr)
		ar, err := w.Allreduce(8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := w.MigrationStorm(4)
		if err != nil {
			t.Fatal(err)
		}
		return ar, st
	}
	ar1, st1 := run(nil)
	rec := trace.NewRecorder(trace.AllKinds()...)
	ar2, st2 := run(rec)
	if ar1 != ar2 || st1 != st2 {
		t.Fatalf("traced run diverged: allreduce %v vs %v, storm %v vs %v", ar1, ar2, st1, st2)
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	ar3, st3 := run(nil)
	if ar1 != ar3 || st1 != st3 {
		t.Fatalf("repeat run diverged: allreduce %v vs %v, storm %v vs %v", ar1, ar3, st1, st3)
	}
}

// TestFlatWorldMillion is the tentpole acceptance check: a
// 1,000,000-VP allreduce world builds and completes on one machine,
// followed by a migration storm over an eighth of the ranks.
func TestFlatWorldMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-rank world in -short mode")
	}
	const vps = 1_000_000
	w := newFlat(t, vps, nil)
	if _, err := w.Allreduce(8); err != nil {
		t.Fatal(err)
	}
	if got, want := w.EventsFired(), uint64(2*(vps-1)); got != want {
		t.Fatalf("allreduce fired %d events, want %d", got, want)
	}
	if _, err := w.MigrationStorm(8); err != nil {
		t.Fatal(err)
	}
	if w.Migrations == 0 || w.MigratedBytes == 0 {
		t.Fatalf("storm moved nothing: %d migrations, %d bytes", w.Migrations, w.MigratedBytes)
	}
}
