package ampi

// Per-world scratch pools. A collective moves its payload hop by hop
// through the reduction/broadcast tree, and every hop used to copy the
// slice with append([]float64(nil), ...) — one allocation per hop per
// rank, dominating the allocation profile of Allreduce-heavy runs.
// The world instead keeps a free list of scratch buffers: hop copies
// are taken from the pool and returned as soon as the hop hands the
// data on. Buffers that escape to user code (a Recv payload, a root's
// reduction result) are simply never returned — the pool only ever
// holds slices the runtime exclusively owns. The same discipline
// recycles message envelopes.
//
// The pools are per-world and the whole world runs on one engine
// thread, so no locking is needed; independent worlds running on
// separate goroutines (the sweep runner) never share a pool.

// getBuf returns a zero-length buffer with capacity at least n.
func (w *World) getBuf(n int) []float64 {
	if last := len(w.bufFree) - 1; last >= 0 {
		b := w.bufFree[last]
		w.bufFree[last] = nil
		w.bufFree = w.bufFree[:last]
		if cap(b) >= n {
			return b[:0]
		}
		// Too small for this request; let it go rather than hold
		// undersized buffers forever.
	}
	return make([]float64, 0, n)
}

// putBuf returns a buffer to the pool. The caller must not touch b
// afterwards.
func (w *World) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	w.bufFree = append(w.bufFree, b[:0])
}

// copyBuf is the pooled equivalent of append([]float64(nil), src...):
// it preserves nil-ness for empty inputs (barrier payloads stay nil).
func (w *World) copyBuf(src []float64) []float64 {
	if len(src) == 0 {
		return nil
	}
	return append(w.getBuf(len(src)), src...)
}

// releaseAfterOp returns a reduction scratch buffer to the pool when
// the operator cannot have retained it. Built-in operators are
// elementwise and never alias their input; user-defined functions make
// no such promise, so their buffers are left to the garbage collector.
func (w *World) releaseAfterOp(op *Op, b []float64) {
	if op.builtin {
		w.putBuf(b)
	}
}

// getMsg returns a zeroed message envelope.
func (w *World) getMsg() *message {
	if last := len(w.msgFree) - 1; last >= 0 {
		m := w.msgFree[last]
		w.msgFree[last] = nil
		w.msgFree = w.msgFree[:last]
		return m
	}
	return &message{}
}

// putMsg recycles a message envelope once matching handed its payload
// to the request.
func (w *World) putMsg(m *message) {
	*m = message{}
	w.msgFree = append(w.msgFree, m)
}
