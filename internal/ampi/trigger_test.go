package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/workloads/synth"
)

// TestImbalanceTriggerSkipsBalancedLoad: with perfectly balanced
// ranks, the adaptive trigger skips every balancing step; with skewed
// ranks it fires.
func TestImbalanceTriggerSkipsBalancedLoad(t *testing.T) {
	run := func(loads []sim.Time) *ampi.World {
		prog := &ampi.Program{
			Image: synth.EmptyImage(),
			Main: func(r *ampi.Rank) {
				for round := 0; round < 3; round++ {
					r.Compute(loads[r.Rank()%len(loads)])
					r.Migrate()
				}
			},
		}
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
			VPs:       4,
			Privatize: core.KindPIEglobals,
			Balancer:  lb.GreedyLB{},
			Trigger:   lb.ImbalanceTrigger{Threshold: 1.2},
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return w
	}

	balanced := run([]sim.Time{1e6, 1e6, 1e6, 1e6})
	if balanced.Migrations != 0 {
		t.Errorf("balanced run migrated %d times", balanced.Migrations)
	}
	if balanced.SkippedBalances != 3 {
		t.Errorf("balanced run skipped %d of 3 balance points", balanced.SkippedBalances)
	}

	// Skew across PEs: ranks 0-1 (PE 0) heavy, ranks 2-3 (PE 1) light.
	skewed := run([]sim.Time{10e6, 10e6, 1e6, 1e6})
	if skewed.Migrations == 0 {
		t.Error("skewed run never migrated despite trigger")
	}
}

func TestStatsReport(t *testing.T) {
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			r.Compute(sim.Time(r.Rank()+1) * 1e6)
			r.Barrier()
		},
	}
	w := runProgram(t, mediumConfig(4), prog)
	s := w.Stats()
	if s.Execution <= 0 || s.Switches == 0 {
		t.Fatalf("degenerate stats %+v", s)
	}
	if len(s.PEs) != 4 {
		t.Fatalf("%d PE rows", len(s.PEs))
	}
	var busy sim.Time
	for _, pe := range s.PEs {
		busy += pe.Busy
	}
	if busy < 10e6 { // 1+2+3+4 ms of compute charged
		t.Errorf("total busy %v, want >= 10ms", busy)
	}
	if s.LoadImbalance < 1 {
		t.Errorf("imbalance %v < 1", s.LoadImbalance)
	}
	if s.Table().NumRows() != 4 {
		t.Error("stats table row count")
	}
}

// API misuse must fail loudly inside the rank body and surface as a
// run error rather than hanging.
func TestAPIMisusePanicsSurface(t *testing.T) {
	cases := map[string]func(r *ampi.Rank){
		"negative tag":   func(r *ampi.Rank) { r.Send(0, -5, nil, 0) },
		"bad peer":       func(r *ampi.Rank) { r.Send(99, 1, nil, 0) },
		"wildcard send":  func(r *ampi.Rank) { r.Send(0, ampi.AnyTag, nil, 0) },
		"foreign wait":   func(r *ampi.Rank) { r.Wait(&ampi.Request{}) },
		"scatter shape":  func(r *ampi.Rank) { r.Scatter(r.Rank(), [][]float64{{1}, {2}, {3}}) },
		"alltoall shape": func(r *ampi.Rank) { r.Alltoall([][]float64{{1}}) },
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			prog := &ampi.Program{Image: synth.EmptyImage(), Main: body}
			w, err := ampi.NewWorld(smallConfig(2, core.KindNone), prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(); err == nil {
				t.Fatal("misuse did not surface as an error")
			}
		})
	}
}
