package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/trace"
	"provirt/internal/workloads/synth"
)

// The tracing acceptance criterion: a disabled tracer must be free.
// Every hook site guards on a nil Tracer, so the untraced hot path pays
// one pointer comparison per hook. Compare these two benchmarks — the
// untraced one must stay within noise of BenchmarkAmpiPingPong, and the
// traced one quantifies the enabled cost (one struct append per event).

func pingPongWorld(b *testing.B, tracer trace.Tracer) *ampi.World {
	b.Helper()
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			payload := []float64{1, 2, 3, 4}
			if r.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					r.Send(1, 7, payload, 0)
					r.Recv(1, 8)
				}
			} else {
				for i := 0; i < b.N; i++ {
					r.Recv(0, 7)
					r.Send(0, 8, payload, 0)
				}
			}
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIEglobals,
		Tracer:    tracer,
	}, prog)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkAmpiPingPongUntraced is the nil-tracer baseline over the
// same hook-instrumented code paths.
func BenchmarkAmpiPingPongUntraced(b *testing.B) {
	w := pingPongWorld(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAmpiPingPongTraced records the default event kinds while the
// benchmark runs.
func BenchmarkAmpiPingPongTraced(b *testing.B) {
	w := pingPongWorld(b, trace.NewRecorder())
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
}
