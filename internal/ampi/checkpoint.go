package ampi

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/sim"
)

// Checkpoint is a consistent snapshot of every rank's migratable state,
// written to the shared filesystem. Because rank state serializes
// exactly as it does for migration, any privatization method that
// supports migration supports checkpoint/restart fault tolerance — and
// any method that cannot (PIPglobals, FSglobals) fails here with the
// same reason (§3.1, §3.2).
type Checkpoint struct {
	Dir      string
	Payloads []*core.MigrationPayload
	// Bytes is the total logical snapshot size; DeltaBytes is what this
	// checkpoint actually wrote to the filesystem (dirty blocks only,
	// once each rank has a previous snapshot to be incremental
	// against). A job's first checkpoint writes everything, so there
	// DeltaBytes == Bytes.
	Bytes      uint64
	DeltaBytes uint64
	// Taken is the virtual time the snapshot completed (slowest rank).
	Taken sim.Time
	// VPs records the rank count for restart validation.
	VPs int
}

// Checkpoint is a collective: every rank must call it. The runtime
// serializes all rank state and writes one file per rank to the shared
// filesystem; ranks resume once their file is durable. The snapshot is
// available afterwards via World.LastCheckpoint.
func (r *Rank) Checkpoint(dir string) {
	w := r.world
	w.ckptWaiting = append(w.ckptWaiting, r)
	if len(w.ckptWaiting) == len(w.Ranks) {
		at := r.thread.Now()
		w.Cluster.Engine.At(at, func() { w.runCheckpoint(dir) })
	}
	r.thread.Suspend()
}

// LastCheckpoint returns the most recent snapshot, or nil.
func (w *World) LastCheckpoint() *Checkpoint { return w.lastCheckpoint }

func (w *World) runCheckpoint(dir string) {
	sync := w.Cluster.Engine.Now()
	for _, s := range w.scheds {
		if s.Now() > sync {
			sync = s.Now()
		}
	}
	waiting := w.ckptWaiting
	w.ckptWaiting = nil

	ck := &Checkpoint{Dir: dir, VPs: len(w.Ranks)}
	for _, r := range waiting {
		payload, err := r.ctx.Serialize()
		if err != nil {
			w.fail(fmt.Errorf("ampi: checkpoint/restart is unavailable: %w", err))
			return
		}
		ck.Payloads = append(ck.Payloads, payload)
		ck.Bytes += payload.Bytes()
		// Writes contend on the shared filesystem and are incremental:
		// each rank pays for the bytes that changed since its previous
		// snapshot and resumes when its file is durable.
		delta := payload.DeltaBytes()
		ck.DeltaBytes += delta
		done := w.Cluster.FS.WriteFile(sync, checkpointPath(dir, r.vp), delta)
		if done > ck.Taken {
			ck.Taken = done
		}
		w.wakeAt(r, done)
	}
	w.lastCheckpoint = ck
}

func checkpointPath(dir string, vp int) string {
	return fmt.Sprintf("%s/rank-%d.ckpt", dir, vp)
}

// NewWorldFromCheckpoint builds a world whose ranks restart from a
// previously taken checkpoint: after privatization setup, each rank's
// snapshot is read back from the shared filesystem and restored into
// its context before the rank's main function runs. The machine shape
// may differ from the original job's (restart after a node failure, or
// shrink/expand), since Isomalloc state is placement-independent.
//
// Go cannot resume a goroutine mid-function, so — like a hot-start in
// a production code — the program's main runs from the top and is
// expected to consult its (restored) privatized state to skip
// completed work.
func NewWorldFromCheckpoint(cfg Config, prog *Program, ck *Checkpoint) (*World, error) {
	if ck == nil {
		return nil, fmt.Errorf("ampi: nil checkpoint")
	}
	if cfg.VPs == 0 {
		cfg.VPs = ck.VPs
	}
	if cfg.VPs != ck.VPs {
		return nil, fmt.Errorf("ampi: checkpoint has %d ranks, config wants %d", ck.VPs, cfg.VPs)
	}
	cfg.restart = ck
	return NewWorld(cfg, prog)
}

// restoreFromCheckpoint wires restart into world construction: instead
// of adopting rank threads directly at setup completion, each rank's
// snapshot is read from the filesystem (contended) and restored, and
// the thread starts only once its state is back.
func (w *World) restoreFromCheckpoint(ck *Checkpoint, vpPE []int) error {
	byVP := make(map[int]*core.MigrationPayload, len(ck.Payloads))
	for _, p := range ck.Payloads {
		byVP[p.VP] = p
	}
	for vp := range w.Ranks {
		if byVP[vp] == nil {
			return fmt.Errorf("ampi: checkpoint missing rank %d", vp)
		}
	}
	// The shared filesystem persists across jobs: make the previous
	// job's checkpoint files visible to this cluster.
	for _, p := range ck.Payloads {
		w.Cluster.FS.Populate(checkpointPath(ck.Dir, p.VP), p.Bytes())
	}
	engine := w.Cluster.Engine
	engine.At(w.SetupDone, func() {
		for vp, r := range w.Ranks {
			r := r
			payload := byVP[vp]
			pe := w.scheds[vpPE[vp]]
			readDone, _, err := w.Cluster.FS.ReadFile(w.SetupDone, checkpointPath(ck.Dir, vp))
			if err != nil {
				w.fail(fmt.Errorf("ampi: restart rank %d: %w", vp, err))
				return
			}
			engine.At(readDone, func() {
				if err := r.ctx.RestoreInto(payload, w.sharedInstanceOf(pe.PE.Proc)); err != nil {
					w.fail(fmt.Errorf("ampi: restart rank %d: %w", r.vp, err))
					return
				}
				pe.Adopt(r.thread)
			})
		}
	})
	return nil
}
