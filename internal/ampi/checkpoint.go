package ampi

import (
	"errors"
	"fmt"

	"provirt/internal/core"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// ErrSnapshotLost reports that a restart's snapshot no longer exists
// anywhere: an in-memory (buddy) checkpoint's surviving copies left
// with nodes that have since departed, before a fresh snapshot could
// replace them. Supervisors that see this can only restart the job
// from the beginning. Filesystem snapshots never produce it.
var ErrSnapshotLost = errors.New("snapshot lost with the nodes that held it")

// CheckpointTarget selects where snapshots live.
type CheckpointTarget int

const (
	// TargetFS writes one file per rank to the shared filesystem.
	// Snapshots survive any failure (including whole-job loss) but every
	// checkpoint contends on the filesystem's aggregate bandwidth.
	TargetFS CheckpointTarget = iota
	// TargetBuddy keeps snapshots in memory, doubly: each rank's home
	// node keeps a local copy and ships the incremental delta to a buddy
	// node ((home+1) mod nodes) over the network. Checkpoints avoid the
	// filesystem entirely and recovery from any single-node failure
	// reads the surviving copy, but a simultaneous node+buddy loss is
	// unrecoverable.
	TargetBuddy
)

// String names the target ("fs", "buddy").
func (t CheckpointTarget) String() string {
	switch t {
	case TargetFS:
		return "fs"
	case TargetBuddy:
		return "buddy"
	default:
		return fmt.Sprintf("CheckpointTarget(%d)", int(t))
	}
}

// CheckpointPolicy is the configuration Rank.CheckpointIfDue consults:
// where snapshots go and how much virtual time should pass between
// them (e.g. ft.DalyInterval for the optimal value given an MTBF).
type CheckpointPolicy struct {
	Target CheckpointTarget
	// Dir is the shared-filesystem directory for TargetFS; ignored by
	// TargetBuddy.
	Dir string
	// Interval is the minimum virtual time between snapshot starts. A
	// zero or negative interval disables CheckpointIfDue.
	Interval sim.Time
}

// Checkpoint is a consistent snapshot of every rank's migratable state.
// Because rank state serializes exactly as it does for migration, any
// privatization method that supports migration supports
// checkpoint/restart fault tolerance — and any method that cannot
// (PIPglobals, FSglobals) fails here with the same reason (§3.1, §3.2).
type Checkpoint struct {
	// Target records where the snapshot lives; Dir is the filesystem
	// directory for TargetFS snapshots.
	Target CheckpointTarget
	Dir    string
	// Method records the privatization method the snapshot was taken
	// under; restart validation rejects a mismatched config.
	Method   core.Kind
	Payloads []*core.MigrationPayload
	// Homes[i] is the node that hosted Payloads[i]'s rank when the
	// snapshot was taken — for TargetBuddy it is where the local copy
	// lives (the buddy copy is on (Homes[i]+1) mod Nodes).
	Homes []int
	// Nodes is the cluster's node count when the snapshot was taken.
	Nodes int
	// LostNode, when >= 0, marks a node whose in-memory snapshot copies
	// are gone; a TargetBuddy restore fetches those ranks' state from
	// their buddy node instead. Supervisors set it before restarting.
	// -1 (the value checkpoints are created with) means all copies are
	// intact.
	LostNode int
	// Bytes is the total logical snapshot size; DeltaBytes is what this
	// checkpoint actually wrote (dirty blocks only, once each rank has a
	// previous snapshot to be incremental against). A job's first
	// checkpoint writes everything, so there DeltaBytes == Bytes.
	Bytes      uint64
	DeltaBytes uint64
	// Taken is the virtual time the snapshot completed (slowest rank).
	Taken sim.Time
	// VPs records the rank count for restart validation.
	VPs int
}

// Checkpoint is a collective: every rank must call it. The runtime
// serializes all rank state and writes one file per rank to the shared
// filesystem; ranks resume once their file is durable. The snapshot is
// available afterwards via World.LastCheckpoint. It is shorthand for
// CheckpointTo(TargetFS, dir).
func (r *Rank) Checkpoint(dir string) {
	r.CheckpointTo(TargetFS, dir)
}

// CheckpointTo is a collective: every rank must call it with the same
// arguments. The runtime serializes all rank state and makes it durable
// on the chosen target; ranks resume once their part is safe.
func (r *Rank) CheckpointTo(target CheckpointTarget, dir string) {
	w := r.world
	w.ckptWaiting = append(w.ckptWaiting, r)
	if len(w.ckptWaiting) == len(w.Ranks) {
		at := r.thread.Now()
		w.Cluster.Engine.At(at, func() { w.runCheckpoint(target, dir, false) })
	}
	r.thread.Suspend()
}

// CheckpointIfDue is the policy-driven checkpoint call applications
// place at their natural consistency points (iteration boundaries). If
// the world has no CheckpointPolicy (or a non-positive interval) it
// returns false immediately, without synchronizing. Otherwise it is a
// collective: ranks gather, and if the policy's interval has elapsed
// since the previous snapshot a checkpoint is taken; if not, ranks
// simply synchronize. It reports whether a snapshot was taken this
// call — the same answer on every rank.
func (r *Rank) CheckpointIfDue() bool {
	w := r.world
	p := w.Cfg.Checkpoint
	if p == nil || p.Interval <= 0 {
		return false
	}
	w.ckptWaiting = append(w.ckptWaiting, r)
	if len(w.ckptWaiting) == len(w.Ranks) {
		at := r.thread.Now()
		w.Cluster.Engine.At(at, func() { w.runCheckpoint(p.Target, p.Dir, true) })
	}
	r.thread.Suspend()
	return w.ckptDecision
}

// LastCheckpoint returns the most recent snapshot, or nil.
func (w *World) LastCheckpoint() *Checkpoint { return w.lastCheckpoint }

func (w *World) runCheckpoint(target CheckpointTarget, dir string, ifDue bool) {
	sync := w.Cluster.Engine.Now()
	for _, s := range w.scheds {
		if s.Now() > sync {
			sync = s.Now()
		}
	}
	waiting := w.ckptWaiting
	w.ckptWaiting = nil

	// A pending reconfiguration (ScheduleReconfigure) drains through
	// this consistency point: the snapshot is forced even if the policy
	// interval has not elapsed, and the ranks are not resumed.
	drain := w.reconfigPending

	if ifDue && !drain && sync-w.lastCkptAt < w.Cfg.Checkpoint.Interval {
		// Not due yet: the gather still synchronizes the ranks (they
		// all resume at the slowest clock), but no snapshot is taken.
		w.ckptDecision = false
		for _, r := range waiting {
			w.wakeAt(r, sync)
		}
		return
	}
	w.ckptDecision = true
	w.lastCkptAt = sync
	w.Checkpoints++

	ck := &Checkpoint{
		Target:   target,
		Dir:      dir,
		Method:   w.Cfg.Privatize,
		Nodes:    len(w.Cluster.Nodes),
		LostNode: -1,
		VPs:      len(w.Ranks),
	}
	for _, r := range waiting {
		payload, err := r.ctx.Serialize()
		if err != nil {
			w.fail(fmt.Errorf("ampi: checkpoint/restart is unavailable: %w", err))
			return
		}
		ck.Payloads = append(ck.Payloads, payload)
		ck.Homes = append(ck.Homes, r.pe.Proc.Node.ID)
		ck.Bytes += payload.Bytes()
		// Snapshots are incremental: each rank pays for the bytes that
		// changed since its previous snapshot.
		delta := payload.DeltaBytes()
		ck.DeltaBytes += delta
		var done sim.Time
		switch target {
		case TargetBuddy:
			// Double in-memory checkpoint: pack the delta locally, ship
			// it to the buddy node, unpack there. The rank resumes once
			// its buddy copy is safe. No filesystem involved.
			cost := w.Cluster.Cost
			buddy := w.Cluster.Nodes[(r.pe.Proc.Node.ID+1)%len(w.Cluster.Nodes)]
			dstPE := buddy.Procs[0].PEs[0]
			depart := sync + cost.CopyTime(delta)
			done = w.Cluster.Transfer(depart, r.pe, dstPE, delta) + cost.CopyTime(delta)
		default:
			// Writes contend on the shared filesystem; the rank resumes
			// when its file is durable.
			done = w.Cluster.FS.WriteFile(sync, checkpointPath(dir, r.vp), delta)
		}
		if done > ck.Taken {
			ck.Taken = done
		}
		if !drain {
			w.wakeAt(r, done)
		}
	}
	w.lastCheckpoint = ck
	if drain {
		// The ranks stay suspended: once the slowest payload is safe the
		// world stops with a *Reconfigure error so the supervisor can
		// rebuild it on the new cluster shape from this snapshot.
		w.Cluster.Engine.At(ck.Taken, func() { w.drainWorld(ck, sync) })
	}
}

func checkpointPath(dir string, vp int) string {
	return fmt.Sprintf("%s/rank-%d.ckpt", dir, vp)
}

// NewWorldFromCheckpoint builds a world whose ranks restart from a
// previously taken checkpoint: after privatization setup, each rank's
// snapshot is read back — from the shared filesystem, or from the
// surviving in-memory copy for buddy checkpoints — and restored into
// its context before the rank's main function runs. The machine shape
// may differ from the original job's (restart after a node failure, or
// shrink/expand), since Isomalloc state is placement-independent.
//
// Go cannot resume a goroutine mid-function, so — like a hot-start in
// a production code — the program's main runs from the top and is
// expected to consult its (restored) privatized state to skip
// completed work.
func NewWorldFromCheckpoint(cfg Config, prog *Program, ck *Checkpoint) (*World, error) {
	if ck == nil {
		return nil, fmt.Errorf("ampi: nil checkpoint")
	}
	if cfg.VPs == 0 {
		cfg.VPs = ck.VPs
	}
	if cfg.VPs != ck.VPs {
		return nil, fmt.Errorf("ampi: checkpoint has %d ranks, config wants %d", ck.VPs, cfg.VPs)
	}
	if len(ck.Payloads) != ck.VPs {
		return nil, fmt.Errorf("ampi: checkpoint has %d payloads for %d ranks; snapshot is incomplete",
			len(ck.Payloads), ck.VPs)
	}
	kind := cfg.Privatize
	if cfg.Method != nil {
		kind = cfg.Method.Kind()
	}
	if ck.Method != core.KindNone && ck.Method != kind {
		return nil, fmt.Errorf("ampi: checkpoint was taken under %v, config restarts under %v; privatized state is not portable across methods",
			ck.Method, kind)
	}
	if !core.CapabilitiesOf(kind).SupportsMigration {
		return nil, fmt.Errorf("ampi: method %v does not support migratable rank state; checkpoint restart is unavailable", kind)
	}
	cfg.restart = ck
	return NewWorld(cfg, prog)
}

// restoreFromCheckpoint wires restart into world construction: instead
// of adopting rank threads directly at setup completion, each rank's
// snapshot is read back (from the contended filesystem, or from buddy
// memory over the network) and restored, and the thread starts only
// once its state is back.
func (w *World) restoreFromCheckpoint(ck *Checkpoint, vpPE []int) error {
	byVP := make(map[int]*core.MigrationPayload, len(ck.Payloads))
	homeByVP := make(map[int]int, len(ck.Payloads))
	for i, p := range ck.Payloads {
		byVP[p.VP] = p
		if i < len(ck.Homes) {
			homeByVP[p.VP] = ck.Homes[i]
		}
	}
	for vp := range w.Ranks {
		if byVP[vp] == nil {
			return fmt.Errorf("ampi: checkpoint missing rank %d", vp)
		}
	}
	if ck.Target == TargetBuddy {
		return w.restoreFromBuddy(ck, vpPE, byVP, homeByVP)
	}
	// The shared filesystem persists across jobs: make the previous
	// job's checkpoint files visible to this cluster.
	for _, p := range ck.Payloads {
		w.Cluster.FS.Populate(checkpointPath(ck.Dir, p.VP), p.Bytes())
	}
	engine := w.Cluster.Engine
	engine.At(w.SetupDone, func() {
		for vp, r := range w.Ranks {
			r := r
			payload := byVP[vp]
			pe := w.scheds[vpPE[vp]]
			readDone, _, err := w.Cluster.FS.ReadFile(w.SetupDone, checkpointPath(ck.Dir, vp))
			if err != nil {
				w.fail(fmt.Errorf("ampi: restart rank %d: %w", vp, err))
				return
			}
			engine.At(readDone, func() {
				if err := r.ctx.RestoreInto(payload, w.sharedInstanceOf(pe.PE.Proc)); err != nil {
					w.fail(fmt.Errorf("ampi: restart rank %d: %w", r.vp, err))
					return
				}
				w.noteRestore(r, payload, w.SetupDone, readDone, int32(TargetFS))
				pe.Adopt(r.thread)
			})
		}
	})
	return nil
}

// restoreFromBuddy restores ranks from in-memory snapshot copies. Each
// rank's state comes from its old home node's copy — or, if that node
// is the one marked lost, from the buddy's copy — and is transferred
// over the network to wherever the rank now lives.
func (w *World) restoreFromBuddy(ck *Checkpoint, vpPE []int, byVP map[int]*core.MigrationPayload, homeByVP map[int]int) error {
	if len(ck.Homes) != len(ck.Payloads) {
		return fmt.Errorf("ampi: buddy checkpoint has %d home records for %d payloads", len(ck.Homes), len(ck.Payloads))
	}
	if ck.Nodes <= 0 {
		return fmt.Errorf("ampi: buddy checkpoint records no cluster shape")
	}
	if ck.LostNode >= 0 && ck.Nodes < 2 {
		return fmt.Errorf("ampi: buddy checkpoint on a 1-node cluster cannot survive losing node %d: %w", ck.LostNode, ErrSnapshotLost)
	}
	// Map a node id from the snapshot's cluster onto this cluster. A
	// shrunk restart (one fewer node) drops the lost node's id and
	// shifts the ids above it down; same-shape restarts map identically.
	shrunk := len(w.Cluster.Nodes) < ck.Nodes
	mapNode := func(old int) (int, error) {
		id := old
		if shrunk && ck.LostNode >= 0 && old > ck.LostNode {
			id = old - 1
		}
		if id < 0 || id >= len(w.Cluster.Nodes) {
			return 0, fmt.Errorf("ampi: buddy restore: snapshot node %d has no counterpart on this %d-node cluster: %w",
				old, len(w.Cluster.Nodes), ErrSnapshotLost)
		}
		return id, nil
	}
	engine := w.Cluster.Engine
	cost := w.Cluster.Cost
	engine.At(w.SetupDone, func() {
		for vp, r := range w.Ranks {
			r := r
			payload := byVP[vp]
			home := homeByVP[vp]
			src := home
			if home == ck.LostNode {
				src = (home + 1) % ck.Nodes // the buddy holds the only copy
			}
			srcID, err := mapNode(src)
			if err != nil {
				w.fail(err)
				return
			}
			pe := w.scheds[vpPE[vp]]
			srcPE := w.Cluster.Nodes[srcID].Procs[0].PEs[0]
			n := payload.Bytes()
			// Unpack the copy; if it lives on another node, pack and
			// ship it over the network first.
			done := w.SetupDone + cost.CopyTime(n)
			if srcPE.Proc.Node != pe.PE.Proc.Node {
				done = w.Cluster.Transfer(w.SetupDone+cost.CopyTime(n), srcPE, pe.PE, n) + cost.CopyTime(n)
			}
			engine.At(done, func() {
				if err := r.ctx.RestoreInto(payload, w.sharedInstanceOf(pe.PE.Proc)); err != nil {
					w.fail(fmt.Errorf("ampi: restart rank %d: %w", r.vp, err))
					return
				}
				w.noteRestore(r, payload, w.SetupDone, done, int32(TargetBuddy))
				pe.Adopt(r.thread)
			})
		}
	})
	return nil
}

// noteRestore records restore accounting and emits the rank's recovery
// span. It runs inside the restore completion callback, so tracing adds
// no engine events and traced runs stay bit-identical to untraced ones.
func (w *World) noteRestore(r *Rank, p *core.MigrationPayload, start, done sim.Time, target int32) {
	w.RestoredBytes += p.Bytes()
	if done > w.RestoreDone {
		w.RestoreDone = done
	}
	if done > w.lastCkptAt {
		w.lastCkptAt = done // checkpoint intervals count from the restore
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: start, Dur: done - start, Kind: trace.KindRecover,
			PE: int32(r.pe.ID), VP: int32(r.vp), Peer: -1, Aux: target, Bytes: p.Bytes()})
	}
}
