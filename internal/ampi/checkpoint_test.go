package ampi_test

import (
	"strings"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/machine"
)

// ckptImage tracks progress in a privatized global so a restarted run
// can skip completed work (hot-start style).
func ckptImage() *elf.Image {
	return elf.NewBuilder("ckptapp").
		TaggedGlobal("iter", 0).
		TaggedGlobal("acc", 0).
		Func("main", 1024).
		CodeBulk(1 << 20).
		MustBuild()
}

// ckptProgram runs `total` iterations, checkpointing at `at`; on
// restart it resumes from the restored iteration counter.
func ckptProgram(total, at int, finals []uint64) *ampi.Program {
	return &ampi.Program{
		Image: ckptImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < total {
				it := ctx.Load("iter")
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				if int(it+1) == at {
					r.Checkpoint("/scratch/ckpt")
				}
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("acc")
		},
	}
}

func expectedAcc(total, rank int) uint64 {
	var acc uint64
	for it := 1; it <= total; it++ {
		acc += uint64(it) * uint64(rank+1)
	}
	return acc
}

func TestCheckpointWritesSnapshot(t *testing.T) {
	finals := make([]uint64, 4)
	prog := ckptProgram(6, 3, finals)
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w := runProgram(t, cfg, prog)
	ck := w.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint recorded")
	}
	if len(ck.Payloads) != 4 || ck.VPs != 4 {
		t.Fatalf("checkpoint has %d payloads", len(ck.Payloads))
	}
	if ck.Bytes == 0 || ck.Taken == 0 {
		t.Fatal("checkpoint charged no bytes or time")
	}
	// PIE checkpoints include the code segments.
	if ck.Bytes < 4*(1<<20) {
		t.Errorf("checkpoint bytes %d suspiciously small for 4 PIE ranks", ck.Bytes)
	}
	// Files are durable on the shared FS.
	if !w.Cluster.FS.Exists("/scratch/ckpt/rank-0.ckpt") {
		t.Error("checkpoint file missing from shared FS")
	}
	for vp, acc := range finals {
		if acc != expectedAcc(6, vp) {
			t.Errorf("rank %d acc %d, want %d", vp, acc, expectedAcc(6, vp))
		}
	}
}

func TestRestartResumesFromCheckpoint(t *testing.T) {
	// Phase 1: run to completion, checkpointing at iteration 3.
	finals1 := make([]uint64, 4)
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w1 := runProgram(t, cfg, ckptProgram(6, 3, finals1))
	ck := w1.LastCheckpoint()

	// Phase 2: "node failure" — restart from the snapshot on a SMALLER
	// machine. The program must resume at iteration 3, not 0: the
	// accumulators only come out right if iterations 1-3 are skipped
	// (re-running them would double-count).
	finals2 := make([]uint64, 4)
	cfg2 := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w2, err := ampi.NewWorldFromCheckpoint(cfg2, ckptProgram(6, 0, finals2), ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	for vp := range finals2 {
		if finals2[vp] != expectedAcc(6, vp) {
			t.Errorf("restarted rank %d acc %d, want %d (did it resume from iter 3?)",
				vp, finals2[vp], expectedAcc(6, vp))
		}
	}
	// Restart charges filesystem read time.
	if w2.SetupDone == 0 {
		t.Error("restart skipped setup")
	}
}

func TestCheckpointRefusedForNonMigratableMethods(t *testing.T) {
	for _, kind := range []core.Kind{core.KindPIPglobals, core.KindFSglobals} {
		t.Run(kind.String(), func(t *testing.T) {
			prog := &ampi.Program{
				Image: ckptImage(),
				Main:  func(r *ampi.Rank) { r.Checkpoint("/scratch/x") },
			}
			cfg := ampi.Config{
				Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
				VPs:       2,
				Privatize: kind,
			}
			w, err := ampi.NewWorld(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run()
			if err == nil || !strings.Contains(err.Error(), "checkpoint/restart is unavailable") {
				t.Fatalf("expected checkpoint refusal, got %v", err)
			}
		})
	}
}

func TestRestartValidation(t *testing.T) {
	if _, err := ampi.NewWorldFromCheckpoint(ampi.Config{}, nil, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	ck := &ampi.Checkpoint{VPs: 4}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       8,
		Privatize: core.KindPIEglobals,
	}
	prog := ckptProgram(1, 0, make([]uint64, 8))
	if _, err := ampi.NewWorldFromCheckpoint(cfg, prog, ck); err == nil {
		t.Fatal("rank-count mismatch accepted")
	}
}

// Restart validation must reject snapshots that cannot possibly restore
// correctly, each with an error naming the actual problem.
func TestRestartValidationRejectsBadSnapshots(t *testing.T) {
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       2,
		Privatize: core.KindPIEglobals,
	}
	prog := func() *ampi.Program { return ckptProgram(1, 0, make([]uint64, 2)) }

	t.Run("incomplete payloads", func(t *testing.T) {
		// Right rank count, but the per-rank payloads are missing — a
		// snapshot that was never fully gathered.
		ck := &ampi.Checkpoint{VPs: 2, Method: core.KindPIEglobals}
		_, err := ampi.NewWorldFromCheckpoint(cfg, prog(), ck)
		if err == nil || !strings.Contains(err.Error(), "snapshot is incomplete") {
			t.Fatalf("incomplete snapshot: got %v", err)
		}
	})
	t.Run("method mismatch", func(t *testing.T) {
		// A real snapshot taken under PIEglobals must not restore into a
		// TLSglobals world: the serialized state encodes the method's
		// layout.
		finals := make([]uint64, 4)
		w := runProgram(t, ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
			VPs:       4,
			Privatize: core.KindPIEglobals,
		}, ckptProgram(6, 3, finals))
		ck := w.LastCheckpoint()
		if ck == nil {
			t.Fatal("no checkpoint taken")
		}
		bad := ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
			VPs:       4,
			Privatize: core.KindTLSglobals,
		}
		_, err := ampi.NewWorldFromCheckpoint(bad, ckptProgram(6, 0, make([]uint64, 4)), ck)
		if err == nil || !strings.Contains(err.Error(), "not portable across methods") {
			t.Fatalf("method mismatch: got %v", err)
		}
	})
	t.Run("non-migratable method", func(t *testing.T) {
		// Even a self-consistent snapshot cannot restart under a method
		// without migratable rank state.
		ck := &ampi.Checkpoint{
			VPs:      2,
			Method:   core.KindPIPglobals,
			Payloads: make([]*core.MigrationPayload, 2),
		}
		bad := cfg
		bad.Privatize = core.KindPIPglobals
		_, err := ampi.NewWorldFromCheckpoint(bad, prog(), ck)
		if err == nil || !strings.Contains(err.Error(), "does not support migratable rank state") {
			t.Fatalf("non-migratable method: got %v", err)
		}
	})
}
