package ampi

import "provirt/internal/obs"

// Host-side matchqueue instruments (package obs). The paper's match
// queues are the runtime's most contention-sensitive structure — the
// adaptive linear→hash design exists because probe cost explodes with
// depth — so these are exactly the counters ROADMAP item 3 asks for
// before sweep-as-a-service can admit heavy traffic. Instruments are
// package-level (worlds are built by the thousand per sweep) and nil
// by default: an un-instrumented match costs one pointer comparison
// per hook, the same discipline as the world's nil trace.Tracer.
type obsMetrics struct {
	// probeDepth observes the store depth at every match attempt
	// against a non-empty queue: the work a linear scan would do and
	// the pressure that triggers spilling.
	probeDepth *obs.Histogram
	// spills counts linear→hash promotions across both store types.
	spills *obs.Counter
	// unexpectedDepth is the high-water depth of any rank's
	// unexpected-message queue; unexpectedTotal counts messages that
	// arrived before their receive was posted.
	unexpectedDepth *obs.Gauge
	unexpectedTotal *obs.Counter
}

var metrics obsMetrics

// EnableObs registers the matchqueue instruments in r and turns them
// on for every world in the process; EnableObs(nil) restores the
// no-op state. Call it only while no world is running.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		probeDepth: r.Histogram("ampi_match_probe_depth",
			"matchqueue depth at each match attempt against a non-empty store",
			obs.ExpBuckets(1, 2, 10)),
		spills: r.Counter("ampi_matchqueue_spills_total",
			"matchqueue linear-to-hash promotions (either store side)"),
		unexpectedDepth: r.Gauge("ampi_unexpected_depth_high_water",
			"highest unexpected-message queue depth seen by any rank"),
		unexpectedTotal: r.Counter("ampi_unexpected_total",
			"messages queued as unexpected (arrived before a matching receive)"),
	}
}
