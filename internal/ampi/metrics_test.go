package ampi

import (
	"testing"

	"provirt/internal/obs"
)

// Matchqueue instruments: unexpected arrivals raise the depth
// high-water, deep stores promote to the hash index exactly once per
// fill, and probe depths land in the histogram.
func TestMatchqueueObsCounts(t *testing.T) {
	r := obs.NewRegistry()
	EnableObs(r)
	defer EnableObs(nil)

	var s msgStore
	// Fill past the spill threshold: every add is an "unexpected"
	// arrival; crossing spillThreshold promotes once.
	n := spillThreshold + 8
	msgs := make([]message, n)
	for i := 0; i < n; i++ {
		msgs[i] = message{src: i, tag: 7, comm: WorldComm}
		s.add(&msgs[i])
	}
	if got := metrics.unexpectedTotal.Value(); got != uint64(n) {
		t.Fatalf("ampi_unexpected_total = %d, want %d", got, n)
	}
	if got := metrics.unexpectedDepth.Value(); got != int64(n) {
		t.Fatalf("ampi_unexpected_depth_high_water = %d, want %d", got, n)
	}
	if got := metrics.spills.Value(); got != 1 {
		t.Fatalf("ampi_matchqueue_spills_total = %d, want 1", got)
	}

	// Drain: each take against a non-empty store observes its depth.
	before := metrics.probeDepth.Count()
	for i := 0; i < n; i++ {
		q := &Request{src: i, tag: 7, comm: WorldComm, recv: true}
		if m := s.take(q); m == nil {
			t.Fatalf("take(%d) found nothing", i)
		}
	}
	if got := metrics.probeDepth.Count() - before; got != uint64(n) {
		t.Fatalf("probe depth observations = %d, want %d", got, n)
	}
	// Draining empty dropped the store back to linear mode; refilling
	// past the threshold spills again.
	for i := 0; i < spillThreshold+1; i++ {
		s.add(&message{src: i, tag: 9, comm: WorldComm})
	}
	if got := metrics.spills.Value(); got != 2 {
		t.Fatalf("respill not counted: spills = %d, want 2", got)
	}
}
