package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/lb"
	"provirt/internal/machine"
)

// benchImage carries one privatized global the rank dirties between
// snapshots, so the heap is mostly clean but never fully clean — the
// steady-state shape of a long-running rank under periodic
// load balancing or checkpointing.
func benchImage() *elf.Image {
	return elf.NewBuilder("membench").
		Global("state", 0).
		Func("main", 2048).
		MustBuild()
}

// populateHeap grows the rank's heap to 64 live 16 KiB payload blocks
// (1 MiB of words that every full-copy snapshot must move).
func populateHeap(r *ampi.Rank) {
	for i := 0; i < 64; i++ {
		if _, err := r.Ctx().Heap.Alloc(16<<10, "resident-set"); err != nil {
			panic(err)
		}
	}
}

// BenchmarkMigrateRank measures a steady-state migration round:
// serialize a mostly-clean 1 MiB heap, move the rank to the other PE,
// and restore it there. Allocation counts pin the incremental
// snapshot path against the full-copy baseline.
func BenchmarkMigrateRank(b *testing.B) {
	ctr := 0
	prog := &ampi.Program{
		Image: benchImage(),
		Main: func(r *ampi.Rank) {
			populateHeap(r)
			state := r.Ctx().Var("state")
			for i := 0; i < b.N; i++ {
				ctr++
				state.Store(uint64(ctr))
				r.Migrate()
			}
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindManual,
		Balancer:  lb.RotateLB{},
	}, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	if w.Migrations != b.N {
		b.Fatalf("completed %d migrations, want %d", w.Migrations, b.N)
	}
}

// BenchmarkCheckpoint measures a steady-state periodic checkpoint of
// the same mostly-clean rank: one dirtied privatized cell, 1 MiB of
// untouched heap payload per snapshot.
func BenchmarkCheckpoint(b *testing.B) {
	ctr := 0
	prog := &ampi.Program{
		Image: benchImage(),
		Main: func(r *ampi.Rank) {
			populateHeap(r)
			state := r.Ctx().Var("state")
			for i := 0; i < b.N; i++ {
				ctr++
				state.Store(uint64(ctr))
				r.Checkpoint("/ckpt")
			}
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       1,
		Privatize: core.KindManual,
	}, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	if ck := w.LastCheckpoint(); b.N > 0 && (ck == nil || ck.Bytes == 0) {
		b.Fatal("no checkpoint recorded")
	}
}
