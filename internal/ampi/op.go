package ampi

import (
	"fmt"
	"math"

	"provirt/internal/core"
	"provirt/internal/machine"
)

// ReduceFunc combines two contributions elementwise; it must be
// commutative and associative, and must tolerate nil slices (barrier
// reductions carry no payload).
type ReduceFunc func(in, acc []float64) []float64

// Op is an MPI reduction operator (MPI_Op).
//
// Built-in operators are runtime functions, identical in every rank's
// address space. User-defined operators are functions in the *user
// program*, so under segment-duplicating privatization every rank has
// its own copy at a different address — AMPI therefore stores the
// function's offset from the rank's code-segment base at MPI_Op_create
// time and re-applies the offset to whatever rank's base is handy when
// the reduction executes (§3.3).
type Op struct {
	name    string
	builtin bool
	fn      ReduceFunc // built-ins only
	// offset is the user function's code-segment-relative offset.
	offset uint64
	// fnName is the user function's symbol, for sanity checks.
	fnName string
	world  *World
}

// Name returns the operator's display name.
func (op *Op) Name() string { return op.name }

func elementwise(f func(a, b float64) float64) ReduceFunc {
	return func(in, acc []float64) []float64 {
		if acc == nil {
			return append([]float64(nil), in...)
		}
		if len(in) != len(acc) {
			panic(fmt.Sprintf("ampi: reduction length mismatch %d vs %d", len(in), len(acc)))
		}
		for i := range acc {
			acc[i] = f(in[i], acc[i])
		}
		return acc
	}
}

// Built-in reduction operators.
var (
	OpSum  = &Op{name: "MPI_SUM", builtin: true, fn: elementwise(func(a, b float64) float64 { return a + b })}
	OpProd = &Op{name: "MPI_PROD", builtin: true, fn: elementwise(func(a, b float64) float64 { return a * b })}
	OpMax  = &Op{name: "MPI_MAX", builtin: true, fn: elementwise(math.Max)}
	OpMin  = &Op{name: "MPI_MIN", builtin: true, fn: elementwise(math.Min)}
)

// OpCreate registers a user-defined reduction operator (MPI_Op_create).
// funcName must name both a function in the program image and an entry
// in the program's ReduceFuncs table. The operator stores the
// function's offset from this rank's code-segment base, not its
// absolute address.
func (r *Rank) OpCreate(funcName string) (*Op, error) {
	w := r.world
	if w.Program.ReduceFuncs[funcName] == nil {
		return nil, fmt.Errorf("ampi: program has no reduction function %q", funcName)
	}
	addr, err := r.ctx.FuncAddr(funcName)
	if err != nil {
		return nil, err
	}
	off, err := r.ctx.FuncOffset(addr)
	if err != nil {
		return nil, err
	}
	return &Op{name: "user:" + funcName, offset: off, fnName: funcName, world: w}, nil
}

// applyOp combines in into acc with op, executing at rank at.
func (w *World) applyOp(op *Op, at *Rank, in, acc []float64) []float64 {
	if op.builtin {
		return op.fn(in, acc)
	}
	fn, err := w.resolveUserOp(op, at.ctx)
	if err != nil {
		w.fail(err)
		return acc
	}
	return fn(in, acc)
}

// resolveUserOp translates the operator's stored offset against a
// resident rank's code-segment base and returns the implementation.
func (w *World) resolveUserOp(op *Op, ctx *core.RankContext) (ReduceFunc, error) {
	f, err := ctx.FuncAtOffset(op.offset)
	if err != nil {
		return nil, fmt.Errorf("ampi: applying %s: %w", op.name, err)
	}
	if f.Name != op.fnName {
		return nil, fmt.Errorf("ampi: applying %s: offset %#x resolves to %q, want %q", op.name, op.offset, f.Name, op.fnName)
	}
	fn := w.Program.ReduceFuncs[f.Name]
	if fn == nil {
		return nil, fmt.Errorf("ampi: no implementation registered for reduction function %q", f.Name)
	}
	return fn, nil
}

// ApplyOpOnPE processes a reduction combine step on a specific PE, as
// Charm++'s reduction framework may do for pass-through contributions.
// Resolving a user-defined operator requires *some* resident rank's
// code-segment base; under PIEglobals a PE with no resident virtual
// ranks cannot process the contribution, and AMPI raises a runtime
// error rather than forwarding (§3.3).
func (w *World) ApplyOpOnPE(pe *machine.PE, op *Op, in, acc []float64) ([]float64, error) {
	if op.builtin {
		return op.fn(in, acc), nil
	}
	sched := w.scheds[pe.ID]
	for _, t := range sched.Threads() {
		if ctx := rankCtx(t); ctx != nil {
			fn, err := w.resolveUserOp(op, ctx)
			if err != nil {
				return acc, err
			}
			return fn(in, acc), nil
		}
	}
	return acc, fmt.Errorf("ampi: cannot process user-defined reduction %s on PE %d: no virtual ranks are resident, so no code-segment base is available to resolve the operator offset under %s; all cores must have at least one virtual rank assigned during reduction processing",
		op.name, pe.ID, w.Method.Kind())
}
