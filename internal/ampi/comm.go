package ampi

import (
	"fmt"
	"sort"

	"provirt/internal/trace"
)

// WorldComm is the id of MPI_COMM_WORLD.
const WorldComm = 0

// Comm is a communicator: an ordered group of world ranks with its own
// rank numbering and isolated tag space. The zero communicator
// (CommWorld) contains every rank.
type Comm struct {
	r       *Rank
	id      int
	members []int // world rank per comm rank
	myRank  int   // this rank's position in members
	collSeq int
}

// CommWorld returns this rank's view of MPI_COMM_WORLD.
func (r *Rank) CommWorld() *Comm {
	members := make([]int, r.Size())
	for i := range members {
		members[i] = i
	}
	return &Comm{r: r, id: WorldComm, members: members, myRank: r.vp}
}

// Rank reports this rank's number within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size reports the communicator's group size.
func (c *Comm) Size() int { return len(c.members) }

// ID returns the communicator's id (diagnostic).
func (c *Comm) ID() int { return c.id }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("ampi: comm %d rank %d out of range [0,%d)", c.id, commRank, len(c.members)))
	}
	return c.members[commRank]
}

// commRankOf translates a world rank to a communicator rank, or -1.
func (c *Comm) commRankOf(world int) int {
	for i, m := range c.members {
		if m == world {
			return i
		}
	}
	return -1
}

// Send sends within the communicator (dst is a comm rank).
func (c *Comm) Send(dst, tag int, data []float64, bytes uint64) {
	c.r.checkUserTag(tag)
	c.r.sendComm(c.WorldRank(dst), tag, c.id, data, bytes)
}

// Recv receives within the communicator; src is a comm rank or
// AnySource.
func (c *Comm) Recv(src, tag int) []float64 {
	return c.r.Wait(c.Irecv(src, tag))
}

// Irecv posts a nonblocking receive within the communicator.
func (c *Comm) Irecv(src, tag int) *Request {
	c.r.checkUserTag(tag)
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = c.WorldRank(src)
	}
	return c.r.irecvComm(worldSrc, tag, c.id, false)
}

// nextCollTag allocates a collective tag unique to this communicator
// instance sequence.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return collTagBase - c.collSeq
}

// sendColl / recvColl are the collective plumbing within the comm.
func (c *Comm) sendColl(dstCommRank, tag int, data []float64, bytes uint64) {
	c.r.sendInternalComm(c.WorldRank(dstCommRank), tag, c.id, data, bytes)
}

func (c *Comm) recvColl(srcCommRank, tag int) []float64 {
	return c.r.Wait(c.r.irecvComm(c.WorldRank(srcCommRank), tag, c.id, true))
}

// Barrier blocks until every member has entered it.
func (c *Comm) Barrier() {
	c.Allreduce(nil, OpSum)
}

// Bcast broadcasts from the comm rank root along a binomial tree.
func (c *Comm) Bcast(root int, data []float64, bytes uint64) []float64 {
	size := c.Size()
	tag := c.nextCollTag()
	if size == 1 {
		return append([]float64(nil), data...)
	}
	rel := (c.myRank - root + size) % size
	parent, children := binomialParentChildren(rel, size)
	buf := data
	if rel != 0 {
		buf = c.recvColl(abs(parent, root, size), tag)
	}
	for _, ch := range children {
		c.sendColl(abs(ch, root, size), tag, buf, bytes)
	}
	out := append([]float64(nil), buf...)
	if rel != 0 {
		// The relay buffer was this hop's message payload; sends have
		// copied it onward, so it can be recycled.
		c.r.world.putBuf(buf)
	}
	return out
}

// Reduce combines contributions at the comm rank root.
func (c *Comm) Reduce(root int, data []float64, op *Op) []float64 {
	size := c.Size()
	tag := c.nextCollTag()
	w := c.r.world
	acc := w.copyBuf(data)
	rel := (c.myRank - root + size) % size
	parent, children := binomialParentChildren(rel, size)
	for i := len(children) - 1; i >= 0; i-- {
		part := c.recvColl(abs(children[i], root, size), tag)
		acc = w.applyOp(op, c.r, part, acc)
		w.releaseAfterOp(op, part)
	}
	if rel != 0 {
		c.sendColl(abs(parent, root, size), tag, acc, 0)
		w.releaseAfterOp(op, acc)
		return nil
	}
	return acc
}

// Allreduce reduces then broadcasts.
func (c *Comm) Allreduce(data []float64, op *Op) []float64 {
	acc := c.Reduce(0, data, op)
	out := c.Bcast(0, acc, 0)
	if acc != nil {
		// Only the root holds a reduction result here, and Bcast has
		// copied it into the outgoing payloads and out.
		c.r.world.releaseAfterOp(op, acc)
	}
	return out
}

// Gather collects fixed-size contributions at the comm rank root.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	size := c.Size()
	tag := c.nextCollTag()
	if c.myRank != root {
		c.sendColl(root, tag, data, 0)
		return nil
	}
	out := make([][]float64, size)
	out[root] = append([]float64(nil), data...)
	reqs := make([]*Request, 0, size-1)
	srcs := make([]int, 0, size-1)
	for cr := 0; cr < size; cr++ {
		if cr == root {
			continue
		}
		reqs = append(reqs, c.r.irecvComm(c.WorldRank(cr), tag, c.id, true))
		srcs = append(srcs, cr)
	}
	for i, q := range reqs {
		out[srcs[i]] = c.r.Wait(q)
	}
	return out
}

// Allgather collects every member's contribution everywhere.
func (c *Comm) Allgather(data []float64) [][]float64 {
	all := c.Gather(0, data)
	n := len(data)
	var flat []float64
	if c.myRank == 0 {
		for _, chunk := range all {
			flat = append(flat, chunk...)
		}
	}
	flat = c.Bcast(0, flat, 0)
	out := make([][]float64, c.Size())
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	return out
}

// Scatter distributes root's per-member chunks; each member returns
// its own chunk.
func (c *Comm) Scatter(root int, chunks [][]float64) []float64 {
	size := c.Size()
	tag := c.nextCollTag()
	if c.myRank == root {
		if len(chunks) != size {
			panic(fmt.Sprintf("ampi: scatter at root with %d chunks for %d members", len(chunks), size))
		}
		for cr := 0; cr < size; cr++ {
			if cr == root {
				continue
			}
			c.sendColl(cr, tag, chunks[cr], 0)
		}
		return append([]float64(nil), chunks[root]...)
	}
	return c.recvColl(root, tag)
}

// Alltoall exchanges chunk i of each member's input with member i.
func (c *Comm) Alltoall(chunks [][]float64) [][]float64 {
	size := c.Size()
	if len(chunks) != size {
		panic(fmt.Sprintf("ampi: alltoall with %d chunks for %d members", len(chunks), size))
	}
	tag := c.nextCollTag()
	out := make([][]float64, size)
	reqs := make([]*Request, size)
	for cr := 0; cr < size; cr++ {
		if cr == c.myRank {
			out[cr] = append([]float64(nil), chunks[cr]...)
			continue
		}
		reqs[cr] = c.r.irecvComm(c.WorldRank(cr), tag, c.id, true)
	}
	for d := 1; d < size; d++ {
		cr := (c.myRank + d) % size
		c.sendColl(cr, tag, chunks[cr], 0)
	}
	for cr := 0; cr < size; cr++ {
		if cr == c.myRank {
			continue
		}
		out[cr] = c.r.Wait(reqs[cr])
	}
	return out
}

// Scan computes an inclusive prefix reduction along the communicator
// order (MPI_Scan). Linear chain algorithm.
func (c *Comm) Scan(data []float64, op *Op) []float64 {
	size := c.Size()
	tag := c.nextCollTag()
	acc := append([]float64(nil), data...)
	if c.myRank > 0 {
		prev := c.recvColl(c.myRank-1, tag)
		acc = c.r.world.applyOp(op, c.r, prev, acc)
		c.r.world.releaseAfterOp(op, prev)
	}
	if c.myRank < size-1 {
		c.sendColl(c.myRank+1, tag, acc, 0)
	}
	return acc
}

// Exscan computes an exclusive prefix reduction; member 0 returns nil
// (MPI_Exscan).
func (c *Comm) Exscan(data []float64, op *Op) []float64 {
	size := c.Size()
	tag := c.nextCollTag()
	var acc []float64
	if c.myRank > 0 {
		acc = c.recvColl(c.myRank-1, tag)
	}
	if c.myRank < size-1 {
		fwd := c.r.world.copyBuf(data)
		if acc != nil {
			fwd = c.r.world.applyOp(op, c.r, acc, fwd)
		}
		c.sendColl(c.myRank+1, tag, fwd, 0)
		c.r.world.releaseAfterOp(op, fwd)
	}
	return acc
}

// ReduceScatter reduces elementwise then scatters equal chunks
// (MPI_Reduce_scatter_block).
func (c *Comm) ReduceScatter(data []float64, op *Op) []float64 {
	size := c.Size()
	if len(data)%size != 0 {
		panic(fmt.Sprintf("ampi: reduce_scatter input length %d not divisible by %d members", len(data), size))
	}
	full := c.Reduce(0, data, op)
	n := len(data) / size
	var chunks [][]float64
	if c.myRank == 0 {
		chunks = make([][]float64, size)
		for i := range chunks {
			chunks[i] = full[i*n : (i+1)*n]
		}
	}
	return c.Scatter(0, chunks)
}

// Split partitions the communicator by color (MPI_Comm_split): members
// with equal color form a new communicator, ordered by (key, parent
// rank). A negative color (MPI_UNDEFINED) yields nil. Split is a
// collective over the parent communicator.
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) among all members.
	pairs := c.Allgather([]float64{float64(color), float64(key)})

	// The new communicator's id must be identical on every member of a
	// color group and distinct from every other live communicator.
	// Every member computes it locally from (parent id, parent
	// collective sequence, color); the inputs are in lockstep across
	// members because MPI requires collectives in program order, and
	// the mix makes collisions between unrelated splits astronomically
	// unlikely (a simple affine formula collides when colors are large).
	newID := mixCommID(uint64(c.id), uint64(c.collSeq), uint64(color)+1)

	if color < 0 {
		return nil
	}
	type member struct{ commRank, key int }
	var group []member
	for cr, p := range pairs {
		if int(p[0]) == color {
			group = append(group, member{commRank: cr, key: int(p[1])})
		}
	}
	sort.SliceStable(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].commRank < group[j].commRank
	})
	nc := &Comm{r: c.r, id: newID}
	for i, m := range group {
		nc.members = append(nc.members, c.WorldRank(m.commRank))
		if m.commRank == c.myRank {
			nc.myRank = i
		}
	}
	return nc
}

// Dup duplicates the communicator with a fresh id and tag space
// (MPI_Comm_dup). Collective.
func (c *Comm) Dup() *Comm {
	return c.Split(0, c.myRank)
}

// mixCommID derives a communicator id from (parent, seq, color) with a
// splitmix64-style finalizer; the result is positive and nonzero so it
// never aliases WorldComm.
func mixCommID(parent, seq, color uint64) int {
	x := parent*0x9E3779B97F4A7C15 + seq*0xBF58476D1CE4E5B9 + color*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	id := int(x & 0x7FFF_FFFF_FFFF)
	if id == WorldComm {
		id = 1
	}
	return id
}

// --- Rank-level plumbing with explicit communicator ids ---

func (r *Rank) sendComm(dstWorld, tag, comm int, data []float64, bytes uint64) {
	r.checkPeer(dstWorld)
	if tag == AnyTag {
		panic(fmt.Sprintf("ampi: rank %d: send with wildcard tag", r.vp))
	}
	r.sendMsg(dstWorld, tag, comm, data, bytes, false)
}

func (r *Rank) sendInternalComm(dstWorld, tag, comm int, data []float64, bytes uint64) {
	r.sendMsg(dstWorld, tag, comm, data, bytes, true)
}

func (r *Rank) irecvComm(srcWorld, tag, comm int, internal bool) *Request {
	q := &Request{rank: r, src: srcWorld, tag: tag, comm: comm, recv: true, internal: internal}
	w := r.world
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: r.thread.Now(), Kind: trace.KindRecvPost,
			PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(srcWorld),
			Tag: int32(tag), Comm: int64(comm)})
	}
	if m := r.mailbox.take(q); m != nil {
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Time: r.thread.Now(), Kind: trace.KindMatch,
				PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(m.src),
				Tag: int32(m.tag), Aux: trace.MatchOnPost, Comm: int64(m.comm), Bytes: m.bytes})
		}
		r.complete(q, m)
		return q
	}
	r.waits.add(q)
	return q
}
