package ampi

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/ult"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is one point-to-point payload in flight or queued. Envelopes
// are pooled per world: once matching hands the payload to a request,
// the envelope is recycled.
type message struct {
	src      int // world rank
	tag      int
	comm     int // communicator id (WorldComm for rank-level ops)
	bytes    uint64
	data     []float64
	internal bool   // collective plumbing; never matches user wildcards
	dst      *Rank  // receiver, so delivery events need no closure
	seq      uint64 // arrival order within the receiver's mailbox
}

// Request is a nonblocking-operation handle.
type Request struct {
	rank     *Rank
	src, tag int
	comm     int
	internal bool
	recv     bool
	done     bool
	blocked  bool   // owner thread suspended in Wait on this request
	seq      uint64 // posting order within the rank's receive queue
	// Completion record, copied out of the matched message so its
	// envelope can be recycled immediately.
	data           []float64
	gotSrc, gotTag int
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// Rank is one virtual MPI rank: a migratable user-level thread with a
// privatized view of the program's global state.
type Rank struct {
	world  *World
	vp     int
	ctx    *core.RankContext
	thread *ult.Thread
	// pe is the rank's current (or, mid-migration, destination)
	// processing element. Maintained by the world so that message
	// routing works even while the rank's thread is in flight between
	// schedulers.
	pe *machine.PE

	mailbox msgStore // unexpected messages, hash-indexed, FIFO
	waits   reqStore // posted receive requests, hash-indexed, FIFO

	// world0 caches MPI_COMM_WORLD for the rank-level collectives.
	world0 *Comm
}

// Rank reports the MPI rank number (MPI_Comm_rank).
func (r *Rank) Rank() int { return r.vp }

// Size reports the number of ranks (MPI_Comm_size).
func (r *Rank) Size() int { return len(r.world.Ranks) }

// Ctx exposes the rank's privatization context: the program's view of
// its global/static variables under the active method.
func (r *Rank) Ctx() *core.RankContext { return r.ctx }

// World returns the job the rank belongs to.
func (r *Rank) World() *World { return r.world }

// PE returns the processing element currently hosting the rank (the
// destination PE while a migration is in flight).
func (r *Rank) PE() *machine.PE { return r.pe }

// Wtime reports the rank's PE-local virtual clock (MPI_Wtime).
func (r *Rank) Wtime() sim.Time { return r.thread.Now() }

// Compute charges d of application compute time to the rank.
func (r *Rank) Compute(d sim.Time) { r.thread.Advance(d) }

// Yield cooperatively yields the PE to other ready ranks.
func (r *Rank) Yield() { r.thread.Yield() }

// Thread exposes the rank's user-level thread.
func (r *Rank) Thread() *ult.Thread { return r.thread }

func (r *Rank) checkUserTag(tag int) {
	if tag < 0 && tag != AnyTag {
		panic(fmt.Sprintf("ampi: rank %d: negative tag %d is reserved", r.vp, tag))
	}
}

func (r *Rank) checkPeer(peer int) {
	if peer < 0 || peer >= len(r.world.Ranks) {
		panic(fmt.Sprintf("ampi: rank %d: peer %d out of range [0,%d)", r.vp, peer, len(r.world.Ranks)))
	}
}

// Send is a standard-mode (eager) send of a message with the given
// payload; bytes models the wire size and may exceed the payload (halo
// exchanges carry modeled bulk without materializing it).
func (r *Rank) Send(dst, tag int, data []float64, bytes uint64) {
	r.checkUserTag(tag)
	if tag == AnyTag {
		panic(fmt.Sprintf("ampi: rank %d: send with wildcard tag", r.vp))
	}
	r.checkPeer(dst)
	r.sendMsg(dst, tag, WorldComm, data, bytes, false)
}

func (r *Rank) sendMsg(dst, tag, comm int, data []float64, bytes uint64, internal bool) {
	w := r.world
	if bytes == 0 {
		bytes = uint64(len(data)) * 8
		if bytes == 0 {
			bytes = 8
		}
	}
	r.thread.Advance(w.Cluster.Cost.MsgSendOverhead)
	dstRank := w.Ranks[dst]
	var payload []float64
	if data != nil {
		payload = w.copyBuf(data)
	}
	m := w.getMsg()
	m.src, m.tag, m.comm, m.bytes, m.data, m.internal, m.dst =
		r.vp, tag, comm, bytes, payload, internal, dstRank
	depart := r.thread.Now()
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: depart, Kind: trace.KindSendPost,
			PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(dst),
			Tag: int32(tag), Comm: int64(comm), Bytes: bytes})
	}
	arrive := w.Cluster.Transfer(depart, r.PE(), dstRank.PE(), bytes)
	w.Cluster.Engine.AtCall(arrive, deliverMsg, m)
}

// deliverMsg is the shared delivery trampoline: the message itself
// carries its destination, so scheduling a delivery allocates neither
// a closure nor an event node (both are pooled).
func deliverMsg(x any) {
	m := x.(*message)
	m.dst.deliver(m)
}

// complete hands a matched message's payload to the request and
// recycles the envelope.
func (r *Rank) complete(q *Request, m *message) {
	q.data, q.gotSrc, q.gotTag = m.data, m.src, m.tag
	q.done = true
	r.world.putMsg(m)
}

// deliver lands a message at the rank (runs as an engine event). A
// matching posted receive completes; otherwise the message queues as
// unexpected.
func (r *Rank) deliver(m *message) {
	w := r.world
	if q := r.waits.match(m); q != nil {
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Time: w.Cluster.Engine.Now(), Kind: trace.KindMatch,
				PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(m.src),
				Tag: int32(m.tag), Aux: trace.MatchOnDeliver, Comm: int64(m.comm), Bytes: m.bytes})
		}
		r.complete(q, m)
		if q.blocked {
			q.blocked = false
			r.thread.Wake()
		}
		return
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: w.Cluster.Engine.Now(), Kind: trace.KindUnexpected,
			PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(m.src),
			Tag: int32(m.tag), Comm: int64(m.comm), Bytes: m.bytes})
	}
	r.mailbox.add(m)
}

// Irecv posts a nonblocking receive.
func (r *Rank) Irecv(src, tag int) *Request {
	if src != AnySource {
		r.checkPeer(src)
	}
	r.checkUserTag(tag)
	return r.irecvComm(src, tag, WorldComm, false)
}

// Isend starts a nonblocking send. Sends are eager and buffered, so
// the returned request is already complete; it exists for call-site
// symmetry with MPI programs.
func (r *Rank) Isend(dst, tag int, data []float64, bytes uint64) *Request {
	r.Send(dst, tag, data, bytes)
	return &Request{rank: r, done: true}
}

// Wait blocks until the request completes and returns the received
// payload (nil for sends).
func (r *Rank) Wait(q *Request) []float64 {
	if q.rank != r {
		panic(fmt.Sprintf("ampi: rank %d waiting on rank %d's request", r.vp, q.rank.vp))
	}
	if !q.done {
		q.blocked = true
		w := r.world
		var wstart sim.Time
		if w.tracer != nil {
			wstart = r.thread.Now()
		}
		r.thread.Suspend()
		if !q.done {
			panic(fmt.Sprintf("ampi: rank %d woke from Wait with incomplete request", r.vp))
		}
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Time: wstart, Dur: r.thread.Now() - wstart, Kind: trace.KindWait,
				PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(q.gotSrc),
				Tag: int32(q.gotTag), Aux: trace.WaitMessage, Comm: int64(q.comm)})
		}
	}
	r.thread.Advance(r.world.Cluster.Cost.MsgRecvOverhead)
	return q.data
}

// Waitall completes all requests, returning payloads in request order.
func (r *Rank) Waitall(qs []*Request) [][]float64 {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		out[i] = r.Wait(q)
	}
	return out
}

// Recv blocks until a matching message arrives and returns its payload.
func (r *Rank) Recv(src, tag int) []float64 {
	return r.Wait(r.Irecv(src, tag))
}

// RecvMsg is Recv returning the full envelope (source and tag), for
// wildcard receives.
func (r *Rank) RecvMsg(src, tag int) (data []float64, from, msgTag int) {
	q := r.Irecv(src, tag)
	data = r.Wait(q)
	return data, q.gotSrc, q.gotTag
}

// Sendrecv performs a combined send and receive without deadlock.
func (r *Rank) Sendrecv(dst, sendTag int, data []float64, bytes uint64, src, recvTag int) []float64 {
	q := r.Irecv(src, recvTag)
	r.Send(dst, sendTag, data, bytes)
	return r.Wait(q)
}

// Probe reports whether a matching message is queued, without
// consuming it.
func (r *Rank) Probe(src, tag int) bool {
	return r.mailbox.probe(&Request{src: src, tag: tag})
}
