package ampi

import (
	"fmt"

	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/ult"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// message is one point-to-point payload in flight or queued.
type message struct {
	src      int // world rank
	tag      int
	comm     int // communicator id (WorldComm for rank-level ops)
	bytes    uint64
	data     []float64
	internal bool // collective plumbing; never matches user wildcards
}

// Request is a nonblocking-operation handle.
type Request struct {
	rank     *Rank
	src, tag int
	comm     int
	internal bool
	recv     bool
	done     bool
	msg      *message
	blocked  bool // owner thread suspended in Wait on this request
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// Rank is one virtual MPI rank: a migratable user-level thread with a
// privatized view of the program's global state.
type Rank struct {
	world  *World
	vp     int
	ctx    *core.RankContext
	thread *ult.Thread
	// pe is the rank's current (or, mid-migration, destination)
	// processing element. Maintained by the world so that message
	// routing works even while the rank's thread is in flight between
	// schedulers.
	pe *machine.PE

	mailbox []*message // unexpected messages, FIFO
	waits   []*Request // posted receive requests, FIFO

	// world0 caches MPI_COMM_WORLD for the rank-level collectives.
	world0 *Comm
}

// Rank reports the MPI rank number (MPI_Comm_rank).
func (r *Rank) Rank() int { return r.vp }

// Size reports the number of ranks (MPI_Comm_size).
func (r *Rank) Size() int { return len(r.world.Ranks) }

// Ctx exposes the rank's privatization context: the program's view of
// its global/static variables under the active method.
func (r *Rank) Ctx() *core.RankContext { return r.ctx }

// World returns the job the rank belongs to.
func (r *Rank) World() *World { return r.world }

// PE returns the processing element currently hosting the rank (the
// destination PE while a migration is in flight).
func (r *Rank) PE() *machine.PE { return r.pe }

// Wtime reports the rank's PE-local virtual clock (MPI_Wtime).
func (r *Rank) Wtime() sim.Time { return r.thread.Now() }

// Compute charges d of application compute time to the rank.
func (r *Rank) Compute(d sim.Time) { r.thread.Advance(d) }

// Yield cooperatively yields the PE to other ready ranks.
func (r *Rank) Yield() { r.thread.Yield() }

// Thread exposes the rank's user-level thread.
func (r *Rank) Thread() *ult.Thread { return r.thread }

func (r *Rank) checkUserTag(tag int) {
	if tag < 0 && tag != AnyTag {
		panic(fmt.Sprintf("ampi: rank %d: negative tag %d is reserved", r.vp, tag))
	}
}

func (r *Rank) checkPeer(peer int) {
	if peer < 0 || peer >= len(r.world.Ranks) {
		panic(fmt.Sprintf("ampi: rank %d: peer %d out of range [0,%d)", r.vp, peer, len(r.world.Ranks)))
	}
}

// Send is a standard-mode (eager) send of a message with the given
// payload; bytes models the wire size and may exceed the payload (halo
// exchanges carry modeled bulk without materializing it).
func (r *Rank) Send(dst, tag int, data []float64, bytes uint64) {
	r.checkUserTag(tag)
	if tag == AnyTag {
		panic(fmt.Sprintf("ampi: rank %d: send with wildcard tag", r.vp))
	}
	r.checkPeer(dst)
	r.sendMsg(dst, tag, WorldComm, data, bytes, false)
}

func (r *Rank) sendMsg(dst, tag, comm int, data []float64, bytes uint64, internal bool) {
	w := r.world
	if bytes == 0 {
		bytes = uint64(len(data)) * 8
		if bytes == 0 {
			bytes = 8
		}
	}
	r.thread.Advance(w.Cluster.Cost.MsgSendOverhead)
	dstRank := w.Ranks[dst]
	var payload []float64
	if data != nil {
		payload = append([]float64(nil), data...)
	}
	m := &message{src: r.vp, tag: tag, comm: comm, bytes: bytes, data: payload, internal: internal}
	arrive := r.thread.Now() + w.Cluster.TransferTime(r.PE(), dstRank.PE(), bytes)
	w.Cluster.Engine.At(arrive, func() { dstRank.deliver(m) })
}

// match reports whether a posted request accepts a message.
func match(q *Request, m *message) bool {
	if q.internal != m.internal || q.comm != m.comm {
		return false
	}
	if q.src != AnySource && q.src != m.src {
		return false
	}
	if q.tag != AnyTag && q.tag != m.tag {
		return false
	}
	return true
}

// deliver lands a message at the rank (runs as an engine event). A
// matching posted receive completes; otherwise the message queues as
// unexpected.
func (r *Rank) deliver(m *message) {
	for i, q := range r.waits {
		if match(q, m) {
			r.waits = append(r.waits[:i], r.waits[i+1:]...)
			q.msg = m
			q.done = true
			if q.blocked {
				q.blocked = false
				r.thread.Wake()
			}
			return
		}
	}
	r.mailbox = append(r.mailbox, m)
}

// Irecv posts a nonblocking receive.
func (r *Rank) Irecv(src, tag int) *Request {
	if src != AnySource {
		r.checkPeer(src)
	}
	r.checkUserTag(tag)
	return r.irecvComm(src, tag, WorldComm, false)
}

// Isend starts a nonblocking send. Sends are eager and buffered, so
// the returned request is already complete; it exists for call-site
// symmetry with MPI programs.
func (r *Rank) Isend(dst, tag int, data []float64, bytes uint64) *Request {
	r.Send(dst, tag, data, bytes)
	return &Request{rank: r, done: true}
}

// Wait blocks until the request completes and returns the received
// payload (nil for sends).
func (r *Rank) Wait(q *Request) []float64 {
	if q.rank != r {
		panic(fmt.Sprintf("ampi: rank %d waiting on rank %d's request", r.vp, q.rank.vp))
	}
	if !q.done {
		q.blocked = true
		r.thread.Suspend()
		if !q.done {
			panic(fmt.Sprintf("ampi: rank %d woke from Wait with incomplete request", r.vp))
		}
	}
	r.thread.Advance(r.world.Cluster.Cost.MsgRecvOverhead)
	if q.msg != nil {
		return q.msg.data
	}
	return nil
}

// Waitall completes all requests, returning payloads in request order.
func (r *Rank) Waitall(qs []*Request) [][]float64 {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		out[i] = r.Wait(q)
	}
	return out
}

// Recv blocks until a matching message arrives and returns its payload.
func (r *Rank) Recv(src, tag int) []float64 {
	return r.Wait(r.Irecv(src, tag))
}

// RecvMsg is Recv returning the full envelope (source and tag), for
// wildcard receives.
func (r *Rank) RecvMsg(src, tag int) (data []float64, from, msgTag int) {
	q := r.Irecv(src, tag)
	data = r.Wait(q)
	return data, q.msg.src, q.msg.tag
}

// Sendrecv performs a combined send and receive without deadlock.
func (r *Rank) Sendrecv(dst, sendTag int, data []float64, bytes uint64, src, recvTag int) []float64 {
	q := r.Irecv(src, recvTag)
	r.Send(dst, sendTag, data, bytes)
	return r.Wait(q)
}

// Probe reports whether a matching message is queued, without
// consuming it.
func (r *Rank) Probe(src, tag int) bool {
	q := &Request{src: src, tag: tag}
	for _, m := range r.mailbox {
		if match(q, m) {
			return true
		}
	}
	return false
}
