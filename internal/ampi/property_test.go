package ampi_test

import (
	"math"
	"testing"
	"testing/quick"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

// TestCollectivesMatchSequentialOracle: for random rank counts,
// machine shapes, and contributions, every reduction collective
// matches a sequential computation of the same combination.
func TestCollectivesMatchSequentialOracle(t *testing.T) {
	f := func(raw []int16, shape uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		v := len(raw)
		pes := int(shape%4) + 1
		contrib := make([]float64, v)
		for i, x := range raw {
			contrib[i] = float64(x)
		}

		// Sequential oracles.
		var oracleSum, oracleMax float64
		oracleMax = math.Inf(-1)
		for _, x := range contrib {
			oracleSum += x
			oracleMax = math.Max(oracleMax, x)
		}
		oracleScan := make([]float64, v)
		run := 0.0
		for i, x := range contrib {
			run += x
			oracleScan[i] = run
		}

		sums := make([]float64, v)
		maxes := make([]float64, v)
		scans := make([]float64, v)
		prog := &ampi.Program{
			Image: synth.EmptyImage(),
			Main: func(r *ampi.Rank) {
				me := contrib[r.Rank()]
				sums[r.Rank()] = r.Allreduce([]float64{me}, ampi.OpSum)[0]
				maxes[r.Rank()] = r.Allreduce([]float64{me}, ampi.OpMax)[0]
				scans[r.Rank()] = r.Scan([]float64{me}, ampi.OpSum)[0]
			},
		}
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: pes},
			VPs:       v,
			Privatize: core.KindPIEglobals,
		}, prog)
		if err != nil {
			return false
		}
		if err := w.Run(); err != nil {
			return false
		}
		const eps = 1e-9
		for vp := 0; vp < v; vp++ {
			if math.Abs(sums[vp]-oracleSum) > eps*math.Max(1, math.Abs(oracleSum)) {
				return false
			}
			if maxes[vp] != oracleMax {
				return false
			}
			if math.Abs(scans[vp]-oracleScan[vp]) > eps*math.Max(1, math.Abs(oracleScan[vp])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
