package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/workloads/synth"
)

// migrationImage carries a tagged global so the value travels with the
// rank under every migratable method.
func migrationImage() *elf.Image {
	return elf.NewBuilder("migrator").
		TaggedGlobal("state", 0).
		Func("main", 2048).
		CodeBulk(1 << 20).
		MustBuild()
}

// TestMigrationPreservesState moves every rank to another process mid-
// run and verifies privatized globals and heap contents survive.
func TestMigrationPreservesState(t *testing.T) {
	for _, kind := range []core.Kind{core.KindManual, core.KindTLSglobals, core.KindPIEglobals} {
		t.Run(kind.String(), func(t *testing.T) {
			finalVals := make([]uint64, 4)
			heapVals := make([]uint64, 4)
			startPEs := make([]int, 4)
			endPEs := make([]int, 4)
			prog := &ampi.Program{
				Image: migrationImage(),
				Main: func(r *ampi.Rank) {
					me := uint64(r.Rank())
					r.Ctx().Store("state", me*1000+7)
					blk, err := r.Ctx().Heap.Alloc(64, "payload")
					if err != nil {
						panic(err)
					}
					blk.Words[3] = me + 500
					startPEs[r.Rank()] = r.PE().ID
					r.Migrate()
					endPEs[r.Rank()] = r.PE().ID
					finalVals[r.Rank()] = r.Ctx().Load("state")
					// Re-find the block through the (restored) heap.
					nb := r.Ctx().Heap.Lookup(blk.Addr)
					if nb == nil {
						panic("heap block lost after migration")
					}
					heapVals[r.Rank()] = nb.Words[3]
				},
			}
			cfg := ampi.Config{
				Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
				VPs:       4,
				Privatize: kind,
				Balancer:  lb.RotateLB{},
			}
			w := runProgram(t, cfg, prog)
			if w.Migrations != 4 {
				t.Fatalf("completed %d migrations, want 4", w.Migrations)
			}
			for vp := 0; vp < 4; vp++ {
				if endPEs[vp] != (startPEs[vp]+1)%4 {
					t.Errorf("rank %d moved %d->%d, want next PE", vp, startPEs[vp], endPEs[vp])
				}
				if finalVals[vp] != uint64(vp)*1000+7 {
					t.Errorf("rank %d privatized state = %d after migration", vp, finalVals[vp])
				}
				if heapVals[vp] != uint64(vp)+500 {
					t.Errorf("rank %d heap word = %d after migration", vp, heapVals[vp])
				}
			}
		})
	}
}

// TestMigrationRefusedForNonMigratableMethods verifies the runtime
// fails loudly if a balancer tries to move a PIPglobals or FSglobals
// rank.
func TestMigrationRefusedForNonMigratableMethods(t *testing.T) {
	for _, kind := range []core.Kind{core.KindPIPglobals, core.KindFSglobals} {
		t.Run(kind.String(), func(t *testing.T) {
			prog := &ampi.Program{
				Image: migrationImage(),
				Main: func(r *ampi.Rank) {
					r.Migrate()
				},
			}
			cfg := ampi.Config{
				Machine:   machine.Config{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 1},
				VPs:       2,
				Privatize: kind,
				Balancer:  forceRotate{},
			}
			w, err := ampi.NewWorld(cfg, prog)
			if err != nil {
				t.Fatalf("NewWorld: %v", err)
			}
			if err := w.Run(); err == nil {
				t.Fatal("expected run to fail when balancer moves a non-migratable rank")
			}
		})
	}
}

// forceRotate ignores the Migratable flag — modeling a buggy balancer —
// to prove the runtime itself enforces migratability.
type forceRotate struct{}

func (forceRotate) Name() string { return "forceRotate" }
func (forceRotate) Rebalance(loads []lb.RankLoad, numPEs int) []int {
	out := make([]int, len(loads))
	for i, l := range loads {
		out[i] = (l.PE + 1) % numPEs
	}
	return out
}

// TestRotateLBHonorsMigratability: the stock RotateLB keeps
// non-migratable ranks put, so the run succeeds without moving them.
func TestRotateLBHonorsMigratability(t *testing.T) {
	prog := &ampi.Program{
		Image: migrationImage(),
		Main:  func(r *ampi.Rank) { r.Migrate() },
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 2, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIPglobals,
		Balancer:  lb.RotateLB{},
	}
	w := runProgram(t, cfg, prog)
	if w.Migrations != 0 {
		t.Fatalf("%d migrations of non-migratable ranks", w.Migrations)
	}
}

// TestPIEMigrationCarriesCodeSegment verifies PIEglobals migration
// payloads include the duplicated code and data segments while
// TLSglobals payloads do not (the Fig. 8 asymmetry).
func TestPIEMigrationCarriesCodeSegment(t *testing.T) {
	codeSize := uint64(4 << 20)
	img := elf.NewBuilder("bigcode").
		TaggedGlobal("g", 0).
		Func("main", 2048).
		CodeBulk(codeSize).
		MustBuild()
	bytesFor := func(kind core.Kind) uint64 {
		prog := &ampi.Program{Image: img, Main: func(r *ampi.Rank) { r.Migrate() }}
		cfg := ampi.Config{
			Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
			VPs:       1,
			Privatize: kind,
			Balancer:  lb.RotateLB{},
		}
		w := runProgram(t, cfg, prog)
		if w.Migrations != 1 {
			t.Fatalf("%s: %d migrations, want 1", kind, w.Migrations)
		}
		return w.MigratedBytes
	}
	tlsBytes := bytesFor(core.KindTLSglobals)
	pieBytes := bytesFor(core.KindPIEglobals)
	if pieBytes < tlsBytes+codeSize {
		t.Fatalf("PIE migration moved %d bytes, TLS %d; PIE should additionally carry the %d-byte code segment",
			pieBytes, tlsBytes, codeSize)
	}
}

// TestMigrationAcrossNodesSendRecvAfter verifies a migrated rank keeps
// communicating correctly from its new placement.
func TestMigrationAcrossNodesSendRecvAfter(t *testing.T) {
	var got float64
	prog := &ampi.Program{
		Image: migrationImage(),
		Main: func(r *ampi.Rank) {
			r.Migrate()
			if r.Rank() == 0 {
				r.Send(1, 9, []float64{3.25}, 0)
			} else if r.Rank() == 1 {
				got = r.Recv(0, 9)[0]
			}
			r.Barrier()
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 2, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIEglobals,
		Balancer:  lb.RotateLB{},
	}
	w := runProgram(t, cfg, prog)
	if got != 3.25 {
		t.Fatalf("post-migration recv got %v", got)
	}
	if w.Migrations != 2 {
		t.Fatalf("%d migrations, want 2", w.Migrations)
	}
}

// TestGreedyLBBalancesLoad checks that an imbalanced compute-bound run
// under GreedyLB moves work off the hot PE.
func TestGreedyLBBalancesLoad(t *testing.T) {
	// 8 ranks all start on PE 0's half; rank loads are skewed.
	loads := []int64{8, 1, 1, 1, 8, 1, 1, 1}
	perRank := make([]sim.Time, len(loads))
	for i, l := range loads {
		perRank[i] = sim.Time(l) * 1e6
	}
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			r.Compute(perRank[r.Rank()])
			r.Migrate()
			r.Compute(perRank[r.Rank()])
			r.Barrier()
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:       8,
		Privatize: core.KindPIEglobals,
		Balancer:  lb.GreedyLB{},
	}
	w := runProgram(t, cfg, prog)
	if w.Migrations == 0 {
		t.Fatal("GreedyLB performed no migrations on a skewed load")
	}
	// After balancing, the two heavy ranks (0 and 4) must not share a
	// PE.
	if w.Ranks[0].PE() == w.Ranks[4].PE() {
		t.Error("heavy ranks still share a PE after GreedyLB")
	}
}
