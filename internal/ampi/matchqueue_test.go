package ampi

import "testing"

// The hash-indexed queues must reproduce the seed's linear-scan
// semantics exactly: earliest arrival wins on the message side,
// earliest posting wins on the receive side, wildcards included.

func msg(src, tag, comm int, internal bool) *message {
	return &message{src: src, tag: tag, comm: comm, internal: internal}
}

func req(src, tag, comm int, internal bool) *Request {
	return &Request{src: src, tag: tag, comm: comm, internal: internal, recv: true}
}

func TestMsgStoreExactFIFO(t *testing.T) {
	var s msgStore
	a, b := msg(1, 5, 0, false), msg(1, 5, 0, false)
	s.add(a)
	s.add(b)
	if got := s.take(req(1, 5, 0, false)); got != a {
		t.Fatal("exact take did not return the earliest arrival")
	}
	if got := s.take(req(1, 5, 0, false)); got != b {
		t.Fatal("second take did not return the second arrival")
	}
	if s.take(req(1, 5, 0, false)) != nil || s.n != 0 {
		t.Fatal("store not empty after draining")
	}
}

func TestMsgStoreWildcardTakesEarliestAcrossBuckets(t *testing.T) {
	var s msgStore
	first := msg(2, 9, 0, false)
	s.add(msg(1, 5, 0, true)) // internal: invisible to user wildcards
	s.add(first)
	s.add(msg(3, 9, 0, false))
	s.add(msg(2, 4, 0, false))

	if got := s.take(req(AnySource, 9, 0, false)); got != first {
		t.Fatalf("wildcard-source take returned src=%d tag=%d, want the earliest tag-9 message", got.src, got.tag)
	}
	// Next any/any match must be the tag-9 from src 3 (arrived before
	// the tag-4 message).
	if got := s.take(req(AnySource, AnyTag, 0, false)); got.src != 3 || got.tag != 9 {
		t.Fatalf("any/any take returned src=%d tag=%d, want src=3 tag=9", got.src, got.tag)
	}
	if got := s.take(req(2, AnyTag, 0, false)); got.tag != 4 {
		t.Fatalf("wildcard-tag take returned tag=%d, want 4", got.tag)
	}
	// Only the internal message remains; user wildcards must not see it.
	if s.take(req(AnySource, AnyTag, 0, false)) != nil {
		t.Fatal("user wildcard matched an internal message")
	}
	if s.take(req(1, 5, 0, true)) == nil {
		t.Fatal("internal receive missed the internal message")
	}
}

func TestMsgStoreCommIsolation(t *testing.T) {
	var s msgStore
	s.add(msg(0, 3, 7, false))
	if s.take(req(0, 3, 8, false)) != nil {
		t.Fatal("matched across communicators")
	}
	if !s.probe(req(AnySource, AnyTag, 7, false)) {
		t.Fatal("probe missed a queued message in its communicator")
	}
	if s.probe(req(AnySource, AnyTag, 8, false)) {
		t.Fatal("probe matched across communicators")
	}
}

func TestReqStoreEarliestPostedWins(t *testing.T) {
	var s reqStore
	wild := req(AnySource, 5, 0, false)
	exact := req(1, 5, 0, false)
	s.add(wild)  // posted first
	s.add(exact) // posted second, same envelope coverage
	if got := s.match(msg(1, 5, 0, false)); got != wild {
		t.Fatal("message matched the later-posted exact receive over the earlier wildcard")
	}
	if got := s.match(msg(1, 5, 0, false)); got != exact {
		t.Fatal("second message missed the remaining exact receive")
	}
	if s.match(msg(1, 5, 0, false)) != nil || s.n != 0 {
		t.Fatal("store not empty after draining")
	}
}

func TestReqStoreExactBeforeLaterWildcard(t *testing.T) {
	var s reqStore
	exact := req(1, 5, 0, false)
	wild := req(AnySource, AnyTag, 0, false)
	s.add(exact)
	s.add(wild)
	if got := s.match(msg(1, 5, 0, false)); got != exact {
		t.Fatal("message skipped the earlier-posted exact receive")
	}
	if got := s.match(msg(2, 6, 0, false)); got != wild {
		t.Fatal("message missed the wildcard receive")
	}
}

func TestStoresSpillAndDrainBackToLinear(t *testing.T) {
	// Push both stores well past spillThreshold so the indexed paths
	// run, then drain in an order that exercises FIFO across the
	// linear→indexed boundary, and check they fall back to linear mode.
	const n = 3 * spillThreshold
	var ms msgStore
	for i := 0; i < n; i++ {
		ms.add(msg(i%4, i%7, 0, false))
	}
	if !ms.spilled {
		t.Fatalf("msgStore not spilled at %d entries", n)
	}
	var prevSeq uint64
	for i := 0; i < n; i++ {
		m := ms.take(req(AnySource, AnyTag, 0, false))
		if m == nil {
			t.Fatalf("take %d returned nil", i)
		}
		if i > 0 && m.seq <= prevSeq {
			t.Fatalf("take %d broke arrival order: seq %d after %d", i, m.seq, prevSeq)
		}
		prevSeq = m.seq
	}
	if ms.n != 0 || ms.spilled {
		t.Fatalf("msgStore did not drain back to linear mode: n=%d spilled=%v", ms.n, ms.spilled)
	}

	var rs reqStore
	reqs := make([]*Request, n)
	for i := 0; i < n; i++ {
		if i%5 == 0 {
			reqs[i] = req(AnySource, i%7, 0, false)
		} else {
			reqs[i] = req(i%4, i%7, 0, false)
		}
		rs.add(reqs[i])
	}
	if !rs.spilled {
		t.Fatalf("reqStore not spilled at %d entries", n)
	}
	for i := 0; i < n; i++ {
		// Each message's envelope matches exactly one remaining receive
		// pattern family; earliest-posted must win.
		got := rs.match(&message{src: reqs[i].src, tag: reqs[i].tag, comm: 0})
		if reqs[i].src == AnySource {
			// A wildcard receive may be beaten only by an earlier entry;
			// reqs[i] is the earliest matching by construction order.
			if got == nil || got.seq > reqs[i].seq {
				t.Fatalf("match %d returned a later receive", i)
			}
		} else if got != reqs[i] {
			t.Fatalf("match %d did not return the earliest posted receive", i)
		}
	}
	if rs.n != 0 || rs.spilled {
		t.Fatalf("reqStore did not drain back to linear mode: n=%d spilled=%v", rs.n, rs.spilled)
	}
}

func TestReqStoreNoMatchLeavesQueue(t *testing.T) {
	var s reqStore
	s.add(req(1, 5, 0, false))
	if s.match(msg(1, 6, 0, false)) != nil {
		t.Fatal("tag mismatch matched")
	}
	if s.match(msg(2, 5, 0, false)) != nil {
		t.Fatal("source mismatch matched")
	}
	if s.match(msg(1, 5, 0, true)) != nil {
		t.Fatal("internal flag mismatch matched")
	}
	if s.n != 1 {
		t.Fatalf("queue length %d after failed matches, want 1", s.n)
	}
}
