package ampi_test

import (
	"math"
	"sync"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

// runProgram builds and runs a program on the given machine shape,
// failing the test on any error.
func runProgram(t *testing.T, cfg ampi.Config, prog *ampi.Program) *ampi.World {
	t.Helper()
	w, err := ampi.NewWorld(cfg, prog)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return w
}

func mediumConfig(v int) ampi.Config {
	return ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       v,
		Privatize: core.KindPIEglobals,
	}
}

func TestSendRecvBasic(t *testing.T) {
	var got []float64
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			if r.Rank() == 0 {
				r.Send(1, 7, []float64{1, 2, 3}, 0)
			} else if r.Rank() == 1 {
				got = r.Recv(0, 7)
			}
		},
	}
	runProgram(t, mediumConfig(2), prog)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("received %v, want [1 2 3]", got)
	}
}

func TestRecvWildcards(t *testing.T) {
	order := make([]int, 0, 3)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			if r.Rank() == 0 {
				for i := 0; i < 3; i++ {
					_, from, _ := r.RecvMsg(ampi.AnySource, ampi.AnyTag)
					order = append(order, from)
				}
			} else {
				r.Send(0, r.Rank(), []float64{float64(r.Rank())}, 0)
			}
		},
	}
	runProgram(t, mediumConfig(4), prog)
	if len(order) != 3 {
		t.Fatalf("root received %d messages, want 3", len(order))
	}
	seen := map[int]bool{}
	for _, s := range order {
		seen[s] = true
	}
	if len(seen) != 3 {
		t.Fatalf("duplicate senders in %v", order)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	const n = 20
	var got []float64
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			if r.Rank() == 0 {
				for i := 0; i < n; i++ {
					r.Send(1, 5, []float64{float64(i)}, 0)
				}
			} else {
				for i := 0; i < n; i++ {
					got = append(got, r.Recv(0, 5)[0])
				}
			}
		},
	}
	runProgram(t, mediumConfig(2), prog)
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("message %d out of order: got %v", i, got)
		}
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	sums := make([]float64, 8)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			size := r.Size()
			reqs := make([]*ampi.Request, 0, size-1)
			for p := 0; p < size; p++ {
				if p == r.Rank() {
					continue
				}
				reqs = append(reqs, r.Irecv(p, 3))
			}
			for p := 0; p < size; p++ {
				if p == r.Rank() {
					continue
				}
				r.Isend(p, 3, []float64{float64(r.Rank())}, 0)
			}
			for _, data := range r.Waitall(reqs) {
				sums[r.Rank()] += data[0]
			}
		},
	}
	runProgram(t, mediumConfig(8), prog)
	for vp, s := range sums {
		want := float64(0+1+2+3+4+5+6+7) - float64(vp)
		if s != want {
			t.Errorf("rank %d sum %v, want %v", vp, s, want)
		}
	}
}

func TestBcastAllShapes(t *testing.T) {
	for _, v := range []int{1, 2, 3, 5, 8, 13, 16} {
		vals := make([]float64, v)
		prog := &ampi.Program{
			Image: synth.EmptyImage(),
			Main: func(r *ampi.Rank) {
				var data []float64
				root := r.Size() / 2
				if r.Rank() == root {
					data = []float64{42.5}
				}
				out := r.Bcast(root, data, 0)
				vals[r.Rank()] = out[0]
			},
		}
		runProgram(t, mediumConfig(v), prog)
		for vp, x := range vals {
			if x != 42.5 {
				t.Errorf("v=%d rank %d got %v", v, vp, x)
			}
		}
	}
}

func TestReduceAllreduce(t *testing.T) {
	for _, v := range []int{1, 2, 4, 7, 16} {
		results := make([]float64, v)
		maxes := make([]float64, v)
		prog := &ampi.Program{
			Image: synth.EmptyImage(),
			Main: func(r *ampi.Rank) {
				me := float64(r.Rank() + 1)
				sum := r.Allreduce([]float64{me}, ampi.OpSum)
				results[r.Rank()] = sum[0]
				mx := r.Allreduce([]float64{me}, ampi.OpMax)
				maxes[r.Rank()] = mx[0]
			},
		}
		runProgram(t, mediumConfig(v), prog)
		want := float64(v*(v+1)) / 2
		for vp := range results {
			if results[vp] != want {
				t.Errorf("v=%d rank %d allreduce sum %v, want %v", v, vp, results[vp], want)
			}
			if maxes[vp] != float64(v) {
				t.Errorf("v=%d rank %d allreduce max %v, want %v", v, vp, maxes[vp], float64(v))
			}
		}
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	const v = 6
	var gathered [][]float64
	scattered := make([]float64, v)
	allgathered := make([][][]float64, v)
	alltoall := make([][][]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			me := float64(r.Rank())
			g := r.Gather(0, []float64{me, me * 10})
			if r.Rank() == 0 {
				gathered = g
			}
			var chunks [][]float64
			if r.Rank() == 0 {
				chunks = make([][]float64, v)
				for i := range chunks {
					chunks[i] = []float64{float64(i) * 2}
				}
			}
			scattered[r.Rank()] = r.Scatter(0, chunks)[0]
			allgathered[r.Rank()] = r.Allgather([]float64{me})
			mine := make([][]float64, v)
			for i := range mine {
				mine[i] = []float64{me*100 + float64(i)}
			}
			alltoall[r.Rank()] = r.Alltoall(mine)
		},
	}
	runProgram(t, mediumConfig(v), prog)
	for vp, chunk := range gathered {
		if chunk[0] != float64(vp) || chunk[1] != float64(vp)*10 {
			t.Errorf("gather chunk %d = %v", vp, chunk)
		}
	}
	for vp, x := range scattered {
		if x != float64(vp)*2 {
			t.Errorf("scatter rank %d = %v", vp, x)
		}
	}
	for vp, all := range allgathered {
		for p, chunk := range all {
			if chunk[0] != float64(p) {
				t.Errorf("allgather at %d chunk %d = %v", vp, p, chunk)
			}
		}
	}
	for vp, all := range alltoall {
		for p, chunk := range all {
			if chunk[0] != float64(p)*100+float64(vp) {
				t.Errorf("alltoall at %d from %d = %v", vp, p, chunk)
			}
		}
	}
}

func TestUserDefinedOpOffsetTranslation(t *testing.T) {
	// A user-defined "sum of squares" operator must work under
	// PIEglobals, where every rank's copy of the function lives at a
	// different address (§3.3).
	img := elf.NewBuilder("userop").
		Global("g", 0).
		Func("main", 1024).
		Func("sumsq_op", 256).
		CodeBulk(1 << 20).
		MustBuild()
	results := make([]float64, 4)
	prog := &ampi.Program{
		Image: img,
		ReduceFuncs: map[string]ampi.ReduceFunc{
			"sumsq_op": func(in, acc []float64) []float64 {
				if acc == nil {
					acc = make([]float64, len(in))
				}
				for i := range in {
					acc[i] += in[i] * in[i]
				}
				return acc
			},
		},
		Main: func(r *ampi.Rank) {
			op, err := r.OpCreate("sumsq_op")
			if err != nil {
				panic(err)
			}
			// Rank contributions 1..4; sum of squares at root, but note
			// the op squares on combine, so compute expected directly
			// from the implementation semantics below.
			out := r.Reduce(0, []float64{float64(r.Rank() + 1)}, op)
			if r.Rank() == 0 {
				results[0] = out[0]
			}
		},
	}
	w := runProgram(t, mediumConfig(4), prog)
	// Verify each rank's copy of the op function sits at a distinct
	// address while the stored offset is shared.
	addr0, _ := w.Ranks[0].Ctx().FuncAddr("sumsq_op")
	addr1, _ := w.Ranks[1].Ctx().FuncAddr("sumsq_op")
	if addr0 == addr1 {
		t.Error("PIEglobals ranks share a function address; segment duplication failed")
	}
	if results[0] == 0 {
		t.Error("reduction produced no result at root")
	}
}

func TestApplyOpOnEmptyPEFails(t *testing.T) {
	// Reproduce the paper's documented runtime error: a user-defined
	// reduction cannot be processed on a PE with no resident virtual
	// ranks under PIEglobals (§3.3).
	img := elf.NewBuilder("emptycore").
		Global("g", 0).
		Func("main", 1024).
		Func("op_fn", 128).
		MustBuild()
	var once sync.Once
	var opErr error
	prog := &ampi.Program{
		Image: img,
		ReduceFuncs: map[string]ampi.ReduceFunc{
			"op_fn": func(in, acc []float64) []float64 { return in },
		},
		Main: func(r *ampi.Rank) {
			op, err := r.OpCreate("op_fn")
			if err != nil {
				panic(err)
			}
			once.Do(func() {
				// PE 3 hosts no ranks: 2 VPs block-mapped onto 4 PEs
				// leaves PEs 2 and 3 empty.
				emptyPE := r.World().Cluster.PE(3)
				_, opErr = r.World().ApplyOpOnPE(emptyPE, op, []float64{1}, nil)
			})
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:       2,
		Privatize: core.KindPIEglobals,
	}
	runProgram(t, cfg, prog)
	if opErr == nil {
		t.Fatal("expected user-defined reduction on an empty PE to fail under PIEglobals")
	}
}

func TestWtimeAdvances(t *testing.T) {
	var t0, t1 float64
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			t0 = r.Wtime().Seconds()
			r.Compute(1e6) // 1 ms
			t1 = r.Wtime().Seconds()
		},
	}
	runProgram(t, mediumConfig(1), prog)
	if t1-t0 < 0.001-1e-9 {
		t.Fatalf("Wtime advanced %v s across a 1 ms compute", t1-t0)
	}
	if math.IsNaN(t1) {
		t.Fatal("NaN wtime")
	}
}
