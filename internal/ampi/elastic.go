package ampi

import (
	"fmt"

	"provirt/internal/sim"
	"provirt/internal/trace"
)

// Reconfigure is the benign "error" a world returns after a graceful
// drain: a membership change was scheduled, the runtime forced a
// checkpoint at the next collective consistency point, and the job
// stopped so a supervisor can rebuild it on the new cluster shape from
// that snapshot. Unlike *NodeFailure, no work is lost — the snapshot
// is taken at the drain instant, so rework is zero.
type Reconfigure struct {
	// Requested is when the membership change was announced (the
	// eviction notice or arrival instant); At is when the drain
	// checkpoint completed and the world stopped.
	Requested sim.Time
	At        sim.Time
}

// Error implements error.
func (e *Reconfigure) Error() string {
	return fmt.Sprintf("ampi: world drained for reconfiguration at %v (requested %v); restart from the drain checkpoint",
		e.At, e.Requested)
}

// ScheduleReconfigure arms a graceful drain at virtual time at: from
// that instant, the next CheckpointIfDue collective takes a snapshot
// regardless of the policy interval and then stops the world with a
// *Reconfigure error instead of resuming the ranks. Supervisors use it
// for planned membership changes — spot-instance eviction notices and
// expansion points — where draining through a checkpoint beats
// crashing: the restart resumes from the drain instant with zero
// rework.
//
// The world must have a checkpoint policy (CheckpointIfDue is the
// drain's consistency point). Pairing with ScheduleNodeFailure models
// a notice window: whichever fires first wins, so a notice too short
// to reach the next consistency point degrades naturally into a crash.
func (w *World) ScheduleReconfigure(at sim.Time) error {
	if p := w.Cfg.Checkpoint; p == nil || p.Interval <= 0 {
		return fmt.Errorf("ampi: ScheduleReconfigure needs a checkpoint policy to drain through")
	}
	if at < 0 {
		return fmt.Errorf("ampi: ScheduleReconfigure at negative time %v", at)
	}
	w.Cluster.Engine.At(at, func() {
		if !w.reconfigPending {
			w.reconfigPending = true
			w.reconfigAt = at
		}
	})
	return nil
}

// drainWorld finishes a forced drain checkpoint: it stops the world at
// the snapshot completion instant with a *Reconfigure error, emitting
// the drain span. Runs as the engine callback at ck.Taken.
func (w *World) drainWorld(ck *Checkpoint, started sim.Time) {
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: started, Dur: ck.Taken - started, Kind: trace.KindDrain,
			PE: -1, VP: -1, Peer: -1, Aux: int32(ck.Target), Bytes: ck.DeltaBytes})
	}
	w.fail(&Reconfigure{Requested: w.reconfigAt, At: ck.Taken})
}
