package ampi

import (
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// Collective message tags live in a reserved negative space; each
// collective instance gets a unique sequence so back-to-back
// collectives never cross-match. MPI requires all ranks to call
// collectives in the same order, which keeps the per-rank sequence
// numbers aligned.
const collTagBase = -1_000_000

// worldComm returns the rank's cached MPI_COMM_WORLD; all rank-level
// collectives delegate to it so there is exactly one implementation of
// each algorithm.
func (r *Rank) worldComm() *Comm {
	if r.world0 == nil {
		r.world0 = r.CommWorld()
	}
	return r.world0
}

// collBegin snapshots the start of a rank-level collective for the
// tracer; on is false (and the snapshot free) when tracing is off.
func (r *Rank) collBegin() (start sim.Time, on bool) {
	if r.world.tracer == nil {
		return 0, false
	}
	return r.thread.Now(), true
}

// collEnd emits the collective's span. The span covers the whole call
// in the rank's virtual time, inclusive of the sends, receives, and
// waits the algorithm performs inside it.
func (r *Rank) collEnd(on bool, start sim.Time, op int32, root int) {
	if !on {
		return
	}
	r.world.tracer.Emit(trace.Event{Time: start, Dur: r.thread.Now() - start, Kind: trace.KindColl,
		PE: int32(r.pe.ID), VP: int32(r.vp), Peer: int32(root), Aux: op})
}

// Bcast broadcasts data from root along a binomial tree and returns
// each rank's copy. bytes models the wire size (0 derives it from the
// payload).
func (r *Rank) Bcast(root int, data []float64, bytes uint64) []float64 {
	r.checkPeer(root)
	start, on := r.collBegin()
	out := r.worldComm().Bcast(root, data, bytes)
	r.collEnd(on, start, trace.CollBcast, root)
	return out
}

// Reduce combines each rank's contribution with op along a binomial
// tree; the result is returned at root (nil elsewhere).
func (r *Rank) Reduce(root int, data []float64, op *Op) []float64 {
	r.checkPeer(root)
	start, on := r.collBegin()
	out := r.worldComm().Reduce(root, data, op)
	r.collEnd(on, start, trace.CollReduce, root)
	return out
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(data []float64, op *Op) []float64 {
	start, on := r.collBegin()
	out := r.worldComm().Allreduce(data, op)
	r.collEnd(on, start, trace.CollAllreduce, -1)
	return out
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	start, on := r.collBegin()
	r.worldComm().Barrier()
	r.collEnd(on, start, trace.CollBarrier, -1)
}

// Gather collects each rank's fixed-size contribution at root; the
// result at root is the concatenation in rank order (nil elsewhere).
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	r.checkPeer(root)
	start, on := r.collBegin()
	out := r.worldComm().Gather(root, data)
	r.collEnd(on, start, trace.CollGather, root)
	return out
}

// Scatter distributes root's per-rank chunks; each rank returns its
// own chunk.
func (r *Rank) Scatter(root int, chunks [][]float64) []float64 {
	r.checkPeer(root)
	start, on := r.collBegin()
	out := r.worldComm().Scatter(root, chunks)
	r.collEnd(on, start, trace.CollScatter, root)
	return out
}

// Allgather collects every rank's contribution everywhere.
func (r *Rank) Allgather(data []float64) [][]float64 {
	start, on := r.collBegin()
	out := r.worldComm().Allgather(data)
	r.collEnd(on, start, trace.CollAllgather, -1)
	return out
}

// Alltoall exchanges chunk i of each rank's input with rank i.
func (r *Rank) Alltoall(chunks [][]float64) [][]float64 {
	start, on := r.collBegin()
	out := r.worldComm().Alltoall(chunks)
	r.collEnd(on, start, trace.CollAlltoall, -1)
	return out
}

// Scan computes an inclusive prefix reduction: rank i returns op
// applied over the contributions of ranks 0..i (MPI_Scan).
func (r *Rank) Scan(data []float64, op *Op) []float64 {
	start, on := r.collBegin()
	out := r.worldComm().Scan(data, op)
	r.collEnd(on, start, trace.CollScan, -1)
	return out
}

// Exscan computes an exclusive prefix reduction: rank i returns op
// applied over ranks 0..i-1; rank 0 returns nil (MPI_Exscan).
func (r *Rank) Exscan(data []float64, op *Op) []float64 {
	start, on := r.collBegin()
	out := r.worldComm().Exscan(data, op)
	r.collEnd(on, start, trace.CollExscan, -1)
	return out
}

// ReduceScatter reduces elementwise across ranks, then scatters equal
// chunks: each rank returns its chunk of the reduced vector
// (MPI_Reduce_scatter_block). The input length must be a multiple of
// the rank count.
func (r *Rank) ReduceScatter(data []float64, op *Op) []float64 {
	start, on := r.collBegin()
	out := r.worldComm().ReduceScatter(data, op)
	r.collEnd(on, start, trace.CollReduceScatter, -1)
	return out
}
