package ampi

// Collective message tags live in a reserved negative space; each
// collective instance gets a unique sequence so back-to-back
// collectives never cross-match. MPI requires all ranks to call
// collectives in the same order, which keeps the per-rank sequence
// numbers aligned.
const collTagBase = -1_000_000

// worldComm returns the rank's cached MPI_COMM_WORLD; all rank-level
// collectives delegate to it so there is exactly one implementation of
// each algorithm.
func (r *Rank) worldComm() *Comm {
	if r.world0 == nil {
		r.world0 = r.CommWorld()
	}
	return r.world0
}

// binomialParentChildren computes the rank's parent and children in a
// binomial tree over size entries rooted at relative rank 0.
func binomialParentChildren(rel, size int) (parent int, children []int) {
	parent = -1
	limit := size // rel == 0: any power of two below size
	if rel != 0 {
		lsb := rel & -rel
		parent = rel - lsb
		limit = lsb
	}
	for m := 1; m < limit && rel+m < size; m <<= 1 {
		children = append(children, rel+m)
	}
	return parent, children
}

// abs translates a relative tree rank back to an absolute rank.
func abs(rel, root, size int) int { return (rel + root) % size }

// Bcast broadcasts data from root along a binomial tree and returns
// each rank's copy. bytes models the wire size (0 derives it from the
// payload).
func (r *Rank) Bcast(root int, data []float64, bytes uint64) []float64 {
	r.checkPeer(root)
	return r.worldComm().Bcast(root, data, bytes)
}

// Reduce combines each rank's contribution with op along a binomial
// tree; the result is returned at root (nil elsewhere).
func (r *Rank) Reduce(root int, data []float64, op *Op) []float64 {
	r.checkPeer(root)
	return r.worldComm().Reduce(root, data, op)
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(data []float64, op *Op) []float64 {
	return r.worldComm().Allreduce(data, op)
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	r.worldComm().Barrier()
}

// Gather collects each rank's fixed-size contribution at root; the
// result at root is the concatenation in rank order (nil elsewhere).
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	r.checkPeer(root)
	return r.worldComm().Gather(root, data)
}

// Scatter distributes root's per-rank chunks; each rank returns its
// own chunk.
func (r *Rank) Scatter(root int, chunks [][]float64) []float64 {
	r.checkPeer(root)
	return r.worldComm().Scatter(root, chunks)
}

// Allgather collects every rank's contribution everywhere.
func (r *Rank) Allgather(data []float64) [][]float64 {
	return r.worldComm().Allgather(data)
}

// Alltoall exchanges chunk i of each rank's input with rank i.
func (r *Rank) Alltoall(chunks [][]float64) [][]float64 {
	return r.worldComm().Alltoall(chunks)
}

// Scan computes an inclusive prefix reduction: rank i returns op
// applied over the contributions of ranks 0..i (MPI_Scan).
func (r *Rank) Scan(data []float64, op *Op) []float64 {
	return r.worldComm().Scan(data, op)
}

// Exscan computes an exclusive prefix reduction: rank i returns op
// applied over ranks 0..i-1; rank 0 returns nil (MPI_Exscan).
func (r *Rank) Exscan(data []float64, op *Op) []float64 {
	return r.worldComm().Exscan(data, op)
}

// ReduceScatter reduces elementwise across ranks, then scatters equal
// chunks: each rank returns its chunk of the reduced vector
// (MPI_Reduce_scatter_block). The input length must be a multiple of
// the rank count.
func (r *Rank) ReduceScatter(data []float64, op *Op) []float64 {
	return r.worldComm().ReduceScatter(data, op)
}
