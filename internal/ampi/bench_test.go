package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

// BenchmarkAmpiPingPong measures the point-to-point hot path: one
// round trip of a small payload between two ranks on one PE per
// iteration. Allocation counts pin the effect of the pooled event
// nodes, message envelopes, and payload buffers.
func BenchmarkAmpiPingPong(b *testing.B) {
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			payload := []float64{1, 2, 3, 4}
			if r.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					r.Send(1, 7, payload, 0)
					r.Recv(1, 8)
				}
			} else {
				for i := 0; i < b.N; i++ {
					r.Recv(0, 7)
					r.Send(0, 8, payload, 0)
				}
			}
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIEglobals,
	}, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAmpiManyPending stresses message matching with a deep
// unexpected-message queue: rank 0 receives in the reverse of arrival
// order, so every receive under the old linear scan walked the whole
// mailbox.
func BenchmarkAmpiManyPending(b *testing.B) {
	const pending = 256
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			if r.Rank() == 1 {
				for i := 0; i < b.N; i++ {
					for tag := 0; tag < pending; tag++ {
						r.Send(0, tag, nil, 8)
					}
					r.Recv(0, 0) // round-trip gate, keeps queues bounded
				}
				return
			}
			for i := 0; i < b.N; i++ {
				for tag := pending - 1; tag >= 0; tag-- {
					r.Recv(1, tag)
				}
				r.Send(1, 0, nil, 8)
			}
		},
	}
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIEglobals,
	}, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
}
