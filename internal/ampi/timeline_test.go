package ampi_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/workloads/synth"
)

func TestTimelineSpans(t *testing.T) {
	per := []sim.Time{2e6, 1e6, 3e6, 1e6}
	prog := synth.ComputeBound(per, 3)
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableTracing()
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	tl, err := w.Timeline()
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.PEs) != 2 {
		t.Fatalf("%d PE timelines", len(tl.PEs))
	}
	for _, pe := range tl.PEs {
		if len(pe.Spans) == 0 {
			t.Fatalf("PE %d has no spans", pe.PE)
		}
		var busy sim.Time
		prevEnd := sim.Time(-1)
		for _, sp := range pe.Spans {
			if sp.End < sp.Start {
				t.Fatalf("inverted span %+v", sp)
			}
			if sp.Start < prevEnd {
				t.Fatalf("overlapping spans on PE %d", pe.PE)
			}
			prevEnd = sp.End
			busy += sp.End - sp.Start
		}
		// Span time equals the scheduler's busy accounting.
		if busy != w.Scheds()[pe.PE].BusyTime() {
			t.Errorf("PE %d span total %v != busy %v", pe.PE, busy, w.Scheds()[pe.PE].BusyTime())
		}
	}
}

func TestWriteTimelineJSON(t *testing.T) {
	prog := synth.ComputeBound([]sim.Time{1e6}, 2)
	w, err := ampi.NewWorld(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindNone,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableTracing()
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded ampi.Timeline
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(decoded.PEs) != 1 || len(decoded.PEs[0].Spans) == 0 {
		t.Fatal("decoded timeline empty")
	}
}

func TestTimelineRequiresTracing(t *testing.T) {
	prog := synth.Empty()
	w, err := ampi.NewWorld(smallConfig(1, core.KindNone), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Timeline(); err == nil {
		t.Fatal("timeline without tracing accepted")
	}
}
