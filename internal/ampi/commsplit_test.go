package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/workloads/synth"
)

func TestCommWorldMirrorsRank(t *testing.T) {
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			c := r.CommWorld()
			if c.Rank() != r.Rank() || c.Size() != r.Size() {
				panic("comm world numbering mismatch")
			}
			sum := c.Allreduce([]float64{1}, ampi.OpSum)
			if sum[0] != float64(r.Size()) {
				panic("comm world allreduce wrong")
			}
		},
	}
	runProgram(t, mediumConfig(6), prog)
}

func TestCommSplitEvenOdd(t *testing.T) {
	const v = 8
	results := make([]float64, v)
	ranks := make([]int, v)
	sizes := make([]int, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			world := r.CommWorld()
			sub := world.Split(r.Rank()%2, r.Rank())
			ranks[r.Rank()] = sub.Rank()
			sizes[r.Rank()] = sub.Size()
			// Sum of world ranks within each parity group.
			sum := sub.Allreduce([]float64{float64(r.Rank())}, ampi.OpSum)
			results[r.Rank()] = sum[0]
		},
	}
	runProgram(t, mediumConfig(v), prog)
	wantEven := float64(0 + 2 + 4 + 6)
	wantOdd := float64(1 + 3 + 5 + 7)
	for vp := 0; vp < v; vp++ {
		want := wantEven
		if vp%2 == 1 {
			want = wantOdd
		}
		if results[vp] != want {
			t.Errorf("rank %d group sum %v, want %v", vp, results[vp], want)
		}
		if sizes[vp] != 4 {
			t.Errorf("rank %d subgroup size %d", vp, sizes[vp])
		}
		if ranks[vp] != vp/2 {
			t.Errorf("rank %d got comm rank %d, want %d", vp, ranks[vp], vp/2)
		}
	}
}

func TestCommSplitKeyReordering(t *testing.T) {
	const v = 4
	order := make([]int, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			// Reverse the ordering via descending keys.
			sub := r.CommWorld().Split(0, v-r.Rank())
			order[r.Rank()] = sub.Rank()
		},
	}
	runProgram(t, mediumConfig(v), prog)
	for vp := 0; vp < v; vp++ {
		if order[vp] != v-1-vp {
			t.Errorf("world rank %d got comm rank %d, want %d", vp, order[vp], v-1-vp)
		}
	}
}

func TestCommSplitUndefinedColor(t *testing.T) {
	const v = 4
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			color := 0
			if r.Rank() == 3 {
				color = -1 // MPI_UNDEFINED
			}
			sub := r.CommWorld().Split(color, 0)
			if r.Rank() == 3 {
				if sub != nil {
					panic("undefined color returned a communicator")
				}
				return
			}
			if sub.Size() != 3 {
				panic("wrong subgroup size")
			}
			sub.Barrier()
		},
	}
	runProgram(t, mediumConfig(v), prog)
}

func TestCommIsolatedTagSpace(t *testing.T) {
	// The same (src, tag) pair on two communicators must not
	// cross-match.
	const v = 2
	var viaWorld, viaDup float64
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			world := r.CommWorld()
			dup := world.Dup()
			if r.Rank() == 0 {
				dup.Send(1, 5, []float64{200}, 0)
				world.Send(1, 5, []float64{100}, 0)
			} else {
				// Receive in the opposite order of sending; comm
				// isolation must pick the right payloads anyway.
				viaWorld = world.Recv(0, 5)[0]
				viaDup = dup.Recv(0, 5)[0]
			}
		},
	}
	runProgram(t, mediumConfig(v), prog)
	if viaWorld != 100 || viaDup != 200 {
		t.Fatalf("cross-communicator match: world=%v dup=%v", viaWorld, viaDup)
	}
}

func TestCommP2PAndCollectivesInSubgroups(t *testing.T) {
	const v = 6
	gathered := make([][][]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			sub := r.CommWorld().Split(r.Rank()/3, r.Rank()) // {0,1,2}, {3,4,5}
			// Ring send within the subgroup.
			next := (sub.Rank() + 1) % sub.Size()
			prev := (sub.Rank() + sub.Size() - 1) % sub.Size()
			q := sub.Irecv(prev, 9)
			sub.Send(next, 9, []float64{float64(r.Rank())}, 0)
			got := r.Wait(q)[0]
			wantFrom := sub.WorldRank(prev)
			if got != float64(wantFrom) {
				panic("ring payload wrong")
			}
			gathered[r.Rank()] = sub.Allgather([]float64{float64(r.Rank())})
		},
	}
	runProgram(t, mediumConfig(v), prog)
	for vp := 0; vp < v; vp++ {
		base := (vp / 3) * 3
		for i, chunk := range gathered[vp] {
			if chunk[0] != float64(base+i) {
				t.Errorf("rank %d allgather[%d] = %v", vp, i, chunk)
			}
		}
	}
}

// TestCommSplitIDsNeverCollide reproduces the hazard the id-mixing
// function exists for: two successive splits of the same parent with
// large, overlapping color ranges must yield distinct communicator ids
// (a simple affine id formula collides here, cross-matching tags).
func TestCommSplitIDsNeverCollide(t *testing.T) {
	const v = 4
	seen := make([]map[int]bool, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			world := r.CommWorld()
			ids := map[int]bool{}
			for round := 0; round < 4; round++ {
				sub := world.Split(r.Rank()%2+round*100, r.Rank())
				if ids[sub.ID()] || sub.ID() == ampi.WorldComm {
					panic("communicator id collision")
				}
				ids[sub.ID()] = true
				sub.Barrier() // exercise the allegedly-isolated tag space
			}
			seen[r.Rank()] = ids
		},
	}
	runProgram(t, mediumConfig(v), prog)
	// Ranks in the same color group must agree on each id; different
	// groups must not share ids.
	if len(seen[0]) != 4 {
		t.Fatalf("rank 0 created %d comms", len(seen[0]))
	}
	for id := range seen[0] {
		if !seen[2][id] { // rank 2 shares rank 0's parity
			t.Errorf("group members disagree on comm id %d", id)
		}
		if seen[1][id] {
			t.Errorf("distinct color groups share comm id %d", id)
		}
	}
}

func TestCommScatterScanReduceScatterInSubgroups(t *testing.T) {
	const v = 6
	scatterGot := make([]float64, v)
	scanGot := make([]float64, v)
	rsGot := make([][]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			sub := r.CommWorld().Split(r.Rank()%2, r.Rank()) // evens, odds
			var chunks [][]float64
			if sub.Rank() == 0 {
				chunks = make([][]float64, sub.Size())
				for i := range chunks {
					chunks[i] = []float64{float64(i * 11)}
				}
			}
			scatterGot[r.Rank()] = sub.Scatter(0, chunks)[0]
			scanGot[r.Rank()] = sub.Scan([]float64{1}, ampi.OpSum)[0]
			in := make([]float64, sub.Size())
			for i := range in {
				in[i] = float64(sub.Rank())
			}
			rsGot[r.Rank()] = sub.ReduceScatter(in, ampi.OpSum)
		},
	}
	runProgram(t, mediumConfig(v), prog)
	for vp := 0; vp < v; vp++ {
		commRank := vp / 2
		if scatterGot[vp] != float64(commRank*11) {
			t.Errorf("rank %d scatter %v, want %d", vp, scatterGot[vp], commRank*11)
		}
		if scanGot[vp] != float64(commRank+1) {
			t.Errorf("rank %d scan %v, want %d", vp, scanGot[vp], commRank+1)
		}
		// ReduceScatter over [cr, cr, cr] summed = 0+1+2 = 3 per slot.
		if rsGot[vp][0] != 3 {
			t.Errorf("rank %d reduce-scatter %v", vp, rsGot[vp])
		}
	}
}

func TestCommBcastReduceWithinSplit(t *testing.T) {
	const v = 9
	got := make([]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			sub := r.CommWorld().Split(r.Rank()%3, r.Rank())
			var data []float64
			if sub.Rank() == 0 {
				data = []float64{float64(r.Rank() % 3)}
			}
			out := sub.Bcast(0, data, 0)
			got[r.Rank()] = out[0]
			// Follow with a reduce to exercise a second collective on
			// the same communicator.
			sub.Reduce(0, []float64{1}, ampi.OpSum)
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 3},
		VPs:       v,
		Privatize: core.KindPIEglobals,
	}
	runProgram(t, cfg, prog)
	for vp := 0; vp < v; vp++ {
		if got[vp] != float64(vp%3) {
			t.Errorf("rank %d bcast got %v, want %d", vp, got[vp], vp%3)
		}
	}
}
