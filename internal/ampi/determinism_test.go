package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/workloads/adcirc"
	"provirt/internal/workloads/jacobi"
)

// TestRunsAreDeterministic: identical configurations must produce
// bit-identical virtual times, switch counts, and migration records —
// the property every experiment in EXPERIMENTS.md relies on.
func TestRunsAreDeterministic(t *testing.T) {
	run := func() (a, b, c uint64) {
		cfg := adcirc.DefaultConfig()
		cfg.Width, cfg.Height, cfg.Steps, cfg.LBPeriod = 96, 128, 16, 4
		prog := adcirc.New(cfg, nil)
		w, err := ampi.NewWorld(ampi.Config{
			Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2, Seed: 7},
			VPs:       16,
			Privatize: core.KindPIEglobals,
			Balancer:  lb.GreedyRefineLB{},
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return uint64(w.Time()), w.TotalSwitches(), w.MigratedBytes
	}
	t1, s1, m1 := run()
	t2, s2, m2 := run()
	if t1 != t2 || s1 != s2 || m1 != m2 {
		t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", t1, s1, m1, t2, s2, m2)
	}
	if m1 == 0 {
		t.Error("determinism test exercised no migrations")
	}
}

// TestSwapglobalsMigration: Table 1 says Swapglobals supports
// migration (its per-rank copies live in migratable memory); verify a
// round trip between processes.
func TestSwapglobalsMigration(t *testing.T) {
	tc, osEnv := core.Bridges2Env()
	osEnv.OldOrPatchedLinker = true
	vals := make([]uint64, 2)
	prog := &ampi.Program{
		Image: jacobi.Image(),
		Main: func(r *ampi.Rank) {
			r.Ctx().Store("iter_count", uint64(r.Rank())+40)
			r.Migrate()
			vals[r.Rank()] = r.Ctx().Load("iter_count")
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1}, // non-SMP
		VPs:       2,
		Privatize: core.KindSwapglobals,
		Toolchain: tc,
		OS:        osEnv,
		Balancer:  lb.RotateLB{},
	}
	w := runProgram(t, cfg, prog)
	if w.Migrations != 2 {
		t.Fatalf("%d migrations", w.Migrations)
	}
	for vp, v := range vals {
		if v != uint64(vp)+40 {
			t.Errorf("rank %d swapglobals state %d after migration", vp, v)
		}
	}
}

// TestSMPModeRefusals: methods whose Table 3 row says "No" for SMP
// support must refuse multi-PE processes.
func TestSMPModeRefusals(t *testing.T) {
	tc, osEnv := core.Bridges2Env()
	osEnv.OldOrPatchedLinker = true
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4}, // SMP
		VPs:       4,
		Privatize: core.KindSwapglobals,
		Toolchain: tc,
		OS:        osEnv,
	}
	if _, err := ampi.NewWorld(cfg, jacobi.New(jacobi.Config{NX: 4, NY: 4, NZ: 4, Iters: 1}, nil)); err == nil {
		t.Fatal("swapglobals accepted SMP mode")
	}
}
