package ampi

// O(1) message matching. MPI matching is FIFO per (source, tag,
// communicator): a receive must complete against the earliest matching
// message, and an arriving message against the earliest matching posted
// receive. The seed implementation kept both sides as flat slices and
// linear-scanned them, which is O(pending) per operation — quadratic on
// the all-to-all and gather fan-ins the harness sweeps run constantly.
//
// Both queues are adaptive. While shallow (the overwhelmingly common
// case — a ping-pong or halo exchange keeps one or two entries pending)
// they stay a flat slice scanned linearly, which beats any index for a
// handful of entries. Past spillThreshold entries they spill into a
// hash index keyed by the full match envelope: messages always carry a
// concrete (source, tag), so an arriving message probes exactly one
// posted-receive bucket, and an exact-key receive probes exactly one
// unexpected-message bucket. Wildcard receives (AnySource / AnyTag) are
// rare and keep a dedicated path: they compare bucket heads (not
// messages) on post, and a short wildcard list on delivery. Every entry
// is stamped with a monotone sequence number, so whenever two
// candidates match, the earlier one wins — exactly the order the
// linear scans produced, keeping runs bit-for-bit identical.

// spillThreshold is the queue depth at which a store switches from
// linear scanning to its hash index. Crossing costs one rebucketing
// pass; the store drops back to linear mode when it drains empty.
const spillThreshold = 16

// matchKey identifies a matching bucket. All fields are concrete (no
// wildcards): messages are keyed by their envelope, and only
// fully-specified receives are bucketed.
type matchKey struct {
	comm     int
	src      int
	tag      int
	internal bool
}

func keyOfMsg(m *message) matchKey {
	return matchKey{comm: m.comm, src: m.src, tag: m.tag, internal: m.internal}
}

// matchEnvelope reports whether a posted request accepts a message.
func matchEnvelope(q *Request, m *message) bool {
	if q.internal != m.internal || q.comm != m.comm {
		return false
	}
	if q.src != AnySource && q.src != m.src {
		return false
	}
	if q.tag != AnyTag && q.tag != m.tag {
		return false
	}
	return true
}

// msgStore holds unexpected messages, FIFO within and across buckets
// (via arrival sequence numbers).
type msgStore struct {
	small   []*message // linear mode, in arrival order
	buckets map[matchKey][]*message
	spilled bool
	seq     uint64
	n       int
}

// add queues an unexpected message.
func (s *msgStore) add(m *message) {
	m.seq = s.seq
	s.seq++
	s.n++
	metrics.unexpectedTotal.Inc()
	metrics.unexpectedDepth.SetMax(int64(s.n))
	if !s.spilled {
		if len(s.small) < spillThreshold {
			s.small = append(s.small, m)
			return
		}
		s.spill()
	}
	k := keyOfMsg(m)
	s.buckets[k] = append(s.buckets[k], m)
}

// spill moves linear-mode entries into the hash index (arrival order is
// preserved: the slice is already seq-sorted).
func (s *msgStore) spill() {
	metrics.spills.Inc()
	if s.buckets == nil {
		s.buckets = make(map[matchKey][]*message)
	}
	for i, m := range s.small {
		k := keyOfMsg(m)
		s.buckets[k] = append(s.buckets[k], m)
		s.small[i] = nil
	}
	s.small = s.small[:0]
	s.spilled = true
}

// popHead removes the head of bucket k.
func (s *msgStore) popHead(k matchKey) *message {
	b := s.buckets[k]
	m := b[0]
	b[0] = nil
	if len(b) == 1 {
		delete(s.buckets, k)
	} else {
		s.buckets[k] = b[1:]
	}
	s.shrink()
	return m
}

// shrink accounts a removal and drops back to linear mode on empty.
func (s *msgStore) shrink() {
	s.n--
	if s.n == 0 {
		s.spilled = false
	}
}

// take removes and returns the earliest-arrived message matching the
// request, or nil. In indexed mode, exact requests are a single map
// probe; wildcard requests compare bucket heads, which is O(distinct
// envelopes), not O(pending messages).
func (s *msgStore) take(q *Request) *message {
	if s.n == 0 {
		return nil
	}
	metrics.probeDepth.Observe(uint64(s.n))
	if !s.spilled {
		for i, m := range s.small {
			if matchEnvelope(q, m) {
				s.small = append(s.small[:i], s.small[i+1:]...)
				s.shrink()
				return m
			}
		}
		return nil
	}
	if q.src != AnySource && q.tag != AnyTag {
		k := matchKey{comm: q.comm, src: q.src, tag: q.tag, internal: q.internal}
		if len(s.buckets[k]) == 0 {
			return nil
		}
		return s.popHead(k)
	}
	var bestKey matchKey
	var best *message
	for k, b := range s.buckets {
		if k.comm != q.comm || k.internal != q.internal {
			continue
		}
		if q.src != AnySource && q.src != k.src {
			continue
		}
		if q.tag != AnyTag && q.tag != k.tag {
			continue
		}
		// Bucket heads are each bucket's earliest arrival; the min
		// sequence across heads is the overall earliest match, so the
		// map's iteration order cannot influence the result.
		if m := b[0]; best == nil || m.seq < best.seq {
			best, bestKey = m, k
		}
	}
	if best == nil {
		return nil
	}
	return s.popHead(bestKey)
}

// probe reports whether any queued message matches the request.
func (s *msgStore) probe(q *Request) bool {
	if s.n == 0 {
		return false
	}
	if !s.spilled {
		for _, m := range s.small {
			if matchEnvelope(q, m) {
				return true
			}
		}
		return false
	}
	if q.src != AnySource && q.tag != AnyTag {
		k := matchKey{comm: q.comm, src: q.src, tag: q.tag, internal: q.internal}
		return len(s.buckets[k]) > 0
	}
	for k := range s.buckets {
		if k.comm != q.comm || k.internal != q.internal {
			continue
		}
		if q.src != AnySource && q.src != k.src {
			continue
		}
		if q.tag != AnyTag && q.tag != k.tag {
			continue
		}
		return true
	}
	return false
}

// reqStore holds posted receives. In indexed mode, fully-specified
// receives are hash-indexed and wildcard receives sit in a short
// ordered list.
type reqStore struct {
	small   []*Request // linear mode, in posting order
	exact   map[matchKey][]*Request
	wild    []*Request
	spilled bool
	seq     uint64
	n       int
}

// add posts a receive.
func (s *reqStore) add(q *Request) {
	q.seq = s.seq
	s.seq++
	s.n++
	if !s.spilled {
		if len(s.small) < spillThreshold {
			s.small = append(s.small, q)
			return
		}
		s.spill()
	}
	s.index(q)
}

func (s *reqStore) index(q *Request) {
	if q.src != AnySource && q.tag != AnyTag {
		k := matchKey{comm: q.comm, src: q.src, tag: q.tag, internal: q.internal}
		s.exact[k] = append(s.exact[k], q)
	} else {
		s.wild = append(s.wild, q)
	}
}

// spill moves linear-mode entries into the hash index (posting order is
// preserved: the slice is already seq-sorted).
func (s *reqStore) spill() {
	metrics.spills.Inc()
	if s.exact == nil {
		s.exact = make(map[matchKey][]*Request)
	}
	for i, q := range s.small {
		s.index(q)
		s.small[i] = nil
	}
	s.small = s.small[:0]
	s.spilled = true
}

// shrink accounts a removal and drops back to linear mode on empty.
func (s *reqStore) shrink() {
	s.n--
	if s.n == 0 {
		s.spilled = false
	}
}

// match removes and returns the earliest-posted receive accepting m,
// or nil. In indexed mode a message's envelope is concrete, so at most
// one exact bucket can match; the bucket head races only the first
// matching wildcard.
func (s *reqStore) match(m *message) *Request {
	if s.n == 0 {
		return nil
	}
	metrics.probeDepth.Observe(uint64(s.n))
	if !s.spilled {
		for i, q := range s.small {
			if matchEnvelope(q, m) {
				s.small = append(s.small[:i], s.small[i+1:]...)
				s.shrink()
				return q
			}
		}
		return nil
	}
	k := keyOfMsg(m)
	var exact *Request
	if b := s.exact[k]; len(b) > 0 {
		exact = b[0]
	}
	wildIdx := -1
	for i, q := range s.wild {
		if matchEnvelope(q, m) {
			wildIdx = i
			break
		}
	}
	if exact != nil && (wildIdx < 0 || exact.seq < s.wild[wildIdx].seq) {
		b := s.exact[k]
		b[0] = nil
		if len(b) == 1 {
			delete(s.exact, k)
		} else {
			s.exact[k] = b[1:]
		}
		s.shrink()
		return exact
	}
	if wildIdx >= 0 {
		q := s.wild[wildIdx]
		s.wild = append(s.wild[:wildIdx], s.wild[wildIdx+1:]...)
		s.shrink()
		return q
	}
	return nil
}
