package ampi

// Binomial-tree shape, shared by the two collective implementations:
// the ULT-level algorithms in comm.go (each rank sends/receives real
// messages along its tree edges) and the flat event model in flat.go
// (each edge is one engine event). Keeping the shape in one place pins
// the two paths to the same topology, so the flat model's round
// structure is exactly what the message-level path executes.

// binomialNode returns the rank's parent in a binomial tree over size
// entries rooted at relative rank 0, and the child iteration limit:
// rel's children are rel+m for m = 1, 2, 4, ... while m < limit and
// rel+m < size. The root's parent is -1.
func binomialNode(rel, size int) (parent, limit int) {
	if rel == 0 {
		return -1, size // root: any power of two below size
	}
	lsb := rel & -rel
	return rel - lsb, lsb
}

// binomialParentChildren computes the rank's parent and children in a
// binomial tree over size entries rooted at relative rank 0. The
// message-level collectives use this allocating form once per call;
// hot paths iterate children in place via binomialNode.
func binomialParentChildren(rel, size int) (parent int, children []int) {
	parent, limit := binomialNode(rel, size)
	for m := 1; m < limit && rel+m < size; m <<= 1 {
		children = append(children, rel+m)
	}
	return parent, children
}

// binomialChildCount counts rel's children without allocating.
func binomialChildCount(rel, size int) int {
	_, limit := binomialNode(rel, size)
	n := 0
	for m := 1; m < limit && rel+m < size; m <<= 1 {
		n++
	}
	return n
}

// abs translates a relative tree rank back to an absolute rank.
func abs(rel, root, size int) int { return (rel + root) % size }
