package ampi

import (
	"encoding/json"
	"fmt"
	"io"

	"provirt/internal/sim"
	"provirt/internal/ult"
)

// EnableTracing turns on Projections-style execution-span recording on
// every PE. Call before Run; spans accumulate for the whole job.
// Charm++ users analyze AMPI runs with exactly this kind of per-PE
// timeline (the Projections tool) when tuning virtualization ratios
// and load balancing.
func (w *World) EnableTracing() {
	for _, s := range w.scheds {
		s.Trace = true
	}
}

// TimelinePE is one PE's execution timeline.
type TimelinePE struct {
	PE    int        `json:"pe"`
	Spans []ult.Span `json:"spans"`
}

// Timeline is a whole job's execution trace plus migration events.
type Timeline struct {
	PEs        []TimelinePE      `json:"pes"`
	Migrations []MigrationRecord `json:"migrations,omitempty"`
	// Execution is the job's virtual execution time in nanoseconds.
	Execution sim.Time `json:"execution_ns"`
}

// Timeline collects the recorded spans. Call after Run, with tracing
// enabled beforehand.
func (w *World) Timeline() (*Timeline, error) {
	tl := &Timeline{Execution: w.ExecutionTime(), Migrations: w.lastMigrations}
	traced := false
	for i, s := range w.scheds {
		if s.Trace {
			traced = true
		}
		tl.PEs = append(tl.PEs, TimelinePE{PE: i, Spans: s.Spans})
	}
	if !traced {
		return nil, fmt.Errorf("ampi: tracing was not enabled; call EnableTracing before Run")
	}
	return tl, nil
}

// WriteTimeline emits the trace as JSON.
func (w *World) WriteTimeline(out io.Writer) error {
	tl, err := w.Timeline()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}
