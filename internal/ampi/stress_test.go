package ampi_test

import (
	"testing"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/lb"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/workloads/synth"
)

func TestScanExscan(t *testing.T) {
	const v = 7
	scans := make([]float64, v)
	exscans := make([]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			me := float64(r.Rank() + 1)
			scans[r.Rank()] = r.Scan([]float64{me}, ampi.OpSum)[0]
			ex := r.Exscan([]float64{me}, ampi.OpSum)
			if r.Rank() == 0 {
				if ex != nil {
					panic("exscan at rank 0 must be nil")
				}
				return
			}
			exscans[r.Rank()] = ex[0]
		},
	}
	runProgram(t, mediumConfig(v), prog)
	for vp := 0; vp < v; vp++ {
		want := float64((vp + 1) * (vp + 2) / 2)
		if scans[vp] != want {
			t.Errorf("scan at %d = %v, want %v", vp, scans[vp], want)
		}
		if vp > 0 {
			wantEx := float64(vp * (vp + 1) / 2)
			if exscans[vp] != wantEx {
				t.Errorf("exscan at %d = %v, want %v", vp, exscans[vp], wantEx)
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	const v = 4
	got := make([][]float64, v)
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			// Rank i contributes vector of (i+1) repeated 2*v times.
			in := make([]float64, 2*v)
			for j := range in {
				in[j] = float64(r.Rank() + 1)
			}
			got[r.Rank()] = r.ReduceScatter(in, ampi.OpSum)
		},
	}
	runProgram(t, mediumConfig(v), prog)
	want := float64(1 + 2 + 3 + 4)
	for vp := 0; vp < v; vp++ {
		if len(got[vp]) != 2 {
			t.Fatalf("rank %d chunk %v", vp, got[vp])
		}
		if got[vp][0] != want || got[vp][1] != want {
			t.Errorf("rank %d chunk %v, want [%v %v]", vp, got[vp], want, want)
		}
	}
}

// TestMigrationTrafficStress interleaves heavy random point-to-point
// traffic with repeated migrations under several balancers; every
// message must arrive intact and the run must terminate.
func TestMigrationTrafficStress(t *testing.T) {
	const (
		v      = 12
		rounds = 8
	)
	for _, strat := range []lb.Strategy{lb.RotateLB{}, lb.GreedyLB{}, lb.GreedyRefineLB{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			rng := sim.NewRNG(99)
			// Precompute a deterministic traffic pattern: per round,
			// each rank sends to a pseudo-random peer.
			peers := make([][]int, rounds)
			for rd := range peers {
				peers[rd] = make([]int, v)
				for i := range peers[rd] {
					p := rng.Intn(v - 1)
					if p >= i {
						p++
					}
					peers[rd][i] = p
				}
			}
			sums := make([]float64, v)
			prog := &ampi.Program{
				Image: synth.EmptyImage(),
				Main: func(r *ampi.Rank) {
					me := r.Rank()
					for rd := 0; rd < rounds; rd++ {
						// Post receives for everything destined to me
						// this round.
						var reqs []*ampi.Request
						for src, dst := range peers[rd] {
							if dst == me {
								reqs = append(reqs, r.Irecv(src, rd))
							}
						}
						r.Send(peers[rd][me], rd, []float64{float64(me*1000 + rd)}, 0)
						for _, q := range reqs {
							sums[me] += r.Wait(q)[0]
						}
						r.Compute(sim.Time((me%3 + 1)) * 10_000)
						r.Migrate()
					}
					r.Barrier()
				},
			}
			cfg := ampi.Config{
				Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
				VPs:       v,
				Privatize: core.KindPIEglobals,
				Balancer:  strat,
			}
			w := runProgram(t, cfg, prog)
			var total float64
			for _, s := range sums {
				total += s
			}
			var want float64
			for rd := 0; rd < rounds; rd++ {
				for src := range peers[rd] {
					want += float64(src*1000 + rd)
				}
			}
			if total != want {
				t.Fatalf("message payloads lost: sum %v, want %v", total, want)
			}
			if strat.Name() == "RotateLB" && w.Migrations == 0 {
				t.Error("rotate balancer never migrated")
			}
		})
	}
}

// TestShrinkViaEvacuation drains two of four PEs mid-run (dynamic job
// shrink, §2.1) and verifies the evacuated PEs end empty while the
// computation completes correctly.
func TestShrinkViaEvacuation(t *testing.T) {
	const v = 8
	prog := &ampi.Program{
		Image: synth.EmptyImage(),
		Main: func(r *ampi.Rank) {
			r.Compute(100_000)
			r.Migrate() // evacuation point
			r.Compute(100_000)
			r.Barrier()
		},
	}
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 4},
		VPs:       v,
		Privatize: core.KindPIEglobals,
		Balancer:  lb.EvacuateLB{Departing: []int{2, 3}},
	}
	w := runProgram(t, cfg, prog)
	for _, r := range w.Ranks {
		if id := r.PE().ID; id == 2 || id == 3 {
			t.Fatalf("rank %d still on departing PE %d", r.Rank(), id)
		}
	}
	if w.Migrations != 4 {
		t.Errorf("%d migrations, want 4 (half the ranks)", w.Migrations)
	}
}
