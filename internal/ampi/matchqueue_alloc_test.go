package ampi

import "testing"

// The adaptive match queues promise that the common shallow case — a
// ping-pong or halo exchange with one or two pending entries — runs
// entirely in linear mode with zero steady-state allocations. These
// tests pin that with testing.AllocsPerRun so an accidental
// interface boxing or slice regrowth on the hot path fails CI.

// TestMsgStoreLinearModeAllocs: add then take of an unexpected message
// in linear mode allocates nothing once the small slice has capacity.
func TestMsgStoreLinearModeAllocs(t *testing.T) {
	var s msgStore
	m := &message{src: 3, tag: 7, comm: WorldComm}
	q := &Request{src: 3, tag: 7, comm: WorldComm, recv: true}

	// Warm up the small-slice capacity.
	s.add(m)
	if s.take(q) != m {
		t.Fatal("warmup take failed")
	}

	taken := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.add(m)
		if s.take(q) != nil {
			taken++
		}
	})
	if allocs != 0 {
		t.Errorf("linear-mode msgStore add/take allocates %.1f objects per run, want 0", allocs)
	}
	if taken == 0 {
		t.Fatal("no messages matched")
	}
	if s.spilled || s.n != 0 {
		t.Fatalf("store should be empty and linear: spilled=%v n=%d", s.spilled, s.n)
	}
}

// TestReqStoreLinearModeAllocs: post then match of a receive in linear
// mode allocates nothing once the small slice has capacity.
func TestReqStoreLinearModeAllocs(t *testing.T) {
	var s reqStore
	m := &message{src: 3, tag: 7, comm: WorldComm}
	q := &Request{src: 3, tag: 7, comm: WorldComm, recv: true}

	s.add(q)
	if s.match(m) != q {
		t.Fatal("warmup match failed")
	}

	matched := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.add(q)
		if s.match(m) != nil {
			matched++
		}
	})
	if allocs != 0 {
		t.Errorf("linear-mode reqStore add/match allocates %.1f objects per run, want 0", allocs)
	}
	if matched == 0 {
		t.Fatal("no receives matched")
	}
	if s.spilled || s.n != 0 {
		t.Fatalf("store should be empty and linear: spilled=%v n=%d", s.spilled, s.n)
	}
}
