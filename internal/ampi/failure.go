package ampi

import (
	"errors"
	"fmt"

	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/ult"
)

// ErrNodeFailed is wrapped by Run's error when an injected hard fault
// kills a node.
var ErrNodeFailed = errors.New("ampi: node failed")

// NodeFailure describes an injected hard fault that killed the job. It
// is the error Run returns (wrapping ErrNodeFailed), so supervisors can
// errors.As it out and drive an automated restart; it also stays
// readable via World.Failure after the run.
type NodeFailure struct {
	// Node is the failed node's id.
	Node int
	// At is the virtual time the node died.
	At sim.Time
	// Killed is the number of ranks resident on the node when it died.
	Killed int
}

// Error implements error.
func (e *NodeFailure) Error() string {
	if e.Killed == 0 {
		return fmt.Sprintf("%v: node %d died at %v with no resident ranks; job aborted (fail-stop)",
			ErrNodeFailed, e.Node, e.At)
	}
	return fmt.Sprintf("%v: node %d died at %v, killing %d rank(s); restart from the last checkpoint",
		ErrNodeFailed, e.Node, e.At, e.Killed)
}

// Unwrap keeps errors.Is(err, ErrNodeFailed) working.
func (e *NodeFailure) Unwrap() error { return ErrNodeFailed }

// Failure returns the node failure that killed the job, or nil.
func (w *World) Failure() *NodeFailure { return w.failure }

// ScheduleNodeFailure injects a hard fault: at virtual time `at`, the
// given node dies, killing every rank resident on (or migrating to) it
// and aborting the job. A job that has been checkpointing can then be
// restarted from its last snapshot via NewWorldFromCheckpoint — by hand
// or, automatically, under an ft.Supervisor — the fault-tolerance story
// §2.1 attributes to migratable rank state.
//
// The failure fires between scheduling quanta (the simulation's event
// granularity); ranks die at their next suspension point, which is
// when a real hard fault would be observed by the runtime's fault
// detector. A failure whose time lands after the job has already
// completed is a no-op: a finished world cannot fail. A failure on a
// node hosting zero ranks still aborts the job (fail-stop semantics:
// the runtime's communication layer spans every node), with a message
// saying so.
func (w *World) ScheduleNodeFailure(nodeID int, at sim.Time) error {
	if nodeID < 0 || nodeID >= len(w.Cluster.Nodes) {
		return fmt.Errorf("ampi: no node %d", nodeID)
	}
	w.Cluster.Engine.At(at, func() { w.crashNode(nodeID, at) })
	return nil
}

// crashNode executes a scheduled node failure.
func (w *World) crashNode(nodeID int, at sim.Time) {
	if w.runtimeErr != nil {
		return
	}
	// A failure that fires after every rank finished is a no-op: the
	// job completed before the fault, so there is nothing to kill and
	// no reason to fail a finished world.
	finished := true
	for _, r := range w.Ranks {
		if r.thread.State() != ult.Done {
			finished = false
			break
		}
	}
	if finished {
		return
	}
	killed := 0
	for _, r := range w.Ranks {
		if r.pe.Proc.Node.ID != nodeID {
			continue
		}
		r.thread.Kill(fmt.Sprintf("node %d failed at %v", nodeID, at))
		killed++
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: at, Kind: trace.KindFault,
			PE: -1, VP: -1, Peer: int32(nodeID), Aux: trace.FaultNodeCrash, Bytes: uint64(killed)})
		w.tracer.Emit(trace.Event{Time: at, Kind: trace.KindDetect,
			PE: -1, VP: -1, Peer: int32(nodeID)})
	}
	w.failure = &NodeFailure{Node: nodeID, At: at, Killed: killed}
	w.fail(w.failure)
}
