package ampi

import (
	"errors"
	"fmt"

	"provirt/internal/sim"
)

// ErrNodeFailed is wrapped by Run's error when an injected hard fault
// kills a node.
var ErrNodeFailed = errors.New("ampi: node failed")

// ScheduleNodeFailure injects a hard fault: at virtual time `at`, the
// given node dies, killing every rank resident on (or migrating to) it
// and aborting the job. A job that has been checkpointing can then be
// restarted from its last snapshot via NewWorldFromCheckpoint — the
// fault-tolerance story §2.1 attributes to migratable rank state.
//
// The failure fires between scheduling quanta (the simulation's event
// granularity); ranks die at their next suspension point, which is
// when a real hard fault would be observed by the runtime's fault
// detector.
func (w *World) ScheduleNodeFailure(nodeID int, at sim.Time) error {
	if nodeID < 0 || nodeID >= len(w.Cluster.Nodes) {
		return fmt.Errorf("ampi: no node %d", nodeID)
	}
	w.Cluster.Engine.At(at, func() {
		if w.runtimeErr != nil {
			return
		}
		killed := 0
		for _, r := range w.Ranks {
			if r.pe.Proc.Node.ID != nodeID {
				continue
			}
			r.thread.Kill(fmt.Sprintf("node %d failed at %v", nodeID, at))
			killed++
		}
		w.fail(fmt.Errorf("%w: node %d died at %v, killing %d rank(s); restart from the last checkpoint",
			ErrNodeFailed, nodeID, at, killed))
	})
	return nil
}
