// Package ampi is the reproduction's Adaptive-MPI-like runtime: an MPI
// layer whose ranks are migratable user-level threads scheduled
// cooperatively on the PEs of a simulated cluster, with global/static
// state privatized by a method from internal/core.
//
// Programs are Go functions receiving a *Rank; they use the familiar
// MPI surface (Send/Recv/Isend/Irecv/Wait, Barrier, Bcast, Reduce,
// Allreduce, Gather, Scatter, user-defined reduction operators) plus
// AMPI extensions (Migrate). Blocking calls suspend the rank's
// user-level thread so another rank can run — message-driven
// overdecomposition exactly as §2.1 describes.
package ampi

import (
	"errors"
	"fmt"

	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/lb"
	"provirt/internal/loader"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
	"provirt/internal/ult"
)

// Program is a virtualizable MPI program: its synthetic binary image
// plus the Go function each rank executes.
type Program struct {
	Image *elf.Image
	// Main is the rank body (the MPI main after MPI_Init).
	Main func(r *Rank)
	// ReduceFuncs maps image function names to the Go implementations
	// of user-defined reduction operators created with OpCreate.
	ReduceFuncs map[string]ReduceFunc
}

// Config describes a virtualized run: the machine, the degree of
// virtualization, and the privatization method.
type Config struct {
	Machine machine.Config
	// VPs is the number of virtual ranks (+vp N).
	VPs int
	// Privatize selects the privatization method.
	Privatize core.Kind
	// Method, if non-nil, overrides Privatize with a configured
	// method instance (e.g. core.NewPIEglobals with future-work
	// options).
	Method core.Method
	// Toolchain and OS describe the build/run environment; zero values
	// select the paper's Bridges-2 environment.
	Toolchain core.Toolchain
	OS        core.OS
	// StackSize overrides the default 1 MiB per-rank ULT stack.
	StackSize uint64
	// Balancer, if set, runs at every AMPI_Migrate collective.
	Balancer lb.Strategy
	// Trigger, if set, gates the balancer: balancing only runs when
	// ShouldBalance reports true (e.g. lb.ImbalanceTrigger). Nil
	// balances at every opportunity.
	Trigger lb.Trigger
	// Checkpoint, if set, is the policy Rank.CheckpointIfDue consults:
	// where snapshots go and how often they are taken. Nil means
	// CheckpointIfDue never checkpoints.
	Checkpoint *CheckpointPolicy
	// Placement, if non-nil, overrides the default block mapping of VPs
	// onto PEs: rank vp starts on PE Placement[vp]. Its length must be
	// VPs and every entry a valid PE id. Supervised shrink recovery uses
	// this to remap ranks displaced from a failed node onto survivors.
	Placement []int
	// Tracer, if set, receives Projections-style virtual-time events
	// from every layer of the run: engine dispatch, context switches
	// and execution quanta, message posts/matches/waits, collectives,
	// migrations, link occupancy, and shared-FS transfers. The nil
	// default is the zero-overhead path: each hook is a single pointer
	// comparison, and no hook perturbs virtual time, so traced and
	// untraced runs produce identical results.
	Tracer trace.Tracer
	// SimWorkers is accepted for parity with FlatConfig: the goroutine
	// world hands control between ranks and the engine through shared
	// per-PE schedulers, match queues, and one shared filesystem, so
	// the whole world forms a single lookahead domain and runs serial
	// at any setting. Results are identical at every value; the flat
	// path (FlatWorld) is where SimWorkers > 1 buys parallelism.
	SimWorkers int

	// restart, when set via NewWorldFromCheckpoint, restores every
	// rank's state from the snapshot before its thread first runs.
	restart *Checkpoint
}

// normalize fills defaults.
func (c *Config) normalize() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.VPs <= 0 {
		return fmt.Errorf("ampi: VPs must be positive, got %d", c.VPs)
	}
	if c.Toolchain == (core.Toolchain{}) && !osSet(c.OS) {
		c.Toolchain, c.OS = core.Bridges2Env()
	}
	return nil
}

func osSet(o core.OS) bool { return o != (core.OS{}) }

// World is one virtualized MPI job.
type World struct {
	Cfg     Config
	Cluster *machine.Cluster
	Method  core.Method
	Program *Program

	Ranks  []*Rank
	scheds []*ult.Scheduler
	envs   []*core.ProcessEnv

	// SetupDone is the virtual time at which privatization setup
	// completed on the slowest process (Fig. 5's startup metric).
	SetupDone sim.Time

	// Migrations counts completed rank migrations.
	Migrations int
	// MigratedBytes counts full logical payload bytes moved by
	// migrations.
	MigratedBytes uint64
	// MigratedDeltaBytes counts the bytes migrations actually pushed
	// through the network: dirty blocks only, once a rank has a
	// previous snapshot to be incremental against.
	MigratedDeltaBytes uint64
	// SkippedBalances counts Migrate collectives where the trigger
	// declined to rebalance.
	SkippedBalances int
	// Checkpoints counts snapshots actually taken (by Checkpoint,
	// CheckpointTo, or a CheckpointIfDue that came due).
	Checkpoints int
	// RestoreDone is the virtual time the slowest rank finished
	// restoring on a restarted world (zero when not a restart).
	RestoreDone sim.Time
	// RestoredBytes is the payload volume restored into ranks on a
	// restarted world.
	RestoredBytes uint64

	// tracer mirrors Cfg.Tracer for the runtime's hook sites.
	tracer trace.Tracer

	migrateWaiting []*Rank
	lastMigrations []MigrationRecord
	ckptWaiting    []*Rank
	lastCheckpoint *Checkpoint
	lastCkptAt     sim.Time
	ckptDecision   bool
	runtimeErr     error
	failure        *NodeFailure

	// reconfigPending arms a graceful drain (see ScheduleReconfigure):
	// the next CheckpointIfDue snapshots unconditionally and stops the
	// world with a *Reconfigure error. reconfigAt is when the drain
	// was requested.
	reconfigPending bool
	reconfigAt      sim.Time

	// Scratch pools (see pool.go). Per-world, engine-thread-only.
	bufFree [][]float64
	msgFree []*message
}

// NewWorld builds the cluster, runs privatization setup on every
// process, and creates (but does not start) the rank threads.
func NewWorld(cfg Config, prog *Program) (*World, error) {
	if prog == nil || prog.Image == nil || prog.Main == nil {
		return nil, errors.New("ampi: program must have an image and a main function")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cl, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	method := cfg.Method
	if method == nil {
		method = core.New(cfg.Privatize)
	} else {
		cfg.Privatize = method.Kind()
	}
	w := &World{Cfg: cfg, Cluster: cl, Method: method, Program: prog, tracer: cfg.Tracer}
	if w.tracer != nil {
		cl.SetTracer(w.tracer)
	}

	// Block-map VPs onto PEs: PE i runs VPs [i*V/P, (i+1)*V/P).
	// Config.Placement overrides the block map rank by rank.
	pes := cl.PEs()
	vpPE := make([]int, cfg.VPs)
	if cfg.Placement != nil {
		if len(cfg.Placement) != cfg.VPs {
			return nil, fmt.Errorf("ampi: Placement has %d entries, want %d (one per VP)",
				len(cfg.Placement), cfg.VPs)
		}
		for vp, pe := range cfg.Placement {
			if pe < 0 || pe >= len(pes) {
				return nil, fmt.Errorf("ampi: Placement[%d] = %d, but machine has PEs 0..%d",
					vp, pe, len(pes)-1)
			}
			vpPE[vp] = pe
		}
	} else {
		for vp := range vpPE {
			vpPE[vp] = vp * len(pes) / cfg.VPs
		}
	}

	// Per-process privatization setup. Processes start concurrently;
	// the job's startup time is the slowest process.
	var setupDone sim.Time
	ctxByVP := make([]*core.RankContext, cfg.VPs)
	sharedByProc := make(map[*machine.Process]*elf.Instance)
	for _, proc := range cl.Processes() {
		firstPE := proc.PEs[0].ID
		env := &core.ProcessEnv{
			Proc:      proc,
			Cost:      cl.Cost,
			Linker:    loader.New(proc, cl.Cost),
			FS:        cl.FS,
			Toolchain: cfg.Toolchain,
			OS:        cfg.OS,
			SMP:       cfg.Machine.SMPMode(),
			StackSize: cfg.StackSize,
			PEOfVP:    func(vp int) int { return vpPE[vp] - firstPE },
		}
		if err := w.Method.CheckEnv(env); err != nil {
			return nil, err
		}
		var vps []int
		for vp, pe := range vpPE {
			if pes[pe].Proc == proc {
				vps = append(vps, vp)
			}
		}
		w.envs = append(w.envs, env)
		res, err := w.Method.Setup(env, prog.Image, vps, 0)
		if err != nil {
			return nil, err
		}
		sharedByProc[proc] = res.SharedInstance
		for i, vp := range vps {
			ctxByVP[vp] = res.Contexts[i]
		}
		if res.Done > setupDone {
			setupDone = res.Done
		}
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{Time: 0, Dur: res.Done, Kind: trace.KindSetup,
				PE: int32(firstPE), VP: -1, Peer: -1})
		}
	}
	w.SetupDone = setupDone
	w.lastCkptAt = setupDone // CheckpointIfDue intervals count from job start

	// One scheduler per PE, with the method's context-switch surcharge.
	for _, pe := range pes {
		s := ult.NewScheduler(pe, cl.Engine, cl.Cost)
		s.SwitchExtra = func(from, to *ult.Thread) sim.Time {
			return w.Method.SwitchExtra(rankCtx(from), rankCtx(to))
		}
		s.Tracer = w.tracer
		w.scheds = append(w.scheds, s)
	}

	// Rank objects and their threads, in two contiguous slabs (one Rank
	// and one Thread record per VP instead of a heap-object pair each),
	// sharing a single body closure. At million-VP worlds this is the
	// difference between 2N cache-hostile allocations and 2 slabs.
	rankStore := make([]Rank, cfg.VPs)
	threadStore := make([]ult.Thread, cfg.VPs)
	body := func(t *ult.Thread) { prog.Main(w.Ranks[t.ID]) }
	w.Ranks = make([]*Rank, cfg.VPs)
	for vp := 0; vp < cfg.VPs; vp++ {
		r := &rankStore[vp]
		*r = Rank{world: w, vp: vp, ctx: ctxByVP[vp], pe: pes[vpPE[vp]]}
		r.thread = &threadStore[vp]
		ult.InitThread(r.thread, vp, body)
		r.thread.Context = r.ctx
		r.ctx.Thread = r.thread
		w.Ranks[vp] = r
	}

	if cfg.restart != nil {
		// Restarting from a checkpoint: threads start only after
		// their state is read back and restored.
		if err := w.restoreFromCheckpoint(cfg.restart, vpPE); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Hand ranks to their home schedulers once setup completes.
	cl.Engine.At(setupDone, func() {
		for vp, r := range w.Ranks {
			w.scheds[vpPE[vp]].Adopt(r.thread)
		}
	})
	return w, nil
}

func rankCtx(t *ult.Thread) *core.RankContext {
	if t == nil {
		return nil
	}
	ctx, _ := t.Context.(*core.RankContext)
	return ctx
}

// Run drives the simulation until every rank finishes. It returns the
// first rank error or runtime error encountered.
func (w *World) Run() error {
	err := w.Cluster.Engine.Run(func() bool {
		if w.runtimeErr != nil {
			return true
		}
		for _, r := range w.Ranks {
			if r.thread.State() != ult.Done {
				return false
			}
		}
		return true
	})
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: w.Time(), Kind: trace.KindRunEnd, PE: -1, VP: -1, Peer: -1})
	}
	if w.runtimeErr != nil {
		return w.runtimeErr
	}
	// A rank that died of a panic explains any apparent deadlock, so
	// report it first.
	for _, r := range w.Ranks {
		if r.thread.Err != nil {
			return r.thread.Err
		}
	}
	if err != nil {
		return fmt.Errorf("ampi: %w (%s)", err, w.describeStall())
	}
	return nil
}

// describeStall summarizes rank states for deadlock diagnostics.
func (w *World) describeStall() string {
	states := make(map[ult.State]int)
	for _, r := range w.Ranks {
		states[r.thread.State()]++
	}
	return fmt.Sprintf("rank states: %v", states)
}

// fail records a fatal runtime error and halts the simulation.
func (w *World) fail(err error) {
	if w.runtimeErr == nil {
		w.runtimeErr = err
	}
	w.Cluster.Engine.Halt()
}

// Time reports the maximum PE-local clock — the job's elapsed virtual
// time.
func (w *World) Time() sim.Time {
	var t sim.Time
	for _, s := range w.scheds {
		if s.Now() > t {
			t = s.Now()
		}
	}
	return t
}

// ExecutionTime reports job time excluding startup.
func (w *World) ExecutionTime() sim.Time {
	t := w.Time()
	if t < w.SetupDone {
		return 0
	}
	return t - w.SetupDone
}

// TotalSwitches sums ULT context switches across PEs.
func (w *World) TotalSwitches() uint64 {
	var n uint64
	for _, s := range w.scheds {
		n += s.Switches()
	}
	return n
}

// RankLoads snapshots every rank's measured load and current placement
// in the load balancer's input form. Supervisors use it after a failed
// run to compute a shrink placement for the restart.
func (w *World) RankLoads() []lb.RankLoad {
	out := make([]lb.RankLoad, len(w.Ranks))
	for i, r := range w.Ranks {
		out[i] = lb.RankLoad{VP: r.vp, PE: r.pe.ID, Load: r.thread.Load, Migratable: r.ctx.Migratable}
	}
	return out
}

// Scheds exposes the per-PE schedulers (read-only use).
func (w *World) Scheds() []*ult.Scheduler { return w.scheds }

// EnvFor returns the process environment a PE belongs to.
func (w *World) EnvFor(pe *machine.PE) *core.ProcessEnv {
	for _, env := range w.envs {
		if env.Proc == pe.Proc {
			return env
		}
	}
	return nil
}

// sharedInstanceOf returns the base program instance of a process.
func (w *World) sharedInstanceOf(proc *machine.Process) *elf.Instance {
	for _, env := range w.envs {
		if env.Proc == proc {
			// The base instance is namespace 0's first handle.
			for _, h := range env.Linker.Handles() {
				if h.Path == w.Program.Image.Name {
					return h.Inst
				}
			}
		}
	}
	return nil
}
