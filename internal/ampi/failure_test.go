package ampi_test

import (
	"errors"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
)

// TestNodeFailureRecovery runs the full fault-tolerance loop: a job
// checkpoints periodically, a node dies mid-run, and the job restarts
// from the last snapshot on the surviving node, finishing with the
// exact uninterrupted results.
func TestNodeFailureRecovery(t *testing.T) {
	// Long enough that the 130ms failure below lands mid-run even with
	// incremental checkpoints (only the first one pays the full write).
	const total, ckptEvery = 20, 4
	finals := make([]uint64, 4)
	periodic := &ampi.Program{
		Image: ckptImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < total {
				it := ctx.Load("iter")
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(2 * time.Millisecond)
				if int(it+1)%ckptEvery == 0 {
					r.Checkpoint("/scratch/ft")
				}
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("acc")
		},
	}

	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w, err := ampi.NewWorld(cfg, periodic)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 dies mid-run, after the first checkpoint (~8ms of compute
	// per checkpoint period plus ~100ms startup).
	if err := w.ScheduleNodeFailure(1, 130*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	if !errors.Is(err, ampi.ErrNodeFailed) {
		t.Fatalf("run ended with %v, want node failure", err)
	}
	ck := w.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint survived the failure")
	}

	// Restart on the surviving single node.
	finals2 := make([]uint64, 4)
	restartProg := &ampi.Program{
		Image: ckptImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < total {
				it := ctx.Load("iter")
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(2 * time.Millisecond)
			}
			r.Barrier()
			finals2[r.Rank()] = ctx.Load("acc")
		},
	}
	w2, err := ampi.NewWorldFromCheckpoint(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}, restartProg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	for vp := range finals2 {
		if finals2[vp] != expectedAcc(total, vp) {
			t.Errorf("rank %d finished with %d after recovery, want %d",
				vp, finals2[vp], expectedAcc(total, vp))
		}
	}
}

func TestScheduleNodeFailureValidation(t *testing.T) {
	w, err := ampi.NewWorld(smallConfig(1, core.KindNone), ckptProgram(1, 0, make([]uint64, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeFailure(5, 0); err == nil {
		t.Fatal("bogus node id accepted")
	}
}
