package ampi_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"provirt/internal/ampi"
	"provirt/internal/core"
	"provirt/internal/machine"
	"provirt/internal/sim"
)

// TestNodeFailureRecovery runs the full fault-tolerance loop: a job
// checkpoints periodically, a node dies mid-run, and the job restarts
// from the last snapshot on the surviving node, finishing with the
// exact uninterrupted results.
func TestNodeFailureRecovery(t *testing.T) {
	// Long enough that the 130ms failure below lands mid-run even with
	// incremental checkpoints (only the first one pays the full write).
	const total, ckptEvery = 20, 4
	finals := make([]uint64, 4)
	periodic := &ampi.Program{
		Image: ckptImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < total {
				it := ctx.Load("iter")
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(2 * time.Millisecond)
				if int(it+1)%ckptEvery == 0 {
					r.Checkpoint("/scratch/ft")
				}
			}
			r.Barrier()
			finals[r.Rank()] = ctx.Load("acc")
		},
	}

	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w, err := ampi.NewWorld(cfg, periodic)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 dies mid-run, after the first checkpoint (~8ms of compute
	// per checkpoint period plus ~100ms startup).
	if err := w.ScheduleNodeFailure(1, 130*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	if !errors.Is(err, ampi.ErrNodeFailed) {
		t.Fatalf("run ended with %v, want node failure", err)
	}
	ck := w.LastCheckpoint()
	if ck == nil {
		t.Fatal("no checkpoint survived the failure")
	}

	// Restart on the surviving single node.
	finals2 := make([]uint64, 4)
	restartProg := &ampi.Program{
		Image: ckptImage(),
		Main: func(r *ampi.Rank) {
			ctx := r.Ctx()
			for int(ctx.Load("iter")) < total {
				it := ctx.Load("iter")
				ctx.Store("acc", ctx.Load("acc")+(it+1)*uint64(r.Rank()+1))
				ctx.Store("iter", it+1)
				r.Compute(2 * time.Millisecond)
			}
			r.Barrier()
			finals2[r.Rank()] = ctx.Load("acc")
		},
	}
	w2, err := ampi.NewWorldFromCheckpoint(ampi.Config{
		Machine:   machine.Config{Nodes: 1, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}, restartProg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	for vp := range finals2 {
		if finals2[vp] != expectedAcc(total, vp) {
			t.Errorf("rank %d finished with %d after recovery, want %d",
				vp, finals2[vp], expectedAcc(total, vp))
		}
	}
}

func TestScheduleNodeFailureValidation(t *testing.T) {
	w, err := ampi.NewWorld(smallConfig(1, core.KindNone), ckptProgram(1, 0, make([]uint64, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeFailure(5, 0); err == nil {
		t.Fatal("bogus node id accepted")
	}
}

// A failure whose time lands after the job completed must be a no-op: a
// finished world cannot fail retroactively.
func TestNodeFailureAfterCompletionIsNoOp(t *testing.T) {
	finals := make([]uint64, 4)
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 2},
		VPs:       4,
		Privatize: core.KindPIEglobals,
	}
	w, err := ampi.NewWorld(cfg, ckptProgram(3, 0, finals))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeFailure(1, sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("failure scheduled after completion killed the job: %v", err)
	}
	if f := w.Failure(); f != nil {
		t.Errorf("finished world reports failure %v", f)
	}
	for vp := range finals {
		if finals[vp] != expectedAcc(3, vp) {
			t.Errorf("rank %d acc = %d, want %d", vp, finals[vp], expectedAcc(3, vp))
		}
	}
}

// Losing a node that hosts zero ranks still aborts the job (fail-stop:
// the runtime spans every node) — and says so, rather than claiming
// ranks were killed.
func TestNodeFailureOnEmptyNodeAborts(t *testing.T) {
	cfg := ampi.Config{
		Machine:   machine.Config{Nodes: 2, ProcsPerNode: 1, PEsPerProc: 1},
		VPs:       2,
		Privatize: core.KindPIEglobals,
		Placement: []int{0, 0}, // both ranks on node 0; node 1 is empty
	}
	w, err := ampi.NewWorld(cfg, ckptProgram(3, 0, make([]uint64, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleNodeFailure(1, 1); err != nil {
		t.Fatal(err)
	}
	err = w.Run()
	if !errors.Is(err, ampi.ErrNodeFailed) {
		t.Fatalf("run ended with %v, want node failure", err)
	}
	if !strings.Contains(err.Error(), "no resident ranks") {
		t.Errorf("error %q does not explain the node was empty", err)
	}
	nf := w.Failure()
	if nf == nil || nf.Node != 1 || nf.Killed != 0 {
		t.Errorf("failure record = %+v, want node 1 with 0 ranks killed", nf)
	}
}
