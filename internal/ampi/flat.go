package ampi

import (
	"errors"
	"fmt"

	"provirt/internal/core"
	"provirt/internal/elf"
	"provirt/internal/loader"
	"provirt/internal/machine"
	"provirt/internal/sim"
	"provirt/internal/trace"
)

// FlatWorld is the million-VP scale path: a world whose ranks are bare
// array-of-structs records instead of user-level threads, and whose
// collectives are modeled directly on the event engine as binomial-tree
// waves — one engine event per tree edge, O(ranks) events total, no
// goroutine, stack, heap, or matchqueue per rank. The tree shape, cost
// model, and network tiers are exactly the ones the full World charges
// through its message-level path (tree.go, machine.Cluster), so flat
// results are the same physics at a scale the per-rank machinery cannot
// reach: ~32 bytes of runtime state per rank instead of a Thread +
// Rank + stack block each.
//
// The flat world is also the repo's first parallel-simulation consumer:
// with FlatConfig.SimWorkers > 1 its events run on a sharded
// sim.ParallelEngine, partitioned into the cluster's lookahead domains
// (machine.Cluster.DomainPlan). Every callback is written
// domain-confined — it touches only the target rank's record and its
// domain's counter slot, and reads of other ranks are limited to fields
// immutable during a run (geometry, home PE) — so rows and trace bytes
// are byte-identical to the serial engine at any worker count.
//
// Privatization cost and footprint are modeled by measurement plus
// extrapolation: Setup runs for two sample ranks, and the per-rank
// slope of setup time and resident bytes scales to the full world.
// This is the standard laptop-class answer to "what would a million
// ranks cost": the per-rank state is identical by construction (ranks
// are symmetric), so the slope is exact, not an estimate.
type FlatWorld struct {
	Cfg     FlatConfig
	Cluster *machine.Cluster

	ranks []flatRank
	pes   []*machine.PE

	// eng is the virtual clock: the cluster's serial engine in domain
	// mode, or a sim.ParallelEngine when SimWorkers asks for one.
	eng sim.Dispatcher
	// domOf maps global PE id to lookahead domain.
	domOf []int32
	// doms holds the per-domain mutable counters. Each event callback
	// writes only its own domain's slot; totals are folded on demand
	// (sums and maxima commute, so they are scheduling-independent).
	doms []flatDomain

	// SetupDone is the modeled privatization-setup completion time for
	// the slowest process (extrapolated from the sampled ranks).
	SetupDone sim.Time
	// PerRankBytes is one rank's measured resident footprint: heap
	// resident bytes (stack, private data delta) as Setup produced them.
	PerRankBytes uint64
	// SharedBytesPerRank is one rank's bytes that stay on shared
	// read-only mappings (code pages, RO data under COW) — virtual
	// address space that costs no physical memory per rank.
	SharedBytesPerRank uint64

	// Migrations / MigratedBytes count completed storm migrations,
	// folded from the per-domain counters after each storm.
	Migrations    int
	MigratedBytes uint64

	// collBytes is the running collective's per-edge payload, threaded
	// to the event callbacks without per-event state.
	collBytes uint64

	// Cached bound-method values so hot-path scheduling via AtCallIn
	// allocates neither closures nor nodes.
	reduceFn  sim.TimedCall
	bcastFn   sim.TimedCall
	migrateFn sim.TimedCall

	tracer trace.Tracer
}

// flatRank is one virtual rank's complete runtime state on the flat
// path. Kept deliberately small (geometry, wave state, clock — 24
// bytes): a million of them is one 24 MB slab.
type flatRank struct {
	vp      int32
	pe      int32
	parent  int32 // absolute parent rank in the tree rooted at 0; -1 at root
	pending int32 // reduce-wave children still outstanding
	clock   sim.Time
}

// flatDomain is one lookahead domain's slice of the world's mutable
// counters, padded to a cache line so concurrent domains don't falsely
// share one.
type flatDomain struct {
	done          int // ranks finished with the running collective
	pendingOp     int // outstanding modeled operations in this domain
	maxClock      sim.Time
	migrations    int
	migratedBytes uint64
	_             [24]byte
}

// FlatConfig describes a flat-path run.
type FlatConfig struct {
	Machine machine.Config
	// VPs is the number of virtual ranks.
	VPs int
	// Image is the program image privatization setup is sampled on.
	Image *elf.Image
	// Method is the privatization method; nil selects PIEglobals with
	// code-page sharing and read-only-data COW — the configuration the
	// scale experiment exists to demonstrate.
	Method core.Method
	// Toolchain and OS as in Config; zero values select Bridges-2.
	Toolchain core.Toolchain
	OS        core.OS
	// Tracer receives engine, link, and setup events. At this scale it
	// should be a windowed writer (trace.NewWindowWriter), not an
	// in-memory recorder.
	Tracer trace.Tracer
	// SimWorkers enables intra-world parallel simulation: values > 1
	// run the event engine as a sim.ParallelEngine with up to that many
	// domains advancing concurrently. Results, rows, and trace bytes
	// are byte-identical at any setting; <= 1 runs serial.
	SimWorkers int
}

// NewFlatWorld builds the cluster, samples privatization setup on two
// representative ranks to calibrate the per-rank slopes, and lays out
// the flat rank table.
func NewFlatWorld(cfg FlatConfig) (*FlatWorld, error) {
	if cfg.VPs <= 0 {
		return nil, fmt.Errorf("ampi: flat world needs positive VPs, got %d", cfg.VPs)
	}
	if cfg.Image == nil {
		return nil, errors.New("ampi: flat world needs a program image")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Toolchain == (core.Toolchain{}) && !osSet(cfg.OS) {
		cfg.Toolchain, cfg.OS = core.Bridges2Env()
	}
	cl, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	method := cfg.Method
	if method == nil {
		method = core.NewPIEglobals(core.PIEOptions{ShareCodePages: true, ShareROData: true})
	}
	w := &FlatWorld{Cfg: cfg, Cluster: cl, pes: cl.PEs(), tracer: cfg.Tracer}
	w.reduceFn = w.reduceArrive
	w.bcastFn = w.bcastArrive
	w.migrateFn = w.migrateArrive

	// The clock: both engines stamp ties with the same
	// (time, domain, creator, count) total order, so which one runs is
	// invisible in the results. The serial engine enters domain mode
	// even at SimWorkers <= 1 precisely so the parallel engine has a
	// serial twin to be byte-compared against.
	domOf, ndom, lookahead := cl.DomainPlan()
	w.domOf = domOf
	w.doms = make([]flatDomain, ndom)
	if cfg.SimWorkers > 1 && ndom > 1 && lookahead > 0 {
		w.eng = sim.NewParallelEngine(sim.ParallelConfig{
			Domains:   ndom,
			Lookahead: lookahead,
			Workers:   cfg.SimWorkers,
			Tracer:    cfg.Tracer,
		})
	} else {
		cl.Engine.EnableDomains(ndom)
		w.eng = cl.Engine
	}
	if w.tracer != nil {
		// Setup-phase emissions (shared-FS spans during sampling) and the
		// serial engine's dispatch records; run-phase link events go
		// through the Sched's tracer so the parallel engine can merge
		// them deterministically.
		cl.SetTracer(w.tracer)
	}

	// Calibrate: run real privatization setup for one and for two ranks
	// in the first process, on throwaway linkers so the samples don't
	// interact. Ranks are symmetric, so the second rank's increments are
	// the exact per-rank slopes.
	proc := cl.Processes()[0]
	sample := func(vps []int) (*core.SetupResult, error) {
		env := &core.ProcessEnv{
			Proc:      proc,
			Cost:      cl.Cost,
			Linker:    loader.New(proc, cl.Cost),
			FS:        cl.FS,
			Toolchain: cfg.Toolchain,
			OS:        cfg.OS,
			SMP:       cfg.Machine.SMPMode(),
		}
		if err := method.CheckEnv(env); err != nil {
			return nil, err
		}
		return method.Setup(env, cfg.Image, vps, 0)
	}
	one, err := sample([]int{0})
	if err != nil {
		return nil, err
	}
	two, err := sample([]int{0, 1})
	if err != nil {
		return nil, err
	}
	perRankTime := two.Done - one.Done
	if perRankTime < 0 {
		perRankTime = 0
	}
	ranksPerProc := (cfg.VPs + len(cl.Processes()) - 1) / len(cl.Processes())
	w.SetupDone = one.Done + sim.Time(ranksPerProc-1)*perRankTime
	ctx := two.Contexts[1]
	w.PerRankBytes = ctx.Heap.ResidentBytes()
	w.SharedBytesPerRank = ctx.Heap.SharedSpanBytes()
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: 0, Dur: w.SetupDone, Kind: trace.KindSetup,
			PE: 0, VP: -1, Peer: -1})
	}

	// The rank table: block placement, binomial-tree geometry rooted at
	// rank 0, clocks starting when setup completes.
	w.ranks = make([]flatRank, cfg.VPs)
	npes := len(w.pes)
	for vp := range w.ranks {
		parent, _ := binomialNode(vp, cfg.VPs)
		w.ranks[vp] = flatRank{
			vp:      int32(vp),
			pe:      int32(vp * npes / cfg.VPs),
			parent:  int32(parent),
			pending: int32(binomialChildCount(vp, cfg.VPs)),
			clock:   w.SetupDone,
		}
	}
	for d := range w.doms {
		w.doms[d].maxClock = w.SetupDone
	}
	// Steady state keeps at most one event in flight per tree level
	// fan-in plus the leaf wave; reserving the leaf count covers the
	// worst instantaneous backlog without mid-run growth.
	w.eng.Reserve((cfg.VPs + 1) / 2)
	return w, nil
}

// VPs reports the number of virtual ranks.
func (w *FlatWorld) VPs() int { return len(w.ranks) }

// Time reports the maximum rank clock — the job's elapsed virtual time.
func (w *FlatWorld) Time() sim.Time {
	t := w.SetupDone
	for d := range w.doms {
		if w.doms[d].maxClock > t {
			t = w.doms[d].maxClock
		}
	}
	return t
}

// EventsFired reports engine events processed so far.
func (w *FlatWorld) EventsFired() uint64 { return w.eng.EventsFired() }

// SimDomains reports how many lookahead domains the world's PEs were
// partitioned into.
func (w *FlatWorld) SimDomains() int { return len(w.doms) }

// dom returns the counter slot for the rank's current home domain.
func (w *FlatWorld) dom(r *flatRank) *flatDomain {
	return &w.doms[w.domOf[r.pe]]
}

// advance folds a rank-local completion time into its domain's clock.
func (w *FlatWorld) advance(r *flatRank, t sim.Time) {
	if d := w.dom(r); t > d.maxClock {
		d.maxClock = t
	}
}

// doneRanks sums the per-domain completion counters. Only called
// between events (serial) or at window barriers (parallel), when no
// callback is mid-flight.
func (w *FlatWorld) doneRanks() int {
	n := 0
	for d := range w.doms {
		n += w.doms[d].done
	}
	return n
}

// pendingOps sums the per-domain outstanding-operation counters.
func (w *FlatWorld) pendingOps() int {
	n := 0
	for d := range w.doms {
		n += w.doms[d].pendingOp
	}
	return n
}

// transfer charges a network transfer like machine.Cluster.Transfer,
// but emits its link span through the Sched's tracer so that under the
// parallel engine the event lands in the merged per-window stream
// instead of racing other domains to the user's tracer.
func (w *FlatWorld) transfer(s sim.Sched, start sim.Time, a, b *machine.PE, n uint64) sim.Time {
	d := w.Cluster.TransferTimeAt(start, a, b, n)
	if tr := s.Tracer(); tr != nil {
		tr.Emit(trace.Event{Time: start, Dur: d, Kind: trace.KindLink,
			PE: int32(a.ID), VP: -1, Peer: int32(b.ID), Aux: w.Cluster.Tier(a, b), Bytes: n})
	}
	return start + d
}

// Allreduce models one allreduce of bytes per tree edge across every
// rank: a reduce wave up the binomial tree followed by a broadcast wave
// down it. One engine event per edge per wave — 2(N-1) events total.
// It drives the engine to completion and returns the virtual time at
// which the last rank finished.
func (w *FlatWorld) Allreduce(bytes uint64) (sim.Time, error) {
	for d := range w.doms {
		w.doms[d].done = 0
	}
	w.collBytes = bytes
	// Leaves complete their (empty) reduce subtree immediately; interior
	// ranks complete as arrivals drain their pending count.
	for vp := range w.ranks {
		if w.ranks[vp].pending == 0 {
			w.reduceComplete(w.eng, &w.ranks[vp])
		}
	}
	err := w.eng.Run(func() bool { return w.doneRanks() == len(w.ranks) })
	if err != nil {
		return 0, fmt.Errorf("ampi: flat allreduce stalled: %w", err)
	}
	// Re-arm the tree for the next collective.
	for vp := range w.ranks {
		w.ranks[vp].pending = int32(binomialChildCount(vp, len(w.ranks)))
	}
	return w.Time(), nil
}

// reduceComplete fires when a rank has combined all child contributions:
// it forwards the partial up one edge, or, at the root, turns the wave
// around into the broadcast.
func (w *FlatWorld) reduceComplete(s sim.Sched, r *flatRank) {
	if r.parent < 0 {
		w.bcastSend(s, r)
		w.dom(r).done++
		w.advance(r, r.clock)
		return
	}
	p := &w.ranks[r.parent]
	depart := r.clock + w.Cluster.Cost.MsgSendOverhead
	arrive := w.transfer(s, depart, w.pes[r.pe], w.pes[p.pe], w.collBytes)
	r.clock = depart
	s.AtCallIn(int(w.domOf[p.pe]), arrive, w.reduceFn, p)
}

// reduceArrive is the engine callback for one reduce edge landing at
// the parent. It runs in the parent's domain and touches only the
// parent's record.
func (w *FlatWorld) reduceArrive(s sim.Sched, now sim.Time, arg any) {
	p := arg.(*flatRank)
	at := now + w.Cluster.Cost.MsgRecvOverhead
	if at > p.clock {
		p.clock = at
	}
	if p.pending--; p.pending == 0 {
		w.reduceComplete(s, p)
	}
}

// bcastSend forwards the broadcast down the rank's tree edges. Sends
// are sequential on the rank (as in the message-level path), so each
// child's departure is one send overhead after the previous. Children
// may live in other domains: their home PE is immutable during the
// collective, and the event is routed to the child's domain.
func (w *FlatWorld) bcastSend(s sim.Sched, r *flatRank) {
	rel := int(r.vp)
	_, limit := binomialNode(rel, len(w.ranks))
	for m := 1; m < limit && rel+m < len(w.ranks); m <<= 1 {
		c := &w.ranks[rel+m]
		r.clock += w.Cluster.Cost.MsgSendOverhead
		arrive := w.transfer(s, r.clock, w.pes[r.pe], w.pes[c.pe], w.collBytes)
		s.AtCallIn(int(w.domOf[c.pe]), arrive, w.bcastFn, c)
	}
	w.advance(r, r.clock)
}

// bcastArrive is the engine callback for one broadcast edge landing at
// a child: the rank now holds the result, forwards it on, and is done.
func (w *FlatWorld) bcastArrive(s sim.Sched, now sim.Time, arg any) {
	c := arg.(*flatRank)
	c.clock = now + w.Cluster.Cost.MsgRecvOverhead
	w.bcastSend(s, c)
	w.dom(c).done++
	w.advance(c, c.clock)
}

// MigrationStorm migrates every stride-th rank to the PE halfway across
// the machine, all departing at the current world clock — the
// load-balancer-gone-wild stress case. Each migration is one engine
// event; costs follow the message-level migration path: serialize
// (CopyTime) + wire transfer + deserialize (CopyTime) + fixed
// migration overhead, over the rank's resident bytes. It drives the
// engine to completion and returns the time the last rank landed.
func (w *FlatWorld) MigrationStorm(stride int) (sim.Time, error) {
	if stride <= 0 {
		return 0, fmt.Errorf("ampi: migration stride must be positive, got %d", stride)
	}
	cost := w.Cluster.Cost
	bytes := w.PerRankBytes
	start := w.Time()
	npes := len(w.pes)
	for vp := 0; vp < len(w.ranks); vp += stride {
		r := &w.ranks[vp]
		dst := (int(r.pe) + npes/2) % npes
		if dst == int(r.pe) {
			continue
		}
		depart := start + cost.CopyTime(bytes)
		arrive := w.transfer(w.eng, depart, w.pes[r.pe], w.pes[dst], bytes)
		land := arrive + cost.CopyTime(bytes) + cost.MigrationOverhead
		r.pe = int32(dst)
		w.dom(r).pendingOp++
		w.eng.AtCallIn(int(w.domOf[dst]), land, w.migrateFn, r)
	}
	err := w.eng.Run(func() bool { return w.pendingOps() == 0 })
	if err != nil {
		return 0, fmt.Errorf("ampi: migration storm stalled: %w", err)
	}
	for d := range w.doms {
		w.Migrations += w.doms[d].migrations
		w.MigratedBytes += w.doms[d].migratedBytes
		w.doms[d].migrations, w.doms[d].migratedBytes = 0, 0
	}
	return w.Time(), nil
}

// ExpandStorm grows the machine by nodes fresh nodes at the current
// world clock and rebalances onto them: the cluster logs a membership
// epoch, the block placement is recomputed over the widened PE set,
// and every rank whose home changed migrates there — the flat path
// models an expansion as a migration storm onto the arrivals' homes,
// which is exactly what the message-level runtime does one rank at a
// time. Costs follow the storm path (serialize + wire + deserialize +
// overhead per moved rank).
//
// The lookahead domain count is fixed at construction (a parallel
// engine cannot grow mid-run), so arriving PEs are folded into the
// existing domains round-robin by node: cross-domain traffic still
// crosses nodes, preserving the conservative horizon.
func (w *FlatWorld) ExpandStorm(nodes int) (sim.Time, error) {
	if nodes <= 0 {
		return 0, fmt.Errorf("ampi: expand needs a positive node count, got %d", nodes)
	}
	at := w.Time()
	added, err := w.Cluster.AddNodes(at, nodes)
	if err != nil {
		return 0, err
	}
	ndom := len(w.doms)
	for _, n := range added {
		d := int32(n.ID % ndom)
		for _, p := range n.Procs {
			for range p.PEs {
				w.domOf = append(w.domOf, d)
			}
		}
	}
	w.pes = w.Cluster.PEs()
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{Time: at, Kind: trace.KindEpoch, PE: -1, VP: -1,
			Peer: int32(len(w.Cluster.LiveNodes(at))), Aux: trace.EpochAdd, Bytes: uint64(nodes)})
	}

	// Rebalance: the block placement over the widened PE set; ranks
	// whose home moved storm over, all departing at the epoch instant.
	cost := w.Cluster.Cost
	bytes := w.PerRankBytes
	npes := len(w.pes)
	for vp := range w.ranks {
		r := &w.ranks[vp]
		dst := vp * npes / len(w.ranks)
		if dst == int(r.pe) {
			continue
		}
		depart := at + cost.CopyTime(bytes)
		arrive := w.transfer(w.eng, depart, w.pes[r.pe], w.pes[dst], bytes)
		land := arrive + cost.CopyTime(bytes) + cost.MigrationOverhead
		r.pe = int32(dst)
		w.dom(r).pendingOp++
		w.eng.AtCallIn(int(w.domOf[dst]), land, w.migrateFn, r)
	}
	if err := w.eng.Run(func() bool { return w.pendingOps() == 0 }); err != nil {
		return 0, fmt.Errorf("ampi: expand storm stalled: %w", err)
	}
	for d := range w.doms {
		w.Migrations += w.doms[d].migrations
		w.MigratedBytes += w.doms[d].migratedBytes
		w.doms[d].migrations, w.doms[d].migratedBytes = 0, 0
	}
	// The expansion is a collective (every rank re-evaluates its home):
	// all ranks resume together once the last mover lands, which also
	// keeps later collectives from scheduling behind the engine clock.
	end := w.Time()
	for vp := range w.ranks {
		if w.ranks[vp].clock < end {
			w.ranks[vp].clock = end
		}
	}
	return end, nil
}

// migrateArrive is the engine callback for one migrated rank landing on
// its destination PE. It runs in the destination's domain.
func (w *FlatWorld) migrateArrive(s sim.Sched, now sim.Time, arg any) {
	r := arg.(*flatRank)
	r.clock = now
	w.advance(r, r.clock)
	d := w.dom(r)
	d.migrations++
	d.migratedBytes += w.PerRankBytes
	d.pendingOp--
}
