package ampi

import (
	"fmt"

	"provirt/internal/sim"
	"provirt/internal/trace"
)

// PEStats is one processing element's activity summary.
type PEStats struct {
	PE         int
	Busy       sim.Time
	SwitchTime sim.Time
	Switches   uint64
	Ranks      int
	// Utilization is Busy divided by the job's elapsed execution time.
	Utilization float64
}

// Stats summarizes a completed run.
type Stats struct {
	Execution     sim.Time
	Startup       sim.Time
	Switches      uint64
	Migrations    int
	MigratedBytes uint64
	Skipped       int
	PEs           []PEStats
	// MeanUtilization averages PE utilization over execution time.
	MeanUtilization float64
	// LoadImbalance is max/mean PE busy time.
	LoadImbalance float64
}

// Stats computes the run summary. Call after Run.
func (w *World) Stats() Stats {
	s := Stats{
		Execution:     w.ExecutionTime(),
		Startup:       w.SetupDone,
		Switches:      w.TotalSwitches(),
		Migrations:    w.Migrations,
		MigratedBytes: w.MigratedBytes,
		Skipped:       w.SkippedBalances,
	}
	exec := float64(s.Execution)
	var total, max sim.Time
	for i, sched := range w.scheds {
		ps := PEStats{
			PE:         i,
			Busy:       sched.BusyTime(),
			SwitchTime: sched.SwitchTime(),
			Switches:   sched.Switches(),
			Ranks:      len(sched.Threads()),
		}
		if exec > 0 {
			ps.Utilization = float64(ps.Busy) / exec
		}
		total += ps.Busy
		if ps.Busy > max {
			max = ps.Busy
		}
		s.PEs = append(s.PEs, ps)
		s.MeanUtilization += ps.Utilization
	}
	if n := len(s.PEs); n > 0 {
		s.MeanUtilization /= float64(n)
		if total > 0 {
			s.LoadImbalance = float64(max) / (float64(total) / float64(n))
		}
	}
	return s
}

// Table renders the per-PE breakdown.
func (s Stats) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("run: exec %s, %d switches, %d migrations (%s), imbalance %.2f",
			trace.FormatDuration(s.Execution), s.Switches, s.Migrations,
			trace.FormatBytes(int64(s.MigratedBytes)), s.LoadImbalance),
		"PE", "Busy", "Util", "Switches", "Resident ranks")
	for _, pe := range s.PEs {
		t.AddRow(
			fmt.Sprint(pe.PE),
			trace.FormatDuration(pe.Busy),
			fmt.Sprintf("%.0f%%", pe.Utilization*100),
			fmt.Sprint(pe.Switches),
			fmt.Sprint(pe.Ranks),
		)
	}
	return t
}
