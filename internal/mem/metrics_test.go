package mem

import (
	"testing"

	"provirt/internal/obs"
)

// Snapshot instruments: the second serialization of an untouched heap
// must show full bytes without delta bytes — the incremental win the
// counters exist to expose — and dirty blocks must count as copies.
func TestSnapshotObsCounts(t *testing.T) {
	r := obs.NewRegistry()
	EnableObs(r)
	defer EnableObs(nil)

	h := NewHeap(0)
	a, _ := h.Alloc(256, "a")
	h.Alloc(512, "b")
	a.Touch()

	s1 := h.Serialize()
	if got := metrics.snapshots.Value(); got != 1 {
		t.Fatalf("mem_snapshots_total = %d, want 1", got)
	}
	if metrics.fullBytes.Value() != s1.Bytes() {
		t.Fatalf("full bytes = %d, want %d", metrics.fullBytes.Value(), s1.Bytes())
	}
	if metrics.deltaBytes.Value() != s1.DeltaBytes() || s1.DeltaBytes() == 0 {
		t.Fatalf("delta bytes = %d, snapshot delta %d", metrics.deltaBytes.Value(), s1.DeltaBytes())
	}
	firstCopied := metrics.blocksCopied.Value()
	if firstCopied == 0 {
		t.Fatal("first snapshot copied no blocks")
	}

	// Untouched heap: everything reuses the clean cache, delta stays 0.
	s2 := h.Serialize()
	if s2.DeltaBytes() != 0 {
		t.Fatalf("untouched heap delta = %d", s2.DeltaBytes())
	}
	if got := metrics.deltaBytes.Value(); got != s1.DeltaBytes() {
		t.Fatalf("delta counter moved on clean snapshot: %d", got)
	}
	if metrics.blocksReused.Value() == 0 {
		t.Fatal("clean snapshot reused no blocks")
	}
	if metrics.blocksCopied.Value() != firstCopied {
		t.Fatalf("clean snapshot copied blocks: %d -> %d", firstCopied, metrics.blocksCopied.Value())
	}

	// Touch one block: exactly its bytes become delta again.
	a.Touch()
	s3 := h.Serialize()
	if s3.DeltaBytes() == 0 || s3.DeltaBytes() >= s1.DeltaBytes() {
		t.Fatalf("dirty-block delta = %d (first %d)", s3.DeltaBytes(), s1.DeltaBytes())
	}
	if got := metrics.blocksCopied.Value(); got != firstCopied+1 {
		t.Fatalf("dirty snapshot copied %d blocks, want 1", got-firstCopied)
	}
	if metrics.arenaBytes.Value() == 0 {
		t.Fatal("arena bytes not accounted")
	}
}
