package mem_test

import (
	"fmt"
	"testing"

	"provirt/internal/mem"
)

// benchSizes are the heap populations swept by every micro-benchmark:
// a small rank, a realistic rank, and a pathological one.
var benchSizes = []int{64, 1024, 16384}

// buildHeap returns a heap holding n live 256-byte blocks and the
// address of every block.
func buildHeap(b *testing.B, n int) (*mem.Heap, []uint64) {
	b.Helper()
	h := mem.NewHeap(0)
	addrs := make([]uint64, n)
	for i := 0; i < n; i++ {
		blk, err := h.Alloc(256, "bench")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = blk.Addr
	}
	return h, addrs
}

func BenchmarkHeapLookup(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			h, addrs := buildHeap(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if h.Lookup(addrs[i%n]) == nil {
					b.Fatal("lookup miss")
				}
			}
		})
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			h, _ := buildHeap(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk, err := h.Alloc(256, "churn")
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Free(blk.Addr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeapSerialize measures steady-state snapshots of an
// unchanged heap — the shape repeated checkpoints and load-balancing
// rounds produce.
func BenchmarkHeapSerialize(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			h, _ := buildHeap(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if h.Serialize() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}

// BenchmarkHeapAccounting covers the stats the harness polls after
// every experiment phase.
func BenchmarkHeapAccounting(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			h, _ := buildHeap(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if h.LiveBytes() == 0 || h.ResidentBytes() == 0 {
					b.Fatal("zero accounting")
				}
			}
		})
	}
}

func BenchmarkAddressSpaceFind(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("regions=%d", n), func(b *testing.B) {
			as := mem.NewAddressSpace()
			addrs := make([]uint64, n)
			for i := 0; i < n; i++ {
				addrs[i] = as.Mmap(mem.PageSize, fmt.Sprintf("seg-%d", i)).Base
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if as.Find(addrs[i%n]) == nil {
					b.Fatal("find miss")
				}
			}
		})
	}
}
