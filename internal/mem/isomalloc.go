package mem

import (
	"fmt"
	"sort"
)

// Block is one live Isomalloc allocation. Payload cells are 8-byte words;
// allocations that only matter for their footprint (user heap ballast)
// may carry a nil payload and record only their size.
type Block struct {
	Addr  uint64
	Size  uint64
	Label string
	// Words is the allocation's payload, one uint64 per 8 bytes, or nil
	// for footprint-only ballast. Pointer values stored here survive
	// migration verbatim because the block's address is identical in
	// every process.
	Words []uint64
	// Shared marks a block backed by a shared read-only mapping (one
	// physical copy mapped from a single descriptor, per the paper's
	// §6 future-work plan). Shared blocks occupy virtual address space
	// but contribute neither resident memory nor migration payload:
	// the destination re-establishes the mapping instead of receiving
	// bytes.
	Shared bool
	// SharedBytes is the partially-shared span of an otherwise private
	// block: the leading bytes backed by a shared read-only mapping
	// (copy-on-write image data under PIEglobals code sharing). Like a
	// fully Shared block, these bytes contribute neither resident memory
	// nor migration payload; the writable remainder behaves normally.
	// Ignored when Shared is set (the whole block is already shared).
	SharedBytes uint64
	// gen is the block's generation stamp: it advances whenever the
	// payload may have changed, and a snapshot entry is reusable only
	// while its recorded generation still matches. See Touch.
	gen uint64
}

// End returns one past the last byte of the block.
func (b *Block) End() uint64 { return b.Addr + b.Size }

// sharedSpan returns how many of the block's bytes are backed by shared
// mappings: all of them for a Shared block, SharedBytes otherwise.
func (b *Block) sharedSpan() uint64 {
	if b.Shared {
		return b.Size
	}
	return b.SharedBytes
}

// residentSpan returns the block's private (resident) byte count.
func (b *Block) residentSpan() uint64 { return b.Size - b.sharedSpan() }

// Touch marks the block's payload as modified since the last snapshot.
// The runtime's write paths (privatized stores, charge-only access
// batches) call it automatically; code that mutates Words directly
// between two Serialize calls on the same heap must call it by hand, or
// the next incremental snapshot will reuse the stale cached copy.
func (b *Block) Touch() { b.gen++ }

// Heap is a per-rank Isomalloc heap: a bump allocator with free-list
// reuse inside the rank's reserved virtual address range. All state
// needed to reconstruct the heap in another process is serializable.
type Heap struct {
	vp    int
	base  uint64
	limit uint64
	brk   uint64
	// blocks maps a block's base address to the block; index holds the
	// same blocks sorted by address for O(log n) containment lookups and
	// scan-free ordered iteration.
	blocks map[uint64]*Block
	index  []*Block
	free   []*Block // freed spans, address-ordered for deterministic reuse
	// live/resident are running byte counters maintained by
	// Alloc/Free/MarkShared so the accessors never rescan.
	live     uint64
	resident uint64
	// clean caches, per block, the words array captured by the last
	// Serialize and the generation it captured. While the generation
	// still matches, the next snapshot reuses the cached array instead
	// of copying the payload again.
	clean map[*Block]snapEntry
}

type snapEntry struct {
	gen   uint64
	words []uint64 // nil for ballast blocks
	// aliased marks an entry whose words array IS the block's live
	// payload (a zero-copy adoption by RestoreConsume). Such an array
	// must never be shared into a snapshot — the rank may keep writing
	// through it — but while the generation matches, its content is
	// known-unchanged, so re-copying it costs a local memcpy and zero
	// wire delta.
	aliased bool
}

// NewHeap returns an empty heap for virtual rank vp. vp must be within
// the arena's capacity (MaxRanks).
func NewHeap(vp int) *Heap {
	if vp < 0 || vp >= MaxRanks {
		panic(fmt.Sprintf("isomalloc: rank %d outside arena capacity %d", vp, MaxRanks))
	}
	base := RankRangeBase(vp)
	return &Heap{
		vp:     vp,
		base:   base,
		limit:  base + IsomallocRangeSize,
		brk:    base,
		blocks: make(map[uint64]*Block),
	}
}

// VP returns the owning virtual rank.
func (h *Heap) VP() int { return h.vp }

// Base returns the heap's reserved-range base address.
func (h *Heap) Base() uint64 { return h.base }

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Alloc allocates size bytes and returns the block. The payload is
// zero-initialized.
func (h *Heap) Alloc(size uint64, label string) (*Block, error) {
	b, err := h.allocRaw(size, label)
	if err != nil {
		return nil, err
	}
	b.Words = make([]uint64, b.Size/8)
	return b, nil
}

// AllocBallast allocates size bytes of footprint-only memory: the block
// contributes to the heap's serialized size but carries no payload
// words. Workloads use it to model large user heaps cheaply.
func (h *Heap) AllocBallast(size uint64, label string) (*Block, error) {
	return h.allocRaw(size, label)
}

// indexInsert places b into the sorted address index. Bump allocations
// always land past every live block, so the common case appends.
func (h *Heap) indexInsert(b *Block) {
	n := len(h.index)
	if n == 0 || h.index[n-1].Addr < b.Addr {
		h.index = append(h.index, b)
		return
	}
	i := sort.Search(n, func(i int) bool { return h.index[i].Addr > b.Addr })
	h.index = append(h.index, nil)
	copy(h.index[i+1:], h.index[i:])
	h.index[i] = b
}

// indexRemove drops the block at addr from the sorted address index.
func (h *Heap) indexRemove(addr uint64) {
	i := sort.Search(len(h.index), func(i int) bool { return h.index[i].Addr >= addr })
	copy(h.index[i:], h.index[i+1:])
	h.index = h.index[:len(h.index)-1]
}

func (h *Heap) allocRaw(size uint64, label string) (*Block, error) {
	if size == 0 {
		return nil, fmt.Errorf("isomalloc: zero-size allocation")
	}
	size = align8(size)
	// First-fit reuse from the address-ordered free list. An oversized
	// span is split: the block takes its head, the tail stays free at
	// the same list position (addresses stay sorted).
	for i, f := range h.free {
		if f.Size < size {
			continue
		}
		b := f
		b.Label = label
		b.Shared = false
		b.SharedBytes = 0
		b.gen++ // never match a stale snapshot entry from a past life
		if f.Size > size {
			h.free[i] = &Block{Addr: f.Addr + size, Size: f.Size - size}
			b.Size = size
		} else {
			h.free = append(h.free[:i], h.free[i+1:]...)
		}
		h.blocks[b.Addr] = b
		h.indexInsert(b)
		h.live += size
		h.resident += size
		return b, nil
	}
	if h.brk+size > h.limit {
		return nil, fmt.Errorf("isomalloc: rank %d range exhausted (%d bytes requested)", h.vp, size)
	}
	b := &Block{Addr: h.brk, Size: size, Label: label}
	h.brk += size
	h.blocks[b.Addr] = b
	h.indexInsert(b)
	h.live += size
	h.resident += size
	return b, nil
}

// Free releases the block at addr for reuse.
func (h *Heap) Free(addr uint64) error {
	b, ok := h.blocks[addr]
	if !ok {
		return fmt.Errorf("isomalloc: free of unallocated address %#x", addr)
	}
	delete(h.blocks, addr)
	h.indexRemove(addr)
	delete(h.clean, b) // the recycled struct must never revive a stale copy
	h.live -= b.Size
	h.resident -= b.residentSpan()
	b.Words = nil
	b.Label = ""
	b.Shared = false
	b.SharedBytes = 0
	b.gen++
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].Addr > b.Addr })
	h.free = append(h.free, nil)
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = b
	return nil
}

// MarkShared flips a live block onto shared read-only backing, moving
// its bytes out of the rank's resident footprint. Use this rather than
// writing Block.Shared directly so the heap's running counters stay
// consistent.
func (h *Heap) MarkShared(b *Block) {
	if b.Shared {
		return
	}
	h.resident -= b.residentSpan()
	b.Shared = true
}

// MarkSharedBytes marks the leading n bytes of a live block as backed by
// a shared read-only mapping, leaving the remainder private — the
// copy-on-write shape of a PIEglobals data segment whose .rodata pages
// are shared across ranks. n is clamped to the block size; marking never
// shrinks an existing shared span, and a fully Shared block is left
// alone.
func (h *Heap) MarkSharedBytes(b *Block, n uint64) {
	if b.Shared {
		return
	}
	if n > b.Size {
		n = b.Size
	}
	if n <= b.SharedBytes {
		return
	}
	h.resident -= n - b.SharedBytes
	b.SharedBytes = n
}

// Lookup returns the live block containing addr, or nil.
func (h *Heap) Lookup(addr uint64) *Block {
	i := sort.Search(len(h.index), func(i int) bool { return h.index[i].End() > addr })
	if i < len(h.index) && h.index[i].Addr <= addr {
		return h.index[i]
	}
	return nil
}

// LiveBytes reports the total size of live allocations.
func (h *Heap) LiveBytes() uint64 { return h.live }

// ResidentBytes reports live allocation bytes excluding spans backed by
// shared read-only mappings (whole Shared blocks and partial SharedBytes
// prefixes) — the per-rank physical memory footprint.
func (h *Heap) ResidentBytes() uint64 { return h.resident }

// SharedSpanBytes reports live allocation bytes backed by shared
// read-only mappings: the gap between LiveBytes and ResidentBytes.
func (h *Heap) SharedSpanBytes() uint64 { return h.live - h.resident }

// LiveBlocks reports the number of live allocations.
func (h *Heap) LiveBlocks() int { return len(h.blocks) }

// Blocks returns live blocks ordered by address.
func (h *Heap) Blocks() []*Block {
	return append([]*Block(nil), h.index...)
}

// FreeSpan is one reusable gap in a serialized heap. Restoring the free
// list alongside the blocks keeps the Isomalloc invariant across
// migration: the same allocation sequence produces the same addresses
// whether or not the rank moved in between.
type FreeSpan struct {
	Addr uint64
	Size uint64
}

// Snapshot is a serialized heap image: everything another process needs
// to reconstruct the heap at identical addresses.
type Snapshot struct {
	VP     int
	Brk    uint64
	Blocks []Block
	// FreeSpans is the allocator's free list, address-ordered.
	FreeSpans []FreeSpan
	// fresh marks blocks whose words array was copied by this Serialize
	// (as opposed to shared with an earlier snapshot); only a fresh
	// array may be adopted zero-copy by RestoreConsume.
	fresh []bool
	// delta is the payload bytes that actually had to be copied: the
	// incremental cost of this snapshot given the previous one.
	delta uint64
}

// Bytes reports the number of payload bytes the snapshot logically
// carries (live block sizes; free-list structure travels as metadata).
// Blocks backed by shared mappings travel as metadata only: the
// destination remaps them instead of receiving their bytes.
func (s *Snapshot) Bytes() uint64 {
	var n uint64
	for i := range s.Blocks {
		n += s.Blocks[i].residentSpan()
	}
	return n
}

// DeltaBytes reports the payload bytes that changed since the previous
// snapshot of the same heap — the incremental cost an
// incremental-aware transport or filesystem pays. The first snapshot of
// a heap has no predecessor, so its delta equals Bytes().
func (s *Snapshot) DeltaBytes() uint64 { return s.delta }

// Serialize captures the heap for migration or checkpoint. Snapshots
// are incremental: a block untouched since the previous Serialize
// shares that snapshot's words array instead of being copied again,
// and all blocks that do need copying go through one pooled buffer.
// The returned snapshot is immutable and remains valid after the heap
// changes or is discarded.
func (h *Heap) Serialize() *Snapshot {
	snap := &Snapshot{
		VP:     h.vp,
		Brk:    h.brk,
		Blocks: make([]Block, 0, len(h.index)),
		fresh:  make([]bool, len(h.index)),
	}
	if len(h.free) > 0 {
		snap.FreeSpans = make([]FreeSpan, len(h.free))
		for i, f := range h.free {
			snap.FreeSpans[i] = FreeSpan{Addr: f.Addr, Size: f.Size}
		}
	}
	if h.clean == nil {
		h.clean = make(map[*Block]snapEntry, len(h.index))
	}
	// One pooled buffer backs every payload copy this snapshot makes:
	// dirty blocks, plus clean blocks whose cached array aliases the live
	// payload (adopted by a prior RestoreConsume) — those are re-copied
	// locally so the snapshot stays immutable, but charge no delta.
	var copyWords int
	for _, b := range h.index {
		if b.Words == nil {
			continue
		}
		if e, ok := h.clean[b]; !ok || e.gen != b.gen || e.aliased {
			copyWords += len(b.Words)
		}
	}
	arena := make([]uint64, copyWords)
	var reused, copied uint64
	for i, b := range h.index {
		cp := Block{Addr: b.Addr, Size: b.Size, Label: b.Label, Shared: b.Shared, SharedBytes: b.SharedBytes}
		e, cached := h.clean[b]
		clean := cached && e.gen == b.gen
		switch {
		case clean && !e.aliased:
			cp.Words = e.words
			reused++
		case b.Words == nil:
			if !clean {
				h.clean[b] = snapEntry{gen: b.gen}
				snap.fresh[i] = true
				snap.delta += b.residentSpan()
			}
		default:
			w := arena[:len(b.Words):len(b.Words)]
			arena = arena[len(b.Words):]
			copy(w, b.Words)
			cp.Words = w
			copied++
			h.clean[b] = snapEntry{gen: b.gen, words: w}
			snap.fresh[i] = true
			// A clean-but-aliased block's content is unchanged since the
			// previous snapshot: the copy is a local memcpy, not wire
			// bytes, so it contributes nothing to the delta. Shared spans
			// (whole blocks or partial read-only prefixes) are remapped by
			// the destination, never sent, so they never count either.
			if !clean {
				snap.delta += b.residentSpan()
			}
		}
		snap.Blocks = append(snap.Blocks, cp)
	}
	// Host-side accounting only; guarded so the metrics-off path pays a
	// single pointer comparison and skips the Bytes() walk entirely.
	if metrics.snapshots != nil {
		metrics.snapshots.Inc()
		metrics.fullBytes.Add(snap.Bytes())
		metrics.deltaBytes.Add(snap.delta)
		metrics.blocksReused.Add(reused)
		metrics.blocksCopied.Add(copied)
		metrics.arenaBytes.Add(uint64(copyWords) * 8)
	}
	return snap
}

// rebuild reconstructs heap structure from a snapshot; words gives, for
// each snapshot index, the restored block's live payload (already copied
// or adopted by the caller) and the clean-cache entry to seed for it, so
// the restored heap's own first Serialize is already incremental.
func rebuild(snap *Snapshot, words func(i int) ([]uint64, snapEntry)) *Heap {
	h := NewHeap(snap.VP)
	h.brk = snap.Brk
	n := len(snap.Blocks)
	structs := make([]Block, n) // one allocation for all block headers
	h.index = make([]*Block, 0, n)
	h.clean = make(map[*Block]snapEntry, n)
	for i := range snap.Blocks {
		cp := &snap.Blocks[i]
		nb := &structs[i]
		*nb = Block{Addr: cp.Addr, Size: cp.Size, Label: cp.Label, Shared: cp.Shared, SharedBytes: cp.SharedBytes}
		w, entry := words(i)
		nb.Words = w
		h.clean[nb] = entry // entry.gen is 0, matching the fresh block's gen
		h.blocks[nb.Addr] = nb
		h.index = append(h.index, nb) // snapshots are address-ordered
		h.live += nb.Size
		h.resident += nb.residentSpan()
	}
	if len(snap.FreeSpans) > 0 {
		h.free = make([]*Block, len(snap.FreeSpans))
		for i, f := range snap.FreeSpans {
			h.free[i] = &Block{Addr: f.Addr, Size: f.Size}
		}
	}
	return h
}

// Restore reconstructs a heap from a snapshot. Addresses are preserved
// exactly; this is what makes Isomalloc migration transparent to any
// pointers held in the payload. The snapshot is not consumed: payloads
// are copied (through one pooled buffer), and the copies seed the new
// heap's clean-block cache so its own first Serialize is already
// incremental.
func Restore(snap *Snapshot) *Heap {
	var total int
	for i := range snap.Blocks {
		total += len(snap.Blocks[i].Words)
	}
	arena := make([]uint64, total)
	return rebuild(snap, func(i int) ([]uint64, snapEntry) {
		src := snap.Blocks[i].Words
		if src == nil {
			return nil, snapEntry{}
		}
		w := arena[:len(src):len(src)]
		arena = arena[len(src):]
		copy(w, src)
		return w, snapEntry{words: src}
	})
}

// RestoreConsume reconstructs a heap from a snapshot that the caller
// owns exclusively and is discarding along with the source heap — the
// migration case. Words arrays the snapshot itself copied (dirty
// blocks) are adopted zero-copy as the live payload and cached as
// aliased entries: a later Serialize re-copies them locally but, while
// untouched, charges them no wire delta — so a rank migrated every
// load-balance round still only moves its dirty bytes. Arrays shared
// with earlier snapshots are copied so those keepers stay immutable.
// The snapshot must not be restored again or kept as a checkpoint
// afterwards.
func RestoreConsume(snap *Snapshot) *Heap {
	var shared int
	for i := range snap.Blocks {
		if !snap.isFresh(i) {
			shared += len(snap.Blocks[i].Words)
		}
	}
	arena := make([]uint64, shared)
	return rebuild(snap, func(i int) ([]uint64, snapEntry) {
		src := snap.Blocks[i].Words
		if src == nil {
			return nil, snapEntry{}
		}
		if snap.isFresh(i) {
			// Adopted zero-copy: the live heap now owns the array, so the
			// cache entry is marked aliased — never shared into a future
			// snapshot, but delta-free while the generation holds.
			return src, snapEntry{words: src, aliased: true}
		}
		w := arena[:len(src):len(src)]
		arena = arena[len(src):]
		copy(w, src)
		return w, snapEntry{words: src}
	})
}

func (s *Snapshot) isFresh(i int) bool { return s.fresh != nil && s.fresh[i] }
