package mem

import (
	"fmt"
	"sort"
)

// Block is one live Isomalloc allocation. Payload cells are 8-byte words;
// allocations that only matter for their footprint (user heap ballast)
// may carry a nil payload and record only their size.
type Block struct {
	Addr  uint64
	Size  uint64
	Label string
	// Words is the allocation's payload, one uint64 per 8 bytes, or nil
	// for footprint-only ballast. Pointer values stored here survive
	// migration verbatim because the block's address is identical in
	// every process.
	Words []uint64
	// Shared marks a block backed by a shared read-only mapping (one
	// physical copy mapped from a single descriptor, per the paper's
	// §6 future-work plan). Shared blocks occupy virtual address space
	// but contribute neither resident memory nor migration payload:
	// the destination re-establishes the mapping instead of receiving
	// bytes.
	Shared bool
}

// End returns one past the last byte of the block.
func (b *Block) End() uint64 { return b.Addr + b.Size }

// Heap is a per-rank Isomalloc heap: a bump allocator with free-list
// reuse inside the rank's reserved virtual address range. All state
// needed to reconstruct the heap in another process is serializable.
type Heap struct {
	vp     int
	base   uint64
	limit  uint64
	brk    uint64
	blocks map[uint64]*Block
	free   []*Block // freed blocks available for exact/first-fit reuse
}

// NewHeap returns an empty heap for virtual rank vp. vp must be within
// the arena's capacity (MaxRanks).
func NewHeap(vp int) *Heap {
	if vp < 0 || vp >= MaxRanks {
		panic(fmt.Sprintf("isomalloc: rank %d outside arena capacity %d", vp, MaxRanks))
	}
	base := RankRangeBase(vp)
	return &Heap{
		vp:     vp,
		base:   base,
		limit:  base + IsomallocRangeSize,
		brk:    base,
		blocks: make(map[uint64]*Block),
	}
}

// VP returns the owning virtual rank.
func (h *Heap) VP() int { return h.vp }

// Base returns the heap's reserved-range base address.
func (h *Heap) Base() uint64 { return h.base }

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// Alloc allocates size bytes and returns the block. The payload is
// zero-initialized.
func (h *Heap) Alloc(size uint64, label string) (*Block, error) {
	b, err := h.allocRaw(size, label)
	if err != nil {
		return nil, err
	}
	b.Words = make([]uint64, b.Size/8)
	return b, nil
}

// AllocBallast allocates size bytes of footprint-only memory: the block
// contributes to the heap's serialized size but carries no payload
// words. Workloads use it to model large user heaps cheaply.
func (h *Heap) AllocBallast(size uint64, label string) (*Block, error) {
	return h.allocRaw(size, label)
}

func (h *Heap) allocRaw(size uint64, label string) (*Block, error) {
	if size == 0 {
		return nil, fmt.Errorf("isomalloc: zero-size allocation")
	}
	size = align8(size)
	// First-fit reuse from the free list.
	for i, f := range h.free {
		if f.Size >= size {
			h.free = append(h.free[:i], h.free[i+1:]...)
			b := &Block{Addr: f.Addr, Size: f.Size, Label: label}
			h.blocks[b.Addr] = b
			return b, nil
		}
	}
	if h.brk+size > h.limit {
		return nil, fmt.Errorf("isomalloc: rank %d range exhausted (%d bytes requested)", h.vp, size)
	}
	b := &Block{Addr: h.brk, Size: size, Label: label}
	h.brk += size
	h.blocks[b.Addr] = b
	return b, nil
}

// Free releases the block at addr for reuse.
func (h *Heap) Free(addr uint64) error {
	b, ok := h.blocks[addr]
	if !ok {
		return fmt.Errorf("isomalloc: free of unallocated address %#x", addr)
	}
	delete(h.blocks, addr)
	b.Words = nil
	b.Label = ""
	h.free = append(h.free, b)
	return nil
}

// Lookup returns the live block containing addr, or nil.
func (h *Heap) Lookup(addr uint64) *Block {
	for _, b := range h.blocks {
		if addr >= b.Addr && addr < b.End() {
			return b
		}
	}
	return nil
}

// LiveBytes reports the total size of live allocations.
func (h *Heap) LiveBytes() uint64 {
	var n uint64
	for _, b := range h.blocks {
		n += b.Size
	}
	return n
}

// ResidentBytes reports live allocation bytes excluding blocks backed
// by shared read-only mappings — the per-rank physical memory
// footprint.
func (h *Heap) ResidentBytes() uint64 {
	var n uint64
	for _, b := range h.blocks {
		if !b.Shared {
			n += b.Size
		}
	}
	return n
}

// LiveBlocks reports the number of live allocations.
func (h *Heap) LiveBlocks() int { return len(h.blocks) }

// Blocks returns live blocks ordered by address.
func (h *Heap) Blocks() []*Block {
	out := make([]*Block, 0, len(h.blocks))
	for _, b := range h.blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Snapshot is a serialized heap image: everything another process needs
// to reconstruct the heap at identical addresses.
type Snapshot struct {
	VP     int
	Brk    uint64
	Blocks []Block
}

// Bytes reports the number of payload bytes the snapshot transfers on
// the wire (live block sizes; free-list structure travels as
// metadata). Blocks backed by shared mappings travel as metadata only:
// the destination remaps them instead of receiving their bytes.
func (s *Snapshot) Bytes() uint64 {
	var n uint64
	for _, b := range s.Blocks {
		if !b.Shared {
			n += b.Size
		}
	}
	return n
}

// Serialize captures the heap for migration.
func (h *Heap) Serialize() *Snapshot {
	snap := &Snapshot{VP: h.vp, Brk: h.brk}
	for _, b := range h.Blocks() {
		cp := Block{Addr: b.Addr, Size: b.Size, Label: b.Label, Shared: b.Shared}
		if b.Words != nil {
			cp.Words = append([]uint64(nil), b.Words...)
		}
		snap.Blocks = append(snap.Blocks, cp)
	}
	return snap
}

// Restore reconstructs a heap from a snapshot. Addresses are preserved
// exactly; this is what makes Isomalloc migration transparent to any
// pointers held in the payload.
func Restore(snap *Snapshot) *Heap {
	h := NewHeap(snap.VP)
	h.brk = snap.Brk
	for i := range snap.Blocks {
		b := snap.Blocks[i]
		nb := &Block{Addr: b.Addr, Size: b.Size, Label: b.Label, Shared: b.Shared}
		if b.Words != nil {
			nb.Words = append([]uint64(nil), b.Words...)
		}
		h.blocks[nb.Addr] = nb
	}
	return h
}
