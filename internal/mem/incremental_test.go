package mem

import (
	"testing"
)

// sameArray reports whether two word slices share backing storage.
func sameArray(a, b []uint64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// TestSerializeIncrementalSharing pins the dirty-block contract: a
// clean block's payload is shared with the previous snapshot (no copy),
// a touched block's payload is re-copied, and DeltaBytes reports
// exactly the re-copied sizes.
func TestSerializeIncrementalSharing(t *testing.T) {
	h := NewHeap(0)
	a, _ := h.Alloc(64, "a")
	b, _ := h.Alloc(128, "b")
	ballast, _ := h.AllocBallast(4096, "ballast")
	a.Words[0], b.Words[0] = 1, 2

	s1 := h.Serialize()
	if s1.DeltaBytes() != s1.Bytes() {
		t.Fatalf("first snapshot delta %d, want full %d", s1.DeltaBytes(), s1.Bytes())
	}

	s2 := h.Serialize()
	if s2.DeltaBytes() != 0 {
		t.Fatalf("unchanged heap delta %d, want 0", s2.DeltaBytes())
	}
	if !sameArray(s2.Blocks[0].Words, s1.Blocks[0].Words) ||
		!sameArray(s2.Blocks[1].Words, s1.Blocks[1].Words) {
		t.Fatal("clean blocks were re-copied instead of shared")
	}

	a.Words[0] = 42
	a.Touch()
	s3 := h.Serialize()
	if s3.DeltaBytes() != a.Size {
		t.Fatalf("delta %d after touching a, want %d", s3.DeltaBytes(), a.Size)
	}
	if sameArray(s3.Blocks[0].Words, s2.Blocks[0].Words) {
		t.Fatal("dirty block shared the stale cached copy")
	}
	if !sameArray(s3.Blocks[1].Words, s2.Blocks[1].Words) {
		t.Fatal("clean block was re-copied")
	}
	// Snapshot isolation: the earlier snapshots still see the old value.
	if s1.Blocks[0].Words[0] != 1 || s2.Blocks[0].Words[0] != 1 || s3.Blocks[0].Words[0] != 42 {
		t.Fatalf("snapshot isolation broken: %d / %d / %d",
			s1.Blocks[0].Words[0], s2.Blocks[0].Words[0], s3.Blocks[0].Words[0])
	}
	_ = ballast
}

// TestFreePurgesSnapshotCache: recycling a freed block's struct must
// never revive the freed generation's cached payload.
func TestFreePurgesSnapshotCache(t *testing.T) {
	h := NewHeap(0)
	a, _ := h.Alloc(64, "a")
	a.Words[0] = 7
	h.Serialize()
	if err := h.Free(a.Addr); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(64, "b") // recycles a's struct and address
	if b.Addr != a.Addr {
		t.Fatalf("expected address reuse, got %#x vs %#x", b.Addr, a.Addr)
	}
	b.Words[0] = 9
	s := h.Serialize()
	if s.Blocks[len(s.Blocks)-1].Words[0] != 9 {
		t.Fatal("snapshot revived the freed block's stale payload")
	}
}

// TestAllocSplitsOversizedFreeBlock pins the slack-waste fix: a large
// freed span satisfying a small request is split, and the remainder
// stays reusable at the expected address.
func TestAllocSplitsOversizedFreeBlock(t *testing.T) {
	h := NewHeap(0)
	big, _ := h.Alloc(1<<20, "big")
	base := big.Addr
	if err := h.Free(base); err != nil {
		t.Fatal(err)
	}
	small, _ := h.Alloc(8, "small")
	if small.Addr != base || small.Size != 8 {
		t.Fatalf("small block [%#x,+%d), want head of the freed span [%#x,+8)", small.Addr, small.Size, base)
	}
	rest, _ := h.Alloc((1<<20)-8, "rest")
	if rest.Addr != base+8 {
		t.Fatalf("remainder reused at %#x, want %#x", rest.Addr, base+8)
	}
	if h.LiveBytes() != 1<<20 {
		t.Fatalf("live bytes %d, want %d", h.LiveBytes(), 1<<20)
	}
	// Nothing above should have advanced the bump pointer.
	next, _ := h.Alloc(16, "next")
	if next.Addr != base+1<<20 {
		t.Fatalf("bump pointer moved during free-list reuse: %#x", next.Addr)
	}
}

// TestSnapshotRoundTripUnderChurn drives alloc/free/realloc cycles,
// serializes, and checks the restored heap preserves addresses, labels,
// shared flags, payloads, AND allocator behaviour: the original and the
// restored heap must hand out identical addresses for any subsequent
// identical allocation sequence (the Isomalloc invariant across
// migration).
func TestSnapshotRoundTripUnderChurn(t *testing.T) {
	h := NewHeap(4)
	var hold []*Block
	for i := 0; i < 40; i++ {
		b, err := h.Alloc(uint64(16+(i%7)*24), "churn")
		if err != nil {
			t.Fatal(err)
		}
		b.Words[0] = uint64(i)
		hold = append(hold, b)
		if i%3 == 2 { // free every third, creating reusable spans
			victim := hold[i/3]
			if err := h.Free(victim.Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
	shared, _ := h.AllocBallast(1<<16, "code")
	h.MarkShared(shared)

	snap := h.Serialize()
	h2 := Restore(snap)

	if h2.LiveBlocks() != h.LiveBlocks() {
		t.Fatalf("restored %d blocks, want %d", h2.LiveBlocks(), h.LiveBlocks())
	}
	if h2.LiveBytes() != h.LiveBytes() || h2.ResidentBytes() != h.ResidentBytes() {
		t.Fatalf("restored accounting %d/%d, want %d/%d",
			h2.LiveBytes(), h2.ResidentBytes(), h.LiveBytes(), h.ResidentBytes())
	}
	for _, b := range h.Blocks() {
		nb := h2.Lookup(b.Addr)
		if nb == nil {
			t.Fatalf("block %#x lost", b.Addr)
		}
		if nb.Size != b.Size || nb.Label != b.Label || nb.Shared != b.Shared {
			t.Fatalf("block %#x metadata diverged: %+v vs %+v", b.Addr, nb, b)
		}
		if b.Words != nil && nb.Words[0] != b.Words[0] {
			t.Fatalf("block %#x payload diverged", b.Addr)
		}
	}
	// Free-list behaviour survives the round trip: identical subsequent
	// allocation sequences produce identical addresses.
	for i := 0; i < 20; i++ {
		size := uint64(8 + (i%5)*40)
		x1, err1 := h.Alloc(size, "post")
		x2, err2 := h2.Alloc(size, "post")
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if x1.Addr != x2.Addr {
			t.Fatalf("post-restore alloc %d diverged: %#x vs %#x", i, x1.Addr, x2.Addr)
		}
	}
}

// TestRestoreSeedsIncrementalCache: a restored heap's own first
// serialize is already incremental — nothing changed since the
// snapshot it was built from.
func TestRestoreSeedsIncrementalCache(t *testing.T) {
	h := NewHeap(5)
	a, _ := h.Alloc(256, "a")
	a.Words[3] = 11
	snap := h.Serialize()
	h2 := Restore(snap)
	s2 := h2.Serialize()
	if s2.DeltaBytes() != 0 {
		t.Fatalf("restored heap's first snapshot delta %d, want 0", s2.DeltaBytes())
	}
	// And it shares the original snapshot's arrays rather than copying.
	if !sameArray(s2.Blocks[0].Words, snap.Blocks[0].Words) {
		t.Fatal("restored heap re-copied a clean block")
	}
	// Writes on the restored heap must not leak into either snapshot.
	a2 := h2.Lookup(a.Addr)
	a2.Words[3] = 99
	a2.Touch()
	if snap.Blocks[0].Words[3] != 11 || s2.Blocks[0].Words[3] != 11 {
		t.Fatal("live write leaked into an immutable snapshot")
	}
}

// TestRestoreConsumeAdoptsFreshArrays: the migration path adopts the
// snapshot's freshly copied payloads zero-copy, while arrays shared
// with an earlier (kept) snapshot are copied so the keeper stays
// intact.
func TestRestoreConsumeAdoptsFreshArrays(t *testing.T) {
	h := NewHeap(6)
	a, _ := h.Alloc(64, "a")
	b, _ := h.Alloc(64, "b")
	a.Words[0], b.Words[0] = 1, 2

	ck := h.Serialize() // kept checkpoint: both blocks fresh here
	b.Words[0] = 22
	b.Touch()
	mig := h.Serialize() // a clean (shared with ck), b dirty (fresh)

	h2 := RestoreConsume(mig)
	a2, b2 := h2.Lookup(a.Addr), h2.Lookup(b.Addr)
	if !sameArray(b2.Words, mig.Blocks[1].Words) {
		t.Fatal("fresh dirty payload was copied instead of adopted")
	}
	if sameArray(a2.Words, ck.Blocks[0].Words) {
		t.Fatal("payload shared with a kept snapshot was adopted — the checkpoint is now mutable")
	}
	// Destination writes must not corrupt the kept checkpoint.
	a2.Words[0] = 100
	b2.Words[0] = 200
	if ck.Blocks[0].Words[0] != 1 || ck.Blocks[1].Words[0] != 2 {
		t.Fatalf("checkpoint corrupted: %d/%d", ck.Blocks[0].Words[0], ck.Blocks[1].Words[0])
	}
	// Adopted blocks are cached as aliased entries: the next serialize
	// must re-copy the live array (never share it), so the snapshot sees
	// the current content and stays immutable afterwards.
	s := h2.Serialize()
	if s.Blocks[1].Words[0] != 200 {
		t.Fatal("post-consume serialize missed the adopted block's mutation")
	}
	if sameArray(s.Blocks[1].Words, b2.Words) {
		t.Fatal("serialize shared a live adopted array into a snapshot")
	}
}

// TestMigrationLoopStaysIncremental drives the full migration lifecycle
// — serialize, consume-restore, mutate, repeat — and checks that after
// the first full-payload round, every later round's wire delta is only
// the touched bytes, even though consume-restore adopts arrays
// zero-copy.
func TestMigrationLoopStaysIncremental(t *testing.T) {
	h := NewHeap(8)
	hot, _ := h.Alloc(64, "hot")
	cold, _ := h.Alloc(1<<16, "cold")
	hot.Words[0], cold.Words[0] = 1, 100
	hotAddr, coldAddr := hot.Addr, cold.Addr

	heap := h
	for round := 0; round < 4; round++ {
		s := heap.Serialize()
		if round == 0 {
			if s.DeltaBytes() != s.Bytes() {
				t.Fatalf("round 0 delta %d, want full %d", s.DeltaBytes(), s.Bytes())
			}
		} else if s.DeltaBytes() != 64 {
			t.Fatalf("round %d delta %d, want only the 64 touched bytes", round, s.DeltaBytes())
		}
		heap = RestoreConsume(s)
		hb := heap.Lookup(hotAddr)
		hb.Words[0]++
		hb.Touch()
	}
	if got := heap.Lookup(hotAddr).Words[0]; got != 5 {
		t.Fatalf("hot cell %d after 4 rounds, want 5", got)
	}
	if got := heap.Lookup(coldAddr).Words[0]; got != 100 {
		t.Fatalf("cold cell corrupted: %d", got)
	}
}

// TestAccountingCountersMatchRescan cross-checks the maintained
// live/resident counters against a full rescan through every mutation
// path: alloc, ballast, split reuse, free, shared marking.
func TestAccountingCountersMatchRescan(t *testing.T) {
	h := NewHeap(7)
	check := func(stage string) {
		var live, resident uint64
		for _, b := range h.Blocks() {
			live += b.Size
			if !b.Shared {
				resident += b.Size
			}
		}
		if h.LiveBytes() != live || h.ResidentBytes() != resident {
			t.Fatalf("%s: counters %d/%d, rescan %d/%d", stage,
				h.LiveBytes(), h.ResidentBytes(), live, resident)
		}
	}
	a, _ := h.Alloc(100, "a")
	check("alloc")
	code, _ := h.AllocBallast(1<<14, "code")
	check("ballast")
	h.MarkShared(code)
	check("markshared")
	h.MarkShared(code) // idempotent
	check("markshared-again")
	h.Free(a.Addr)
	check("free")
	h.Alloc(24, "split") // splits a's 104-byte span
	check("split")
}
