// Package mem models virtual memory for the reproduction: a simulated
// 64-bit address space with mmap-style region mapping, and an
// Isomalloc-style migratable allocator.
//
// The distinction between the two allocation paths is the crux of the
// paper's migration story. Segments mapped by the (simulated) dynamic
// linker come from the plain mmap path and live at process-chosen
// addresses, so they cannot be migrated between address spaces —
// exactly why PIPglobals and FSglobals cannot support rank migration
// (§3.1, §3.2). Isomalloc allocations live in a per-rank virtual address
// range reserved identically in every process, so their bytes can be
// copied to another process with all internal pointers remaining valid —
// which is what lets PIEglobals migrate code and data segments (§3.3).
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of region mapping.
const PageSize = 4096

// RegionKind distinguishes how a region was allocated.
type RegionKind int

const (
	// MmapRegion is an anonymous process-local mapping, such as the
	// segments created by the dynamic linker. Not migratable.
	MmapRegion RegionKind = iota
	// IsoRegion is a mapping inside a rank's reserved Isomalloc range.
	// Migratable: the same virtual addresses are reserved in every
	// process.
	IsoRegion
)

func (k RegionKind) String() string {
	switch k {
	case MmapRegion:
		return "mmap"
	case IsoRegion:
		return "isomalloc"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a contiguous mapped range of the simulated address space.
type Region struct {
	Base  uint64
	Size  uint64
	Kind  RegionKind
	Label string
	// Owner is the virtual rank the region belongs to, or -1 for
	// process-wide mappings.
	Owner int
}

// End returns one past the last mapped address.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Layout constants for the simulated address space. The mmap arena and
// the Isomalloc arena are disjoint so a pointer's provenance is decidable
// from its value alone, as it is on a real system with a reserved range.
const (
	mmapBase = 0x0000_7000_0000_0000
	// IsomallocBase is where rank 0's reserved range begins.
	IsomallocBase = 0x0000_1000_0000_0000
	// IsomallocRangeSize is the per-rank reserved range (64 GiB of
	// virtual space in the real implementation; the value here only
	// needs to exceed any rank's footprint).
	IsomallocRangeSize = 1 << 36
)

// AddressSpace is one OS process's view of virtual memory.
type AddressSpace struct {
	next uint64
	// regions maps a region's base to the region; index keeps the same
	// regions sorted by base for O(log n) containment and overlap
	// checks.
	regions map[uint64]*Region
	index   []*Region
	mapped  uint64
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		next:    mmapBase,
		regions: make(map[uint64]*Region),
	}
}

// indexInsert places r into the sorted base index; the mmap arena grows
// upward, so the common case appends.
func (as *AddressSpace) indexInsert(r *Region) {
	n := len(as.index)
	if n == 0 || as.index[n-1].Base < r.Base {
		as.index = append(as.index, r)
		return
	}
	i := sort.Search(n, func(i int) bool { return as.index[i].Base > r.Base })
	as.index = append(as.index, nil)
	copy(as.index[i+1:], as.index[i:])
	as.index[i] = r
}

func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Mmap maps an anonymous region of at least size bytes at a
// process-chosen address and returns it. This is the path the simulated
// dynamic linker uses for code and data segments; such regions are not
// migratable.
func (as *AddressSpace) Mmap(size uint64, label string) *Region {
	if size == 0 {
		size = PageSize
	}
	r := &Region{
		Base:  as.next,
		Size:  roundUp(size),
		Kind:  MmapRegion,
		Label: label,
		Owner: -1,
	}
	as.next += r.Size + PageSize // guard page
	as.regions[r.Base] = r
	as.indexInsert(r)
	as.mapped += r.Size
	return r
}

// MapFixed maps a region at a caller-chosen base inside the Isomalloc
// arena. It fails if the range overlaps an existing mapping.
func (as *AddressSpace) MapFixed(base, size uint64, label string, owner int) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: MapFixed with zero size")
	}
	size = roundUp(size)
	// The new range [base,base+size) can only collide with the region
	// whose base precedes its end first — regions are disjoint and
	// sorted, so one binary-search probe decides.
	i := sort.Search(len(as.index), func(i int) bool { return as.index[i].End() > base })
	if i < len(as.index) && as.index[i].Base < base+size {
		r := as.index[i]
		return nil, fmt.Errorf("mem: fixed mapping [%#x,%#x) overlaps %s [%#x,%#x)",
			base, base+size, r.Label, r.Base, r.End())
	}
	r := &Region{Base: base, Size: size, Kind: IsoRegion, Label: label, Owner: owner}
	as.regions[r.Base] = r
	as.indexInsert(r)
	as.mapped += r.Size
	return r, nil
}

// Unmap removes the region starting at base.
func (as *AddressSpace) Unmap(base uint64) error {
	r, ok := as.regions[base]
	if !ok {
		return fmt.Errorf("mem: unmap of unmapped base %#x", base)
	}
	delete(as.regions, base)
	i := sort.Search(len(as.index), func(i int) bool { return as.index[i].Base >= base })
	copy(as.index[i:], as.index[i+1:])
	as.index = as.index[:len(as.index)-1]
	as.mapped -= r.Size
	return nil
}

// Find returns the region containing addr, or nil.
func (as *AddressSpace) Find(addr uint64) *Region {
	i := sort.Search(len(as.index), func(i int) bool { return as.index[i].End() > addr })
	if i < len(as.index) && as.index[i].Base <= addr {
		return as.index[i]
	}
	return nil
}

// Regions returns all mapped regions ordered by base address.
func (as *AddressSpace) Regions() []*Region {
	return append([]*Region(nil), as.index...)
}

// MappedBytes reports the total size of all mapped regions.
func (as *AddressSpace) MappedBytes() uint64 { return as.mapped }

// RankRangeBase returns the base of virtual rank vp's reserved Isomalloc
// range. The value is a pure function of vp, identical in every process.
func RankRangeBase(vp int) uint64 {
	return IsomallocBase + uint64(vp)*IsomallocRangeSize
}

// MaxRanks is the number of per-rank ranges the Isomalloc arena holds
// before it would collide with the mmap arena.
const MaxRanks = (mmapBase - IsomallocBase) / IsomallocRangeSize

// RankOfAddress returns the virtual rank whose reserved range contains
// addr, or -1 if addr is outside the Isomalloc arena.
func RankOfAddress(addr uint64) int {
	if addr < IsomallocBase || addr >= mmapBase {
		return -1
	}
	vp := (addr - IsomallocBase) / IsomallocRangeSize
	return int(vp)
}
