// Package mem models virtual memory for the reproduction: a simulated
// 64-bit address space with mmap-style region mapping, and an
// Isomalloc-style migratable allocator.
//
// The distinction between the two allocation paths is the crux of the
// paper's migration story. Segments mapped by the (simulated) dynamic
// linker come from the plain mmap path and live at process-chosen
// addresses, so they cannot be migrated between address spaces —
// exactly why PIPglobals and FSglobals cannot support rank migration
// (§3.1, §3.2). Isomalloc allocations live in a per-rank virtual address
// range reserved identically in every process, so their bytes can be
// copied to another process with all internal pointers remaining valid —
// which is what lets PIEglobals migrate code and data segments (§3.3).
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of region mapping.
const PageSize = 4096

// RegionKind distinguishes how a region was allocated.
type RegionKind int

const (
	// MmapRegion is an anonymous process-local mapping, such as the
	// segments created by the dynamic linker. Not migratable.
	MmapRegion RegionKind = iota
	// IsoRegion is a mapping inside a rank's reserved Isomalloc range.
	// Migratable: the same virtual addresses are reserved in every
	// process.
	IsoRegion
)

func (k RegionKind) String() string {
	switch k {
	case MmapRegion:
		return "mmap"
	case IsoRegion:
		return "isomalloc"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a contiguous mapped range of the simulated address space.
type Region struct {
	Base  uint64
	Size  uint64
	Kind  RegionKind
	Label string
	// Owner is the virtual rank the region belongs to, or -1 for
	// process-wide mappings.
	Owner int
}

// End returns one past the last mapped address.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// Layout constants for the simulated address space. The mmap arena and
// the Isomalloc arena are disjoint so a pointer's provenance is decidable
// from its value alone, as it is on a real system with a reserved range.
const (
	mmapBase = 0x0000_7000_0000_0000
	// IsomallocBase is where rank 0's reserved range begins.
	IsomallocBase = 0x0000_1000_0000_0000
	// IsomallocRangeSize is the per-rank reserved range (64 GiB of
	// virtual space in the real implementation; the value here only
	// needs to exceed any rank's footprint).
	IsomallocRangeSize = 1 << 36
)

// AddressSpace is one OS process's view of virtual memory.
type AddressSpace struct {
	next    uint64
	regions map[uint64]*Region
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		next:    mmapBase,
		regions: make(map[uint64]*Region),
	}
}

func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Mmap maps an anonymous region of at least size bytes at a
// process-chosen address and returns it. This is the path the simulated
// dynamic linker uses for code and data segments; such regions are not
// migratable.
func (as *AddressSpace) Mmap(size uint64, label string) *Region {
	if size == 0 {
		size = PageSize
	}
	r := &Region{
		Base:  as.next,
		Size:  roundUp(size),
		Kind:  MmapRegion,
		Label: label,
		Owner: -1,
	}
	as.next += r.Size + PageSize // guard page
	as.regions[r.Base] = r
	return r
}

// MapFixed maps a region at a caller-chosen base inside the Isomalloc
// arena. It fails if the range overlaps an existing mapping.
func (as *AddressSpace) MapFixed(base, size uint64, label string, owner int) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: MapFixed with zero size")
	}
	size = roundUp(size)
	for _, r := range as.regions {
		if base < r.End() && r.Base < base+size {
			return nil, fmt.Errorf("mem: fixed mapping [%#x,%#x) overlaps %s [%#x,%#x)",
				base, base+size, r.Label, r.Base, r.End())
		}
	}
	r := &Region{Base: base, Size: size, Kind: IsoRegion, Label: label, Owner: owner}
	as.regions[r.Base] = r
	return r, nil
}

// Unmap removes the region starting at base.
func (as *AddressSpace) Unmap(base uint64) error {
	if _, ok := as.regions[base]; !ok {
		return fmt.Errorf("mem: unmap of unmapped base %#x", base)
	}
	delete(as.regions, base)
	return nil
}

// Find returns the region containing addr, or nil.
func (as *AddressSpace) Find(addr uint64) *Region {
	for _, r := range as.regions {
		if r.Contains(addr) {
			return r
		}
	}
	return nil
}

// Regions returns all mapped regions ordered by base address.
func (as *AddressSpace) Regions() []*Region {
	out := make([]*Region, 0, len(as.regions))
	for _, r := range as.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// MappedBytes reports the total size of all mapped regions.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}

// RankRangeBase returns the base of virtual rank vp's reserved Isomalloc
// range. The value is a pure function of vp, identical in every process.
func RankRangeBase(vp int) uint64 {
	return IsomallocBase + uint64(vp)*IsomallocRangeSize
}

// MaxRanks is the number of per-rank ranges the Isomalloc arena holds
// before it would collide with the mmap arena.
const MaxRanks = (mmapBase - IsomallocBase) / IsomallocRangeSize

// RankOfAddress returns the virtual rank whose reserved range contains
// addr, or -1 if addr is outside the Isomalloc arena.
func RankOfAddress(addr uint64) int {
	if addr < IsomallocBase || addr >= mmapBase {
		return -1
	}
	vp := (addr - IsomallocBase) / IsomallocRangeSize
	return int(vp)
}
