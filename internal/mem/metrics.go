package mem

import "provirt/internal/obs"

// Host-side snapshot instruments (package obs). Serialization is the
// memory subsystem's hot path — every migration and checkpoint pays
// it — and the incremental design's whole value is the gap between
// full and delta bytes, which these counters make observable across a
// run. Package-level with a nil default: an un-instrumented Serialize
// pays one pointer comparison, the trace.Tracer discipline.
type obsMetrics struct {
	// snapshots counts Serialize calls; fullBytes/deltaBytes accumulate
	// each snapshot's logical payload vs what actually changed since
	// the previous snapshot (the incremental win is their ratio).
	snapshots  *obs.Counter
	fullBytes  *obs.Counter
	deltaBytes *obs.Counter
	// blocksReused counts clean blocks whose payload was shared
	// copy-on-write with the previous snapshot; blocksCopied counts
	// dirty (or cache-aliased) blocks that went through the arena.
	blocksReused *obs.Counter
	blocksCopied *obs.Counter
	// arenaBytes accumulates the bytes actually copied through the
	// pooled snapshot arena.
	arenaBytes *obs.Counter
}

var metrics obsMetrics

// EnableObs registers the snapshot instruments in r and turns them on
// for every heap in the process; EnableObs(nil) restores the no-op
// state. Call it only while no simulation is running.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		snapshots: r.Counter("mem_snapshots_total",
			"heap serializations (migrations + checkpoints)"),
		fullBytes: r.Counter("mem_snapshot_full_bytes_total",
			"logical payload bytes across all snapshots"),
		deltaBytes: r.Counter("mem_snapshot_delta_bytes_total",
			"payload bytes that changed since each previous snapshot"),
		blocksReused: r.Counter("mem_snapshot_blocks_reused_total",
			"clean blocks shared copy-on-write with the previous snapshot"),
		blocksCopied: r.Counter("mem_snapshot_blocks_copied_total",
			"dirty blocks copied through the snapshot arena"),
		arenaBytes: r.Counter("mem_snapshot_arena_bytes_total",
			"bytes copied through the snapshot arena"),
	}
}
