package mem

import (
	"testing"
	"testing/quick"
)

func TestMmapDistinctRegions(t *testing.T) {
	as := NewAddressSpace()
	a := as.Mmap(1000, "a")
	b := as.Mmap(1000, "b")
	if a.Base == b.Base {
		t.Fatal("two mmaps share a base")
	}
	if a.Size%PageSize != 0 {
		t.Fatalf("size %d not page-aligned", a.Size)
	}
	if a.Contains(b.Base) || b.Contains(a.Base) {
		t.Fatal("regions overlap")
	}
}

func TestMmapFindAndUnmap(t *testing.T) {
	as := NewAddressSpace()
	r := as.Mmap(8192, "x")
	if got := as.Find(r.Base + 100); got != r {
		t.Fatal("Find missed a mapped address")
	}
	if err := as.Unmap(r.Base); err != nil {
		t.Fatal(err)
	}
	if as.Find(r.Base) != nil {
		t.Fatal("unmapped region still found")
	}
	if err := as.Unmap(r.Base); err == nil {
		t.Fatal("double unmap must fail")
	}
}

func TestMapFixedRejectsOverlap(t *testing.T) {
	as := NewAddressSpace()
	base := RankRangeBase(0)
	if _, err := as.MapFixed(base, 4096, "one", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapFixed(base+2048, 4096, "two", 0); err == nil {
		t.Fatal("overlapping fixed mapping accepted")
	}
	if _, err := as.MapFixed(base+PageSize, 4096, "three", 0); err != nil {
		t.Fatalf("adjacent mapping rejected: %v", err)
	}
}

func TestRankRangeDisjointFromMmapArena(t *testing.T) {
	as := NewAddressSpace()
	for i := 0; i < 1000; i++ {
		r := as.Mmap(1<<20, "seg")
		if RankOfAddress(r.Base) != -1 {
			t.Fatalf("mmap region %#x inside the Isomalloc arena", r.Base)
		}
	}
	for vp := 0; vp < 100; vp++ {
		base := RankRangeBase(vp)
		if got := RankOfAddress(base); got != vp {
			t.Fatalf("RankOfAddress(RankRangeBase(%d)) = %d", vp, got)
		}
		if got := RankOfAddress(base + IsomallocRangeSize - 1); got != vp {
			t.Fatalf("range end attributed to %d, want %d", got, vp)
		}
	}
}

func TestHeapAllocAddressesStable(t *testing.T) {
	// The same allocation sequence must produce the same addresses in
	// any process — the Isomalloc invariant.
	h1, h2 := NewHeap(3), NewHeap(3)
	for i := 0; i < 50; i++ {
		a, err := h1.Alloc(uint64(8+i*16), "x")
		if err != nil {
			t.Fatal(err)
		}
		b, err := h2.Alloc(uint64(8+i*16), "x")
		if err != nil {
			t.Fatal(err)
		}
		if a.Addr != b.Addr {
			t.Fatalf("alloc %d diverged: %#x vs %#x", i, a.Addr, b.Addr)
		}
	}
}

func TestHeapBlocksWithinRange(t *testing.T) {
	h := NewHeap(7)
	for i := 0; i < 100; i++ {
		b, err := h.Alloc(1024, "x")
		if err != nil {
			t.Fatal(err)
		}
		if RankOfAddress(b.Addr) != 7 || RankOfAddress(b.End()-1) != 7 {
			t.Fatalf("block [%#x,%#x) escapes rank 7's range", b.Addr, b.End())
		}
	}
}

func TestHeapFreeAndReuse(t *testing.T) {
	h := NewHeap(0)
	a, _ := h.Alloc(256, "a")
	addr := a.Addr
	if err := h.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(addr); err == nil {
		t.Fatal("double free must fail")
	}
	b, _ := h.Alloc(256, "b")
	if b.Addr != addr {
		t.Fatalf("freed block not reused: got %#x want %#x", b.Addr, addr)
	}
	if h.LiveBlocks() != 1 {
		t.Fatalf("%d live blocks", h.LiveBlocks())
	}
}

func TestHeapLookup(t *testing.T) {
	h := NewHeap(1)
	b, _ := h.Alloc(100, "x")
	if h.Lookup(b.Addr+50) != b {
		t.Fatal("interior lookup failed")
	}
	if h.Lookup(b.End()) != nil {
		t.Fatal("lookup past end succeeded")
	}
}

func TestSerializeRestoreRoundTrip(t *testing.T) {
	h := NewHeap(5)
	a, _ := h.Alloc(64, "data")
	a.Words[0] = 0xdeadbeef
	a.Words[7] = a.Addr // self-referential pointer
	ballast, _ := h.AllocBallast(1<<20, "ballast")
	c, _ := h.Alloc(32, "more")
	c.Words[1] = a.Addr + 56 // pointer into a

	snap := h.Serialize()
	h2 := Restore(snap)

	a2 := h2.Lookup(a.Addr)
	if a2 == nil || a2.Words[0] != 0xdeadbeef {
		t.Fatal("payload lost in round trip")
	}
	if a2.Words[7] != a2.Addr {
		t.Fatal("self-pointer no longer valid")
	}
	c2 := h2.Lookup(c.Addr)
	if c2.Words[1] != a2.Addr+56 {
		t.Fatal("cross-block pointer broken")
	}
	b2 := h2.Lookup(ballast.Addr)
	if b2 == nil || b2.Size != ballast.Size || b2.Words != nil {
		t.Fatal("ballast block mishandled")
	}
	if h2.LiveBytes() != h.LiveBytes() {
		t.Fatalf("live bytes %d vs %d", h2.LiveBytes(), h.LiveBytes())
	}
	// Restored heap allocates fresh blocks after the old brk.
	d, err := h2.Alloc(16, "new")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Lookup(d.Addr) != d {
		t.Fatal("post-restore allocation broken")
	}
}

func TestSnapshotBytes(t *testing.T) {
	h := NewHeap(2)
	h.Alloc(100, "a") // rounds to 104
	h.AllocBallast(4096, "b")
	snap := h.Serialize()
	if snap.Bytes() != 104+4096 {
		t.Fatalf("snapshot bytes %d, want %d", snap.Bytes(), 104+4096)
	}
}

// Property: any alloc/free interleaving leaves live blocks disjoint,
// and serialize/restore preserves all live payloads.
func TestHeapDisjointnessProperty(t *testing.T) {
	type op struct {
		Size uint16
		Free bool
	}
	f := func(ops []op) bool {
		h := NewHeap(9)
		var live []*Block
		for i, o := range ops {
			if o.Free && len(live) > 0 {
				idx := i % len(live)
				if h.Free(live[idx].Addr) != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			b, err := h.Alloc(uint64(o.Size)+8, "p")
			if err != nil {
				return false
			}
			b.Words[0] = uint64(i)
			live = append(live, b)
		}
		// Disjointness.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.Addr < b.End() && b.Addr < a.End() {
					return false
				}
			}
		}
		// Round-trip fidelity.
		h2 := Restore(h.Serialize())
		for _, b := range live {
			nb := h2.Lookup(b.Addr)
			if nb == nil || nb.Words[0] != b.Words[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := NewHeap(0)
	if _, err := h.Alloc(IsomallocRangeSize+8, "huge"); err == nil {
		t.Fatal("allocation beyond the reserved range must fail")
	}
	if _, err := h.Alloc(0, "zero"); err == nil {
		t.Fatal("zero-size allocation must fail")
	}
}
