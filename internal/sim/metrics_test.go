package sim

import (
	"testing"

	"provirt/internal/obs"
)

// Engine instruments must count dispatches, queue pressure, and node
// recycling — and vanish to a pointer comparison when disabled.
func TestEngineObsCounts(t *testing.T) {
	r := obs.NewRegistry()
	EnableObs(r)
	defer EnableObs(nil)

	e := NewEngine()
	dispatched := 0
	for i := 0; i < 8; i++ {
		e.After(Time(i+1), func() { dispatched++ })
	}
	e.Drain()
	// Reschedule: the free list now feeds alloc.
	e.After(1, func() { dispatched++ })
	e.Drain()

	if dispatched != 9 {
		t.Fatalf("callbacks ran %d times, want 9", dispatched)
	}
	if got := metrics.dispatched.Value(); got != 9 {
		t.Fatalf("sim_events_dispatched_total = %d, want 9", got)
	}
	if got := metrics.queueDepth.Value(); got != 8 {
		t.Fatalf("sim_queue_depth_high_water = %d, want 8", got)
	}
	if got := metrics.nodeAllocs.Value(); got != 8 {
		t.Fatalf("sim_event_node_allocs_total = %d, want 8", got)
	}
	if got := metrics.nodeReuse.Value(); got != 1 {
		t.Fatalf("sim_event_node_reuse_total = %d, want 1", got)
	}

	EnableObs(nil)
	e2 := NewEngine()
	e2.After(1, func() {})
	e2.Drain()
	if got := metrics.dispatched.Value(); got != 0 {
		t.Fatalf("disabled metrics still counting: %d", got)
	}
}
