package sim

import (
	"testing"

	"provirt/internal/obs"
)

// TestEngineCancelChurnReusesNodes drives the Cancel/compact
// interaction under heavy churn: waves of mass cancellation must keep
// the resident queue bounded through compaction, and every node a
// cancelled or fired event releases must come back through the free
// list rather than fresh allocation. The obs counters make both
// observable without poking at internals from the outside — and since
// a ParallelEngine shard is this same Engine, the guarantee carries
// straight to the per-domain queues.
func TestEngineCancelChurnReusesNodes(t *testing.T) {
	r := obs.NewRegistry()
	EnableObs(r)
	defer EnableObs(nil)

	e := NewEngine()
	fired := 0
	fn := func() { fired++ }

	const waves, per = 40, 1000
	evs := make([]Event, 0, per)
	for w := 0; w < waves; w++ {
		evs = evs[:0]
		base := e.Now() + 1
		for i := 0; i < per; i++ {
			evs = append(evs, e.At(base+Time(i%37), fn))
		}
		// Cancel 90% — far past the dead*2 > len(queue) compaction
		// threshold, so compact runs mid-wave.
		for i, ev := range evs {
			if i%10 != 0 {
				ev.Cancel()
			}
		}
		// Compaction keeps dead residents a minority of the queue.
		if qlen := len(e.queue); e.dead*2 > qlen+1 {
			t.Fatalf("wave %d: %d dead residents in a queue of %d — compact didn't run", w, e.dead, qlen)
		}
		e.Drain()
		if len(e.queue) != 0 {
			t.Fatalf("wave %d: %d residents after drain", w, len(e.queue))
		}
	}

	if want := waves * per / 10; fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
	allocs := metrics.nodeAllocs.Value()
	reuse := metrics.nodeReuse.Value()
	// The first wave may allocate every node; after that the free list
	// must carry the full load.
	if allocs > per {
		t.Fatalf("allocated %d nodes over %d waves — free list not reused (reuse=%d)", allocs, waves, reuse)
	}
	if want := uint64((waves - 1) * per); reuse < want {
		t.Fatalf("reused %d nodes, want at least %d", reuse, want)
	}
	if got := metrics.dispatched.Value(); got != uint64(fired) {
		t.Fatalf("sim_events_dispatched_total = %d, fired %d", got, fired)
	}
}
