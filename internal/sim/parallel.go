package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"provirt/internal/trace"
)

// ParallelEngine is the conservative-window parallel form of Engine:
// the pending queue is sharded into per-domain queues, each advanced by
// its own worker up to a horizon no other domain can invalidate. The
// result — rank state, rows, EventsFired, and trace bytes — is
// byte-identical to a serial Engine in domain mode at any worker count.
//
// The protocol per window:
//
//  1. The coordinator finds T, the earliest pending event time across
//     all domains, and sets the horizon H = T + lookahead.
//  2. Every domain whose next event is before H runs on a worker,
//     firing its events with at < H in (at, seq) order. Events a
//     callback schedules into its own domain go straight into the local
//     queue (and fire this window if they land before H); events for
//     another domain are appended to a per-destination outbox.
//  3. At the barrier the outboxes drain into their destination queues
//     and per-domain trace buffers merge into the user's tracer in
//     firing-key order.
//
// Correctness rests on the lookahead bound: a cross-domain event must
// land at least `lookahead` after its sender's clock, and every sender
// in the window has clock < H, so deliveries land at or after H — never
// inside the window that just ran. The engine panics on a send that
// violates the bound rather than silently diverging from serial order.
//
// Determinism rests on the composite seq stamp (see Engine): the stamp
// is computed from the creating domain's local creation counter, so the
// total order (at, seq) is identical whether domains run interleaved on
// one queue or concurrently on many.
type ParallelEngine struct {
	shards    []*shard
	lookahead Time
	workers   int
	tracer    trace.Tracer

	// extSeq is the src-0 creation counter for events scheduled outside
	// any callback (world setup, between-phase scheduling) — the same
	// single counter a serial engine in domain mode uses.
	extSeq uint64

	// horizon is the current window's bound; written by the coordinator
	// between windows, read by workers (and the causality check) inside
	// one.
	horizon Time

	windows uint64
	// halted is atomic because Halt may be called from a callback, which
	// under this engine runs on a worker goroutine.
	halted atomic.Bool

	// active is the coordinator's reusable scratch slice.
	active []*shard
}

// ParallelConfig describes a ParallelEngine.
type ParallelConfig struct {
	// Domains is the number of lookahead domains (1..MaxDomains).
	Domains int
	// Lookahead is the conservative horizon slack: the minimum virtual
	// time any cross-domain event takes to arrive. Must be positive —
	// zero lookahead serializes the protocol into lockstep.
	Lookahead Time
	// Workers caps how many domains advance concurrently; values <= 0
	// or greater than Domains clamp to Domains.
	Workers int
	// Tracer receives the merged event stream; nil runs untraced.
	Tracer trace.Tracer
}

// shard is one domain's queue plus its window-local state. It is the
// Sched a callback running in this domain sees.
type shard struct {
	pe  *ParallelEngine
	eng *Engine
	dom int32

	// out[d] holds cross-domain events created this window for domain
	// d, drained at the barrier. Single writer (this shard's worker).
	out [][]outEvent

	// buf collects this window's trace emissions, grouped by firing
	// event, for the deterministic barrier merge. Nil when untraced.
	buf *traceBuf

	// Window-local counters, folded into package metrics and engine
	// totals at the barrier so the hot loop touches no shared state.
	windowFired uint64
	windowCross uint64
}

// outEvent is one cross-domain insertion in flight to another shard.
type outEvent struct {
	at   Time
	seq  uint64
	call TimedCall
	arg  any
}

// NewParallelEngine builds a sharded engine. Configuration errors panic:
// the caller is the world builder, and a bad domain plan is a bug, not
// an input.
func NewParallelEngine(cfg ParallelConfig) *ParallelEngine {
	if cfg.Domains < 1 || cfg.Domains > MaxDomains {
		panic(fmt.Sprintf("sim: domain count %d out of range [1,%d]", cfg.Domains, MaxDomains))
	}
	if cfg.Lookahead <= 0 {
		panic(fmt.Sprintf("sim: parallel engine needs positive lookahead, got %v", cfg.Lookahead))
	}
	workers := cfg.Workers
	if workers <= 0 || workers > cfg.Domains {
		workers = cfg.Domains
	}
	p := &ParallelEngine{
		lookahead: cfg.Lookahead,
		workers:   workers,
		tracer:    cfg.Tracer,
		shards:    make([]*shard, cfg.Domains),
		active:    make([]*shard, 0, cfg.Domains),
	}
	for d := range p.shards {
		eng := NewEngine()
		eng.EnableDomains(cfg.Domains)
		s := &shard{pe: p, eng: eng, dom: int32(d), out: make([][]outEvent, cfg.Domains)}
		if cfg.Tracer != nil {
			s.buf = &traceBuf{}
		}
		p.shards[d] = s
	}
	return p
}

// Domains reports the domain count.
func (p *ParallelEngine) Domains() int { return len(p.shards) }

// Lookahead reports the conservative horizon slack.
func (p *ParallelEngine) Lookahead() Time { return p.lookahead }

// Windows reports how many conservative windows have run.
func (p *ParallelEngine) Windows() uint64 { return p.windows }

// Tracer returns the user's tracer (Sched). Emissions made outside any
// callback interleave with merged window output in program order, just
// as they do on a serial engine.
func (p *ParallelEngine) Tracer() trace.Tracer { return p.tracer }

// AtCallIn schedules call(s, t, arg) at time t in domain dom (Sched).
// This is the external path — world setup and between-phase scheduling;
// callbacks schedule through the per-domain Sched they were handed, and
// must not call this concurrently with Run.
func (p *ParallelEngine) AtCallIn(dom int, t Time, call TimedCall, arg any) {
	cnt := p.extSeq
	p.extSeq++
	seq := uint64(dom)<<56 | cnt // src 0: external
	p.shards[dom].eng.pushStamped(t, seq, int32(dom), call, arg)
}

// Reserve pre-sizes every shard for a workload keeping about n events
// in flight across the whole engine.
func (p *ParallelEngine) Reserve(n int) {
	per := (n + len(p.shards) - 1) / len(p.shards)
	for _, s := range p.shards {
		s.eng.Reserve(per)
	}
}

// EventsFired reports events processed across all domains.
func (p *ParallelEngine) EventsFired() uint64 {
	var total uint64
	for _, s := range p.shards {
		total += s.eng.fired
	}
	return total
}

// DomainEventsFired reports per-domain fired counts, indexed by domain.
func (p *ParallelEngine) DomainEventsFired() []uint64 {
	out := make([]uint64, len(p.shards))
	for d, s := range p.shards {
		out[d] = s.eng.fired
	}
	return out
}

// Pending reports live events queued across all domains.
func (p *ParallelEngine) Pending() int {
	total := 0
	for _, s := range p.shards {
		total += s.eng.live
	}
	return total
}

// Halt stops Run after the current window's barrier.
func (p *ParallelEngine) Halt() { p.halted.Store(true) }

// next reports the shard's earliest live event time, releasing dead
// heads on the way (the coordinator-side mirror of Step's skip loop).
func (s *shard) next() (Time, bool) {
	e := s.eng
	for len(e.queue) > 0 {
		nd := e.queue[0]
		if !nd.dead {
			return nd.at, true
		}
		e.popMin()
		e.dead--
		e.release(nd)
	}
	return 0, false
}

// runWindow fires the shard's events with at < horizon in key order.
// It runs on a worker goroutine; everything it touches is shard-local.
func (s *shard) runWindow(horizon Time) {
	e := s.eng
	for len(e.queue) > 0 {
		nd := e.queue[0]
		if nd.dead {
			e.popMin()
			e.dead--
			e.release(nd)
			continue
		}
		if nd.at >= horizon {
			break
		}
		e.popMin()
		at := nd.at
		e.now = at
		e.fired++
		e.live--
		s.windowFired++
		if s.buf != nil {
			s.buf.begin(at, nd.seq)
			s.buf.Emit(trace.Event{Time: at, Kind: trace.KindEngineEvent, PE: -1, VP: -1, Peer: -1})
		}
		fn, call, tcall, arg, dom := nd.fn, nd.call, nd.tcall, nd.arg, nd.dom
		e.release(nd)
		e.curSrc = dom + 1
		if fn != nil {
			fn()
		} else if call != nil {
			call(arg)
		} else {
			tcall(s, at, arg)
		}
		e.curSrc = 0
	}
}

// AtCallIn schedules from inside a callback running in this domain
// (Sched). Same-domain events join the local queue immediately;
// cross-domain events are stamped here (the stamp needs this domain's
// creation counter) and mailed for delivery at the barrier.
func (s *shard) AtCallIn(dom int, t Time, call TimedCall, arg any) {
	e := s.eng
	src := uint64(s.dom) + 1
	cnt := e.srcSeq[src]
	e.srcSeq[src] = cnt + 1
	seq := uint64(dom)<<56 | src<<40 | cnt
	if int32(dom) == s.dom {
		e.pushStamped(t, seq, int32(dom), call, arg)
		return
	}
	if t < s.pe.horizon {
		panic(fmt.Sprintf(
			"sim: cross-domain event at %v from domain %d to %d lands inside the window (horizon %v, lookahead %v): cost model broke the lookahead bound",
			t, s.dom, dom, s.pe.horizon, s.pe.lookahead))
	}
	s.out[dom] = append(s.out[dom], outEvent{at: t, seq: seq, call: call, arg: arg})
	s.windowCross++
}

// Tracer returns the shard's window trace buffer (Sched), or nil when
// the run is untraced.
func (s *shard) Tracer() trace.Tracer {
	if s.buf == nil {
		return nil
	}
	return s.buf
}

// Run drives conservative windows until done returns true, every queue
// drains, or Halt is called. If the queues drain first, Run returns
// ErrStalled — the same contract as Engine.Run, with done evaluated at
// window granularity (between windows no callback is mid-flight, so
// any done predicate over world state is safe to read).
func (p *ParallelEngine) Run(done func() bool) error {
	p.halted.Store(false)
	work := make(chan *shard, len(p.shards))
	defer close(work)
	var wg sync.WaitGroup
	for i := 0; i < p.workers; i++ {
		go func() {
			// p.horizon is stable for the window: the coordinator writes
			// it before the sends and after wg.Wait, so the channel and
			// the WaitGroup order every access.
			for s := range work {
				s.runWindow(p.horizon)
				wg.Done()
			}
		}()
	}
	for !p.halted.Load() {
		if done != nil && done() {
			return nil
		}
		// The earliest pending event anywhere bounds the horizon.
		var tmin Time
		found := false
		for _, s := range p.shards {
			if t, ok := s.next(); ok && (!found || t < tmin) {
				tmin, found = t, true
			}
		}
		if !found {
			if done != nil && !done() {
				return ErrStalled
			}
			return nil
		}
		p.horizon = tmin + p.lookahead
		active := p.active[:0]
		for _, s := range p.shards {
			if t, ok := s.next(); ok && t < p.horizon {
				active = append(active, s)
			}
		}
		if len(active) == 1 {
			// A lone active domain needs no worker hop — this is also
			// the degenerate serial case (one domain, or a fully skewed
			// phase), which must not pay barrier overhead per event.
			active[0].runWindow(p.horizon)
		} else {
			wg.Add(len(active))
			for _, s := range active {
				work <- s
			}
			wg.Wait()
		}
		p.barrier(active)
	}
	return nil
}

// barrier is the window epilogue: deliver mailboxes, merge trace
// buffers in firing-key order, and fold window-local counters into the
// package metrics. It runs on the coordinator with all workers idle.
func (p *ParallelEngine) barrier(active []*shard) {
	var fired, crossed uint64
	for _, s := range active {
		for dst := range s.out {
			box := s.out[dst]
			if len(box) == 0 {
				continue
			}
			dstEng := p.shards[dst].eng
			for i := range box {
				ev := &box[i]
				dstEng.pushStamped(ev.at, ev.seq, int32(dst), ev.call, ev.arg)
				ev.call, ev.arg = nil, nil
			}
			s.out[dst] = box[:0]
		}
		fired += s.windowFired
		crossed += s.windowCross
		metrics.domainWindowEvents.Observe(s.windowFired)
		s.windowFired, s.windowCross = 0, 0
	}
	if p.tracer != nil {
		p.mergeTraces(active)
	}
	p.windows++
	metrics.dispatched.Add(fired)
	metrics.windows.Inc()
	metrics.windowEvents.Observe(fired)
	metrics.crossDomainEvents.Add(crossed)
	metrics.idleDomainWindows.Add(uint64(len(p.shards) - len(active)))
}

// mergeTraces drains the active shards' window buffers into the user's
// tracer ordered by firing-event key (at, seq) — exactly the order a
// serial engine would have emitted them in.
func (p *ParallelEngine) mergeTraces(active []*shard) {
	// Per-shard cursors; buffers are already key-sorted (each shard
	// fired in key order), so this is a k-way merge with linear probing
	// over at most Domains cursors.
	type cursor struct {
		buf  *traceBuf
		g, e int // next group / next event indexes
	}
	cur := make([]cursor, 0, len(active))
	for _, s := range active {
		if len(s.buf.groups) > 0 {
			cur = append(cur, cursor{buf: s.buf})
		}
	}
	for len(cur) > 0 {
		m := 0
		for i := 1; i < len(cur); i++ {
			gi := cur[i].buf.groups[cur[i].g]
			gm := cur[m].buf.groups[cur[m].g]
			if gi.at < gm.at || (gi.at == gm.at && gi.seq < gm.seq) {
				m = i
			}
		}
		c := &cur[m]
		g := c.buf.groups[c.g]
		for i := 0; i < g.n; i++ {
			p.tracer.Emit(c.buf.events[c.e])
			c.e++
		}
		c.g++
		if c.g == len(c.buf.groups) {
			cur[m] = cur[len(cur)-1]
			cur = cur[:len(cur)-1]
		}
	}
	for _, s := range active {
		s.buf.reset()
	}
}

// traceBuf accumulates one shard's window emissions grouped by firing
// event, so the barrier can interleave shards exactly as a serial
// engine would have.
type traceBuf struct {
	groups []traceGroup
	events []trace.Event
}

// traceGroup is one fired event's emission run: its ordering key and
// how many events it emitted (dispatch record plus callback emissions).
type traceGroup struct {
	at  Time
	seq uint64
	n   int
}

func (b *traceBuf) begin(at Time, seq uint64) {
	b.groups = append(b.groups, traceGroup{at: at, seq: seq})
}

// Emit implements trace.Tracer for callbacks running in the shard.
func (b *traceBuf) Emit(ev trace.Event) {
	b.events = append(b.events, ev)
	b.groups[len(b.groups)-1].n++
}

func (b *traceBuf) reset() {
	b.groups = b.groups[:0]
	b.events = b.events[:0]
}
