package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired as %v", order)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Drain()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d pending after drain", e.Pending())
	}
}

func TestEngineRunStalls(t *testing.T) {
	e := NewEngine()
	err := e.Run(func() bool { return false })
	if err != ErrStalled {
		t.Fatalf("got %v, want ErrStalled", err)
	}
}

func TestEngineRunDone(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	if err := e.Run(func() bool { return n >= 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("done predicate stopped at n=%d", n)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Halt() })
	e.At(2, func() { n++ })
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("halt did not stop the loop; n=%d", n)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	e := NewEngine()
	ev := e.At(42*time.Nanosecond, func() {})
	if ev.Time() != 42*time.Nanosecond {
		t.Fatalf("Time() = %v", ev.Time())
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		e.Drain()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAtCall(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(x any) { got = append(got, x.(int)) }
	e.AtCall(20, record, 2)
	e.AtCall(10, record, 1)
	e.At(15, func() { got = append(got, 99) })
	e.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 99 || got[2] != 2 {
		t.Fatalf("AtCall fired as %v", got)
	}
}

func TestEnginePendingCountsLiveEvents(t *testing.T) {
	e := NewEngine()
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.At(Time(i+1), func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	evs[3].Cancel()
	evs[7].Cancel()
	if e.Pending() != 8 {
		t.Fatalf("Pending = %d after 2 cancels, want 8", e.Pending())
	}
	evs[3].Cancel() // double cancel must not double-count
	if e.Pending() != 8 {
		t.Fatalf("Pending = %d after double cancel, want 8", e.Pending())
	}
	e.Step()
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d after one step, want 7", e.Pending())
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// Cancelled events must not stay resident: once they exceed half the
// queue the engine compacts them away.
func TestEngineCancelCompacts(t *testing.T) {
	e := NewEngine()
	keep := e.At(1, func() {})
	_ = keep
	var evs []Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, e.At(Time(i+2), func() {}))
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	if n := len(e.queue); n > 501 {
		t.Fatalf("queue holds %d nodes after mass cancel, compaction failed", n)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
}

// A handle to a fired event must stay inert even after its node is
// recycled for a new event.
func TestEngineStaleHandleCancelIsNoop(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Step() // fires and recycles the node
	fired := false
	fresh := e.At(2, func() { fired = true })
	stale.Cancel() // must not kill the recycled node
	e.Drain()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
	fresh.Cancel() // after firing: no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// Steady-state scheduling must not allocate: nodes come from the free
// list once the queue has warmed up.
func TestEngineEventPooling(t *testing.T) {
	e := NewEngine()
	tick := func(any) {}
	var next Time
	allocs := testing.AllocsPerRun(1000, func() {
		next += 1
		e.AtCall(next, tick, nil)
		e.Step()
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state AtCall+Step allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	// Keep a standing queue so sift depth is realistic.
	for i := 0; i < 256; i++ {
		e.AtCall(Time(i+1), fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var at Time
	for i := 0; i < b.N; i++ {
		at++
		e.AtCall(at+256, fn, nil)
		e.Step()
	}
}

func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	var at Time
	for i := 0; i < b.N; i++ {
		at++
		ev := e.AtCall(at, fn, nil)
		if i&1 == 0 {
			ev.Cancel()
		}
		e.Step()
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("digit %d count %d far from %d", d, c, n/10)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Errorf("variance %v, want ~1", variance)
	}
}

func TestRNGFork(t *testing.T) {
	a := NewRNG(9).Fork(1)
	b := NewRNG(9).Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlated: %d collisions", same)
	}
}
