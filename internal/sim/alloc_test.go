package sim

import "testing"

// TestEngineSteadyStateAllocs pins the engine's central performance
// contract: once the free list and queue have warmed up, scheduling
// and firing events allocates nothing. At reuses pooled nodes, AtCall
// threads its argument through a prior interface value (a pointer in
// an `any` does not allocate), and Step recycles the node before the
// callback runs. A regression here multiplies across the millions of
// events a scale run fires.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var fired int
	fn := func() { fired++ }
	call := func(any) { fired++ }
	arg := &fired

	// Warm up: populate the free list and queue capacity.
	for i := 0; i < 64; i++ {
		e.At(e.Now()+1, fn)
		e.AtCall(e.Now()+1, call, arg)
	}
	e.Drain()

	allocs := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+1, fn)
		e.AtCall(e.Now()+2, call, arg)
		e.Step()
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state At/AtCall/Step allocates %.1f objects per run, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// TestEngineReserveAllocs pins that Reserve makes even the FIRST wave
// of scheduling allocation-free: the queue slice and every node come
// out of the pre-sized pool.
func TestEngineReserveAllocs(t *testing.T) {
	e := NewEngine()
	e.Reserve(256)
	var fired int
	call := func(any) { fired++ }
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 256; i++ {
			e.AtCall(e.Now()+Time(i+1), call, &fired)
		}
		e.Drain()
	})
	if allocs != 0 {
		t.Errorf("post-Reserve first wave allocates %.1f objects per run, want 0", allocs)
	}
	// AllocsPerRun invokes the body once extra to warm up.
	if fired == 0 || fired%256 != 0 {
		t.Fatalf("fired %d events, want a multiple of 256", fired)
	}
}
