// Package sim provides a deterministic discrete-event simulation engine.
//
// All time in the reproduction is virtual: costs are charged to a simulated
// clock, never measured from the host. A simulation run is therefore a pure
// function of its configuration and seed, and every experiment in the paper
// reproduces bit-for-bit.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. It is a time.Duration so costs compose with the standard
// library's unit constants (time.Nanosecond etc.).
type Time = time.Duration

// Event is a scheduled callback. Events with equal timestamps fire in the
// order they were scheduled, which keeps runs deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event queue.
//
// The engine is not safe for concurrent use; the whole simulation runs on a
// single logical thread (rank user-level threads hand control back and forth
// with the engine through package ult).
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired reports how many events have been processed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a bug in a cost model, and silently clamping would
// mask causality violations.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// ErrStalled is returned by Run when the event queue drains while the
// caller-supplied done predicate is still false — the simulated system has
// deadlocked.
var ErrStalled = errors.New("sim: event queue empty before completion (deadlock)")

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: clock regression")
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until done returns true, the queue drains, or Halt is
// called. If the queue drains first, Run returns ErrStalled.
func (e *Engine) Run(done func() bool) error {
	e.halted = false
	for !e.halted {
		if done != nil && done() {
			return nil
		}
		if !e.Step() {
			if done != nil && !done() {
				return ErrStalled
			}
			return nil
		}
	}
	return nil
}

// Drain fires all pending events unconditionally.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Pending reports the number of live events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
