// Package sim provides a deterministic discrete-event simulation engine.
//
// All time in the reproduction is virtual: costs are charged to a simulated
// clock, never measured from the host. A simulation run is therefore a pure
// function of its configuration and seed, and every experiment in the paper
// reproduces bit-for-bit.
//
// The engine is built for wall-clock speed: the pending queue is a 4-ary
// min-heap with inlined sift operations (shallower than a binary heap, so
// fewer comparisons per pop on the deep queues collectives build), event
// nodes are recycled through a free list so steady-state scheduling does
// not allocate, and AtCall schedules a (func, arg) pair without forcing the
// caller to allocate a capturing closure.
package sim

import (
	"errors"
	"fmt"
	"time"

	"provirt/internal/trace"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. It is a time.Duration so costs compose with the standard
// library's unit constants (time.Nanosecond etc.).
type Time = time.Duration

// node is the pooled representation of one scheduled callback. Exactly one
// of fn, call, and tcall is set.
type node struct {
	at    Time
	seq   uint64
	fn    func()
	call  func(any)
	tcall TimedCall
	arg   any
	gen   uint64
	dom   int32 // lookahead domain (0 when domains are off)
	dead  bool
	eng   *Engine
}

// TimedCall is the callback form domain-aware scheduling uses: it
// receives the scheduler context it may schedule follow-up events on
// and the event's own timestamp. Passing both explicitly is what lets
// the same callback run under the serial Engine and under a
// ParallelEngine shard, where a global "now" does not exist.
type TimedCall = func(s Sched, now Time, arg any)

// Dispatcher is the engine surface a world drives when it should run
// on either clock implementation: scheduling (Sched), bulk pre-sizing,
// and the run loop. Engine and ParallelEngine both implement it.
type Dispatcher interface {
	Sched
	Reserve(n int)
	Run(done func() bool) error
	EventsFired() uint64
	Pending() int
}

// Sched is the scheduling surface an event callback sees. The serial
// Engine implements it directly; ParallelEngine hands each callback a
// per-domain view that routes cross-domain insertions through the
// window mailboxes.
type Sched interface {
	// AtCallIn schedules call(s, t, arg) at absolute virtual time t in
	// the given lookahead domain. From inside a callback, a cross-domain
	// t must be at least one lookahead past the current window horizon.
	AtCallIn(dom int, t Time, call TimedCall, arg any)
	// Tracer returns the tracer run-phase emissions must go through so
	// they merge into the deterministic per-event stream (nil when the
	// run is untraced). Under the parallel engine this is a per-domain
	// window buffer, not the user's tracer.
	Tracer() trace.Tracer
}

// Event is a handle to a scheduled callback. It is a small value, cheap to
// copy and to discard. Events with equal timestamps fire in the order they
// were scheduled, which keeps runs deterministic.
type Event struct {
	n   *node
	gen uint64
	at  Time
}

// Time reports when the event fires.
func (e Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or cancelling twice) is a no-op: the generation stamp in
// the handle detects that the underlying node has been recycled.
func (e Event) Cancel() {
	n := e.n
	if n == nil || n.gen != e.gen || n.dead {
		return
	}
	n.dead = true
	eng := n.eng
	eng.live--
	eng.dead++
	// Dead nodes stay resident until popped; once they outnumber the live
	// ones, compact so mass-cancellation workloads don't hold memory (and
	// heap depth) indefinitely. Each compaction removes more than half the
	// queue, so the cost amortizes to O(1) per cancel.
	if eng.dead*2 > len(eng.queue) {
		eng.compact()
	}
}

// Engine owns the virtual clock and the pending event queue.
//
// The engine is not safe for concurrent use; the whole simulation runs on a
// single logical thread (rank user-level threads hand control back and forth
// with the engine through package ult). Independent engines are fully
// isolated and may run on distinct goroutines.
type Engine struct {
	now    Time
	seq    uint64
	queue  []*node
	live   int // undead events resident in queue
	dead   int // cancelled events resident in queue
	free   []*node
	fired  uint64
	halted bool

	// Domain mode (EnableDomains). domains == 0 is plain mode: seq is a
	// single insertion counter and ties fire in scheduling order. With
	// domains on, seq becomes the composite key
	//
	//	dom<<56 | src<<40 | count
	//
	// where dom is the event's target domain, src identifies its creator
	// (0 for events scheduled outside any callback, d+1 for events
	// created while domain d was dispatching), and count is the
	// creator's monotone creation counter (srcSeq[src]). Under (at, seq)
	// this orders ties by (domain, creator, creation order) — a total
	// order both the serial engine and the sharded ParallelEngine can
	// compute locally, which is what makes the two byte-identical.
	domains int
	curSrc  int32 // srcSeq slot creations stamp from; 0 outside dispatch
	srcSeq  []uint64

	// tracer, when non-nil, receives one KindEngineEvent per dispatch.
	// The nil default keeps Step's dispatch loop hook-free apart from a
	// single pointer comparison.
	tracer trace.Tracer
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// MaxDomains is the largest domain count EnableDomains accepts: the
// composite seq key gives the domain 8 bits.
const MaxDomains = 256

// EnableDomains switches the engine to domain-stamped tie order (see
// the Engine doc) with n lookahead domains. It must be called before
// anything is scheduled: mixing plain and composite seq values would
// make the tie order meaningless.
func (e *Engine) EnableDomains(n int) {
	if n < 1 || n > MaxDomains {
		panic(fmt.Sprintf("sim: domain count %d out of range [1,%d]", n, MaxDomains))
	}
	if e.seq != 0 || e.fired != 0 || len(e.queue) != 0 {
		panic("sim: EnableDomains after scheduling began")
	}
	e.domains = n
	e.srcSeq = make([]uint64, n+1)
}

// stamp assigns the next seq value for an event targeting dom.
func (e *Engine) stamp(dom int32) uint64 {
	if e.domains == 0 {
		s := e.seq
		e.seq++
		return s
	}
	src := e.curSrc
	cnt := e.srcSeq[src]
	e.srcSeq[src] = cnt + 1
	return uint64(dom)<<56 | uint64(src)<<40 | cnt
}

// curDom reports the domain untargeted scheduling (At/AtCall/After)
// lands in: the dispatching event's own domain, or 0 outside dispatch.
func (e *Engine) curDom() int32 {
	if e.curSrc > 0 {
		return e.curSrc - 1
	}
	return 0
}

// Reserve pre-sizes the engine for a workload that will keep about n
// events in flight: the queue gets capacity up front and the free list
// is stocked with n nodes, so the first wave of scheduling neither grows
// the heap slice nor allocates nodes one by one. Million-rank worlds
// call it once at build; it is never required for correctness.
func (e *Engine) Reserve(n int) {
	if extra := n - cap(e.queue); extra > 0 {
		q := make([]*node, len(e.queue), n)
		copy(q, e.queue)
		e.queue = q
	}
	if need := n - len(e.free); need > 0 {
		nodes := make([]node, need) // one slab, not n small allocations
		for i := range nodes {
			nodes[i].eng = e
			e.free = append(e.free, &nodes[i])
		}
	}
}

// EventsFired reports how many events have been processed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// SetTracer installs (or, with nil, removes) the dispatch tracer.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// Tracer returns the installed tracer (Sched).
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// alloc takes a node from the free list, or makes one.
func (e *Engine) alloc() *node {
	if n := len(e.free); n > 0 {
		nd := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		metrics.nodeReuse.Inc()
		return nd
	}
	metrics.nodeAllocs.Inc()
	return &node{eng: e}
}

// release recycles a node, bumping its generation so outstanding Event
// handles become inert.
func (e *Engine) release(nd *node) {
	nd.gen++
	nd.fn = nil
	nd.call = nil
	nd.tcall = nil
	nd.arg = nil
	nd.dead = false
	e.free = append(e.free, nd)
}

// push appends a prepared node and restores the heap invariant.
func (e *Engine) push(nd *node) Event {
	e.live++
	e.queue = append(e.queue, nd)
	e.siftUp(len(e.queue) - 1)
	metrics.queueDepth.SetMax(int64(len(e.queue)))
	return Event{n: nd, gen: nd.gen, at: nd.at}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a bug in a cost model, and silently clamping would
// mask causality violations.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	nd := e.alloc()
	nd.at, nd.fn = t, fn
	nd.dom = e.curDom()
	nd.seq = e.stamp(nd.dom)
	return e.push(nd)
}

// AtCall schedules call(arg) at absolute virtual time t. It is the
// allocation-free variant of At for hot paths: the caller passes a shared
// function value and threads its state through arg instead of capturing it
// in a fresh closure per event.
func (e *Engine) AtCall(t Time, call func(any), arg any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	nd := e.alloc()
	nd.at, nd.call, nd.arg = t, call, arg
	nd.dom = e.curDom()
	nd.seq = e.stamp(nd.dom)
	return e.push(nd)
}

// AtCallIn schedules call(e, t, arg) at absolute virtual time t in
// lookahead domain dom (Sched). On the serial engine the domain only
// feeds the tie-order stamp; under a ParallelEngine the same call
// routes the event to that domain's shard.
func (e *Engine) AtCallIn(dom int, t Time, call TimedCall, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	nd := e.alloc()
	nd.at, nd.tcall, nd.arg, nd.dom = t, call, arg, int32(dom)
	nd.seq = e.stamp(nd.dom)
	e.push(nd)
}

// pushStamped schedules a timed callback whose seq was computed by the
// caller — the ParallelEngine's delivery path for external scheduling
// and for cross-domain mailbox drains, where the stamp's creation
// counter belongs to another shard.
func (e *Engine) pushStamped(t Time, seq uint64, dom int32, call TimedCall, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before now %v", t, e.now))
	}
	nd := e.alloc()
	nd.at, nd.seq, nd.tcall, nd.arg, nd.dom = t, seq, call, arg, dom
	e.push(nd)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// less orders nodes by (time, scheduling sequence).
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the 4-ary heap invariant from index i toward the root.
func (e *Engine) siftUp(i int) {
	q := e.queue
	nd := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(nd, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = nd
}

// siftDown restores the 4-ary heap invariant from index i toward the leaves.
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	nd := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(q[j], q[m]) {
				m = j
			}
		}
		if !less(q[m], nd) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = nd
}

// popMin removes and returns the earliest node.
func (e *Engine) popMin() *node {
	q := e.queue
	nd := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = nil
	e.queue = q[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return nd
}

// compact evicts dead nodes in place and rebuilds the heap. Pop order is
// unchanged: the (time, seq) order is total, so any valid heap over the
// same live set yields the identical firing sequence.
func (e *Engine) compact() {
	q := e.queue[:0]
	for _, nd := range e.queue {
		if nd.dead {
			e.dead--
			e.release(nd)
			continue
		}
		q = append(q, nd)
	}
	for i := len(q); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = q
	for i := (len(q) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// ErrStalled is returned by Run when the event queue drains while the
// caller-supplied done predicate is still false — the simulated system has
// deadlocked.
var ErrStalled = errors.New("sim: event queue empty before completion (deadlock)")

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		nd := e.popMin()
		if nd.dead {
			e.dead--
			e.release(nd)
			continue
		}
		if nd.at < e.now {
			panic("sim: clock regression")
		}
		e.now = nd.at
		e.fired++
		e.live--
		metrics.dispatched.Inc()
		if e.tracer != nil {
			e.tracer.Emit(trace.Event{Time: e.now, Kind: trace.KindEngineEvent, PE: -1, VP: -1, Peer: -1})
		}
		fn, call, tcall, arg, dom := nd.fn, nd.call, nd.tcall, nd.arg, nd.dom
		// Recycle before running the callback: outstanding handles go
		// inert (Cancel of a fired event stays a no-op) and the callback
		// can immediately reuse the node for what it schedules.
		e.release(nd)
		e.curSrc = dom + 1
		if fn != nil {
			fn()
		} else if call != nil {
			call(arg)
		} else {
			tcall(e, e.now, arg)
		}
		e.curSrc = 0
		return true
	}
	return false
}

// Run fires events until done returns true, the queue drains, or Halt is
// called. If the queue drains first, Run returns ErrStalled.
func (e *Engine) Run(done func() bool) error {
	e.halted = false
	for !e.halted {
		if done != nil && done() {
			return nil
		}
		if !e.Step() {
			if done != nil && !done() {
				return ErrStalled
			}
			return nil
		}
	}
	return nil
}

// Drain fires all pending events unconditionally.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Pending reports the number of live events still queued. It is O(1): the
// engine maintains the count as events are scheduled, cancelled, and fired.
func (e *Engine) Pending() int {
	return e.live
}
