package sim

import "provirt/internal/obs"

// Host-side engine instruments (package obs). Instruments are
// package-level rather than per-Engine because sweeps build thousands
// of engines per second (and the flat world builds one per million-VP
// world): what the host runtime wants to know is the aggregate event
// throughput and queue pressure across all of them. All updates are
// atomic, and addition/maximum are order-independent, so aggregate
// values are deterministic at any sweep parallelism.
//
// The zero value is metrics-off: every field is a nil instrument whose
// methods cost one pointer comparison — the same discipline as the
// engine's nil trace.Tracer.
type obsMetrics struct {
	// dispatched counts events fired across all engines.
	dispatched *obs.Counter
	// queueDepth is the high-water mark of any engine's pending queue
	// (live + cancelled residents), the contention signal for the heap.
	queueDepth *obs.Gauge
	// nodeReuse counts event nodes taken from a free list; nodeAllocs
	// counts nodes newly allocated. Steady state should be all reuse.
	nodeReuse  *obs.Counter
	nodeAllocs *obs.Counter

	// Parallel-engine window protocol. All of these are folded in at
	// window barriers from shard-local counters, so the per-event hot
	// loop never touches a shared atomic; totals are sums and therefore
	// deterministic at any worker count.

	// windows counts conservative-window advances.
	windows *obs.Counter
	// windowEvents observes events fired per window across all domains
	// — the grain size the barrier cost amortizes over.
	windowEvents *obs.Histogram
	// domainWindowEvents observes one active domain's fired count per
	// window — the load-balance signal across domains.
	domainWindowEvents *obs.Histogram
	// crossDomainEvents counts events routed through window mailboxes.
	crossDomainEvents *obs.Counter
	// idleDomainWindows counts domain-windows spent waiting at the
	// barrier with no event under the horizon (stalls).
	idleDomainWindows *obs.Counter
}

var metrics obsMetrics

// EnableObs registers the engine's instruments in r and turns them on
// for every engine in the process; EnableObs(nil) restores the no-op
// state. Call it only while no simulation is running — the harness
// enables metrics once, before experiments start.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		dispatched: r.Counter("sim_events_dispatched_total",
			"discrete events fired across all engines"),
		queueDepth: r.Gauge("sim_queue_depth_high_water",
			"highest resident pending-queue depth seen by any engine"),
		nodeReuse: r.Counter("sim_event_node_reuse_total",
			"event nodes recycled from an engine free list"),
		nodeAllocs: r.Counter("sim_event_node_allocs_total",
			"event nodes newly allocated (free list empty)"),
		windows: r.Counter("sim_windows_total",
			"conservative-window advances across all parallel engines"),
		windowEvents: r.Histogram("sim_window_events",
			"events fired per conservative window (all domains)",
			obs.ExpBuckets(1, 4, 12)),
		domainWindowEvents: r.Histogram("sim_domain_window_events",
			"events fired per domain per conservative window",
			obs.ExpBuckets(1, 4, 12)),
		crossDomainEvents: r.Counter("sim_cross_domain_events_total",
			"events routed between domains through window mailboxes"),
		idleDomainWindows: r.Counter("sim_domain_idle_windows_total",
			"domain-windows stalled at the barrier with no runnable event"),
	}
}
