package sim

import "provirt/internal/obs"

// Host-side engine instruments (package obs). Instruments are
// package-level rather than per-Engine because sweeps build thousands
// of engines per second (and the flat world builds one per million-VP
// world): what the host runtime wants to know is the aggregate event
// throughput and queue pressure across all of them. All updates are
// atomic, and addition/maximum are order-independent, so aggregate
// values are deterministic at any sweep parallelism.
//
// The zero value is metrics-off: every field is a nil instrument whose
// methods cost one pointer comparison — the same discipline as the
// engine's nil trace.Tracer.
type obsMetrics struct {
	// dispatched counts events fired across all engines.
	dispatched *obs.Counter
	// queueDepth is the high-water mark of any engine's pending queue
	// (live + cancelled residents), the contention signal for the heap.
	queueDepth *obs.Gauge
	// nodeReuse counts event nodes taken from a free list; nodeAllocs
	// counts nodes newly allocated. Steady state should be all reuse.
	nodeReuse  *obs.Counter
	nodeAllocs *obs.Counter
}

var metrics obsMetrics

// EnableObs registers the engine's instruments in r and turns them on
// for every engine in the process; EnableObs(nil) restores the no-op
// state. Call it only while no simulation is running — the harness
// enables metrics once, before experiments start.
func EnableObs(r *obs.Registry) {
	if r == nil {
		metrics = obsMetrics{}
		return
	}
	metrics = obsMetrics{
		dispatched: r.Counter("sim_events_dispatched_total",
			"discrete events fired across all engines"),
		queueDepth: r.Gauge("sim_queue_depth_high_water",
			"highest resident pending-queue depth seen by any engine"),
		nodeReuse: r.Counter("sim_event_node_reuse_total",
			"event nodes recycled from an engine free list"),
		nodeAllocs: r.Counter("sim_event_node_allocs_total",
			"event nodes newly allocated (free list empty)"),
	}
}
