package sim

import (
	"reflect"
	"strings"
	"testing"

	"provirt/internal/obs"
	"provirt/internal/trace"
)

// TestDomainStampTieOrder pins the composite tie order: with domains
// on, simultaneous events fire by (domain, creator, creation order),
// not by global scheduling order.
func TestDomainStampTieOrder(t *testing.T) {
	e := NewEngine()
	e.EnableDomains(3)
	var order []int
	log := func(id int) TimedCall {
		return func(s Sched, now Time, arg any) { order = append(order, id) }
	}
	// Scheduled in domain order 2, 0, 1 — must fire as 0, 1, 2.
	e.AtCallIn(2, 10, log(2), nil)
	e.AtCallIn(0, 10, log(0), nil)
	e.AtCallIn(1, 10, log(1), nil)
	e.Drain()
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Fatalf("tie order %v, want %v (domain order)", order, want)
	}

	// Within one domain at one time: externally-created (src 0) events
	// fire before dispatch-created (src d+1) ones, each in creation
	// order.
	e2 := NewEngine()
	e2.EnableDomains(2)
	order = nil
	e2.AtCallIn(0, 5, func(s Sched, now Time, arg any) {
		// Created during dispatch in domain 0: src 1.
		s.AtCallIn(1, 20, log(10), nil)
	}, nil)
	e2.AtCallIn(1, 20, log(1), nil) // external: src 0, same (time, domain)
	e2.Drain()
	if want := []int{1, 10}; !reflect.DeepEqual(order, want) {
		t.Fatalf("creator tie order %v, want %v (external before dispatch-created)", order, want)
	}
}

// churnWork is the randomized cross-domain workload the serial/parallel
// equivalence test runs: each event emits a trace record, then spawns a
// same-domain child and a cross-domain child until its depth runs out,
// with times and targets drawn from a per-event LCG.
type churnWork struct {
	id    uint64
	dom   int
	depth int
}

const churnLookahead = Time(100)

func churnStep(domains int) TimedCall {
	var cb TimedCall
	cb = func(s Sched, now Time, arg any) {
		w := arg.(*churnWork)
		if tr := s.Tracer(); tr != nil {
			tr.Emit(trace.Event{Time: now, Kind: trace.KindLink, VP: int32(w.id), PE: -1, Peer: -1})
		}
		if w.depth <= 0 {
			return
		}
		h := w.id * 0x9E3779B97F4A7C15
		// A same-domain child may land immediately — often still inside
		// the current window, exercising the local fast path.
		s.AtCallIn(w.dom, now+Time(h%43),
			cb, &churnWork{id: w.id*2 + 1, dom: w.dom, depth: w.depth - 1})
		// A child for an arbitrary domain must respect the lookahead
		// bound whenever it crosses.
		crossDom := int(h>>16) % domains
		s.AtCallIn(crossDom, now+churnLookahead+Time(h%59),
			cb, &churnWork{id: w.id * 2, dom: crossDom, depth: w.depth - 1})
	}
	return cb
}

// runChurn drives the workload on the given dispatcher and returns the
// merged trace stream.
func runChurn(t *testing.T, d Dispatcher, domains int, rec *trace.Recorder) []trace.Event {
	t.Helper()
	cb := churnStep(domains)
	for i := 0; i < 4*domains; i++ {
		d.AtCallIn(i%domains, Time(i), cb, &churnWork{id: uint64(i + 1), dom: i % domains, depth: 7})
	}
	if err := d.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return rec.Events()
}

// TestParallelEngineMatchesSerial is the engine-level determinism gate:
// a randomized workload with heavy cross-domain traffic must produce
// the identical merged trace stream (dispatch records and callback
// emissions) on the serial engine in domain mode and on the parallel
// engine at several worker counts.
func TestParallelEngineMatchesSerial(t *testing.T) {
	const domains = 5
	serialRec := trace.NewRecorder(trace.AllKinds()...)
	ser := NewEngine()
	ser.EnableDomains(domains)
	ser.SetTracer(serialRec)
	want := runChurn(t, ser, domains, serialRec)
	if len(want) == 0 {
		t.Fatal("serial run emitted nothing")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		rec := trace.NewRecorder(trace.AllKinds()...)
		par := NewParallelEngine(ParallelConfig{
			Domains: domains, Lookahead: churnLookahead, Workers: workers, Tracer: rec,
		})
		got := runChurn(t, par, domains, rec)
		if !reflect.DeepEqual(got, want) {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			t.Fatalf("workers=%d: trace diverged at event %d of %d (serial %d events)",
				workers, i, len(got), len(want))
		}
		if par.EventsFired() != ser.EventsFired() {
			t.Fatalf("workers=%d: fired %d events, serial fired %d",
				workers, par.EventsFired(), ser.EventsFired())
		}
		if par.Windows() < 2 {
			t.Fatalf("workers=%d: only %d windows — workload never exercised the protocol", workers, par.Windows())
		}
		var perDomain uint64
		for _, n := range par.DomainEventsFired() {
			perDomain += n
		}
		if perDomain != par.EventsFired() {
			t.Fatalf("per-domain fired counts sum to %d, total says %d", perDomain, par.EventsFired())
		}
	}
}

// TestParallelEngineCausalityPanic pins the lookahead guard: a
// cross-domain event scheduled inside the current window must panic
// rather than silently diverge from the serial order.
func TestParallelEngineCausalityPanic(t *testing.T) {
	p := NewParallelEngine(ParallelConfig{Domains: 2, Lookahead: 100, Workers: 1})
	p.AtCallIn(0, 10, func(s Sched, now Time, arg any) {
		s.AtCallIn(1, now+1, func(Sched, Time, any) {}, nil) // inside the window
	}, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on lookahead violation")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_ = p.Run(nil)
}

// TestParallelEngineRunSemantics checks ErrStalled, done, and Halt
// behave like the serial engine's Run.
func TestParallelEngineRunSemantics(t *testing.T) {
	p := NewParallelEngine(ParallelConfig{Domains: 2, Lookahead: 10, Workers: 2})
	if err := p.Run(func() bool { return false }); err != ErrStalled {
		t.Fatalf("empty run: %v, want ErrStalled", err)
	}
	fired := 0
	p.AtCallIn(0, 1, func(Sched, Time, any) { fired++ }, nil)
	if err := p.Run(func() bool { return fired > 0 }); err != nil {
		t.Fatalf("done run: %v", err)
	}
	if fired != 1 || p.EventsFired() != 1 || p.Pending() != 0 {
		t.Fatalf("fired=%d events=%d pending=%d", fired, p.EventsFired(), p.Pending())
	}

	p.AtCallIn(1, 2, func(s Sched, now Time, arg any) {
		p.Halt()
		s.AtCallIn(1, now+1000, func(Sched, Time, any) { t.Error("ran past Halt") }, nil)
	}, nil)
	if err := p.Run(nil); err != nil {
		t.Fatalf("halted run: %v", err)
	}
	if p.Pending() != 1 {
		t.Fatalf("pending after Halt = %d, want the unfired follow-up", p.Pending())
	}
}

// TestParallelEngineWindowMetrics checks the window-protocol obs
// instruments fold deterministic totals at the barriers.
func TestParallelEngineWindowMetrics(t *testing.T) {
	r := obs.NewRegistry()
	EnableObs(r)
	defer EnableObs(nil)

	const domains = 3
	rec := trace.NewRecorder(trace.AllKinds()...)
	p := NewParallelEngine(ParallelConfig{Domains: domains, Lookahead: churnLookahead, Workers: 2, Tracer: rec})
	runChurn(t, p, domains, rec)

	if got := metrics.windows.Value(); got != p.Windows() {
		t.Fatalf("sim_windows_total = %d, engine says %d", got, p.Windows())
	}
	if got := metrics.dispatched.Value(); got != p.EventsFired() {
		t.Fatalf("sim_events_dispatched_total = %d, engine fired %d", got, p.EventsFired())
	}
	if metrics.crossDomainEvents.Value() == 0 {
		t.Fatal("churn workload sent no cross-domain events")
	}
	if metrics.idleDomainWindows.Value() == 0 {
		t.Fatal("no idle domain-windows observed — horizon skew should stall some domains")
	}
}
