package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman and Vigna). The reproduction avoids math/rand's
// global state so that independent simulation components can own independent
// streams and a run never depends on package initialization order.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which guards
// against poor low-entropy seeds such as 0 and 1.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent stream labelled by id. Two forks with distinct
// ids produce uncorrelated streams regardless of draw order on the parent.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.s[0] ^ rotl(id+0x632be59bd9b4e019, 23))
}
